#!/usr/bin/env python
"""The Fig. 9 performance model as a practical advisor.

Fits the empirical crossover frontiers once, then answers the paper's
question — "with P and N, should one use two-phase Bruck, padded Bruck,
or the vendor MPI_Alltoallv?" — for a grid of configurations (or for
values passed on the command line).

Run:  python examples/algorithm_advisor.py [P N]
"""

import sys

from repro import PerformanceModel, THETA


def main():
    print("fitting the empirical performance model on the Theta profile "
          "(data-scaling sweeps, analytic engine)...")
    model = PerformanceModel.fit(
        THETA,
        procs=(128, 512, 1024, 4096, 8192, 16384, 32768),
        blocks=(8, 16, 32, 64, 128, 256, 512, 1024, 2048),
    )
    print()
    print(model.describe())
    print()

    if len(sys.argv) == 3:
        p, n = int(sys.argv[1]), int(sys.argv[2])
        print(f"recommendation for P={p}, N={n}: {model.recommend(p, n)}")
        return

    print("recommendations over a (P, N) grid:")
    ns = (8, 64, 256, 1024, 4096)
    corner = "P \\ N"
    header = f"{corner:>8} |" + "".join(f"{n:>18}" for n in ns)
    print(header)
    print("-" * len(header))
    short = {"two_phase_bruck": "two-phase", "padded_bruck": "padded",
             "vendor": "vendor"}
    for p in (128, 350, 1024, 4096, 32768):
        row = f"{p:>8} |"
        for n in ns:
            row += f"{short[model.recommend(p, n)]:>18}"
        print(row)
    print("\n(the paper's worked example: P=350, N=800 ->",
          model.recommend(350, 800) + ")")


if __name__ == "__main__":
    main()

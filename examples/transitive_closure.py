#!/usr/bin/env python
"""Graph mining: distributed transitive closure over BPRA (paper §5.1).

Computes the TC of the two Fig. 11 graph archetypes on the simulated
cluster, swapping the alltoallv implementation with a one-argument change
(the algorithms share MPI_Alltoallv's signature), and shows the paper's
diverging result: the Bruck swap helps the high-diameter graph and hurts
the dense one.

Run:  python examples/transitive_closure.py [nprocs]
"""

import sys

from repro import THETA
from repro.apps import (
    graph1,
    graph2,
    run_transitive_closure,
    sequential_transitive_closure,
)


def main():
    nprocs = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    for name, edges in (("Graph 1 (chain-dominated, high diameter)",
                         graph1(1.0)),
                        ("Graph 2 (dense, low diameter)", graph2(1.0))):
        expected = len(sequential_transitive_closure(edges))
        print(f"\n{name}: {len(edges)} edges, closure = {expected} paths")
        results = {}
        for algorithm in ("vendor", "two_phase_bruck"):
            res = run_transitive_closure(edges, nprocs, machine=THETA,
                                         algorithm=algorithm)
            assert res.closure_size == expected, "wrong closure!"
            results[algorithm] = res
            print(f"  {algorithm:>16}: {res.iterations:4d} iterations, "
                  f"total {res.elapsed_seconds * 1e3:8.2f} ms "
                  f"(comm {res.comm_seconds * 1e3:8.2f} ms)")
        gain = 1 - (results["two_phase_bruck"].elapsed_seconds
                    / results["vendor"].elapsed_seconds)
        verdict = "improves" if gain > 0 else "hurts"
        print(f"  -> two-phase Bruck {verdict} this graph by "
              f"{abs(gain) * 100:.1f}% "
              f"({results['vendor'].iterations} iterations of "
              f"{'small' if gain > 0 else 'large'} per-iteration loads)")


if __name__ == "__main__":
    main()

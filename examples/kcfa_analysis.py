#!/usr/bin/env python
"""Program analysis: distributed kCFA-8 (paper §5.2, Fig. 12).

Analyzes a worst-case (reconvergent funnel) CPS program with the
distributed k-CFA abstract interpreter, comparing the vendor alltoallv to
two-phase Bruck, and renders Fig. 12's two per-iteration series — comm
time and max block size N — as text sparklines.

Run:  python examples/kcfa_analysis.py [nprocs]
"""

import sys

from repro import THETA
from repro.apps import fig12_kcfa
from repro.apps.kcfa import kcfa_worstcase, sequential_kcfa

SPARK = " .:-=+*#%@"


def sparkline(values):
    hi = max(values) or 1
    return "".join(SPARK[min(int(v / hi * (len(SPARK) - 1)), len(SPARK) - 1)]
                   for v in values)


def main():
    nprocs = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    program = kcfa_worstcase(n_payloads=6, chain_len=12)
    print(f"program size: {program.size} AST nodes; "
          f"k = 8; entries = 1; ranks = {nprocs}")
    print(f"sequential reference: "
          f"{len(sequential_kcfa(program, 8))} analysis facts\n")

    data = fig12_kcfa(nprocs=nprocs, k=8, machine=THETA,
                      n_payloads=6, chain_len=12)
    tp = data.results["two_phase_bruck"]
    vendor = data.results["vendor"]
    assert tp.total_facts == vendor.total_facts

    print(f"converged after {data.iterations} iterations, "
          f"{tp.total_facts} facts")
    print(f"all-to-all time: vendor = {vendor.comm_seconds * 1e3:.2f} ms, "
          f"two-phase = {tp.comm_seconds * 1e3:.2f} ms "
          f"({(1 - tp.comm_seconds / vendor.comm_seconds) * 100:.1f}% less)")
    print(f"two-phase wins {data.wins('two_phase_bruck', 'vendor')} of "
          f"{data.iterations} iterations\n")

    print("per-iteration max block size N (Fig. 12 bottom panel):")
    print("  " + sparkline(data.n_series()))
    print("per-iteration comm time, vendor (Fig. 12 top panel, blue):")
    print("  " + sparkline(data.comm_series("vendor")))
    print("per-iteration comm time, two-phase (orange):")
    print("  " + sparkline(data.comm_series("two_phase_bruck")))
    print("\nNote how iterations with small N (most of them) are exactly "
          "where two-phase wins — the paper's Fig. 12 observation.")


if __name__ == "__main__":
    main()

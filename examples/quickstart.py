#!/usr/bin/env python
"""Quickstart: run a non-uniform all-to-all on the simulated cluster.

Launches a 16-rank SPMD job on the Theta machine profile, performs the
same random alltoallv with the vendor implementation (spread-out, what
``MPI_Alltoallv`` does) and with the paper's two-phase Bruck, verifies the
bytes delivered are identical, and prints the simulated times.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import THETA, alltoallv, run_spmd
from repro.workloads import UniformBlocks, block_size_matrix, build_vargs, verify_recv

NPROCS = 64
MAX_BLOCK = 32  # bytes; latency-bound regime where Bruck wins at this P

# One global block-size matrix: sizes[s, d] bytes from rank s to rank d.
sizes = block_size_matrix(UniformBlocks(MAX_BLOCK), NPROCS, seed=42)


def exchange(comm, algorithm):
    """The SPMD body: one alltoallv with the chosen algorithm."""
    args = build_vargs(comm.rank, sizes)
    start = comm.clock
    alltoallv(comm, *args.as_tuple(), algorithm=algorithm)
    verify_recv(comm.rank, sizes, args.recvbuf)  # byte-exact delivery
    return comm.clock - start


def main():
    print(f"simulated machine: {THETA.name}  "
          f"(alpha={THETA.alpha * 1e6:.1f}us, "
          f"{1 / THETA.beta / 1e6:.0f} MB/s per rank)")
    print(f"ranks: {NPROCS}, max block: {MAX_BLOCK} B, "
          f"average block: {MAX_BLOCK / 2:.0f} B\n")

    times = {}
    for algorithm in ("vendor", "two_phase_bruck", "padded_bruck"):
        result = run_spmd(exchange, NPROCS, machine=THETA,
                          args=(algorithm,))
        times[algorithm] = max(result.returns)  # slowest rank's comm time
        print(f"{algorithm:>18}: {times[algorithm] * 1e6:9.1f} us "
              f"({result.total_messages} messages, "
              f"{result.total_bytes} bytes on the wire)")

    gain = 1 - times["two_phase_bruck"] / times["vendor"]
    print(f"\ntwo-phase Bruck is {gain * 100:.1f}% faster than the vendor "
          f"alltoallv at this (P, N) — exactly the regime the paper targets.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Reproduce a Fig. 6 panel: data scaling at a chosen process count.

Uses the analytic timing engine (validated bit-for-bit against the
functional simulator), so process counts up to 32768 run in seconds.

Run:  python examples/data_scaling_study.py [nprocs]
"""

import sys

from repro import THETA
from repro.bench import fig6_data_scaling, format_series_table


def main():
    nprocs = int(sys.argv[1]) if len(sys.argv) > 1 else 4096
    blocks = (16, 32, 64, 128, 256, 512, 1024, 2048)
    print(f"Data scaling at P = {nprocs} on {THETA.name} "
          f"(uniform block sizes in [0, N], median of 5 seeds)\n")
    out = fig6_data_scaling(procs=(nprocs,), blocks=blocks, iterations=5)
    fd = out[nprocs]
    print(format_series_table(fd.title, fd.x_header, fd.series, fd.xs))

    crossover = max((n for n in blocks
                     if fd.series["two_phase_bruck"][n].median
                     < fd.series["vendor_alltoallv"][n].median), default=0)
    print(f"\ntwo-phase Bruck beats the vendor alltoallv up to "
          f"N = {crossover} bytes at P = {nprocs}.")
    print("(paper, Theta: N* = 1024 at P=4096, halving per doubling of P)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Model your own machine and find where Bruck pays off on it.

Defines a custom :class:`MachineProfile` (a fat-node cluster with fast
cores but a heavily shared NIC), verifies the functional simulator and the
analytic engine agree on it, then sweeps the two-phase-vs-vendor crossover
— the workflow a vendor would use to decide when their ``MPI_Alltoallv``
should switch to a Bruck-style algorithm.

Run:  python examples/custom_machine.py
"""

import numpy as np

from repro import MachineProfile, alltoallv, predict_alltoallv, run_spmd
from repro.workloads import UniformBlocks, block_size_matrix, build_vargs

MY_CLUSTER = MachineProfile(
    name="my-fat-node-cluster",
    alpha=2.0e-6,          # low-latency fabric
    beta=2.0e-8,           # ...but 128 ranks share each NIC
    o_send=1.0e-6,         # fast cores
    o_recv=1.0e-6,
    eager_threshold=4096,
    eager_factor=6.0,      # small messages are very inefficient here
    congestion_procs=8000.0,
)


def main():
    print(f"profile: {MY_CLUSTER.name}")
    print(f"  per-rank streaming bandwidth: "
          f"{1 / MY_CLUSTER.beta / 1e6:.0f} MB/s")
    print(f"  eager path (< {MY_CLUSTER.eager_threshold} B): "
          f"{1 / (MY_CLUSTER.beta * MY_CLUSTER.eager_factor) / 1e6:.0f} MB/s")

    # 1. Sanity: functional simulator == analytic engine on this profile.
    p, max_n, seed = 16, 128, 7
    dist = UniformBlocks(max_n)
    sizes = block_size_matrix(dist, p, seed=seed)

    def prog(comm):
        args = build_vargs(comm.rank, sizes)
        alltoallv(comm, *args.as_tuple(), algorithm="two_phase_bruck")
    functional = run_spmd(prog, p, machine=MY_CLUSTER).elapsed
    analytic = predict_alltoallv("two_phase_bruck", MY_CLUSTER, p, dist,
                                 seed=seed, mode="exact").elapsed
    print(f"\nengine agreement at P={p}: functional "
          f"{functional * 1e6:.3f} us vs analytic {analytic * 1e6:.3f} us")
    assert np.isclose(functional, analytic, rtol=1e-9)

    # 2. Where does two-phase Bruck win on this machine?
    print(f"\n{'P':>7} | two-phase beats vendor up to N =")
    for procs in (256, 1024, 4096, 16384):
        best = 0
        for n in (16, 32, 64, 128, 256, 512, 1024, 2048, 4096):
            d = UniformBlocks(n)
            tp = predict_alltoallv("two_phase_bruck", MY_CLUSTER, procs,
                                   d, seed=1).elapsed
            vendor = predict_alltoallv("vendor", MY_CLUSTER, procs, d,
                                       seed=1).elapsed
            if tp < vendor:
                best = n
        print(f"{procs:>7} | {best}")
    print("\nSwap `MY_CLUSTER` for your own measured constants to size the "
          "switch-over for a real system.")


if __name__ == "__main__":
    main()

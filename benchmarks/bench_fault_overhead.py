"""Reliability transport overhead under injected message loss.

Sweeps drop probability over three non-uniform algorithms with the
acked/retransmitting transport (``on_fault="retry"``) and reports the
*simulated* completion-time overhead relative to the clean fabric, plus
the injected fault mix.  Every cell is deterministic (fixed plan + seed),
so the committed table is bit-reproducible.

Expected shape: overhead grows with drop rate and with an algorithm's
message count — retransmissions serialize behind the per-message RTO
backoff, so chatty schemes (spread_out posts P-1 pairwise exchanges per
rank) pay more than aggregating ones.  The zero-drop row isolates the
pure ack overhead of the transport itself (one o_send per delivered
message).
"""

from repro.core.registry import get_algorithm
from repro.simmpi import ExecutionConfig, THETA, run_spmd
from repro.workloads import PowerLawBlocks, block_size_matrix, build_vargs

from _common import once, save_report

P = 64
N = 1024
ALGORITHMS = ("two_phase_bruck", "spread_out", "padded_bruck")
DROP_RATES = (0.0, 0.01, 0.05, 0.10)
SEED = 11


def _run(algorithm, sizes, *, fault_plan, on_fault, reliability=None):
    fn = get_algorithm(algorithm, kind="nonuniform").fn

    def prog(comm):
        vargs = build_vargs(comm.rank, sizes, fill=False)
        fn(comm, *vargs.as_tuple())

    config = ExecutionConfig(machine=THETA, trace="metrics", timeout=300,
                             backend="coop", wire="phantom",
                             fault_plan=fault_plan, fault_seed=SEED,
                             on_fault=on_fault, reliability=reliability)
    return run_spmd(prog, P, config=config)


def test_fault_overhead(benchmark):
    def run():
        rows = []
        for algorithm in ALGORITHMS:
            sizes = block_size_matrix(PowerLawBlocks(N), P, seed=3)
            clean = _run(algorithm, sizes, fault_plan=None,
                         on_fault="fail-fast")
            for rate in DROP_RATES:
                plan = f"drop:p={rate}" if rate else None
                faulted = _run(algorithm, sizes, fault_plan=plan,
                               on_fault="retry", reliability="retry")
                counts = (dict(faulted.metrics.fault_counts)
                          if faulted.metrics else {})
                rows.append((algorithm, rate, clean.elapsed,
                             faulted.elapsed, counts))
        return rows

    rows = once(benchmark, run)
    lines = ["reliability transport overhead vs drop rate "
             f"(P={P}, power-law N={N}, Theta profile, coop backend, "
             "phantom wire, fixed fault seed)",
             f"{'algorithm':>16} {'drop':>6} {'clean(ms)':>10} "
             f"{'retry(ms)':>10} {'overhead':>9} {'drops':>6} "
             f"{'retries':>8}"]
    for algorithm, rate, clean_t, retry_t, counts in rows:
        overhead = (retry_t / clean_t - 1.0) * 100.0
        lines.append(
            f"{algorithm:>16} {rate:>6.2f} {clean_t * 1e3:>10.4f} "
            f"{retry_t * 1e3:>10.4f} {overhead:>8.2f}% "
            f"{counts.get('drop', 0):>6} {counts.get('retry', 0):>8}")
        # Sanity: the reliability transport never loses time relative to
        # the clean fabric, and dropping more never makes the run faster.
        assert retry_t >= clean_t
    lines.append("")
    lines.append("overhead = simulated completion time vs the same "
                 "algorithm on a clean fabric without the transport; "
                 "the 0.00 row is the pure ack cost (one o_send per "
                 "delivered message).")
    save_report("fault_overhead", "\n".join(lines))


if __name__ == "__main__":
    class _Pedantic:
        @staticmethod
        def pedantic(fn, rounds=1, iterations=1):
            return fn()

    test_fault_overhead(_Pedantic())

"""Fig. 11 — transitive closure strong scaling (functional runs).

Runs the real distributed TC application on the thread-based simulator for
both graph archetypes and both alltoallv implementations.  Scaled down
from the paper's 256–2048 ranks to 8–48 simulated ranks (the per-iteration
load contrast that drives the figure is preserved by the generators; see
DESIGN.md).

Expected shape: two-phase improves Graph 1 (high diameter, cheap
iterations) with the improvement growing with P, and *hurts* Graph 2
(dense, heavy iterations) — the paper's diverging result.
"""

from repro.apps import fig11_tc_strong_scaling, graph1, graph2
from repro.apps.graphs import sequential_transitive_closure

from _common import once, save_report

PROCS = (8, 16, 32, 48)


def test_fig11(benchmark):
    out = once(benchmark, lambda: fig11_tc_strong_scaling(procs=PROCS))
    lines = ["Fig. 11: TC strong scaling (simulated seconds, Theta profile)",
             f"{'graph':>8} {'P':>4} {'vendor':>10} {'two-phase':>10} "
             f"{'improv%':>8} {'iters':>6} {'closure':>9}"]
    for gname, per_p in out.items():
        for p, res in per_p.items():
            vendor = res["vendor"]
            tp = res["two_phase_bruck"]
            gain = (1 - tp.elapsed_seconds / vendor.elapsed_seconds) * 100
            lines.append(
                f"{gname:>8} {p:>4} {vendor.elapsed_seconds * 1e3:>10.2f} "
                f"{tp.elapsed_seconds * 1e3:>10.2f} {gain:>8.1f} "
                f"{tp.iterations:>6} {tp.closure_size:>9}")

    # Correctness embedded in the benchmark: closure sizes are exact.
    assert out["graph1"][PROCS[0]]["vendor"].closure_size == \
        len(sequential_transitive_closure(graph1(1.0)))
    assert out["graph2"][PROCS[0]]["vendor"].closure_size == \
        len(sequential_transitive_closure(graph2(1.0)))

    # Shape: Graph 1 improves at scale, improvement grows with P.
    gains1 = []
    for p in PROCS:
        res = out["graph1"][p]
        gains1.append(1 - res["two_phase_bruck"].elapsed_seconds
                      / res["vendor"].elapsed_seconds)
    assert gains1[-1] > 0.02, "two-phase must win on graph1 at scale"
    assert gains1[-1] > gains1[0], "improvement must grow with P"

    # Shape: Graph 2 regresses (negative or ~zero improvement).
    res2 = out["graph2"][PROCS[-2]]
    gain2 = 1 - res2["two_phase_bruck"].elapsed_seconds \
        / res2["vendor"].elapsed_seconds
    assert gain2 < 0.05, "two-phase must not meaningfully win on graph2"

    # Shape: the iteration-count contrast that explains the divergence.
    it1 = out["graph1"][PROCS[0]]["vendor"].iterations
    it2 = out["graph2"][PROCS[0]]["vendor"].iterations
    lines.append(f"\niterations: graph1={it1}, graph2={it2} "
                 f"(paper: 2,933 vs 89)")
    assert it1 > 5 * it2
    save_report("fig11_tc_strong_scaling", "\n".join(lines))

"""Wire modes — phantom (size-only) transport vs the bytes wire.

Host wall-clock time of the same functional non-uniform runs under both
``run_spmd`` wire modes.  The phantom wire ships ``Envelope``\\ s that
carry only ``nbytes`` — no payload snapshot on send, no landing copy on
receive, no staging writes inside the kernels — while charging the
identical simulated costs, so the per-rank clocks are asserted
bit-identical on every row.  Expected shape: the copy-heavy schemes
(padded moves the full N-padded volume) gain the most; the headline row
must clear a 2x host speedup, which is what makes phantom the default
wire for the large-P sweeps in :mod:`repro.bench`.

The bar was originally 5x, set before the vectorized zero-copy bytes
path landed; that work cut the bytes wire's host wall ~20x on the
headline row, so phantom's *relative* win narrowed to ~3x even though
its absolute cost is unchanged.
"""

import time

from repro.workloads import PowerLawBlocks, block_size_matrix

from _common import once, run_alltoallv, save_report

#: (algorithm, P, N) rows of the sweep; all power-law (Theta profile).
ROWS = (
    ("two_phase_bruck", 256, 4096),
    ("padded_bruck", 256, 8192),
    ("two_phase_bruck", 512, 8192),
)
#: The acceptance row: padded at P=256 is the most copy-dominated.
HEADLINE = ("padded_bruck", 256, 8192)
HEADLINE_SPEEDUP = 2.0


def _timed(algorithm, sizes, wire):
    start = time.perf_counter()
    result = run_alltoallv(algorithm, sizes, trace=False, backend="coop",
                           wire=wire)
    return time.perf_counter() - start, result


def test_wire_modes(benchmark):
    def run():
        rows = []
        for algorithm, p, n in ROWS:
            sizes = block_size_matrix(PowerLawBlocks(n), p, seed=3)
            bytes_wall, bytes_res = _timed(algorithm, sizes, "bytes")
            ph_wall, ph_res = _timed(algorithm, sizes, "phantom")
            # The whole point: phantom must be a pure host-side win.
            assert ph_res.clocks == bytes_res.clocks
            assert ph_res.total_messages == bytes_res.total_messages
            assert ph_res.total_bytes == bytes_res.total_bytes
            rows.append((algorithm, p, n, bytes_wall, ph_wall, bytes_res))
        return rows

    rows = once(benchmark, run)
    lines = ["wire modes: bytes vs phantom transport, power-law "
             "(Theta profile, coop backend, host wall seconds)",
             f"{'algorithm':>16} {'P':>5} {'N':>6} {'bytes(s)':>9} "
             f"{'phantom(s)':>11} {'speedup':>8} {'simulated(ms)':>14}"]
    headline_speedup = None
    for algorithm, p, n, bytes_wall, ph_wall, res in rows:
        speedup = bytes_wall / ph_wall
        if (algorithm, p, n) == HEADLINE:
            headline_speedup = speedup
        lines.append(f"{algorithm:>16} {p:>5} {n:>6} {bytes_wall:>9.3f} "
                     f"{ph_wall:>11.3f} {speedup:>7.1f}x "
                     f"{res.elapsed * 1e3:>14.4f}")
    lines.append("")
    lines.append("simulated clocks, message counts and wire bytes are "
                 "asserted bit-identical per row; phantom differs only "
                 "in host-side data movement.")

    assert headline_speedup is not None
    assert headline_speedup >= HEADLINE_SPEEDUP, (
        f"headline phantom speedup {headline_speedup:.1f}x below "
        f"{HEADLINE_SPEEDUP}x")
    save_report("wire_modes", "\n".join(lines))

"""Fig. 7 — weak scaling at N = 64 and N = 512 bytes.

Expected shape (paper §4.1): execution time grows with P (all-to-all is
inherently quadratic in total traffic); at N = 64 two-phase Bruck beats the
vendor through 32K ranks, at N = 512 only through 8K.
"""

from repro.bench import fig7_weak_scaling, format_series_table

from _common import once, save_report

PROCS = (128, 512, 1024, 4096, 8192, 16384, 32768)


def test_fig7_n64(benchmark):
    fd = once(benchmark, lambda: fig7_weak_scaling(
        block_nbytes=64, procs=PROCS, iterations=5))
    text = format_series_table(fd.title, fd.x_header, fd.series, fd.xs)
    tp = fd.series["two_phase_bruck"]
    vendor = fd.series["vendor_alltoallv"]
    for p in PROCS:
        assert tp[p].median < vendor[p].median, p
    # Paper: ~39.8% improvement at 8192 ranks; assert a loose band.
    gain = 1 - tp[8192].median / vendor[8192].median
    text += f"\n\nimprovement at P=8192: {gain * 100:.1f}% (paper: 39.8%)"
    assert 0.25 < gain < 0.8
    save_report("fig7_weak_scaling_n64", text)


def test_fig7_n512(benchmark):
    fd = once(benchmark, lambda: fig7_weak_scaling(
        block_nbytes=512, procs=PROCS, iterations=5))
    text = format_series_table(fd.title, fd.x_header, fd.series, fd.xs)
    tp = fd.series["two_phase_bruck"]
    vendor = fd.series["vendor_alltoallv"]
    assert tp[8192].median < vendor[8192].median
    assert tp[32768].median > vendor[32768].median
    # Monotone growth with P for every scheme.
    for name, pts in fd.series.items():
        vals = [pts[p].median for p in PROCS]
        assert vals == sorted(vals), name
    save_report("fig7_weak_scaling_n512", text)

"""Fig. 8 — sensitivity analysis at P = 4096.

Block sizes drawn from windowed-uniform distributions ``(100-r)%..100%``
of N, for N = 16…1024 and r = 100…20.  Expected shape (paper §4.2):
two-phase beats the vendor for every window at N ≤ 512; at N = 1024 the
heavier (narrow-window) configurations erode the win; times shrink
proportionally with the window's average load.
"""

from repro.bench import fig8_sensitivity

from _common import once, save_report

BLOCKS = (16, 64, 256, 512, 1024)
RS = (100, 80, 60, 40, 20)


def test_fig8(benchmark):
    out = once(benchmark, lambda: fig8_sensitivity(
        nprocs=4096, blocks=BLOCKS, r_values=RS, iterations=3))
    lines = ["Fig. 8: sensitivity at P=4096 (times in ms; windows labelled "
             "(100-r)-r as in the paper)",
             f"{'N':>6} {'window':>10} {'vendor':>10} {'two-phase':>10} "
             f"{'padded':>10}  winner"]
    for n in BLOCKS:
        for r in RS:
            row = out[(n, r)]
            vendor = row["vendor_alltoallv"].median
            tp = row["two_phase_bruck"].median
            padded = row["padded_bruck"].median
            winner = min(row, key=lambda k: row[k].median)
            label = f"{100 - r}-{r}"
            lines.append(f"{n:>6} {label:>10} {vendor * 1e3:>10.3f} "
                         f"{tp * 1e3:>10.3f} {padded * 1e3:>10.3f}  {winner}")
    # Shape: two-phase wins every window for N <= 512.
    for n in (16, 64, 256, 512):
        for r in RS:
            row = out[(n, r)]
            assert row["two_phase_bruck"].median \
                < row["vendor_alltoallv"].median, (n, r)
    # Shape: load (and hence time) shrinks as the window widens.
    for n in (256, 1024):
        assert out[(n, 100)]["two_phase_bruck"].median \
            < out[(n, 20)]["two_phase_bruck"].median
    save_report("fig8_sensitivity", "\n".join(lines))

"""Shared helpers for the per-figure benchmark harness.

Every ``bench_*.py`` regenerates one table/figure of the paper: it runs
the corresponding driver from :mod:`repro.bench` (or the app layer),
renders the reproduced rows/series as text, and writes them to
``benchmarks/results/<name>.txt`` (pytest captures stdout, so files are
the reliable artifact).  ``pytest-benchmark`` wraps the driver call so the
harness also tracks host-side runtime of the reproduction itself.

Run everything with::

    pytest benchmarks/ --benchmark-only

and inspect ``benchmarks/results/`` afterwards; EXPERIMENTS.md catalogues
the expected shapes.
"""

from __future__ import annotations

import os
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def save_report(name: str, text: str) -> None:
    """Write one reproduced figure to benchmarks/results/<name>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    # Also echo for -s runs.
    print(f"\n[{name}] written to {path}\n{text}")


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark (drivers are too
    heavy for repeated rounds) and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)

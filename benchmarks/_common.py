"""Shared helpers for the per-figure benchmark harness.

Every ``bench_*.py`` regenerates one table/figure of the paper: it runs
the corresponding driver from :mod:`repro.bench` (or the app layer),
renders the reproduced rows/series as text, and writes them to
``benchmarks/results/<name>.txt`` (pytest captures stdout, so files are
the reliable artifact).  ``pytest-benchmark`` wraps the driver call so the
harness also tracks host-side runtime of the reproduction itself.

Run everything with::

    pytest benchmarks/ --benchmark-only

and inspect ``benchmarks/results/`` afterwards; EXPERIMENTS.md catalogues
the expected shapes.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.core.registry import get_algorithm
from repro.simmpi import (ExecutionConfig, MACHINE_MODEL_VERSION, THETA,
                          MachineProfile, format_summary, run_spmd)
from repro.workloads import build_vargs

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).parent.parent


def save_report(name: str, text: str, data=None) -> None:
    """Write one reproduced figure to benchmarks/results/<name>.txt.

    Every file leads with the machine-model version so a committed
    artifact can be matched against the cost model that produced it.

    When ``data`` (any JSON-able value) is given, the same report is
    additionally emitted machine-readably: a sibling
    ``benchmarks/results/<name>.json`` and a repo-root
    ``BENCH_<name>.json`` — the committed perf-trajectory artifacts.
    Both carry the machine-model version inside the document, so a
    trend-line consumer can drop records that predate a recalibration.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    header = f"# machine-model v{MACHINE_MODEL_VERSION}\n"
    path.write_text(header + text + "\n")
    if data is not None:
        doc = {"name": name,
               "machine_model_version": MACHINE_MODEL_VERSION,
               "data": data}
        payload = json.dumps(doc, indent=2, sort_keys=True) + "\n"
        (RESULTS_DIR / f"{name}.json").write_text(payload)
        (REPO_ROOT / f"BENCH_{name}.json").write_text(payload)
    # Also echo for -s runs.
    print(f"\n[{name}] written to {path}\n{text}")


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark (drivers are too
    heavy for repeated rounds) and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def run_alltoallv(algorithm: str, sizes, machine: MachineProfile = THETA,
                  trace=True, timeout: float = 300.0,
                  backend: str = "threads", wire: str = "phantom", **kwargs):
    """Functional run of one registered non-uniform algorithm.

    ``algorithm`` resolves through :mod:`repro.core.registry`; extra
    keyword arguments go to the implementation (e.g. ``group_size`` for
    the grouped scheme).  ``backend`` selects the executor (``"coop"``
    for large-P runs).  Returns the :class:`~repro.simmpi.SPMDResult`.

    The benchmarks are simulated-clock artifacts, so the default wire
    mode is ``"phantom"`` (size-only transport; clocks bit-identical to
    bytes mode, proven by ``tests/simmpi/test_backend_equivalence.py``).
    Pass ``wire="bytes"`` to move and verify real payload bytes.
    """
    fn = get_algorithm(algorithm, kind="nonuniform").fn
    fill = wire == "bytes"

    def prog(comm):
        vargs = build_vargs(comm.rank, sizes, fill=fill)
        fn(comm, *vargs.as_tuple(), **kwargs)

    config = ExecutionConfig(machine=machine, trace=trace, timeout=timeout,
                             backend=backend, wire=wire)
    return run_spmd(prog, sizes.shape[0], config=config)


def summarize(result, title: str = "") -> str:
    """Shared plain-text per-phase / per-step summary of one run."""
    return format_summary(result, title)

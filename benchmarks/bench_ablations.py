"""Ablations of the model's design choices (DESIGN.md §5).

Each ablation switches off one mechanism of the calibrated machine model
and shows which reproduced phenomenon it is responsible for:

* **eager bandwidth tier** (``eager_factor``) — carries the main result:
  with it off, spread-out's small messages stream as cheaply as Bruck's
  aggregates, and two-phase loses its bandwidth edge at moderate N;
* **congestion** (``congestion_procs``) — carries the *decline* of the
  crossover frontier with P;
* **rotation-phase elimination** — carries zero-rotation Bruck's win over
  basic Bruck (an algorithmic, not model, choice: measured by the phase
  split).
"""

from repro.simmpi import THETA
from repro.timing import predict_alltoallv, predict_uniform
from repro.workloads import UniformBlocks

from _common import once, save_report


def _crossover(machine, p, blocks=(16, 32, 64, 128, 256, 512, 1024, 2048)):
    best = 0
    for n in blocks:
        dist = UniformBlocks(n)
        tp = predict_alltoallv("two_phase_bruck", machine, p, dist,
                               seed=1).elapsed
        vendor = predict_alltoallv("vendor", machine, p, dist,
                                   seed=1).elapsed
        if tp < vendor:
            best = n
    return best


def test_ablation_eager_tier(benchmark):
    """Without the eager bandwidth penalty the two-phase win collapses."""
    flat = THETA.with_overrides(eager_factor=1.0)

    def run():
        return {
            "with": _crossover(THETA, 4096),
            "without": _crossover(flat, 4096),
        }
    out = once(benchmark, run)
    text = (f"crossover N* at P=4096 with eager tier: {out['with']}\n"
            f"crossover N* at P=4096 without eager tier: {out['without']}")
    assert out["with"] >= 512
    assert out["without"] < out["with"]
    save_report("ablation_eager_tier", text)


def test_ablation_congestion(benchmark):
    """Without congestion the frontier stops collapsing at scale."""
    free = THETA.with_overrides(congestion_procs=1e12)

    def run():
        return {
            "with": (_crossover(THETA, 4096), _crossover(THETA, 32768)),
            "without": (_crossover(free, 4096), _crossover(free, 32768)),
        }
    out = once(benchmark, run)
    with_drop = out["with"][0] / max(out["with"][1], 1)
    without_drop = out["without"][0] / max(out["without"][1], 1)
    text = (f"frontier drop 4096->32768 with congestion: "
            f"{out['with'][0]} -> {out['with'][1]} ({with_drop:.0f}x)\n"
            f"without congestion: {out['without'][0]} -> "
            f"{out['without'][1]} ({without_drop:.0f}x)")
    assert with_drop > without_drop
    save_report("ablation_congestion", text)


def test_ablation_rotation_elimination(benchmark):
    """Rotation phases are the entire zero-rotation advantage."""
    def run():
        basic = predict_uniform("basic_bruck", THETA, 4096, 32)
        zero = predict_uniform("zero_rotation_bruck", THETA, 4096, 32)
        return basic, zero
    basic, zero = once(benchmark, run)
    saved = basic.initial_rotation + basic.final_rotation
    gain = basic.total - zero.total
    text = (f"basic rotations cost: {saved * 1e3:.3f} ms\n"
            f"total gain of zero-rotation: {gain * 1e3:.3f} ms\n"
            f"comm time difference: {abs(basic.communication - zero.communication) * 1e3:.4f} ms")
    # The gain is explained by the rotations (comm is nearly identical).
    assert abs(basic.communication - zero.communication) < 0.2 * saved
    assert gain > 0.6 * saved
    save_report("ablation_rotation_elimination", text)

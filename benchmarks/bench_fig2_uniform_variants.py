"""Fig. 2 — uniform Bruck variants at N = 32 bytes.

Regenerates (a) the total-time comparison of all six variants over
P = 256…4096 and (b) the phase breakdown of the three explicit-memcpy
variants.  Expected shape (paper §2.2): zero-rotation fastest everywhere,
datatype variants slowest, rotation share growing with P.
"""

from repro.bench import (
    fig2a_uniform_variants,
    fig2b_phase_breakdown,
    format_series_table,
)

from _common import once, save_report

PROCS = (256, 512, 1024, 2048, 4096)


def test_fig2a_total_times(benchmark):
    fd = once(benchmark, lambda: fig2a_uniform_variants(procs=PROCS))
    report = format_series_table(fd.title, fd.x_header, fd.series, fd.xs)
    lines = [report, ""]
    for p in PROCS:
        lines.append(f"P={p}: fastest = {fd.winner(p)}")
        assert fd.winner(p) == "zero_rotation_bruck"
    save_report("fig2a_uniform_variants", "\n".join(lines))


def test_fig2b_phase_breakdown(benchmark):
    out = once(benchmark, lambda: fig2b_phase_breakdown(procs=PROCS))
    lines = ["Fig. 2b: phase breakdown (ms), explicit-memcpy variants"]
    for p in PROCS:
        lines.append(f"\nP = {p}")
        lines.append(f"{'variant':>22} {'init_rot':>10} {'comm':>10} "
                     f"{'final_rot':>10} {'index':>8}")
        for name, phases in out[p].items():
            lines.append(
                f"{name:>22} {phases['initial_rotation'] * 1e3:>10.4f} "
                f"{phases['communication'] * 1e3:>10.4f} "
                f"{phases['final_rotation'] * 1e3:>10.4f} "
                f"{phases['index_setup'] * 1e3:>8.5f}")
    # Shape assertions: rotation share grows with P (paper's observation).
    def rot_share(p):
        b = out[p]["basic_bruck"]
        total = sum(b.values())
        return (b["initial_rotation"] + b["final_rotation"]) / total
    assert rot_share(PROCS[-1]) > rot_share(PROCS[0])
    save_report("fig2b_phase_breakdown", "\n".join(lines))

"""Executor scaling — thread-per-rank vs the cooperative scheduler.

Host wall-clock time of the same functional two-phase Bruck run under
both ``run_spmd`` backends across P.  Expected shape: comparable cost at
small P (the coop backend's handoff switches vs the thread backend's
condition-variable wakeups roughly cancel), then the thread backend's
O(P) ``notify_all`` storms and scheduler pressure blow up while the coop
backend keeps scaling — it alone reaches the P ≥ 512 region (the thread
backend is not even attempted past ``THREAD_MAX``, matching the CLI's
practical cap).  Simulated clocks are asserted bit-identical wherever
both backends run: the speedup is free of semantic drift.
"""

import time

from repro.workloads import PowerLawBlocks, block_size_matrix

from _common import once, run_alltoallv, save_report

N = 32
PROCS = (32, 64, 128, 256, 512)
THREAD_MAX = 256
ALGORITHM = "two_phase_bruck"


def _timed(algorithm, sizes, backend):
    # Pinned to the bytes wire: this bench measures how the *executors*
    # scale under real transport work (bench_wire_modes covers phantom).
    start = time.perf_counter()
    result = run_alltoallv(algorithm, sizes, trace=False, backend=backend,
                           wire="bytes")
    return time.perf_counter() - start, result


def test_backend_scaling(benchmark):
    def run():
        rows = []
        for p in PROCS:
            sizes = block_size_matrix(PowerLawBlocks(N), p, seed=3)
            coop_wall, coop_res = _timed(ALGORITHM, sizes, "coop")
            if p <= THREAD_MAX:
                thr_wall, thr_res = _timed(ALGORITHM, sizes, "threads")
                assert thr_res.clocks == coop_res.clocks
            else:
                thr_wall = None
            rows.append((p, thr_wall, coop_wall, coop_res))
        return rows

    rows = once(benchmark, run)
    lines = [f"executor scaling: {ALGORITHM}, power-law N={N} "
             f"(Theta profile, host wall seconds)",
             f"{'P':>6} {'threads(s)':>11} {'coop(s)':>9} "
             f"{'simulated(ms)':>14} {'messages':>9}"]
    for p, thr_wall, coop_wall, res in rows:
        thr = f"{thr_wall:.3f}" if thr_wall is not None else "n/a"
        lines.append(f"{p:>6} {thr:>11} {coop_wall:>9.3f} "
                     f"{res.elapsed * 1e3:>14.4f} {res.total_messages:>9}")
    lines.append("")
    lines.append(f"threads backend not attempted past P={THREAD_MAX} "
                 f"(practical thread-per-rank limit); the coop backend "
                 f"continues to P={PROCS[-1]} and beyond (CI smokes "
                 f"P=1024).")

    # The whole point: the coop backend completes the out-of-reach sizes.
    assert rows[-1][0] > THREAD_MAX and rows[-1][2] > 0
    save_report("backend_scaling", "\n".join(lines))

"""Executor scaling — threads vs coop vs the vectorized tensor backend.

Host wall-clock time of the same functional two-phase Bruck run under all
three ``run_spmd`` backends across P.  Expected shape: comparable cost at
small P (the coop backend's handoff switches vs the thread backend's
condition-variable wakeups roughly cancel, and the tensor backend's
array-op overhead is amortized over too few ranks to matter), then the
thread backend's O(P) ``notify_all`` storms blow up past ``THREAD_MAX``,
the coop backend's O(P × program length) host work grows linearly, and
the tensor backend — whose host work per communication step is a handful
of array ops over all ranks — pulls ahead (the coop→tensor crossover)
and alone reaches the P ≥ 2048 region on its way to the paper-scale
P=32K CI smoke.  Simulated clocks are asserted bit-identical wherever
backends overlap: the speedup is free of semantic drift.
"""

import time

from repro.simmpi import ExecutionConfig, THETA, run_spmd
from repro.simmpi.tensor import TensorAlltoallv
from repro.workloads import PowerLawBlocks, block_size_matrix

from _common import once, run_alltoallv, save_report

N = 32
PROCS = (32, 64, 128, 256, 512, 1024, 2048, 4096)
THREAD_MAX = 256
COOP_MAX = 1024
ALGORITHM = "two_phase_bruck"


def _timed(algorithm, sizes, backend):
    # threads/coop are pinned to the bytes wire: this bench measures how
    # the executors scale under real transport work (bench_wire_modes
    # covers phantom).  The tensor backend is size-only by construction —
    # phantom-wire clocks are bit-identical to bytes (proven in
    # tests/simmpi/test_backend_equivalence.py), so the columns compare.
    start = time.perf_counter()
    if backend == "tensor":
        # Metrics stay on for the tensor column: the vectorized
        # aggregates are part of what this bench demonstrates scaling,
        # and they feed the machine-readable trajectory artifact below.
        config = ExecutionConfig(machine=THETA, trace="metrics",
                                 backend="tensor", wire="phantom")
        result = run_spmd(TensorAlltoallv(algorithm, sizes),
                          sizes.shape[0], config=config)
    else:
        result = run_alltoallv(algorithm, sizes, trace=False,
                               backend=backend, wire="bytes")
    return time.perf_counter() - start, result


def test_backend_scaling(benchmark):
    def run():
        rows = []
        for p in PROCS:
            sizes = block_size_matrix(PowerLawBlocks(N), p, seed=3)
            tens_wall, tens_res = _timed(ALGORITHM, sizes, "tensor")
            if p <= COOP_MAX:
                coop_wall, coop_res = _timed(ALGORITHM, sizes, "coop")
                assert coop_res.clocks == tens_res.clocks
            else:
                coop_wall = None
            if p <= THREAD_MAX:
                thr_wall, thr_res = _timed(ALGORITHM, sizes, "threads")
                assert thr_res.clocks == tens_res.clocks
            else:
                thr_wall = None
            rows.append((p, thr_wall, coop_wall, tens_wall, tens_res))
        return rows

    rows = once(benchmark, run)
    lines = [f"executor scaling: {ALGORITHM}, power-law N={N} "
             f"(Theta profile, host wall seconds)",
             f"{'P':>6} {'threads(s)':>11} {'coop(s)':>9} "
             f"{'tensor(s)':>10} {'simulated(ms)':>14} {'messages':>9}"]
    for p, thr_wall, coop_wall, tens_wall, res in rows:
        thr = f"{thr_wall:.3f}" if thr_wall is not None else "n/a"
        coop = f"{coop_wall:.3f}" if coop_wall is not None else "n/a"
        lines.append(f"{p:>6} {thr:>11} {coop:>9} {tens_wall:>10.3f} "
                     f"{res.elapsed * 1e3:>14.4f} {res.total_messages:>9}")
    lines.append("")
    lines.append(f"threads backend not attempted past P={THREAD_MAX}, "
                 f"coop past P={COOP_MAX} (practical per-rank-program "
                 f"limits); the tensor backend continues to "
                 f"P={PROCS[-1]} here and to P=32768 in the "
                 f"tensor-scale-smoke CI job.")

    # The whole point: the tensor backend completes the out-of-reach
    # sizes, and somewhere in the overlap region it overtakes coop.
    assert rows[-1][0] > COOP_MAX and rows[-1][3] > 0
    overlap = [(p, c, t) for p, _, c, t, _ in rows if c is not None]
    assert any(t < c for _, c, t in overlap), \
        "tensor never beat coop in the overlap region"
    data = {
        "algorithm": ALGORITHM,
        "distribution": f"power_law(N={N})",
        "machine": "theta",
        "rows": [
            {"nprocs": p,
             "threads_wall_s": thr_wall,
             "coop_wall_s": coop_wall,
             "tensor_wall_s": tens_wall,
             "simulated_s": res.elapsed,
             "messages": res.total_messages,
             "bytes": res.total_bytes,
             "max_in_flight": res.metrics.max_in_flight,
             "queue_wait_total_s": res.metrics.queue_wait_total,
             "attribution": res.critical_path().bucket_totals()}
            for p, thr_wall, coop_wall, tens_wall, res in rows],
    }
    save_report("backend_scaling", "\n".join(lines), data=data)

"""§6 related work — grouped (leader-based) alltoallv vs the paper's
algorithms.

Functional runs comparing the Jackson/Plummer-style leader scheme against
spread-out and two-phase Bruck across group sizes.  Expected shape: the
leader scheme cuts cross-group message counts dramatically (the paper's
"reduces network congestion by restricting the number of processes
participating"), but its two extra store-and-forward hops cost full data
volume, so at these loads the Bruck family remains faster end-to-end —
consistent with the paper's assessment that the grouped schemes pay off
only for *fixed, repeated* communication plans where the plan cost is
amortized.
"""

from repro.workloads import UniformBlocks, block_size_matrix

from _common import once, run_alltoallv, save_report, summarize

P = 64
N = 64
GROUPS = (2, 4, 8, 16)


def _run(algorithm, sizes, **kwargs):
    return run_alltoallv(algorithm, sizes, **kwargs)


def test_grouped_comparison(benchmark):
    def run():
        sizes = block_size_matrix(UniformBlocks(N), P, seed=1)
        rows = {}
        for g in GROUPS:
            rows[f"grouped(g={g})"] = _run("grouped", sizes, group_size=g)
        rows["spread_out"] = _run("spread_out", sizes)
        rows["two_phase_bruck"] = _run("two_phase_bruck", sizes)
        return sizes, rows

    sizes, rows = once(benchmark, run)
    lines = [f"§6 grouped alltoallv at P={P}, N={N} (Theta profile)",
             f"{'scheme':>18} {'time(ms)':>10} {'messages':>9} "
             f"{'wire bytes':>11}"]
    for name, res in rows.items():
        lines.append(f"{name:>18} {res.elapsed * 1e3:>10.3f} "
                     f"{res.total_messages:>9} {res.total_bytes:>11}")

    # Shape 1: grouping slashes the message count versus spread-out.
    assert rows["grouped(g=8)"].total_messages \
        < rows["spread_out"].total_messages / 4
    # Shape 2: but the extra hops carry real volume...
    assert rows["grouped(g=8)"].total_bytes \
        > rows["spread_out"].total_bytes
    # ...so Bruck stays the better general-purpose choice here.
    assert rows["two_phase_bruck"].elapsed < rows["grouped(g=8)"].elapsed
    lines.append("")
    lines.append(summarize(rows["two_phase_bruck"],
                           title="two_phase_bruck run detail:"))
    save_report("grouped_related_work", "\n".join(lines))

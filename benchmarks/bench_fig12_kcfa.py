"""Fig. 12 — kCFA-8 per-iteration communication time and block size.

Runs the distributed k-CFA analysis (k = 8) on the reconvergent-funnel
worst-case program with both alltoallv implementations, and reports the
two per-iteration series the paper plots: communication time (vendor vs
two-phase) and the max block size N.

Scaled down from the paper's P = 4096 / 4,300 iterations to 32 simulated
ranks / ~100 iterations (DESIGN.md documents the substitution).  Expected
shape: the per-iteration load swings across iterations; N stays small for
the majority of iterations, so two-phase wins most iterations and the
total all-to-all time.
"""

import numpy as np

from repro.apps import fig12_kcfa

from _common import once, save_report


def test_fig12(benchmark):
    data = once(benchmark, lambda: fig12_kcfa(nprocs=32, k=8,
                                              n_payloads=6, chain_len=12))
    tp = data.results["two_phase_bruck"]
    vendor = data.results["vendor"]
    ns = data.n_series()

    lines = ["Fig. 12: kCFA-8 (32 simulated ranks, Theta profile)",
             f"iterations: {data.iterations} (paper: 4,300 at P=4096)",
             f"total facts: {tp.total_facts}",
             f"all-to-all time: vendor={vendor.comm_seconds * 1e3:.2f} ms, "
             f"two-phase={tp.comm_seconds * 1e3:.2f} ms",
             f"total time: vendor={vendor.elapsed_seconds * 1e3:.2f} ms, "
             f"two-phase={tp.elapsed_seconds * 1e3:.2f} ms",
             f"two-phase wins {data.wins('two_phase_bruck', 'vendor')} of "
             f"{data.iterations} iterations",
             f"N per iteration: min={min(ns)} max={max(ns)} "
             f"median={int(np.median(ns))}",
             "",
             f"{'iter':>5} {'N(bytes)':>9} {'vendor(us)':>11} "
             f"{'two-phase(us)':>13}"]
    vend_series = data.comm_series("vendor")
    tp_series = data.comm_series("two_phase_bruck")
    for i in range(data.iterations):
        lines.append(f"{i + 1:>5} {ns[i]:>9} {vend_series[i] * 1e6:>11.1f} "
                     f"{tp_series[i] * 1e6:>13.1f}")

    # Both runs compute the identical analysis.
    assert tp.total_facts == vendor.total_facts
    # Shape: per-iteration N varies substantially (the bursty workload).
    assert max(ns) > 2 * min(n for n in ns if n > 0)
    # Shape: two-phase wins the majority of iterations (paper: "majority
    # of the orange points are below the corresponding blue points").
    assert data.wins("two_phase_bruck", "vendor") > data.iterations // 2
    # Shape: the aggregate all-to-all time improves (paper: 74 s -> 38 s).
    assert tp.comm_seconds < vendor.comm_seconds
    save_report("fig12_kcfa", "\n".join(lines))

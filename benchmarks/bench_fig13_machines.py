"""Fig. 13 — generality across machines (Cori and Stampede2 profiles),
plus a ppn sweep of the two-level hierarchical machine model.

Weak scaling with windowed-normal block sizes at N = 64.  Expected shape
(paper §7): two-phase Bruck outperforms the vendor implementation on both
machines, padded Bruck trails at these loads.

The ppn sweep runs the locality-aware Bruck variants against their flat
equivalents on Theta with 1/4/16/64 ranks per node.  Under the model's
per-rank share of node injection bandwidth, concentrating a node's
traffic in one leader serializes at that leader, so the node-aware
variants trade wall-clock for a large reduction in inter-node messages
and bytes — the sweep reports both sides of that trade.
"""

from repro.bench import fig13_other_machines, format_series_table
from repro.simmpi import THETA
from repro.workloads import block_size_matrix, distribution_by_name

from _common import once, run_alltoallv, save_report

PROCS = (128, 512, 2048, 8192, 32768)

PPN_SWEEP = (1, 4, 16, 64)
PPN_NPROCS = 256
PPN_PAIRS = (("padded_bruck", "locality_padded_bruck"),
             ("two_phase_bruck", "locality_two_phase_bruck"))


def test_fig13(benchmark):
    out = once(benchmark, lambda: fig13_other_machines(
        procs=PROCS, iterations=3))
    lines = []
    for mname, fd in out.items():
        lines.append(format_series_table(fd.title, fd.x_header, fd.series,
                                         fd.xs))
        lines.append("")
        tp = fd.series["two_phase_bruck"]
        vendor = fd.series["vendor_alltoallv"]
        for p in PROCS:
            assert tp[p].median < vendor[p].median, (mname, p)
    assert set(out) == {"cori", "stampede2"}
    save_report("fig13_other_machines", "\n".join(lines))


def _inter_messages(result, ppn: int):
    """(count, bytes) of messages crossing a node boundary."""
    msgs = nbytes = 0
    for tr in result.traces:
        for e in tr.sends:
            if e.src // ppn != e.dst // ppn:
                msgs += 1
                nbytes += e.nbytes
    return msgs, nbytes


def test_fig13_ppn_sweep(benchmark):
    sizes = block_size_matrix(distribution_by_name("normal", 64),
                              PPN_NPROCS, seed=3)

    def drive():
        rows = {}
        for ppn in PPN_SWEEP:
            machine = THETA.with_overrides(ppn=ppn)
            cells = {}
            for name in [a for pair in PPN_PAIRS for a in pair]:
                res = run_alltoallv(name, sizes, machine=machine,
                                    backend="coop")
                cells[name] = (max(res.clocks),) \
                    + _inter_messages(res, ppn)
            rows[ppn] = cells
        return rows

    rows = once(benchmark, drive)

    lines = [f"Fig. 13 (ppn sweep): locality-aware vs flat Bruck at "
             f"P={PPN_NPROCS}, normal dist, N=64 B (theta)",
             "-" * 74,
             f"{'ppn':>4} {'algorithm':>26} {'sim ms':>9} "
             f"{'inter msgs':>11} {'inter MB':>9}"]
    for ppn in PPN_SWEEP:
        for flat, loc in PPN_PAIRS:
            for name in (flat, loc):
                t, msgs, nbytes = rows[ppn][name]
                lines.append(f"{ppn:>4} {name:>26} {t * 1e3:>9.3f} "
                             f"{msgs:>11} {nbytes / 1e6:>9.3f}")
        lines.append("")

    for flat, loc in PPN_PAIRS:
        # ppn=1 is the flat machine: the locality kernels delegate and
        # must match their flat equivalents exactly.
        assert rows[1][loc] == rows[1][flat], (flat, loc)
        for ppn in PPN_SWEEP[1:]:
            # The variants' raison d'etre: strictly less inter-node
            # traffic (both message count and bytes) than the flat run.
            assert rows[ppn][loc][1] < rows[ppn][flat][1], (loc, ppn)
            assert rows[ppn][loc][2] < rows[ppn][flat][2], (loc, ppn)
        # The intra-tier discount alone speeds up the *flat* algorithms
        # as more of their pairs land on one node.
        assert rows[64][flat][0] < rows[1][flat][0], flat

    save_report("fig13_ppn_sweep", "\n".join(lines))

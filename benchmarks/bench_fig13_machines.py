"""Fig. 13 — generality across machines (Cori and Stampede2 profiles).

Weak scaling with windowed-normal block sizes at N = 64.  Expected shape
(paper §7): two-phase Bruck outperforms the vendor implementation on both
machines, padded Bruck trails at these loads.
"""

from repro.bench import fig13_other_machines, format_series_table

from _common import once, save_report

PROCS = (128, 512, 2048, 8192, 32768)


def test_fig13(benchmark):
    out = once(benchmark, lambda: fig13_other_machines(
        procs=PROCS, iterations=3))
    lines = []
    for mname, fd in out.items():
        lines.append(format_series_table(fd.title, fd.x_header, fd.series,
                                         fd.xs))
        lines.append("")
        tp = fd.series["two_phase_bruck"]
        vendor = fd.series["vendor_alltoallv"]
        for p in PROCS:
            assert tp[p].median < vendor[p].median, (mname, p)
    assert set(out) == {"cori", "stampede2"}
    save_report("fig13_other_machines", "\n".join(lines))

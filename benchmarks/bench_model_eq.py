"""Eqs. (1)–(3) — the theoretical cost model and its crossover.

Evaluates the paper's closed forms over the benchmark grid and checks
Eq. (3)'s padded-vs-two-phase predicate against the measured (simulated)
ordering.  Expected shape: padded wins only when N is tiny and the run is
latency-bound; the analytic crossover N* declines with P.
"""

from repro.core.cost_model import (
    LinearCostParams,
    crossover_block_size,
    padded_beats_two_phase,
    padded_bruck_time,
    two_phase_bruck_time,
)
from repro.simmpi import THETA

from _common import once, save_report

PROCS = (128, 512, 2048, 8192, 32768)
BLOCKS = (4, 8, 16, 64, 256, 1024)


def test_theoretical_model(benchmark):
    def run():
        rows = []
        for p in PROCS:
            prm = LinearCostParams.from_machine(THETA, nprocs=p)
            for n in BLOCKS:
                rows.append((p, n,
                             padded_bruck_time(p, n, prm),
                             two_phase_bruck_time(p, n, prm),
                             padded_beats_two_phase(p, n, prm)))
        return rows

    rows = once(benchmark, run)
    lines = ["Eq. (1)/(2) times (ms) and Eq. (3) predicate",
             f"{'P':>6} {'N':>6} {'padded':>12} {'two-phase':>12} "
             f"{'Eq3: padded wins':>17}"]
    for p, n, tpad, ttp, pred in rows:
        lines.append(f"{p:>6} {n:>6} {tpad * 1e3:>12.4f} {ttp * 1e3:>12.4f} "
                     f"{str(pred):>17}")
        # Internal consistency: the predicate must match the closed forms.
        assert pred == (tpad < ttp)
    lines.append("")
    lines.append("Eq. (3) crossover N* by P:")
    stars = []
    for p in PROCS:
        prm = LinearCostParams.from_machine(THETA, nprocs=p)
        n_star = crossover_block_size(p, prm)
        stars.append(n_star)
        lines.append(f"  P={p}: N* = {n_star:.1f} bytes")
    # N < 8 always favours padded; N* declines with P.
    assert all(s >= 8 for s in stars)
    assert stars == sorted(stars, reverse=True)
    save_report("model_equations", "\n".join(lines))

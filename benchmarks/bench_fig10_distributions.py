"""Fig. 10 — power-law and normal block-size distributions at P = 4096/8192.

Expected shape (paper §4.3): under both power-law bases two-phase wins for
all N ≤ 1024 (the light-tailed loads keep Bruck competitive); under the
heavier windowed-normal load the vendor overtakes at a smaller N; padded
Bruck performs poorly everywhere (its padding amplifies skew worst).

Machine-model v2 divergence: at the heaviest power-law point (base 0.999,
P = 8192) the piecewise eager model moves the crossover below N = 1024, so
the vendor wins that one cell — asserted explicitly below.
"""

from repro.bench import fig10_distributions, format_series_table
from repro.workloads import NormalBlocks, PowerLawBlocks

from _common import once, save_report

BLOCKS = (16, 64, 256, 1024, 2048)
PROCS = (4096, 8192)


def test_fig10(benchmark):
    out = once(benchmark, lambda: fig10_distributions(
        procs=PROCS, blocks=BLOCKS, iterations=3))
    lines = []
    for (label, p), fd in out.items():
        lines.append(format_series_table(fd.title, fd.x_header, fd.series,
                                         fd.xs))
        lines.append("")
    # Power-law: two-phase wins through N=1024, except at the single
    # heaviest point — base 0.999 at P=8192 — where the v2 piecewise eager
    # model pulls the crossover below 1024 (the heavier tail pushes
    # two-phase's forwarded messages past the eager threshold while the
    # uniform-model crossover at P=8192 is itself 512; see EXPERIMENTS.md).
    for base_label in ("power_law_0.99", "power_law_0.999"):
        for p in PROCS:
            fd = out[(base_label, p)]
            for n in (16, 64, 256, 1024):
                if (base_label, p, n) == ("power_law_0.999", 8192, 1024):
                    continue
                assert fd.series["two_phase_bruck"][n].median \
                    < fd.series["vendor_alltoallv"][n].median, \
                    (base_label, p, n)
    fd = out[("power_law_0.999", 8192)]
    assert fd.series["two_phase_bruck"][1024].median \
        > fd.series["vendor_alltoallv"][1024].median
    # Normal: vendor overtakes at a smaller N than power-law does.
    for p in PROCS:
        fd = out[("normal", p)]
        assert fd.series["two_phase_bruck"][2048].median \
            > fd.series["vendor_alltoallv"][2048].median
    # The load story behind it (paper's 203,928 vs 1,593,933 bytes):
    ratio = NormalBlocks(1024).mean / PowerLawBlocks(1024, 0.99).mean
    lines.append(f"normal/power-law(0.99) mean-load ratio at N=1024: "
                 f"{ratio:.1f}x (paper: ~7.8x)")
    assert ratio > 4
    save_report("fig10_distributions", "\n".join(lines))

"""Verified-transport overhead: verify vs retry vs none.

Measures what the integrity tier costs on a *clean* fabric and under a
seeded Byzantine plan (corrupt + forge), at P in {64, 256}.  Three
transport tiers per cell:

* **none** — lossy wire, no acks, no checks (clean fabric only: under a
  Byzantine plan this tier would deliver tampered bytes);
* **retry** — the acked/retransmitting transport (one o_send ack per
  delivered message, no integrity checking);
* **verify** — retry plus a per-message checksum + auth tag: one
  copy-through hash pass at post and one at delivery, detection and
  retransmission of tampered envelopes, rejection of forged ones.

Every cell is deterministic (fixed plan + seed), so the committed table
is bit-reproducible.  Expected shape: verify's clean-fabric surcharge is
the two hash passes per message — it scales with bytes moved, not with
the fault rate — while under the Byzantine plan verify pays the same
surcharge plus one retransmission round per detected tampering.  The
retry row under chaos is reported for clock comparison only: its buffers
are *not* byte-correct (Byzantine delivery).

The workload is the direct pairwise exchange (``spread_out``): it ships
no count metadata on the wire, so the unverified chaos cell degrades
bytes instead of crashing on a corrupted count — the aggregating Bruck
schemes abort there (see ``tests/simmpi/test_chaos.py``'s arm 4), which
would leave nothing to time.
"""

from repro.core.registry import get_algorithm
from repro.simmpi import ExecutionConfig, THETA, run_spmd
from repro.workloads import PowerLawBlocks, block_size_matrix, build_vargs

from _common import once, save_report

N = 1024
SIZES_SEED = 3
ALGORITHM = "spread_out"
NPROCS = (64, 256)
BYZANTINE_PLAN = "corrupt:p=0.02;forge:p=0.01"
FAULT_SEED = 23

#: (label, reliability, on_fault) — the reliability ladder.
TIERS = (("none", None, "fail-fast"),
         ("retry", "retry", "retry"),
         ("verify", "verify", "retry"))


def _run(nprocs, sizes, *, reliability, on_fault, fault_plan):
    fn = get_algorithm(ALGORITHM, kind="nonuniform").fn

    def prog(comm):
        vargs = build_vargs(comm.rank, sizes, fill=False)
        fn(comm, *vargs.as_tuple())

    config = ExecutionConfig(machine=THETA, trace="metrics", timeout=300,
                             backend="coop", wire="phantom",
                             fault_plan=fault_plan, fault_seed=FAULT_SEED,
                             on_fault=on_fault, reliability=reliability)
    return run_spmd(prog, nprocs, config=config)


def test_verify_overhead(benchmark):
    def run():
        rows = []
        for nprocs in NPROCS:
            sizes = block_size_matrix(PowerLawBlocks(N), nprocs,
                                      seed=SIZES_SEED)
            baseline = {}
            for fabric, plan in (("clean", None),
                                 ("byzantine", BYZANTINE_PLAN)):
                for label, reliability, on_fault in TIERS:
                    if fabric == "byzantine" and label == "none":
                        # Fail-fast under guaranteed tampering with no
                        # detection = a correct-looking wrong answer;
                        # nothing meaningful to time.
                        continue
                    res = _run(nprocs, sizes, reliability=reliability,
                               on_fault=on_fault, fault_plan=plan)
                    counts = (dict(res.metrics.fault_counts)
                              if res.metrics else {})
                    if fabric == "clean" and label == "none":
                        baseline[nprocs] = res.elapsed
                    rows.append((nprocs, fabric, label, res.elapsed,
                                 baseline[nprocs],
                                 res.metrics.total_messages,
                                 res.metrics.total_bytes, counts))
        return rows

    rows = once(benchmark, run)
    lines = [f"verified-transport overhead ({ALGORITHM}, power-law "
             f"N={N}, Theta profile, coop backend, phantom wire, "
             f"byzantine plan '{BYZANTINE_PLAN}' seed={FAULT_SEED})",
             f"{'P':>4} {'fabric':>9} {'tier':>7} {'sim(ms)':>10} "
             f"{'overhead':>9} {'messages':>9} {'bytes':>12} "
             f"{'detected':>9} {'rejected':>9}"]
    for nprocs, fabric, label, t, base, messages, nbytes, counts in rows:
        overhead = (t / base - 1.0) * 100.0
        lines.append(
            f"{nprocs:>4} {fabric:>9} {label:>7} {t * 1e3:>10.4f} "
            f"{overhead:>8.2f}% {messages:>9} {nbytes:>12} "
            f"{counts.get('corrupt_detected', 0):>9} "
            f"{counts.get('forge_rejected', 0):>9}")
        # The ladder only ever adds simulated time, rung by rung.
        assert t >= base
    lines.append("")
    lines.append("overhead = simulated completion time vs the bare lossy "
                 "wire on a clean fabric at the same P.  verify's clean "
                 "rows price the integrity tier itself (two hash passes "
                 "per message); its byzantine rows add one retransmission "
                 "per detection.  retry/byzantine completes but its "
                 "buffers are NOT byte-correct (no integrity checking) — "
                 "clock comparison only.")
    save_report("verify_overhead", "\n".join(lines))


if __name__ == "__main__":
    class _Pedantic:
        @staticmethod
        def pedantic(fn, rounds=1, iterations=1):
            return fn()

    test_verify_overhead(_Pedantic())

"""Fig. 9 — the empirical performance model.

Fits the (N, P) crossover frontiers from data-scaling sweeps and answers
the paper's worked question ("P = 350, N = 800 → which algorithm?").
Expected shape: the two-phase frontier declines with P; the padded niche
exists only at small N / small P; even at 32K ranks some block sizes
(≤ 128) still favour two-phase.
"""

from repro.bench import fig9_performance_model

from _common import once, save_report

PROCS = (128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768)
BLOCKS = (16, 32, 64, 128, 256, 512, 1024, 2048)


def test_fig9(benchmark):
    model = once(benchmark, lambda: fig9_performance_model(
        procs=PROCS, blocks=BLOCKS))
    lines = [model.describe(), ""]
    for (p, n) in ((350, 800), (4096, 100), (4096, 2000), (32768, 64),
                   (256, 4)):
        lines.append(f"recommend(P={p}, N={n}) -> {model.recommend(p, n)}")

    frontier = {c.nprocs: c.max_block for c in model.two_phase_frontier}
    # Declining frontier with the paper's ladder at scale.
    assert frontier[4096] == 1024
    assert frontier[8192] == 512
    assert frontier[16384] == 256
    assert frontier[32768] == 128
    # "Even with a high process count of 32,768, there are data-block
    # sizes (<= 128) where our approach outperforms the vendor."
    assert frontier[32768] >= 128
    padded = {c.nprocs: c.max_block for c in model.padded_frontier}
    assert padded[128] > 0
    assert model.recommend(4096, 100) == "two_phase_bruck"
    assert model.recommend(32768, 2048) == "vendor"
    save_report("fig9_performance_model", "\n".join(lines))

"""Fig. 6 — data scaling of the non-uniform schemes.

One panel per process count (128 … 32768); block size N sweeps 16 … 2048
bytes under the continuous-uniform distribution.  Expected shape (paper
§4.1): two-phase Bruck beats the vendor alltoallv for small-to-moderate N
with the winning range shrinking at higher P (crossovers ≈ 1024/512/256/128
at P = 4096/8192/16384/32768); padded Bruck wins only for tiny N at small
P and degrades rapidly with N.
"""

import pytest

from repro.bench import fig6_data_scaling, format_series_table, format_speedup

from _common import once, save_report

BLOCKS = (16, 32, 64, 128, 256, 512, 1024, 2048)
SMALL = (128, 512, 1024)
LARGE = (4096, 8192, 16384, 32768)


def _render(out):
    lines = []
    for p, fd in out.items():
        lines.append(format_series_table(fd.title, fd.x_header, fd.series,
                                         fd.xs))
        cross = max((n for n in fd.xs
                     if fd.series["two_phase_bruck"][n].median
                     < fd.series["vendor_alltoallv"][n].median), default=0)
        lines.append(f"two-phase beats vendor up to N = {cross}\n")
    return "\n".join(lines), out


def test_fig6_small_p(benchmark):
    text, out = _render(once(benchmark, lambda: fig6_data_scaling(
        procs=SMALL, blocks=BLOCKS, iterations=5)))
    # At small/moderate P the Bruck family dominates small blocks.  Under
    # the piecewise eager model (machine-model v2) P=128 additionally shows
    # a mid-band at N=256-512 where the direct schemes win: two-phase's
    # forwarded volume crosses the eager threshold first and pays the
    # eager-factor penalty on forwarded bytes, while 127 direct messages
    # are still cheap at this P.  Two-phase recovers by N=1024 once both
    # sides are rendezvous-dominated.
    for p in SMALL:
        fd = out[p]
        assert fd.winner(16) in ("padded_bruck", "two_phase_bruck")
        assert fd.winner(1024) == "two_phase_bruck"
    for p in (512, 1024):
        assert out[p].winner(256) in ("padded_bruck", "two_phase_bruck")
    assert out[128].winner(256) in ("spread_out", "vendor_alltoallv")
    save_report("fig6_data_scaling_small_p", text)


def test_fig6_large_p(benchmark):
    text, out = _render(once(benchmark, lambda: fig6_data_scaling(
        procs=LARGE, blocks=BLOCKS, iterations=5)))
    # The crossover ladder (the paper's headline numbers).
    expected_cross = {4096: 1024, 8192: 512, 16384: 256, 32768: 128}
    for p, n_star in expected_cross.items():
        fd = out[p]
        tp = fd.series["two_phase_bruck"]
        vendor = fd.series["vendor_alltoallv"]
        assert tp[n_star].median < vendor[n_star].median, (p, n_star)
        assert tp[2 * n_star].median > vendor[2 * n_star].median, (p, n_star)
    # Paper's N=512/P=4096 anchor: padded ≈ 2x two-phase (202.9 vs 91.6 ms).
    fd = out[4096]
    ratio = fd.series["padded_bruck"][512].median \
        / fd.series["two_phase_bruck"][512].median
    assert 1.5 < ratio < 3.0
    save_report("fig6_data_scaling_large_p", text)


def test_fig6_speedup_quotes(benchmark):
    """The paper's §4.1 N=256 speedup series: 50.1/38.5/35.8/30.8 %."""
    out = once(benchmark, lambda: fig6_data_scaling(
        procs=(512, 1024, 2048, 4096), blocks=(256,), iterations=5))
    lines = ["Paper quote (N=256): two-phase is 50.1%, 38.5%, 35.8%, 30.8% "
             "faster than MPI_Alltoallv at P=512, 1024, 2048, 4096.",
             "Reproduced:"]
    for p in (512, 1024, 2048, 4096):
        fd = out[p]
        tp = fd.series["two_phase_bruck"][256].median
        vendor = fd.series["vendor_alltoallv"][256].median
        lines.append(f"  P={p}: " + format_speedup(
            "two_phase_bruck", tp, "vendor_alltoallv", vendor))
        assert tp < vendor
    save_report("fig6_speedup_quotes", "\n".join(lines))

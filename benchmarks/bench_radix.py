"""Radix crossover table + auto-tuner cold→warm convergence.

The radix dial trades messages for volume: base-r digits mean
``(r-1)·ceil(log_r P)`` sends per rank but each block is forwarded only
once per *nonzero base-r digit* of its distance.  This bench commits the
two artifacts the dial is judged by:

* **Crossover table** — the analytic closed form swept over a (P, N)
  grid and all candidate radices.  Expected shape: latency-dominated
  cells (small N) stay at r=2; bandwidth-dominated cells (large P·N)
  flip to r in the 8–64 range, with the winning radix growing along both
  axes.
* **Tuner trajectory** — real tensor-backend runs of one crossover cell
  (P=512, N=1024, where r=8 beats r=2 on simulated clock) appended to a
  run ledger one by one, with the :class:`~repro.core.tuner.AutoTuner`
  decision recorded after each append.  Expected shape: cold decisions
  come from the model (``source="model"``); once any (algorithm, radix)
  group reaches ``min_samples`` observations the tuner flips to
  ``source="ledger"`` and settles on the observed winner r=8.
"""

from repro.core.cost_model import best_radix, radix_cost
from repro.core.tuner import AutoTuner
from repro.simmpi import ExecutionConfig, THETA, run_spmd
from repro.simmpi.tensor import TensorAlltoallv

from _common import once, save_report

ALGORITHM = "two_phase_bruck"
PROCS = (512, 2048, 8192, 32768)
BLOCKS = (16, 256, 1024, 2048)
RADICES = (2, 4, 8, 16, 32)

# The simulated crossover cell: every radix runs in the tensor backend.
SIM_P = 512
SIM_N = 1024
SIM_RADICES = (2, 4, 8)
ROUNDS = 3  # appends per radix — exactly AutoTuner's default min_samples


def _crossover_rows():
    rows = []
    for p in PROCS:
        for n in BLOCKS:
            costs = {r: radix_cost(ALGORITHM, p, n, THETA, radix=r)
                     for r in RADICES if r <= p}
            winner = best_radix(p, n, THETA, algorithm=ALGORITHM,
                                radices=tuple(costs))
            rows.append((p, n, costs, winner))
    return rows


def _run_cell(radix, ledger_path):
    config = ExecutionConfig(machine=THETA, trace="metrics",
                             backend="tensor", wire="phantom",
                             ledger=str(ledger_path))
    spec = TensorAlltoallv(ALGORITHM, SIM_N, radix=radix)
    return run_spmd(spec, SIM_P, config=config)


def test_radix_crossover(benchmark, tmp_path):
    ledger = tmp_path / "radix_ledger.jsonl"

    def run():
        rows = _crossover_rows()
        tuner = AutoTuner(THETA, str(ledger))
        trajectory = [(0, None, tuner.decide(SIM_P, SIM_N,
                                             algorithm=ALGORITHM))]
        sim = {}
        runs = 0
        for _ in range(ROUNDS):
            for radix in SIM_RADICES:
                result = _run_cell(radix, ledger)
                sim[radix] = result
                runs += 1
                tuner.refresh()
                trajectory.append((runs, radix,
                                   tuner.decide(SIM_P, SIM_N,
                                                algorithm=ALGORITHM)))
        return rows, sim, trajectory

    rows, sim, trajectory = once(benchmark, run)

    lines = [f"radix crossover: {ALGORITHM} closed form (Theta profile, "
             f"per-rank seconds; * = winning radix)",
             f"{'P':>6} {'N':>5} " + " ".join(f"{'r=' + str(r):>11}"
                                              for r in RADICES)]
    for p, n, costs, winner in rows:
        cells = []
        for r in RADICES:
            if r not in costs:
                cells.append(f"{'n/a':>11}")
                continue
            mark = "*" if r == winner else " "
            cells.append(f"{costs[r]:>10.6f}{mark}")
        lines.append(f"{p:>6} {n:>5} " + " ".join(cells))

    lines.append("")
    lines.append(f"simulated check (tensor backend, P={SIM_P}, "
                 f"N={SIM_N} const):")
    for radix in SIM_RADICES:
        res = sim[radix]
        lines.append(f"  r={radix}: {res.elapsed * 1e3:9.4f} ms  "
                     f"{res.total_messages:>6} msgs  "
                     f"{res.total_bytes:>9} bytes")

    lines.append("")
    lines.append(f"auto-tuner trajectory (min_samples="
                 f"{AutoTuner(THETA).min_samples}, ledger grown one "
                 f"tensor run at a time):")
    for runs, appended, d in trajectory:
        label = "cold" if runs == 0 else f"after run {runs} (r={appended})"
        mean = f", mean {d.expected_s * 1e3:.4f} ms" if d.expected_s else ""
        lines.append(f"  {label:>20}: radix {d.radix:>2} from "
                     f"{d.source}{mean}")

    # The dial must matter: some cell flips past radix 2, some stays.
    winners = {(p, n): w for p, n, _, w in rows}
    assert any(w > 2 for w in winners.values()), \
        "no grid cell favours a radix above 2"
    assert any(w == 2 for w in winners.values()), \
        "radix 2 never optimal — latency regime missing from grid"
    # Winning radix is monotone along the N axis at the largest P.
    big = [winners[(PROCS[-1], n)] for n in BLOCKS]
    assert big == sorted(big)

    # The simulator agrees with the closed form's direction in the
    # demo cell: a higher radix beats today's r=2 kernels outright.
    assert sim[8].elapsed < sim[2].elapsed
    assert sim[8].total_messages > sim[2].total_messages
    assert sim[8].total_bytes < sim[2].total_bytes

    # Convergence: cold decision is model-sourced; the warm tuner picks
    # the observed winner from ledger evidence alone.
    assert trajectory[0][2].source == "model"
    final = trajectory[-1][2]
    assert final.source == "ledger"
    best_sim = min(SIM_RADICES, key=lambda r: sim[r].elapsed)
    assert final.radix == best_sim and final.radix > 2
    assert final.samples >= ROUNDS

    data = {
        "algorithm": ALGORITHM,
        "machine": "theta",
        "crossover": [
            {"nprocs": p, "max_block": n, "best_radix": winner,
             "cost_s": {str(r): costs[r] for r in costs}}
            for p, n, costs, winner in rows],
        "simulated_cell": {
            "nprocs": SIM_P, "max_block": SIM_N,
            "runs": [
                {"radix": r,
                 "simulated_s": sim[r].elapsed,
                 "messages": sim[r].total_messages,
                 "bytes": sim[r].total_bytes}
                for r in SIM_RADICES]},
        "tuner_trajectory": [
            {"ledger_runs": runs, "appended_radix": appended,
             "algorithm": d.algorithm, "radix": d.radix,
             "source": d.source, "samples": d.samples,
             "expected_s": d.expected_s}
            for runs, appended, d in trajectory],
    }
    save_report("radix_crossover", "\n".join(lines), data=data)

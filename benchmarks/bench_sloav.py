"""§6.1 — two-phase Bruck vs SLOAV (the prior log-time algorithm).

The paper claims two-phase Bruck improves on SLOAV by (1) decoupling
metadata from data, (2) replacing the growable temp/pointer-array store
with a monolithic buffer, (3) removing the final rotation, and (4)
removing the final scan.  This bench runs both *functionally* on the
thread simulator and reports where the streamlining pays off: SLOAV's
overheads grow with the data volume (extra copy passes), two-phase's
fixed cost is one allreduce, so two-phase pulls ahead as P·N grows.
"""

from repro.simmpi import format_phase_table
from repro.workloads import UniformBlocks, block_size_matrix

from _common import once, run_alltoallv, save_report

CONFIGS = ((32, 64), (64, 256), (128, 1024), (256, 2048))


def _run(algorithm, sizes, trace=False):
    return run_alltoallv(algorithm, sizes, trace=trace)


def test_sloav_vs_two_phase(benchmark):
    def run():
        rows = []
        for p, n in CONFIGS:
            sizes = block_size_matrix(UniformBlocks(n), p, seed=1)
            sloav = _run("sloav", sizes).elapsed
            tp = _run("two_phase_bruck", sizes).elapsed
            rows.append((p, n, sloav, tp))
        return rows

    rows = once(benchmark, run)
    lines = ["§6.1: two-phase Bruck vs SLOAV (functional runs, Theta)",
             f"{'P':>6} {'N':>6} {'SLOAV(ms)':>11} {'two-phase(ms)':>14} "
             f"{'tp faster':>10}"]
    for p, n, sloav, tp in rows:
        gain = (1 - tp / sloav) * 100
        lines.append(f"{p:>6} {n:>6} {sloav * 1e3:>11.3f} {tp * 1e3:>14.3f} "
                     f"{gain:>9.1f}%")
    # The streamlining wins once the data volume amortizes the allreduce.
    p, n, sloav, tp = rows[-1]
    assert tp < sloav, "two-phase must beat SLOAV at the largest config"
    # And the advantage must grow along the sweep.
    gains = [1 - tp / sloav for (_, _, sloav, tp) in rows]
    assert gains[-1] > gains[0]
    save_report("sloav_comparison", "\n".join(lines))


def test_sloav_overhead_phases(benchmark):
    """SLOAV pays rotation + scan phases two-phase doesn't have."""
    def run():
        sizes = block_size_matrix(UniformBlocks(256), 32, seed=2)
        sloav = _run("sloav", sizes, trace=True)
        tp = _run("two_phase_bruck", sizes, trace=True)
        return sloav.phase_times(), tp.phase_times()

    sloav_phases, tp_phases = once(benchmark, run)
    lines = [
        format_phase_table(sloav_phases,
                           header="SLOAV phase split (max over ranks, ms):"),
        format_phase_table(tp_phases,
                           header="two-phase phase split (ms):"),
    ]
    assert sloav_phases["final_rotation"] > 0
    assert sloav_phases["scan"] > 0
    assert "final_rotation" not in tp_phases
    assert "scan" not in tp_phases
    save_report("sloav_phase_overheads", "\n".join(lines))

"""Paper-scale smoke: every registered algorithm at P=32768 on the
tensor backend, under one wall-clock budget.

The source paper's largest configurations run at 32K ranks; this script
proves the vectorized backend covers that scale for the full algorithm
registry (uniform and non-uniform) inside a CI budget.  Non-uniform
algorithms run with constant per-pair sizes — the only form that needs
no 32K x 32K byte matrix — which the equivalence matrix separately pins
bit-identical to the coop backend at small P.

Usage: PYTHONPATH=src python scripts/tensor_scale_smoke.py [P] [budget_s]
"""

import sys
import time

from repro.core.registry import list_algorithms
from repro.simmpi import ExecutionConfig, THETA, run_spmd
from repro.simmpi.tensor import TensorAlltoall, TensorAlltoallv


def main(nprocs: int = 32768, wall_budget: float = 300.0) -> int:
    config = ExecutionConfig(machine=THETA, trace=False, backend="tensor",
                             wire="phantom")
    block = 64
    specs = [(f"uniform/{name}", TensorAlltoall(name, block))
             for name in list_algorithms("uniform")]
    specs += [(f"nonuniform/{name}", TensorAlltoallv(name, block))
              for name in list_algorithms("nonuniform")]

    start = time.perf_counter()
    for label, spec in specs:
        t0 = time.perf_counter()
        res = run_spmd(spec, nprocs, config=config)
        wall = time.perf_counter() - t0
        clock = max(res.clocks)
        assert clock > 0 and len(res.clocks) == nprocs
        assert res.total_messages > 0
        print(f"{label:32s} {wall:7.2f}s host wall  "
              f"{clock * 1e3:12.4f} simulated ms  "
              f"{res.total_messages:>12} messages")
    total = time.perf_counter() - start
    print(f"\n{len(specs)} algorithms at P={nprocs}: "
          f"{total:.1f}s host wall (budget {wall_budget:.0f}s)")
    if total >= wall_budget:
        print(f"FAIL: exceeded the {wall_budget:.0f}s wall budget")
        return 1
    return 0


if __name__ == "__main__":
    p = int(sys.argv[1]) if len(sys.argv) > 1 else 32768
    budget = float(sys.argv[2]) if len(sys.argv) > 2 else 300.0
    sys.exit(main(p, budget))

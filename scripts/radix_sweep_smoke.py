"""Radix-sweep smoke: every radix-capable kernel at paper scale on the
tensor backend, r in {2, 8}, under one wall-clock budget.

The radix dial generalizes the digit schedule from bits to base-r
digits; this script proves the generalized kernels still cover the
paper's P=32K configuration in the vectorized backend, and that the
r=2 parameterization is not merely *close* to the unparameterized
kernels but produces the identical simulated clock — the dial's
backward-compatibility contract, checked at full scale (small-P
bit-identity across all backends lives in the equivalence matrix).

Usage: PYTHONPATH=src python scripts/radix_sweep_smoke.py [P] [budget_s]
"""

import sys
import time

from repro.core.registry import radix_algorithms
from repro.simmpi import ExecutionConfig, THETA, run_spmd
from repro.simmpi.tensor import TensorAlltoall, TensorAlltoallv


def main(nprocs: int = 32768, wall_budget: float = 300.0) -> int:
    config = ExecutionConfig(machine=THETA, trace=False, backend="tensor",
                             wire="phantom")
    block = 64
    radices = (2, 8)

    def spec(kind, name, radix):
        if kind == "uniform":
            return TensorAlltoall(name, block, radix=radix)
        return TensorAlltoallv(name, block, radix=radix)

    cases = [(kind, name)
             for kind in ("uniform", "nonuniform")
             for name in radix_algorithms(kind)]
    start = time.perf_counter()
    for kind, name in cases:
        baseline = None
        for radix in radices:
            t0 = time.perf_counter()
            res = run_spmd(spec(kind, name, radix), nprocs, config=config)
            wall = time.perf_counter() - t0
            clock = max(res.clocks)
            assert clock > 0 and len(res.clocks) == nprocs
            assert res.total_messages > 0
            if radix == 2:
                # The parameterized r=2 run must be bit-identical to the
                # unparameterized kernel it claims to generalize.
                base = run_spmd(spec(kind, name, 2).__class__(
                    name, block), nprocs, config=config)
                assert res.clocks == base.clocks, (
                    f"{name}: radix=2 clocks differ from the "
                    f"unparameterized baseline")
                baseline = clock
            label = f"{kind}/{name}"
            print(f"{label:38s} r={radix}  {wall:6.2f}s host wall  "
                  f"{clock * 1e3:12.4f} simulated ms  "
                  f"{res.total_messages:>12} messages")
        assert baseline is not None
    total = time.perf_counter() - start
    print(f"\n{len(cases)} kernels x r in {radices} at P={nprocs}: "
          f"{total:.1f}s host wall (budget {wall_budget:.0f}s)")
    if total >= wall_budget:
        print(f"FAIL: exceeded the {wall_budget:.0f}s wall budget")
        return 1
    return 0


if __name__ == "__main__":
    p = int(sys.argv[1]) if len(sys.argv) > 1 else 32768
    budget = float(sys.argv[2]) if len(sys.argv) > 2 else 300.0
    sys.exit(main(p, budget))

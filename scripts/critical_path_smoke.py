"""Observability smoke: attribution conservation at CI scale.

Two tensor-backend runs under one wall budget:

* P=2048 with a seeded straggler+delay plan — the critical-path engine
  must decompose every rank's makespan into buckets that ``fsum``
  exactly to the rank's simulated clock, end the extracted path exactly
  at the run's makespan, and charge the straggler surcharge to the
  straggling ranks only;
* P=32768 lockstep (the paper's largest configuration) with
  ``trace="metrics"`` — the vectorized aggregates and the attribution
  must hold at full paper scale, where per-event tracing is impossible.

Usage: PYTHONPATH=src python scripts/critical_path_smoke.py [budget_s]
"""

import math
import sys
import time

from repro.simmpi import ExecutionConfig, THETA, run_spmd
from repro.simmpi.tensor import TensorAlltoallv

ALGORITHM = "two_phase_bruck"
BLOCK = 64
PLAN = "delay:d=30us,jitter=15us,p=0.3;straggler:ranks=2:77,factor=3"
STRAGGLERS = (2, 77)


def check(nprocs: int, fault_plan) -> None:
    config = ExecutionConfig(machine=THETA, trace="metrics",
                             backend="tensor", wire="phantom",
                             fault_plan=fault_plan, fault_seed=29)
    t0 = time.perf_counter()
    res = run_spmd(TensorAlltoallv(ALGORITHM, BLOCK), nprocs, config=config)
    cp = res.critical_path()
    wall = time.perf_counter() - t0

    assert res.metrics is not None and res.metrics.total_messages > 0
    assert len(cp.per_rank) == nprocs
    for attr in cp.per_rank:
        # The conservation law, exactly: buckets fsum to the rank clock.
        assert attr.total() == attr.makespan, (
            f"rank {attr.rank}: buckets fsum to {attr.total()!r}, "
            f"clock is {attr.makespan!r}")
        assert attr.makespan == res.clocks[attr.rank]
    assert cp.path[-1].end == res.elapsed, (
        f"path ends at {cp.path[-1].end!r}, makespan {res.elapsed!r}")
    totals = cp.bucket_totals()
    assert math.fsum(totals.values()) > 0
    if fault_plan is not None:
        for r in STRAGGLERS:
            assert cp.per_rank[r].fault_delay > 0.0, r
        clean = [a.fault_delay for a in cp.per_rank
                 if a.rank not in STRAGGLERS]
        assert all(v == 0.0 for v in clean), "non-straggler paid surcharge"
        assert cp.injected_delay > 0.0
    else:
        assert totals["fault_delay"] == 0.0
    pct = {k: f"{100 * v / math.fsum(totals.values()):.1f}%"
           for k, v in totals.items()}
    print(f"P={nprocs:>6} {ALGORITHM} "
          f"({'faulted' if fault_plan else 'clean'}): {wall:6.2f}s host "
          f"wall, {res.elapsed * 1e3:10.4f} simulated ms, "
          f"{res.metrics.total_messages} messages, attribution {pct}")


def main(wall_budget: float = 300.0) -> int:
    start = time.perf_counter()
    check(2048, PLAN)
    check(32768, None)
    total = time.perf_counter() - start
    print(f"\ncritical-path smoke: {total:.1f}s host wall "
          f"(budget {wall_budget:.0f}s)")
    if total >= wall_budget:
        print(f"FAIL: exceeded the {wall_budget:.0f}s wall budget")
        return 1
    return 0


if __name__ == "__main__":
    budget = float(sys.argv[1]) if len(sys.argv) > 1 else 300.0
    sys.exit(main(budget))

"""Byzantine chaos smoke: the quadchotomy at CI scale.

Exercises the corrupt/forge fault kinds against the verified transport
in two regimes, under one wall budget:

* P=256 on the coop backend with the phantom wire — the four-arm
  guarantee at scale, one run per arm:

  1. *byte-correct*: ``reliability="verify"`` + ``on_fault="retry"``
     absorbs every tampered and forged envelope (detections match
     injections that reached a receiver; survivors none the wiser);
  2. *typed error*: the same plan under ``fail-fast`` surfaces as a
     :class:`MessageCorruptError` — never a hang;
  3. *verified partial*: a saturating corrupt plan under ``degrade``
     convicts and tombstones the lying sender, flagging the result;
  4. *Byzantine-delivered*: without the verify tier the transport is
     blind — injections land, zero detections — which is exactly why
     the tier exists.

* P=16 on the threads backend with the bytes wire — the same verified
  transport with real payloads, byte-verified end to end against the
  expected all-to-allv result.

Usage: PYTHONPATH=src python scripts/byzantine_chaos_smoke.py [budget_s]
"""

import sys
import time

from repro.core.registry import get_algorithm
from repro.simmpi import (
    ExecutionConfig,
    MessageCorruptError,
    THETA,
    run_spmd,
)
from repro.workloads import (
    PowerLawBlocks,
    block_size_matrix,
    build_vargs,
    verify_recv,
)

ALGORITHM = "spread_out"       # direct pairwise: every channel exercised
PLAN = "corrupt:p=0.02;forge:p=0.01;dup:p=0.03"
SEED = 23


def _prog(sizes, *, fill, verify):
    fn = get_algorithm(ALGORITHM, kind="nonuniform").fn

    def prog(comm):
        vargs = build_vargs(comm.rank, sizes, fill=fill)
        fn(comm, *vargs.as_tuple())
        if verify:
            verify_recv(comm.rank, sizes, vargs.recvbuf)
        return comm.rank

    return prog


def _cfg(**kw):
    defaults = dict(machine=THETA, trace="metrics", timeout=300,
                    backend="coop", wire="phantom", fault_seed=SEED)
    defaults.update(kw)
    return ExecutionConfig(**defaults)


def check_quadchotomy_at_scale(nprocs: int) -> None:
    sizes = block_size_matrix(PowerLawBlocks(64), nprocs, seed=3)
    prog = _prog(sizes, fill=False, verify=False)

    # Arm 1: verified transport absorbs the chaos.
    t0 = time.perf_counter()
    res = run_spmd(prog, nprocs, config=_cfg(
        fault_plan=PLAN, on_fault="retry", reliability="verify"))
    wall = time.perf_counter() - t0
    counts = dict(res.metrics.fault_counts)
    assert res.returns == list(range(nprocs))
    assert not res.degraded_ranks
    assert counts.get("corrupt", 0) > 0, "plan injected no tampering"
    assert counts.get("forge", 0) > 0, "plan injected no forgeries"
    assert counts.get("corrupt_detected", 0) > 0, "verify saw nothing"
    assert counts.get("forge_rejected", 0) == counts.get("forge", 0), (
        "a forged envelope escaped the auth check")
    print(f"P={nprocs:>4} arm 1 (verify+retry):  {wall:6.2f}s host wall, "
          f"{res.elapsed * 1e3:9.4f} simulated ms, faults {counts}")

    # Arm 2: the same plan under fail-fast is a typed error, instantly.
    try:
        run_spmd(prog, nprocs, config=_cfg(
            fault_plan=PLAN, on_fault="fail-fast", reliability="verify"))
    except Exception as exc:
        original = getattr(exc, "original", exc)
        assert isinstance(original, MessageCorruptError), original
        print(f"P={nprocs:>4} arm 2 (fail-fast):     typed "
              f"{type(original).__name__}: {original}")
    else:
        raise AssertionError("fail-fast returned success under tampering")

    # Arm 3: a saturating liar under degrade is convicted, not obeyed.
    res = run_spmd(prog, nprocs, config=_cfg(
        fault_plan="corrupt:p=1,src=3", on_fault="degrade",
        reliability="verify"))
    assert res.degraded_ranks == [3], res.degraded_ranks
    assert res.degraded
    print(f"P={nprocs:>4} arm 3 (degrade):       convicted and tombstoned "
          f"rank {res.degraded_ranks}, survivors completed")

    # Arm 4: without the verify tier the transport is provably blind.
    res = run_spmd(prog, nprocs, config=_cfg(
        fault_plan=PLAN, on_fault="retry", reliability="retry"))
    counts = dict(res.metrics.fault_counts)
    assert counts.get("corrupt", 0) > 0
    assert counts.get("corrupt_detected", 0) == 0, (
        "plain retry claims detections it cannot make")
    assert counts.get("forge_rejected", 0) == 0
    print(f"P={nprocs:>4} arm 4 (no verify):     {counts.get('corrupt')} "
          f"tampered + {counts.get('forge')} forged envelopes delivered "
          f"undetected — Byzantine delivery possible, as documented")


def check_byte_verified(nprocs: int) -> None:
    sizes = block_size_matrix(PowerLawBlocks(64), nprocs, seed=3)
    prog = _prog(sizes, fill=True, verify=True)
    t0 = time.perf_counter()
    res = run_spmd(prog, nprocs, config=_cfg(
        backend="threads", wire="bytes", fault_plan=PLAN,
        on_fault="retry", reliability="verify"))
    wall = time.perf_counter() - t0
    counts = dict(res.metrics.fault_counts)
    assert res.returns == list(range(nprocs))
    assert counts.get("corrupt_detected", 0) > 0
    print(f"P={nprocs:>4} bytes wire:            {wall:6.2f}s host wall, "
          f"byte-verified on every rank under {counts}")


def main(wall_budget: float = 300.0) -> int:
    start = time.perf_counter()
    check_quadchotomy_at_scale(256)
    check_byte_verified(16)
    total = time.perf_counter() - start
    print(f"\nbyzantine chaos smoke: {total:.1f}s host wall "
          f"(budget {wall_budget:.0f}s)")
    if total >= wall_budget:
        print(f"FAIL: exceeded the {wall_budget:.0f}s wall budget")
        return 1
    return 0


if __name__ == "__main__":
    budget = float(sys.argv[1]) if len(sys.argv) > 1 else 300.0
    sys.exit(main(budget))

"""Tests for the statistics helpers (the paper's median/MAD reporting)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import Summary, mad, max_order_statistic_quantile, median, summarize


class TestMedianMad:
    def test_median_odd_even(self):
        assert median([3, 1, 2]) == 2
        assert median([1, 2, 3, 4]) == 2.5

    def test_mad_constant_is_zero(self):
        assert mad([5, 5, 5]) == 0.0

    def test_mad_known_value(self):
        # values 1..7: median 4, |x-4| = 3,2,1,0,1,2,3 -> median 2
        assert mad([1, 2, 3, 4, 5, 6, 7]) == 2.0

    def test_mad_robust_to_outlier(self):
        base = [10.0] * 9
        assert mad(base + [1e6]) == 0.0  # one outlier cannot move it

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            median([])
        with pytest.raises(ValueError):
            mad([])

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_mad_nonnegative_and_median_in_range(self, xs):
        assert mad(xs) >= 0
        assert min(xs) <= median(xs) <= max(xs)


class TestSummarize:
    def test_fields(self):
        s = summarize([4.0, 1.0, 3.0, 2.0])
        assert s.median == 2.5
        assert s.iterations == 4
        assert s.minimum == 1.0
        assert s.maximum == 4.0

    def test_str_contains_counts(self):
        text = str(summarize([1.0, 2.0]))
        assert "n=2" in text


class TestMaxOrderStatistic:
    def test_solves_u_pow_count(self):
        u = max_order_statistic_quantile(100, 0.5)
        assert u ** 100 == pytest.approx(0.5)

    def test_large_count_near_one(self):
        assert max_order_statistic_quantile(10 ** 9) > 0.999999999

    def test_validation(self):
        with pytest.raises(ValueError):
            max_order_statistic_quantile(0)
        with pytest.raises(ValueError):
            max_order_statistic_quantile(10, 1.5)

"""Unit tests for the vectorized clock primitives."""

import numpy as np
import pytest

from repro.simmpi import LOCAL, THETA
from repro.timing.engine import (
    bruck_step,
    copy_time_blocks,
    copy_time_vec,
    datatype_time_vec,
    dissemination_allreduce_cost,
    head_latency_vec,
    sendrecv_rounds,
    serial_time_vec,
    wire_time_vec,
)


class TestVectorizedCosts:
    @pytest.mark.parametrize("n", [0, 1, 100, 8192, 8193, 10 ** 6])
    def test_match_scalar_machine_methods(self, n):
        for m in (THETA, LOCAL):
            assert head_latency_vec(m, n) == pytest.approx(m.head_latency(n))
            assert serial_time_vec(m, n, 64) == pytest.approx(
                m.serial_time(n, 64))
            assert wire_time_vec(m, n, 64) == pytest.approx(
                m.wire_time(n, 64))
            assert copy_time_vec(m, n) == pytest.approx(m.copy_time(n))

    def test_array_inputs(self):
        ns = np.array([0, 100, 9000])
        out = serial_time_vec(THETA, ns, 128)
        assert out.shape == (3,)
        assert out[0] == 0.0

    def test_copy_time_blocks_additive(self):
        m = THETA
        # 3 copies of 100 bytes == copy_time_blocks(3, 300)
        assert copy_time_blocks(m, 3, 300) == pytest.approx(
            3 * m.copy_time(100))

    def test_datatype_vec_matches_scalar(self):
        assert datatype_time_vec(THETA, 5, 200) == pytest.approx(
            THETA.datatype_time(5, 200))
        assert datatype_time_vec(THETA, 0, 0) == 0.0


class TestClockRecurrences:
    def test_bruck_step_symmetric_case(self):
        # Equal clocks + equal sizes: everyone advances identically by
        # o_send + max(o_recv, head) + serial.
        m = THETA
        p = 8
        clocks = np.full(p, 5.0)
        out = bruck_step(clocks, m, p, 1, 100.0)
        expect = 5.0 + m.o_send + max(m.o_recv, m.head_latency(100)) \
            + m.serial_time(100, p)
        assert np.allclose(out, expect)

    def test_bruck_step_straggler_propagates(self):
        # One slow rank delays exactly its downstream receiver.
        m = LOCAL
        p = 4
        clocks = np.zeros(p)
        clocks[2] = 1.0  # straggler
        out = bruck_step(clocks, m, p, 1, 10.0)
        # rank 1 receives from rank 2 => inherits the delay
        assert out[1] > 1.0
        assert out[0] < 1.0 and out[3] < 1.0

    def test_sendrecv_rounds_orientation(self):
        # Dissemination receives from (p - offset): the straggler delays
        # rank (straggler + offset).
        m = LOCAL
        p = 4
        clocks = np.zeros(p)
        clocks[1] = 1.0
        out = sendrecv_rounds(clocks, m, p, 2, 8.0)
        assert out[3] > 1.0          # 3 receives from (3 - 2) = 1
        assert out[0] < 1.0

    def test_allreduce_cost_rounds(self):
        m = LOCAL
        for p in (2, 3, 8, 13):
            out = dissemination_allreduce_cost(np.zeros(p), m, p)
            # ceil(log2 P) rounds, all ranks symmetric
            rounds = (p - 1).bit_length()
            per_round = m.o_send + max(m.o_recv, m.head_latency(8)) \
                + m.serial_time(8, p)
            assert np.allclose(out, rounds * per_round)

    def test_allreduce_single_rank_noop(self):
        out = dissemination_allreduce_cost(np.ones(1), LOCAL, 1)
        assert out.tolist() == [1.0]

"""The load-bearing integration tests: the analytic timing engine must be
*bit-identical* to the functional thread simulator at small P (exact mode)
and statistically consistent in CLT mode.

These tests pin every constant of :mod:`repro.timing` to
:mod:`repro.simmpi`: any drift between the two engines — a missed copy
charge, a wrong partner index, a changed cost rule — fails here.
"""

import numpy as np
import pytest

from repro.core.nonuniform import alltoallv
from repro.core.uniform import alltoall
from repro.simmpi import CORI, LOCAL, STAMPEDE2, THETA, run_spmd
from repro.timing import predict_alltoallv, predict_uniform
from repro.timing.uniform import UNIFORM_PREDICTORS
from repro.workloads import UniformBlocks, block_size_matrix, build_vargs

MACHINES = [THETA, CORI, STAMPEDE2, LOCAL]
NONUNIFORM = ["two_phase_bruck", "padded_bruck", "padded_alltoall",
              "spread_out"]


def functional_uniform(algorithm, machine, p, n):
    def prog(comm):
        send = np.zeros(p * n, dtype=np.uint8)
        recv = np.zeros(p * n, dtype=np.uint8)
        alltoall(comm, send, recv, n, algorithm=algorithm)
    return run_spmd(prog, p, machine=machine, trace=False).elapsed


def functional_nonuniform(algorithm, machine, sizes):
    def prog(comm):
        args = build_vargs(comm.rank, sizes)
        alltoallv(comm, *args.as_tuple(), algorithm=algorithm)
    return run_spmd(prog, sizes.shape[0], machine=machine,
                    trace=False).elapsed


class TestUniformParity:
    @pytest.mark.parametrize("machine", MACHINES, ids=lambda m: m.name)
    @pytest.mark.parametrize("algorithm", sorted(UNIFORM_PREDICTORS))
    def test_bit_exact_p16(self, machine, algorithm):
        p, n = 16, 32
        functional = functional_uniform(algorithm, machine, p, n)
        predicted = predict_uniform(algorithm, machine, p, n).total
        assert predicted == pytest.approx(functional, rel=1e-12, abs=1e-15)

    @pytest.mark.parametrize("p", [2, 3, 5, 8, 13, 24])
    @pytest.mark.parametrize("n", [1, 64, 1024])
    def test_bit_exact_across_shapes(self, p, n):
        for algorithm in ("zero_rotation_bruck", "basic_bruck_dt",
                          "spread_out"):
            functional = functional_uniform(algorithm, THETA, p, n)
            predicted = predict_uniform(algorithm, THETA, p, n).total
            assert predicted == pytest.approx(functional, rel=1e-12,
                                              abs=1e-15)

    def test_rendezvous_sized_blocks(self):
        # Per-step Bruck messages crossing the eager threshold.
        p = 8
        n = THETA.eager_threshold  # m*n straddles the protocol switch
        for algorithm in ("modified_bruck", "spread_out"):
            functional = functional_uniform(algorithm, THETA, p, n)
            predicted = predict_uniform(algorithm, THETA, p, n).total
            assert predicted == pytest.approx(functional, rel=1e-12)

    def test_zero_block_size(self):
        assert predict_uniform("basic_bruck", THETA, 8, 0).total == 0.0

    def test_unknown_algorithm(self):
        with pytest.raises(KeyError):
            predict_uniform("nope", THETA, 8, 8)

    def test_phase_split_sums_to_total(self):
        t = predict_uniform("basic_bruck", THETA, 32, 64)
        assert t.total == pytest.approx(
            t.initial_rotation + t.communication + t.final_rotation
            + t.index_setup)
        assert t.final_rotation > 0
        t2 = predict_uniform("zero_rotation_bruck", THETA, 32, 64)
        assert t2.final_rotation == 0.0
        assert t2.initial_rotation == 0.0


class TestNonuniformExactParity:
    @pytest.mark.parametrize("machine", MACHINES, ids=lambda m: m.name)
    @pytest.mark.parametrize("algorithm", NONUNIFORM)
    def test_bit_exact_p16(self, machine, algorithm):
        dist = UniformBlocks(64)
        sizes = block_size_matrix(dist, 16, seed=9)
        functional = functional_nonuniform(algorithm, machine, sizes)
        predicted = predict_alltoallv(algorithm, machine, 16, dist,
                                      seed=9, mode="exact").elapsed
        assert predicted == pytest.approx(functional, rel=1e-12, abs=1e-15)

    @pytest.mark.parametrize("p", [2, 3, 5, 8, 13, 24])
    def test_bit_exact_across_p(self, p):
        dist = UniformBlocks(48)
        sizes = block_size_matrix(dist, p, seed=p)
        for algorithm in NONUNIFORM:
            functional = functional_nonuniform(algorithm, THETA, sizes)
            predicted = predict_alltoallv(algorithm, THETA, p, dist,
                                          seed=p, mode="exact").elapsed
            assert predicted == pytest.approx(functional, rel=1e-12,
                                              abs=1e-15), algorithm

    @pytest.mark.parametrize("max_n", [0, 1, 1024])
    def test_degenerate_sizes(self, max_n):
        dist = UniformBlocks(max_n)
        sizes = block_size_matrix(dist, 6, seed=1)
        for algorithm in NONUNIFORM:
            functional = functional_nonuniform(algorithm, THETA, sizes)
            predicted = predict_alltoallv(algorithm, THETA, 6, dist,
                                          seed=1, mode="exact").elapsed
            assert predicted == pytest.approx(functional, rel=1e-12,
                                              abs=1e-15)

    def test_vendor_alias(self):
        dist = UniformBlocks(32)
        a = predict_alltoallv("vendor", THETA, 8, dist, seed=0,
                              mode="exact")
        b = predict_alltoallv("spread_out", THETA, 8, dist, seed=0,
                              mode="exact")
        assert a.elapsed == b.elapsed
        assert a.algorithm == "spread_out"

    def test_unknown_algorithm(self):
        with pytest.raises(KeyError):
            predict_alltoallv("bogus", THETA, 8, UniformBlocks(8))

    def test_invalid_mode(self):
        with pytest.raises(ValueError, match="mode"):
            predict_alltoallv("spread_out", THETA, 8, UniformBlocks(8),
                              mode="sorcery")


class TestCLTConsistency:
    """CLT mode must track exact mode closely at a P where both run."""

    @pytest.mark.parametrize("algorithm", NONUNIFORM)
    @pytest.mark.parametrize("max_n", [16, 256, 1024])
    def test_within_ten_percent_of_exact(self, algorithm, max_n):
        p = 512
        dist = UniformBlocks(max_n)
        exact = np.median([
            predict_alltoallv(algorithm, THETA, p, dist, seed=s,
                              mode="exact").elapsed for s in range(3)])
        clt = np.median([
            predict_alltoallv(algorithm, THETA, p, dist, seed=s,
                              mode="clt").elapsed for s in range(3)])
        assert clt == pytest.approx(exact, rel=0.10)

    def test_auto_mode_switches(self):
        dist = UniformBlocks(64)
        small = predict_alltoallv("two_phase_bruck", THETA, 64, dist)
        big = predict_alltoallv("two_phase_bruck", THETA, 4096, dist)
        assert small.mode == "exact"
        assert big.mode == "clt"

    def test_clt_deterministic_per_seed(self):
        dist = UniformBlocks(128)
        a = predict_alltoallv("two_phase_bruck", THETA, 8192, dist, seed=5,
                              mode="clt").elapsed
        b = predict_alltoallv("two_phase_bruck", THETA, 8192, dist, seed=5,
                              mode="clt").elapsed
        assert a == b

    def test_scales_to_32k(self):
        dist = UniformBlocks(64)
        t = predict_alltoallv("two_phase_bruck", THETA, 32768, dist,
                              mode="clt").elapsed
        assert 0 < t < 10.0  # sub-10s simulated; finishes in milliseconds


class TestRadixParity:
    """The analytic predictors track the functional simulator at every
    radix, and the radix-2 parameterization is the unmodified formula."""

    RADICES = (3, 4, 8)

    def functional_uniform_radix(self, algorithm, machine, p, n, radix):
        def prog(comm):
            send = np.zeros(p * n, dtype=np.uint8)
            recv = np.zeros(p * n, dtype=np.uint8)
            alltoall(comm, send, recv, n, algorithm=algorithm, radix=radix)
        from repro.simmpi import ExecutionConfig
        return run_spmd(prog, p, config=ExecutionConfig(
            machine=machine, trace=False)).elapsed

    def functional_nonuniform_radix(self, algorithm, machine, sizes, radix):
        def prog(comm):
            args = build_vargs(comm.rank, sizes)
            alltoallv(comm, *args.as_tuple(), algorithm=algorithm,
                      radix=radix)
        from repro.simmpi import ExecutionConfig
        return run_spmd(prog, sizes.shape[0], config=ExecutionConfig(
            machine=machine, trace=False)).elapsed

    @pytest.mark.parametrize("radix", RADICES)
    @pytest.mark.parametrize("p", [5, 16, 17])
    def test_uniform_predictors_track_simulator(self, p, radix):
        from repro.core.registry import radix_algorithms
        for algorithm in radix_algorithms("uniform"):
            functional = self.functional_uniform_radix(
                algorithm, THETA, p, 32, radix)
            predicted = predict_uniform(algorithm, THETA, p, 32,
                                        radix=radix).total
            assert predicted == pytest.approx(
                functional, rel=1e-12, abs=1e-15), (algorithm, radix)

    @pytest.mark.parametrize("radix", RADICES)
    @pytest.mark.parametrize("p", [5, 16, 17])
    def test_nonuniform_predictors_track_simulator(self, p, radix):
        from repro.core.registry import radix_algorithms
        dist = UniformBlocks(48)
        sizes = block_size_matrix(dist, p, seed=p)
        for algorithm in radix_algorithms("nonuniform"):
            functional = self.functional_nonuniform_radix(
                algorithm, THETA, sizes, radix)
            predicted = predict_alltoallv(algorithm, THETA, p, dist,
                                          seed=p, mode="exact",
                                          radix=radix).elapsed
            assert predicted == pytest.approx(
                functional, rel=1e-12, abs=1e-15), (algorithm, radix)

    def test_radix_two_is_bit_identical_to_default(self):
        dist = UniformBlocks(64)
        for algorithm in ("two_phase_bruck", "padded_bruck"):
            a = predict_alltoallv(algorithm, THETA, 16, dist, seed=9,
                                  mode="exact").elapsed
            b = predict_alltoallv(algorithm, THETA, 16, dist, seed=9,
                                  mode="exact", radix=2).elapsed
            assert a == b  # exact: same code path, same floats
        assert predict_uniform("modified_bruck", THETA, 16, 32).total == \
            predict_uniform("modified_bruck", THETA, 16, 32, radix=2).total

    @pytest.mark.parametrize("radix", [4, 8])
    def test_clt_mode_accepts_radix(self, radix):
        dist = UniformBlocks(64)
        t = predict_alltoallv("two_phase_bruck", THETA, 8192, dist,
                              mode="clt", radix=radix)
        assert t.mode == "clt" and 0 < t.elapsed < 10.0

    def test_incapable_algorithm_rejected(self):
        with pytest.raises(ValueError, match="radix"):
            predict_uniform("basic_bruck", THETA, 8, 8, radix=4)
        with pytest.raises(ValueError, match="radix"):
            predict_alltoallv("spread_out", THETA, 8, UniformBlocks(8),
                              radix=4)

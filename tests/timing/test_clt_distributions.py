"""CLT-mode consistency across all the paper's distributions.

The base parity suite (test_parity.py) covers the uniform distribution;
Figs. 8/10/13 run windowed-uniform, normal, and power-law workloads
through the CLT path, so its moment handling must be right for those too.
"""

import numpy as np
import pytest

from repro.simmpi import THETA
from repro.timing import predict_alltoallv
from repro.timing.nonuniform import _serial_moments
from repro.workloads import (
    NormalBlocks,
    PowerLawBlocks,
    UniformBlocks,
    WindowedUniformBlocks,
)

DISTS = [
    UniformBlocks(256),
    WindowedUniformBlocks(256, 40),
    NormalBlocks(256),
    PowerLawBlocks(256, base=0.99),
    PowerLawBlocks(1024, base=0.999),
]


class TestCLTAcrossDistributions:
    @pytest.mark.parametrize("dist", DISTS, ids=lambda d: d.describe())
    @pytest.mark.parametrize("algorithm", ["two_phase_bruck",
                                           "padded_bruck", "spread_out"])
    def test_clt_tracks_exact(self, dist, algorithm):
        p = 512
        exact = np.median([
            predict_alltoallv(algorithm, THETA, p, dist, seed=s,
                              mode="exact").elapsed for s in range(3)])
        clt = np.median([
            predict_alltoallv(algorithm, THETA, p, dist, seed=s,
                              mode="clt").elapsed for s in range(3)])
        assert clt == pytest.approx(exact, rel=0.12), dist.describe()

    def test_padded_max_order_statistic(self):
        # Padded Bruck's cost is driven by the global max block; the CLT
        # mode's order-statistic sample must land near the true max.
        dist = NormalBlocks(512)
        p = 512
        exact = predict_alltoallv("padded_bruck", THETA, p, dist, seed=0,
                                  mode="exact").elapsed
        clt = predict_alltoallv("padded_bruck", THETA, p, dist, seed=0,
                                mode="clt").elapsed
        assert clt == pytest.approx(exact, rel=0.15)


class TestSerialMoments:
    @pytest.mark.parametrize("dist", DISTS, ids=lambda d: d.describe())
    def test_moments_match_sampling(self, dist):
        p = 1024
        mean, var = _serial_moments(THETA, dist, p)
        rng = np.random.default_rng(11)
        x = dist.sample(rng, 100_000)
        beta = THETA.beta_eff(p)
        rate = np.where(x <= THETA.eager_threshold,
                        THETA.eager_factor, 1.0) * beta
        s = rate * x
        assert mean == pytest.approx(s.mean(), rel=0.03)
        assert var == pytest.approx(s.var(), rel=0.08, abs=1e-18)

    def test_all_eager_shortcut(self):
        # Uniform without a tabulated pmf and max_block below threshold
        # uses the closed-form branch.
        dist = UniformBlocks(100)
        mean, var = _serial_moments(THETA, dist, 64)
        scale = THETA.beta_eff(64) * THETA.eager_factor
        assert mean == pytest.approx(scale * dist.mean)
        assert var == pytest.approx(scale ** 2 * dist.variance)

"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_predict_args(self):
        args = build_parser().parse_args(
            ["predict", "-a", "two_phase_bruck", "-p", "64", "-n", "32"])
        assert args.algorithm == "two_phase_bruck"
        assert args.nprocs == 64
        assert args.machine == "theta"

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["predict", "-a", "bogus", "-p", "4", "-n", "8"])


class TestCommands:
    def test_predict(self, capsys):
        assert main(["predict", "-a", "two_phase_bruck", "-p", "256",
                     "-n", "64"]) == 0
        out = capsys.readouterr().out
        assert "simulated ms" in out
        assert "exact mode" in out

    def test_predict_clt_at_scale(self, capsys):
        assert main(["predict", "-a", "vendor", "-p", "8192",
                     "-n", "64"]) == 0
        assert "clt mode" in capsys.readouterr().out

    def test_predict_sloav_refused(self, capsys):
        assert main(["predict", "-a", "sloav", "-p", "64", "-n", "8"]) == 2

    def test_run_verifies_delivery(self, capsys):
        assert main(["run", "-a", "two_phase_bruck", "-p", "8", "-n", "32",
                     "--machine", "local"]) == 0
        out = capsys.readouterr().out
        assert "byte-verified" in out

    def test_run_rejects_huge_p(self, capsys):
        assert main(["run", "-a", "vendor", "-p", "100000", "-n", "8"]) == 2

    def test_run_distributions(self, capsys):
        for dist in ("normal", "power_law"):
            assert main(["run", "-a", "sloav", "-p", "6", "-n", "24",
                         "--dist", dist, "--machine", "local"]) == 0

    def test_profiles(self, capsys):
        assert main(["profiles"]) == 0
        out = capsys.readouterr().out
        for name in ("theta", "cori", "stampede2", "local"):
            assert name in out

    def test_sweep(self, capsys):
        assert main(["sweep", "-p", "128", "--iterations", "1"]) == 0
        out = capsys.readouterr().out
        assert "two_phase_bruck" in out
        assert "data scaling" in out.lower()

    def test_trace_writes_perfetto_json(self, capsys, tmp_path):
        out_path = tmp_path / "trace.json"
        assert main(["trace", "--algorithm", "two_phase_bruck",
                     "--nprocs", "8", "--machine", "local",
                     "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "wire traffic" in out
        assert str(out_path) in out
        doc = json.loads(out_path.read_text())
        events = doc["traceEvents"]
        assert {e["pid"] for e in events if e["ph"] == "X"} == set(range(8))
        assert any(e.get("cat") == "phase" for e in events)

    def test_trace_summary_only(self, capsys):
        assert main(["trace", "-p", "4", "--machine", "local"]) == 0
        out = capsys.readouterr().out
        assert "congestion" in out
        assert "step(tag)" in out

    def test_trace_rejects_huge_p(self, capsys):
        assert main(["trace", "-p", "100000"]) == 2


class TestBackendSelection:
    def test_run_coop_backend(self, capsys):
        assert main(["run", "-a", "two_phase_bruck", "-p", "32", "-n", "16",
                     "--machine", "local", "--backend", "coop"]) == 0
        out = capsys.readouterr().out
        assert "coop backend" in out
        assert "byte-verified" in out

    def test_run_coop_lifts_thread_limit(self, capsys):
        # 300 ranks: refused on threads, accepted on coop.
        assert main(["run", "-a", "vendor", "-p", "300", "-n", "4",
                     "--machine", "local"]) == 2
        assert "--backend coop" in capsys.readouterr().err
        assert main(["run", "-a", "two_phase_bruck", "-p", "300", "-n", "4",
                     "--machine", "local", "--backend", "coop"]) == 0

    def test_run_coop_has_cap_too(self, capsys):
        assert main(["run", "-a", "vendor", "-p", "100000", "-n", "4",
                     "--backend", "coop"]) == 2

    def test_trace_coop_backend(self, capsys):
        assert main(["trace", "-p", "8", "--machine", "local",
                     "--backend", "coop"]) == 0
        assert "step(tag)" in capsys.readouterr().out

    def test_invalid_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "-a", "vendor", "-p", "4", "-n", "8",
                 "--backend", "fibers"])

"""Correctness and structure tests for every uniform all-to-all variant."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.common import num_steps, send_block_distances
from repro.core.registry import list_algorithms
from repro.core.uniform import alltoall
from repro.simmpi import LOCAL, THETA, run_spmd

from ..conftest import SMALL_PROCS

ALGORITHMS = list_algorithms("uniform")


def fill_pattern(rank, dest, n):
    return np.full(n, (rank * 31 + dest * 7 + 3) % 256, dtype=np.uint8)


def uniform_prog(algorithm, n):
    def prog(comm):
        p, r = comm.size, comm.rank
        send = np.concatenate([fill_pattern(r, j, n) for j in range(p)]) \
            if n else np.zeros(0, dtype=np.uint8)
        recv = np.zeros(p * n, dtype=np.uint8)
        alltoall(comm, send, recv, n, algorithm=algorithm)
        for j in range(p):
            expect = fill_pattern(j, r, n)
            got = recv[j * n:(j + 1) * n]
            assert np.array_equal(got, expect), (
                f"rank {r}: block from {j} wrong")
        return True
    return prog


class TestCorrectness:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("p", SMALL_PROCS)
    def test_delivery(self, algorithm, p):
        res = run_spmd(uniform_prog(algorithm, 5), p)
        assert all(res.returns)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_single_byte_blocks(self, algorithm):
        run_spmd(uniform_prog(algorithm, 1), 7)

    @pytest.mark.parametrize("algorithm",
                             [n for n in ALGORITHMS if n != "vendor"])
    def test_zero_byte_blocks_noop(self, algorithm):
        def prog(comm):
            recv = np.full(comm.size, 9, dtype=np.uint8)
            alltoall(comm, np.zeros(comm.size, dtype=np.uint8), recv, 0,
                     algorithm=algorithm)
            assert (recv == 9).all()  # untouched
        run_spmd(prog, 4)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_larger_blocks(self, algorithm):
        run_spmd(uniform_prog(algorithm, 257), 6)

    def test_unknown_algorithm(self):
        def prog(comm):
            alltoall(comm, np.zeros(4, dtype=np.uint8),
                     np.zeros(4, dtype=np.uint8), 1, algorithm="nope")
        with pytest.raises(KeyError, match="nope"):
            run_spmd(prog, 2)

    def test_sendbuf_not_modified(self):
        def prog(comm):
            p = comm.size
            send = np.arange(p * 4, dtype=np.uint8)
            orig = send.copy()
            recv = np.zeros(p * 4, dtype=np.uint8)
            alltoall(comm, send, recv, 4, algorithm="zero_rotation_bruck")
            assert np.array_equal(send, orig)
        run_spmd(prog, 5)

    @given(p=st.integers(2, 12), n=st.integers(1, 40),
           seed=st.integers(0, 10))
    @settings(max_examples=25, deadline=None)
    def test_random_payload_roundtrip_zero_rotation(self, p, n, seed):
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 256, size=(p, p, n)).astype(np.uint8)

        def prog(comm):
            r = comm.rank
            send = data[r].reshape(-1).copy()
            recv = np.zeros(p * n, dtype=np.uint8)
            alltoall(comm, send, recv, n, algorithm="zero_rotation_bruck")
            assert np.array_equal(recv.reshape(p, n), data[:, r, :])
        run_spmd(prog, p)


class TestMessageStructure:
    """The traced message sequence must match the Bruck schedule."""

    @pytest.mark.parametrize("p", [4, 5, 8, 13])
    def test_bruck_message_counts(self, p):
        n = 8
        res = run_spmd(uniform_prog("zero_rotation_bruck", n), p,
                       machine=LOCAL)
        steps = num_steps(p)
        for trace in res.traces:
            # one message per step per rank
            assert trace.message_count == steps
            for k, event in enumerate(trace.sends):
                m = len(send_block_distances(k, p))
                assert event.nbytes == m * n
                assert event.dst == (trace.rank - (1 << k)) % p

    @pytest.mark.parametrize("p", [4, 7, 8])
    def test_basic_bruck_sends_to_positive_direction(self, p):
        res = run_spmd(uniform_prog("basic_bruck", 4), p, machine=LOCAL)
        for trace in res.traces:
            for k, event in enumerate(trace.sends):
                assert event.dst == (trace.rank + (1 << k)) % p

    def test_spread_out_message_counts(self):
        p = 6
        res = run_spmd(uniform_prog("spread_out", 4), p, machine=LOCAL)
        for trace in res.traces:
            assert trace.message_count == p - 1
            assert all(e.nbytes == 4 for e in trace.sends)
            assert sorted(e.dst for e in trace.sends) == \
                sorted(q for q in range(p) if q != trace.rank)

    def test_total_bruck_volume_exceeds_spread_out(self):
        # Bruck trades bytes for latency: it must move more data.
        p, n = 16, 32
        bruck = run_spmd(uniform_prog("zero_rotation_bruck", n), p,
                         machine=LOCAL)
        so = run_spmd(uniform_prog("spread_out", n), p, machine=LOCAL)
        assert bruck.total_bytes > so.total_bytes
        assert bruck.total_messages < so.total_messages


class TestPhaseStructure:
    def test_basic_has_both_rotations(self):
        res = run_spmd(uniform_prog("basic_bruck", 8), 8, machine=THETA)
        phases = res.phase_times()
        assert phases["initial_rotation"] > 0
        assert phases["final_rotation"] > 0
        assert phases["communication"] > 0

    def test_modified_drops_final_rotation(self):
        res = run_spmd(uniform_prog("modified_bruck", 8), 8, machine=THETA)
        phases = res.phase_times()
        assert "final_rotation" not in phases
        assert phases["initial_rotation"] > 0

    def test_zero_rotation_drops_both(self):
        res = run_spmd(uniform_prog("zero_rotation_bruck", 8), 8,
                       machine=THETA)
        phases = res.phase_times()
        assert "initial_rotation" not in phases
        assert "final_rotation" not in phases
        assert phases["index_setup"] > 0

    def test_rotation_cost_ordering(self):
        # Fig. 2b: basic > modified > zero-rotation in non-comm overhead.
        n, p = 32, 16
        totals = {}
        for alg in ("basic_bruck", "modified_bruck", "zero_rotation_bruck"):
            res = run_spmd(uniform_prog(alg, n), p, machine=THETA)
            totals[alg] = res.elapsed
        assert totals["zero_rotation_bruck"] < totals["modified_bruck"] \
            < totals["basic_bruck"]


class TestDatatypeVariants:
    @pytest.mark.parametrize("pair", [
        ("basic_bruck", "basic_bruck_dt"),
        ("modified_bruck", "modified_bruck_dt"),
    ])
    def test_dt_slower_for_small_blocks(self, pair):
        # The paper's consistent observation at N = 32 B.
        plain, dt = pair
        p, n = 16, 32
        t_plain = run_spmd(uniform_prog(plain, n), p, machine=THETA).elapsed
        t_dt = run_spmd(uniform_prog(dt, n), p, machine=THETA).elapsed
        assert t_dt > t_plain

    def test_dt_variants_use_datatype_engine(self):
        res = run_spmd(uniform_prog("modified_bruck_dt", 16), 8,
                       machine=THETA)
        assert all(t.datatype_ops for t in res.traces)
        res_plain = run_spmd(uniform_prog("modified_bruck", 16), 8,
                             machine=THETA)
        assert all(not t.datatype_ops for t in res_plain.traces)

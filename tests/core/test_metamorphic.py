"""Metamorphic tests: every alltoall(v) implementation must deliver the
byte-identical receive buffer for the same inputs — they differ only in
*how* the bytes travel.

This catches subtle divergences (an off-by-one slot, a mis-rotated index)
even if each algorithm's own verification pattern were to mask it.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.nonuniform import alltoallv
from repro.core.registry import list_algorithms
from repro.core.uniform import alltoall
from repro.simmpi import LOCAL, run_spmd
from repro.workloads import UniformBlocks, block_size_matrix, build_vargs


def gather_uniform_recv(algorithm, p, n, seed):
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, size=(p, p * n)).astype(np.uint8)

    def prog(comm):
        send = data[comm.rank].copy()
        recv = np.zeros(p * n, dtype=np.uint8)
        alltoall(comm, send, recv, n, algorithm=algorithm)
        return recv
    return run_spmd(prog, p, machine=LOCAL, trace=False).returns


def gather_nonuniform_recv(algorithm, sizes, seed):
    p = sizes.shape[0]

    def prog(comm):
        # Per-rank RNG stream: thread scheduling must not affect payloads.
        local_rng = np.random.default_rng([seed, comm.rank])
        args = build_vargs(comm.rank, sizes)
        args.sendbuf[:] = local_rng.integers(
            0, 256, size=args.sendbuf.size).astype(np.uint8)
        alltoallv(comm, *args.as_tuple(), algorithm=algorithm)
        return args.recvbuf
    return run_spmd(prog, p, machine=LOCAL, trace=False).returns


class TestUniformAgreement:
    @pytest.mark.parametrize("p", [4, 5, 8, 13])
    def test_all_variants_agree(self, p):
        n = 9
        reference = gather_uniform_recv("spread_out", p, n, seed=1)
        for algorithm in list_algorithms("uniform"):
            got = gather_uniform_recv(algorithm, p, n, seed=1)
            for r in range(p):
                assert np.array_equal(got[r], reference[r]), (algorithm, r)

    @given(p=st.integers(2, 9), n=st.integers(1, 24),
           seed=st.integers(0, 20))
    @settings(max_examples=15, deadline=None)
    def test_zero_rotation_equals_basic(self, p, n, seed):
        a = gather_uniform_recv("zero_rotation_bruck", p, n, seed)
        b = gather_uniform_recv("basic_bruck", p, n, seed)
        for r in range(p):
            assert np.array_equal(a[r], b[r])


class TestNonuniformAgreement:
    @pytest.mark.parametrize("p", [4, 5, 8, 13])
    def test_all_algorithms_agree(self, p):
        sizes = block_size_matrix(UniformBlocks(40), p, seed=2)
        reference = gather_nonuniform_recv("spread_out", sizes, seed=3)
        for algorithm in list_algorithms("nonuniform"):
            got = gather_nonuniform_recv(algorithm, sizes, seed=3)
            for r in range(p):
                assert np.array_equal(got[r], reference[r]), (algorithm, r)

    @given(p=st.integers(2, 8), max_n=st.integers(0, 48),
           seed=st.integers(0, 30))
    @settings(max_examples=15, deadline=None)
    def test_two_phase_equals_sloav(self, p, max_n, seed):
        # The two coupled-metadata algorithms (opposite orientations,
        # different buffering) must agree byte-for-byte.
        sizes = block_size_matrix(UniformBlocks(max_n), p, seed=seed)
        a = gather_nonuniform_recv("two_phase_bruck", sizes, seed=seed)
        b = gather_nonuniform_recv("sloav", sizes, seed=seed)
        for r in range(p):
            assert np.array_equal(a[r], b[r])

"""Tests for the central algorithm registry."""

import numpy as np
import pytest

from repro.core import registry
from repro.core.registry import (
    Algorithm,
    get_algorithm,
    list_algorithms,
    register_algorithm,
)
from repro.core.uniform import alltoall
from repro.simmpi import LOCAL, run_spmd


class TestLookup:
    def test_uniform_names(self):
        names = list_algorithms("uniform")
        assert names == sorted(names)
        assert "basic_bruck" in names and "vendor" in names

    def test_nonuniform_names(self):
        names = list_algorithms("nonuniform")
        assert "two_phase_bruck" in names and "vendor" in names

    def test_all_kinds(self):
        assert set(list_algorithms()) == \
            set(list_algorithms("uniform")) | set(list_algorithms("nonuniform"))

    def test_get_returns_algorithm(self):
        algo = get_algorithm("two_phase_bruck", kind="nonuniform")
        assert isinstance(algo, Algorithm)
        assert algo.name == "two_phase_bruck"
        assert algo.kind == "nonuniform"
        assert callable(algo.fn)
        assert algo.description

    def test_kindless_lookup(self):
        assert get_algorithm("basic_bruck").kind == "uniform"
        assert get_algorithm("two_phase_bruck").kind == "nonuniform"

    def test_vendor_registered_for_both_kinds(self):
        assert get_algorithm("vendor", kind="uniform").kind == "uniform"
        assert get_algorithm("vendor", kind="nonuniform").kind == "nonuniform"

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="definitely_not_an_algorithm"):
            get_algorithm("definitely_not_an_algorithm")

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="two_phase_bruck"):
            get_algorithm("nope", kind="nonuniform")

    def test_kind_mismatch(self):
        with pytest.raises(KeyError, match="basic_bruck"):
            get_algorithm("basic_bruck", kind="nonuniform")

    def test_invalid_kind(self):
        with pytest.raises(ValueError, match="kind"):
            get_algorithm("basic_bruck", kind="sideways")
        with pytest.raises(ValueError, match="kind"):
            list_algorithms("sideways")


class TestDeprecatedAliases:
    def test_uniform_stub_warns_and_mirrors_registry(self):
        import repro.core.uniform as uni

        with pytest.warns(DeprecationWarning, match="UNIFORM_ALGORITHMS"):
            aliases = uni.UNIFORM_ALGORITHMS
        assert "vendor" not in aliases
        for name, fn in aliases.items():
            assert get_algorithm(name, kind="uniform").fn is fn

    def test_nonuniform_stub_warns_and_mirrors_registry(self):
        import repro.core.nonuniform as non

        with pytest.warns(DeprecationWarning,
                          match="NONUNIFORM_ALGORITHMS"):
            aliases = non.NONUNIFORM_ALGORITHMS
        assert "vendor" not in aliases
        for name, fn in aliases.items():
            assert get_algorithm(name, kind="nonuniform").fn is fn

    def test_top_level_reexports_forward(self):
        import repro
        import repro.core

        for mod in (repro, repro.core):
            with pytest.warns(DeprecationWarning):
                assert "basic_bruck" in mod.UNIFORM_ALGORITHMS
            with pytest.warns(DeprecationWarning):
                assert "sloav" in mod.NONUNIFORM_ALGORITHMS

    def test_warning_points_at_caller(self):
        # Every access point warns with the *caller's* file as the
        # warning location — the top-level re-exports must not delegate
        # to an inner stub (each delegation hop adds a frame and used to
        # make stacklevel=2 blame library code).
        import warnings

        import repro
        import repro.core
        import repro.core.nonuniform as non
        import repro.core.uniform as uni

        for mod, attr in ((repro, "NONUNIFORM_ALGORITHMS"),
                          (repro.core, "UNIFORM_ALGORITHMS"),
                          (uni, "UNIFORM_ALGORITHMS"),
                          (non, "NONUNIFORM_ALGORITHMS")):
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                getattr(mod, attr)
            assert len(caught) == 1, (mod.__name__, attr)
            assert caught[0].filename == __file__, (mod.__name__, attr)

    def test_unknown_attribute_still_raises(self):
        import repro.core.uniform as uni

        with pytest.raises(AttributeError):
            uni.NO_SUCH_THING


class TestRegistration:
    def test_register_and_lookup(self):
        def fake(comm, *args, **kwargs):
            pass

        register_algorithm("test_only_fake", "uniform", fake, "a test stub")
        try:
            algo = get_algorithm("test_only_fake", kind="uniform")
            assert algo.fn is fake
            assert "test_only_fake" in list_algorithms("uniform")
        finally:
            del registry._REGISTRY[("uniform", "test_only_fake")]

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            register_algorithm("x", "diagonal", lambda: None)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="name"):
            register_algorithm("", "uniform", lambda: None)


class TestVendorDispatch:
    def test_vendor_routes_to_builtin(self):
        p, n = 4, 16

        def prog(comm):
            send = np.arange(p * n, dtype=np.uint8)
            recv = np.zeros(p * n, dtype=np.uint8)
            alltoall(comm, send, recv, n, algorithm="vendor")
            return recv.copy()

        res = run_spmd(prog, p, machine=LOCAL)
        for rank, out in enumerate(res.returns):
            for src in range(p):
                expect = np.arange(rank * n, (rank + 1) * n, dtype=np.uint8)
                assert np.array_equal(out[src * n:(src + 1) * n], expect)

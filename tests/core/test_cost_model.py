"""Tests for the theoretical cost model (Eqs. 1-3)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost_model import (
    LinearCostParams,
    crossover_block_size,
    padded_beats_two_phase,
    padded_bruck_time,
    spread_out_time,
    two_phase_bruck_time,
)
from repro.simmpi import THETA

PARAMS = LinearCostParams(alpha=1e-5, beta=1e-9)


class TestEquations:
    def test_eq1_closed_form(self):
        p, n = 1024, 256
        lg = math.log2(p)
        expect = PARAMS.alpha * lg + PARAMS.beta * lg * (p + 1) / 2 * n
        assert padded_bruck_time(p, n, PARAMS) == pytest.approx(expect)

    def test_eq2_closed_form(self):
        p, n = 1024, 256
        lg = math.log2(p)
        half = (p + 1) / 2
        expect = (2 * PARAMS.alpha * lg + 4 * PARAMS.beta * lg * half
                  + (n / 2) * PARAMS.beta * lg * half)
        assert two_phase_bruck_time(p, n, PARAMS) == pytest.approx(expect)

    def test_single_process_zero_comm(self):
        assert padded_bruck_time(1, 100, PARAMS) == 0.0
        assert two_phase_bruck_time(1, 100, PARAMS) == 0.0

    def test_invalid_nprocs(self):
        with pytest.raises(ValueError):
            padded_bruck_time(0, 10, PARAMS)

    def test_spread_out_linear_latency(self):
        t1 = spread_out_time(100, 64, PARAMS)
        t2 = spread_out_time(200, 64, PARAMS)
        # latency term doubles with P (bandwidth also grows)
        assert t2 > 2 * t1 * 0.9


class TestEq3Crossover:
    def test_tiny_blocks_always_padded(self):
        # "this certainly happens when N is less than 8 bytes"
        for p in (4, 128, 4096, 32768):
            assert padded_beats_two_phase(p, 4, PARAMS)
            assert padded_beats_two_phase(p, 7.9, PARAMS)

    def test_predicate_matches_closed_form(self):
        for p in (16, 512, 8192):
            n_star = crossover_block_size(p, PARAMS)
            assert padded_beats_two_phase(p, n_star * 0.99, PARAMS)
            assert not padded_beats_two_phase(p, n_star * 1.01, PARAMS)

    def test_crossover_decreases_with_p(self):
        values = [crossover_block_size(p, PARAMS)
                  for p in (64, 256, 1024, 4096)]
        assert values == sorted(values, reverse=True)

    def test_crossover_grows_with_latency(self):
        slow = LinearCostParams(alpha=1e-3, beta=1e-9)
        fast = LinearCostParams(alpha=1e-7, beta=1e-9)
        assert crossover_block_size(256, slow) > crossover_block_size(256, fast)

    def test_zero_beta_infinite_crossover(self):
        free = LinearCostParams(alpha=1e-5, beta=0.0)
        assert math.isinf(crossover_block_size(64, free))

    @given(p=st.integers(2, 65536), n=st.floats(0, 65536))
    @settings(max_examples=100, deadline=None)
    def test_eq3_is_exactly_the_paper_inequality(self, p, n):
        lhs = (n - 8) * (p + 1) * PARAMS.beta
        assert padded_beats_two_phase(p, n, PARAMS) == (lhs < 4 * PARAMS.alpha)


class TestMachineAdapter:
    def test_from_machine_folds_overheads(self):
        prm = LinearCostParams.from_machine(THETA)
        assert prm.alpha == pytest.approx(
            THETA.alpha + THETA.o_send + THETA.o_recv)
        assert prm.beta == THETA.beta

    def test_from_machine_with_congestion(self):
        prm = LinearCostParams.from_machine(THETA, nprocs=4096)
        assert prm.beta == pytest.approx(THETA.beta_eff(4096))

    def test_machine_accepted_directly(self):
        t = two_phase_bruck_time(512, 128, THETA)
        assert t > 0

"""Tests for the theoretical cost model (Eqs. 1-3)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost_model import (
    LinearCostParams,
    crossover_block_size,
    padded_beats_two_phase,
    padded_bruck_time,
    spread_out_time,
    two_phase_bruck_time,
)
from repro.simmpi import THETA

PARAMS = LinearCostParams(alpha=1e-5, beta=1e-9)


class TestEquations:
    def test_eq1_closed_form(self):
        p, n = 1024, 256
        lg = math.log2(p)
        expect = PARAMS.alpha * lg + PARAMS.beta * lg * (p + 1) / 2 * n
        assert padded_bruck_time(p, n, PARAMS) == pytest.approx(expect)

    def test_eq2_closed_form(self):
        p, n = 1024, 256
        lg = math.log2(p)
        half = (p + 1) / 2
        expect = (2 * PARAMS.alpha * lg + 4 * PARAMS.beta * lg * half
                  + (n / 2) * PARAMS.beta * lg * half)
        assert two_phase_bruck_time(p, n, PARAMS) == pytest.approx(expect)

    def test_single_process_zero_comm(self):
        assert padded_bruck_time(1, 100, PARAMS) == 0.0
        assert two_phase_bruck_time(1, 100, PARAMS) == 0.0

    def test_invalid_nprocs(self):
        with pytest.raises(ValueError):
            padded_bruck_time(0, 10, PARAMS)

    def test_spread_out_linear_latency(self):
        t1 = spread_out_time(100, 64, PARAMS)
        t2 = spread_out_time(200, 64, PARAMS)
        # latency term doubles with P (bandwidth also grows)
        assert t2 > 2 * t1 * 0.9


class TestEq3Crossover:
    def test_tiny_blocks_always_padded(self):
        # "this certainly happens when N is less than 8 bytes"
        for p in (4, 128, 4096, 32768):
            assert padded_beats_two_phase(p, 4, PARAMS)
            assert padded_beats_two_phase(p, 7.9, PARAMS)

    def test_predicate_matches_closed_form(self):
        for p in (16, 512, 8192):
            n_star = crossover_block_size(p, PARAMS)
            assert padded_beats_two_phase(p, n_star * 0.99, PARAMS)
            assert not padded_beats_two_phase(p, n_star * 1.01, PARAMS)

    def test_crossover_decreases_with_p(self):
        values = [crossover_block_size(p, PARAMS)
                  for p in (64, 256, 1024, 4096)]
        assert values == sorted(values, reverse=True)

    def test_crossover_grows_with_latency(self):
        slow = LinearCostParams(alpha=1e-3, beta=1e-9)
        fast = LinearCostParams(alpha=1e-7, beta=1e-9)
        assert crossover_block_size(256, slow) > crossover_block_size(256, fast)

    def test_zero_beta_infinite_crossover(self):
        free = LinearCostParams(alpha=1e-5, beta=0.0)
        assert math.isinf(crossover_block_size(64, free))

    @given(p=st.integers(2, 65536), n=st.floats(0, 65536))
    @settings(max_examples=100, deadline=None)
    def test_eq3_is_exactly_the_paper_inequality(self, p, n):
        lhs = (n - 8) * (p + 1) * PARAMS.beta
        assert padded_beats_two_phase(p, n, PARAMS) == (lhs < 4 * PARAMS.alpha)


class TestMachineAdapter:
    def test_from_machine_folds_overheads(self):
        prm = LinearCostParams.from_machine(THETA)
        assert prm.alpha == pytest.approx(
            THETA.alpha + THETA.o_send + THETA.o_recv)
        assert prm.beta == THETA.beta

    def test_from_machine_with_congestion(self):
        prm = LinearCostParams.from_machine(THETA, nprocs=4096)
        assert prm.beta == pytest.approx(THETA.beta_eff(4096))

    def test_machine_accepted_directly(self):
        t = two_phase_bruck_time(512, 128, THETA)
        assert t > 0


class TestRadixCost:
    """The radix-generalized Eq. (1)/(2) closed forms."""

    @pytest.mark.parametrize("p", [2, 64, 1024, 32768])
    @pytest.mark.parametrize("n", [0, 8, 1024])
    def test_radix_two_bit_identical(self, p, n):
        # Not approx: the r = 2 branch must evaluate the very same
        # float expressions as the unparameterized originals.
        assert padded_bruck_time(p, n, PARAMS, 2) == \
            padded_bruck_time(p, n, PARAMS)
        assert two_phase_bruck_time(p, n, PARAMS, 2) == \
            two_phase_bruck_time(p, n, PARAMS)

    def test_radix_trades_messages_for_volume(self):
        from repro.core.cost_model import radix_cost
        # Bandwidth-bound: higher radix forwards fewer blocks -> faster.
        bw = LinearCostParams(alpha=0.0, beta=1e-9)
        assert radix_cost("padded_bruck", 4096, 1024, bw, 8) < \
            radix_cost("padded_bruck", 4096, 1024, bw, 2)
        # Latency-bound: higher radix sends more messages -> slower.
        lat = LinearCostParams(alpha=1e-5, beta=0.0)
        assert radix_cost("padded_bruck", 4096, 1024, lat, 8) > \
            radix_cost("padded_bruck", 4096, 1024, lat, 2)

    def test_radix_cost_unknown_algorithm(self):
        from repro.core.cost_model import radix_cost
        with pytest.raises(KeyError, match="sloav"):
            radix_cost("sloav", 64, 32, PARAMS, 2)

    def test_best_radix_small_n_picks_two(self):
        from repro.core.cost_model import best_radix
        assert best_radix(128, 1, PARAMS) == 2

    def test_best_radix_large_volume_raises_radix(self):
        from repro.core.cost_model import best_radix
        assert best_radix(32768, 2048, PARAMS,
                          algorithm="padded_bruck") > 2

    def test_best_radix_ties_break_small(self):
        from repro.core.cost_model import best_radix
        # alpha = beta = 0: every radix costs 0.0; the tie goes to 2.
        free = LinearCostParams(alpha=0.0, beta=0.0)
        assert best_radix(1024, 512, free) == 2

    def test_best_radix_candidates_clipped_to_p(self):
        from repro.core.cost_model import best_radix
        # With P = 4 only radices {2, 4} are meaningful.
        bw = LinearCostParams(alpha=0.0, beta=1e-9)
        assert best_radix(4, 4096, bw) <= 4

    def test_best_radix_invalid(self):
        from repro.core.cost_model import best_radix
        with pytest.raises(ValueError):
            best_radix(0, 16, PARAMS)
        with pytest.raises(ValueError, match="radix"):
            best_radix(64, 16, PARAMS, radices=(1,))

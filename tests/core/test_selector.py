"""Tests for the Fig. 9 empirical performance model / selector."""

import pytest

from repro.core.selector import CrossoverPoint, PerformanceModel
from repro.simmpi import THETA


@pytest.fixture(scope="module")
def fitted():
    # Coarse but fast fit covering the small-to-huge range.  The grid
    # reaches down to N=4: under the piecewise eager model padded Bruck's
    # niche sits at single-digit block sizes (the old model's cost
    # inversion had artificially widened it).
    return PerformanceModel.fit(
        THETA, procs=(128, 1024, 4096, 16384, 32768),
        blocks=(4, 16, 64, 256, 1024, 2048))


class TestFit:
    def test_two_phase_frontier_declines(self, fitted):
        ns = [c.max_block for c in fitted.two_phase_frontier]
        # At scale the winning range must shrink (Fig. 9's main trend).
        assert ns[-1] < ns[0]
        assert ns == sorted(ns, reverse=True)

    def test_padded_niche_small_p_only(self, fitted):
        padded = {c.nprocs: c.max_block for c in fitted.padded_frontier}
        assert padded[128] > 0            # padded has a niche at small P
        assert padded[32768] <= padded[128]

    def test_frontiers_cover_requested_procs(self, fitted):
        assert [c.nprocs for c in fitted.two_phase_frontier] == \
            [128, 1024, 4096, 16384, 32768]


class TestRecommend:
    def test_vendor_for_huge_blocks(self, fitted):
        assert fitted.recommend(32768, 1 << 20) == "vendor"

    def test_two_phase_in_sweet_spot(self, fitted):
        assert fitted.recommend(4096, 100) == "two_phase_bruck"

    def test_padded_for_tiny_blocks_small_p(self, fitted):
        assert fitted.recommend(128, 4) == "padded_bruck"

    def test_paper_question(self, fitted):
        # "with P = 350 and N = 800, should one use ...?"
        answer = fitted.recommend(350, 800)
        assert answer in ("two_phase_bruck", "padded_bruck")

    def test_interpolation_between_fitted_procs(self, fitted):
        # 2048 was not fitted; threshold must lie between neighbours'.
        t1024 = fitted.two_phase_threshold(1024)
        t4096 = fitted.two_phase_threshold(4096)
        t2048 = fitted.two_phase_threshold(2048)
        assert min(t1024, t4096) <= t2048 <= max(t1024, t4096)

    def test_extrapolation_clamps(self, fitted):
        assert fitted.two_phase_threshold(2) == \
            fitted.two_phase_frontier[0].max_block
        assert fitted.two_phase_threshold(10 ** 6) == \
            fitted.two_phase_frontier[-1].max_block

    def test_invalid_args(self, fitted):
        with pytest.raises(ValueError):
            fitted.recommend(0, 100)
        with pytest.raises(ValueError):
            fitted.recommend(64, -1)

    def test_unfitted_model_raises(self):
        empty = PerformanceModel(machine=THETA)
        with pytest.raises(ValueError, match="fitted"):
            empty.recommend(64, 64)

    def test_describe_mentions_frontiers(self, fitted):
        text = fitted.describe()
        assert "two-phase" in text
        assert "32768" in text


class TestFromMeasurements:
    def test_builds_frontier_from_external_times(self):
        meas = {
            (64, 16): {"two_phase_bruck": 1.0, "padded_bruck": 0.5,
                       "vendor": 2.0},
            (64, 256): {"two_phase_bruck": 1.0, "padded_bruck": 3.0,
                        "vendor": 2.0},
            (64, 1024): {"two_phase_bruck": 5.0, "padded_bruck": 9.0,
                         "vendor": 2.0},
        }
        model = PerformanceModel.from_measurements(THETA, meas)
        assert model.two_phase_frontier == [CrossoverPoint(64, 256)]
        assert model.padded_frontier == [CrossoverPoint(64, 16)]
        assert model.recommend(64, 100) == "two_phase_bruck"
        assert model.recommend(64, 2048) == "vendor"

    def test_missing_algorithm_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            PerformanceModel.from_measurements(
                THETA, {(64, 16): {"two_phase_bruck": 1.0}})


class TestInterpolationEdges:
    """Frontier interpolation at and beyond the fitted grid."""

    def _model(self, tp_points, padded_points=None):
        return PerformanceModel(
            machine=THETA,
            two_phase_frontier=tp_points,
            padded_frontier=padded_points
            or [CrossoverPoint(c.nprocs, 0) for c in tp_points])

    def test_below_fitted_grid_clamps_to_first_point(self):
        model = self._model([CrossoverPoint(128, 512),
                             CrossoverPoint(1024, 128)])
        assert model.two_phase_threshold(2) == 512.0
        assert model.recommend(2, 256) == "two_phase_bruck"
        assert model.recommend(2, 1024) == "vendor"

    def test_above_fitted_grid_clamps_to_last_point(self):
        model = self._model([CrossoverPoint(128, 512),
                             CrossoverPoint(1024, 128)])
        assert model.two_phase_threshold(10 ** 6) == 128.0
        assert model.recommend(10 ** 6, 100) == "two_phase_bruck"
        assert model.recommend(10 ** 6, 200) == "vendor"

    def test_dead_frontier_linear_blend(self):
        # A frontier endpoint of 0 cannot be interpolated in log space;
        # the blend into it is linear.
        model = self._model([CrossoverPoint(128, 64),
                             CrossoverPoint(256, 0)])
        assert model.two_phase_threshold(192) == pytest.approx(32.0)

    def test_log_log_midpoint_is_geometric_mean(self):
        model = self._model([CrossoverPoint(64, 128),
                             CrossoverPoint(256, 512)])
        # P = 128 is the log-space midpoint of [64, 256].
        assert model.two_phase_threshold(128) == pytest.approx(256.0)


class TestRecommendRadix:
    def _model(self):
        return PerformanceModel(
            machine=THETA,
            two_phase_frontier=[CrossoverPoint(128, 2048),
                                CrossoverPoint(32768, 2048)],
            padded_frontier=[CrossoverPoint(128, 16),
                             CrossoverPoint(32768, 16)])

    def test_vendor_pick_pins_radix_two(self):
        model = self._model()
        algo, radix = model.recommend_radix(1024, 100000)
        assert algo == "vendor"
        assert radix == 2

    def test_capable_pick_uses_closed_form(self):
        from repro.core.cost_model import best_radix
        model = self._model()
        algo, radix = model.recommend_radix(8192, 1024)
        assert algo == model.recommend(8192, 1024)
        assert radix == best_radix(8192, 1024, THETA, algorithm=algo)
        assert radix > 2  # big N * P: the radix dial pays off

    def test_matches_recommend_choice(self):
        model = self._model()
        for p, n in ((128, 8), (512, 64), (4096, 1024), (32768, 4096)):
            algo, radix = model.recommend_radix(p, n)
            assert algo == model.recommend(p, n)
            assert radix >= 2


class TestFromMeasurementsNames:
    def test_comparisons_use_registry_resolved_names(self):
        # The frontier comparisons and the missing-key check must agree
        # on names: resolved through the registry in both places.
        from repro.core import selector
        names = selector._contenders()
        meas = {(64, 32): dict(zip(names, (1.0, 3.0, 2.0)))}
        model = PerformanceModel.from_measurements(THETA, meas)
        assert model.two_phase_frontier == [CrossoverPoint(64, 32)]
        assert model.padded_frontier == [CrossoverPoint(64, 0)]

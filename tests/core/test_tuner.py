"""The ledger-driven algorithm/radix auto-tuner."""

import pytest

from repro.bench.ledger import append_record
from repro.core.cost_model import best_radix
from repro.core.selector import CrossoverPoint, PerformanceModel
from repro.core.tuner import AutoTuner, TunerDecision, block_band
from repro.simmpi import THETA
from repro.simmpi.machine import MACHINE_MODEL_VERSION


def record(path, algo="two_phase_bruck", radix=2, p=1024, n=1024,
           elapsed=1e-3, machine="theta", version=MACHINE_MODEL_VERSION):
    append_record(str(path), {
        "machine": machine, "machine_model_version": version,
        "algorithm": algo, "elapsed_s": elapsed, "nprocs": p,
        "max_block": n, "radix": radix,
    })


@pytest.fixture
def model():
    # Prefit so no test pays for PerformanceModel.fit's sweeps.
    return PerformanceModel(
        machine=THETA,
        two_phase_frontier=[CrossoverPoint(128, 2048),
                            CrossoverPoint(32768, 2048)],
        padded_frontier=[CrossoverPoint(128, 0), CrossoverPoint(32768, 0)])


class TestBlockBand:
    def test_power_of_two_bands(self):
        assert block_band(0) == 0
        assert block_band(1) == 1
        assert block_band(1023) == block_band(512) == 10
        assert block_band(1024) == 11

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            block_band(-1)


class TestWarmDecisions:
    def test_picks_lowest_mean_group(self, tmp_path, model):
        path = tmp_path / "l.jsonl"
        for i in range(3):
            record(path, radix=2, elapsed=1.0e-3 + i * 1e-6)
            record(path, radix=8, elapsed=4.0e-4 + i * 1e-6)
        tuner = AutoTuner(THETA, str(path), model=model)
        d = tuner.decide(1024, 1024)
        assert d == TunerDecision(
            algorithm="two_phase_bruck", radix=8, source="ledger",
            samples=3, nprocs=1024, band=11,
            expected_s=pytest.approx(4.01e-4))

    def test_band_pools_nearby_block_sizes(self, tmp_path, model):
        path = tmp_path / "l.jsonl"
        # 600 and 1000 share band 10; 1024 starts band 11.
        for n in (600, 800, 1000):
            record(path, radix=4, n=n, elapsed=1e-4)
        tuner = AutoTuner(THETA, str(path), model=model)
        assert tuner.decide(1024, 513).source == "ledger"
        assert tuner.decide(1024, 1024).source == "model"

    def test_min_samples_gate(self, tmp_path, model):
        path = tmp_path / "l.jsonl"
        record(path, radix=8, elapsed=1e-9)  # one lucky run
        for i in range(3):
            record(path, radix=2, elapsed=1e-3)
        tuner = AutoTuner(THETA, str(path), model=model, min_samples=3)
        assert tuner.decide(1024, 1024).radix == 2
        assert AutoTuner(THETA, str(path), model=model,
                         min_samples=1).decide(1024, 1024).radix == 8

    def test_pinned_algorithm_restricts_groups(self, tmp_path, model):
        path = tmp_path / "l.jsonl"
        for i in range(3):
            record(path, algo="padded_bruck", radix=4, elapsed=1e-5)
            record(path, algo="two_phase_bruck", radix=8, elapsed=1e-3)
        tuner = AutoTuner(THETA, str(path), model=model)
        assert tuner.decide(1024, 1024).algorithm == "padded_bruck"
        pinned = tuner.decide(1024, 1024, algorithm="two_phase_bruck")
        assert (pinned.algorithm, pinned.radix) == ("two_phase_bruck", 8)

    def test_deterministic_same_ledger_same_decisions(self, tmp_path,
                                                      model):
        path = tmp_path / "l.jsonl"
        for radix in (2, 4, 8):
            for i in range(4):
                record(path, radix=radix, elapsed=1e-3 - radix * 1e-5)
                record(path, algo="padded_bruck", radix=radix,
                       elapsed=1e-3 - radix * 1e-5)  # exact tie
        decisions = [AutoTuner(THETA, str(path), model=model)
                     .decide(1024, 1024) for _ in range(3)]
        assert decisions[0] == decisions[1] == decisions[2]
        # exact tie between algorithms at radix 8: lexicographic winner
        assert decisions[0].algorithm == "padded_bruck"
        assert decisions[0].radix == 8

    def test_refresh_picks_up_new_runs(self, tmp_path, model):
        path = tmp_path / "l.jsonl"
        for i in range(3):
            record(path, radix=2, elapsed=1e-3)
        tuner = AutoTuner(THETA, str(path), model=model)
        assert tuner.decide(1024, 1024).radix == 2
        for i in range(3):
            record(path, radix=16, elapsed=1e-5)
        assert tuner.decide(1024, 1024).radix == 2  # cached view
        assert tuner.refresh() == 6
        assert tuner.decide(1024, 1024).radix == 16


class TestStaleRecords:
    def test_other_machine_ignored(self, tmp_path, model):
        path = tmp_path / "l.jsonl"
        for i in range(3):
            record(path, radix=8, machine="cori", elapsed=1e-9)
        tuner = AutoTuner(THETA, str(path), model=model)
        assert tuner.decide(1024, 1024).source == "model"

    def test_old_machine_model_version_ignored(self, tmp_path, model):
        path = tmp_path / "l.jsonl"
        for i in range(3):
            record(path, radix=8, version=-1, elapsed=1e-9)
        tuner = AutoTuner(THETA, str(path), model=model)
        assert tuner.decide(1024, 1024).source == "model"

    def test_records_missing_labels_ignored(self, tmp_path, model):
        path = tmp_path / "l.jsonl"
        for i in range(3):
            append_record(str(path), {
                "machine": "theta",
                "machine_model_version": MACHINE_MODEL_VERSION,
                "algorithm": "two_phase_bruck", "elapsed_s": 1e-9,
                "nprocs": 1024})  # no max_block: unbandable
        tuner = AutoTuner(THETA, str(path), model=model)
        assert tuner.refresh() == 0
        assert tuner.decide(1024, 1024).source == "model"


class TestColdDecisions:
    def test_no_ledger_uses_model(self, model):
        tuner = AutoTuner(THETA, None, model=model)
        d = tuner.decide(8192, 1024)
        assert d.source == "model" and d.samples == 0
        assert (d.algorithm, d.radix) == model.recommend_radix(8192, 1024)

    def test_pinned_capable_algorithm_uses_closed_form(self, model):
        tuner = AutoTuner(THETA, None, model=model)
        d = tuner.decide(8192, 1024, algorithm="padded_bruck")
        assert d.algorithm == "padded_bruck"
        assert d.radix == best_radix(8192, 1024, THETA,
                                     algorithm="padded_bruck")

    def test_pinned_incapable_algorithm_pins_radix_two(self, model):
        tuner = AutoTuner(THETA, None, model=model)
        d = tuner.decide(8192, 1024, algorithm="vendor")
        assert (d.algorithm, d.radix) == ("vendor", 2)

    def test_validation(self, model):
        tuner = AutoTuner(THETA, None, model=model)
        with pytest.raises(ValueError):
            tuner.decide(0, 16)
        with pytest.raises(ValueError):
            AutoTuner(THETA, None, min_samples=0)

"""Unit tests for the shared Bruck index math."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.common import (
    block_moved_before,
    checked_counts_displs,
    num_steps,
    rotation_index_array,
    send_block_distances,
    total_send_blocks_per_step,
    validate_uniform_args,
)


class TestNumSteps:
    @pytest.mark.parametrize("p,expect", [
        (1, 0), (2, 1), (3, 2), (4, 2), (5, 3), (8, 3), (9, 4), (1024, 10),
        (1025, 11),
    ])
    def test_values(self, p, expect):
        assert num_steps(p) == expect

    def test_invalid(self):
        with pytest.raises(ValueError):
            num_steps(0)


class TestSendBlockDistances:
    def test_step0_is_odds(self):
        assert send_block_distances(0, 8) == [1, 3, 5, 7]

    def test_step1(self):
        assert send_block_distances(1, 8) == [2, 3, 6, 7]

    def test_last_step_partial_for_non_pow2(self):
        # P = 5: step 2 moves distances {4} only (5,6,7 out of range).
        assert send_block_distances(2, 5) == [4]

    def test_invalid_step(self):
        with pytest.raises(ValueError):
            send_block_distances(-1, 4)

    @given(p=st.integers(2, 600))
    @settings(max_examples=80, deadline=None)
    def test_every_distance_moves_at_its_set_bits(self, p):
        # Union over steps of the distance sets must cover [1, P) with the
        # exact multiplicity popcount(i).
        count = {i: 0 for i in range(1, p)}
        for k in range(num_steps(p)):
            for i in send_block_distances(k, p):
                assert (i >> k) & 1
                count[i] += 1
        for i in range(1, p):
            assert count[i] == bin(i).count("1")

    @given(p=st.integers(2, 600))
    @settings(max_examples=50, deadline=None)
    def test_at_most_half_plus_one_blocks_per_step(self, p):
        # The paper: each step sends at most (P+1)/2 blocks.
        for m in total_send_blocks_per_step(p):
            assert m <= (p + 1) // 2


class TestBlockMovedBefore:
    def test_first_send_step_not_moved(self):
        # distance 4 = 0b100 first moves at step 2.
        assert not block_moved_before(4, 2)
        assert block_moved_before(5, 2)   # 0b101 moved at step 0

    @given(i=st.integers(1, 10000), k=st.integers(0, 14))
    @settings(max_examples=100, deadline=None)
    def test_matches_bit_definition(self, i, k):
        expect = any((i >> b) & 1 for b in range(k))
        assert block_moved_before(i, k) == expect


class TestRotationIndexArray:
    @pytest.mark.parametrize("p", [1, 2, 3, 5, 8, 16])
    def test_is_permutation(self, p):
        for rank in range(p):
            rot = rotation_index_array(rank, p)
            assert sorted(rot.tolist()) == list(range(p))

    def test_formula(self):
        rot = rotation_index_array(3, 8)
        for j in range(8):
            assert rot[j] == (2 * 3 - j) % 8

    def test_self_slot_maps_to_self(self):
        # I[rank] == rank always: the self block needs no relocation.
        for p in (2, 5, 9):
            for rank in range(p):
                assert rotation_index_array(rank, p)[rank] == rank


class TestValidation:
    def test_counts_length_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            checked_counts_displs([1, 2], [0, 1], 3, 100, "send")

    def test_negative_count(self):
        with pytest.raises(ValueError, match="non-negative"):
            checked_counts_displs([1, -2, 1], [0, 1, 2], 3, 100, "send")

    def test_extent_overflow_names_block(self):
        with pytest.raises(ValueError, match="block 2"):
            checked_counts_displs([1, 1, 50], [0, 1, 2], 3, 10, "send")

    def test_valid_passes(self):
        counts, displs = checked_counts_displs([3, 0, 2], [0, 3, 3], 3, 5,
                                               "recv")
        assert counts.tolist() == [3, 0, 2]

    def test_uniform_args_buffer_too_small(self):
        with pytest.raises(ValueError, match="sendbuf"):
            validate_uniform_args(np.zeros(3, dtype=np.uint8),
                                  np.zeros(64, dtype=np.uint8), 4, 4)

    def test_uniform_args_negative_block(self):
        with pytest.raises(ValueError, match="non-negative"):
            validate_uniform_args(np.zeros(64, dtype=np.uint8),
                                  np.zeros(64, dtype=np.uint8), -1, 4)

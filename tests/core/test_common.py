"""Unit tests for the shared Bruck index math."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.common import (
    block_moved_before,
    checked_counts_displs,
    num_steps,
    rotation_index_array,
    send_block_distances,
    total_send_blocks_per_step,
    validate_uniform_args,
)


class TestNumSteps:
    @pytest.mark.parametrize("p,expect", [
        (1, 0), (2, 1), (3, 2), (4, 2), (5, 3), (8, 3), (9, 4), (1024, 10),
        (1025, 11),
    ])
    def test_values(self, p, expect):
        assert num_steps(p) == expect

    def test_invalid(self):
        with pytest.raises(ValueError):
            num_steps(0)


class TestSendBlockDistances:
    def test_step0_is_odds(self):
        assert send_block_distances(0, 8) == [1, 3, 5, 7]

    def test_step1(self):
        assert send_block_distances(1, 8) == [2, 3, 6, 7]

    def test_last_step_partial_for_non_pow2(self):
        # P = 5: step 2 moves distances {4} only (5,6,7 out of range).
        assert send_block_distances(2, 5) == [4]

    def test_invalid_step(self):
        with pytest.raises(ValueError):
            send_block_distances(-1, 4)

    @given(p=st.integers(2, 600))
    @settings(max_examples=80, deadline=None)
    def test_every_distance_moves_at_its_set_bits(self, p):
        # Union over steps of the distance sets must cover [1, P) with the
        # exact multiplicity popcount(i).
        count = {i: 0 for i in range(1, p)}
        for k in range(num_steps(p)):
            for i in send_block_distances(k, p):
                assert (i >> k) & 1
                count[i] += 1
        for i in range(1, p):
            assert count[i] == bin(i).count("1")

    @given(p=st.integers(2, 600))
    @settings(max_examples=50, deadline=None)
    def test_at_most_half_plus_one_blocks_per_step(self, p):
        # The paper: each step sends at most (P+1)/2 blocks.
        for m in total_send_blocks_per_step(p):
            assert m <= (p + 1) // 2


class TestBlockMovedBefore:
    def test_first_send_step_not_moved(self):
        # distance 4 = 0b100 first moves at step 2.
        assert not block_moved_before(4, 2)
        assert block_moved_before(5, 2)   # 0b101 moved at step 0

    @given(i=st.integers(1, 10000), k=st.integers(0, 14))
    @settings(max_examples=100, deadline=None)
    def test_matches_bit_definition(self, i, k):
        expect = any((i >> b) & 1 for b in range(k))
        assert block_moved_before(i, k) == expect


class TestRotationIndexArray:
    @pytest.mark.parametrize("p", [1, 2, 3, 5, 8, 16])
    def test_is_permutation(self, p):
        for rank in range(p):
            rot = rotation_index_array(rank, p)
            assert sorted(rot.tolist()) == list(range(p))

    def test_formula(self):
        rot = rotation_index_array(3, 8)
        for j in range(8):
            assert rot[j] == (2 * 3 - j) % 8

    def test_self_slot_maps_to_self(self):
        # I[rank] == rank always: the self block needs no relocation.
        for p in (2, 5, 9):
            for rank in range(p):
                assert rotation_index_array(rank, p)[rank] == rank


class TestValidation:
    def test_counts_length_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            checked_counts_displs([1, 2], [0, 1], 3, 100, "send")

    def test_negative_count(self):
        with pytest.raises(ValueError, match="non-negative"):
            checked_counts_displs([1, -2, 1], [0, 1, 2], 3, 100, "send")

    def test_extent_overflow_names_block(self):
        with pytest.raises(ValueError, match="block 2"):
            checked_counts_displs([1, 1, 50], [0, 1, 2], 3, 10, "send")

    def test_valid_passes(self):
        counts, displs = checked_counts_displs([3, 0, 2], [0, 3, 3], 3, 5,
                                               "recv")
        assert counts.tolist() == [3, 0, 2]

    def test_uniform_args_buffer_too_small(self):
        with pytest.raises(ValueError, match="sendbuf"):
            validate_uniform_args(np.zeros(3, dtype=np.uint8),
                                  np.zeros(64, dtype=np.uint8), 4, 4)

    def test_uniform_args_negative_block(self):
        with pytest.raises(ValueError, match="non-negative"):
            validate_uniform_args(np.zeros(64, dtype=np.uint8),
                                  np.zeros(64, dtype=np.uint8), -1, 4)


class TestRadixHelpers:
    """The base-r generalization of the digit schedule."""

    def test_validate_radix(self):
        from repro.core.common import validate_radix
        assert validate_radix(2) == 2
        assert validate_radix(16) == 16
        for bad in (1, 0, -3):
            with pytest.raises(ValueError, match="radix"):
                validate_radix(bad)

    @pytest.mark.parametrize("p,r,expect", [
        (1, 4, 0), (2, 4, 1), (4, 4, 1), (5, 4, 2), (16, 4, 2),
        (17, 4, 3), (27, 3, 3), (28, 3, 4), (32768, 8, 5),
    ])
    def test_radix_num_steps(self, p, r, expect):
        from repro.core.common import radix_num_steps
        assert radix_num_steps(p, r) == expect

    @pytest.mark.parametrize("p", [2, 3, 5, 8, 13, 17, 64])
    def test_radix_two_delegates(self, p):
        from repro.core.common import (
            bruck_substeps, radix_block_moved_before, radix_num_steps,
            radix_send_block_distances)
        assert radix_num_steps(p, 2) == num_steps(p)
        for k in range(num_steps(p)):
            assert radix_send_block_distances(k, 1, p, 2) == \
                send_block_distances(k, p)
            for i in range(1, p):
                assert radix_block_moved_before(i, k, 2) == \
                    block_moved_before(i, k)
        subs = bruck_substeps(p, 2)
        assert [s.index for s in subs] == [s.step for s in subs]
        assert [s.jump for s in subs] == [1 << s.step for s in subs]

    @pytest.mark.parametrize("p", [2, 5, 16, 17, 27, 100])
    @pytest.mark.parametrize("r", [2, 3, 4, 8, 16])
    def test_substeps_forward_once_per_nonzero_digit(self, p, r):
        # A block of distance i is forwarded once per nonzero base-r
        # digit of i — the multi-hop structure behind the radix trade:
        # higher radix means fewer nonzero digits, hence less volume.
        from collections import Counter

        from repro.core.common import bruck_substeps
        seen = Counter()
        for sub in bruck_substeps(p, r):
            assert sub.distances  # empty substeps are skipped
            assert sub.jump == sub.digit * r ** sub.step
            assert sub.index == sub.step * (r - 1) + sub.digit - 1
            for i in sub.distances:
                # the digit of i at position `step` selects this substep
                assert (i // r ** sub.step) % r == sub.digit
            seen.update(sub.distances)

        def nonzero_digits(i):
            count = 0
            while i:
                count += int(i % r != 0)
                i //= r
            return count

        assert seen == {i: nonzero_digits(i) for i in range(1, p)}

    @pytest.mark.parametrize("r", [2, 3, 8])
    def test_substep_indices_dense_when_no_skips(self, r):
        from repro.core.common import bruck_substeps
        p = r ** 3  # perfect power: no empty substeps
        subs = bruck_substeps(p, r)
        assert [s.index for s in subs] == list(range(3 * (r - 1)))

    def test_moved_before_is_low_digits_nonzero(self):
        from repro.core.common import radix_block_moved_before
        # distance 9 = 100 base 3: untouched until step 2.
        assert not radix_block_moved_before(9, 0, 3)
        assert not radix_block_moved_before(9, 1, 3)
        assert not radix_block_moved_before(9, 2, 3)
        # distance 10 = 101 base 3: moved at step 0.
        assert radix_block_moved_before(10, 2, 3)

    @pytest.mark.parametrize("p", [2, 16, 17, 100])
    def test_total_forwarded_blocks_decreases_with_radix(self, p):
        from repro.core.common import total_forwarded_blocks
        totals = [total_forwarded_blocks(p, r) for r in (2, 4, 16)]
        assert totals[0] >= totals[1] >= totals[2]
        assert total_forwarded_blocks(p, p if p > 1 else 2) == p - 1

"""Tests for the grouped (leader-based) alltoallv — the §6 related work."""

import numpy as np
import pytest

from repro.core.nonuniform.grouped import grouped_alltoallv
from repro.simmpi import LOCAL, THETA, run_spmd
from repro.workloads import UniformBlocks, block_size_matrix, build_vargs, verify_recv


def run(sizes, group_size, machine=LOCAL, trace=False):
    def prog(comm):
        args = build_vargs(comm.rank, sizes)
        grouped_alltoallv(comm, *args.as_tuple(), group_size=group_size)
        verify_recv(comm.rank, sizes, args.recvbuf)
    return run_spmd(prog, sizes.shape[0], machine=machine, trace=trace)


class TestCorrectness:
    @pytest.mark.parametrize("p", [1, 2, 3, 5, 8, 13, 16])
    @pytest.mark.parametrize("g", [1, 2, 4, 8])
    def test_delivery(self, p, g):
        sizes = block_size_matrix(UniformBlocks(32), p, seed=p * 10 + g)
        run(sizes, g)

    def test_group_size_larger_than_p(self):
        sizes = block_size_matrix(UniformBlocks(16), 4, seed=1)
        run(sizes, 64)  # degenerates to a single group

    def test_group_size_one_is_pure_peer_exchange(self):
        sizes = block_size_matrix(UniformBlocks(16), 6, seed=2)
        run(sizes, 1)

    def test_zero_sizes(self):
        run(np.zeros((6, 6), dtype=np.int64), 2)

    def test_invalid_group_size(self):
        sizes = block_size_matrix(UniformBlocks(8), 2, seed=0)
        with pytest.raises(ValueError, match="group_size"):
            run(sizes, 0)

    def test_non_canonical_layout_rejected(self):
        def prog(comm):
            p = comm.size
            counts = np.full(p, 4, dtype=np.int64)
            displs = np.arange(p, dtype=np.int64) * 8  # gappy layout
            buf = np.zeros(8 * p, dtype=np.uint8)
            grouped_alltoallv(comm, buf, counts, displs, buf.copy(),
                              counts, np.arange(p, dtype=np.int64) * 4,
                              group_size=2)
        with pytest.raises(ValueError, match="canonical"):
            run_spmd(prog, 4)

    def test_registry_dispatch(self):
        from repro.core.nonuniform import alltoallv
        sizes = block_size_matrix(UniformBlocks(16), 8, seed=3)

        def prog(comm):
            args = build_vargs(comm.rank, sizes)
            alltoallv(comm, *args.as_tuple(), algorithm="grouped")
            verify_recv(comm.rank, sizes, args.recvbuf)
        run_spmd(prog, 8)


class TestStructure:
    def test_only_leaders_talk_across_groups(self):
        p, g = 16, 4
        sizes = block_size_matrix(UniformBlocks(24), p, seed=5)
        res = run(sizes, g, trace=True)
        for tr in res.traces:
            my_group = tr.rank // g
            is_leader = tr.rank % g == 0
            for e in tr.sends:
                dst_group = e.dst // g
                if dst_group != my_group:
                    assert is_leader, (
                        f"non-leader {tr.rank} sent cross-group to {e.dst}")
                    assert e.dst % g == 0, "cross-group target not a leader"

    def test_fewer_network_participants_than_spread_out(self):
        # Cross-group message count: (P/g)^2-ish pairs * 2 (counts+data)
        # versus spread-out's P*(P-1).
        p, g = 16, 4
        sizes = block_size_matrix(UniformBlocks(24), p, seed=5)
        res = run(sizes, g, trace=True)
        cross = sum(1 for tr in res.traces for e in tr.sends
                    if e.dst // g != tr.rank // g)
        n_groups = p // g
        assert cross == n_groups * (n_groups - 1) * 2

    def test_phases_recorded(self):
        sizes = block_size_matrix(UniformBlocks(24), 8, seed=6)
        res = run(sizes, 4, machine=THETA, trace=True)
        phases = res.phase_times()
        assert phases["gather_to_leader"] > 0
        assert phases["leader_exchange"] > 0
        assert phases["scatter_from_leader"] > 0

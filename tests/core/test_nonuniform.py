"""Correctness tests for the non-uniform all-to-all algorithms —
the paper's main contribution."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.nonuniform import alltoallv
from repro.core.registry import list_algorithms
from repro.simmpi import LOCAL, THETA, run_spmd
from repro.workloads import (
    NormalBlocks,
    PowerLawBlocks,
    UniformBlocks,
    block_size_matrix,
    build_vargs,
    verify_recv,
)

from ..conftest import SMALL_PROCS

ALGORITHMS = list_algorithms("nonuniform")


def vprog(algorithm, sizes):
    def prog(comm):
        args = build_vargs(comm.rank, sizes)
        alltoallv(comm, *args.as_tuple(), algorithm=algorithm)
        verify_recv(comm.rank, sizes, args.recvbuf)
        return True
    return prog


class TestCorrectness:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("p", SMALL_PROCS)
    def test_uniform_distribution_sizes(self, algorithm, p):
        sizes = block_size_matrix(UniformBlocks(32), p, seed=3)
        assert all(run_spmd(vprog(algorithm, sizes), p).returns)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_power_law_sizes(self, algorithm):
        sizes = block_size_matrix(PowerLawBlocks(128, base=0.95), 9, seed=1)
        run_spmd(vprog(algorithm, sizes), 9)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_normal_sizes(self, algorithm):
        sizes = block_size_matrix(NormalBlocks(96), 8, seed=2)
        run_spmd(vprog(algorithm, sizes), 8)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_all_zero_sizes(self, algorithm):
        sizes = np.zeros((5, 5), dtype=np.int64)
        run_spmd(vprog(algorithm, sizes), 5)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_many_zero_blocks(self, algorithm):
        # Sparse pattern: only a few pairs exchange anything.
        sizes = np.zeros((7, 7), dtype=np.int64)
        sizes[0, 3] = 17
        sizes[3, 0] = 5
        sizes[6, 6] = 9   # self block only
        sizes[2, 4] = 1
        run_spmd(vprog(algorithm, sizes), 7)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_single_rank(self, algorithm):
        sizes = np.array([[13]], dtype=np.int64)
        run_spmd(vprog(algorithm, sizes), 1)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_extreme_imbalance(self, algorithm):
        # One giant block amid tiny ones: stresses the working buffer
        # sizing of two-phase Bruck and padding overhead of padded Bruck.
        p = 6
        sizes = np.ones((p, p), dtype=np.int64)
        sizes[1, 4] = 4096
        run_spmd(vprog(algorithm, sizes), p)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_asymmetric_sizes(self, algorithm):
        # sizes[s][d] != sizes[d][s]: directionality must be preserved.
        p = 5
        sizes = (np.arange(p)[:, None] * 10
                 + np.arange(p)[None, :] + 1).astype(np.int64)
        run_spmd(vprog(algorithm, sizes), p)

    def test_unknown_algorithm(self):
        def prog(comm):
            z = np.zeros(1, dtype=np.uint8)
            alltoallv(comm, z, [0, 0], [0, 0], z, [0, 0], [0, 0],
                      algorithm="bogus")
        with pytest.raises(KeyError, match="bogus"):
            run_spmd(prog, 2)

    @pytest.mark.parametrize("algorithm",
                             [n for n in ALGORITHMS if n != "vendor"])
    def test_sendbuf_not_modified(self, algorithm):
        sizes = block_size_matrix(UniformBlocks(16), 6, seed=4)

        def prog(comm):
            args = build_vargs(comm.rank, sizes)
            orig = args.sendbuf.copy()
            alltoallv(comm, *args.as_tuple(), algorithm=algorithm)
            assert np.array_equal(args.sendbuf, orig)
        run_spmd(prog, 6)

    @given(p=st.integers(2, 10), max_n=st.integers(0, 64),
           seed=st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_two_phase_random_matrices(self, p, max_n, seed):
        sizes = block_size_matrix(UniformBlocks(max_n), p, seed=seed)
        run_spmd(vprog("two_phase_bruck", sizes), p)

    @given(p=st.integers(2, 10), max_n=st.integers(0, 64),
           seed=st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_padded_random_matrices(self, p, max_n, seed):
        sizes = block_size_matrix(UniformBlocks(max_n), p, seed=seed)
        run_spmd(vprog("padded_bruck", sizes), p)


class TestTwoPhaseInternals:
    def test_metadata_overflow_guard(self):
        def prog(comm):
            sizes = np.full((2, 2), 2 ** 40, dtype=np.int64)
            counts = sizes[comm.rank].astype(np.int64)
            buf = np.zeros(4, dtype=np.uint8)  # never reached
            alltoallv(comm, buf, counts, [0, 0], buf, counts, [0, 0],
                      algorithm="two_phase_bruck")
        with pytest.raises(ValueError, match="metadata"):
            run_spmd(prog, 2)

    def test_mismatched_recvcounts_detected(self):
        # Receiver promises fewer bytes than the sender transmits.
        def prog(comm):
            p = comm.size
            sendcounts = np.full(p, 8, dtype=np.int64)
            sdispls = np.arange(p, dtype=np.int64) * 8
            sendbuf = np.zeros(8 * p, dtype=np.uint8)
            recvcounts = np.full(p, 8, dtype=np.int64)
            if comm.rank == 1:
                recvcounts[0] = 4  # lie about what rank 0 sends us
            rdispls = np.arange(p, dtype=np.int64) * 8
            recvbuf = np.zeros(8 * p, dtype=np.uint8)
            alltoallv(comm, sendbuf, sendcounts, sdispls, recvbuf,
                      recvcounts, rdispls, algorithm="two_phase_bruck")
        # The offending rank raises ValueError; peers may surface it as
        # RankFailedError.  Either way the cause must be named.
        from repro.simmpi import RankFailedError
        with pytest.raises((ValueError, RankFailedError), match="mismatch"):
            run_spmd(prog, 4)

    def test_two_messages_per_step(self):
        from repro.core.common import num_steps
        from repro.simmpi import MAX_USER_TAG
        p = 8
        sizes = block_size_matrix(UniformBlocks(32), p, seed=0)
        res = run_spmd(vprog("two_phase_bruck", sizes), p, machine=LOCAL)
        for trace in res.traces:
            # metadata + data per step (the 2*alpha*logP of Eq. 2);
            # internal-tag traffic (the setup allreduce) excluded.
            user = [e for e in trace.sends if e.tag < MAX_USER_TAG]
            assert len(user) == 2 * num_steps(p)

    def test_metadata_bytes_are_4_per_block(self):
        from repro.core.common import num_steps, send_block_distances
        from repro.simmpi import MAX_USER_TAG
        p = 8
        sizes = block_size_matrix(UniformBlocks(32), p, seed=0)
        res = run_spmd(vprog("two_phase_bruck", sizes), p, machine=LOCAL)
        for trace in res.traces:
            user = [e for e in trace.sends if e.tag < MAX_USER_TAG]
            for k in range(num_steps(p)):
                meta = user[2 * k]
                m = len(send_block_distances(k, p))
                assert meta.nbytes == 4 * m


class TestPaddedInternals:
    def test_padded_message_sizes_use_global_max(self):
        from repro.core.common import num_steps, send_block_distances
        p = 8
        sizes = block_size_matrix(UniformBlocks(50), p, seed=0)
        max_n = int(sizes.max())
        res = run_spmd(vprog("padded_bruck", sizes), p, machine=LOCAL)
        from repro.simmpi import MAX_USER_TAG
        for trace in res.traces:
            # user-tag traffic only: one padded message per step
            data_sends = [e for e in trace.sends if e.tag < MAX_USER_TAG]
            assert len(data_sends) == num_steps(p)
            for k, e in enumerate(data_sends):
                m = len(send_block_distances(k, p))
                assert e.nbytes == m * max_n

    def test_padded_moves_more_bytes_than_two_phase(self):
        p = 8
        sizes = block_size_matrix(UniformBlocks(64), p, seed=1)
        padded = run_spmd(vprog("padded_bruck", sizes), p, machine=LOCAL)
        tp = run_spmd(vprog("two_phase_bruck", sizes), p, machine=LOCAL)
        assert padded.total_bytes > tp.total_bytes

    def test_padded_alltoall_uses_vendor_exchange(self):
        # padded_alltoall: pad phase + P-1 equal messages (spread-out),
        # not log(P) Bruck messages.
        p = 8
        sizes = block_size_matrix(UniformBlocks(32), p, seed=0)
        res = run_spmd(vprog("padded_alltoall", sizes), p, machine=LOCAL)
        max_n = int(sizes.max())
        for trace in res.traces:
            data_sends = [e for e in trace.sends if e.nbytes == max_n]
            assert len(data_sends) == p - 1
            assert all(e.nbytes == max_n for e in data_sends)


class TestSpreadOutInternals:
    def test_one_message_per_peer_with_true_sizes(self):
        p = 7
        sizes = block_size_matrix(UniformBlocks(40), p, seed=5)
        res = run_spmd(vprog("spread_out", sizes), p, machine=LOCAL)
        for trace in res.traces:
            r = trace.rank
            sent = {e.dst: e.nbytes for e in trace.sends}
            assert len(sent) == p - 1
            for dst, nbytes in sent.items():
                assert nbytes == sizes[r, dst]

"""SLOAV-specific tests (generic correctness is covered by the registry
parametrization in test_nonuniform.py)."""

import numpy as np
import pytest

from repro.core.common import num_steps
from repro.core.nonuniform import alltoallv
from repro.simmpi import LOCAL, MAX_USER_TAG, THETA, run_spmd
from repro.workloads import UniformBlocks, block_size_matrix, build_vargs, verify_recv


def vprog(sizes):
    def prog(comm):
        args = build_vargs(comm.rank, sizes)
        alltoallv(comm, *args.as_tuple(), algorithm="sloav")
        verify_recv(comm.rank, sizes, args.recvbuf)
    return prog


class TestSloavStructure:
    def test_two_messages_per_step_header_then_combined(self):
        p = 8
        sizes = block_size_matrix(UniformBlocks(32), p, seed=0)
        res = run_spmd(vprog(sizes), p, machine=LOCAL)
        for trace in res.traces:
            user = [e for e in trace.sends if e.tag < MAX_USER_TAG]
            assert len(user) == 2 * num_steps(p)
            for k in range(num_steps(p)):
                header, combined = user[2 * k], user[2 * k + 1]
                assert header.nbytes == 4          # combined-size header
                # combined = 4 bytes/block of metadata + the data bytes
                assert combined.nbytes >= 4
                assert combined.dst == header.dst

    def test_no_allreduce_needed(self):
        # Unlike padded/two-phase, SLOAV never computes a global max:
        # no internal-tag (collective) traffic at all.
        p = 8
        sizes = block_size_matrix(UniformBlocks(32), p, seed=0)
        res = run_spmd(vprog(sizes), p, machine=LOCAL)
        for trace in res.traces:
            assert all(e.tag < MAX_USER_TAG for e in trace.sends)

    def test_phases_present(self):
        sizes = block_size_matrix(UniformBlocks(64), 16, seed=1)
        res = run_spmd(vprog(sizes), 16, machine=THETA)
        phases = res.phase_times()
        assert phases["final_rotation"] > 0
        assert phases["scan"] > 0
        assert phases["communication"] > 0

    def test_metadata_overflow_guard(self):
        def prog(comm):
            counts = np.full(2, 2 ** 40, dtype=np.int64)
            buf = np.zeros(4, dtype=np.uint8)
            alltoallv(comm, buf, counts, [0, 0], buf, counts, [0, 0],
                      algorithm="sloav")
        with pytest.raises(ValueError, match="4-byte"):
            run_spmd(prog, 2)

    def test_moves_same_wire_bytes_as_two_phase(self):
        # With *equal* block sizes both algorithms relay identical data
        # volume (their opposite orientations route different blocks, so
        # this only holds size-wise for constant sizes); SLOAV adds a
        # 4-byte header per step on top of the same 4-byte-per-block
        # metadata.
        p = 8
        sizes = np.full((p, p), 64, dtype=np.int64)

        def total_user_bytes(algorithm):
            def prog(comm):
                args = build_vargs(comm.rank, sizes)
                alltoallv(comm, *args.as_tuple(), algorithm=algorithm)
            res = run_spmd(prog, p, machine=LOCAL)
            return sum(e.nbytes for t in res.traces for e in t.sends
                       if e.tag < MAX_USER_TAG)

        sloav = total_user_bytes("sloav")
        tp = total_user_bytes("two_phase_bruck")
        steps = num_steps(p)
        # SLOAV adds a 4-byte header per step per rank.
        assert sloav == tp + 4 * steps * p

"""Cross-validation: analytic schedules == functional message traces.

Every (dst, nbytes) pair, in program order, for every algorithm, rank,
and workload — if an implementation's communication structure drifts
from its documented schedule, these tests fail.
"""

import numpy as np
import pytest

from repro.core.nonuniform import alltoallv
from repro.core.registry import list_algorithms
from repro.core.uniform import alltoall
from repro.schedule import nonuniform_schedule, schedule_volume, uniform_schedule
from repro.simmpi import LOCAL, MAX_USER_TAG, run_spmd
from repro.workloads import UniformBlocks, block_size_matrix, build_vargs


def traced_sends(res):
    """Per-rank (dst, nbytes) sequences, user-tag messages only."""
    return [[(e.dst, e.nbytes) for e in t.sends if e.tag < MAX_USER_TAG]
            for t in res.traces]


class TestUniformSchedules:
    @pytest.mark.parametrize("algorithm",
                             [n for n in list_algorithms("uniform")
                              if n != "vendor"])
    @pytest.mark.parametrize("p", [2, 3, 5, 8, 13])
    def test_matches_trace(self, algorithm, p):
        n = 16

        def prog(comm):
            send = np.zeros(p * n, dtype=np.uint8)
            recv = np.zeros(p * n, dtype=np.uint8)
            alltoall(comm, send, recv, n, algorithm=algorithm)
        res = run_spmd(prog, p, machine=LOCAL)
        traces = traced_sends(res)
        for rank in range(p):
            expect = [(m.dst, m.nbytes)
                      for m in uniform_schedule(algorithm, rank, p, n)]
            assert traces[rank] == expect, (algorithm, rank)

    def test_zero_block_size_empty(self):
        assert uniform_schedule("basic_bruck", 0, 8, 0) == []

    def test_unknown_algorithm(self):
        with pytest.raises(KeyError):
            uniform_schedule("nope", 0, 8, 8)


# The grouped (leader-based) algorithm has data-dependent multi-hop
# routing and no analytic schedule; its structure is asserted directly in
# tests/core/test_grouped.py instead.
SCHEDULED = [n for n in list_algorithms("nonuniform")
             if n not in ("grouped", "vendor")]


class TestNonuniformSchedules:
    @pytest.mark.parametrize("algorithm", SCHEDULED)
    @pytest.mark.parametrize("p", [2, 3, 5, 8, 13])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_matches_trace(self, algorithm, p, seed):
        sizes = block_size_matrix(UniformBlocks(48), p, seed=seed)

        def prog(comm):
            args = build_vargs(comm.rank, sizes)
            alltoallv(comm, *args.as_tuple(), algorithm=algorithm)
        res = run_spmd(prog, p, machine=LOCAL)
        if algorithm == "padded_alltoall":
            # Its exchange runs through the builtin alltoall, which uses
            # internal tags: keep exactly the max_n-sized data messages.
            max_n = int(sizes.max())
            traces = [[(e.dst, e.nbytes) for e in t.sends
                       if e.nbytes == max_n] for t in res.traces]
        else:
            traces = traced_sends(res)
        for rank in range(p):
            expect = [(m.dst, m.nbytes)
                      for m in nonuniform_schedule(algorithm, rank, sizes)]
            assert traces[rank] == expect, (algorithm, rank)

    def test_all_zero_sizes_empty_for_bruck_family(self):
        sizes = np.zeros((6, 6), dtype=np.int64)
        for algorithm in ("padded_bruck", "two_phase_bruck", "sloav"):
            assert nonuniform_schedule(algorithm, 2, sizes) == []

    def test_unknown_algorithm(self):
        with pytest.raises(KeyError):
            nonuniform_schedule("nope", 0, np.ones((2, 2), dtype=np.int64))

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            nonuniform_schedule("spread_out", 0,
                                np.ones((2, 3), dtype=np.int64))


class TestVolumeAccounting:
    def test_bruck_volume_factor(self):
        # Bruck moves ~log2(P)/2 times spread-out's volume: the paper's
        # central trade-off, checked from schedules alone.
        p, n = 64, 100
        sizes = np.full((p, p), n, dtype=np.int64)
        so = sum(schedule_volume(
            nonuniform_schedule("spread_out", r, sizes))["bytes"]
            for r in range(p))
        tp = sum(schedule_volume(
            nonuniform_schedule("two_phase_bruck", r, sizes))["data_bytes"]
            for r in range(p)) - 0  # data only
        factor = tp / so
        import math
        assert factor == pytest.approx(math.log2(p) / 2, rel=0.15)

    def test_two_phase_meta_volume(self):
        p = 8
        sizes = np.full((p, p), 10, dtype=np.int64)
        vol = schedule_volume(nonuniform_schedule("two_phase_bruck", 0,
                                                  sizes))
        from repro.core.common import num_steps, send_block_distances
        expect_meta = sum(4 * len(send_block_distances(k, p))
                          for k in range(num_steps(p)))
        assert vol["meta_bytes"] == expect_meta

    def test_padded_exceeds_two_phase(self):
        p = 16
        sizes = block_size_matrix(UniformBlocks(64), p, seed=1)
        padded = sum(schedule_volume(
            nonuniform_schedule("padded_bruck", r, sizes))["bytes"]
            for r in range(p))
        tp = sum(schedule_volume(
            nonuniform_schedule("two_phase_bruck", r, sizes))["bytes"]
            for r in range(p))
        assert padded > 1.5 * tp


class TestFabricSchedules:
    """The whole-fabric (src, dst, nbytes, tag) array form."""

    @pytest.mark.parametrize("p", [2, 5, 16])
    @pytest.mark.parametrize("algorithm",
                             [n for n in list_algorithms("uniform")
                              if n != "vendor"])
    def test_uniform_matches_per_rank_schedule(self, algorithm, p):
        from repro.schedule import fabric_schedule
        n = 16
        per_rank = {r: [(m.dst, m.nbytes)
                        for m in uniform_schedule(algorithm, r, p, n)]
                    for r in range(p)}
        fabric = {r: [] for r in range(p)}
        for step in fabric_schedule(algorithm, "uniform", p,
                                    block_nbytes=n):
            for s, d, nb in zip(step.src, step.dst, step.nbytes):
                fabric[int(s)].append((int(d), int(nb)))
        assert fabric == per_rank

    @pytest.mark.parametrize("p", [2, 5, 16])
    @pytest.mark.parametrize("algorithm", SCHEDULED)
    def test_nonuniform_matches_per_rank_schedule(self, algorithm, p):
        from repro.schedule import fabric_schedule
        sizes = block_size_matrix(UniformBlocks(32), p, seed=5)
        per_rank = {r: [(m.dst, m.nbytes)
                        for m in nonuniform_schedule(algorithm, r, sizes)]
                    for r in range(p)}
        fabric = {r: [] for r in range(p)}
        for step in fabric_schedule(algorithm, "nonuniform", p,
                                    sizes=sizes):
            for s, d, nb in zip(step.src, step.dst, step.nbytes):
                fabric[int(s)].append((int(d), int(nb)))
        assert fabric == per_rank

    @pytest.mark.parametrize("p", [4, 16, 13])
    def test_volumes_match_tensor_run_accounting(self, p):
        """fabric_volume == the tensor backend's wire statistics (after
        adding back the internal allreduce traffic the schedule layer
        excludes by documented convention)."""
        import math

        from repro.schedule import fabric_schedule, fabric_volume
        from repro.simmpi import ExecutionConfig, TensorAlltoallv, THETA
        from repro.simmpi import run_spmd

        sizes = block_size_matrix(UniformBlocks(32), p, seed=5)
        cfg = ExecutionConfig(machine=THETA, backend="tensor",
                              wire="phantom", trace=False)
        ar = p * math.ceil(math.log2(p)) if p > 1 else 0
        for algorithm in list_algorithms("nonuniform"):
            res = run_spmd(TensorAlltoallv(algorithm, sizes), p,
                           config=cfg)
            vol = fabric_volume(fabric_schedule(algorithm, "nonuniform",
                                                p, sizes=sizes))
            msgs, nbytes = vol["messages"], vol["bytes"]
            if algorithm in ("padded_bruck", "padded_alltoall",
                             "two_phase_bruck", "locality_padded_bruck",
                             "locality_two_phase_bruck"):
                msgs += ar
                nbytes += 8 * ar
            assert (msgs, nbytes) == \
                (res.total_messages, res.total_bytes), algorithm

    def test_grouped_has_fabric_schedule(self):
        from repro.schedule import fabric_schedule
        p = 16
        sizes = block_size_matrix(UniformBlocks(32), p, seed=5)
        steps = fabric_schedule("grouped", "nonuniform", p, sizes=sizes,
                                group_size=4)
        labels = [s.label for s in steps]
        assert labels == ["gather_counts", "gather_data", "leader_counts",
                          "leader_blobs", "scatter_data"]
        # conservation: every rank's payload leaves it and reaches it
        total = sizes.sum() - np.diagonal(sizes).sum()
        gather = steps[1].total_bytes
        assert gather == sizes.sum(axis=1)[steps[1].src].sum()

    def test_validation(self):
        from repro.schedule import fabric_schedule
        with pytest.raises(KeyError):
            fabric_schedule("nope", "uniform", 8, block_nbytes=4)
        with pytest.raises(KeyError):
            fabric_schedule("basic_bruck", "diagonal", 8, block_nbytes=4)
        with pytest.raises(ValueError):
            fabric_schedule("basic_bruck", "uniform", 8)
        with pytest.raises(ValueError):
            fabric_schedule("sloav", "nonuniform", 8)


class TestRadixSchedules:
    """The r-ary digit schedule at every layer: per-rank, fabric, volume."""

    RADICES = (3, 4, 8)

    @pytest.mark.parametrize("radix", RADICES)
    @pytest.mark.parametrize("p", [5, 13, 16])
    def test_uniform_matches_trace(self, p, radix):
        from repro.core.registry import radix_algorithms
        from repro.simmpi import ExecutionConfig
        n = 16
        for algorithm in radix_algorithms("uniform"):
            def prog(comm):
                send = np.zeros(p * n, dtype=np.uint8)
                recv = np.zeros(p * n, dtype=np.uint8)
                alltoall(comm, send, recv, n, algorithm=algorithm,
                         radix=radix)
            res = run_spmd(prog, p,
                           config=ExecutionConfig(machine=LOCAL))
            traces = traced_sends(res)
            for rank in range(p):
                expect = [(m.dst, m.nbytes)
                          for m in uniform_schedule(algorithm, rank, p, n,
                                                    radix=radix)]
                assert traces[rank] == expect, (algorithm, rank, radix)

    @pytest.mark.parametrize("radix", RADICES)
    @pytest.mark.parametrize("p", [5, 13, 16])
    def test_nonuniform_matches_trace(self, p, radix):
        from repro.core.registry import radix_algorithms
        from repro.simmpi import ExecutionConfig
        sizes = block_size_matrix(UniformBlocks(48), p, seed=3)
        for algorithm in radix_algorithms("nonuniform"):
            def prog(comm):
                args = build_vargs(comm.rank, sizes)
                alltoallv(comm, *args.as_tuple(), algorithm=algorithm,
                          radix=radix)
            res = run_spmd(prog, p,
                           config=ExecutionConfig(machine=LOCAL))
            traces = traced_sends(res)
            for rank in range(p):
                expect = [(m.dst, m.nbytes)
                          for m in nonuniform_schedule(algorithm, rank,
                                                       sizes, radix=radix)]
                assert traces[rank] == expect, (algorithm, rank, radix)

    @pytest.mark.parametrize("radix", RADICES)
    @pytest.mark.parametrize("p", [5, 16])
    def test_fabric_matches_per_rank(self, p, radix):
        from repro.core.registry import radix_algorithms
        from repro.schedule import fabric_schedule
        sizes = block_size_matrix(UniformBlocks(32), p, seed=5)
        for algorithm in radix_algorithms("nonuniform"):
            per_rank = {r: [(m.dst, m.nbytes)
                            for m in nonuniform_schedule(
                                algorithm, r, sizes, radix=radix)]
                        for r in range(p)}
            fabric = {r: [] for r in range(p)}
            for step in fabric_schedule(algorithm, "nonuniform", p,
                                        sizes=sizes, radix=radix):
                for s, d, nb in zip(step.src, step.dst, step.nbytes):
                    fabric[int(s)].append((int(d), int(nb)))
            assert fabric == per_rank, (algorithm, radix)

    @pytest.mark.parametrize("radix", [2, 4, 8])
    @pytest.mark.parametrize("p", [4, 13, 16])
    def test_volumes_match_tensor_accounting(self, p, radix):
        # The acceptance bar of the radix generalization: the analytic
        # schedule's volumes equal the tensor backend's wire statistics
        # at every radix (allreduce control traffic added back, as in
        # TestFabricSchedules above).
        import math

        from repro.core.registry import radix_algorithms
        from repro.schedule import fabric_schedule, fabric_volume
        from repro.simmpi import (ExecutionConfig, TensorAlltoall,
                                  TensorAlltoallv, THETA)

        sizes = block_size_matrix(UniformBlocks(32), p, seed=5)
        cfg = ExecutionConfig(machine=THETA, backend="tensor",
                              wire="phantom", trace=False)
        ar = p * math.ceil(math.log2(p)) if p > 1 else 0
        for algorithm in radix_algorithms("nonuniform"):
            res = run_spmd(TensorAlltoallv(algorithm, sizes, radix=radix),
                           p, config=cfg)
            vol = fabric_volume(fabric_schedule(
                algorithm, "nonuniform", p, sizes=sizes, radix=radix))
            assert (vol["messages"] + ar, vol["bytes"] + 8 * ar) == \
                (res.total_messages, res.total_bytes), (algorithm, radix)
        for algorithm in radix_algorithms("uniform"):
            res = run_spmd(TensorAlltoall(algorithm, 16, radix=radix),
                           p, config=cfg)
            vol = fabric_volume(fabric_schedule(
                algorithm, "uniform", p, block_nbytes=16, radix=radix))
            assert (vol["messages"], vol["bytes"]) == \
                (res.total_messages, res.total_bytes), (algorithm, radix)

    @pytest.mark.parametrize("p", [5, 16])
    def test_radix_two_identical_to_default(self, p):
        from repro.core.registry import radix_algorithms
        sizes = block_size_matrix(UniformBlocks(32), p, seed=5)
        for algorithm in radix_algorithms("nonuniform"):
            assert nonuniform_schedule(algorithm, 1, sizes, radix=2) == \
                nonuniform_schedule(algorithm, 1, sizes)
        for algorithm in radix_algorithms("uniform"):
            assert uniform_schedule(algorithm, 1, p, 16, radix=2) == \
                uniform_schedule(algorithm, 1, p, 16)

    def test_higher_radix_reduces_volume(self):
        # The whole point of the dial: fewer forwarding hops per block.
        p = 64
        sizes = np.full((p, p), 100, dtype=np.int64)
        vols = [sum(schedule_volume(nonuniform_schedule(
            "padded_bruck", r, sizes, radix=radix))["bytes"]
            for r in range(p)) for radix in (2, 4, 8)]
        assert vols[0] > vols[1] > vols[2]

    def test_incapable_algorithm_rejected(self):
        from repro.schedule import fabric_schedule
        sizes = np.ones((4, 4), dtype=np.int64)
        with pytest.raises(ValueError, match="radix"):
            uniform_schedule("basic_bruck", 0, 8, 8, radix=4)
        with pytest.raises(ValueError, match="radix"):
            nonuniform_schedule("sloav", 0, sizes, radix=4)
        with pytest.raises(ValueError, match="radix"):
            fabric_schedule("spread_out", "uniform", 8, block_nbytes=4,
                            radix=4)

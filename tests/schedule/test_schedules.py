"""Cross-validation: analytic schedules == functional message traces.

Every (dst, nbytes) pair, in program order, for every algorithm, rank,
and workload — if an implementation's communication structure drifts
from its documented schedule, these tests fail.
"""

import numpy as np
import pytest

from repro.core.nonuniform import NONUNIFORM_ALGORITHMS, alltoallv
from repro.core.uniform import UNIFORM_ALGORITHMS, alltoall
from repro.schedule import nonuniform_schedule, schedule_volume, uniform_schedule
from repro.simmpi import LOCAL, MAX_USER_TAG, run_spmd
from repro.workloads import UniformBlocks, block_size_matrix, build_vargs


def traced_sends(res):
    """Per-rank (dst, nbytes) sequences, user-tag messages only."""
    return [[(e.dst, e.nbytes) for e in t.sends if e.tag < MAX_USER_TAG]
            for t in res.traces]


class TestUniformSchedules:
    @pytest.mark.parametrize("algorithm", sorted(UNIFORM_ALGORITHMS))
    @pytest.mark.parametrize("p", [2, 3, 5, 8, 13])
    def test_matches_trace(self, algorithm, p):
        n = 16

        def prog(comm):
            send = np.zeros(p * n, dtype=np.uint8)
            recv = np.zeros(p * n, dtype=np.uint8)
            alltoall(comm, send, recv, n, algorithm=algorithm)
        res = run_spmd(prog, p, machine=LOCAL)
        traces = traced_sends(res)
        for rank in range(p):
            expect = [(m.dst, m.nbytes)
                      for m in uniform_schedule(algorithm, rank, p, n)]
            assert traces[rank] == expect, (algorithm, rank)

    def test_zero_block_size_empty(self):
        assert uniform_schedule("basic_bruck", 0, 8, 0) == []

    def test_unknown_algorithm(self):
        with pytest.raises(KeyError):
            uniform_schedule("nope", 0, 8, 8)


# The grouped (leader-based) algorithm has data-dependent multi-hop
# routing and no analytic schedule; its structure is asserted directly in
# tests/core/test_grouped.py instead.
SCHEDULED = sorted(set(NONUNIFORM_ALGORITHMS) - {"grouped"})


class TestNonuniformSchedules:
    @pytest.mark.parametrize("algorithm", SCHEDULED)
    @pytest.mark.parametrize("p", [2, 3, 5, 8, 13])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_matches_trace(self, algorithm, p, seed):
        sizes = block_size_matrix(UniformBlocks(48), p, seed=seed)

        def prog(comm):
            args = build_vargs(comm.rank, sizes)
            alltoallv(comm, *args.as_tuple(), algorithm=algorithm)
        res = run_spmd(prog, p, machine=LOCAL)
        if algorithm == "padded_alltoall":
            # Its exchange runs through the builtin alltoall, which uses
            # internal tags: keep exactly the max_n-sized data messages.
            max_n = int(sizes.max())
            traces = [[(e.dst, e.nbytes) for e in t.sends
                       if e.nbytes == max_n] for t in res.traces]
        else:
            traces = traced_sends(res)
        for rank in range(p):
            expect = [(m.dst, m.nbytes)
                      for m in nonuniform_schedule(algorithm, rank, sizes)]
            assert traces[rank] == expect, (algorithm, rank)

    def test_all_zero_sizes_empty_for_bruck_family(self):
        sizes = np.zeros((6, 6), dtype=np.int64)
        for algorithm in ("padded_bruck", "two_phase_bruck", "sloav"):
            assert nonuniform_schedule(algorithm, 2, sizes) == []

    def test_unknown_algorithm(self):
        with pytest.raises(KeyError):
            nonuniform_schedule("nope", 0, np.ones((2, 2), dtype=np.int64))

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            nonuniform_schedule("spread_out", 0,
                                np.ones((2, 3), dtype=np.int64))


class TestVolumeAccounting:
    def test_bruck_volume_factor(self):
        # Bruck moves ~log2(P)/2 times spread-out's volume: the paper's
        # central trade-off, checked from schedules alone.
        p, n = 64, 100
        sizes = np.full((p, p), n, dtype=np.int64)
        so = sum(schedule_volume(
            nonuniform_schedule("spread_out", r, sizes))["bytes"]
            for r in range(p))
        tp = sum(schedule_volume(
            nonuniform_schedule("two_phase_bruck", r, sizes))["data_bytes"]
            for r in range(p)) - 0  # data only
        factor = tp / so
        import math
        assert factor == pytest.approx(math.log2(p) / 2, rel=0.15)

    def test_two_phase_meta_volume(self):
        p = 8
        sizes = np.full((p, p), 10, dtype=np.int64)
        vol = schedule_volume(nonuniform_schedule("two_phase_bruck", 0,
                                                  sizes))
        from repro.core.common import num_steps, send_block_distances
        expect_meta = sum(4 * len(send_block_distances(k, p))
                          for k in range(num_steps(p)))
        assert vol["meta_bytes"] == expect_meta

    def test_padded_exceeds_two_phase(self):
        p = 16
        sizes = block_size_matrix(UniformBlocks(64), p, seed=1)
        padded = sum(schedule_volume(
            nonuniform_schedule("padded_bruck", r, sizes))["bytes"]
            for r in range(p))
        tp = sum(schedule_volume(
            nonuniform_schedule("two_phase_bruck", r, sizes))["bytes"]
            for r in range(p))
        assert padded > 1.5 * tp

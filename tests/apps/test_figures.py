"""Tests for the application figure drivers (Figs. 11 and 12)."""

import pytest

from repro.apps import fig11_tc_strong_scaling, fig12_kcfa
from repro.simmpi import LOCAL


class TestFig11Driver:
    @pytest.fixture(scope="class")
    def data(self):
        return fig11_tc_strong_scaling(procs=(4, 8), graph_scale=0.4,
                                       machine=LOCAL)

    def test_structure(self, data):
        assert set(data) == {"graph1", "graph2"}
        for per_p in data.values():
            assert set(per_p) == {4, 8}
            for res in per_p.values():
                assert set(res) == {"vendor", "two_phase_bruck"}

    def test_closure_independent_of_p_and_algorithm(self, data):
        for per_p in data.values():
            sizes = {res[alg].closure_size
                     for res in per_p.values() for alg in res}
            assert len(sizes) == 1

    def test_iteration_contrast(self, data):
        it1 = data["graph1"][4]["vendor"].iterations
        it2 = data["graph2"][4]["vendor"].iterations
        assert it1 > it2


class TestFig12Driver:
    @pytest.fixture(scope="class")
    def data(self):
        return fig12_kcfa(nprocs=8, k=6, machine=LOCAL, n_payloads=4,
                          chain_len=8)

    def test_iteration_counts_agree(self, data):
        assert data.iterations == len(data.n_series())
        for alg in ("vendor", "two_phase_bruck"):
            assert len(data.comm_series(alg)) == data.iterations

    def test_same_analysis_result(self, data):
        facts = {r.total_facts for r in data.results.values()}
        assert len(facts) == 1

    def test_wins_bounded(self, data):
        w = data.wins("two_phase_bruck", "vendor")
        assert 0 <= w <= data.iterations

    def test_n_series_shared(self, data):
        # N is a property of the workload, not the algorithm.
        vendor_ns = [r["max_block_bytes"]
                     for r in data.results["vendor"].per_iteration]
        assert vendor_ns == data.n_series() or \
            data.n_series() == [r["max_block_bytes"] for r in
                                data.results["two_phase_bruck"].per_iteration]

"""Tests for the distributed transitive-closure application (Fig. 11)."""

import pytest

from repro.apps.graphs import (
    chain_graph,
    dense_random_graph,
    graph1,
    graph2,
    sequential_transitive_closure,
)
from repro.apps.transitive_closure import run_transitive_closure
from repro.simmpi import LOCAL, THETA


class TestCorrectness:
    @pytest.mark.parametrize("p", [1, 2, 5, 8, 16])
    @pytest.mark.parametrize("algorithm", ["vendor", "two_phase_bruck"])
    def test_matches_sequential(self, p, algorithm):
        edges = dense_random_graph(20, 80, seed=3)
        ref = sequential_transitive_closure(edges)
        res = run_transitive_closure(edges, p, machine=LOCAL,
                                     algorithm=algorithm)
        assert res.closure_size == len(ref)

    @pytest.mark.parametrize("algorithm", ["padded_bruck", "spread_out"])
    def test_other_algorithms_also_correct(self, algorithm):
        edges = chain_graph(12, extra_edges=6, seed=1)
        ref = sequential_transitive_closure(edges)
        res = run_transitive_closure(edges, 6, machine=LOCAL,
                                     algorithm=algorithm)
        assert res.closure_size == len(ref)

    def test_chain_iteration_count_tracks_diameter(self):
        # Semi-naive TC over a length-L chain converges in ~log or L
        # rounds depending on join order; ours joins delta with base
        # edges, so iterations ≈ L.
        edges = chain_graph(9)
        res = run_transitive_closure(edges, 4, machine=LOCAL)
        assert 8 <= res.iterations <= 11

    def test_closure_size_chain(self):
        length = 7
        edges = chain_graph(length)
        res = run_transitive_closure(edges, 3, machine=LOCAL)
        assert res.closure_size == length * (length + 1) // 2

    def test_per_iteration_records(self):
        edges = graph2(0.3)
        res = run_transitive_closure(edges, 4, machine=THETA)
        assert len(res.per_iteration) == res.iterations
        for rec in res.per_iteration:
            assert rec["comm_seconds"] > 0
            assert rec["max_block_bytes"] >= 0
        # the last iteration derives nothing new (fixpoint detection)
        assert res.per_iteration[-1]["new_tuples"] == 0

    def test_deterministic_across_runs(self):
        edges = graph1(0.3)
        a = run_transitive_closure(edges, 4, machine=THETA)
        b = run_transitive_closure(edges, 4, machine=THETA)
        assert a.closure_size == b.closure_size
        assert a.elapsed_seconds == b.elapsed_seconds


class TestFig11Shape:
    def test_graph1_improves_graph2_regresses(self):
        """The paper's headline Fig. 11 divergence at moderate P."""
        p = 32
        g1 = graph1(1.0)
        g2 = graph2(1.0)
        tc1_tp = run_transitive_closure(g1, p, machine=THETA,
                                        algorithm="two_phase_bruck")
        tc1_v = run_transitive_closure(g1, p, machine=THETA,
                                       algorithm="vendor")
        tc2_tp = run_transitive_closure(g2, p, machine=THETA,
                                        algorithm="two_phase_bruck")
        tc2_v = run_transitive_closure(g2, p, machine=THETA,
                                       algorithm="vendor")
        # Graph 1 (many cheap iterations): two-phase wins.
        assert tc1_tp.elapsed_seconds < tc1_v.elapsed_seconds
        # Graph 2 (few heavy iterations): two-phase does not win.
        assert tc2_tp.elapsed_seconds >= tc2_v.elapsed_seconds * 0.98
        # And the iteration-count contrast that drives it.
        assert tc1_tp.iterations > 5 * tc2_tp.iterations

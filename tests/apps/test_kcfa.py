"""Tests for the kCFA application: syntax, generators, analysis (Fig. 12)."""

import pytest

from repro.apps.kcfa import (
    Call,
    Lam,
    Program,
    Var,
    chain_program,
    funnel_program,
    kcfa_worstcase,
    merge_loop_program,
    pack_contour,
    push_contour,
    random_program,
    run_kcfa,
    sequential_kcfa,
    unpack_contour,
)
from repro.simmpi import LOCAL, THETA


class TestContourPacking:
    def test_roundtrip(self):
        for labels in ([], [0], [5], [1, 2, 3], [126] * 8, [0, 126, 64]):
            assert unpack_contour(pack_contour(labels)) == labels

    def test_empty_is_zero(self):
        assert pack_contour([]) == 0

    def test_label_zero_distinguished_from_empty(self):
        assert pack_contour([0]) != 0

    def test_too_long_rejected(self):
        with pytest.raises(ValueError):
            pack_contour([1] * 9)

    def test_label_out_of_range(self):
        with pytest.raises(ValueError):
            pack_contour([127])  # 127 + 1 would overflow the 7-bit slot

    def test_push_truncates_to_k(self):
        ctx = pack_contour([1, 2, 3])
        new = push_contour(ctx, 9, k=3)
        assert unpack_contour(new) == [9, 1, 2]

    def test_push_k0_monovariant(self):
        assert push_contour(pack_contour([1, 2]), 9, k=0) == 0

    def test_push_grows_until_k(self):
        ctx = 0
        for lab in (1, 2, 3):
            ctx = push_contour(ctx, lab, k=8)
        assert unpack_contour(ctx) == [3, 2, 1]

    def test_contours_fit_int64(self):
        code = pack_contour([126] * 8)
        assert 0 < code < 2 ** 63


class TestSyntaxValidation:
    def test_free_variable_rejected(self):
        lam = Lam(label=1, params=("x",),
                  body=Call(label=2, fn=Var("y"), args=()))
        with pytest.raises(ValueError, match="free variable"):
            Program(root=Call(label=3, fn=lam, args=()))

    def test_oversized_label_rejected(self):
        lam = Lam(label=500, params=("x",), body=None)
        with pytest.raises(ValueError, match="label"):
            Program(root=Call(label=1, fn=lam, args=()))

    def test_program_size(self):
        prog = chain_program(4)
        assert prog.size > 8

    def test_lambda_registry_populated(self):
        prog = merge_loop_program(2)
        assert len(prog.lambdas) >= 3  # two loop lambdas + dispatcher


class TestGenerators:
    @pytest.mark.parametrize("make", [
        lambda: merge_loop_program(2),
        lambda: merge_loop_program(4),
        lambda: chain_program(6),
        lambda: funnel_program(4, 10),
        lambda: random_program(25, arity=3, seed=1),
        lambda: kcfa_worstcase(),
    ])
    def test_generators_produce_valid_programs(self, make):
        prog = make()
        assert isinstance(prog, Program)
        facts = sequential_kcfa(prog, 2)
        assert len(facts) > 0

    def test_generator_validation(self):
        with pytest.raises(ValueError):
            merge_loop_program(0)
        with pytest.raises(ValueError):
            chain_program(0)
        with pytest.raises(ValueError):
            funnel_program(0, 10)
        with pytest.raises(ValueError):
            random_program(1)

    def test_funnel_grows_with_payloads(self):
        small = len(sequential_kcfa(funnel_program(2, 10), 8))
        big = len(sequential_kcfa(funnel_program(6, 10), 8))
        assert big > 1.5 * small

    def test_chain_terminates_quickly(self):
        facts = sequential_kcfa(chain_program(8), 8)
        assert 0 < len(facts) < 60

    def test_random_program_deterministic(self):
        a = sequential_kcfa(random_program(20, seed=7), 4)
        b = sequential_kcfa(random_program(20, seed=7), 4)
        assert a == b


class TestSequentialAnalysis:
    def test_monotone_in_k(self):
        prog = funnel_program(4, 10)
        sizes = [len(sequential_kcfa(prog, k)) for k in (0, 1, 2, 4, 8)]
        assert sizes == sorted(sizes)

    def test_entries_scale_workload(self):
        prog = funnel_program(4, 10)
        one = len(sequential_kcfa(prog, 6, entries=1))
        three = len(sequential_kcfa(prog, 6, entries=3))
        assert three > one

    def test_invalid_entries(self):
        with pytest.raises(ValueError):
            sequential_kcfa(chain_program(3), 2, entries=0)


class TestDistributedAnalysis:
    @pytest.mark.parametrize("p", [1, 2, 4, 8, 16])
    def test_matches_sequential(self, p):
        prog = funnel_program(4, 10)
        ref = sequential_kcfa(prog, 8)
        res = run_kcfa(prog, 8, p, machine=LOCAL)
        assert res.total_facts == len(ref)

    @pytest.mark.parametrize("algorithm", ["vendor", "two_phase_bruck",
                                           "padded_bruck"])
    def test_all_algorithms_agree(self, algorithm):
        prog = kcfa_worstcase(4, 10)
        ref = sequential_kcfa(prog, 8)
        res = run_kcfa(prog, 8, 8, machine=LOCAL, algorithm=algorithm)
        assert res.total_facts == len(ref)

    def test_multi_entry_distributed(self):
        prog = funnel_program(4, 10)
        ref = sequential_kcfa(prog, 8, entries=3)
        res = run_kcfa(prog, 8, 8, machine=LOCAL, entries=3)
        assert res.total_facts == len(ref)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            run_kcfa(chain_program(3), 9, 2)

    def test_per_iteration_series(self):
        prog = funnel_program(5, 12)
        res = run_kcfa(prog, 8, 8, machine=THETA)
        assert res.iterations == len(res.per_iteration)
        n_series = [r["max_block_bytes"] for r in res.per_iteration]
        # Fig. 12's signature: the load *varies* across iterations.
        assert max(n_series) > 2 * min(x for x in n_series if x > 0)
        assert res.comm_seconds > 0

"""Tests for the synthetic graph generators and the sequential TC."""

import networkx as nx
import pytest

from repro.apps.graphs import (
    chain_graph,
    dense_random_graph,
    graph1,
    graph2,
    sequential_transitive_closure,
)


class TestGenerators:
    def test_chain_basic(self):
        edges = chain_graph(5)
        assert (0, 1) in edges and (4, 5) in edges
        assert len(edges) == 5

    def test_multi_chain_disjoint(self):
        edges = chain_graph(3, n_chains=2)
        nodes_a = {u for u, v in edges if u < 4} | {v for u, v in edges if v < 4}
        nodes_b = {u for u, v in edges if u >= 4}
        assert nodes_a.isdisjoint(nodes_b - nodes_a)

    def test_chain_shortcuts_do_not_add_self_loops(self):
        edges = chain_graph(20, extra_edges=50, seed=1)
        assert all(u != v for u, v in edges)

    def test_chain_invalid(self):
        with pytest.raises(ValueError):
            chain_graph(0)

    def test_dense_random_size_and_no_self_loops(self):
        edges = dense_random_graph(30, 200, seed=1)
        assert len(edges) == 200
        assert all(u != v for u, v in edges)
        assert len(set(edges)) == 200

    def test_dense_random_deterministic(self):
        assert dense_random_graph(30, 100, seed=5) == \
            dense_random_graph(30, 100, seed=5)

    def test_dense_invalid(self):
        with pytest.raises(ValueError):
            dense_random_graph(1, 5)

    def test_graph_presets_match_paper_character(self):
        g1, g2 = graph1(1.0), graph2(1.0)
        # Graph 2 has roughly 2-2.5x the edges (paper ratio).
        assert 1.5 * len(g1) < len(g2) < 6 * len(g1)
        # Diameter contrast: g1's longest shortest path far exceeds g2's.
        d1 = nx.DiGraph(g1)
        d2 = nx.DiGraph(g2)
        ecc1 = max(
            max(lens.values())
            for _, lens in nx.all_pairs_shortest_path_length(d1))
        ecc2 = max(
            max(lens.values())
            for _, lens in nx.all_pairs_shortest_path_length(d2))
        assert ecc1 > 5 * ecc2


class TestSequentialTC:
    def test_matches_networkx(self):
        for edges in (chain_graph(6), dense_random_graph(15, 60, seed=2),
                      graph1(0.3), graph2(0.3)):
            ours = sequential_transitive_closure(edges)
            g = nx.DiGraph(edges)
            expect = {(u, v) for u in g for v in nx.descendants(g, u)}
            # nx.descendants never reports the source itself; relational
            # TC includes (u, u) when u lies on a cycle (path length >= 1).
            for u in g:
                for w in g.successors(u):
                    if u == w or u in nx.descendants(g, w):
                        expect.add((u, u))
                        break
            assert ours == expect

    def test_empty_graph(self):
        assert sequential_transitive_closure([]) == set()

    def test_cycle_closure(self):
        edges = [(0, 1), (1, 2), (2, 0)]
        tc = sequential_transitive_closure(edges)
        # every node reaches every node (including itself via the cycle)
        assert tc == {(a, b) for a in range(3) for b in range(3)}

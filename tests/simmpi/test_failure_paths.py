"""Regression tests for the executor/network timeout & abort fixes.

Each class pins one failure-path bug:

* the watchdog used a fresh full timeout per thread join, letting a hung
  job survive up to ``nprocs * timeout`` wall seconds;
* ``Network.collect`` restarted its timeout from zero on every wakeup, so
  steady traffic on *unrelated* channels deferred a receive timeout
  indefinitely;
* ``Network.post`` ignored the abort flag, so survivors of a rank failure
  kept sending successfully (inflating the message statistics) until
  their next receive.
"""

import threading
import time

import numpy as np
import pytest

from repro.simmpi import (
    DeadlockError,
    FaultPlan,
    InjectedCrashError,
    LOCAL,
    SimMPIError,
    run_spmd,
)
from repro.simmpi.errors import CommAbortedError, RankFailedError
from repro.simmpi.network import Envelope, Network

# Every failure scenario must behave identically on both backends and
# both wire modes (including coop x phantom, where nothing real crosses
# the fabric and deadlock detection is exact).
BACKEND_WIRE = [("threads", "bytes"), ("threads", "phantom"),
                ("coop", "bytes"), ("coop", "phantom")]


class TestWatchdogSharedDeadline:
    def test_slow_job_declared_dead_within_one_budget(self):
        # Six ranks finishing 0.4s apart (wall): the job needs ~2s, the
        # watchdog allows 1s.  With a *shared* deadline the watchdog fires
        # at ~1s; the old fresh-timeout-per-join code saw every join
        # complete within its own fresh 1s and declared success.
        def prog(comm):
            time.sleep(0.4 * comm.rank)
        start = time.monotonic()
        with pytest.raises(DeadlockError, match="no progress within"):
            run_spmd(prog, 6, timeout=1.0)
        # Budget (1s) + teardown joins for the still-sleeping ranks (~1s)
        # must stay far under the old-code success path (~2s + no error)
        # and the nprocs*timeout worst case (6s).
        assert time.monotonic() - start < 4.0

    def test_fast_job_unaffected(self):
        res = run_spmd(lambda comm: comm.rank, 6, timeout=30.0)
        assert res.returns == list(range(6))


class TestCollectAbsoluteDeadline:
    def test_timeout_fires_under_background_traffic(self):
        # A receiver waiting on (0, 1, 0) with a 0.25s budget while other
        # channels stay busy every 40ms: each post wakes the waiter, and
        # the old code restarted the full 0.25s wait every time — the
        # timeout never fired.  With an absolute deadline it fires on time.
        net = Network(4, LOCAL)
        stop = threading.Event()

        def background():
            while not stop.is_set():
                net.post(Envelope(2, 3, 9, b"noise", 0.0))
                time.sleep(0.04)

        t = threading.Thread(target=background, daemon=True)
        t.start()
        try:
            start = time.monotonic()
            with pytest.raises(CommAbortedError, match="timed out"):
                net.collect(0, 1, 0, host_timeout=0.25)
            assert time.monotonic() - start < 1.0
        finally:
            stop.set()
            t.join(timeout=5)

    def test_timeout_without_traffic_still_fires(self):
        net = Network(2, LOCAL)
        with pytest.raises(CommAbortedError, match="timed out"):
            net.collect(0, 1, 0, host_timeout=0.05)

    def test_present_message_beats_zero_budget(self):
        net = Network(2, LOCAL)
        net.post(Envelope(0, 1, 0, b"x", 0.0))
        assert net.collect(0, 1, 0, host_timeout=0.0).payload == b"x"


class TestPostAfterAbort:
    def test_post_raises_rank_failed(self):
        net = Network(4, LOCAL)
        net.abort(2, ValueError("boom"))
        with pytest.raises(RankFailedError, match="rank 2"):
            net.post(Envelope(0, 1, 0, b"x", 0.0))

    def test_statistics_not_inflated(self):
        net = Network(4, LOCAL)
        net.post(Envelope(0, 1, 0, b"before", 0.0))
        net.abort(2, ValueError("boom"))
        with pytest.raises(RankFailedError):
            net.post(Envelope(0, 1, 0, b"after", 0.0))
        assert net.total_messages == 1
        assert net.total_bytes == len(b"before")

    def test_abort_beats_shutdown_in_post(self):
        # Matches collect: the failure cause outranks the teardown notice.
        net = Network(2, LOCAL)
        net.abort(0, ValueError("boom"))
        net.shutdown()
        with pytest.raises(RankFailedError):
            net.post(Envelope(0, 1, 0, b"x", 0.0))


class TestRootCausePreference:
    @pytest.mark.parametrize("backend,wire", BACKEND_WIRE)
    def test_original_exception_beats_secondary_casualties(self, backend,
                                                           wire):
        # Rank 2 dies of ValueError; ranks 0 and 1 die *because of it*
        # (RankFailedError from their receives).  The lowest-rank rule
        # alone would report rank 0's secondary error — the root cause
        # must win regardless of rank order.
        def prog(comm):
            if comm.rank == 2:
                raise ValueError("root cause")
            comm.recv(np.zeros(1, dtype=np.uint8), 2)
        with pytest.raises(ValueError, match=r"rank 2.*root cause"):
            run_spmd(prog, 3, backend=backend, wire=wire, timeout=30)

    @pytest.mark.parametrize("backend,wire", BACKEND_WIRE)
    def test_receive_from_silent_rank_is_typed(self, backend, wire):
        # A receive that can never be satisfied must end in a typed error
        # on every backend x wire cell: exact deadlock detection on coop,
        # a receive timeout or the watchdog on threads.  Never a hang.
        def prog(comm):
            if comm.rank == 1:
                comm.recv(np.zeros(1, dtype=np.uint8), 0)
        with pytest.raises(SimMPIError):
            run_spmd(prog, 2, backend=backend, wire=wire, timeout=1.0)


class TestAbortFirstWriterWins:
    def test_second_abort_is_ignored(self):
        # Network.abort is idempotent: the first failure wins; a later
        # abort (another casualty racing in) must not replace the stored
        # cause or its context.
        net = Network(4, LOCAL)
        net.abort(1, ValueError("first"), clock=1.5, phase="exchange",
                  step=7)
        net.abort(2, RuntimeError("second"), clock=9.9, phase="rotate",
                  step=99)
        with pytest.raises(RankFailedError, match="first") as ei:
            net.post(Envelope(0, 3, 0, b"x", 0.0))
        err = ei.value
        assert err.failed_rank == 1
        assert err.clock == 1.5
        assert err.phase == "exchange"
        assert err.step == 7
        assert "rank 2" not in str(err)

    def test_two_ranks_crash_same_step_reports_one_primary(self):
        # Two planned crashes at the same op index on the threads backend:
        # both workers race to abort, exactly one wins, and the job fails
        # with a single InjectedCrashError naming one crashed rank (the
        # executor prefers the lowest-rank primary deterministically).
        plan = FaultPlan.parse("crash:rank=1,step=3;crash:rank=2,step=3")

        def prog(comm):
            out = np.zeros(1, dtype=np.uint8)
            inp = np.zeros(1, dtype=np.uint8)
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            for tag in range(4):
                comm.sendrecv(out, right, tag, inp, left, tag)

        with pytest.raises(InjectedCrashError, match="rank 1"):
            run_spmd(prog, 4, backend="threads", timeout=30,
                     fault_plan=plan, on_fault="fail-fast")

"""Unit tests for the tracing layer."""

import pytest

from repro.simmpi.tracing import NullTrace, PhaseEvent, RankTrace


class TestRankTrace:
    def test_send_recv_accounting(self):
        tr = RankTrace(3)
        tr.record_send(3, 1, 0, 100, 1.0)
        tr.record_send(3, 2, 0, 50, 2.0)
        tr.record_recv(0, 3, 0, 70, 3.0)
        assert tr.bytes_sent == 150
        assert tr.bytes_received == 70
        assert tr.message_count == 2

    def test_copy_accounting(self):
        tr = RankTrace(0)
        tr.record_copy(10, 0.5)
        tr.record_copy(20, 0.6)
        assert tr.bytes_copied == 30

    def test_messages_iterator(self):
        tr = RankTrace(0)
        tr.record_send(0, 2, 7, 16, 1.0)
        assert list(tr.messages()) == [(2, 7, 16)]

    def test_nested_phases(self):
        tr = RankTrace(0)
        tr.phase_begin("outer", 0.0)
        tr.phase_begin("inner", 1.0)
        tr.phase_end(2.0)
        tr.phase_end(5.0)
        times = tr.phase_times()
        assert times == {"inner": 1.0, "outer": 5.0}

    def test_repeated_phase_accumulates(self):
        tr = RankTrace(0)
        for start in (0.0, 10.0):
            tr.phase_begin("step", start)
            tr.phase_end(start + 2.0)
        assert tr.phase_times()["step"] == pytest.approx(4.0)

    def test_phase_event_duration(self):
        ev = PhaseEvent("x", 1.0, 3.5)
        assert ev.duration == 2.5


class TestNullTrace:
    def test_all_hooks_are_noops(self):
        nt = NullTrace(5)
        nt.record_send(5, 0, 0, 10, 1.0)
        nt.record_recv(0, 5, 0, 10, 1.0)
        nt.record_copy(10, 1.0)
        nt.record_datatype("pack", 1, 10, 1.0)
        nt.phase_begin("x", 0.0)
        nt.phase_end(1.0)
        assert nt.rank == 5

"""Cross-backend x cross-wire clock equivalence, every algorithm.

The determinism contract says simulated clocks are a pure function of the
program's communication structure.  Two axes stress it independently:
the executor backends schedule ranks completely differently (preemptive
OS threads vs. a clock-ordered cooperative loop), and the wire modes
move completely different host-side data (real payload bytes vs.
size-only phantom envelopes).  Bit-identical per-rank clocks across the
full backend x wire matrix over every registered algorithm is a sharp
end-to-end check — any hidden dependence on execution order or on
payload contents would split the matrix.

Bytes-wire runs additionally byte-verify delivery (``verify_recv`` /
an exact permutation check), so the zero-copy send/landing/staging
paths are proven correct, not just fast.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.registry import get_algorithm, list_algorithms
from repro.simmpi import (
    ExecutionConfig,
    TensorAlltoall,
    TensorAlltoallv,
    THETA,
    WIRE_MODES,
    run_spmd,
)
from repro.workloads import (
    block_size_matrix,
    build_vargs,
    distribution_by_name,
    verify_recv,
)

NPROCS = (4, 16, 64)
BLOCK = 16  # uniform per-pair block bytes
MAX_BLOCK = 32  # non-uniform distribution ceiling

#: Every (backend, wire) cell of the matrix; the first is the reference.
MATRIX = tuple((backend, wire) for backend in ("threads", "coop")
               for wire in WIRE_MODES)


def _run_uniform(name: str, nprocs: int, backend: str, wire: str):
    fn = get_algorithm(name, kind="uniform").fn

    def prog(comm):
        if comm.payload_enabled:
            rng = np.random.default_rng(1234 + comm.rank)
            send = rng.integers(0, 256, nprocs * BLOCK, dtype=np.uint8)
            recv = np.zeros(nprocs * BLOCK, dtype=np.uint8)
        else:
            send = np.empty(nprocs * BLOCK, dtype=np.uint8)
            recv = np.empty(nprocs * BLOCK, dtype=np.uint8)
        fn(comm, send, recv, BLOCK)
        if comm.payload_enabled:
            # Exact delivery check: block j of rank i's recv is block i
            # of rank j's (seeded, hence reconstructible) send buffer.
            for src in range(nprocs):
                theirs = np.random.default_rng(1234 + src).integers(
                    0, 256, nprocs * BLOCK, dtype=np.uint8)
                np.testing.assert_array_equal(
                    recv[src * BLOCK:(src + 1) * BLOCK],
                    theirs[comm.rank * BLOCK:(comm.rank + 1) * BLOCK])
        return comm.clock

    return run_spmd(prog, nprocs, machine=THETA, backend=backend,
                    trace=False, timeout=300, wire=wire)


def _run_nonuniform(name: str, nprocs: int, backend: str, wire: str):
    sizes = block_size_matrix(distribution_by_name("power_law", MAX_BLOCK),
                              nprocs, seed=7)
    fn = get_algorithm(name, kind="nonuniform").fn

    def prog(comm):
        vargs = build_vargs(comm.rank, sizes, fill=comm.payload_enabled)
        fn(comm, *vargs.as_tuple())
        if comm.payload_enabled:
            verify_recv(comm.rank, sizes, vargs.recvbuf)
        return comm.clock

    return run_spmd(prog, nprocs, machine=THETA, backend=backend,
                    trace=False, timeout=300, wire=wire)


def _assert_matrix(run, name, nprocs):
    ref_backend, ref_wire = MATRIX[0]
    ref = run(name, nprocs, ref_backend, ref_wire)
    for backend, wire in MATRIX[1:]:
        other = run(name, nprocs, backend, wire)
        cell = f"{backend}/{wire} vs {ref_backend}/{ref_wire}"
        assert other.clocks == ref.clocks, cell  # exact, not approx
        assert other.total_messages == ref.total_messages, cell
        assert other.total_bytes == ref.total_bytes, cell


@pytest.mark.parametrize("nprocs", NPROCS)
@pytest.mark.parametrize("name", list_algorithms("uniform"))
def test_uniform_clocks_bit_identical(name, nprocs):
    _assert_matrix(_run_uniform, name, nprocs)


@pytest.mark.parametrize("nprocs", NPROCS)
@pytest.mark.parametrize("name", list_algorithms("nonuniform"))
def test_nonuniform_clocks_bit_identical(name, nprocs):
    _assert_matrix(_run_nonuniform, name, nprocs)


# ----------------------------------------------------------------------
# faulted cell: the determinism contract extends to injected faults
# ----------------------------------------------------------------------

FAULT_SPEC = ("drop:p=0.03;dup:p=0.08;delay:d=25us,jitter=10us,p=0.4;"
              "reorder:p=0.08;straggler:ranks=3,factor=2")


def _run_faulted(name: str, nprocs: int, backend: str, wire: str):
    sizes = block_size_matrix(distribution_by_name("power_law", MAX_BLOCK),
                              nprocs, seed=7)
    fn = get_algorithm(name, kind="nonuniform").fn

    def prog(comm):
        vargs = build_vargs(comm.rank, sizes, fill=comm.payload_enabled)
        fn(comm, *vargs.as_tuple())
        if comm.payload_enabled:
            verify_recv(comm.rank, sizes, vargs.recvbuf)
        return comm.clock

    return run_spmd(prog, nprocs, machine=THETA, backend=backend,
                    trace=True, timeout=300, wire=wire,
                    fault_plan=FAULT_SPEC, fault_seed=23, on_fault="retry")


def _fault_sequences(result):
    return [tuple((e.kind, e.src, e.dst, e.tag, e.nbytes, e.clock)
                  for e in tr.faults) for tr in result.traces]


# ----------------------------------------------------------------------
# tensor cells: the vectorized backend joins the matrix (phantom wire)
# ----------------------------------------------------------------------

def _assert_tensor_matches_coop(spec, nprocs, fault_plan=None):
    """A TensorProgram spec is also a runnable rank program: the same
    object drives the coop backend (executing the real registered kernel)
    and the tensor backend (evaluating the vectorized recurrence) — the
    clocks and wire statistics must agree bit for bit."""
    base = dict(machine=THETA, trace=False, timeout=300, wire="phantom",
                fault_plan=fault_plan, fault_seed=23)
    ref = run_spmd(spec, nprocs,
                   config=ExecutionConfig(backend="coop", **base))
    cfg = ExecutionConfig(backend="tensor", **base)
    tens = run_spmd(spec, nprocs, config=cfg)
    assert tens.clocks == ref.clocks  # exact, not approx
    assert tens.total_messages == ref.total_messages
    assert tens.total_bytes == ref.total_bytes
    assert tens.config is cfg


@pytest.mark.parametrize("nprocs", NPROCS)
@pytest.mark.parametrize("name", list_algorithms("uniform"))
def test_tensor_uniform_clocks_bit_identical(name, nprocs):
    _assert_tensor_matches_coop(TensorAlltoall(name, BLOCK), nprocs)


@pytest.mark.parametrize("nprocs", NPROCS)
@pytest.mark.parametrize("name", list_algorithms("nonuniform"))
def test_tensor_nonuniform_clocks_bit_identical(name, nprocs):
    sizes = block_size_matrix(distribution_by_name("power_law", MAX_BLOCK),
                              nprocs, seed=7)
    _assert_tensor_matches_coop(TensorAlltoallv(name, sizes), nprocs)


@pytest.mark.parametrize("name", list_algorithms("nonuniform"))
def test_tensor_nonuniform_const_sizes(name):
    # The constant-size form (no P x P matrix) takes the lockstep
    # single-lane path for most algorithms — same clocks either way.
    _assert_tensor_matches_coop(TensorAlltoallv(name, BLOCK), 16)


# ----------------------------------------------------------------------
# tensor metrics cells: trace="metrics" aggregates join the contract
# ----------------------------------------------------------------------

def _assert_tensor_metrics_match_coop(spec, nprocs, fault_plan=None):
    """The vectorized metrics store must reproduce the scalar registry's
    RunMetrics snapshot *bit for bit* — every field, including float wait
    totals, in-flight maxima, and the phase/collective time tables."""
    base = dict(machine=THETA, trace="metrics", timeout=300, wire="phantom",
                fault_plan=fault_plan, fault_seed=23)
    ref = run_spmd(spec, nprocs,
                   config=ExecutionConfig(backend="coop", **base))
    tens = run_spmd(spec, nprocs,
                    config=ExecutionConfig(backend="tensor", **base))
    assert tens.clocks == ref.clocks  # metrics must not perturb the model
    assert tens.metrics is not None and ref.metrics is not None
    for f in dataclasses.fields(ref.metrics):
        assert getattr(tens.metrics, f.name) == \
            getattr(ref.metrics, f.name), f.name  # exact, not approx


@pytest.mark.parametrize("nprocs", NPROCS)
@pytest.mark.parametrize("name", list_algorithms("uniform"))
def test_tensor_uniform_metrics_bit_identical(name, nprocs):
    _assert_tensor_metrics_match_coop(TensorAlltoall(name, BLOCK), nprocs)


@pytest.mark.parametrize("nprocs", NPROCS)
@pytest.mark.parametrize("name", list_algorithms("nonuniform"))
def test_tensor_nonuniform_metrics_bit_identical(name, nprocs):
    sizes = block_size_matrix(distribution_by_name("power_law", MAX_BLOCK),
                              nprocs, seed=7)
    _assert_tensor_metrics_match_coop(TensorAlltoallv(name, sizes), nprocs)


def test_tensor_metrics_hierarchical_machine():
    # ppn>1 exercises the locality/grouped lane-subset completion paths.
    machine = THETA.with_overrides(ppn=4)
    sizes = block_size_matrix(distribution_by_name("power_law", MAX_BLOCK),
                              16, seed=7)
    for name in ("grouped", "locality_padded_bruck",
                 "locality_two_phase_bruck", "two_phase_bruck"):
        base = dict(machine=machine, trace="metrics", timeout=300,
                    wire="phantom")
        spec = TensorAlltoallv(name, sizes)
        ref = run_spmd(spec, 16,
                       config=ExecutionConfig(backend="coop", **base))
        tens = run_spmd(spec, 16,
                        config=ExecutionConfig(backend="tensor", **base))
        for f in dataclasses.fields(ref.metrics):
            assert getattr(tens.metrics, f.name) == \
                getattr(ref.metrics, f.name), (name, f.name)


#: The fault-feature subset the tensor backend supports: delay/jitter
#: rules and stragglers (no crashes, drops, duplicates, or reordering).
TENSOR_FAULT_SPEC = "delay:d=30us,jitter=15us,p=0.6;straggler:ranks=2,factor=3"


@pytest.mark.parametrize("name", ["two_phase_bruck", "sloav"])
def test_tensor_faulted_cell(name):
    sizes = block_size_matrix(distribution_by_name("power_law", MAX_BLOCK),
                              16, seed=7)
    _assert_tensor_matches_coop(TensorAlltoallv(name, sizes), 16,
                                fault_plan=TENSOR_FAULT_SPEC)


@pytest.mark.parametrize("name", ["two_phase_bruck", "sloav"])
def test_tensor_faulted_metrics_cell(name):
    # Fault counts, injected-delay totals, and the wait aggregates the
    # delays produce must also match the scalar registry exactly.
    sizes = block_size_matrix(distribution_by_name("power_law", MAX_BLOCK),
                              16, seed=7)
    _assert_tensor_metrics_match_coop(TensorAlltoallv(name, sizes), 16,
                                      fault_plan=TENSOR_FAULT_SPEC)


def test_tensor_rejects_unsupported_features():
    spec = TensorAlltoall("basic_bruck", BLOCK)
    with pytest.raises(ValueError, match="phantom"):
        run_spmd(spec, 4, config=ExecutionConfig(
            backend="tensor", machine=THETA, trace=False, wire="bytes"))
    with pytest.raises(ValueError, match="TensorProgram"):
        run_spmd(lambda comm: None, 4, config=ExecutionConfig(
            backend="tensor", machine=THETA, trace=False, wire="phantom"))
    with pytest.raises(ValueError, match="crash"):
        run_spmd(spec, 4, config=ExecutionConfig(
            backend="tensor", machine=THETA, trace=False, wire="phantom",
            fault_plan="crash:rank=1,step=3"))
    with pytest.raises(ValueError, match="delay"):
        run_spmd(spec, 4, config=ExecutionConfig(
            backend="tensor", machine=THETA, trace=False, wire="phantom",
            fault_plan="drop:p=0.5"))


@pytest.mark.parametrize("name", ["two_phase_bruck", "spread_out"])
def test_faulted_runs_bit_identical_across_matrix(name):
    """Fault injection is part of the determinism contract: for a fixed
    (plan, seed), every backend x wire cell must agree on per-rank clocks,
    wire statistics, fault counts, and the exact per-rank sequence of
    injected fault events — while the reliability layer still delivers
    byte-verified data on the bytes cells."""
    nprocs = 16
    ref_backend, ref_wire = MATRIX[0]
    ref = _run_faulted(name, nprocs, ref_backend, ref_wire)
    assert ref.metrics.total_faults > 0, "plan injected nothing"
    ref_faults = _fault_sequences(ref)
    for backend, wire in MATRIX[1:]:
        other = _run_faulted(name, nprocs, backend, wire)
        cell = f"{backend}/{wire} vs {ref_backend}/{ref_wire}"
        assert other.clocks == ref.clocks, cell
        assert other.total_messages == ref.total_messages, cell
        assert other.total_bytes == ref.total_bytes, cell
        assert other.metrics.fault_counts == ref.metrics.fault_counts, cell
        assert _fault_sequences(other) == ref_faults, cell


# ----------------------------------------------------------------------
# Byzantine cell: corrupt+forge under the verified transport
# ----------------------------------------------------------------------

BYZANTINE_FAULT_SPEC = ("corrupt:p=0.08;forge:p=0.05;dup:p=0.08;"
                        "delay:d=20us,jitter=10us,p=0.3")


def _run_byzantine_faulted(name: str, nprocs: int, backend: str, wire: str):
    sizes = block_size_matrix(distribution_by_name("power_law", MAX_BLOCK),
                              nprocs, seed=7)
    fn = get_algorithm(name, kind="nonuniform").fn

    def prog(comm):
        vargs = build_vargs(comm.rank, sizes, fill=comm.payload_enabled)
        fn(comm, *vargs.as_tuple())
        if comm.payload_enabled:
            verify_recv(comm.rank, sizes, vargs.recvbuf)
        return comm.clock

    cfg = ExecutionConfig(machine=THETA, backend=backend, wire=wire,
                          trace=True, timeout=300,
                          fault_plan=BYZANTINE_FAULT_SPEC, fault_seed=23,
                          reliability="verify", on_fault="retry")
    return run_spmd(prog, nprocs, config=cfg)


@pytest.mark.parametrize("name", ["two_phase_bruck", "spread_out"])
def test_byzantine_faulted_runs_bit_identical_across_matrix(name):
    """The corrupt+forge cell of the determinism contract: tampered bits
    and spoofed envelopes are injected, detected, and retransmitted
    identically in every backend x wire cell — per-rank clocks, fault
    counts, and per-rank fault-event sequences all bit-identical, while
    the bytes cells additionally byte-verify the delivered data (the
    verified transport masked every injection)."""
    nprocs = 16
    ref_backend, ref_wire = MATRIX[0]
    ref = _run_byzantine_faulted(name, nprocs, ref_backend, ref_wire)
    counts = ref.metrics.fault_counts
    assert counts.get("corrupt", 0) > 0, "plan injected no corruption"
    assert counts.get("forge", 0) > 0, "plan injected no forgeries"
    assert counts.get("forge_rejected", 0) > 0, "no forgery was rejected"
    assert counts.get("corrupt_detected", 0) > 0, "no corruption detected"
    ref_faults = _fault_sequences(ref)
    for backend, wire in MATRIX[1:]:
        other = _run_byzantine_faulted(name, nprocs, backend, wire)
        cell = f"{backend}/{wire} vs {ref_backend}/{ref_wire}"
        assert other.clocks == ref.clocks, cell
        assert other.total_messages == ref.total_messages, cell
        assert other.total_bytes == ref.total_bytes, cell
        assert other.metrics.fault_counts == ref.metrics.fault_counts, cell
        assert _fault_sequences(other) == ref_faults, cell


# ----------------------------------------------------------------------
# radix cells: the r-ary digit schedule joins the full matrix
# ----------------------------------------------------------------------

from repro.core.nonuniform import alltoallv
from repro.core.registry import radix_algorithms
from repro.core.uniform import alltoall

RADICES = (2, 4, 8)
RADIX_NPROCS = (16, 17)  # a power of two and a ragged count


def _run_uniform_radix(name, nprocs, backend, wire, radix):
    def prog(comm):
        if comm.payload_enabled:
            rng = np.random.default_rng(1234 + comm.rank)
            send = rng.integers(0, 256, nprocs * BLOCK, dtype=np.uint8)
            recv = np.zeros(nprocs * BLOCK, dtype=np.uint8)
        else:
            send = np.empty(nprocs * BLOCK, dtype=np.uint8)
            recv = np.empty(nprocs * BLOCK, dtype=np.uint8)
        alltoall(comm, send, recv, BLOCK, algorithm=name, radix=radix)
        if comm.payload_enabled:
            for src in range(nprocs):
                theirs = np.random.default_rng(1234 + src).integers(
                    0, 256, nprocs * BLOCK, dtype=np.uint8)
                np.testing.assert_array_equal(
                    recv[src * BLOCK:(src + 1) * BLOCK],
                    theirs[comm.rank * BLOCK:(comm.rank + 1) * BLOCK])
        return comm.clock

    cfg = ExecutionConfig(machine=THETA, trace=False, timeout=300,
                          backend=backend, wire=wire)
    return run_spmd(prog, nprocs, config=cfg)


def _run_nonuniform_radix(name, nprocs, backend, wire, radix):
    sizes = block_size_matrix(distribution_by_name("power_law", MAX_BLOCK),
                              nprocs, seed=7)

    def prog(comm):
        vargs = build_vargs(comm.rank, sizes, fill=comm.payload_enabled)
        alltoallv(comm, *vargs.as_tuple(), algorithm=name, radix=radix)
        if comm.payload_enabled:
            verify_recv(comm.rank, sizes, vargs.recvbuf)
        return comm.clock

    cfg = ExecutionConfig(machine=THETA, trace=False, timeout=300,
                          backend=backend, wire=wire)
    return run_spmd(prog, nprocs, config=cfg)


def _assert_radix_matrix(run, name, nprocs, radix):
    ref_backend, ref_wire = MATRIX[0]
    ref = run(name, nprocs, ref_backend, ref_wire, radix)
    for backend, wire in MATRIX[1:]:
        other = run(name, nprocs, backend, wire, radix)
        cell = f"r={radix} {backend}/{wire} vs {ref_backend}/{ref_wire}"
        assert other.clocks == ref.clocks, cell  # exact, not approx
        assert other.total_messages == ref.total_messages, cell
        assert other.total_bytes == ref.total_bytes, cell
    return ref


@pytest.mark.parametrize("radix", RADICES)
@pytest.mark.parametrize("nprocs", RADIX_NPROCS)
@pytest.mark.parametrize("name", radix_algorithms("uniform"))
def test_uniform_radix_clocks_bit_identical(name, nprocs, radix):
    ref = _assert_radix_matrix(_run_uniform_radix, name, nprocs, radix)
    if radix == 2:
        # radix=2 must be the *same integers* as the unparameterized path
        base = _run_uniform(name, nprocs, *MATRIX[0])
        assert ref.clocks == base.clocks
        assert ref.total_messages == base.total_messages
        assert ref.total_bytes == base.total_bytes


@pytest.mark.parametrize("radix", RADICES)
@pytest.mark.parametrize("nprocs", RADIX_NPROCS)
@pytest.mark.parametrize("name", radix_algorithms("nonuniform"))
def test_nonuniform_radix_clocks_bit_identical(name, nprocs, radix):
    ref = _assert_radix_matrix(_run_nonuniform_radix, name, nprocs, radix)
    if radix == 2:
        base = _run_nonuniform(name, nprocs, *MATRIX[0])
        assert ref.clocks == base.clocks
        assert ref.total_messages == base.total_messages
        assert ref.total_bytes == base.total_bytes


@pytest.mark.parametrize("radix", RADICES)
@pytest.mark.parametrize("name", radix_algorithms("uniform"))
def test_tensor_uniform_radix_cells(name, radix):
    for nprocs in RADIX_NPROCS:
        _assert_tensor_matches_coop(
            TensorAlltoall(name, BLOCK, radix=radix), nprocs)


@pytest.mark.parametrize("radix", RADICES)
@pytest.mark.parametrize("name", radix_algorithms("nonuniform"))
def test_tensor_nonuniform_radix_cells(name, radix):
    for nprocs in RADIX_NPROCS:
        sizes = block_size_matrix(
            distribution_by_name("power_law", MAX_BLOCK), nprocs, seed=7)
        _assert_tensor_matches_coop(
            TensorAlltoallv(name, sizes, radix=radix), nprocs)


def test_tensor_radix_two_spec_matches_unparameterized():
    cfg = ExecutionConfig(machine=THETA, trace=False, timeout=300,
                          backend="tensor", wire="phantom")
    for name in radix_algorithms("uniform"):
        a = run_spmd(TensorAlltoall(name, BLOCK), 16, config=cfg)
        b = run_spmd(TensorAlltoall(name, BLOCK, radix=2), 16, config=cfg)
        assert a.clocks == b.clocks and a.total_bytes == b.total_bytes


def test_radix_gating_everywhere():
    # Every entry point rejects radix != 2 for incapable algorithms
    # through the one registry flag.
    with pytest.raises(ValueError, match="radix"):
        TensorAlltoall("basic_bruck", BLOCK, radix=4)
    with pytest.raises(ValueError, match="radix"):
        TensorAlltoallv("sloav", 16, radix=4)

    def prog(comm):
        send = np.empty(4 * BLOCK, dtype=np.uint8)
        recv = np.empty(4 * BLOCK, dtype=np.uint8)
        alltoall(comm, send, recv, BLOCK, algorithm="basic_bruck", radix=4)

    cfg = ExecutionConfig(machine=THETA, trace=False, wire="phantom")
    with pytest.raises(ValueError, match="radix"):
        run_spmd(prog, 4, config=cfg)

"""Cross-backend clock equivalence: threads vs. coop, every algorithm.

The determinism contract says simulated clocks are a pure function of the
program's communication structure.  The two executor backends schedule
ranks completely differently (preemptive OS threads vs. a clock-ordered
cooperative loop), so bit-identical per-rank clocks across backends over
every registered algorithm is a sharp end-to-end check of that contract —
any hidden dependence on execution order would split them.
"""

import numpy as np
import pytest

from repro.core.registry import get_algorithm, list_algorithms
from repro.simmpi import THETA, run_spmd
from repro.workloads import (
    block_size_matrix,
    build_vargs,
    distribution_by_name,
    verify_recv,
)

NPROCS = (4, 16, 64)
BLOCK = 16  # uniform per-pair block bytes
MAX_BLOCK = 32  # non-uniform distribution ceiling


def _run_uniform(name: str, nprocs: int, backend: str):
    fn = get_algorithm(name, kind="uniform").fn

    def prog(comm):
        rng = np.random.default_rng(1234 + comm.rank)
        send = rng.integers(0, 256, nprocs * BLOCK, dtype=np.uint8)
        recv = np.zeros(nprocs * BLOCK, dtype=np.uint8)
        fn(comm, send, recv, BLOCK)
        return comm.clock

    return run_spmd(prog, nprocs, machine=THETA, backend=backend,
                    trace=False, timeout=300)


def _run_nonuniform(name: str, nprocs: int, backend: str):
    sizes = block_size_matrix(distribution_by_name("power_law", MAX_BLOCK),
                              nprocs, seed=7)
    fn = get_algorithm(name, kind="nonuniform").fn

    def prog(comm):
        vargs = build_vargs(comm.rank, sizes)
        fn(comm, *vargs.as_tuple())
        verify_recv(comm.rank, sizes, vargs.recvbuf)
        return comm.clock

    return run_spmd(prog, nprocs, machine=THETA, backend=backend,
                    trace=False, timeout=300)


@pytest.mark.parametrize("nprocs", NPROCS)
@pytest.mark.parametrize("name", list_algorithms("uniform"))
def test_uniform_clocks_bit_identical(name, nprocs):
    threaded = _run_uniform(name, nprocs, "threads")
    coop = _run_uniform(name, nprocs, "coop")
    assert threaded.clocks == coop.clocks  # exact, not approx
    assert threaded.total_messages == coop.total_messages
    assert threaded.total_bytes == coop.total_bytes


@pytest.mark.parametrize("nprocs", NPROCS)
@pytest.mark.parametrize("name", list_algorithms("nonuniform"))
def test_nonuniform_clocks_bit_identical(name, nprocs):
    threaded = _run_nonuniform(name, nprocs, "threads")
    coop = _run_nonuniform(name, nprocs, "coop")
    assert threaded.clocks == coop.clocks
    assert threaded.total_messages == coop.total_messages
    assert threaded.total_bytes == coop.total_bytes

"""Unit tests for the network fabric: matching, FIFO, failure paths."""

import threading

import pytest

from repro.simmpi import LOCAL, THETA
from repro.simmpi.errors import CommAbortedError, RankFailedError
from repro.simmpi.network import Envelope, Network


def make_net(nprocs=4, machine=LOCAL):
    return Network(nprocs, machine)


class TestPostCollect:
    def test_roundtrip(self):
        net = make_net()
        net.post(Envelope(0, 1, 7, b"hello", depart=1.0))
        env = net.collect(0, 1, 7)
        assert env.payload == b"hello"
        assert env.depart == 1.0
        assert env.nbytes == 5

    def test_fifo_per_channel(self):
        net = make_net()
        for i in range(5):
            net.post(Envelope(0, 1, 3, bytes([i]), depart=float(i)))
        got = [net.collect(0, 1, 3).payload[0] for _ in range(5)]
        assert got == [0, 1, 2, 3, 4]

    def test_channels_are_independent(self):
        net = make_net()
        net.post(Envelope(0, 1, 1, b"a", 0.0))
        net.post(Envelope(0, 1, 2, b"b", 0.0))
        net.post(Envelope(2, 1, 1, b"c", 0.0))
        assert net.collect(2, 1, 1).payload == b"c"
        assert net.collect(0, 1, 2).payload == b"b"
        assert net.collect(0, 1, 1).payload == b"a"

    def test_collect_blocks_until_post(self):
        net = make_net()
        result = []

        def receiver():
            result.append(net.collect(0, 1, 0).payload)

        t = threading.Thread(target=receiver)
        t.start()
        net.post(Envelope(0, 1, 0, b"x", 0.0))
        t.join(timeout=5)
        assert not t.is_alive()
        assert result == [b"x"]

    def test_collect_timeout_raises(self):
        net = make_net()
        with pytest.raises(CommAbortedError, match="timed out"):
            net.collect(0, 1, 0, host_timeout=0.05)

    def test_statistics(self):
        net = make_net()
        net.post(Envelope(0, 1, 0, b"abc", 0.0))
        net.post(Envelope(1, 0, 0, b"defg", 0.0))
        assert net.total_messages == 2
        assert net.total_bytes == 7


class TestProbe:
    def test_probe_empty(self):
        net = make_net()
        assert net.probe(0, 1, 0) is None

    def test_probe_returns_head_size(self):
        net = make_net()
        net.post(Envelope(0, 1, 0, b"ab", 0.0))
        net.post(Envelope(0, 1, 0, b"cdef", 0.0))
        assert net.probe(0, 1, 0) == 2  # head of the FIFO

    def test_probe_does_not_consume(self):
        net = make_net()
        net.post(Envelope(0, 1, 0, b"ab", 0.0))
        net.probe(0, 1, 0)
        assert net.collect(0, 1, 0).payload == b"ab"


class TestTiming:
    def test_head_time(self):
        net = make_net(machine=THETA)
        env = Envelope(0, 1, 0, b"x" * 100, depart=2.0)
        assert net.head_time(env) == pytest.approx(2.0 + THETA.head_latency(100))

    def test_serial_time_uses_job_size_congestion(self):
        small = Network(2, THETA)
        big = Network(2048, THETA)
        env = Envelope(0, 1, 0, b"x" * 1000, 0.0)
        assert big.serial_time(env) > small.serial_time(env)


class TestFailurePaths:
    def test_abort_wakes_blocked_collect(self):
        net = make_net()
        caught = []

        def receiver():
            try:
                net.collect(0, 1, 0)
            except RankFailedError as exc:
                caught.append(exc)

        t = threading.Thread(target=receiver)
        t.start()
        net.abort(3, ValueError("boom"))
        t.join(timeout=5)
        assert not t.is_alive()
        assert caught and caught[0].failed_rank == 3

    def test_post_after_shutdown_raises(self):
        net = make_net()
        net.shutdown()
        with pytest.raises(CommAbortedError):
            net.post(Envelope(0, 1, 0, b"x", 0.0))

    def test_collect_after_shutdown_raises(self):
        net = make_net()
        net.shutdown()
        with pytest.raises(CommAbortedError):
            net.collect(0, 1, 0)

    def test_first_abort_wins(self):
        net = make_net()
        net.abort(1, ValueError("first"))
        net.abort(2, ValueError("second"))
        with pytest.raises(RankFailedError, match="rank 1"):
            net.collect(0, 1, 0)

    def test_pending_summary_lists_channels(self):
        net = make_net()
        assert "no pending" in net.pending_summary()
        net.post(Envelope(0, 1, 5, b"xyz", 0.0))
        summary = net.pending_summary()
        assert "src=0 dst=1 tag=5" in summary
        assert "3 byte" in summary

    def test_invalid_nprocs(self):
        with pytest.raises(ValueError):
            Network(0, LOCAL)

"""Round-trip tests of the Chrome/Perfetto trace-event export."""

import json

import numpy as np
import pytest

from repro.core.nonuniform import alltoallv
from repro.simmpi import LOCAL, chrome_trace, format_summary, run_spmd
from repro.workloads import UniformBlocks, block_size_matrix, build_vargs

P = 5


def _two_phase_result(trace=True):
    sizes = block_size_matrix(UniformBlocks(32), P, seed=3)

    def prog(comm):
        vargs = build_vargs(comm.rank, sizes)
        alltoallv(comm, *vargs.as_tuple(), algorithm="two_phase_bruck")

    return run_spmd(prog, P, machine=LOCAL, trace=trace)


@pytest.fixture(scope="module")
def result():
    return _two_phase_result()


@pytest.fixture(scope="module")
def doc(result):
    return chrome_trace(result)


class TestChromeTrace:
    def test_document_schema(self, doc):
        assert set(doc) >= {"traceEvents", "displayTimeUnit", "otherData"}
        for ev in doc["traceEvents"]:
            assert ev["ph"] in ("X", "M", "s", "f", "i", "C")
            assert isinstance(ev["pid"], int)
            if ev["ph"] == "X":
                assert ev["ts"] >= 0.0
                assert ev["dur"] >= 0.0

    def test_one_track_per_rank(self, doc):
        x_pids = {ev["pid"] for ev in doc["traceEvents"]
                  if ev["ph"] == "X"}
        assert x_pids == set(range(P))
        names = {ev["pid"]: ev["args"]["name"]
                 for ev in doc["traceEvents"]
                 if ev["ph"] == "M" and ev["name"] == "process_name"}
        expected = {r: f"rank {r}" for r in range(P)}
        expected[P] = "fabric"  # the in-flight counter track
        assert names == expected

    def test_fabric_counter_track(self, doc, result):
        samples = [ev for ev in doc["traceEvents"] if ev["ph"] == "C"]
        assert samples and all(ev["pid"] == P for ev in samples)
        counts = [ev["args"]["messages"] for ev in samples]
        assert max(counts) == result.metrics.max_in_flight
        assert counts[-1] == 0  # every message eventually lands

    def test_phase_slices_present(self, doc):
        phases = {ev["name"] for ev in doc["traceEvents"]
                  if ev.get("cat") == "phase"}
        # two_phase_bruck traces these phases on every rank.
        assert {"metadata_exchange", "data_exchange"} <= phases

    def test_timestamps_monotonic_per_rank(self, result):
        for tr in result.traces:
            ends = [e.end for e in tr.events()]
            assert ends == sorted(ends)
            for e in tr.events():
                assert e.start <= e.end

    def test_send_bytes_match_wire_totals(self, doc, result):
        sends = [ev for ev in doc["traceEvents"]
                 if ev.get("cat") == "comm" and ev["name"].startswith("send")]
        assert len(sends) == result.total_messages
        assert sum(ev["args"]["nbytes"] for ev in sends) == result.total_bytes
        assert doc["otherData"]["total_bytes"] == result.total_bytes
        assert doc["otherData"]["total_messages"] == result.total_messages

    def test_flow_arrows_pair_up(self, doc, result):
        starts = [ev for ev in doc["traceEvents"] if ev["ph"] == "s"]
        finishes = [ev for ev in doc["traceEvents"] if ev["ph"] == "f"]
        assert len(starts) == len(finishes) == result.total_messages
        # Every finish references a flow id some start opened.
        assert {ev["id"] for ev in finishes} == {ev["id"] for ev in starts}

    def test_export_round_trips_through_json(self, result, tmp_path):
        path = tmp_path / "trace.json"
        doc = result.export_chrome_trace(str(path))
        assert json.loads(path.read_text()) == json.loads(json.dumps(doc))

    def test_requires_event_traces(self):
        res = _two_phase_result(trace="metrics")
        with pytest.raises(ValueError, match="trace"):
            chrome_trace(res)


class TestSummary:
    def test_summary_full(self, result):
        text = result.summary(title="round trip")
        assert "round trip" in text
        assert f"P={P}" in text
        assert str(result.total_messages) in text
        assert "congestion" in text
        assert "metadata_exchange" in text
        assert "step(tag)" in text

    def test_summary_without_observability(self):
        res = _two_phase_result(trace=False)
        text = format_summary(res)
        assert "wire traffic" in text
        assert "congestion" not in text

    def test_summary_metrics_only(self):
        res = _two_phase_result(trace="metrics")
        text = res.summary()
        assert "congestion" in text
        assert "metadata_exchange" in text

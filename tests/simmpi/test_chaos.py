"""Chaos harness: algorithms x fault plans x backends, asserting the
quadchotomy guarantee.

Every cell of the sweep must end in exactly one of four states:

1. **correct result** — under the reliability transport (``on_fault=
   "retry"``, with or without the ``verify`` tier) message-level faults
   are absorbed and delivery is byte-verified, exactly as on a clean
   fabric;
2. **typed failure** — under ``fail-fast`` an unrecovered fault surfaces
   as a :class:`SimMPIError` subclass (never a bare hang, never a wrong
   answer reported as success);
3. **verified partial** — under ``degrade`` an injected rank crash — or a
   sender convicted by the verified transport — is excised; survivors
   complete and the result is flagged with ``degraded_ranks``;
4. **Byzantine-delivered** — *without* the verify tier, tampered or
   forged bytes can reach the application; the harness's byte
   verification then names the exact (rank, source block, offset) of the
   escape rather than passing silently.

Never a hang, never silent corruption reported as success.  The sweep
also pins cross-backend determinism inside each cell: whatever a plan
does, it does identically on ``threads`` and ``coop``.
"""

import pytest

from repro.core.registry import get_algorithm, list_algorithms
from repro.simmpi import (
    THETA,
    CrashRule,
    FaultPlan,
    MessageCorruptError,
    SimMPIError,
    run_spmd,
)
from repro.workloads import (
    block_size_matrix,
    build_vargs,
    distribution_by_name,
    expected_recv,
    first_corrupted_block,
    verify_recv,
)

NPROCS = 8
MAX_BLOCK = 32
ALGORITHMS = list_algorithms("nonuniform")
SIZES = block_size_matrix(distribution_by_name("power_law", MAX_BLOCK),
                          NPROCS, seed=3)

#: Message-level chaos absorbed by the reliability transport.
RETRY_PLAN = FaultPlan.parse(
    "drop:p=0.04;dup:p=0.1;delay:d=30us,jitter=15us,p=0.5;reorder:p=0.1")
#: One mid-collective rank crash.  Step 3 is low enough that every
#: algorithm's rank 2 reaches it (grouped ranks do few point-to-point ops).
CRASH_PLAN = FaultPlan.parse("crash:rank=2,step=3")
#: Pure timing perturbation: never affects correctness, only clocks.
STRAGGLER_PLAN = FaultPlan.parse("straggler:ranks=1:5,factor=6")
#: Byzantine chaos: tampered bits and spoofed envelopes plus duplicates.
BYZANTINE_PLAN = FaultPlan.parse("corrupt:p=0.06;forge:p=0.04;dup:p=0.08")


def _run(algorithm, *, backend, fault_plan, on_fault, verify, seed=17,
         reliability=None):
    fn = get_algorithm(algorithm, kind="nonuniform").fn

    def prog(comm):
        vargs = build_vargs(comm.rank, SIZES, fill=True)
        fn(comm, *vargs.as_tuple())
        if verify:
            verify_recv(comm.rank, SIZES, vargs.recvbuf)
        return comm.rank

    return run_spmd(prog, NPROCS, machine=THETA, backend=backend,
                    timeout=60, fault_plan=fault_plan, fault_seed=seed,
                    on_fault=on_fault, reliability=reliability)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_retry_absorbs_message_chaos(algorithm):
    """Arm 1: drop/dup/delay/reorder under the reliability transport must
    yield byte-verified results, bit-identically on both backends."""
    clocks = {}
    for backend in ("threads", "coop"):
        result = _run(algorithm, backend=backend, fault_plan=RETRY_PLAN,
                      on_fault="retry", verify=True)
        assert result.returns == list(range(NPROCS))
        assert not result.degraded_ranks
        assert result.metrics.total_faults > 0, "plan injected nothing"
        clocks[backend] = tuple(result.clocks)
    assert clocks["threads"] == clocks["coop"]


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("backend", ["threads", "coop"])
def test_fail_fast_crash_is_typed_never_a_hang(algorithm, backend):
    """Arm 2: a planned crash under fail-fast tears the job down with a
    typed SimMPIError naming the crashed rank — on both backends."""
    with pytest.raises(SimMPIError, match="rank 2"):
        _run(algorithm, backend=backend, fault_plan=CRASH_PLAN,
             on_fault="fail-fast", verify=False)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fail_fast_drop_is_typed_never_a_hang(algorithm):
    """Arm 2, harder: an unrecovered *message* drop strands a receiver.
    The coop backend proves the stall exactly and raises a typed error
    the instant no rank can progress — no watchdog, no hang."""
    plan = FaultPlan.parse("drop:p=0.15")
    with pytest.raises(SimMPIError):
        _run(algorithm, backend="coop", fault_plan=plan,
             on_fault="fail-fast", verify=False)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("backend", ["threads", "coop"])
def test_degrade_yields_verified_partial(algorithm, backend):
    """Arm 3: under degrade the crashed rank is excised, survivors
    complete, and the result is explicitly flagged as partial."""
    try:
        result = _run(algorithm, backend=backend, fault_plan=CRASH_PLAN,
                      on_fault="degrade", verify=False)
    except Exception:
        # Algorithms that route data or metadata *through* the dead rank
        # may legitimately be unable to complete a shrunken collective:
        # a survivor then fails on the excised rank's empty contribution
        # and the error is re-raised attributed to that rank.  The
        # guarantee is completion-or-attributed-failure, never a hang or
        # a silent wrong answer.
        return
    assert result.degraded_ranks == [2]
    assert result.degraded
    assert result.returns[2] is None
    for rank in range(NPROCS):
        if rank != 2:
            assert result.returns[rank] == rank


def test_degrade_partial_is_byte_verified_for_direct_algorithms():
    """For pairwise-direct algorithms the degraded result is checkable:
    every surviving pair's block is intact and the dead rank's blocks are
    zero-filled."""
    fn = get_algorithm("spread_out", kind="nonuniform").fn
    dead = 2
    plan = FaultPlan(crashes=(CrashRule(rank=dead, step=9),))

    def prog(comm):
        vargs = build_vargs(comm.rank, SIZES, fill=True)
        fn(comm, *vargs.as_tuple())
        return vargs.recvbuf.copy()

    for backend in ("threads", "coop"):
        result = run_spmd(prog, NPROCS, machine=THETA, backend=backend,
                          timeout=60, fault_plan=plan, on_fault="degrade")
        assert result.degraded_ranks == [dead]
        for rank, recvbuf in enumerate(result.returns):
            if rank == dead:
                assert recvbuf is None
                continue
            # Degrade keeps the original buffer layout: live sources'
            # blocks are byte-exact; the dead source's block either
            # arrived intact (sent before the crash) or reads zeros.
            want = expected_recv(rank, SIZES)
            offset = 0
            for src in range(NPROCS):
                n = int(SIZES[src, rank])
                got = recvbuf[offset:offset + n]
                if src == dead and (got == 0).all():
                    offset += n
                    continue
                if not (got == want[offset:offset + n]).all():
                    # Localize the escape the same way verify_recv does:
                    # name the receiving rank, source block, and offset.
                    where = first_corrupted_block(rank, SIZES, recvbuf)
                    raise AssertionError(
                        f"rank {rank}: block from source {where[0]} "
                        f"corrupted at offset {where[1]} ({where[2]})")
                offset += n


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_stragglers_slow_but_never_break(algorithm):
    """Stragglers are pure timing: results verify, clocks inflate, and
    both backends agree on the inflated clocks."""
    clocks = {}
    for backend in ("threads", "coop"):
        clean = _run(algorithm, backend=backend, fault_plan=None,
                     on_fault="fail-fast", verify=True)
        slow = _run(algorithm, backend=backend,
                    fault_plan=STRAGGLER_PLAN, on_fault="fail-fast",
                    verify=True)
        assert slow.returns == list(range(NPROCS))
        assert slow.elapsed > clean.elapsed
        clocks[backend] = tuple(slow.clocks)
    assert clocks["threads"] == clocks["coop"]


# ----------------------------------------------------------------------
# Byzantine arms: corrupt+forge complete the quadchotomy
# ----------------------------------------------------------------------

@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_verify_retry_absorbs_byzantine_chaos(algorithm):
    """Arm 1 (Byzantine edition): corrupt+forge+dup under the *verified*
    transport must yield byte-verified results — every tampered copy is
    detected and retransmitted, every forged envelope rejected —
    bit-identically on both backends."""
    clocks = {}
    for backend in ("threads", "coop"):
        result = _run(algorithm, backend=backend, fault_plan=BYZANTINE_PLAN,
                      on_fault="retry", verify=True, reliability="verify")
        assert result.returns == list(range(NPROCS))
        assert not result.degraded_ranks
        assert result.metrics.total_faults > 0, "plan injected nothing"
        clocks[backend] = tuple(result.clocks)
    assert clocks["threads"] == clocks["coop"]


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("backend", ["threads", "coop"])
def test_fail_fast_corrupt_is_typed_never_silent(algorithm, backend):
    """Arm 2 (Byzantine edition): with verification on but no retry
    policy, the first tampered delivery surfaces as a typed
    MessageCorruptError — never a silently wrong result."""
    plan = FaultPlan.parse("corrupt:p=0.5")
    with pytest.raises(SimMPIError) as exc:
        _run(algorithm, backend=backend, fault_plan=plan,
             on_fault="fail-fast", verify=False, reliability="verify")
    original = getattr(exc.value, "original", exc.value)
    assert isinstance(original, MessageCorruptError)


@pytest.mark.parametrize("backend", ["threads", "coop"])
def test_degrade_tombstones_byzantine_sender_as_flagged_partial(backend):
    """Arm 3 (Byzantine edition): under degrade, a sender whose traffic
    fails verification is tombstoned and the result is flagged partial —
    survivors complete with the convicted rank's contribution zeroed."""
    fn = get_algorithm("spread_out", kind="nonuniform").fn
    plan = FaultPlan.parse("corrupt:p=1,src=3")

    def prog(comm):
        vargs = build_vargs(comm.rank, SIZES, fill=True)
        fn(comm, *vargs.as_tuple())
        return vargs.recvbuf.copy()

    result = run_spmd(prog, NPROCS, machine=THETA, backend=backend,
                      timeout=60, fault_plan=plan, on_fault="degrade",
                      reliability="verify")
    assert result.degraded_ranks == [3]
    assert result.degraded
    for rank, recvbuf in enumerate(result.returns):
        if rank == 3:
            continue   # the convicted rank itself still completes
        where = first_corrupted_block(rank, SIZES, recvbuf)
        if where is not None:
            # Only rank 3's block may differ, and only by reading zeros.
            assert where[0] == 3, where
            n = int(SIZES[3, rank])
            offset = int(SIZES[:3, rank].sum())
            assert (recvbuf[offset:offset + n] == 0).all(), where


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_byzantine_delivery_without_verify_is_never_silent(algorithm):
    """Arm 4: without the verify tier, tampered bytes reach the
    application (the transport has no way to notice).  The outcome must
    still be loud: either the harness's byte verification names the
    escape, or the algorithm trips over corrupted metadata with a failure
    attributed to a rank — never a success report over wrong bytes."""
    plan = FaultPlan.parse("corrupt:p=1")
    with pytest.raises(Exception) as exc:
        # verify=True here is the harness's own byte check; the transport
        # runs the plain retry tier with no integrity checking.
        _run(algorithm, backend="coop", fault_plan=plan,
             on_fault="retry", verify=True, reliability="retry")
    # Whatever surfaced — the harness's named byte-verification failure,
    # an attributed rank failure, or a crash on corrupted metadata (e.g.
    # a garbage count producing an absurd allocation) — it must be loud.
    # A silent pass is the one forbidden outcome; pytest.raises above
    # already guarantees that, and the message must carry a diagnosis.
    assert str(exc.value), "empty failure message"


def test_byzantine_escape_is_named_for_direct_algorithms():
    """Arm 4, sharpened: for direct algorithms (no metadata riding the
    wire) the corruption reaches the data buffers intact-shaped, and the
    harness names the exact (rank, source block, offset) of the escape —
    the `first_corrupted_block` vocabulary, not a bare assert."""
    plan = FaultPlan.parse("corrupt:p=1")
    for algorithm in ("vendor", "spread_out"):
        with pytest.raises(AssertionError) as exc:
            _run(algorithm, backend="coop", fault_plan=plan,
                 on_fault="retry", verify=True, reliability="retry")
        msg = str(exc.value)
        assert "block from source" in msg, (algorithm, msg)
        assert "corrupted at offset" in msg, (algorithm, msg)

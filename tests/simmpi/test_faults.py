"""Unit tests for the fault-injection engine.

Covers the ``FaultPlan`` spec grammar, rule matching, the injector's
per-message determinism, the drop/delay/duplicate/reorder transformations,
the reliability retransmission schedule (including retry exhaustion into a
``mark="lost"`` tombstone), and the straggler/crash rule lookups.
"""

import pytest

from repro.simmpi import (
    FAULT_KINDS,
    KNOWN_FAULT_CLAUSES,
    LOCAL,
    CrashRule,
    FaultInjector,
    FaultPlan,
    FaultRule,
    MessageCorruptError,
    MessageLostError,
    ReliabilityConfig,
    StragglerRule,
    run_spmd,
)
from repro.simmpi.faults import auth_tag, payload_digest
from repro.simmpi.network import Envelope


def env(src=0, dst=1, tag=0, nbytes=64, depart=0.0):
    return Envelope(src, dst, tag, b"\0" * nbytes, depart)


class TestSpecGrammar:
    def test_full_spec_round_trip(self):
        plan = FaultPlan.parse(
            "drop:p=0.02;delay:d=50us,jitter=20us;dup:p=0.1,src=3;"
            "reorder:p=0.05,tag=7;crash:rank=5,step=200;"
            "crash:rank=6,at=2ms;straggler:ranks=0:3,factor=4")
        kinds = [r.kind for r in plan.rules]
        assert kinds == ["drop", "delay", "duplicate", "reorder"]
        assert plan.rules[0].prob == 0.02
        assert plan.rules[1].delay == pytest.approx(50e-6)
        assert plan.rules[1].jitter == pytest.approx(20e-6)
        assert plan.rules[2].src == 3
        assert plan.rules[3].tag == 7
        assert plan.crashes == (CrashRule(rank=5, step=200),
                                CrashRule(rank=6, time=2e-3))
        assert plan.stragglers == (StragglerRule(ranks=(0, 3), factor=4.0),)

    def test_time_suffixes(self):
        plan = FaultPlan.parse("delay:d=1500us;crash:rank=0,at=0.5s")
        assert plan.rules[0].delay == pytest.approx(1.5e-3)
        assert plan.crashes[0].time == pytest.approx(0.5)

    def test_empty_and_whitespace(self):
        assert FaultPlan.parse("").empty
        assert FaultPlan.parse(" ; ; ").empty

    @pytest.mark.parametrize("bad", [
        "explode:p=1",              # unknown kind
        "drop:p=2",                 # prob out of range
        "drop:frequency=1",         # unknown parameter
        "crash:step=5",             # crash without a rank
        "crash:rank=1",             # crash without step/time
        "crash:rank=1,step=0",      # step is 1-based
        "straggler:factor=2",       # straggler without ranks
        "straggler:ranks=1,factor=0.5",  # factor < 1
        "drop:p",                   # not key=value
    ])
    def test_rejects_bad_specs(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.parse(bad)

    def test_duplicate_crash_rule_rejected(self):
        with pytest.raises(ValueError, match="duplicate crash"):
            FaultPlan.parse("crash:rank=1,step=2;crash:rank=1,step=9")

    def test_rule_matching_wildcards(self):
        rule = FaultRule("drop", src=1, phase="exchange")
        assert rule.matches(1, 5, 9, "exchange")
        assert not rule.matches(2, 5, 9, "exchange")
        assert not rule.matches(1, 5, 9, "rotate")
        assert FaultRule("drop").matches(7, 3, 0, None)


class TestPlanLookups:
    def test_straggle_factor_composes(self):
        plan = FaultPlan(stragglers=(StragglerRule((1, 2), 2.0),
                                     StragglerRule((2,), 3.0)))
        assert plan.straggle_factor(0) == 1.0
        assert plan.straggle_factor(1) == 2.0
        assert plan.straggle_factor(2) == 6.0

    def test_crash_rule_lookup(self):
        plan = FaultPlan(crashes=(CrashRule(rank=3, step=10),))
        assert plan.crash_rule(3).step == 10
        assert plan.crash_rule(0) is None


class TestInjectorDeterminism:
    PLAN = FaultPlan(rules=(FaultRule("drop", prob=0.3),
                            FaultRule("delay", delay=10e-6, jitter=5e-6,
                                      prob=0.5)))

    def _decisions(self, injector, n=64):
        out = []
        for i in range(n):
            e = env(depart=float(i))
            deposits, records = injector.on_post(e, None)
            out.append((len(deposits), tuple((r.kind, r.delay)
                                             for r in records)))
        return out

    def test_same_seed_same_decisions(self):
        a = self._decisions(FaultInjector(self.PLAN, seed=42))
        b = self._decisions(FaultInjector(self.PLAN, seed=42))
        assert a == b

    def test_different_seed_different_decisions(self):
        a = self._decisions(FaultInjector(self.PLAN, seed=42))
        b = self._decisions(FaultInjector(self.PLAN, seed=43))
        assert a != b

    def test_decision_depends_on_channel_not_arrival_order(self):
        # The RNG keys on (src, dst, tag, seq): interleaving posts from
        # other channels must not shift a channel's decisions.
        inj1 = FaultInjector(self.PLAN, seed=1)
        alone = [inj1.on_post(env(depart=float(i)), None)[1]
                 for i in range(8)]
        inj2 = FaultInjector(self.PLAN, seed=1)
        interleaved = []
        for i in range(8):
            interleaved.append(inj2.on_post(env(depart=float(i)), None)[1])
            inj2.on_post(env(src=5, dst=6, depart=float(i)), None)
        assert alone == interleaved


class TestTransformations:
    def test_certain_drop_without_reliability_vanishes(self):
        inj = FaultInjector(FaultPlan(rules=(FaultRule("drop"),)))
        deposits, records = inj.on_post(env(), None)
        assert deposits == []
        assert [r.kind for r in records] == ["drop"]

    def test_certain_delay_shifts_departure(self):
        inj = FaultInjector(FaultPlan(rules=(FaultRule("delay",
                                                       delay=7e-6),)))
        e = env(depart=1.0)
        deposits, records = inj.on_post(e, None)
        assert deposits == [e]
        assert e.depart == pytest.approx(1.0 + 7e-6)
        assert records[0].delay == pytest.approx(7e-6)

    def test_certain_duplicate_deposits_twice(self):
        inj = FaultInjector(FaultPlan(rules=(FaultRule("duplicate"),)))
        e = env()
        deposits, records = inj.on_post(e, None)
        assert len(deposits) == 2
        assert deposits[0] is e
        assert deposits[1].mark == "dup"
        assert deposits[1].nbytes == e.nbytes

    def test_reorder_holds_until_next_post_and_flush(self):
        inj = FaultInjector(FaultPlan(rules=(
            FaultRule("reorder", tag=1),)))
        first = env(tag=1)
        deposits, records = inj.on_post(first, None)
        assert deposits == []          # held
        assert records[0].kind == "reorder"
        second = env(tag=2)
        deposits, _ = inj.on_post(second, None)
        assert deposits == [second, first]  # released behind the successor
        # A hold with no successor is released by the program-end flush.
        third = env(tag=1, depart=9.0)
        deposits, _ = inj.on_post(third, None)
        assert deposits == []
        assert inj.flush(0) is third
        assert inj.flush(0) is None

    def test_phase_matcher(self):
        inj = FaultInjector(FaultPlan(rules=(
            FaultRule("drop", phase="exchange"),)))
        deposits, _ = inj.on_post(env(), "rotate")
        assert len(deposits) == 1      # wrong phase: untouched
        deposits, _ = inj.on_post(env(), "exchange")
        assert deposits == []


class TestReliability:
    def test_deadline_offset_is_backoff_sum(self):
        rel = ReliabilityConfig(rto=1e-4, backoff=2.0, max_retries=3)
        assert rel.deadline_offset() == pytest.approx(
            1e-4 * (1 + 2 + 4 + 8))

    def test_sequence_numbers_assigned_per_channel(self):
        inj = FaultInjector(FaultPlan(), reliability=ReliabilityConfig())
        a, b = env(), env()
        other = env(dst=2)
        inj.on_post(a, None)
        inj.on_post(other, None)
        inj.on_post(b, None)
        assert (a.seq, b.seq, other.seq) == (0, 1, 0)

    def test_certain_drop_exhausts_into_lost_tombstone(self):
        rel = ReliabilityConfig(rto=1e-4, backoff=2.0, max_retries=2)
        inj = FaultInjector(FaultPlan(rules=(FaultRule("drop"),)),
                            reliability=rel)
        e = env(depart=1.0)
        deposits, records = inj.on_post(e, None)
        assert deposits == [e]
        assert e.mark == "lost"
        assert e.depart == pytest.approx(1.0 + rel.deadline_offset())
        kinds = [r.kind for r in records]
        assert kinds == ["drop", "retry", "drop", "retry", "drop", "lost"]

    def test_partial_drop_delays_by_backoff(self):
        # Seed chosen so the first transmission drops and the first
        # retransmission survives: departure shifts by exactly one RTO.
        rel = ReliabilityConfig(rto=1e-4, backoff=2.0, max_retries=5)
        rule = FaultRule("drop", prob=0.5)
        found = False
        for seed in range(64):
            inj = FaultInjector(FaultPlan(rules=(rule,)), seed=seed,
                                reliability=rel)
            e = env(depart=1.0)
            deposits, records = inj.on_post(e, None)
            kinds = [r.kind for r in records]
            if kinds == ["drop", "retry"]:
                assert deposits == [e]
                assert e.mark is None
                assert e.depart == pytest.approx(1.0 + rel.rto)
                found = True
                break
        assert found, "no seed produced drop-then-recover in 64 tries"

    def test_lost_message_raises_typed_error_not_hang(self):
        import numpy as np
        plan = FaultPlan.parse("drop:p=1,src=0,dst=1")

        def prog(comm):
            buf = np.zeros(4, dtype=np.uint8)
            if comm.rank == 0:
                comm.send(buf, 1)
            elif comm.rank == 1:
                comm.recv(buf, 0)

        with pytest.raises(MessageLostError, match="lost"):
            run_spmd(prog, 2, machine=LOCAL, backend="coop",
                     fault_plan=plan, on_fault="retry")

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ReliabilityConfig(rto=0.0)
        with pytest.raises(ValueError):
            ReliabilityConfig(backoff=0.5)
        with pytest.raises(ValueError):
            ReliabilityConfig(max_retries=-1)


class TestSpecRoundTrip:
    """Property: ``FaultPlan.parse(plan.to_spec()) == plan`` for every
    kind × matcher combination expressible in the grammar."""

    MATCHERS = [
        {},
        {"prob": 0.25},
        {"src": 3},
        {"dst": 7},
        {"tag": 11},
        {"phase": "exchange"},
        {"prob": 0.5, "src": 1, "dst": 2, "tag": 3, "phase": "rotate"},
    ]

    @pytest.mark.parametrize("kind", FAULT_KINDS)
    @pytest.mark.parametrize("matcher", range(len(MATCHERS)))
    def test_rule_round_trip(self, kind, matcher):
        params = dict(self.MATCHERS[matcher])
        if kind == "delay":
            params.update(delay=50e-6, jitter=20e-6)
        plan = FaultPlan(rules=(FaultRule(kind, **params),))
        assert FaultPlan.parse(plan.to_spec()) == plan

    def test_crash_and_straggler_round_trip(self):
        plan = FaultPlan(
            crashes=(CrashRule(rank=5, step=200), CrashRule(rank=6, time=2e-3)),
            stragglers=(StragglerRule(ranks=(0, 3), factor=4.0),))
        assert FaultPlan.parse(plan.to_spec()) == plan

    def test_full_plan_round_trip(self):
        plan = FaultPlan(
            rules=tuple(FaultRule(k, prob=0.1 * (i + 1))
                        for i, k in enumerate(FAULT_KINDS)),
            crashes=(CrashRule(rank=1, step=9),),
            stragglers=(StragglerRule(ranks=(2,), factor=2.0),))
        assert FaultPlan.parse(plan.to_spec()) == plan

    def test_dup_alias_normalizes_to_duplicate(self):
        # "dup" parses to kind="duplicate", whose to_spec re-parses fine.
        plan = FaultPlan.parse("dup:p=0.1")
        assert plan.rules[0].kind == "duplicate"
        assert FaultPlan.parse(plan.to_spec()) == plan

    def test_parse_error_lists_all_known_clauses(self):
        with pytest.raises(ValueError) as exc:
            FaultPlan.parse("explode:p=1")
        for kind in KNOWN_FAULT_CLAUSES:
            assert kind in str(exc.value)


class TestCorruptForgeTransforms:
    def test_certain_corrupt_flips_payload_bits(self):
        inj = FaultInjector(FaultPlan(rules=(FaultRule("corrupt"),)))
        e = env()
        deposits, records = inj.on_post(e, None)
        assert deposits == [e]
        assert e.tampered
        assert e.payload != b"\0" * e.nbytes
        assert e.nbytes == 64            # size never changes: clocks agree
        assert [r.kind for r in records] == ["corrupt"]

    def test_certain_corrupt_in_phantom_skews_declared_size(self):
        inj = FaultInjector(FaultPlan(rules=(FaultRule("corrupt"),)),
                            reliability=ReliabilityConfig(verify=True))
        e = Envelope(0, 1, 0, None, 0.0, 64)   # phantom: no payload
        deposits, _ = inj.on_post(e, None)
        assert deposits == [e]
        assert e.tampered
        assert e.declared != e.nbytes

    def test_corrupt_decision_identical_across_wire_modes(self):
        plan = FaultPlan(rules=(FaultRule("corrupt", prob=0.5),))
        decisions = []
        for payload in (b"\0" * 64, None):
            inj = FaultInjector(plan, seed=9)
            got = []
            for i in range(64):
                e = Envelope(0, 1, 0, payload, float(i), 64)
                _, records = inj.on_post(e, None)
                got.append(tuple(r.kind for r in records))
            decisions.append(got)
        assert decisions[0] == decisions[1]

    def test_certain_forge_injects_spoofed_envelope_first(self):
        inj = FaultInjector(FaultPlan(rules=(FaultRule("forge"),)))
        e = env()
        deposits, records = inj.on_post(e, None)
        assert len(deposits) == 2
        forged, genuine = deposits
        assert genuine is e
        assert forged.seq is None
        assert forged.nbytes == e.nbytes
        assert forged.payload != e.payload
        assert [r.kind for r in records] == ["forge"]

    def test_forged_envelope_fails_auth_under_verify(self):
        inj = FaultInjector(FaultPlan(rules=(FaultRule("forge"),)),
                            reliability=ReliabilityConfig(verify=True))
        e = env()
        deposits, _ = inj.on_post(e, None)
        forged, genuine = deposits
        # The attacker can compute a valid checksum over its own bytes...
        assert forged.checksum == payload_digest(forged.payload)
        # ...but not the channel auth tag, which is what convicts it.
        assert forged.auth != auth_tag(forged.src, forged.dst, forged.tag,
                                       genuine.seq)
        assert genuine.auth == auth_tag(genuine.src, genuine.dst,
                                        genuine.tag, genuine.seq)

    def test_corrupt_retry_dialogue_ends_with_clean_copy(self):
        # prob=0.5 with some seed: initial tamper then a clean retry.
        rel = ReliabilityConfig(verify=True, rto=1e-4, max_retries=5)
        rule = FaultRule("corrupt", prob=0.5)
        found = False
        for seed in range(64):
            inj = FaultInjector(FaultPlan(rules=(rule,)), seed=seed,
                                reliability=rel, on_fault="retry")
            e = env(depart=1.0)
            deposits, records = inj.on_post(e, None)
            kinds = [r.kind for r in records]
            if kinds == ["corrupt", "retry"]:
                assert len(deposits) == 2
                assert deposits[0].tampered
                assert not deposits[1].tampered
                assert deposits[1].payload == b"\0" * 64
                found = True
                break
        assert found, "no seed produced corrupt-then-recover in 64 tries"

    def test_certain_corrupt_exhausts_into_corrupt_lost_tombstone(self):
        rel = ReliabilityConfig(verify=True, rto=1e-4, backoff=2.0,
                                max_retries=2)
        inj = FaultInjector(FaultPlan(rules=(FaultRule("corrupt"),)),
                            reliability=rel, on_fault="retry")
        e = env(depart=1.0)
        deposits, records = inj.on_post(e, None)
        assert deposits[-1].mark == "corrupt_lost"
        assert deposits[-1].depart == pytest.approx(
            1.0 + rel.deadline_offset())
        assert records[-1].kind == "corrupt_lost"
        # every non-tombstone deposit is a tampered copy
        assert all(d.tampered for d in deposits[:-1])


class TestVerifiedTransport:
    def _prog(self, comm):
        import numpy as np
        buf = np.arange(32, dtype=np.uint8)
        if comm.rank == 0:
            comm.send(buf, 1)
        elif comm.rank == 1:
            out = np.zeros(32, dtype=np.uint8)
            comm.recv(out, 0)
            assert out.tobytes() == buf.tobytes()

    def _cfg(self, **kw):
        from repro.simmpi import ExecutionConfig
        defaults = dict(machine=LOCAL, backend="coop", trace="metrics",
                        reliability="verify")
        defaults.update(kw)
        return ExecutionConfig(**defaults)

    def test_clean_verify_run_is_byte_correct(self):
        run_spmd(self._prog, 2, config=self._cfg())

    def test_corrupt_fail_fast_raises_typed(self):
        with pytest.raises(MessageCorruptError) as exc:
            run_spmd(self._prog, 2, config=self._cfg(
                fault_plan="corrupt:p=1,src=0,dst=1"))
        assert exc.value.reason == "corrupt"

    def test_forge_fail_fast_raises_typed(self):
        with pytest.raises(MessageCorruptError) as exc:
            run_spmd(self._prog, 2, config=self._cfg(
                fault_plan="forge:p=1,src=0,dst=1"))
        assert exc.value.reason == "forged"

    def test_corrupt_retry_recovers_byte_correct(self):
        res = run_spmd(self._prog, 2, config=self._cfg(
            fault_plan="corrupt:p=0.5", on_fault="retry", fault_seed=3))
        counts = res.metrics.fault_counts
        assert counts.get("corrupt_detected", 0) >= 1
        assert counts["corrupt_detected"] <= counts["corrupt"]

    def test_forge_retry_rejects_and_delivers_genuine(self):
        res = run_spmd(self._prog, 2, config=self._cfg(
            fault_plan="forge:p=1,src=0,dst=1", on_fault="retry"))
        assert res.metrics.fault_counts["forge_rejected"] == 1

    def test_corrupt_exhaustion_raises_exhausted(self):
        rel = ReliabilityConfig(verify=True, max_retries=2)
        with pytest.raises(MessageCorruptError) as exc:
            run_spmd(self._prog, 2, config=self._cfg(
                reliability=rel, fault_plan="corrupt:p=1,src=0,dst=1",
                on_fault="retry"))
        assert exc.value.reason == "exhausted"

    def test_degrade_tombstones_corrupting_sender(self):
        import numpy as np

        def prog(comm):
            buf = np.arange(16, dtype=np.uint8)
            if comm.rank == 0:
                comm.send(buf, 2)
            elif comm.rank == 1:
                comm.send(buf, 2)
            else:
                a = np.zeros(16, dtype=np.uint8)
                b = np.zeros(16, dtype=np.uint8)
                comm.recv(a, 0)
                comm.recv(b, 1)
                return (a.sum(), b.sum())

        res = run_spmd(prog, 3, config=self._cfg(
            fault_plan="corrupt:p=1,src=0", on_fault="degrade"))
        assert res.degraded_ranks == [0]
        assert res.degraded
        got_a, got_b = res.returns[2]
        assert got_a == 0                       # excised sender reads zeros
        assert got_b == sum(range(16))          # honest sender intact

    def test_verify_without_faults_changes_no_bytes(self):
        # The verify tier costs simulated time but never perturbs data.
        import numpy as np

        def prog(comm):
            vals = np.full(8, comm.rank, dtype=np.uint8)
            return comm.allgather(vals).tolist()

        plain = run_spmd(prog, 4, config=self._cfg(reliability="retry"))
        verified = run_spmd(prog, 4, config=self._cfg())
        assert plain.returns == verified.returns
        assert verified.elapsed > plain.elapsed   # checksum passes cost time

    def test_reliability_verify_string_resolves(self):
        from repro.simmpi import ExecutionConfig
        cfg = ExecutionConfig(machine=LOCAL, reliability="verify")
        assert cfg.reliability.verify
        with pytest.raises(ValueError, match="verify"):
            ExecutionConfig(machine=LOCAL, reliability="checksum")

"""Unit tests for the fault-injection engine.

Covers the ``FaultPlan`` spec grammar, rule matching, the injector's
per-message determinism, the drop/delay/duplicate/reorder transformations,
the reliability retransmission schedule (including retry exhaustion into a
``mark="lost"`` tombstone), and the straggler/crash rule lookups.
"""

import pytest

from repro.simmpi import (
    LOCAL,
    CrashRule,
    FaultInjector,
    FaultPlan,
    FaultRule,
    MessageLostError,
    ReliabilityConfig,
    StragglerRule,
    run_spmd,
)
from repro.simmpi.network import Envelope


def env(src=0, dst=1, tag=0, nbytes=64, depart=0.0):
    return Envelope(src, dst, tag, b"\0" * nbytes, depart)


class TestSpecGrammar:
    def test_full_spec_round_trip(self):
        plan = FaultPlan.parse(
            "drop:p=0.02;delay:d=50us,jitter=20us;dup:p=0.1,src=3;"
            "reorder:p=0.05,tag=7;crash:rank=5,step=200;"
            "crash:rank=6,at=2ms;straggler:ranks=0:3,factor=4")
        kinds = [r.kind for r in plan.rules]
        assert kinds == ["drop", "delay", "duplicate", "reorder"]
        assert plan.rules[0].prob == 0.02
        assert plan.rules[1].delay == pytest.approx(50e-6)
        assert plan.rules[1].jitter == pytest.approx(20e-6)
        assert plan.rules[2].src == 3
        assert plan.rules[3].tag == 7
        assert plan.crashes == (CrashRule(rank=5, step=200),
                                CrashRule(rank=6, time=2e-3))
        assert plan.stragglers == (StragglerRule(ranks=(0, 3), factor=4.0),)

    def test_time_suffixes(self):
        plan = FaultPlan.parse("delay:d=1500us;crash:rank=0,at=0.5s")
        assert plan.rules[0].delay == pytest.approx(1.5e-3)
        assert plan.crashes[0].time == pytest.approx(0.5)

    def test_empty_and_whitespace(self):
        assert FaultPlan.parse("").empty
        assert FaultPlan.parse(" ; ; ").empty

    @pytest.mark.parametrize("bad", [
        "explode:p=1",              # unknown kind
        "drop:p=2",                 # prob out of range
        "drop:frequency=1",         # unknown parameter
        "crash:step=5",             # crash without a rank
        "crash:rank=1",             # crash without step/time
        "crash:rank=1,step=0",      # step is 1-based
        "straggler:factor=2",       # straggler without ranks
        "straggler:ranks=1,factor=0.5",  # factor < 1
        "drop:p",                   # not key=value
    ])
    def test_rejects_bad_specs(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.parse(bad)

    def test_duplicate_crash_rule_rejected(self):
        with pytest.raises(ValueError, match="duplicate crash"):
            FaultPlan.parse("crash:rank=1,step=2;crash:rank=1,step=9")

    def test_rule_matching_wildcards(self):
        rule = FaultRule("drop", src=1, phase="exchange")
        assert rule.matches(1, 5, 9, "exchange")
        assert not rule.matches(2, 5, 9, "exchange")
        assert not rule.matches(1, 5, 9, "rotate")
        assert FaultRule("drop").matches(7, 3, 0, None)


class TestPlanLookups:
    def test_straggle_factor_composes(self):
        plan = FaultPlan(stragglers=(StragglerRule((1, 2), 2.0),
                                     StragglerRule((2,), 3.0)))
        assert plan.straggle_factor(0) == 1.0
        assert plan.straggle_factor(1) == 2.0
        assert plan.straggle_factor(2) == 6.0

    def test_crash_rule_lookup(self):
        plan = FaultPlan(crashes=(CrashRule(rank=3, step=10),))
        assert plan.crash_rule(3).step == 10
        assert plan.crash_rule(0) is None


class TestInjectorDeterminism:
    PLAN = FaultPlan(rules=(FaultRule("drop", prob=0.3),
                            FaultRule("delay", delay=10e-6, jitter=5e-6,
                                      prob=0.5)))

    def _decisions(self, injector, n=64):
        out = []
        for i in range(n):
            e = env(depart=float(i))
            deposits, records = injector.on_post(e, None)
            out.append((len(deposits), tuple((r.kind, r.delay)
                                             for r in records)))
        return out

    def test_same_seed_same_decisions(self):
        a = self._decisions(FaultInjector(self.PLAN, seed=42))
        b = self._decisions(FaultInjector(self.PLAN, seed=42))
        assert a == b

    def test_different_seed_different_decisions(self):
        a = self._decisions(FaultInjector(self.PLAN, seed=42))
        b = self._decisions(FaultInjector(self.PLAN, seed=43))
        assert a != b

    def test_decision_depends_on_channel_not_arrival_order(self):
        # The RNG keys on (src, dst, tag, seq): interleaving posts from
        # other channels must not shift a channel's decisions.
        inj1 = FaultInjector(self.PLAN, seed=1)
        alone = [inj1.on_post(env(depart=float(i)), None)[1]
                 for i in range(8)]
        inj2 = FaultInjector(self.PLAN, seed=1)
        interleaved = []
        for i in range(8):
            interleaved.append(inj2.on_post(env(depart=float(i)), None)[1])
            inj2.on_post(env(src=5, dst=6, depart=float(i)), None)
        assert alone == interleaved


class TestTransformations:
    def test_certain_drop_without_reliability_vanishes(self):
        inj = FaultInjector(FaultPlan(rules=(FaultRule("drop"),)))
        deposits, records = inj.on_post(env(), None)
        assert deposits == []
        assert [r.kind for r in records] == ["drop"]

    def test_certain_delay_shifts_departure(self):
        inj = FaultInjector(FaultPlan(rules=(FaultRule("delay",
                                                       delay=7e-6),)))
        e = env(depart=1.0)
        deposits, records = inj.on_post(e, None)
        assert deposits == [e]
        assert e.depart == pytest.approx(1.0 + 7e-6)
        assert records[0].delay == pytest.approx(7e-6)

    def test_certain_duplicate_deposits_twice(self):
        inj = FaultInjector(FaultPlan(rules=(FaultRule("duplicate"),)))
        e = env()
        deposits, records = inj.on_post(e, None)
        assert len(deposits) == 2
        assert deposits[0] is e
        assert deposits[1].mark == "dup"
        assert deposits[1].nbytes == e.nbytes

    def test_reorder_holds_until_next_post_and_flush(self):
        inj = FaultInjector(FaultPlan(rules=(
            FaultRule("reorder", tag=1),)))
        first = env(tag=1)
        deposits, records = inj.on_post(first, None)
        assert deposits == []          # held
        assert records[0].kind == "reorder"
        second = env(tag=2)
        deposits, _ = inj.on_post(second, None)
        assert deposits == [second, first]  # released behind the successor
        # A hold with no successor is released by the program-end flush.
        third = env(tag=1, depart=9.0)
        deposits, _ = inj.on_post(third, None)
        assert deposits == []
        assert inj.flush(0) is third
        assert inj.flush(0) is None

    def test_phase_matcher(self):
        inj = FaultInjector(FaultPlan(rules=(
            FaultRule("drop", phase="exchange"),)))
        deposits, _ = inj.on_post(env(), "rotate")
        assert len(deposits) == 1      # wrong phase: untouched
        deposits, _ = inj.on_post(env(), "exchange")
        assert deposits == []


class TestReliability:
    def test_deadline_offset_is_backoff_sum(self):
        rel = ReliabilityConfig(rto=1e-4, backoff=2.0, max_retries=3)
        assert rel.deadline_offset() == pytest.approx(
            1e-4 * (1 + 2 + 4 + 8))

    def test_sequence_numbers_assigned_per_channel(self):
        inj = FaultInjector(FaultPlan(), reliability=ReliabilityConfig())
        a, b = env(), env()
        other = env(dst=2)
        inj.on_post(a, None)
        inj.on_post(other, None)
        inj.on_post(b, None)
        assert (a.seq, b.seq, other.seq) == (0, 1, 0)

    def test_certain_drop_exhausts_into_lost_tombstone(self):
        rel = ReliabilityConfig(rto=1e-4, backoff=2.0, max_retries=2)
        inj = FaultInjector(FaultPlan(rules=(FaultRule("drop"),)),
                            reliability=rel)
        e = env(depart=1.0)
        deposits, records = inj.on_post(e, None)
        assert deposits == [e]
        assert e.mark == "lost"
        assert e.depart == pytest.approx(1.0 + rel.deadline_offset())
        kinds = [r.kind for r in records]
        assert kinds == ["drop", "retry", "drop", "retry", "drop", "lost"]

    def test_partial_drop_delays_by_backoff(self):
        # Seed chosen so the first transmission drops and the first
        # retransmission survives: departure shifts by exactly one RTO.
        rel = ReliabilityConfig(rto=1e-4, backoff=2.0, max_retries=5)
        rule = FaultRule("drop", prob=0.5)
        found = False
        for seed in range(64):
            inj = FaultInjector(FaultPlan(rules=(rule,)), seed=seed,
                                reliability=rel)
            e = env(depart=1.0)
            deposits, records = inj.on_post(e, None)
            kinds = [r.kind for r in records]
            if kinds == ["drop", "retry"]:
                assert deposits == [e]
                assert e.mark is None
                assert e.depart == pytest.approx(1.0 + rel.rto)
                found = True
                break
        assert found, "no seed produced drop-then-recover in 64 tries"

    def test_lost_message_raises_typed_error_not_hang(self):
        import numpy as np
        plan = FaultPlan.parse("drop:p=1,src=0,dst=1")

        def prog(comm):
            buf = np.zeros(4, dtype=np.uint8)
            if comm.rank == 0:
                comm.send(buf, 1)
            elif comm.rank == 1:
                comm.recv(buf, 0)

        with pytest.raises(MessageLostError, match="lost"):
            run_spmd(prog, 2, machine=LOCAL, backend="coop",
                     fault_plan=plan, on_fault="retry")

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ReliabilityConfig(rto=0.0)
        with pytest.raises(ValueError):
            ReliabilityConfig(backoff=0.5)
        with pytest.raises(ValueError):
            ReliabilityConfig(max_retries=-1)

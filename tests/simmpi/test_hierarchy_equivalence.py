"""Hierarchical (ppn > 1) machine model: cost laws and equivalence.

Two groups of checks.  First, the eager-threshold piecewise fix: every
per-message cost primitive must be monotone non-decreasing in message
size for every named profile — the seed model charged the *whole*
message at the eager rate below the threshold, so an 8193-byte message
was cheaper than an 8192-byte one — and the vectorized timing-engine
forms must agree bit-for-bit with the scalar methods on either side of
the protocol switch.  Second, node-awareness: with ``ppn > 1`` the
backend x wire determinism matrix must stay bit-identical for every
registered algorithm — including the locality-aware Bruck variants whose
three-phase structure only activates on hierarchical machines — and
bytes-wire runs must still deliver byte-verified payloads.
"""

import numpy as np
import pytest

from repro.core.registry import get_algorithm, list_algorithms
from repro.simmpi import (
    ExecutionConfig,
    PROFILES,
    TensorAlltoallv,
    THETA,
    WIRE_MODES,
    run_spmd,
)
from repro.timing.engine import (
    head_latency_vec,
    serial_time_vec,
    wire_time_vec,
)
from repro.workloads import (
    block_size_matrix,
    build_vargs,
    distribution_by_name,
    verify_recv,
)

# ----------------------------------------------------------------------
# eager-threshold piecewise cost: monotone, and scalar == vectorized
# ----------------------------------------------------------------------

NPROCS_SWEEP = (2, 64, 1024)


def _threshold_sweep(machine):
    """Message sizes bracketing the protocol switch, plus the far tails."""
    thr = machine.eager_threshold
    sizes = sorted({0, 1, thr // 2, thr - 2, thr - 1, thr, thr + 1,
                    thr + 2, 2 * thr, 16 * thr})
    return [n for n in sizes if n >= 0]


class TestEagerMonotonic:
    @pytest.mark.parametrize("pname", sorted(PROFILES))
    @pytest.mark.parametrize("nprocs", NPROCS_SWEEP)
    @pytest.mark.parametrize("intra", [False, True])
    def test_costs_non_decreasing_in_nbytes(self, pname, nprocs, intra):
        m = PROFILES[pname].with_overrides(ppn=4) if intra else PROFILES[pname]
        sweep = _threshold_sweep(m)
        for fn in (lambda n: m.serial_time(n, nprocs, intra),
                   lambda n: m.wire_time(n, nprocs, intra),
                   lambda n: m.message_time(n, nprocs, intra)):
            costs = [fn(n) for n in sweep]
            for (na, ca), (nb, cb) in zip(zip(sweep, costs),
                                          zip(sweep[1:], costs[1:])):
                assert cb >= ca, (pname, nprocs, intra, na, nb)

    def test_theta_no_inversion_at_threshold(self):
        # The seed bug, pinned: one byte past the eager threshold must
        # never be cheaper than the threshold itself.
        for nprocs in NPROCS_SWEEP:
            assert THETA.serial_time(8193, nprocs) \
                >= THETA.serial_time(8192, nprocs)
            assert THETA.message_time(8193, nprocs) \
                >= THETA.message_time(8192, nprocs)

    @pytest.mark.parametrize("pname", sorted(PROFILES))
    @pytest.mark.parametrize("intra", [False, True])
    def test_scalar_matches_vectorized(self, pname, intra):
        m = PROFILES[pname].with_overrides(ppn=4)
        thr = m.eager_threshold
        nprocs = 64
        for n in (0, 1, thr - 1, thr, thr + 1, 8191, 8192, 8193, 4 * thr):
            assert float(serial_time_vec(m, n, nprocs, intra)) \
                == m.serial_time(n, nprocs, intra), (pname, n)
            assert float(head_latency_vec(m, n, intra)) \
                == m.head_latency(n, intra), (pname, n)
            assert float(wire_time_vec(m, n, nprocs, intra)) \
                == m.wire_time(n, nprocs, intra), (pname, n)

    def test_vectorized_per_lane_tier_selection(self):
        m = THETA.with_overrides(ppn=4)
        nbytes = np.array([100.0, 100.0, 20000.0, 20000.0])
        intra = np.array([True, False, True, False])
        got = serial_time_vec(m, nbytes, 64, intra)
        want = [m.serial_time(int(n), 64, bool(i))
                for n, i in zip(nbytes, intra)]
        assert got.tolist() == want


# ----------------------------------------------------------------------
# node-aware determinism matrix: every algorithm, ppn > 1
# ----------------------------------------------------------------------

MAX_BLOCK = 32
MATRIX = tuple((backend, wire) for backend in ("threads", "coop")
               for wire in WIRE_MODES)
#: (nprocs, ppn): even nodes, a partial last node, and a single node
#: (ppn >= p) — the three shapes of the rank -> node mapping.
SHAPES = ((16, 4), (13, 4), (5, 8))


def _run_hier(name, nprocs, ppn, backend, wire):
    machine = THETA.with_overrides(ppn=ppn)
    sizes = block_size_matrix(distribution_by_name("power_law", MAX_BLOCK),
                              nprocs, seed=11)
    fn = get_algorithm(name, kind="nonuniform").fn

    def prog(comm):
        vargs = build_vargs(comm.rank, sizes, fill=comm.payload_enabled)
        fn(comm, *vargs.as_tuple())
        if comm.payload_enabled:
            verify_recv(comm.rank, sizes, vargs.recvbuf)
        return comm.clock

    return run_spmd(prog, nprocs, machine=machine, backend=backend,
                    trace=False, timeout=300, wire=wire)


@pytest.mark.parametrize("nprocs,ppn", SHAPES)
@pytest.mark.parametrize("name", list_algorithms("nonuniform"))
def test_hierarchical_clocks_bit_identical(name, nprocs, ppn):
    ref_backend, ref_wire = MATRIX[0]
    ref = _run_hier(name, nprocs, ppn, ref_backend, ref_wire)
    for backend, wire in MATRIX[1:]:
        other = _run_hier(name, nprocs, ppn, backend, wire)
        cell = f"{backend}/{wire} vs {ref_backend}/{ref_wire}"
        assert other.clocks == ref.clocks, cell  # exact, not approx
        assert other.total_messages == ref.total_messages, cell
        assert other.total_bytes == ref.total_bytes, cell


@pytest.mark.parametrize("nprocs,ppn", SHAPES)
@pytest.mark.parametrize("name", list_algorithms("nonuniform"))
def test_tensor_hierarchical_clocks_bit_identical(name, nprocs, ppn):
    machine = THETA.with_overrides(ppn=ppn)
    sizes = block_size_matrix(distribution_by_name("power_law", MAX_BLOCK),
                              nprocs, seed=11)
    spec = TensorAlltoallv(name, sizes)
    base = dict(machine=machine, trace=False, timeout=300, wire="phantom")
    ref = run_spmd(spec, nprocs,
                   config=ExecutionConfig(backend="coop", **base))
    tens = run_spmd(spec, nprocs,
                    config=ExecutionConfig(backend="tensor", **base))
    assert tens.clocks == ref.clocks  # exact, not approx
    assert tens.total_messages == ref.total_messages
    assert tens.total_bytes == ref.total_bytes


@pytest.mark.parametrize(
    "name", ["locality_padded_bruck", "locality_two_phase_bruck"])
def test_locality_delegates_on_flat_machine(name):
    # ppn=1 (every named profile's default) must reproduce the flat
    # variant verbatim — clocks, message counts, and byte volumes.
    flat = {"locality_padded_bruck": "padded_bruck",
            "locality_two_phase_bruck": "two_phase_bruck"}[name]
    ref = _run_hier(flat, 16, 1, "coop", "phantom")
    got = _run_hier(name, 16, 1, "coop", "phantom")
    assert got.clocks == ref.clocks
    assert got.total_messages == ref.total_messages
    assert got.total_bytes == ref.total_bytes


@pytest.mark.parametrize(
    "name", ["locality_padded_bruck", "locality_two_phase_bruck"])
def test_locality_reduces_inter_node_traffic(name):
    """The point of the node-aware variants: with ppn > 1 they move
    strictly fewer *inter-node* messages than their flat equivalents
    (intra-node gather/scatter trades network messages for cheap local
    hops)."""
    flat = {"locality_padded_bruck": "padded_bruck",
            "locality_two_phase_bruck": "two_phase_bruck"}[name]
    nprocs, ppn = 16, 4
    machine = THETA.with_overrides(ppn=ppn)
    sizes = block_size_matrix(distribution_by_name("power_law", MAX_BLOCK),
                              nprocs, seed=11)

    def inter_messages(algo):
        fn = get_algorithm(algo, kind="nonuniform").fn

        def prog(comm):
            vargs = build_vargs(comm.rank, sizes, fill=False)
            fn(comm, *vargs.as_tuple())

        res = run_spmd(prog, nprocs, machine=machine, backend="coop",
                       trace=True, timeout=300, wire="phantom")
        return sum(1 for tr in res.traces for e in tr.sends
                   if e.src // ppn != e.dst // ppn)

    assert inter_messages(name) < inter_messages(flat)

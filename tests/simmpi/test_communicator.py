"""Tests for the per-rank communicator: point-to-point, collectives,
cost hooks, and clock determinism."""

import numpy as np
import pytest

from repro.simmpi import (
    LOCAL,
    THETA,
    InvalidRankError,
    InvalidTagError,
    TruncationError,
    run_spmd,
)
from repro.simmpi.datatype import IndexedBlocks

from ..conftest import SMALL_PROCS


class TestPointToPoint:
    def test_send_recv_bytes(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.arange(10, dtype=np.int32), 1, tag=5)
            elif comm.rank == 1:
                buf = np.zeros(10, dtype=np.int32)
                n = comm.recv(buf, 0, tag=5)
                assert n == 40
                assert np.array_equal(buf, np.arange(10))
        run_spmd(prog, 2)

    def test_recv_shorter_message_leaves_tail(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.full(3, 9, dtype=np.uint8), 1)
            else:
                buf = np.full(8, 42, dtype=np.uint8)
                n = comm.recv(buf, 0)
                assert n == 3
                assert buf[:3].tolist() == [9, 9, 9]
                assert buf[3:].tolist() == [42] * 5
        run_spmd(prog, 2)

    def test_truncation_error(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.zeros(100, dtype=np.uint8), 1)
            else:
                comm.recv(np.zeros(10, dtype=np.uint8), 0)
        with pytest.raises(TruncationError):
            run_spmd(prog, 2)

    def test_sendrecv_pairwise(self):
        def prog(comm):
            out = np.array([comm.rank], dtype=np.int64)
            incoming = np.zeros(1, dtype=np.int64)
            peer = (comm.rank + 1) % comm.size
            src = (comm.rank - 1) % comm.size
            comm.sendrecv(out, peer, 3, incoming, src, 3)
            assert incoming[0] == src
        run_spmd(prog, 5)

    def test_nonblocking_waitall(self):
        def prog(comm):
            p = comm.size
            reqs = []
            bufs = [np.zeros(1, dtype=np.int64) for _ in range(p)]
            for peer in range(p):
                if peer != comm.rank:
                    reqs.append(comm.irecv(bufs[peer], peer, tag=1))
            for peer in range(p):
                if peer != comm.rank:
                    reqs.append(comm.isend(
                        np.array([comm.rank * 100 + peer]), peer, tag=1))
            comm.waitall(reqs)
            for peer in range(p):
                if peer != comm.rank:
                    assert bufs[peer][0] == peer * 100 + comm.rank
        run_spmd(prog, 4)

    def test_wait_is_idempotent(self):
        def prog(comm):
            if comm.rank == 0:
                req = comm.isend(np.zeros(4, dtype=np.uint8), 1)
                req.wait()
                req.wait()
            else:
                buf = np.zeros(4, dtype=np.uint8)
                req = comm.irecv(buf, 0)
                req.wait()
                clock = comm.clock
                req.wait()  # second wait: no-op, no clock change
                assert comm.clock == clock
        run_spmd(prog, 2)

    def test_probe_nbytes(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.zeros(17, dtype=np.uint8), 1, tag=2)
                comm.barrier()
            else:
                comm.barrier()
                assert comm.probe_nbytes(0, tag=2) == 17
                assert comm.probe_nbytes(0, tag=9) is None
                comm.recv(np.zeros(17, dtype=np.uint8), 0, tag=2)
        run_spmd(prog, 2)


class TestValidation:
    def test_invalid_peer(self):
        def prog(comm):
            comm.send(np.zeros(1, dtype=np.uint8), 99)
        with pytest.raises(InvalidRankError):
            run_spmd(prog, 2)

    def test_negative_tag(self):
        def prog(comm):
            comm.isend(np.zeros(1, dtype=np.uint8), 0, tag=-1)
        with pytest.raises(InvalidTagError):
            run_spmd(prog, 2)

    def test_reserved_tag_space(self):
        from repro.simmpi import MAX_USER_TAG

        def prog(comm):
            comm.isend(np.zeros(1, dtype=np.uint8), 0, tag=MAX_USER_TAG)
        with pytest.raises(InvalidTagError):
            run_spmd(prog, 2)

    def test_non_contiguous_buffer_rejected(self):
        def prog(comm):
            arr = np.zeros((4, 4), dtype=np.uint8)[:, ::2]
            if comm.rank == 1:
                comm.irecv(arr, 0).wait()
            else:
                comm.send(np.zeros(8, dtype=np.uint8), 1)
        with pytest.raises(ValueError, match="contiguous"):
            run_spmd(prog, 2)


class TestObjectTransport:
    def test_pickled_roundtrip(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send_obj({"a": [1, 2, 3], "b": (4, 5)}, 1)
            elif comm.rank == 1:
                assert comm.recv_obj(0) == {"a": [1, 2, 3], "b": (4, 5)}
        run_spmd(prog, 2)


class TestCollectives:
    @pytest.mark.parametrize("p", SMALL_PROCS)
    def test_barrier_completes(self, p):
        run_spmd(lambda comm: comm.barrier(), p)

    @pytest.mark.parametrize("p", SMALL_PROCS)
    @pytest.mark.parametrize("root", [0, -1])
    def test_bcast(self, p, root):
        root_rank = (root % p)

        def prog(comm):
            buf = (np.arange(16, dtype=np.int64)
                   if comm.rank == root_rank else np.zeros(16, dtype=np.int64))
            comm.bcast(buf, root=root_rank)
            assert np.array_equal(buf, np.arange(16))
        run_spmd(prog, p)

    @pytest.mark.parametrize("p", SMALL_PROCS)
    @pytest.mark.parametrize("op,expect", [
        ("max", lambda p: p - 1),
        ("min", lambda p: 0),
        ("sum", lambda p: p * (p - 1) // 2),
    ])
    def test_allreduce(self, p, op, expect):
        def prog(comm):
            return comm.allreduce(comm.rank, op=op)
        res = run_spmd(prog, p)
        assert res.returns == [expect(p)] * p

    def test_allreduce_preserves_int_type(self):
        def prog(comm):
            v = comm.allreduce(comm.rank, op="max")
            assert isinstance(v, int)
            f = comm.allreduce(float(comm.rank), op="sum")
            assert isinstance(f, float)
        run_spmd(prog, 4)

    def test_allreduce_unknown_op(self):
        def prog(comm):
            comm.allreduce(1, op="prod")
        with pytest.raises(ValueError, match="op"):
            run_spmd(prog, 2)

    @pytest.mark.parametrize("p", SMALL_PROCS)
    def test_allgather(self, p):
        def prog(comm):
            got = comm.allgather(np.array([comm.rank, comm.rank * 2],
                                          dtype=np.int32))
            assert got.shape == (p, 2)
            for j in range(p):
                assert got[j].tolist() == [j, j * 2]
        run_spmd(prog, p)

    @pytest.mark.parametrize("p", SMALL_PROCS)
    def test_builtin_alltoall(self, p):
        n = 6

        def prog(comm):
            send = np.empty(p * n, dtype=np.uint8)
            for j in range(p):
                send[j * n:(j + 1) * n] = (comm.rank * 13 + j) % 256
            recv = np.zeros(p * n, dtype=np.uint8)
            comm.alltoall(send, recv, n)
            for j in range(p):
                assert (recv[j * n:(j + 1) * n]
                        == (j * 13 + comm.rank) % 256).all()
        run_spmd(prog, p)

    def test_builtin_alltoall_buffer_too_small(self):
        def prog(comm):
            comm.alltoall(np.zeros(2, dtype=np.uint8),
                          np.zeros(100, dtype=np.uint8), 4)
        with pytest.raises(ValueError, match="bytes"):
            run_spmd(prog, 3)

    def test_builtin_alltoallv_bad_counts_length(self):
        def prog(comm):
            comm.alltoallv(np.zeros(4, dtype=np.uint8), [1, 1, 1], [0, 1, 2],
                           np.zeros(4, dtype=np.uint8), [1, 1], [0, 1])
        with pytest.raises(ValueError, match="length"):
            run_spmd(prog, 2)


class TestCostHooks:
    def test_charge_compute_advances_clock(self):
        def prog(comm):
            before = comm.clock
            comm.charge_compute(1.5)
            assert comm.clock == pytest.approx(before + 1.5)
        run_spmd(prog, 1)

    def test_charge_compute_negative_rejected(self):
        def prog(comm):
            comm.charge_compute(-1.0)
        with pytest.raises(ValueError):
            run_spmd(prog, 1)

    def test_charge_copy_zero_free(self):
        def prog(comm):
            before = comm.clock
            comm.charge_copy(0)
            assert comm.clock == before
        run_spmd(prog, 1)

    def test_pack_unpack_roundtrip_and_charges(self, machine):
        def prog(comm):
            buf = np.arange(64, dtype=np.uint8)
            blocks = IndexedBlocks([(0, 8), (32, 8), (16, 4)])
            before = comm.clock
            packed = comm.pack(buf, blocks)
            assert comm.clock == pytest.approx(
                before + machine.datatype_time(3, 20))
            out = np.zeros(64, dtype=np.uint8)
            comm.unpack(out, blocks, packed)
            assert np.array_equal(out[0:8], buf[0:8])
            assert np.array_equal(out[32:40], buf[32:40])
            assert np.array_equal(out[16:20], buf[16:20])
        run_spmd(prog, 1, machine=machine)

    def test_phase_records_intervals(self):
        def prog(comm):
            with comm.phase("alpha"):
                comm.charge_compute(1.0)
            with comm.phase("beta"):
                comm.charge_compute(2.0)
                with comm.phase("beta.inner"):
                    comm.charge_compute(0.5)
        res = run_spmd(prog, 1)
        times = res.traces[0].phase_times()
        assert times["alpha"] == pytest.approx(1.0)
        assert times["beta"] == pytest.approx(2.5)
        assert times["beta.inner"] == pytest.approx(0.5)


class TestDeterminism:
    def test_clocks_reproducible_across_runs(self):
        def prog(comm):
            p = comm.size
            n = 16
            send = np.zeros(p * n, dtype=np.uint8)
            recv = np.zeros(p * n, dtype=np.uint8)
            comm.alltoall(send, recv, n)
            comm.allreduce(comm.rank, op="sum")
            comm.barrier()
        a = run_spmd(prog, 8, machine=THETA)
        b = run_spmd(prog, 8, machine=THETA)
        assert a.clocks == b.clocks

    def test_clock_independent_of_machine_for_structure(self):
        # Different profiles give different times but identical traffic.
        def prog(comm):
            send = np.zeros(comm.size * 4, dtype=np.uint8)
            recv = np.zeros(comm.size * 4, dtype=np.uint8)
            comm.alltoall(send, recv, 4)
        a = run_spmd(prog, 4, machine=THETA)
        b = run_spmd(prog, 4, machine=LOCAL)
        assert a.total_messages == b.total_messages
        assert a.total_bytes == b.total_bytes
        assert a.elapsed != b.elapsed

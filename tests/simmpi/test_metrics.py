"""Tests for the aggregate metrics registry and the trace modes."""

import numpy as np
import pytest

from repro.simmpi import (
    LOCAL,
    Counter,
    Histogram,
    MetricsRegistry,
    MetricsTrace,
    NullTrace,
    RankTrace,
    TraceBase,
    run_spmd,
)


class TestCounter:
    def test_add(self):
        c = Counter("messages")
        assert c.value == 0
        c.add()
        c.add(5)
        assert c.value == 6


class TestHistogram:
    def test_bucketing(self):
        h = Histogram("sizes")
        for v in (0, 1, 2, 3, 4, 5, 1024):
            h.add(v)
        rows = {(low, high): count for low, high, count in h.buckets()}
        assert rows[(0, 1)] == 2       # 0 and 1
        assert rows[(2, 2)] == 1       # 2
        assert rows[(3, 4)] == 2       # 3, 4
        assert rows[(5, 8)] == 1       # 5
        assert rows[(513, 1024)] == 1  # 1024
        assert h.count == 7
        assert h.total == 1039
        assert h.max_value == 1024

    def test_bucket_edges_consistent(self):
        # Every sample must fall inside its reported bucket range.
        for v in range(0, 130):
            h = Histogram("x")
            h.add(v)
            ((low, high, count),) = h.buckets()
            assert count == 1
            assert low <= v <= high, v

    def test_mean_empty(self):
        assert Histogram("x").mean == 0.0


class TestMetricsRegistry:
    def test_in_flight_intervals(self):
        # In-flight depth is a pure function of simulated intervals
        # [depart, landing_start]: two overlapping messages on (0, 1) and
        # a disjoint one on (1, 0).
        reg = MetricsRegistry(nprocs=2)
        reg.on_post(0, 1, 7, 100)
        reg.on_post(0, 1, 7, 50)
        reg.on_post(1, 0, 7, 10)
        reg.on_retire(0, 1, 7, depart=0.0, head=1.0, clock=0.5)
        reg.on_retire(0, 1, 7, depart=0.5, head=1.5, clock=2.0)
        reg.on_retire(1, 0, 7, depart=5.0, head=6.0, clock=4.0)
        snap = reg.snapshot()
        assert snap.total_messages == 3
        assert snap.total_bytes == 160
        assert snap.max_in_flight == 2
        assert snap.per_link[(0, 1)] == (2, 150, 2)
        assert snap.per_link[(1, 0)] == (1, 10, 1)
        assert snap.per_step[7][:3] == (3, 160, 2)

    def test_touching_intervals_overlap(self):
        # Pinned tie-break: at equal timestamps a departure counts before
        # a landing, so back-to-back intervals register depth 2 and every
        # message registers at least depth 1.
        reg = MetricsRegistry(nprocs=2)
        reg.on_post(0, 1, 0, 8)
        reg.on_post(0, 1, 0, 8)
        reg.on_retire(0, 1, 0, depart=0.0, head=1.0, clock=0.0)
        reg.on_retire(0, 1, 0, depart=1.0, head=2.0, clock=0.0)
        assert reg.snapshot().max_in_flight == 2

    def test_retire_waits(self):
        reg = MetricsRegistry(nprocs=1)
        # Receiver busy until 1.5, message head arrived at 1.0: queued 0.5.
        reg.on_retire(0, 0, 3, depart=0.5, head=1.0, clock=1.5)
        # Receiver ready at 1.75, head arrives at 2.0: idled 0.25.
        reg.on_retire(0, 0, 3, depart=1.5, head=2.0, clock=1.75)
        snap = reg.snapshot()
        assert snap.queue_wait_total == 0.5
        assert snap.queue_wait_max == 0.5
        assert snap.recv_wait_total == 0.25
        assert snap.recv_wait_max == 0.25

    def test_step_queue_wait_max(self):
        reg = MetricsRegistry(nprocs=2)
        reg.on_post(0, 1, 9, 100)
        reg.on_post(1, 0, 9, 100)
        reg.on_retire(0, 1, 9, depart=0.0, head=1.0, clock=1.25)
        reg.on_retire(1, 0, 9, depart=0.0, head=1.0, clock=1.75)
        snap = reg.snapshot()
        assert snap.per_step[9][3] == 0.75
        assert snap.step_table() == [(9, 2, 200, 2, 0.75)]

    def test_busiest_links_and_step_table(self):
        reg = MetricsRegistry(nprocs=4)
        reg.on_post(0, 1, 2, 100)
        reg.on_post(2, 3, 1, 999)
        snap = reg.snapshot()
        assert snap.busiest_links(1)[0][0] == (2, 3)
        assert [row[0] for row in snap.step_table()] == [1, 2]

    def test_busiest_links_tie_break(self):
        # Equal-byte links are ranked by ascending (src, dst) — the
        # documented deterministic tie-break.
        reg = MetricsRegistry(nprocs=4)
        reg.on_post(3, 1, 0, 500)
        reg.on_post(0, 2, 0, 500)
        reg.on_post(1, 0, 0, 500)
        reg.on_post(2, 3, 0, 100)
        ranked = reg.snapshot().busiest_links(4)
        assert [link for link, _ in ranked] == \
            [(0, 2), (1, 0), (3, 1), (2, 3)]


def _pingpong(comm):
    buf = np.zeros(64, dtype=np.uint8)
    with comm.phase("exchange"):
        if comm.rank == 0:
            comm.send(buf, 1, tag=3)
            comm.recv(buf, 1, tag=4)
        else:
            comm.recv(buf, 0, tag=3)
            comm.send(buf, 0, tag=4)
    comm.barrier()
    return comm.rank


class TestTraceModes:
    def test_full_records_both(self):
        res = run_spmd(_pingpong, 2, machine=LOCAL, trace=True)
        assert res.traces is not None
        assert res.metrics is not None

    def test_events_only(self):
        res = run_spmd(_pingpong, 2, machine=LOCAL, trace="events")
        assert res.traces is not None
        assert res.metrics is None

    def test_metrics_only(self):
        res = run_spmd(_pingpong, 2, machine=LOCAL, trace="metrics")
        assert res.traces is None
        assert res.metrics is not None
        # Phase/collective tables still work, fed by the MetricsTrace.
        full = run_spmd(_pingpong, 2, machine=LOCAL, trace=True)
        assert res.phase_times() == pytest.approx(full.phase_times())
        assert res.collective_times() == \
            pytest.approx(full.collective_times())

    def test_off(self):
        res = run_spmd(_pingpong, 2, machine=LOCAL, trace=False)
        assert res.traces is None
        assert res.metrics is None

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="trace"):
            run_spmd(_pingpong, 2, machine=LOCAL, trace="everything")

    def test_totals_agree_with_network(self):
        res = run_spmd(_pingpong, 2, machine=LOCAL, trace=True)
        assert res.metrics.total_messages == res.total_messages
        assert res.metrics.total_bytes == res.total_bytes

    def test_wait_decomposition_nonnegative(self):
        res = run_spmd(_pingpong, 2, machine=LOCAL, trace="metrics")
        m = res.metrics
        assert m.queue_wait_total >= 0.0
        assert m.recv_wait_total >= 0.0
        assert m.queue_wait_max <= m.queue_wait_total + 1e-18
        assert m.recv_wait_max <= m.recv_wait_total + 1e-18

    def test_metrics_do_not_perturb_clocks(self):
        # The cost model must be identical with observability on and off.
        for mode in (False, "events", "metrics", True):
            res = run_spmd(_pingpong, 2, machine=LOCAL, trace=mode)
            assert res.clocks == \
                run_spmd(_pingpong, 2, machine=LOCAL, trace=True).clocks


class TestTracerHierarchy:
    def test_abstract_base(self):
        with pytest.raises(TypeError):
            TraceBase(0)

    def test_concrete_tracers_are_tracebases(self):
        for cls in (RankTrace, NullTrace, MetricsTrace):
            assert issubclass(cls, TraceBase)

    def test_metrics_trace_counts(self):
        tr = MetricsTrace(0)
        tr.record_send(0, 1, 5, 100, 1.0, begin=0.5)
        tr.record_recv(1, 0, 5, 40, 2.0, begin=1.5)
        tr.record_copy(8, 3.0, begin=2.5)
        tr.record_datatype("pack", 4, 64, 4.0, begin=3.5)
        tr.phase_begin("p", 0.0)
        tr.phase_end(1.0)
        tr.collective_begin("barrier", 1.0)
        tr.collective_end(1.5)
        assert tr.message_count == 1
        assert tr.bytes_sent == 100
        assert tr.bytes_received == 40
        assert tr.bytes_copied == 8
        assert tr.phase_times() == {"p": 1.0}
        assert tr.collective_times() == {"barrier": 0.5}


class TestFaultPolicyMetrics:
    """Fault accounting (``fault_counts`` / ``injected_delay_total`` /
    degraded ranks) under all three failure policies.

    One seeded chaos family — message drops + departure delays + a 2x
    straggler on rank 1 — exercised under fail-fast (typed error, no
    metrics to check), retry (the reliability transport absorbs the
    drops and the counters record both the faults and the repair), and
    degrade (a crash variant: the dead rank is excised and its stranded
    receives are accounted as ``dead_recv``).  Both live backends must
    agree on every counter bit-for-bit.
    """

    NPROCS = 16
    DROP_PLAN = ("drop:p=0.08;delay:d=30us,jitter=10us,p=0.5;"
                 "straggler:ranks=1,factor=2")
    CRASH_PLAN = ("crash:rank=2,step=3;delay:d=30us,jitter=10us,p=0.5;"
                  "straggler:ranks=1,factor=2")

    def _run(self, backend, plan, policy, algorithm="two_phase_bruck"):
        from repro.core.registry import get_algorithm
        from repro.simmpi import ExecutionConfig, THETA
        from repro.workloads import (block_size_matrix, build_vargs,
                                     distribution_by_name)

        sizes = block_size_matrix(distribution_by_name("power_law", 32),
                                  self.NPROCS, seed=7)
        fn = get_algorithm(algorithm, kind="nonuniform").fn

        def prog(comm):
            vargs = build_vargs(comm.rank, sizes, fill=False)
            fn(comm, *vargs.as_tuple())
            return comm.rank

        cfg = ExecutionConfig(backend=backend, machine=THETA,
                              trace="metrics", timeout=60, wire="phantom",
                              fault_plan=plan, fault_seed=17,
                              on_fault=policy)
        return run_spmd(prog, self.NPROCS, config=cfg)

    def test_fail_fast_drop_raises_typed(self):
        from repro.simmpi import SimMPIError
        with pytest.raises(SimMPIError):
            self._run("coop", self.DROP_PLAN, "fail-fast")

    def test_retry_records_faults_and_repair(self):
        snapshots = {}
        for backend in ("coop", "threads"):
            result = self._run(backend, self.DROP_PLAN, "retry")
            m = result.metrics
            assert m is not None
            # The plan fired: drops were injected AND retransmitted
            # (same count — every lost message was repaired), and the
            # delay clause perturbed departures by a positive total.
            assert m.fault_counts["drop"] > 0
            assert m.fault_counts["retry"] >= m.fault_counts["drop"]
            assert m.fault_counts["delay"] > 0
            assert m.injected_delay_total > 0.0
            assert m.total_faults == sum(m.fault_counts.values())
            assert result.degraded_ranks == []
            snapshots[backend] = (dict(m.fault_counts),
                                  m.injected_delay_total,
                                  tuple(result.clocks))
        assert snapshots["coop"] == snapshots["threads"]

    def test_degrade_accounts_dead_rank(self):
        snapshots = {}
        for backend in ("coop", "threads"):
            # spread_out is pairwise-direct, so survivors complete a
            # shrunken collective instead of starving on routed data.
            result = self._run(backend, self.CRASH_PLAN, "degrade",
                               algorithm="spread_out")
            m = result.metrics
            assert result.degraded_ranks == [2]
            assert result.returns[2] is None
            # Every survivor's receive from the dead rank is accounted.
            assert m.fault_counts["dead_recv"] == self.NPROCS - 1
            assert m.fault_counts["delay"] > 0
            assert m.injected_delay_total > 0.0
            # The dead rank's clock froze at its crash instant.
            assert result.clocks[2] < max(result.clocks)
            snapshots[backend] = (dict(m.fault_counts),
                                  m.injected_delay_total,
                                  tuple(result.clocks))
        assert snapshots["coop"] == snapshots["threads"]

"""Tests for the aggregate metrics registry and the trace modes."""

import numpy as np
import pytest

from repro.simmpi import (
    LOCAL,
    Counter,
    Histogram,
    MetricsRegistry,
    MetricsTrace,
    NullTrace,
    RankTrace,
    TraceBase,
    run_spmd,
)


class TestCounter:
    def test_add(self):
        c = Counter("messages")
        assert c.value == 0
        c.add()
        c.add(5)
        assert c.value == 6


class TestHistogram:
    def test_bucketing(self):
        h = Histogram("sizes")
        for v in (0, 1, 2, 3, 4, 5, 1024):
            h.add(v)
        rows = {(low, high): count for low, high, count in h.buckets()}
        assert rows[(0, 1)] == 2       # 0 and 1
        assert rows[(2, 2)] == 1       # 2
        assert rows[(3, 4)] == 2       # 3, 4
        assert rows[(5, 8)] == 1       # 5
        assert rows[(513, 1024)] == 1  # 1024
        assert h.count == 7
        assert h.total == 1039
        assert h.max_value == 1024

    def test_bucket_edges_consistent(self):
        # Every sample must fall inside its reported bucket range.
        for v in range(0, 130):
            h = Histogram("x")
            h.add(v)
            ((low, high, count),) = h.buckets()
            assert count == 1
            assert low <= v <= high, v

    def test_mean_empty(self):
        assert Histogram("x").mean == 0.0


class TestMetricsRegistry:
    def test_in_flight_tracking(self):
        reg = MetricsRegistry(nprocs=2)
        reg.on_post(0, 1, 7, 100)
        reg.on_post(0, 1, 7, 50)
        assert reg.max_in_flight == 2
        reg.on_deliver(0, 1, 7, 100)
        reg.on_post(1, 0, 7, 10)
        assert reg.max_in_flight == 2  # never exceeded two concurrently
        reg.on_deliver(0, 1, 7, 50)
        reg.on_deliver(1, 0, 7, 10)
        snap = reg.snapshot()
        assert snap.total_messages == 3
        assert snap.total_bytes == 160
        assert snap.per_link[(0, 1)] == (2, 150, 2)
        assert snap.per_link[(1, 0)] == (1, 10, 1)
        assert snap.per_step[7] == (3, 160, 2)

    def test_retire_waits(self):
        reg = MetricsRegistry(nprocs=1)
        reg.on_retire(queue_wait=0.5, recv_wait=0.0)
        reg.on_retire(queue_wait=0.0, recv_wait=0.25)
        snap = reg.snapshot()
        assert snap.queue_wait_total == 0.5
        assert snap.queue_wait_max == 0.5
        assert snap.recv_wait_total == 0.25
        assert snap.recv_wait_max == 0.25

    def test_busiest_links_and_step_table(self):
        reg = MetricsRegistry(nprocs=4)
        reg.on_post(0, 1, 2, 100)
        reg.on_post(2, 3, 1, 999)
        snap = reg.snapshot()
        assert snap.busiest_links(1)[0][0] == (2, 3)
        assert [row[0] for row in snap.step_table()] == [1, 2]
        assert snap.max_in_flight_per_link == 1


def _pingpong(comm):
    buf = np.zeros(64, dtype=np.uint8)
    with comm.phase("exchange"):
        if comm.rank == 0:
            comm.send(buf, 1, tag=3)
            comm.recv(buf, 1, tag=4)
        else:
            comm.recv(buf, 0, tag=3)
            comm.send(buf, 0, tag=4)
    comm.barrier()
    return comm.rank


class TestTraceModes:
    def test_full_records_both(self):
        res = run_spmd(_pingpong, 2, machine=LOCAL, trace=True)
        assert res.traces is not None
        assert res.metrics is not None

    def test_events_only(self):
        res = run_spmd(_pingpong, 2, machine=LOCAL, trace="events")
        assert res.traces is not None
        assert res.metrics is None

    def test_metrics_only(self):
        res = run_spmd(_pingpong, 2, machine=LOCAL, trace="metrics")
        assert res.traces is None
        assert res.metrics is not None
        # Phase/collective tables still work, fed by the MetricsTrace.
        full = run_spmd(_pingpong, 2, machine=LOCAL, trace=True)
        assert res.phase_times() == pytest.approx(full.phase_times())
        assert res.collective_times() == \
            pytest.approx(full.collective_times())

    def test_off(self):
        res = run_spmd(_pingpong, 2, machine=LOCAL, trace=False)
        assert res.traces is None
        assert res.metrics is None

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="trace"):
            run_spmd(_pingpong, 2, machine=LOCAL, trace="everything")

    def test_totals_agree_with_network(self):
        res = run_spmd(_pingpong, 2, machine=LOCAL, trace=True)
        assert res.metrics.total_messages == res.total_messages
        assert res.metrics.total_bytes == res.total_bytes

    def test_wait_decomposition_nonnegative(self):
        res = run_spmd(_pingpong, 2, machine=LOCAL, trace="metrics")
        m = res.metrics
        assert m.queue_wait_total >= 0.0
        assert m.recv_wait_total >= 0.0
        assert m.queue_wait_max <= m.queue_wait_total + 1e-18
        assert m.recv_wait_max <= m.recv_wait_total + 1e-18

    def test_metrics_do_not_perturb_clocks(self):
        # The cost model must be identical with observability on and off.
        for mode in (False, "events", "metrics", True):
            res = run_spmd(_pingpong, 2, machine=LOCAL, trace=mode)
            assert res.clocks == \
                run_spmd(_pingpong, 2, machine=LOCAL, trace=True).clocks


class TestTracerHierarchy:
    def test_abstract_base(self):
        with pytest.raises(TypeError):
            TraceBase(0)

    def test_concrete_tracers_are_tracebases(self):
        for cls in (RankTrace, NullTrace, MetricsTrace):
            assert issubclass(cls, TraceBase)

    def test_metrics_trace_counts(self):
        tr = MetricsTrace(0)
        tr.record_send(0, 1, 5, 100, 1.0, begin=0.5)
        tr.record_recv(1, 0, 5, 40, 2.0, begin=1.5)
        tr.record_copy(8, 3.0, begin=2.5)
        tr.record_datatype("pack", 4, 64, 4.0, begin=3.5)
        tr.phase_begin("p", 0.0)
        tr.phase_end(1.0)
        tr.collective_begin("barrier", 1.0)
        tr.collective_end(1.5)
        assert tr.message_count == 1
        assert tr.bytes_sent == 100
        assert tr.bytes_received == 40
        assert tr.bytes_copied == 8
        assert tr.phase_times() == {"p": 1.0}
        assert tr.collective_times() == {"barrier": 0.5}

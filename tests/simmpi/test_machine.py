"""Unit tests for machine profiles and their cost primitives."""

import math

import pytest

from repro.simmpi import CORI, LOCAL, PROFILES, STAMPEDE2, THETA, MachineProfile, get_profile

from ..conftest import ALL_MACHINES


class TestProfileValidation:
    def test_negative_constant_rejected(self):
        with pytest.raises(ValueError, match="alpha"):
            MachineProfile(name="bad", alpha=-1.0, beta=1e-9,
                           o_send=1e-6, o_recv=1e-6)

    def test_zero_eager_threshold_rejected(self):
        with pytest.raises(ValueError, match="eager_threshold"):
            MachineProfile(name="bad", alpha=1e-6, beta=1e-9,
                           o_send=1e-6, o_recv=1e-6, eager_threshold=0)

    def test_eager_factor_below_one_rejected(self):
        with pytest.raises(ValueError, match="eager_factor"):
            MachineProfile(name="bad", alpha=1e-6, beta=1e-9,
                           o_send=1e-6, o_recv=1e-6, eager_factor=0.5)

    def test_non_positive_congestion_rejected(self):
        with pytest.raises(ValueError, match="congestion"):
            MachineProfile(name="bad", alpha=1e-6, beta=1e-9,
                           o_send=1e-6, o_recv=1e-6, congestion_procs=0)

    def test_profiles_are_frozen(self):
        with pytest.raises(Exception):
            THETA.alpha = 0.0  # type: ignore[misc]


class TestCostPrimitives:
    @pytest.mark.parametrize("m", ALL_MACHINES, ids=lambda m: m.name)
    def test_congestion_grows_linearly(self, m):
        assert m.congestion(0) == pytest.approx(1.0)
        c1, c2 = m.congestion(1024), m.congestion(2048)
        assert c2 - 1.0 == pytest.approx(2 * (c1 - 1.0))

    @pytest.mark.parametrize("m", ALL_MACHINES, ids=lambda m: m.name)
    def test_beta_eff_above_base(self, m):
        assert m.beta_eff(4096) > m.beta

    def test_head_latency_protocol_switch(self):
        m = THETA
        assert m.head_latency(m.eager_threshold) == pytest.approx(m.alpha)
        assert m.head_latency(m.eager_threshold + 1) == pytest.approx(2 * m.alpha)

    def test_serial_time_eager_penalty(self):
        m = THETA
        n = m.eager_threshold
        eager = m.serial_time(n, 64)
        assert eager == pytest.approx(m.beta_eff(64) * m.eager_factor * n)
        # Above the threshold the first ``eager_threshold`` bytes still pay
        # the eager penalty; only the *remainder* streams — so cost is
        # monotone (no protocol-switch cliff), with the extra byte charged
        # at the streaming rate.
        streaming = m.serial_time(n + 1, 64)
        assert streaming > eager
        assert streaming - eager == pytest.approx(m.beta_eff(64))
        big = m.serial_time(4 * n, 64)
        assert big == pytest.approx(
            m.beta_eff(64) * (m.eager_factor * n + 3 * n))

    def test_wire_time_is_head_plus_serial(self):
        m = CORI
        for n in (0, 1, 100, m.eager_threshold, m.eager_threshold * 4):
            assert m.wire_time(n, 128) == pytest.approx(
                m.head_latency(n) + m.serial_time(n, 128))

    def test_copy_time_zero_bytes_free(self):
        assert THETA.copy_time(0) == 0.0
        assert THETA.copy_time(-5) == 0.0

    def test_copy_time_affine(self):
        m = LOCAL
        assert m.copy_time(1000) == pytest.approx(
            m.kappa_mem + 1000 * m.gamma_mem)

    def test_datatype_time_zero_blocks_free(self):
        assert THETA.datatype_time(0, 0) == 0.0

    def test_datatype_beats_memcpy_only_for_large_blocks(self):
        # The Fig. 2 finding: the datatype engine loses for small blocks.
        m = THETA
        small = 32
        assert m.datatype_time(1, small) > m.copy_time(small)
        large = 4096
        assert m.datatype_time(1, large) < m.copy_time(large)

    def test_message_time_includes_cpu_overheads(self):
        m = STAMPEDE2
        assert m.message_time(100, 64) == pytest.approx(
            m.o_send + m.o_recv + m.wire_time(100, 64))

    def test_peak_bandwidth(self):
        assert THETA.peak_bandwidth == pytest.approx(1.0 / THETA.beta)
        free = THETA.with_overrides(beta=0.0)
        assert math.isinf(free.peak_bandwidth)


class TestHierarchy:
    def test_default_is_flat(self):
        for m in ALL_MACHINES:
            assert m.ppn == 1
            assert m.num_nodes(64) == 64
            assert not m.is_intra(3, 3)  # even self-sends stay inter at ppn=1

    def test_ppn_below_one_rejected(self):
        with pytest.raises(ValueError, match="ppn"):
            THETA.with_overrides(ppn=0)

    def test_intra_constants_derived(self):
        m = THETA.with_overrides(ppn=4)
        assert m.alpha_intra == pytest.approx(0.1 * THETA.alpha)
        assert m.beta_intra == pytest.approx(0.25 * THETA.beta)
        assert m.o_send_intra == pytest.approx(0.5 * THETA.o_send)
        assert m.o_recv_intra == pytest.approx(0.5 * THETA.o_recv)
        assert m.eager_factor_intra == THETA.eager_factor

    def test_explicit_intra_constants_kept(self):
        m = THETA.with_overrides(ppn=4, beta_intra=1.0e-10)
        assert m.beta_intra == 1.0e-10

    def test_negative_intra_constant_rejected(self):
        with pytest.raises(ValueError, match="beta_intra"):
            THETA.with_overrides(ppn=4, beta_intra=-1.0)

    def test_node_mapping(self):
        m = THETA.with_overrides(ppn=4)
        assert [m.node_of(r) for r in (0, 3, 4, 7, 8)] == [0, 0, 1, 1, 2]
        assert m.is_intra(0, 3) and m.is_intra(5, 6)
        assert not m.is_intra(3, 4)
        assert m.num_nodes(16) == 4
        assert m.num_nodes(13) == 4  # partial last node still counts

    def test_congestion_charged_per_node(self):
        flat, hier = THETA, THETA.with_overrides(ppn=16)
        assert hier.congestion(256) == pytest.approx(flat.congestion(16))
        assert hier.congestion(256) < flat.congestion(256)

    def test_intra_costs_cheaper(self):
        m = THETA.with_overrides(ppn=8)
        for n in (64, m.eager_threshold, 4 * m.eager_threshold):
            assert m.serial_time(n, 64, intra=True) \
                < m.serial_time(n, 64, intra=False)
            assert m.head_latency(n, intra=True) < m.head_latency(n)
            assert m.message_time(n, 64, intra=True) \
                < m.message_time(n, 64)

    def test_intra_serial_time_ignores_congestion(self):
        m = THETA.with_overrides(ppn=8)
        assert m.serial_time(100, 8, intra=True) == \
            m.serial_time(100, 8192, intra=True)


class TestOverridesAndRegistry:
    def test_with_overrides_returns_new_profile(self):
        m2 = THETA.with_overrides(alpha=1.0e-9)
        assert m2.alpha == 1.0e-9
        assert THETA.alpha != 1.0e-9
        assert m2.beta == THETA.beta

    def test_get_profile_case_insensitive(self):
        assert get_profile("THETA") is THETA
        assert get_profile("Cori") is CORI

    def test_get_profile_unknown_lists_names(self):
        with pytest.raises(KeyError, match="theta"):
            get_profile("summit")

    def test_registry_complete(self):
        assert set(PROFILES) == {"theta", "cori", "stampede2", "local"}

"""Wire-mode semantics: phantom (size-only) transport vs the bytes wire.

The backend x wire clock matrix lives in ``test_backend_equivalence``;
this file pins the *behavioural* contract of each mode — what phantom
may skip (data movement), what it must keep (sizes, truncation checks,
probes, control-plane contents), and what the zero-copy bytes path must
still deliver exactly.
"""

import numpy as np
import pytest

from repro.simmpi import (
    WIRE_MODES,
    Envelope,
    TruncationError,
    run_spmd,
)


class TestWireSelection:
    def test_wire_modes_tuple(self):
        assert WIRE_MODES == ("bytes", "phantom")

    def test_run_spmd_rejects_unknown_wire(self):
        with pytest.raises(ValueError, match="wire"):
            run_spmd(lambda comm: None, 2, wire="telepathy")

    def test_result_records_wire(self):
        for wire in WIRE_MODES:
            result = run_spmd(lambda comm: None, 2, wire=wire)
            assert result.wire == wire

    def test_default_wire_is_bytes(self):
        result = run_spmd(lambda comm: None, 2)
        assert result.wire == "bytes"

        def prog(comm):
            assert comm.wire == "bytes"
            assert comm.payload_enabled
        run_spmd(prog, 2)


class TestEnvelope:
    def test_slots_no_dict(self):
        env = Envelope(0, 1, 0, b"abc", 0.0)
        assert not hasattr(env, "__dict__")
        with pytest.raises(AttributeError):
            env.extra = 1

    def test_nbytes_defaults_to_payload_length(self):
        assert Envelope(0, 1, 0, b"abcd", 0.0).nbytes == 4

    def test_phantom_envelope_needs_explicit_nbytes(self):
        with pytest.raises(ValueError, match="nbytes"):
            Envelope(0, 1, 0, None, 0.0)
        assert Envelope(0, 1, 0, None, 0.0, nbytes=7).nbytes == 7


class TestPhantomTransport:
    def test_recv_buffer_untouched_but_sized(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.arange(10, dtype=np.int32), 1, tag=5)
            else:
                buf = np.full(10, -1, dtype=np.int32)
                n = comm.recv(buf, 0, tag=5)
                assert n == 40  # sizes flow
                assert buf.tolist() == [-1] * 10  # bytes do not
        run_spmd(prog, 2, wire="phantom")

    def test_truncation_still_enforced(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.zeros(100, dtype=np.uint8), 1)
            else:
                comm.recv(np.zeros(10, dtype=np.uint8), 0)
        with pytest.raises(TruncationError):
            run_spmd(prog, 2, wire="phantom")

    def test_probe_nbytes_both_modes(self):
        for wire in WIRE_MODES:
            def prog(comm):
                if comm.rank == 0:
                    req = comm.isend(np.zeros(24, dtype=np.uint8), 1, tag=2)
                    comm.barrier()
                    req.wait()
                else:
                    comm.barrier()
                    assert comm.probe_nbytes(0, tag=2) == 24
                    comm.recv(np.zeros(24, dtype=np.uint8), 0, tag=2)
            run_spmd(prog, 2, wire=wire)

    def test_control_plane_carries_real_bytes(self):
        """``control=True`` sends (and object transport) keep their
        contents even on the phantom wire — receivers steer on them."""
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.array([7, 8, 9], dtype=np.int64), 1, tag=1,
                          control=True)
                comm.send_obj({"counts": [3, 1]}, 1, tag=2)
            else:
                buf = np.zeros(3, dtype=np.int64)
                comm.recv(buf, 0, tag=1)
                assert buf.tolist() == [7, 8, 9]
                assert comm.recv_obj(0, tag=2) == {"counts": [3, 1]}
        run_spmd(prog, 2, wire="phantom")

    def test_phantom_send_requires_ndarray(self):
        """Size-only sends need a sized buffer; raw bytes objects are
        only legal on the control plane."""
        def prog(comm):
            if comm.rank == 0:
                comm.send(b"oops", 1)
            else:
                comm.recv(np.zeros(4, dtype=np.uint8), 0)
        with pytest.raises(TypeError):
            run_spmd(prog, 2, wire="phantom")

    def test_builtin_alltoallv_phantom_matches_bytes_clocks(self):
        counts = [[2, 5, 1], [3, 3, 3], [4, 0, 2]]

        def make_prog(fill):
            def prog(comm):
                scounts = counts[comm.rank]
                rcounts = [counts[src][comm.rank] for src in range(3)]
                sdis = np.concatenate(([0], np.cumsum(scounts)[:-1]))
                rdis = np.concatenate(([0], np.cumsum(rcounts)[:-1]))
                sbuf = np.full(int(sum(scounts)), comm.rank, dtype=np.uint8)
                rbuf = np.zeros(int(sum(rcounts)), dtype=np.uint8)
                comm.alltoallv(sbuf, scounts, sdis, rbuf, rcounts, rdis)
                if fill:
                    for src in range(3):
                        block = rbuf[rdis[src]:rdis[src] + rcounts[src]]
                        assert block.tolist() == [src] * rcounts[src]
                return comm.clock
            return prog

        ref = run_spmd(make_prog(True), 3, wire="bytes")
        ph = run_spmd(make_prog(False), 3, wire="phantom")
        assert ph.clocks == ref.clocks
        assert ph.total_bytes == ref.total_bytes


class TestBytesZeroCopy:
    def test_builtin_alltoall_delivers(self):
        def prog(comm):
            n = 4
            send = np.repeat(
                np.arange(comm.size, dtype=np.uint8) * 10 + comm.rank, n)
            recv = np.zeros(comm.size * n, dtype=np.uint8)
            comm.alltoall(send, recv, n)
            expect = np.repeat(
                np.full(comm.size, comm.rank * 10, dtype=np.uint8)
                + np.arange(comm.size, dtype=np.uint8), n)
            assert recv.tolist() == expect.tolist()
        run_spmd(prog, 4)

    def test_noncontiguous_send_view(self):
        """The single-pass snapshot must handle strided views."""
        def prog(comm):
            if comm.rank == 0:
                base = np.arange(20, dtype=np.uint8)
                comm.send(base[::2], 1)
            else:
                buf = np.zeros(10, dtype=np.uint8)
                assert comm.recv(buf, 0) == 10
                assert buf.tolist() == list(range(0, 20, 2))
        run_spmd(prog, 2)


class TestAlltoallvValidation:
    @staticmethod
    def _run(scounts, sdis, rcounts, rdis, sbytes=8, rbytes=8,
             wire="bytes"):
        def prog(comm):
            comm.alltoallv(np.zeros(sbytes, dtype=np.uint8), scounts, sdis,
                           np.zeros(rbytes, dtype=np.uint8), rcounts, rdis)
        run_spmd(prog, 2, wire=wire)

    def test_send_extent_beyond_buffer(self):
        with pytest.raises(ValueError, match="exceeds buffer"):
            self._run([4, 5], [0, 4], [4, 4], [0, 4])

    def test_recv_extent_beyond_buffer(self):
        with pytest.raises(ValueError, match="exceeds buffer"):
            self._run([4, 4], [0, 4], [4, 4], [0, 8])

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            self._run([-1, 4], [0, 4], [4, 4], [0, 4])

    def test_negative_displ_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            self._run([4, 4], [-1, 4], [4, 4], [0, 4])

    def test_extents_checked_on_phantom_wire_too(self):
        with pytest.raises(ValueError, match="exceeds buffer"):
            self._run([4, 5], [0, 4], [4, 4], [0, 4], wire="phantom")

    def test_valid_overlapping_send_extents_allowed(self):
        # MPI permits re-reading send bytes; only receive extents are
        # the caller's exclusive contract.
        self._run([8, 8], [0, 0], [8, 8], [0, 0], rbytes=16)

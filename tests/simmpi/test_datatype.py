"""Tests for the derived-datatype emulation, incl. property-based checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simmpi.datatype import IndexedBlocks


class TestConstruction:
    def test_basic(self):
        blocks = IndexedBlocks([(0, 4), (10, 2)])
        assert blocks.nblocks == 2
        assert blocks.nbytes == 6

    def test_empty(self):
        blocks = IndexedBlocks([])
        assert blocks.nblocks == 0
        assert blocks.nbytes == 0
        assert blocks.pack(np.zeros(4, dtype=np.uint8)).size == 0

    def test_zero_length_blocks_allowed(self):
        blocks = IndexedBlocks([(0, 0), (5, 3), (20, 0)])
        assert blocks.nbytes == 3

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            IndexedBlocks([(0, -1)])

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            IndexedBlocks([(-4, 2)])

    def test_overlap_rejected(self):
        with pytest.raises(ValueError, match="overlap"):
            IndexedBlocks([(0, 5), (3, 5)])

    def test_unsorted_disjoint_extents_allowed(self):
        # Bruck enumerates blocks in rotated (non-monotonic) order.
        blocks = IndexedBlocks([(10, 4), (0, 4), (20, 4)])
        buf = np.arange(32, dtype=np.uint8)
        packed = blocks.pack(buf)
        assert packed.tolist() == (list(range(10, 14)) + list(range(0, 4))
                                   + list(range(20, 24)))

    def test_adjacent_extents_are_not_overlapping(self):
        IndexedBlocks([(0, 4), (4, 4)])  # must not raise


class TestPackUnpack:
    def test_roundtrip(self):
        buf = np.arange(64, dtype=np.uint8)
        blocks = IndexedBlocks([(8, 8), (40, 16)])
        packed = blocks.pack(buf)
        out = np.zeros(64, dtype=np.uint8)
        blocks.unpack(out, packed)
        assert np.array_equal(out[8:16], buf[8:16])
        assert np.array_equal(out[40:56], buf[40:56])
        assert out[:8].sum() == 0

    def test_pack_returns_copy(self):
        buf = np.arange(16, dtype=np.uint8)
        blocks = IndexedBlocks([(0, 8)])
        packed = blocks.pack(buf)
        buf[:] = 0
        assert packed[:8].tolist() == list(range(8))

    def test_unpack_size_mismatch(self):
        blocks = IndexedBlocks([(0, 8)])
        with pytest.raises(ValueError, match="bytes"):
            blocks.unpack(np.zeros(16, dtype=np.uint8),
                          np.zeros(4, dtype=np.uint8))

    def test_bounds_check(self):
        blocks = IndexedBlocks([(12, 8)])
        with pytest.raises(ValueError, match="buffer"):
            blocks.pack(np.zeros(16, dtype=np.uint8))

    def test_non_uint8_buffer_viewed_as_bytes(self):
        buf = np.arange(8, dtype=np.int64)  # 64 bytes
        blocks = IndexedBlocks([(0, 8), (16, 8)])
        packed = blocks.pack(buf)
        assert packed.nbytes == 16

    def test_non_array_rejected(self):
        blocks = IndexedBlocks([(0, 1)])
        with pytest.raises(TypeError):
            blocks.pack([1, 2, 3])


@st.composite
def disjoint_extents(draw):
    """Random disjoint (offset, length) extents inside a 256-byte buffer."""
    n = draw(st.integers(0, 8))
    cuts = sorted(draw(st.lists(st.integers(0, 255), min_size=2 * n,
                                max_size=2 * n, unique=True)))
    extents = [(cuts[2 * i], cuts[2 * i + 1] - cuts[2 * i])
               for i in range(n)]
    order = draw(st.permutations(range(n)))
    return [extents[i] for i in order]


class TestProperties:
    @given(extents=disjoint_extents())
    @settings(max_examples=60, deadline=None)
    def test_pack_unpack_identity(self, extents):
        blocks = IndexedBlocks(extents)
        buf = np.random.default_rng(0).integers(
            0, 256, size=256).astype(np.uint8)
        out = np.zeros(256, dtype=np.uint8)
        blocks.unpack(out, blocks.pack(buf))
        for off, ln in extents:
            assert np.array_equal(out[off:off + ln], buf[off:off + ln])

    @given(extents=disjoint_extents())
    @settings(max_examples=60, deadline=None)
    def test_packed_size_is_sum_of_lengths(self, extents):
        blocks = IndexedBlocks(extents)
        assert blocks.nbytes == sum(ln for _, ln in extents)
        assert blocks.pack(np.zeros(256, dtype=np.uint8)).size == blocks.nbytes

"""Tests for the cooperative scheduler backend (``backend="coop"``)."""

import os
import threading
import time

import numpy as np
import pytest

from repro.simmpi import (
    BACKENDS,
    CoopNetwork,
    CoopScheduler,
    DeadlockError,
    LOCAL,
    THETA,
    run_spmd,
)


class TestBasics:
    def test_backends_constant(self):
        assert BACKENDS == ("threads", "coop", "tensor")

    def test_invalid_backend(self):
        with pytest.raises(ValueError, match="backend"):
            run_spmd(lambda comm: None, 2, backend="fibers")

    def test_returns_per_rank(self):
        res = run_spmd(lambda comm: comm.rank * 10, 5, backend="coop")
        assert res.returns == [0, 10, 20, 30, 40]

    def test_args_and_rank_args(self):
        res = run_spmd(lambda comm, x, y: x + y + comm.rank, 3,
                       args=(100, 20), backend="coop")
        assert res.returns == [120, 121, 122]
        res = run_spmd(lambda comm, mine: mine * 2, 3,
                       rank_args=[(1,), (2,), (3,)], backend="coop")
        assert res.returns == [2, 4, 6]

    def test_point_to_point_ring(self):
        def prog(comm):
            p, r = comm.size, comm.rank
            out = np.full(4, r, dtype=np.uint8)
            inc = np.zeros(4, dtype=np.uint8)
            comm.sendrecv(out, (r + 1) % p, 3, inc, (r - 1) % p, 3)
            return int(inc[0])
        res = run_spmd(prog, 8, backend="coop")
        assert res.returns == [(r - 1) % 8 for r in range(8)]

    def test_collectives(self):
        def prog(comm):
            comm.barrier()
            buf = np.array([42 if comm.rank == 1 else 0], dtype=np.int64)
            comm.bcast(buf, root=1)
            total = comm.allreduce(comm.rank, op="sum")
            gathered = comm.allgather(np.array([comm.rank], dtype=np.int64))
            return int(buf[0]), total, list(gathered.ravel())
        res = run_spmd(prog, 6, backend="coop")
        for val, total, gathered in res.returns:
            assert val == 42
            assert total == 15
            assert gathered == list(range(6))

    def test_object_transport(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send_obj({"payload": [1, 2, 3]}, 1)
                return None
            if comm.rank == 1:
                return comm.recv_obj(0)
        res = run_spmd(prog, 2, backend="coop")
        assert res.returns[1] == {"payload": [1, 2, 3]}

    def test_trace_modes(self):
        def prog(comm):
            with comm.phase("work"):
                comm.charge_compute(1.0 + comm.rank)
        res = run_spmd(prog, 3, backend="coop", trace=True)
        assert res.phase_times()["work"] == pytest.approx(3.0)
        res = run_spmd(prog, 3, backend="coop", trace="metrics")
        assert res.traces is None
        assert res.metrics is not None


class TestDeterminism:
    def test_rerun_bit_identical(self):
        def prog(comm):
            p, r = comm.size, comm.rank
            send = np.full(p * 8, r, dtype=np.uint8)
            recv = np.zeros(p * 8, dtype=np.uint8)
            comm.alltoall(send, recv, 8)
            return comm.clock
        a = run_spmd(prog, 16, machine=THETA, backend="coop", trace=False)
        b = run_spmd(prog, 16, machine=THETA, backend="coop", trace=False)
        assert a.clocks == b.clocks
        assert a.total_messages == b.total_messages


class TestExactDeadlockDetection:
    def test_immediate_despite_huge_timeout(self):
        # The coop backend proves the deadlock the instant no rank can
        # progress — the wall-clock watchdog value must be irrelevant.
        def prog(comm):
            if comm.rank == 0:
                comm.recv(np.zeros(1, dtype=np.uint8), 1, tag=7)
        start = time.monotonic()
        with pytest.raises(DeadlockError) as exc_info:
            run_spmd(prog, 4, backend="coop", timeout=100000)
        assert time.monotonic() - start < 5.0
        msg = str(exc_info.value)
        assert "rank 0 waiting on src=1 tag=7" in msg
        assert "no runnable peer" in msg

    def test_pending_messages_reported(self):
        # Rank 1 sends on the wrong tag; the dump must show the orphan.
        def prog(comm):
            if comm.rank == 1:
                comm.send(np.zeros(2, dtype=np.uint8), 0, tag=9)
            if comm.rank == 0:
                comm.recv(np.zeros(2, dtype=np.uint8), 1, tag=5)
        with pytest.raises(DeadlockError, match=r"src=1 dst=0 tag=9"):
            run_spmd(prog, 2, backend="coop")

    def test_carrier_threads_unwound(self):
        def prog(comm):
            if comm.rank == 0:
                comm.recv(np.zeros(1, dtype=np.uint8), 1, tag=7)
        before = threading.active_count()
        with pytest.raises(DeadlockError):
            run_spmd(prog, 8, backend="coop")
        deadline = time.monotonic() + 5.0
        while (threading.active_count() > before
               and time.monotonic() < deadline):
            time.sleep(0.01)
        assert threading.active_count() <= before


class TestFailurePropagation:
    def test_exception_reraised_with_rank(self):
        def prog(comm):
            if comm.rank == 2:
                raise ValueError("kaboom")
        with pytest.raises(ValueError, match=r"rank 2.*kaboom"):
            run_spmd(prog, 4, backend="coop")

    def test_blocked_peers_released_and_root_cause_wins(self):
        # Rank 2 dies; ranks 0 and 1 are parked on receives from it.  The
        # abort must wake them, and the *original* ValueError (not their
        # secondary RankFailedError) must surface.
        def prog(comm):
            if comm.rank == 2:
                raise ValueError("root cause")
            comm.recv(np.zeros(1, dtype=np.uint8), 2)
        with pytest.raises(ValueError, match=r"rank 2.*root cause"):
            run_spmd(prog, 3, backend="coop")

    def test_send_after_peer_failure_raises(self):
        # Rank 0 fails first (the scheduler runs it first); rank 1's later
        # send must be refused instead of silently counted.
        def prog(comm):
            if comm.rank == 0:
                raise ValueError("down")
            comm.barrier()  # parks rank 1 until the abort wakes it
        with pytest.raises(ValueError, match="down"):
            run_spmd(prog, 2, backend="coop")


class TestScale:
    def test_p256_uniform_bruck(self):
        # Well past the thread backend's comfort zone, quick under coop.
        from repro.core.registry import get_algorithm
        fn = get_algorithm("zero_rotation_bruck", kind="uniform").fn
        p = 256

        def prog(comm):
            send = np.arange(p, dtype=np.uint8)
            recv = np.zeros(p, dtype=np.uint8)
            fn(comm, send, recv, 1)
            assert list(recv) == [comm.rank] * p
            return comm.clock
        res = run_spmd(prog, p, machine=THETA, backend="coop", trace=False)
        assert res.elapsed > 0

    @pytest.mark.skipif(not os.environ.get("REPRO_LARGE_P"),
                        reason="set REPRO_LARGE_P=1 for the P=1024 smoke")
    def test_p1024_nonuniform_alltoall(self):
        from repro.core.registry import get_algorithm
        from repro.workloads import (block_size_matrix, build_vargs,
                                     distribution_by_name, verify_recv)
        p = 1024
        sizes = block_size_matrix(distribution_by_name("power_law", 8), p,
                                  seed=0)
        fn = get_algorithm("two_phase_bruck", kind="nonuniform").fn

        def prog(comm):
            vargs = build_vargs(comm.rank, sizes)
            fn(comm, *vargs.as_tuple())
            verify_recv(comm.rank, sizes, vargs.recvbuf)
            return comm.clock
        res = run_spmd(prog, p, machine=THETA, backend="coop",
                       trace="metrics")
        assert res.metrics is not None
        assert res.elapsed > 0
        assert all(c > 0 for c in res.clocks)


class TestDirectSchedulerUse:
    def test_coop_network_outside_run_rejected(self):
        sched = CoopScheduler(2)
        net = CoopNetwork(2, LOCAL, scheduler=sched)
        with pytest.raises(RuntimeError, match="outside a scheduler run"):
            net.collect(0, 1, 0)

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError, match="sized for"):
            CoopNetwork(4, LOCAL, scheduler=CoopScheduler(2))

    def test_invalid_nprocs(self):
        with pytest.raises(ValueError):
            CoopScheduler(0)

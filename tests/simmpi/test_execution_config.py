"""ExecutionConfig: validation, the kwarg deprecation shim, config echo."""

import pytest

from repro.simmpi import (
    ExecutionConfig,
    FaultPlan,
    LOCAL,
    ReliabilityConfig,
    THETA,
    run_spmd,
)


def _prog(comm):
    comm.barrier()
    return comm.clock


class TestValidation:
    def test_defaults(self):
        cfg = ExecutionConfig()
        assert cfg.machine is LOCAL
        assert cfg.trace == "full"
        assert cfg.backend == "threads"
        assert cfg.wire == "bytes"
        assert cfg.on_fault == "fail-fast"
        assert cfg.fault_plan is None and cfg.reliability is None

    def test_unknown_backend_names_valid_set(self):
        with pytest.raises(ValueError, match="threads.*coop.*tensor"):
            ExecutionConfig(backend="cuda")

    def test_unknown_wire_names_valid_set(self):
        with pytest.raises(ValueError, match="bytes.*phantom"):
            ExecutionConfig(wire="laser")

    def test_unknown_on_fault_names_valid_set(self):
        with pytest.raises(ValueError, match="fail-fast.*retry.*degrade"):
            ExecutionConfig(on_fault="panic")

    def test_unknown_trace_mode(self):
        with pytest.raises(ValueError, match="trace"):
            ExecutionConfig(trace="verbose")

    @pytest.mark.parametrize("trace,expected", [
        (True, "full"), (False, "off"), (None, "off"),
        ("events", "events"), ("metrics", "metrics"), ("full", "full"),
    ])
    def test_trace_normalization(self, trace, expected):
        assert ExecutionConfig(trace=trace).trace == expected

    def test_bad_machine(self):
        with pytest.raises(ValueError, match="MachineProfile"):
            ExecutionConfig(machine="theta")

    def test_bad_timeout(self):
        with pytest.raises(ValueError, match="timeout"):
            ExecutionConfig(timeout=0)

    def test_fault_plan_spec_string_parsed(self):
        cfg = ExecutionConfig(fault_plan="delay:d=10us,p=0.5")
        assert isinstance(cfg.fault_plan, FaultPlan)
        assert cfg.faulted

    def test_bad_fault_plan_spec_fails_at_construction(self):
        with pytest.raises(ValueError):
            ExecutionConfig(fault_plan="explode:now")

    def test_retry_implies_reliability(self):
        cfg = ExecutionConfig(on_fault="retry")
        assert isinstance(cfg.reliability, ReliabilityConfig)

    def test_reliability_strings(self):
        assert ExecutionConfig(reliability="none").reliability is None
        assert isinstance(ExecutionConfig(reliability="retry").reliability,
                          ReliabilityConfig)
        with pytest.raises(ValueError, match="reliability"):
            ExecutionConfig(reliability="always")

    def test_frozen(self):
        cfg = ExecutionConfig()
        with pytest.raises(AttributeError):
            cfg.backend = "coop"

    def test_replace_revalidates(self):
        cfg = ExecutionConfig(machine=THETA)
        coop = cfg.replace(backend="coop")
        assert coop.backend == "coop" and coop.machine is THETA
        with pytest.raises(ValueError):
            cfg.replace(backend="cuda")

    def test_derived_views(self):
        assert ExecutionConfig(trace="events").events_on
        assert not ExecutionConfig(trace="events").metrics_on
        assert ExecutionConfig(trace="metrics").metrics_on
        assert not ExecutionConfig(trace=False).events_on


class TestShim:
    def test_legacy_kwargs_warn_and_match_config(self):
        with pytest.warns(DeprecationWarning, match="ExecutionConfig"):
            legacy = run_spmd(_prog, 4, machine=THETA, trace=False,
                              backend="coop", wire="phantom")
        modern = run_spmd(_prog, 4, config=ExecutionConfig(
            machine=THETA, trace=False, backend="coop", wire="phantom"))
        assert legacy.clocks == modern.clocks
        assert legacy.total_messages == modern.total_messages

    def test_mixing_config_and_legacy_kwargs_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            run_spmd(_prog, 4, config=ExecutionConfig(machine=THETA),
                     backend="coop")

    def test_config_must_be_execution_config(self):
        with pytest.raises(ValueError, match="ExecutionConfig"):
            run_spmd(_prog, 4, config={"machine": THETA})

    def test_no_kwargs_no_warning(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run_spmd(_prog, 2, config=ExecutionConfig(machine=LOCAL,
                                                      trace=False))

    def test_result_echoes_config(self):
        cfg = ExecutionConfig(machine=THETA, trace=False, backend="coop")
        res = run_spmd(_prog, 4, config=cfg)
        assert res.config is cfg

    def test_legacy_bad_backend_fails_before_spawn(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="backend"):
                run_spmd(_prog, 4, backend="cuda")

"""Critical-path extraction and makespan attribution.

The attribution contract is *conservation*: on every rank the six
buckets sum — ``math.fsum``-exactly, not approximately — to the rank's
final simulated clock, and the extracted path ends exactly at the run's
makespan.  Both hold on the event-trace walk (threads/coop) and on the
tensor backend's coarse step-log mode, clean and faulted.
"""

import math

import pytest

from repro.simmpi import (
    BUCKETS,
    CriticalPathResult,
    ExecutionConfig,
    TensorAlltoall,
    TensorAlltoallv,
    THETA,
    run_spmd,
)
from repro.workloads import block_size_matrix, distribution_by_name

NPROCS = 16
FAULT_SPEC = "delay:d=30us,jitter=15us,p=0.6;straggler:ranks=2,factor=3"


def _run(backend, trace, fault_plan=None, nprocs=NPROCS, name="two_phase_bruck"):
    sizes = block_size_matrix(distribution_by_name("power_law", 32),
                              nprocs, seed=7)
    cfg = ExecutionConfig(backend=backend, machine=THETA, trace=trace,
                          timeout=300, wire="phantom",
                          fault_plan=fault_plan, fault_seed=23)
    return run_spmd(TensorAlltoallv(name, sizes), nprocs, config=cfg)


def _check_invariants(result, cp):
    assert isinstance(cp, CriticalPathResult)
    assert cp.nprocs == result.nprocs
    assert len(cp.per_rank) == result.nprocs
    for attr in cp.per_rank:
        # The conservation law: buckets fsum exactly to the rank clock.
        assert attr.total() == attr.makespan
        assert attr.makespan == result.clocks[attr.rank]
        for name in BUCKETS:
            assert getattr(attr, name) >= 0.0, (attr.rank, name)
    # The path ends exactly at the run's simulated makespan and is
    # chronological.
    assert cp.path, "empty critical path"
    assert cp.path[-1].end == result.elapsed
    for prev, seg in zip(cp.path, cp.path[1:]):
        assert seg.start >= prev.start
        assert seg.end >= prev.end
        assert 0 <= seg.rank < result.nprocs


@pytest.mark.parametrize("backend,trace", [
    ("threads", "full"), ("coop", "full"), ("coop", "events"),
    ("tensor", "metrics"),
])
def test_buckets_sum_to_makespan(backend, trace):
    result = _run(backend, trace)
    cp = result.critical_path()
    _check_invariants(result, cp)
    expected = "steps" if backend == "tensor" else "events"
    assert cp.granularity == expected


@pytest.mark.parametrize("backend,trace", [
    ("coop", "full"), ("threads", "full"), ("tensor", "metrics"),
])
def test_faulted_attribution(backend, trace):
    result = _run(backend, trace, fault_plan=FAULT_SPEC)
    cp = result.critical_path()
    _check_invariants(result, cp)
    # The plan injects departure delays (reported separately) and a
    # 3x straggler surcharge on rank 2 (charged to fault_delay).
    assert cp.injected_delay > 0.0
    assert cp.per_rank[2].fault_delay > 0.0
    for attr in cp.per_rank:
        if attr.rank != 2:
            assert attr.fault_delay == 0.0  # clean ranks pay none


def test_bucket_totals_and_format():
    result = _run("coop", "full")
    cp = result.critical_path()
    totals = cp.bucket_totals()
    assert set(totals) == set(BUCKETS)
    assert math.fsum(totals.values()) == pytest.approx(
        math.fsum(result.clocks))
    text = cp.format()
    assert "critical path" in text
    assert "makespan attribution" in text
    for name in BUCKETS:
        assert name in text
    assert cp.slowest().makespan == result.elapsed
    assert set(cp.path_ranks()) <= set(range(result.nprocs))


def test_event_and_step_paths_agree_on_makespan():
    """Coop (event DAG) and tensor (step log) see the same endpoint."""
    ev = _run("coop", "full")
    st = _run("tensor", "metrics")
    assert ev.clocks == st.clocks
    cpe, cps = ev.critical_path(), st.critical_path()
    assert cpe.path[-1].end == cps.path[-1].end
    # transmit/congestion use the identical formula on both sides and
    # agree bit-for-bit; overhead is re-derived from event durations on
    # the coop side (one rounding per charge) so only ulp-close; wait
    # vs. compute may smear slightly between the event-gap and
    # engine-recorded decompositions.
    for a, b in zip(cpe.per_rank, cps.per_rank):
        assert a.transmit == b.transmit
        assert a.congestion == b.congestion
        assert a.overhead == pytest.approx(b.overhead, rel=1e-12)
        assert a.queue_wait + a.compute == pytest.approx(
            b.queue_wait + b.compute, rel=1e-9)


def test_uniform_alltoall_path():
    sizes_na = 16
    cfg = ExecutionConfig(backend="coop", machine=THETA, trace="full",
                          timeout=300, wire="phantom")
    result = run_spmd(TensorAlltoall("modified_bruck", sizes_na), 8,
                      config=cfg)
    cp = result.critical_path()
    _check_invariants(result, cp)
    # A clean run charges nothing to the fault bucket.
    assert cp.bucket_totals()["fault_delay"] == 0.0
    assert cp.injected_delay == 0.0


def test_analyze_requires_observability():
    result = _run("coop", False)
    with pytest.raises(ValueError, match="critical-path"):
        result.critical_path()
    # coop with metrics-only has no event traces and no tensor
    # attribution either.
    result = _run("coop", "metrics")
    with pytest.raises(ValueError, match="critical-path"):
        result.critical_path()


def test_chrome_trace_critical_path_track():
    result = _run("coop", "full", fault_plan=FAULT_SPEC)
    doc = result.export_chrome_trace(critical_path=True)
    events = doc["traceEvents"]
    names = {e["args"]["name"] for e in events
             if e.get("name") == "process_name"}
    assert "fabric" in names and "critical path" in names
    cp_slices = [e for e in events
                 if e.get("cat") == "critical" and e.get("ph") == "X"]
    cp = result.critical_path()
    assert len(cp_slices) == len(cp.path)
    counter = [e["args"]["messages"] for e in events if e.get("ph") == "C"]
    assert counter and counter[-1] == 0  # every message eventually lands
    # On a clean fabric the counter's peak equals the metrics sweep's
    # max_in_flight (delay faults shift departs after the send event is
    # recorded, so the faulted doc above only checks shape).
    clean = _run("coop", "full")
    cdoc = clean.export_chrome_trace()
    ctr = [e["args"]["messages"] for e in cdoc["traceEvents"]
           if e.get("ph") == "C"]
    assert max(ctr) == clean.metrics.max_in_flight
    assert ctr[-1] == 0
    # Without the flag the extra track is absent, fabric counter stays.
    doc2 = result.export_chrome_trace()
    names2 = {e["args"]["name"] for e in doc2["traceEvents"]
              if e.get("name") == "process_name"}
    assert "critical path" not in names2 and "fabric" in names2

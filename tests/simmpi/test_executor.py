"""Tests for the SPMD launcher: results, failures, watchdog."""

import numpy as np
import pytest

from repro.simmpi import DeadlockError, LOCAL, RankFailedError, run_spmd


class TestBasics:
    def test_returns_per_rank(self):
        res = run_spmd(lambda comm: comm.rank * 10, 5)
        assert res.returns == [0, 10, 20, 30, 40]

    def test_args_shared(self):
        res = run_spmd(lambda comm, x, y: x + y + comm.rank, 3,
                       args=(100, 20))
        assert res.returns == [120, 121, 122]

    def test_rank_args(self):
        res = run_spmd(lambda comm, mine: mine * 2, 3,
                       rank_args=[(1,), (2,), (3,)])
        assert res.returns == [2, 4, 6]

    def test_rank_args_wrong_length(self):
        with pytest.raises(ValueError, match="one entry per rank"):
            run_spmd(lambda comm, x: x, 3, rank_args=[(1,)])

    def test_invalid_nprocs(self):
        with pytest.raises(ValueError):
            run_spmd(lambda comm: None, 0)

    def test_elapsed_is_max_clock(self):
        def prog(comm):
            comm.charge_compute(float(comm.rank))
        res = run_spmd(prog, 4)
        assert res.elapsed == pytest.approx(3.0)
        assert res.clocks == pytest.approx([0.0, 1.0, 2.0, 3.0])

    def test_single_rank(self):
        res = run_spmd(lambda comm: comm.size, 1)
        assert res.returns == [1]
        assert res.elapsed == 0.0

    def test_trace_disabled(self):
        res = run_spmd(lambda comm: None, 2, trace=False)
        assert res.traces is None
        with pytest.raises(ValueError, match="trace=False"):
            res.phase_times()

    def test_message_statistics(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.zeros(10, dtype=np.uint8), 1)
            elif comm.rank == 1:
                comm.recv(np.zeros(10, dtype=np.uint8), 0)
        res = run_spmd(prog, 2)
        assert res.total_messages == 1
        assert res.total_bytes == 10


class TestFailurePropagation:
    def test_exception_reraised_with_rank(self):
        def prog(comm):
            if comm.rank == 2:
                raise ValueError("kaboom")
        with pytest.raises(ValueError, match=r"rank 2.*kaboom"):
            run_spmd(prog, 4)

    def test_peers_blocked_on_failed_rank_release(self):
        # Rank 1 dies; rank 0 is blocked receiving from it.  The run must
        # terminate with the original failure, not hang.
        def prog(comm):
            if comm.rank == 1:
                raise RuntimeError("dead")
            comm.recv(np.zeros(1, dtype=np.uint8), 1)
        with pytest.raises((RuntimeError, RankFailedError)):
            run_spmd(prog, 2, timeout=30)

    def test_lowest_rank_failure_reported_first(self):
        def prog(comm):
            raise RuntimeError(f"boom-{comm.rank}")
        with pytest.raises(RuntimeError, match="boom-0"):
            run_spmd(prog, 3)


class TestWatchdog:
    def test_deadlock_detected(self):
        # A receive that can never match.
        def prog(comm):
            if comm.rank == 0:
                comm.recv(np.zeros(1, dtype=np.uint8), 1, tag=7)
        with pytest.raises((DeadlockError, Exception)):
            run_spmd(prog, 2, timeout=0.5)


class TestPhaseAggregation:
    def test_phase_times_max_over_ranks(self):
        def prog(comm):
            with comm.phase("work"):
                comm.charge_compute(1.0 + comm.rank)
        res = run_spmd(prog, 3)
        assert res.phase_times()["work"] == pytest.approx(3.0)

"""The persistent run ledger (repro.bench.ledger).

Records must be self-describing plain JSON (loadable without importing
the package), stamped with the machine-model version, keyed by a stable
config fingerprint, and appended automatically by ``run_spmd`` when the
config carries a ledger path and the run records metrics.
"""

import json

import pytest

from repro.bench.ledger import (
    LEDGER_VERSION,
    append_run,
    config_fingerprint,
    read_ledger,
    run_record,
)
from repro.simmpi import (
    ExecutionConfig,
    MACHINE_MODEL_VERSION,
    TensorAlltoallv,
    THETA,
    run_spmd,
)
from repro.workloads import block_size_matrix, distribution_by_name

NPROCS = 8


def _run(trace="metrics", backend="tensor", ledger=None):
    sizes = block_size_matrix(distribution_by_name("power_law", 32),
                              NPROCS, seed=7)
    cfg = ExecutionConfig(backend=backend, machine=THETA, trace=trace,
                          timeout=300, wire="phantom", ledger=ledger)
    return run_spmd(TensorAlltoallv("two_phase_bruck", sizes), NPROCS,
                    config=cfg)


def test_run_record_contents():
    result = _run()
    rec = run_record(result, algorithm="two_phase_bruck",
                     distribution="power_law", extra={"suite": "unit"})
    assert rec["ledger_version"] == LEDGER_VERSION
    assert rec["machine_model_version"] == MACHINE_MODEL_VERSION
    assert rec["machine"] == "theta"
    assert rec["nprocs"] == NPROCS
    assert rec["backend"] == "tensor" and rec["wire"] == "phantom"
    assert rec["algorithm"] == "two_phase_bruck"
    assert rec["suite"] == "unit"
    assert rec["elapsed_s"] == result.elapsed
    m = rec["metrics"]
    assert m["total_messages"] == result.metrics.total_messages
    assert m["max_in_flight"] == result.metrics.max_in_flight
    assert m["links_used"] == len(result.metrics.per_link)
    a = rec["attribution"]
    assert a["granularity"] == "steps"
    assert set(a["buckets"]) == {"compute", "overhead", "transmit",
                                 "congestion", "queue_wait", "fault_delay"}
    # Every record must round-trip through plain JSON.
    assert json.loads(json.dumps(rec)) == json.loads(json.dumps(rec))


def test_fingerprint_stability():
    sizesless = dict(machine=THETA, trace="metrics", timeout=300,
                     wire="phantom", backend="tensor")
    a = ExecutionConfig(**sizesless)
    b = ExecutionConfig(**sizesless)
    assert config_fingerprint(a) == config_fingerprint(b)
    # The ledger path is excluded from identity; real knobs are not.
    c = ExecutionConfig(**sizesless, ledger="/tmp/somewhere.jsonl")
    assert config_fingerprint(c) == config_fingerprint(a)
    d = ExecutionConfig(**{**sizesless, "backend": "coop"})
    assert config_fingerprint(d) != config_fingerprint(a)
    e = ExecutionConfig(**sizesless, fault_plan="straggler:ranks=2,factor=3")
    assert config_fingerprint(e) != config_fingerprint(a)


def test_append_and_read(tmp_path):
    path = tmp_path / "runs.jsonl"
    result = _run()
    append_run(str(path), result, algorithm="two_phase_bruck")
    append_run(str(path), result, algorithm="two_phase_bruck")
    records = read_ledger(str(path))
    assert len(records) == 2
    assert records[0]["algorithm"] == "two_phase_bruck"
    # JSONL: one plain-JSON object per line.
    lines = path.read_text().strip().splitlines()
    assert len(lines) == 2
    assert all(json.loads(line)["nprocs"] == NPROCS for line in lines)
    assert read_ledger(str(tmp_path / "missing.jsonl")) == []


@pytest.mark.parametrize("backend,trace", [
    ("tensor", "metrics"), ("coop", "full"), ("threads", "metrics"),
])
def test_executor_appends_when_configured(tmp_path, backend, trace):
    path = tmp_path / "auto.jsonl"
    result = _run(trace=trace, backend=backend, ledger=str(path))
    records = read_ledger(str(path))
    assert len(records) == 1
    rec = records[0]
    assert rec["backend"] == backend
    assert rec["nprocs"] == NPROCS
    # The executor lifts workload labels off the program object.
    assert rec["algorithm"] == "two_phase_bruck"
    assert rec["elapsed_s"] == result.elapsed
    assert rec["config_fingerprint"] == config_fingerprint(result.config)
    assert rec["metrics"]["total_messages"] == result.metrics.total_messages
    if backend == "threads":
        # metrics-only on threads: no event DAG and no tensor step log,
        # so the record carries aggregates but no attribution.
        assert rec["attribution"] is None
    else:
        assert rec["attribution"] is not None


def test_executor_skips_without_metrics(tmp_path):
    path = tmp_path / "skip.jsonl"
    _run(trace=False, ledger=str(path))
    assert read_ledger(str(path)) == []
    # events-only runs carry no aggregates either.
    _run(trace="events", backend="coop", ledger=str(path))
    assert read_ledger(str(path)) == []


def test_executor_stamps_radix_and_max_block(tmp_path):
    path = tmp_path / "radix.jsonl"
    sizes = block_size_matrix(distribution_by_name("power_law", 32),
                              NPROCS, seed=7)
    cfg = ExecutionConfig(backend="tensor", machine=THETA, trace="metrics",
                          timeout=300, wire="phantom", ledger=str(path))
    run_spmd(TensorAlltoallv("two_phase_bruck", sizes, radix=4), NPROCS,
             config=cfg)
    run_spmd(TensorAlltoallv("two_phase_bruck", sizes), NPROCS, config=cfg)
    r4, r2 = read_ledger(str(path))
    assert r4["radix"] == 4
    assert r4["max_block"] == int(sizes.max())
    # Radix-2 specs are stamped too — the tuner groups on the label.
    assert r2["radix"] == 2
    # These records are exactly what the auto-tuner consumes.
    from repro.core.tuner import AutoTuner
    tuner = AutoTuner(THETA, str(path), min_samples=1)
    assert tuner.refresh() == 2
    d = tuner.decide(NPROCS, int(sizes.max()))
    assert d.source == "ledger"


class TestLedgerQueries:
    def _seed(self, path):
        from repro.bench.ledger import append_record
        for radix, p, t in ((2, 64, 1e-3), (4, 64, 5e-4), (4, 128, 2e-4)):
            append_record(str(path), {
                "machine": "theta", "algorithm": "two_phase_bruck",
                "nprocs": p, "radix": radix, "elapsed_s": t,
                "backend": "tensor", "wire": "phantom"})

    def test_field_filters(self, tmp_path):
        from repro.bench.ledger import query_ledger
        path = tmp_path / "q.jsonl"
        self._seed(path)
        assert len(query_ledger(str(path), radix=4)) == 2
        assert len(query_ledger(str(path), radix=4, nprocs=64)) == 1
        assert query_ledger(str(path), algorithm="padded_bruck") == []
        # records missing a queried field never match
        assert query_ledger(str(path), config_fingerprint="abc") == []

    def test_predicate_composes(self, tmp_path):
        from repro.bench.ledger import query_ledger
        path = tmp_path / "q.jsonl"
        self._seed(path)
        fast = query_ledger(str(path), radix=4,
                            predicate=lambda r: r["elapsed_s"] < 3e-4)
        assert [r["nprocs"] for r in fast] == [128]

    def test_unknown_field_rejected(self, tmp_path):
        from repro.bench.ledger import query_ledger
        path = tmp_path / "q.jsonl"
        self._seed(path)
        with pytest.raises(TypeError, match="bogus"):
            query_ledger(str(path), bogus=1)

    def test_missing_file_empty(self, tmp_path):
        from repro.bench.ledger import query_ledger
        assert query_ledger(str(tmp_path / "none.jsonl"), radix=2) == []


class TestLedgerCorruption:
    def test_truncated_final_line_skipped(self, tmp_path):
        # A run killed mid-append leaves a partial last line; reading
        # must survive it and return every complete record.
        path = tmp_path / "t.jsonl"
        path.write_text('{"nprocs": 8}\n{"nprocs": 16}\n{"npro')
        assert [r["nprocs"] for r in read_ledger(str(path))] == [8, 16]

    def test_corrupt_middle_line_raises(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"nprocs": 8}\nnot json\n{"nprocs": 16}\n')
        with pytest.raises(ValueError, match="non-final"):
            read_ledger(str(path))

    def test_query_tolerates_truncation_too(self, tmp_path):
        from repro.bench.ledger import query_ledger
        path = tmp_path / "t.jsonl"
        path.write_text('{"nprocs": 8, "radix": 4}\n{"trunc')
        assert len(query_ledger(str(path), radix=4)) == 1

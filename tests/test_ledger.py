"""The persistent run ledger (repro.bench.ledger).

Records must be self-describing plain JSON (loadable without importing
the package), stamped with the machine-model version, keyed by a stable
config fingerprint, and appended automatically by ``run_spmd`` when the
config carries a ledger path and the run records metrics.
"""

import json

import pytest

from repro.bench.ledger import (
    LEDGER_VERSION,
    append_run,
    config_fingerprint,
    read_ledger,
    run_record,
)
from repro.simmpi import (
    ExecutionConfig,
    MACHINE_MODEL_VERSION,
    TensorAlltoallv,
    THETA,
    run_spmd,
)
from repro.workloads import block_size_matrix, distribution_by_name

NPROCS = 8


def _run(trace="metrics", backend="tensor", ledger=None):
    sizes = block_size_matrix(distribution_by_name("power_law", 32),
                              NPROCS, seed=7)
    cfg = ExecutionConfig(backend=backend, machine=THETA, trace=trace,
                          timeout=300, wire="phantom", ledger=ledger)
    return run_spmd(TensorAlltoallv("two_phase_bruck", sizes), NPROCS,
                    config=cfg)


def test_run_record_contents():
    result = _run()
    rec = run_record(result, algorithm="two_phase_bruck",
                     distribution="power_law", extra={"suite": "unit"})
    assert rec["ledger_version"] == LEDGER_VERSION
    assert rec["machine_model_version"] == MACHINE_MODEL_VERSION
    assert rec["machine"] == "theta"
    assert rec["nprocs"] == NPROCS
    assert rec["backend"] == "tensor" and rec["wire"] == "phantom"
    assert rec["algorithm"] == "two_phase_bruck"
    assert rec["suite"] == "unit"
    assert rec["elapsed_s"] == result.elapsed
    m = rec["metrics"]
    assert m["total_messages"] == result.metrics.total_messages
    assert m["max_in_flight"] == result.metrics.max_in_flight
    assert m["links_used"] == len(result.metrics.per_link)
    a = rec["attribution"]
    assert a["granularity"] == "steps"
    assert set(a["buckets"]) == {"compute", "overhead", "transmit",
                                 "congestion", "queue_wait", "fault_delay"}
    # Every record must round-trip through plain JSON.
    assert json.loads(json.dumps(rec)) == json.loads(json.dumps(rec))


def test_fingerprint_stability():
    sizesless = dict(machine=THETA, trace="metrics", timeout=300,
                     wire="phantom", backend="tensor")
    a = ExecutionConfig(**sizesless)
    b = ExecutionConfig(**sizesless)
    assert config_fingerprint(a) == config_fingerprint(b)
    # The ledger path is excluded from identity; real knobs are not.
    c = ExecutionConfig(**sizesless, ledger="/tmp/somewhere.jsonl")
    assert config_fingerprint(c) == config_fingerprint(a)
    d = ExecutionConfig(**{**sizesless, "backend": "coop"})
    assert config_fingerprint(d) != config_fingerprint(a)
    e = ExecutionConfig(**sizesless, fault_plan="straggler:ranks=2,factor=3")
    assert config_fingerprint(e) != config_fingerprint(a)


def test_append_and_read(tmp_path):
    path = tmp_path / "runs.jsonl"
    result = _run()
    append_run(str(path), result, algorithm="two_phase_bruck")
    append_run(str(path), result, algorithm="two_phase_bruck")
    records = read_ledger(str(path))
    assert len(records) == 2
    assert records[0]["algorithm"] == "two_phase_bruck"
    # JSONL: one plain-JSON object per line.
    lines = path.read_text().strip().splitlines()
    assert len(lines) == 2
    assert all(json.loads(line)["nprocs"] == NPROCS for line in lines)
    assert read_ledger(str(tmp_path / "missing.jsonl")) == []


@pytest.mark.parametrize("backend,trace", [
    ("tensor", "metrics"), ("coop", "full"), ("threads", "metrics"),
])
def test_executor_appends_when_configured(tmp_path, backend, trace):
    path = tmp_path / "auto.jsonl"
    result = _run(trace=trace, backend=backend, ledger=str(path))
    records = read_ledger(str(path))
    assert len(records) == 1
    rec = records[0]
    assert rec["backend"] == backend
    assert rec["nprocs"] == NPROCS
    # The executor lifts workload labels off the program object.
    assert rec["algorithm"] == "two_phase_bruck"
    assert rec["elapsed_s"] == result.elapsed
    assert rec["config_fingerprint"] == config_fingerprint(result.config)
    assert rec["metrics"]["total_messages"] == result.metrics.total_messages
    if backend == "threads":
        # metrics-only on threads: no event DAG and no tensor step log,
        # so the record carries aggregates but no attribution.
        assert rec["attribution"] is None
    else:
        assert rec["attribution"] is not None


def test_executor_skips_without_metrics(tmp_path):
    path = tmp_path / "skip.jsonl"
    _run(trace=False, ledger=str(path))
    assert read_ledger(str(path)) == []
    # events-only runs carry no aggregates either.
    _run(trace="events", backend="coop", ledger=str(path))
    assert read_ledger(str(path)) == []

"""End-to-end shape assertions for the paper's headline claims.

Each test pins one qualitative result the paper reports (who wins, which
direction a trend moves, roughly what factor).  Together they are the
"reproduction succeeded" checklist that EXPERIMENTS.md walks through.
"""

import pytest

from repro.bench import fig9_performance_model
from repro.simmpi import THETA
from repro.timing import predict_alltoallv, predict_uniform
from repro.workloads import NormalBlocks, PowerLawBlocks, UniformBlocks


def t(algorithm, p, n_or_dist, mode="auto", seed=1):
    dist = (UniformBlocks(n_or_dist) if isinstance(n_or_dist, int)
            else n_or_dist)
    return predict_alltoallv(algorithm, THETA, p, dist, seed=seed,
                             mode=mode).elapsed


class TestFig2Claims:
    """§2.2: uniform variant comparison at N = 32 B."""

    @pytest.mark.parametrize("p", [256, 1024, 4096])
    def test_zero_rotation_fastest(self, p):
        times = {alg: predict_uniform(alg, THETA, p, 32).total
                 for alg in ("basic_bruck", "modified_bruck",
                             "zero_rotation_bruck", "basic_bruck_dt",
                             "modified_bruck_dt", "zero_copy_bruck_dt")}
        assert min(times, key=times.get) == "zero_rotation_bruck"

    @pytest.mark.parametrize("p", [256, 1024, 4096])
    def test_datatype_variants_consistently_slower(self, p):
        for plain, dt in (("basic_bruck", "basic_bruck_dt"),
                          ("modified_bruck", "modified_bruck_dt")):
            assert predict_uniform(dt, THETA, p, 32).total > \
                predict_uniform(plain, THETA, p, 32).total

    def test_zero_rotation_speedup_magnitude(self):
        # Paper: zero-rotation is 39.64% faster than basic at P=256 and
        # 7.13% at P=4096.  (Note the paper's own tension: it also states
        # the rotation *share* grows with P, which implies the gain should
        # grow too — as it does in our model.  We assert positive gains in
        # a loose band; see EXPERIMENTS.md.)
        def gain(p):
            basic = predict_uniform("basic_bruck", THETA, p, 32).total
            zero = predict_uniform("zero_rotation_bruck", THETA, p, 32).total
            return 1 - zero / basic
        assert 0.01 < gain(256) < 0.6
        assert 0.01 < gain(4096) < 0.6

    def test_rotation_share_grows_with_p(self):
        # §2.2: "time percentages of the two rotation phases increase
        # with the number of processes" — relative to basic's total.
        def share(p):
            timing = predict_uniform("basic_bruck", THETA, p, 32)
            return (timing.initial_rotation + timing.final_rotation) \
                / timing.total
        assert share(4096) > share(256)


class TestFig6Claims:
    """§4.1 data scaling."""

    def test_two_phase_beats_vendor_small_to_moderate_n(self):
        for p in (256, 512, 1024, 2048, 4096):
            assert t("two_phase_bruck", p, 256) < t("vendor", p, 256)

    def test_vendor_wins_large_n_at_scale(self):
        assert t("vendor", 4096, 2048) < t("two_phase_bruck", 4096, 2048)

    def test_crossover_ladder_matches_paper(self):
        """The headline Fig. 6/9 result: N* = 1024/512/256/128 at
        P = 4096/8192/16384/32768."""
        for p, n_star in ((4096, 1024), (8192, 512), (16384, 256),
                          (32768, 128)):
            assert t("two_phase_bruck", p, n_star) < t("vendor", p, n_star), \
                f"two-phase should still win at (P={p}, N={n_star})"
            assert t("two_phase_bruck", p, 2 * n_star) > \
                t("vendor", p, 2 * n_star), \
                f"vendor should win at (P={p}, N={2 * n_star})"

    def test_win_factor_at_n256(self):
        # Paper: 50.1% / 38.5% / 35.8% / 30.8% faster at P = 512..4096.
        # Assert the band (25%..60%) and the declining trend.
        gains = []
        for p in (512, 1024, 2048, 4096):
            gains.append(1 - t("two_phase_bruck", p, 256) / t("vendor", p, 256))
        assert all(0.20 < g < 0.65 for g in gains), gains
        assert gains[0] > gains[-1]

    def test_padded_transmits_double_so_loses_at_moderate_n(self):
        # Paper's N=512, P=4096 example: padded ~2.2x slower (202.9 vs
        # 91.6 ms).
        ratio = t("padded_bruck", 4096, 512) / t("two_phase_bruck", 4096, 512)
        assert 1.5 < ratio < 3.0

    def test_absolute_magnitude_anchor(self):
        # two-phase at (P=4096, N=512) ≈ 91.6 ms on Theta (paper).  Our
        # calibrated profile must land within 25%.
        assert t("two_phase_bruck", 4096, 512) == pytest.approx(
            91.6e-3, rel=0.25)


class TestFig7Claims:
    """§4.1 weak scaling."""

    def test_n64_two_phase_wins_through_32k(self):
        for p in (128, 1024, 8192, 32768):
            assert t("two_phase_bruck", p, 64) < t("vendor", p, 64)

    def test_n512_two_phase_wins_only_through_8k(self):
        assert t("two_phase_bruck", 8192, 512) < t("vendor", 8192, 512)
        assert t("two_phase_bruck", 32768, 512) > t("vendor", 32768, 512)

    def test_time_grows_with_p(self):
        times = [t("two_phase_bruck", p, 64) for p in (128, 1024, 8192)]
        assert times == sorted(times)


class TestFig8Claims:
    """§4.2 sensitivity at P = 4096."""

    def test_two_phase_wins_all_windows_up_to_512(self):
        from repro.workloads import WindowedUniformBlocks
        for n in (16, 256, 512):
            for r in (100, 60, 20):
                dist = WindowedUniformBlocks(n, r)
                assert t("two_phase_bruck", 4096, dist) < \
                    t("vendor", 4096, dist), (n, r)

    def test_time_shrinks_with_wider_window(self):
        from repro.workloads import WindowedUniformBlocks
        narrow = t("two_phase_bruck", 4096, WindowedUniformBlocks(512, 20))
        wide = t("two_phase_bruck", 4096, WindowedUniformBlocks(512, 100))
        assert wide < narrow  # smaller average load -> faster


class TestFig9Claims:
    """§4.1 empirical performance model."""

    @pytest.fixture(scope="class")
    def model(self):
        return fig9_performance_model(
            procs=(128, 1024, 4096, 8192, 16384, 32768),
            blocks=(16, 64, 128, 256, 512, 1024, 2048))

    def test_frontier_declines_at_scale(self, model):
        ns = {c.nprocs: c.max_block for c in model.two_phase_frontier}
        assert ns[4096] >= 512
        assert ns[32768] <= 256
        assert ns[32768] >= 64  # "even at 32K there are sizes where we win"

    def test_padded_niche(self, model):
        padded = {c.nprocs: c.max_block for c in model.padded_frontier}
        assert padded[128] > 0


class TestFig10Claims:
    """§4.3 standard distributions at P = 4096/8192."""

    def test_power_law_wins_to_larger_n_than_normal(self):
        # Paper: power-law crossover ≈ 1024, normal ≈ 512 (lighter total
        # load keeps Bruck competitive longer).
        p = 8192
        pl = PowerLawBlocks(1024, base=0.99)
        assert t("two_phase_bruck", p, pl) < t("vendor", p, pl)
        nm = NormalBlocks(2048)
        assert t("two_phase_bruck", p, nm) > t("vendor", p, nm)

    def test_base_099_lighter_than_0999(self):
        p = 4096
        light = t("two_phase_bruck", p, PowerLawBlocks(1024, base=0.99))
        heavy = t("two_phase_bruck", p, PowerLawBlocks(1024, base=0.999))
        assert light < heavy

    def test_normal_heavier_than_power_law(self):
        # Paper: per-process volume ~8x higher under normal than
        # power-law(0.99) at N≈1024-2048.
        assert NormalBlocks(1024).mean > 4 * PowerLawBlocks(1024, 0.99).mean


class TestFig13Claims:
    """§7 generality: the win carries to Cori and Stampede2 profiles."""

    @pytest.mark.parametrize("machine_name", ["cori", "stampede2"])
    def test_two_phase_beats_vendor_elsewhere(self, machine_name):
        from repro.simmpi import get_profile
        machine = get_profile(machine_name)
        dist = NormalBlocks(64)
        for p in (512, 4096):
            tp = predict_alltoallv("two_phase_bruck", machine, p, dist,
                                   seed=1).elapsed
            vendor = predict_alltoallv("vendor", machine, p, dist,
                                       seed=1).elapsed
            assert tp < vendor

"""Tests for the benchmark harness: runner, reporting, figure drivers."""

import pytest

from repro.bench import (
    FigureData,
    fig2a_uniform_variants,
    fig2b_phase_breakdown,
    fig6_data_scaling,
    fig7_weak_scaling,
    fig8_sensitivity,
    fig10_distributions,
    fig13_other_machines,
    format_series_table,
    format_speedup,
    format_table,
    run_iterations,
)
from repro.simmpi import CORI, THETA
from repro.stats import Summary


class TestRunner:
    def test_distinct_seeds(self):
        seen = []
        run_iterations(lambda s: seen.append(s) or float(s), 5, base_seed=10)
        assert seen == [10, 11, 12, 13, 14]

    def test_summary_of_values(self):
        s = run_iterations(lambda seed: float(seed % 3), 9)
        assert isinstance(s, Summary)
        assert s.iterations == 9

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            run_iterations(lambda s: 0.0, 0)


class TestReporting:
    def test_format_table_marks_winner(self):
        cell = {("r1", "a"): 0.002, ("r1", "b"): 0.001}
        text = format_table("T", "alg", "row", ["a", "b"], ["r1"], cell)
        assert "1.000*" in text
        assert "2.000 " in text

    def test_format_table_missing_cell(self):
        text = format_table("T", "alg", "row", ["a", "b"], ["r1"],
                            {("r1", "a"): 0.001})
        assert "-" in text

    def test_format_series_accepts_summary(self):
        s = Summary(median=0.003, mad=0.0, iterations=3, minimum=0.003,
                    maximum=0.003)
        text = format_series_table("T", "x", {"alg": {1: s}}, [1])
        assert "3.000" in text

    def test_format_speedup_both_directions(self):
        a = format_speedup("fast", 0.5, "slow", 1.0)
        assert "fast is 50.0% faster" in a
        b = format_speedup("slow", 1.0, "fast", 0.5)
        assert "fast is 50.0% faster" in b


class TestFigureDrivers:
    def test_fig2a_structure(self):
        fd = fig2a_uniform_variants(procs=(64, 256))
        assert isinstance(fd, FigureData)
        assert set(fd.xs) == {64, 256}
        assert len(fd.series) == 6
        # zero-rotation must be the fastest variant everywhere (Fig. 2a).
        for p in fd.xs:
            assert fd.winner(p) == "zero_rotation_bruck"

    def test_fig2b_breakdown_shares(self):
        out = fig2b_phase_breakdown(procs=(1024,))
        basic = out[1024]["basic_bruck"]
        zero = out[1024]["zero_rotation_bruck"]
        assert basic["final_rotation"] > 0
        assert zero["final_rotation"] == 0
        assert zero["initial_rotation"] == 0
        # comm roughly equal among non-dt variants (paper's observation)
        assert basic["communication"] == pytest.approx(
            zero["communication"], rel=0.15)

    def test_fig6_small(self):
        out = fig6_data_scaling(procs=(256,), blocks=(16, 512),
                                iterations=2)
        fd = out[256]
        assert set(fd.series) == {"padded_bruck", "two_phase_bruck",
                                  "padded_alltoall", "spread_out",
                                  "vendor_alltoallv"}
        # small-block regime at 256 ranks: Bruck-family wins
        assert fd.winner(16) in ("padded_bruck", "two_phase_bruck")

    def test_fig7_weak_scaling_monotone(self):
        fd = fig7_weak_scaling(procs=(128, 1024, 8192), iterations=2)
        for name, pts in fd.series.items():
            vals = [pts[p].median for p in fd.xs]
            assert vals == sorted(vals), f"{name} not monotone in P"

    def test_fig8_sensitivity_keys(self):
        out = fig8_sensitivity(nprocs=512, blocks=(16, 256),
                               r_values=(100, 50), iterations=1)
        assert set(out) == {(16, 100), (16, 50), (256, 100), (256, 50)}
        # narrower window (r=50) means larger average load -> slower
        assert out[(256, 50)]["two_phase_bruck"].median > \
            out[(256, 100)]["two_phase_bruck"].median

    def test_fig10_includes_all_distributions(self):
        out = fig10_distributions(procs=(512,), blocks=(64,), iterations=1)
        labels = {label for (label, _p) in out}
        assert labels == {"power_law_0.99", "power_law_0.999", "normal"}

    def test_fig13_machines(self):
        out = fig13_other_machines(machines=(CORI,), procs=(128, 1024),
                                   iterations=1)
        fd = out["cori"]
        # the generality claim: two-phase beats vendor on other machines
        assert fd.winner(1024) == "two_phase_bruck"

    def test_winner_unknown_x(self):
        fd = fig2a_uniform_variants(procs=(64,))
        with pytest.raises(KeyError):
            fd.winner(999)

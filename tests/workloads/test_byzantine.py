"""Bracha/Dolev reliable broadcast under Byzantine ranks and wire chaos.

Pins the two classic guarantees for ``f < P/3`` — *validity* (an honest
broadcaster's value is delivered by every honest rank) and *agreement*
(honest ranks never deliver different values) — at P ∈ {8, 16, 32}, and
the safety half of the bound at ``f >= ⌈P/3⌉``: with every liar flooding
SEND/ECHO/READY for a forged value, the forged value provably cannot
collect ``2f + 1`` READYs, so no honest rank ever delivers it (liveness
may be lost; safety is not).

The protocols run over the simulator's control plane, so the seeded
corrupt+forge+dup+reorder plans compose underneath them via the verified
transport — the app-level adversary and the wire-level adversary are
independent, and determinism holds across backends and wire modes.
"""

import math
from functools import partial

import pytest

from repro.simmpi import ExecutionConfig, THETA, run_spmd
from repro.workloads import (
    FORGED_VALUE,
    bracha_broadcast,
    dolev_broadcast,
    get_byzantine_workload,
    list_byzantine_workloads,
)

VALUE = "the-genuine-payload"

#: Wire-level chaos layered under the app-level adversary.  No drops: a
#: lockstep round protocol cannot complete if a message never arrives,
#: and masking drops is the (already-tested) retry transport's job.
CHAOS_PLAN = "corrupt:p=0.04;forge:p=0.03;dup:p=0.06;reorder:p=0.06"


def _bracha_prog(comm, **kw):
    return bracha_broadcast(comm, VALUE, **kw)


def _dolev_prog(comm, **kw):
    return dolev_broadcast(comm, VALUE, **kw)


def _cfg(**kw):
    defaults = dict(machine=THETA, backend="threads", wire="bytes",
                    trace="metrics", timeout=120)
    defaults.update(kw)
    return ExecutionConfig(**defaults)


def _honest(result):
    return [o for o in result.returns if not o.byzantine]


class TestBrachaAgreementValidity:
    @pytest.mark.parametrize("nprocs", [8, 16, 32])
    def test_validity_under_max_tolerable_liars(self, nprocs):
        """Honest broadcaster, f = max tolerable liars flooding a forged
        value: every honest rank delivers the genuine value."""
        f = (nprocs - 1) // 3
        byz = tuple(range(1, 1 + f))
        result = run_spmd(
            partial(_bracha_prog, broadcaster=0, f=f, byzantine=byz,
                    strategy="forge"),
            nprocs, config=_cfg())
        honest = _honest(result)
        assert len(honest) == nprocs - f
        assert {o.delivered for o in honest} == {VALUE}

    @pytest.mark.parametrize("nprocs", [8, 16, 32])
    def test_agreement_under_equivocating_broadcaster(self, nprocs):
        """A Byzantine broadcaster sends different values to different
        ranks: honest ranks may fail to deliver, but those that do
        deliver must agree on one value."""
        f = (nprocs - 1) // 3
        byz = (0,) + tuple(range(2, 1 + f))   # broadcaster itself lies
        result = run_spmd(
            partial(_bracha_prog, broadcaster=0, f=f, byzantine=byz,
                    strategy="equivocate"),
            nprocs, config=_cfg())
        delivered = {o.delivered for o in _honest(result)
                     if o.delivered is not None}
        assert len(delivered) <= 1, delivered

    def test_silent_liars_cost_liveness_not_safety(self):
        """Crash-style Byzantine ranks (send nothing): the genuine value
        still goes through for f < P/3."""
        result = run_spmd(
            partial(_bracha_prog, broadcaster=0, f=2, byzantine=(3, 6),
                    strategy="silent"),
            8, config=_cfg())
        assert {o.delivered for o in _honest(result)} == {VALUE}


class TestBrachaSafetyBound:
    @pytest.mark.parametrize("nprocs", [8, 9, 16])
    def test_forged_value_never_delivered_at_or_above_the_bound(
            self, nprocs):
        """f >= ⌈P/3⌉ flooding liars: delivery of the forged value needs
        2f+1 READYs, but only the f liars ever READY it (honest ranks
        neither see an echo quorum for it nor amplify below f+1), so no
        honest rank can deliver it — safety survives the broken bound."""
        f = math.ceil(nprocs / 3)
        byz = tuple(range(1, 1 + f))
        result = run_spmd(
            partial(_bracha_prog, broadcaster=0, f=f, byzantine=byz,
                    strategy="forge"),
            nprocs, config=_cfg())
        honest = _honest(result)
        assert all(o.delivered != FORGED_VALUE for o in honest)
        for o in honest:
            # The forged value's READY support is exactly the liars.
            assert o.ready_counts.get(FORGED_VALUE, 0) <= f
            assert o.ready_counts.get(FORGED_VALUE, 0) < 2 * f + 1


class TestDolev:
    @pytest.mark.parametrize("nprocs,f", [(8, 2), (16, 5), (32, 10)])
    def test_relay_delivers_for_f_liars(self, nprocs, f):
        byz = tuple(range(2, 2 + f))
        result = run_spmd(
            partial(_dolev_prog, broadcaster=0, f=f, byzantine=byz,
                    strategy="forge"),
            nprocs, config=_cfg())
        honest = _honest(result)
        assert {o.delivered for o in honest} == {VALUE}
        for o in honest:
            assert o.voucher_counts.get(FORGED_VALUE, 0) <= f

    def test_forged_value_lacks_vouchers(self):
        """f liars can produce at most f vouchers for the forged value —
        one short of the f+1 the delivery rule demands."""
        result = run_spmd(
            partial(_dolev_prog, broadcaster=0, f=3, byzantine=(1, 4, 6),
                    strategy="forge"),
            12, config=_cfg())
        for o in _honest(result):
            assert o.delivered == VALUE
            assert o.voucher_counts.get(FORGED_VALUE, 0) == 3


class TestUnderWireChaos:
    @pytest.mark.parametrize("backend", ["threads", "coop"])
    @pytest.mark.parametrize("wire", ["bytes", "phantom"])
    def test_bracha_survives_seeded_chaos_under_verify(self, backend, wire):
        """The tentpole composition: app-level liars AND wire-level
        corrupt+forge+dup+reorder, masked by the verified transport —
        validity still holds, in every backend x wire cell."""
        result = run_spmd(
            partial(_bracha_prog, broadcaster=0, f=2, byzantine=(1, 4),
                    strategy="forge"),
            16, config=_cfg(backend=backend, wire=wire,
                            reliability="verify", on_fault="retry",
                            fault_plan=CHAOS_PLAN, fault_seed=11))
        assert {o.delivered for o in _honest(result)} == {VALUE}
        counts = result.metrics.fault_counts
        assert counts.get("corrupt", 0) > 0, "plan injected nothing"

    def test_chaos_runs_bit_identical_across_matrix(self):
        """Clocks and fault counts agree across all four cells for the
        chaos-composed Bracha run."""
        signatures = set()
        for backend in ("threads", "coop"):
            for wire in ("bytes", "phantom"):
                result = run_spmd(
                    partial(_bracha_prog, broadcaster=0, f=2,
                            byzantine=(1, 4), strategy="forge"),
                    16, config=_cfg(backend=backend, wire=wire,
                                    reliability="verify", on_fault="retry",
                                    fault_plan=CHAOS_PLAN, fault_seed=11))
                signatures.add((tuple(result.clocks),
                                tuple(sorted(
                                    result.metrics.fault_counts.items()))))
        assert len(signatures) == 1


class TestRegistry:
    def test_workloads_registered(self):
        assert list_byzantine_workloads() == ["bracha", "dolev"]
        assert get_byzantine_workload("bracha") is bracha_broadcast
        assert get_byzantine_workload("dolev") is dolev_broadcast

    def test_unknown_workload_names_known_ones(self):
        with pytest.raises(KeyError, match="bracha"):
            get_byzantine_workload("paxos")

    def test_bad_strategy_rejected(self):
        with pytest.raises(ValueError, match="strategy"):
            run_spmd(partial(_bracha_prog, strategy="bribe"), 4,
                     config=_cfg(backend="coop"))

"""Tests for the block-size distributions: ranges, moments, determinism."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import (
    NormalBlocks,
    PowerLawBlocks,
    UniformBlocks,
    WindowedUniformBlocks,
    block_size_matrix,
    distribution_by_name,
)

ALL_DISTS = [
    UniformBlocks(256),
    WindowedUniformBlocks(256, 50),
    NormalBlocks(256),
    PowerLawBlocks(256, base=0.99),
    PowerLawBlocks(256, base=0.999),
]


class TestRanges:
    @pytest.mark.parametrize("dist", ALL_DISTS, ids=lambda d: d.describe())
    def test_samples_within_bounds(self, dist, rng):
        x = dist.sample(rng, 20000)
        assert x.min() >= 0
        assert x.max() <= dist.max_block
        assert x.dtype == np.int64

    def test_windowed_lower_bound(self, rng):
        d = WindowedUniformBlocks(1000, 30)  # sizes in [700, 1000]
        x = d.sample(rng, 5000)
        assert x.min() >= 700

    def test_windowed_r100_is_full_range(self, rng):
        d = WindowedUniformBlocks(100, 100)
        assert d.low == 0
        x = d.sample(rng, 5000)
        assert x.min() < 10

    def test_zero_max_block(self, rng):
        for cls in (UniformBlocks, NormalBlocks):
            d = cls(0)
            assert (d.sample(rng, 100) == 0).all()
            assert d.mean == 0.0


class TestMoments:
    @pytest.mark.parametrize("dist", ALL_DISTS, ids=lambda d: d.describe())
    def test_sampled_moments_match_reported(self, dist):
        rng = np.random.default_rng(7)
        x = dist.sample(rng, 200_000).astype(np.float64)
        assert x.mean() == pytest.approx(dist.mean, rel=0.03, abs=0.6)
        assert x.var() == pytest.approx(dist.variance, rel=0.06, abs=1.0)

    def test_uniform_exact_moments(self):
        d = UniformBlocks(100)
        assert d.mean == 50.0
        assert d.variance == pytest.approx((101 ** 2 - 1) / 12)

    def test_normal_centered_at_half(self):
        d = NormalBlocks(600)
        assert d.mean == pytest.approx(300.0, abs=1.0)
        # sigma = N/6, negligible clipping
        assert math.sqrt(d.variance) == pytest.approx(100.0, rel=0.02)

    def test_power_law_mean_below_uniform(self):
        # The paper: power-law 0.99 carries far less total load.
        n = 2048
        assert PowerLawBlocks(n, 0.99).mean < 0.2 * UniformBlocks(n).mean
        # and 0.999 sits between 0.99 and uniform
        assert PowerLawBlocks(n, 0.99).mean < PowerLawBlocks(n, 0.999).mean \
            < UniformBlocks(n).mean

    def test_tabulated_pmf_normalized(self):
        for d in (NormalBlocks(128), PowerLawBlocks(128, 0.99)):
            assert d._pmf.sum() == pytest.approx(1.0)
            assert (d._pmf >= 0).all()


class TestDeterminism:
    def test_same_seed_same_matrix(self):
        d = UniformBlocks(64)
        a = block_size_matrix(d, 16, seed=3)
        b = block_size_matrix(d, 16, seed=3)
        assert np.array_equal(a, b)

    def test_different_seed_differs(self):
        d = UniformBlocks(64)
        assert not np.array_equal(block_size_matrix(d, 16, seed=3),
                                  block_size_matrix(d, 16, seed=4))

    def test_matrix_shape(self):
        m = block_size_matrix(UniformBlocks(8), 5, seed=0)
        assert m.shape == (5, 5)

    def test_invalid_nprocs(self):
        with pytest.raises(ValueError):
            block_size_matrix(UniformBlocks(8), 0)


class TestValidationAndFactory:
    def test_negative_max_block(self):
        with pytest.raises(ValueError):
            UniformBlocks(-1)

    def test_windowed_bad_r(self):
        with pytest.raises(ValueError):
            WindowedUniformBlocks(64, 101)

    def test_power_law_bad_base(self):
        with pytest.raises(ValueError):
            PowerLawBlocks(64, base=1.5)
        with pytest.raises(ValueError):
            PowerLawBlocks(64, base=0.0)

    def test_factory(self):
        d = distribution_by_name("power_law", 128, base=0.99)
        assert isinstance(d, PowerLawBlocks)
        d2 = distribution_by_name("windowed_uniform", 128, r_percent=20)
        assert isinstance(d2, WindowedUniformBlocks)
        with pytest.raises(KeyError):
            distribution_by_name("zipf", 128)

    def test_describe_strings(self):
        for d in ALL_DISTS:
            text = d.describe()
            assert str(d.max_block) in text


class TestProperties:
    @given(n=st.integers(0, 4096), seed=st.integers(0, 50))
    @settings(max_examples=40, deadline=None)
    def test_uniform_bounds_property(self, n, seed):
        d = UniformBlocks(n)
        x = d.sample(np.random.default_rng(seed), 500)
        assert x.min() >= 0 and x.max() <= n

    @given(n=st.integers(1, 2048), r=st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_windowed_mean_formula(self, n, r):
        d = WindowedUniformBlocks(n, r)
        assert d.mean == pytest.approx((d.low + n) / 2)
        assert 0 <= d.low <= n

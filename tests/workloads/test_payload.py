"""Tests for payload construction / verification helpers."""

import numpy as np
import pytest

from repro.workloads import (
    UniformBlocks,
    block_size_matrix,
    build_vargs,
    expected_recv,
    verify_recv,
)


class TestBuildVArgs:
    def test_counts_match_matrix(self):
        sizes = block_size_matrix(UniformBlocks(32), 6, seed=0)
        for r in range(6):
            args = build_vargs(r, sizes)
            assert args.sendcounts.tolist() == sizes[r, :].tolist()
            assert args.recvcounts.tolist() == sizes[:, r].tolist()
            assert args.sendbuf.nbytes == sizes[r, :].sum()
            assert args.recvbuf.nbytes == sizes[:, r].sum()

    def test_displacements_are_prefix_sums(self):
        sizes = np.array([[0, 3], [5, 2]], dtype=np.int64)
        args = build_vargs(0, sizes)
        assert args.sdispls.tolist() == [0, 0]
        args = build_vargs(1, sizes)
        assert args.sdispls.tolist() == [0, 5]

    def test_non_square_rejected(self):
        with pytest.raises(ValueError, match="square"):
            build_vargs(0, np.zeros((2, 3), dtype=np.int64))

    def test_as_tuple_order(self):
        sizes = block_size_matrix(UniformBlocks(8), 3, seed=1)
        args = build_vargs(1, sizes)
        t = args.as_tuple()
        assert t[0] is args.sendbuf and t[3] is args.recvbuf


class TestVerification:
    def test_expected_recv_is_what_senders_built(self):
        sizes = block_size_matrix(UniformBlocks(16), 4, seed=2)
        # simulate a perfect exchange by hand
        for r in range(4):
            args = build_vargs(r, sizes)
            recv = expected_recv(r, sizes)
            verify_recv(r, sizes, recv)  # must not raise
            # cross-check: bytes from source s match s's send pattern
            sargs = build_vargs(0, sizes)
            c = int(sizes[0, r])
            if c:
                block = recv[args.rdispls[0]:args.rdispls[0] + c]
                sent = sargs.sendbuf[sargs.sdispls[r]:sargs.sdispls[r] + c]
                assert np.array_equal(block, sent)

    def test_corruption_detected_and_named(self):
        sizes = np.full((3, 3), 4, dtype=np.int64)
        recv = expected_recv(1, sizes)
        recv[5] ^= 0xFF  # corrupt a byte inside source-1's block
        with pytest.raises(AssertionError, match="source 1"):
            verify_recv(1, sizes, recv)

    def test_wrong_length_detected(self):
        sizes = np.full((2, 2), 4, dtype=np.int64)
        with pytest.raises(AssertionError):
            verify_recv(0, sizes, np.zeros(3, dtype=np.uint8))

"""Smoke tests: every shipped example must run to completion.

Examples are the quickstart documentation; a broken one is a broken
README.  Each runs as a subprocess with scaled-down CLI arguments where
the script accepts them.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

CASES = [
    ("quickstart.py", []),
    ("data_scaling_study.py", ["512"]),
    ("transitive_closure.py", ["16"]),
    ("kcfa_analysis.py", ["16"]),
    ("algorithm_advisor.py", ["350", "800"]),
    ("custom_machine.py", []),
]


@pytest.mark.parametrize("script,args", CASES,
                         ids=[c[0] for c in CASES])
def test_example_runs(script, args):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"


def test_quickstart_reports_bruck_win():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True, text=True, timeout=300)
    assert "faster than the vendor" in proc.stdout
    assert "-" not in proc.stdout.split("% faster")[0].split()[-1], \
        "quickstart should demonstrate a Bruck win, not a loss"


def test_advisor_answers_paper_question():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "algorithm_advisor.py"),
         "350", "800"],
        capture_output=True, text=True, timeout=300)
    assert "two_phase_bruck" in proc.stdout

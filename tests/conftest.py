"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simmpi import CORI, LOCAL, STAMPEDE2, THETA


@pytest.fixture(params=[THETA, LOCAL], ids=["theta", "local"])
def machine(request):
    """The two machine profiles most tests run under."""
    return request.param


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


# Process counts covering the interesting structure: P=1 (degenerate),
# P=2 (single step), powers of two, and non-powers of two (partial last
# Bruck step).
SMALL_PROCS = [1, 2, 3, 4, 5, 7, 8, 13, 16]
MEDIUM_PROCS = [24, 32]

ALL_MACHINES = [THETA, CORI, STAMPEDE2, LOCAL]

"""Tests for the calibration tool and the shipped profile's fit."""

import pytest

from repro.bench.calibrate import (
    PAPER_TARGETS,
    CalibrationTargets,
    calibrate,
    score_profile,
)
from repro.simmpi import THETA


class TestScoring:
    @pytest.fixture(scope="class")
    def shipped(self):
        return score_profile(THETA)

    def test_shipped_profile_scores_well(self, shipped):
        # Perfect would be 0; the shipped fit stays under 2.5 total error
        # units (4 crossovers + 4 win factors + 1 anchor).
        assert shipped.score < 2.5

    def test_shipped_crossovers_exact(self, shipped):
        for p, n_star in PAPER_TARGETS.crossovers.items():
            assert shipped.detail[f"crossover_p{p}"] == n_star

    def test_shipped_anchor_close(self, shipped):
        assert shipped.detail["anchor_seconds"] == pytest.approx(
            91.6e-3, rel=0.1)

    def test_detuned_profile_scores_worse(self, shipped):
        bad = THETA.with_overrides(eager_factor=1.0)
        assert score_profile(bad).score > 2 * shipped.score


class TestCalibrateSearch:
    def test_tiny_grid_returns_result(self):
        # A 1-point "grid" around the shipped constants must roughly
        # recover the shipped fit (beta gets re-anchored).
        result = calibrate(o_grid=(THETA.o_send,),
                           eager_grid=(THETA.eager_factor,),
                           congestion_grid=(THETA.congestion_procs,))
        # The single fixed-point anchoring step lands on a slightly
        # different beta than the shipped one, trading a touch of
        # win-factor error for a tighter anchor — allow a little slack
        # over the shipped budget.
        assert result.score < 2.75
        assert result.profile.beta == pytest.approx(THETA.beta, rel=0.1)

    def test_custom_targets(self):
        # Calibration is data-driven: absurd targets give a poor score.
        targets = CalibrationTargets(
            crossovers={4096: 8},       # pretend Bruck almost never wins
            win_at_256={512: -0.5},
            absolute_anchor=(4096, 512, 91.6e-3),
            blocks=(8, 64, 512),
        )
        result = score_profile(THETA, targets)
        assert result.score > 5

"""Tests for the BPRA substrate: relations, exchange, fixed point."""

import numpy as np
import pytest

from repro.bpra import (
    ExchangeStats,
    LocalRelation,
    exchange_tuples,
    hash_owner,
    run_fixpoint,
)
from repro.simmpi import LOCAL, THETA, run_spmd


class TestHashOwner:
    def test_deterministic(self):
        assert hash_owner(42, 8) == hash_owner(42, 8)

    def test_in_range(self):
        for v in range(200):
            assert 0 <= hash_owner(v, 7) < 7

    def test_balanced_partitioning(self):
        # The "balanced" in BPRA: consecutive keys spread evenly.
        p = 8
        counts = np.zeros(p)
        for v in range(8000):
            counts[hash_owner(v, p)] += 1
        assert counts.min() > 0.7 * counts.mean()
        assert counts.max() < 1.3 * counts.mean()


class TestLocalRelation:
    def test_add_dedup(self):
        rel = LocalRelation(2)
        assert rel.add((1, 2))
        assert not rel.add((1, 2))
        assert len(rel) == 1

    def test_add_all_returns_delta(self):
        rel = LocalRelation(2)
        rel.add((1, 2))
        fresh = rel.add_all([(1, 2), (3, 4), (3, 4), (5, 6)])
        assert fresh == [(3, 4), (5, 6)]
        assert len(rel) == 3

    def test_index_matching(self):
        rel = LocalRelation(2, key_column=0)
        rel.add((7, 1))
        rel.add((7, 2))
        rel.add((8, 3))
        assert sorted(rel.matching(7)) == [(7, 1), (7, 2)]
        assert rel.matching(99) == []

    def test_key_column_selects_index(self):
        rel = LocalRelation(2, key_column=1)
        rel.add((1, 7))
        rel.add((2, 7))
        assert sorted(rel.matching(7)) == [(1, 7), (2, 7)]

    def test_arity_enforced(self):
        rel = LocalRelation(2)
        with pytest.raises(ValueError, match="arity"):
            rel.add((1, 2, 3))

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            LocalRelation(0)
        with pytest.raises(ValueError):
            LocalRelation(2, key_column=5)

    def test_contains_and_iter(self):
        rel = LocalRelation(3)
        rel.add((1, 2, 3))
        assert (1, 2, 3) in rel
        assert list(rel) == [(1, 2, 3)]


class TestExchangeTuples:
    @pytest.mark.parametrize("algorithm", ["vendor", "two_phase_bruck",
                                           "padded_bruck", "spread_out"])
    def test_tuples_routed_correctly(self, algorithm):
        p = 6

        def prog(comm):
            # rank r sends tuple (r, dest, r*dest) to every dest
            outgoing = {d: [(comm.rank, d, comm.rank * d)] for d in range(p)}
            received, stats = exchange_tuples(comm, outgoing, 3,
                                              algorithm=algorithm)
            assert sorted(received) == [(s, comm.rank, s * comm.rank)
                                        for s in range(p)]
            assert stats.sent_tuples == p
            assert stats.received_tuples == p
            assert stats.comm_seconds > 0
            return stats.max_block_bytes
        res = run_spmd(prog, p, machine=THETA)
        # one 3-tuple of int64 per destination: N = 24 everywhere
        assert set(res.returns) == {24}

    def test_empty_exchange(self):
        def prog(comm):
            received, stats = exchange_tuples(comm, {}, 2)
            assert received == []
            assert stats.max_block_bytes == 0
        run_spmd(prog, 4)

    def test_uneven_load(self):
        p = 4

        def prog(comm):
            outgoing = {}
            if comm.rank == 0:
                outgoing[2] = [(i, i) for i in range(10)]
            received, stats = exchange_tuples(comm, outgoing, 2)
            if comm.rank == 2:
                assert len(received) == 10
            else:
                assert received == []
            assert stats.max_block_bytes == 160
        run_spmd(prog, p)

    def test_invalid_destination(self):
        def prog(comm):
            exchange_tuples(comm, {99: [(1, 2)]}, 2)
        with pytest.raises(ValueError, match="destination"):
            run_spmd(prog, 2)

    def test_wrong_arity_payload(self):
        def prog(comm):
            exchange_tuples(comm, {0: [(1, 2, 3)]}, 2)
        with pytest.raises(ValueError, match="arity"):
            run_spmd(prog, 2)


class TestFixpoint:
    def test_counting_chain(self):
        # Rule: fact (v,) produces (v+1,) until 10, owner = hash(v+1).
        def prog(comm):
            rel = LocalRelation(1, key_column=0)
            seed = []
            if hash_owner(0, comm.size) == comm.rank:
                rel.add((0,))
                seed.append((0,))

            def rule(delta):
                out = {}
                for (v,) in delta:
                    if v < 10:
                        out.setdefault(hash_owner(v + 1, comm.size),
                                       []).append((v + 1,))
                return out

            return run_fixpoint(comm, rel, seed, rule)
        res = run_spmd(prog, 4)
        total = sum(len(f.relation) for f in res.returns)
        assert total == 11  # facts 0..10
        iters = {f.iterations for f in res.returns}
        assert len(iters) == 1  # all ranks agree

    def test_history_records_per_iteration(self):
        def prog(comm):
            rel = LocalRelation(1)
            seed = []
            if comm.rank == hash_owner(0, comm.size):
                rel.add((0,))
                seed.append((0,))

            def rule(delta):
                out = {}
                for (v,) in delta:
                    if v < 5:
                        out.setdefault(hash_owner(v + 1, comm.size),
                                       []).append((v + 1,))
                return out
            return run_fixpoint(comm, rel, seed, rule)
        res = run_spmd(prog, 3)
        fp = res.returns[0]
        assert len(fp.history) == fp.iterations
        assert fp.total_comm_seconds > 0
        assert fp.total_new_tuples >= 0

    def test_max_iterations_guard(self):
        def prog(comm):
            rel = LocalRelation(1)
            seed = []
            if comm.rank == hash_owner(0, comm.size):
                rel.add((0,))
                seed.append((0,))

            def rule(delta):  # never converges: always a new fact
                out = {}
                for (v,) in delta:
                    out.setdefault(hash_owner(v + 1, comm.size),
                                   []).append((v + 1,))
                return out
            return run_fixpoint(comm, rel, seed, rule, max_iterations=5)
        with pytest.raises(RuntimeError, match="converge"):
            run_spmd(prog, 2)

    def test_duplicate_products_deduped(self):
        def prog(comm):
            rel = LocalRelation(1)
            seed = []
            if comm.rank == hash_owner(0, comm.size):
                rel.add((0,))
                seed.append((0,))

            def rule(delta):
                out = {}
                for (v,) in delta:
                    if v < 3:
                        owner = hash_owner(v + 1, comm.size)
                        # send the same fact thrice
                        out.setdefault(owner, []).extend([(v + 1,)] * 3)
                return out
            return run_fixpoint(comm, rel, seed, rule)
        res = run_spmd(prog, 2)
        assert sum(len(f.relation) for f in res.returns) == 4  # 0..3

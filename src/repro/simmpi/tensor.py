"""The vectorized whole-fabric "tensor" backend (``backend="tensor"``).

The thread and coop backends drive ``P`` rank programs; their cost is
O(P × program length) in *host* work, which tops out around a few thousand
ranks.  This backend evaluates a whole communication step as NumPy arrays
over all ``P`` ranks at once — per-rank clocks, message charges, LogGP
costs and fault decisions advance as ``(L,)`` lane vectors — reaching the
paper's 32K-rank configurations in seconds.

The engine reuses :mod:`repro.timing.engine`'s ``*_vec`` cost helpers (the
same expressions the analytic model is pinned to) and replays every charge
the functional kernels make, in per-rank program order, with the same IEEE
arithmetic:

* sequential clock advances fold through ``np.add.accumulate`` — the exact
  left-to-right float additions of a ``charge_copy`` loop;
* zero-byte charges contribute ``+0.0`` (IEEE: ``c + 0.0 == c``), matching
  the kernels' ``if nbytes:`` guards without branching;
* receive completion is the simulator's one rule:
  ``clock = max(clock, depart + head_latency(n)) + serial_time(n, P)``.

Because of this the equivalence tests assert **bit-identical** per-rank
clocks, message counts and byte totals against the thread/coop backends.

Lanes: ``L = 1`` ("lockstep") when every rank provably performs the same
charge sequence — constant block sizes, no fault plan, a lane-symmetric
algorithm — in which case one lane stands for all ``P`` ranks and even the
32K-rank evaluations cost milliseconds.  Otherwise ``L = P``.

What the backend can simulate: every registered alltoall(v) algorithm in
:mod:`repro.core.registry`, on the phantom wire, with ``delay``/``jitter``
fault rules and stragglers.  What it cannot: user programs with
payload-dependent control flow (it never materializes payloads), event
traces, crashes/drops/duplicates/reorder, or the reliability transport —
:func:`run_tensor` rejects those up front with a ``ValueError``.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from .communicator import MAX_USER_TAG
from .config import ExecutionConfig
from .faults import FaultInjector
from .metrics import (Histogram, RunMetrics, max_overlap,
                      max_overlap_by_group)
from .network import Envelope

__all__ = ["TensorProgram", "TensorAlltoall", "TensorAlltoallv",
           "run_tensor"]

_INTERNAL_TAG_STRIDE = 8   # mirrors communicator._INTERNAL_TAG_STRIDE
_FOLD_CHUNK = 512          # accumulate block width for per-lane folds
_CONST_CHUNK = 1 << 16     # accumulate width for repeated-constant folds

#: Node-aware kernels whose leader/member programs diverge whenever the
#: machine has more than one rank per node.
_LOCALITY_ALGORITHMS = ("locality_padded_bruck", "locality_two_phase_bruck")


def _timing():
    # Deferred: repro.timing's package __init__ pulls in modules that read
    # repro.simmpi attributes, so importing it at module load would cycle.
    from ..timing import engine
    return engine


def _core_common():
    from ..core import common
    return common


# ======================================================================
# vectorized metrics accumulation
# ======================================================================

#: Power-of-two bucket edges: ``searchsorted(_P2, v, 'left')`` equals the
#: scalar registry's ``(v - 1).bit_length() if v > 0 else 0``.
_P2_TABLE = 1 << np.arange(63, dtype=np.int64)


class _TensorMetrics:
    """Lane-vector metrics accumulation for the tensor engine.

    Produces the same :class:`~repro.simmpi.metrics.RunMetrics` snapshot
    shape (and, at matching P, the same bits) as the threads/coop
    registry.  Two storage regimes mirror the engine's lane regimes:

    * ``L == 1`` (lockstep): every exchange contributes one **pattern
      event** ``(offset, tag, depart, landing)`` standing for ``P``
      identical messages, one per link ``(r, (r + offset) % P)``.  The
      per-link table expands offsets at snapshot time, so memory is
      O(steps + distinct_offsets × P) — practical at 32K ranks for the
      log-step Bruck family, not for the P² links of spread-out fanouts.
    * ``L == P``: columnar ``(src, dst, tag, nbytes, depart, landing)``
      chunks, grouped with one sort at snapshot time.

    Wait totals accumulate per lane in program order — the identical
    float additions each coop rank performs — and are combined with
    ``math.fsum`` exactly like the registry.  Attribution bucket vectors
    (overhead / transmit / congestion / fault / wait) feed the
    critical-path engine; they are advisory sums, made exact against the
    makespan by residual normalization in ``critical_path``.
    """

    def __init__(self, p: int, L: int) -> None:
        self.p = p
        self.L = L
        self.hist_counts = np.zeros(64, dtype=np.int64)
        self.hist_total = 0
        self.hist_n = 0
        self.max_nbytes = 0
        if L == 1:
            #: off -> [messages, nbytes] totals per link of that offset.
            self.pat_link: Dict[int, List[int]] = {}
            self.pat_events: List[Tuple[int, int, float, float]] = []
        else:
            self.ex_src: List[np.ndarray] = []
            self.ex_dst: List[np.ndarray] = []
            self.ex_tag: List[np.ndarray] = []
            self.ex_nbytes: List[np.ndarray] = []
            self.ex_start: List[np.ndarray] = []
            self.ex_end: List[np.ndarray] = []
        self.step_tot: Dict[int, List[int]] = {}
        self.step_qw_max: Dict[int, float] = {}
        self.qw_total = np.zeros(L)
        self.qw_max = np.zeros(L)
        self.rw_total = np.zeros(L)
        self.rw_max = np.zeros(L)
        self.phase_totals: Dict[str, np.ndarray] = {}
        self.coll_totals: Dict[str, np.ndarray] = {}
        self.fault_counts: Dict[str, int] = {}
        self.delay_by_rank = np.zeros(p)
        # Attribution raw buckets (per lane) + the coarse step log
        # (tag, phase, end clock, slowest rank) for the critical path.
        self.attr_overhead = np.zeros(L)
        self.attr_transmit = np.zeros(L)
        self.attr_congestion = np.zeros(L)
        self.attr_fault = np.zeros(L)
        self.attr_wait = np.zeros(L)
        self.step_log: List[Tuple[int, Optional[str], float, int]] = []

    # -- per-event hooks -------------------------------------------------
    def _hist_const(self, nbytes: int, count: int) -> None:
        b = int(np.searchsorted(_P2_TABLE, nbytes, side="left"))
        self.hist_counts[b] += count
        self.hist_total += nbytes * count
        self.hist_n += count
        if nbytes > self.max_nbytes:
            self.max_nbytes = nbytes

    def _hist_vec(self, nb: np.ndarray) -> None:
        buckets = np.searchsorted(_P2_TABLE, nb, side="left")
        np.add.at(self.hist_counts, buckets, 1)
        self.hist_total += int(nb.sum())
        self.hist_n += len(nb)
        mx = int(nb.max()) if len(nb) else 0
        if mx > self.max_nbytes:
            self.max_nbytes = mx

    def _note_step(self, tag: int, messages: int, nbytes: int) -> None:
        tot = self.step_tot.get(tag)
        if tot is None:
            tot = self.step_tot[tag] = [0, 0]
        tot[0] += messages
        tot[1] += nbytes

    def _note_waits(self, tag: int, qw: np.ndarray, rw: np.ndarray,
                    sel=None) -> None:
        if sel is None:
            self.qw_total += qw
            np.maximum(self.qw_max, qw, out=self.qw_max)
            self.rw_total += rw
            np.maximum(self.rw_max, rw, out=self.rw_max)
        else:
            self.qw_total[sel] += qw
            self.qw_max[sel] = np.maximum(self.qw_max[sel], qw)
            self.rw_total[sel] += rw
            self.rw_max[sel] = np.maximum(self.rw_max[sel], rw)
        top = float(qw.max()) if len(qw) else 0.0
        if top > self.step_qw_max.get(tag, 0.0):
            self.step_qw_max[tag] = top

    def on_fault(self, kind: str, delay: float, rank: int) -> None:
        self.fault_counts[kind] = self.fault_counts.get(kind, 0) + 1
        if delay:
            self.delay_by_rank[rank] += delay

    def on_exchange_complete(self, eng: "_Engine", dst_off: int, tag: int,
                             nbytes, departs: np.ndarray, head: np.ndarray,
                             serial: np.ndarray, intra) -> None:
        """One all-lanes exchange completion (``_Engine.complete``)."""
        clocks = eng.clocks
        qw = np.maximum(0.0, clocks - head)
        rw = np.maximum(0.0, head - clocks)
        self._note_waits(tag, qw, rw)
        landing = np.maximum(clocks, head)
        nb = np.broadcast_to(np.asarray(nbytes, dtype=np.int64), (self.L,))
        if self.L == 1:
            off = dst_off % self.p
            n0 = int(nb[0])
            lk = self.pat_link.get(off)
            if lk is None:
                lk = self.pat_link[off] = [0, 0]
            lk[0] += 1
            lk[1] += n0
            dep = np.asarray(departs, dtype=np.float64).reshape(-1)
            self.pat_events.append((off, tag, float(dep[0]),
                                    float(landing[0])))
            self._note_step(tag, self.p, self.p * n0)
            self._hist_const(n0, self.p)
        else:
            src = (eng.lane - dst_off) % self.p
            self.ex_src.append(src)
            self.ex_dst.append(eng.lane.copy())
            self.ex_tag.append(np.full(self.L, tag, dtype=np.int64))
            self.ex_nbytes.append(np.asarray(nb, dtype=np.int64).copy())
            self.ex_start.append(
                np.broadcast_to(np.asarray(departs, dtype=np.float64),
                                (self.L,)).copy())
            self.ex_end.append(landing)
            self._note_step(tag, self.L, int(nb.sum()))
            self._hist_vec(nb)
        self._attr_serial(eng, nb, serial, intra, rw)

    def on_subset_complete(self, eng: "_Engine", sel: np.ndarray, src,
                           tag: int, nbytes, departs, head: np.ndarray,
                           serial, intra) -> None:
        """A lane-subset completion (``_Engine.complete_at``)."""
        clocks = eng.clocks[sel]
        qw = np.maximum(0.0, clocks - head)
        rw = np.maximum(0.0, head - clocks)
        self._note_waits(tag, qw, rw, sel=sel)
        landing = np.maximum(clocks, head)
        k = len(sel)
        nb = np.broadcast_to(np.asarray(nbytes, dtype=np.int64), (k,))
        srcb = np.broadcast_to(np.asarray(src if src is not None else 0,
                                          dtype=np.int64), (k,))
        self.ex_src.append(srcb.copy())
        self.ex_dst.append(np.asarray(sel, dtype=np.int64).copy())
        self.ex_tag.append(np.full(k, tag, dtype=np.int64))
        self.ex_nbytes.append(nb.copy())
        self.ex_start.append(
            np.broadcast_to(np.asarray(departs, dtype=np.float64),
                            (k,)).copy())
        self.ex_end.append(landing)
        self._note_step(tag, k, int(nb.sum()))
        self._hist_vec(nb)
        uncong = _timing().serial_time_vec(eng.machine, nbytes, 1, intra)
        self.attr_transmit[sel] += uncong
        self.attr_congestion[sel] += serial - uncong
        self.attr_fault[sel] += serial * eng.straggle[sel] - serial
        self.attr_wait[sel] += rw

    def _attr_serial(self, eng: "_Engine", nb, serial, intra,
                     rw: np.ndarray) -> None:
        uncong = _timing().serial_time_vec(eng.machine, nb, 1, intra)
        self.attr_transmit += uncong
        self.attr_congestion += serial - uncong
        self.attr_fault += serial * eng.straggle - serial
        self.attr_wait += rw

    def on_step_end(self, eng: "_Engine", tag: int) -> None:
        clocks = eng.clocks
        rank = 0 if self.L == 1 else int(np.argmax(clocks))
        self.step_log.append((tag, eng.current_phase,
                              float(clocks[rank] if self.L > 1
                                    else clocks[0]), rank))

    def on_phase_end(self, totals: Dict[str, np.ndarray], name: str,
                     start: np.ndarray, end: np.ndarray) -> None:
        # Same left-to-right float ops as MetricsTrace.phase_end:
        # (total + end) - start, per lane.
        totals[name] = totals.get(name, 0.0) + end - start

    # -- snapshot ---------------------------------------------------------
    def snapshot(self, eng: "_Engine") -> RunMetrics:
        p = self.p
        hist = Histogram("message_nbytes")
        hist.add_bucket_counts(self.hist_counts, self.hist_total,
                               self.max_nbytes, self.hist_n)
        per_link: Dict[Tuple[int, int], Tuple[int, int, int]] = {}
        if self.L == 1:
            if self.pat_events:
                offs = np.array([e[0] for e in self.pat_events],
                                dtype=np.int64)
                tags = np.array([e[1] for e in self.pat_events],
                                dtype=np.int64)
                starts = np.array([e[2] for e in self.pat_events])
                ends = np.array([e[3] for e in self.pat_events])
                w = np.full(len(offs), p, dtype=np.int64)
                global_max = max_overlap(starts, ends, w)
                off_max = max_overlap_by_group(offs, starts, ends)
                tag_max = max_overlap_by_group(tags, starts, ends, w)
            else:
                global_max, off_max, tag_max = 0, {}, {}
            for off, (mcnt, mbytes) in self.pat_link.items():
                mif = off_max.get(off, 0)
                for r in range(p):
                    per_link[(r, (r + off) % p)] = (mcnt, mbytes, mif)
        else:
            if self.ex_src:
                src = np.concatenate(self.ex_src)
                dst = np.concatenate(self.ex_dst)
                tags = np.concatenate(self.ex_tag)
                nb = np.concatenate(self.ex_nbytes)
                starts = np.concatenate(self.ex_start)
                ends = np.concatenate(self.ex_end)
                gid = src * p + dst
                global_max = max_overlap(starts, ends)
                link_max = max_overlap_by_group(gid, starts, ends)
                tag_max = max_overlap_by_group(tags, starts, ends)
                order = np.argsort(gid, kind="stable")
                gs = gid[order]
                bounds = np.flatnonzero(np.r_[True, gs[1:] != gs[:-1]])
                counts = np.diff(np.r_[bounds, len(gs)])
                link_bytes = np.add.reduceat(nb[order], bounds)
                for g, c, b in zip(gs[bounds], counts, link_bytes):
                    g = int(g)
                    per_link[(g // p, g % p)] = (int(c), int(b),
                                                 link_max[g])
            else:
                global_max, tag_max = 0, {}
        per_step = {
            tag: (m, b, tag_max.get(tag, 0),
                  self.step_qw_max.get(tag, 0.0))
            for tag, (m, b) in self.step_tot.items()
        }
        rep = p if self.L == 1 else 1
        return RunMetrics(
            nprocs=p,
            total_messages=eng.total_messages,
            total_bytes=eng.total_bytes,
            message_size_buckets=hist.buckets(),
            max_message_nbytes=hist.max_value,
            max_in_flight=global_max,
            per_link=per_link,
            per_step=per_step,
            queue_wait_total=math.fsum(
                [float(v) for v in self.qw_total] * rep),
            queue_wait_max=float(self.qw_max.max()),
            recv_wait_total=math.fsum(
                [float(v) for v in self.rw_total] * rep),
            recv_wait_max=float(self.rw_max.max()),
            phase_times={name: float(np.max(v))
                         for name, v in self.phase_totals.items()},
            collective_times={name: float(np.max(v))
                              for name, v in self.coll_totals.items()},
            fault_counts=dict(self.fault_counts),
            injected_delay_total=math.fsum(
                float(v) for v in self.delay_by_rank),
        )

    def attribution(self, eng: "_Engine") -> Dict[str, List[float]]:
        """Per-rank raw attribution bucket sums for ``critical_path``."""
        rep = self.p if self.L == 1 else 1

        def expand(vec: np.ndarray) -> List[float]:
            return [float(v) for v in vec] * rep

        return {
            "overhead": expand(self.attr_overhead),
            "transmit": expand(self.attr_transmit),
            "congestion": expand(self.attr_congestion),
            "fault_delay": expand(self.attr_fault),
            "queue_wait": expand(self.attr_wait),
            "injected_delay": [float(v) for v in self.delay_by_rank],
            "step_log": list(self.step_log),
        }


# ======================================================================
# the lane engine
# ======================================================================

class _Engine:
    """Per-rank clocks and charge accounting as ``(L,)`` lane vectors.

    ``L == 1``: every rank performs the identical charge sequence, one
    lane stands for all of them (accounting is scaled by ``P``).
    ``L == P``: one lane per rank — required whenever sizes, stragglers or
    fault decisions differ across ranks.
    """

    def __init__(self, nprocs: int, machine,
                 injector: Optional[FaultInjector], lockstep: bool) -> None:
        self.p = int(nprocs)
        self.machine = machine
        self.injector = injector
        self.L = 1 if lockstep else self.p
        self.lane = np.arange(self.L, dtype=np.int64)
        self.clocks = np.zeros(self.L, dtype=np.float64)
        if injector is not None:
            straggle = np.array([injector.straggle_factor(r)
                                 for r in range(self.p)], dtype=np.float64)
        else:
            straggle = np.ones(self.L, dtype=np.float64)
        self.straggle = straggle
        # The per-op CPU overheads with the straggler multiplier folded in
        # (the scalar simulator computes ``o * straggle`` afresh each op;
        # the product is the same float either way).
        self._o_send = machine.o_send * straggle
        self._o_recv = machine.o_recv * straggle
        self._o_send_intra = machine.o_send_intra * straggle
        self._o_recv_intra = machine.o_recv_intra * straggle
        # Tier structure of the two-level hierarchy: with every pair on
        # one tier (flat model, or a single-node job) lockstep lanes stay
        # sound; otherwise per-(lane, peer) masks select the tier.
        self._tier_uniform = machine.ppn <= 1 or machine.ppn >= self.p
        self._all_intra = machine.ppn > 1 and machine.ppn >= self.p
        self.total_messages = 0
        self.total_bytes = 0
        self._coll_seq = 0
        self._phases: List[str] = []
        #: Attached by ``run_tensor`` when ``config.metrics_on``.
        self.metrics: Optional[_TensorMetrics] = None

    # -- phases / tags --------------------------------------------------
    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        self._phases.append(name)
        mt = self.metrics
        start = self.clocks.copy() if mt is not None else None
        try:
            yield
        finally:
            self._phases.pop()
            if mt is not None:
                mt.on_phase_end(mt.phase_totals, name, start, self.clocks)

    @contextmanager
    def collective(self, name: str) -> Iterator[None]:
        """Time an internal collective (does not enter the phase stack,
        matching ``Communicator._collective``)."""
        mt = self.metrics
        start = self.clocks.copy() if mt is not None else None
        try:
            yield
        finally:
            if mt is not None:
                mt.on_phase_end(mt.coll_totals, name, start, self.clocks)

    @property
    def current_phase(self) -> Optional[str]:
        return self._phases[-1] if self._phases else None

    def collective_tag(self) -> int:
        """Reserve the next internal collective tag block (same allocation
        sequence as ``Communicator._next_coll_tags``)."""
        tag = MAX_USER_TAG + self._coll_seq * _INTERNAL_TAG_STRIDE
        self._coll_seq += 1
        return tag

    # -- tier selection (two-level hierarchy) ---------------------------
    def _intra_pair(self, src, dst):
        """``machine.is_intra`` vectorized over rank arrays; the scalar
        ``False`` on the flat model (so flat-path arithmetic is untouched)."""
        m = self.machine
        if m.ppn <= 1:
            return False
        return (np.asarray(src) // m.ppn) == (np.asarray(dst) // m.ppn)

    def intra_to_off(self, dst_off: int):
        """Tier of each lane's send to ``(lane + dst_off) % P``: a scalar
        bool when every pair shares one tier, else an ``(L,)`` mask (which
        requires one lane per rank — enforced by ``lockstep_ok``)."""
        m = self.machine
        if m.ppn <= 1:
            return False
        if m.ppn >= self.p:
            return True
        return ((self.lane // m.ppn)
                == (((self.lane + dst_off) % self.p) // m.ppn))

    def _o_send_sel(self, intra):
        if intra is False:
            return self._o_send
        if intra is True:
            return self._o_send_intra
        return np.where(intra, self._o_send_intra, self._o_send)

    def _o_recv_sel(self, intra):
        if intra is False:
            return self._o_recv
        if intra is True:
            return self._o_recv_intra
        return np.where(intra, self._o_recv_intra, self._o_recv)

    # -- local charges --------------------------------------------------
    def charge_compute(self, seconds: float) -> None:
        self.clocks = self.clocks + seconds

    def compute_at(self, sel: np.ndarray, seconds: float) -> None:
        """``charge_compute`` on a lane subset (e.g. leaders only)."""
        self.clocks[sel] = self.clocks[sel] + seconds

    def charge_copy(self, nbytes) -> None:
        """One ``charge_copy`` per lane; zero/negative sizes are free."""
        eng = _timing()
        self.clocks = self.clocks + eng.copy_time_vec(self.machine, nbytes)

    def charge_datatype(self, nblocks, nbytes) -> None:
        """One datatype pack/unpack charge per lane."""
        eng = _timing()
        self.clocks = self.clocks + eng.datatype_time_vec(
            self.machine, nblocks, nbytes)

    def charge_copies(self, counts) -> None:
        """Sequential per-block copies, exactly ``Communicator.charge_copies``.

        ``counts`` is a shared 1-D sequence (same for every lane) or a
        per-lane ``(L, k)`` matrix.  Zero entries fold as ``+0.0``.
        """
        arr = np.asarray(counts, dtype=np.int64)
        if arr.ndim == 1:
            arr = arr[None, :]
        if arr.shape[1] == 0:
            return
        m = self.machine
        times = np.where(arr > 0,
                         m.kappa_mem + m.gamma_mem * arr.astype(np.float64),
                         0.0)
        self.clocks = _fold(self.clocks, times)

    # -- message posting / completion -----------------------------------
    def _account(self, nbytes, messages: int) -> None:
        nb = np.asarray(nbytes)
        self.total_messages += messages
        if nb.ndim == 0:
            self.total_bytes += messages * int(nb)
        else:
            # one entry per lane; a single lane stands for all P ranks
            self.total_bytes += int(nb.sum()) * (self.p // self.L)

    def _with_extras(self, dst_off: int, nbytes, tag: int,
                     departs: np.ndarray) -> np.ndarray:
        """Run every lane's envelope through the fault engine (delay rules
        shift the departure the receiver sees; the sender clock is not
        affected, exactly as in ``Communicator._post_envelope``)."""
        out = departs.astype(np.float64).copy()
        phase = self.current_phase
        mt = self.metrics
        nbl = np.broadcast_to(np.asarray(nbytes), (self.p,))
        for r in range(self.p):
            env = Envelope(r, (r + dst_off) % self.p, tag, None,
                           float(out[r]), int(nbl[r]))
            _, records = self.injector.on_post(env, phase)
            if records and mt is not None:
                for rec in records:
                    mt.on_fault(rec.kind, rec.delay, rec.src)
            out[r] = env.depart
        return out

    def post(self, dst_off: int, nbytes, tag: int) -> np.ndarray:
        """Every rank posts one isend to ``(rank + dst_off) % P``.

        Returns the per-lane departure clocks the *receivers* will see.
        """
        o = self._o_send_sel(self.intra_to_off(dst_off))
        self.clocks = self.clocks + o
        if self.metrics is not None:
            self.metrics.attr_overhead += o
        self._account(nbytes, self.p)
        if self.injector is not None:
            return self._with_extras(dst_off, nbytes, tag, self.clocks)
        return self.clocks.copy()

    def recv_post(self, intra=False) -> None:
        """Every rank posts one irecv (the o_recv charge, on the tier its
        source selects)."""
        o = self._o_recv_sel(intra)
        self.clocks = self.clocks + o
        if self.metrics is not None:
            self.metrics.attr_overhead += o

    def complete(self, departs, nbytes, intra=False, tag=None,
                 dst_off=None) -> None:
        """Land one message per lane: the simulator's receive rule.

        ``tag``/``dst_off`` (when given) record the completion in the
        attached metrics store; they never change the clock arithmetic.
        """
        eng = _timing()
        head = np.asarray(departs) + eng.head_latency_vec(self.machine,
                                                          nbytes, intra)
        serial = eng.serial_time_vec(self.machine, nbytes, self.p, intra)
        mt = self.metrics
        if mt is not None and tag is not None:
            mt.on_exchange_complete(self, dst_off, tag, nbytes, departs,
                                    head, serial, intra)
        self.clocks = np.maximum(self.clocks, head) + serial * self.straggle
        if mt is not None and tag is not None:
            mt.on_step_end(self, tag)

    def from_src(self, values, dst_off: int):
        """Re-index per-sender values to the receiver lane for an exchange
        where rank ``r`` sends to ``(r + dst_off) % P`` — the receiver's
        partner is ``(r - dst_off) % P``.  Lockstep lanes pass through."""
        v = np.asarray(values)
        if self.L == 1 or v.ndim == 0:
            return v
        return v[(self.lane - dst_off) % self.p]

    def exchange(self, dst_off: int, nbytes, tag: int) -> None:
        """One ``sendrecv``: isend → irecv → completion, all lanes."""
        departs = self.post(dst_off, nbytes, tag)
        intra = self.intra_to_off(dst_off)
        # Receiver r's partner is (r - dst_off) % P, whose *send* mask
        # entry describes exactly that pair — so the receive-side tier is
        # the send mask re-indexed to the receiver lane.
        intra_r = intra if isinstance(intra, bool) \
            else self.from_src(intra, dst_off)
        self.recv_post(intra_r)
        self.complete(self.from_src(departs, dst_off),
                      self.from_src(nbytes, dst_off), intra_r,
                      tag=tag, dst_off=dst_off)

    # -- collectives ----------------------------------------------------
    def allreduce_rounds(self) -> None:
        """Clock effect of a dissemination allreduce of one float64 (the
        ``max``/``min`` path every kernel uses): ``ceil(log2 P)`` pairwise
        8-byte control exchanges."""
        with self.collective("allreduce"):
            if self.p == 1:
                return
            tag = self.collective_tag()
            k = 1
            while k < self.p:
                self.exchange(k, 8, tag)
                k <<= 1

    def fanout(self, cols, tag: int) -> None:
        """The spread-out exchange: every rank posts ``P-1`` irecvs, then
        ``P-1`` isends (ascending offset), then completes the receives in
        posted order.  ``cols`` is a scalar (uniform) or an ``(L, P-1)``
        matrix with ``cols[r, off-1]`` = bytes rank ``r`` sends to
        ``(r + off) % P``.
        """
        p, L = self.p, self.L
        if p == 1:
            return
        cols = np.asarray(cols)
        self._account(cols, p * (p - 1))
        tiers = self._fanout_tiers()
        if tiers is None:
            recv_mask = None
            o_send_mat = np.broadcast_to(
                self._o_send_sel(self._all_intra)[:, None], (L, p - 1))
            o_recv_mat = np.broadcast_to(
                self._o_recv_sel(self._all_intra)[:, None], (L, p - 1))
        else:
            send_mask, recv_mask = tiers
            o_send_mat = np.where(send_mask, self._o_send_intra[:, None],
                                  self._o_send[:, None])
            o_recv_mat = np.where(recv_mask, self._o_recv_intra[:, None],
                                  self._o_recv[:, None])
        # All irecvs first: p-1 sequential o_recv charges per lane.
        self.clocks = _fold(self.clocks, o_recv_mat)
        # All isends: capture each post's departure.
        if self.injector is None:
            block = np.concatenate([self.clocks[:, None], o_send_mat],
                                   axis=1)
            acc = np.add.accumulate(block, axis=1)
            departs = acc[:, 1:]
            self.clocks = acc[:, -1].copy()
        else:
            departs = np.empty((L, p - 1), dtype=np.float64)
            colsb = (None if cols.ndim == 0
                     else np.broadcast_to(cols, (L, p - 1)))
            for off in range(1, p):
                self.clocks = self.clocks + o_send_mat[:, off - 1]
                nb = cols if cols.ndim == 0 else colsb[:, off - 1]
                departs[:, off - 1] = self._with_extras(off, nb, tag,
                                                        self.clocks)
        mt = self.metrics
        if mt is not None:
            mt.attr_overhead += (o_recv_mat.sum(axis=1)
                                 + o_send_mat.sum(axis=1))
        # Completions in posted (offset-ascending) order; rank r's off-th
        # receive is from src = (r - off) % P, which was src's off-th send.
        if L == 1 and self.injector is None and cols.ndim == 0:
            # Scalar fast path: pure-float replay of the completion loop
            # (identical IEEE ops; keeps 32K-rank fanouts in milliseconds).
            # Only reachable on a uniform tier (lockstep implies it).
            m = self.machine
            n = int(cols)
            head_l = m.head_latency(n, self._all_intra)
            serial = m.serial_time(n, p, self._all_intra)
            c = float(self.clocks[0])
            row = departs[0]
            if mt is None:
                for off in range(1, p):
                    arrive = float(row[off - 1]) + head_l
                    if c < arrive:
                        c = arrive
                    c = c + serial
            else:
                c = self._fanout_fast_metrics(mt, row, tag, n, c,
                                              head_l, serial)
            self.clocks = np.array([c])
            if mt is not None:
                mt.on_step_end(self, tag)
            return
        for off in range(1, p):
            src = (self.lane - off) % p
            d = departs[:, off - 1] if L == 1 else departs[src, off - 1]
            if cols.ndim == 0:
                nb = cols
            else:
                nb = cols[:, off - 1] if L == 1 else cols[src, off - 1]
            tier = self._all_intra if recv_mask is None \
                else recv_mask[:, off - 1]
            self.complete(d, nb, tier, tag=tag, dst_off=off)

    def _fanout_fast_metrics(self, mt: "_TensorMetrics", row: np.ndarray,
                             tag: int, n: int, c: float, head_l: float,
                             serial: float) -> float:
        """The fanout fast path's completion loop with inline pure-float
        metric accumulation — the same IEEE ops as the vector path (the
        lockstep lane's straggle factor is exactly 1.0)."""
        p = self.p
        m = self.machine
        qwt = float(mt.qw_total[0])
        qwm = float(mt.qw_max[0])
        rwt = float(mt.rw_total[0])
        rwm = float(mt.rw_max[0])
        sqw = mt.step_qw_max.get(tag, 0.0)
        rw_sum = 0.0
        events = mt.pat_events
        for off in range(1, p):
            dep = float(row[off - 1])
            arrive = dep + head_l
            qw = max(0.0, c - arrive)
            rw = max(0.0, arrive - c)
            qwt = qwt + qw
            if qw > qwm:
                qwm = qw
            if qw > sqw:
                sqw = qw
            rwt = rwt + rw
            if rw > rwm:
                rwm = rw
            rw_sum += rw
            lk = mt.pat_link.get(off)
            if lk is None:
                lk = mt.pat_link[off] = [0, 0]
            lk[0] += 1
            lk[1] += n
            if c < arrive:
                c = arrive
            events.append((off, tag, dep, c))
            c = c + serial
        mt.qw_total[0] = qwt
        mt.qw_max[0] = qwm
        mt.rw_total[0] = rwt
        mt.rw_max[0] = rwm
        if sqw > 0.0:
            mt.step_qw_max[tag] = sqw
        mt._note_step(tag, p * (p - 1), p * (p - 1) * n)
        mt._hist_const(n, p * (p - 1))
        uncong = m.serial_time(n, 1, self._all_intra)
        mt.attr_transmit += (p - 1) * uncong
        mt.attr_congestion += (p - 1) * (serial - uncong)
        mt.attr_wait += rw_sum
        return c

    def _fanout_tiers(self):
        """``(send, recv)`` tier masks of shape ``(L, p-1)`` for a
        spread-out fanout — ``send[l, off-1]`` covers ``l -> (l+off)%P``
        and ``recv[l, off-1]`` covers ``(l-off)%P -> l`` — or ``None``
        when every pair shares one tier."""
        if self._tier_uniform:
            return None
        ppn = self.machine.ppn
        offs = np.arange(1, self.p, dtype=np.int64)
        node = self.lane[:, None] // ppn
        send = node == (((self.lane[:, None] + offs[None, :]) % self.p)
                        // ppn)
        recv = node == (((self.lane[:, None] - offs[None, :]) % self.p)
                        // ppn)
        return send, recv

    # -- lane-subset operations (leader/member asymmetric algorithms) ---
    def post_at(self, sel: np.ndarray, dst, nbytes, tag: int) -> np.ndarray:
        """Lanes ``sel`` each post one isend to ``dst``; returns their
        departure clocks (aligned with ``sel``)."""
        intra = self._intra_pair(sel, dst)
        o = self._o_send[sel] if intra is False \
            else np.where(intra, self._o_send_intra[sel], self._o_send[sel])
        self.clocks[sel] = self.clocks[sel] + o
        mt = self.metrics
        if mt is not None:
            mt.attr_overhead[sel] += o
        nb = np.asarray(nbytes)
        self.total_messages += len(sel)
        self.total_bytes += (len(sel) * int(nb) if nb.ndim == 0
                             else int(nb.sum()))
        departs = self.clocks[sel].copy()
        if self.injector is not None:
            phase = self.current_phase
            dstb = np.broadcast_to(np.asarray(dst), (len(sel),))
            nbl = np.broadcast_to(nb, (len(sel),))
            for i, r in enumerate(np.asarray(sel)):
                env = Envelope(int(r), int(dstb[i]), tag, None,
                               float(departs[i]), int(nbl[i]))
                _, records = self.injector.on_post(env, phase)
                if records and mt is not None:
                    for rec in records:
                        mt.on_fault(rec.kind, rec.delay, rec.src)
                departs[i] = env.depart
        return departs

    def recv_at(self, sel: np.ndarray, src=None) -> None:
        """Lanes ``sel`` each post one irecv; ``src`` (scalar or aligned
        array) selects the tier of the expected sender."""
        intra = False if src is None else self._intra_pair(src, sel)
        o = self._o_recv[sel] if intra is False \
            else np.where(intra, self._o_recv_intra[sel], self._o_recv[sel])
        self.clocks[sel] = self.clocks[sel] + o
        if self.metrics is not None:
            self.metrics.attr_overhead[sel] += o

    def complete_at(self, sel: np.ndarray, departs, nbytes,
                    src=None, tag=None) -> None:
        intra = False if src is None else self._intra_pair(src, sel)
        eng = _timing()
        head = np.asarray(departs) + eng.head_latency_vec(self.machine,
                                                          nbytes, intra)
        serial = eng.serial_time_vec(self.machine, nbytes, self.p, intra)
        mt = self.metrics
        if mt is not None and tag is not None:
            mt.on_subset_complete(self, sel, src, tag, nbytes, departs,
                                  head, serial, intra)
        self.clocks[sel] = np.maximum(self.clocks[sel], head) \
            + serial * self.straggle[sel]
        if mt is not None and tag is not None:
            mt.on_step_end(self, tag)

    def copies_at(self, sel: np.ndarray, counts: np.ndarray) -> None:
        """Sequential copies on a lane subset: ``counts[i]`` is the block
        sequence of lane ``sel[i]`` (zero entries free)."""
        arr = np.asarray(counts, dtype=np.int64)
        if arr.ndim == 1:
            arr = arr[None, :]
        if arr.shape[1] == 0:
            return
        m = self.machine
        times = np.where(arr > 0,
                         m.kappa_mem + m.gamma_mem * arr.astype(np.float64),
                         0.0)
        self.clocks[sel] = _fold(self.clocks[sel], times)

    def const_copies_at(self, sel: np.ndarray, value: int,
                        counts) -> None:
        """``counts[i]`` sequential copies of the same ``value`` bytes on
        lane ``sel[i]``.  Lanes sharing (start clock, count) fold once —
        the repeated-constant fold is a pure function of both."""
        if value <= 0:
            return
        m = self.machine
        t = m.kappa_mem + m.gamma_mem * float(value)
        counts = np.broadcast_to(np.asarray(counts, dtype=np.int64),
                                 (len(sel),))
        start = self.clocks[sel]
        pairs = np.stack([start, counts.astype(np.float64)], axis=1)
        uniq, inv = np.unique(pairs, axis=0, return_inverse=True)
        folded = np.empty(len(uniq), dtype=np.float64)
        for i in range(len(uniq)):
            c = uniq[i, 0]
            remaining = int(uniq[i, 1])
            while remaining > 0:
                step = min(remaining, _CONST_CHUNK)
                c = float(np.add.accumulate(
                    np.concatenate(([c], np.full(step, t))))[-1])
                remaining -= step
            folded[i] = c
        self.clocks[sel] = folded[inv]

    # -- results --------------------------------------------------------
    def final_clocks(self) -> List[float]:
        if self.L == self.p:
            return [float(c) for c in self.clocks]
        return [float(self.clocks[0])] * self.p


def _fold(clocks: np.ndarray, times: np.ndarray) -> np.ndarray:
    """Left-fold ``times`` rows onto ``clocks`` with the same sequential
    float additions as a ``+=`` loop (``np.add.accumulate``), chunked to
    bound memory.  ``times`` has one row (shared) or one row per lane."""
    L = len(clocks)
    k = times.shape[1]
    c = clocks
    for s in range(0, k, _FOLD_CHUNK):
        width = min(_FOLD_CHUNK, k - s)
        chunk = np.broadcast_to(times[:, s:s + width], (L, width))
        block = np.concatenate([c[:, None], chunk], axis=1)
        c = np.add.accumulate(block, axis=1)[:, -1]
    return c


# ======================================================================
# block-size views
# ======================================================================

class _SizeView:
    """Uniform access to constant or per-pair block sizes.

    ``mat[i, j]`` is the bytes rank ``i`` sends to rank ``j`` (the
    ``block_size_matrix`` convention: ``sendcounts = mat[rank]``,
    ``recvcounts = mat[:, rank]``).
    """

    def __init__(self, sizes, p: int) -> None:
        self.p = p
        if isinstance(sizes, (int, np.integer)):
            if sizes < 0:
                raise ValueError(f"block size must be >= 0, got {sizes}")
            self.is_const = True
            self.const = int(sizes)
            self.mat = None
        else:
            mat = np.ascontiguousarray(np.asarray(sizes, dtype=np.int64))
            if mat.shape != (p, p):
                raise ValueError(
                    f"size matrix must have shape ({p}, {p}), "
                    f"got {mat.shape}")
            if (mat < 0).any():
                raise ValueError("size matrix entries must be >= 0")
            self.is_const = False
            self.const = None
            self.mat = mat

    def max(self) -> int:
        return self.const if self.is_const else int(self.mat.max(initial=0))

    def row(self):
        """Per-rank sendcounts: shared ``(p,)`` or per-lane ``(p, p)``."""
        if self.is_const:
            return np.full(self.p, self.const, dtype=np.int64)
        return self.mat

    def col(self):
        """Per-rank recvcounts: shared ``(p,)`` or per-lane ``(p, p)``."""
        if self.is_const:
            return np.full(self.p, self.const, dtype=np.int64)
        return np.ascontiguousarray(self.mat.T)

    def self_block(self):
        if self.is_const:
            return self.const
        return np.diagonal(self.mat).copy()

    def row_sum(self):
        return (self.const * self.p if self.is_const
                else self.mat.sum(axis=1))

    def col_sum(self):
        return (self.const * self.p if self.is_const
                else self.mat.sum(axis=0))

    def row_matrix(self, L: int) -> np.ndarray:
        """Mutable ``(L, p)`` working copy of each lane's sendcounts."""
        if self.is_const:
            return np.full((L, self.p), self.const, dtype=np.int64)
        return self.mat.copy()

    def col_matrix(self, L: int) -> np.ndarray:
        if self.is_const:
            return np.full((L, self.p), self.const, dtype=np.int64)
        return np.ascontiguousarray(self.mat.T)

    def fanout_cols(self, lane: np.ndarray):
        """Spread-out send sizes: scalar, or ``(L, p-1)`` with column
        ``off-1`` = bytes sent to ``(rank + off) % p``."""
        if self.is_const:
            return self.const
        offs = np.arange(1, self.p, dtype=np.int64)
        return self.mat[lane[:, None], (lane[:, None] + offs[None, :])
                        % self.p]


# ======================================================================
# algorithm evaluators (one per registered kernel)
# ======================================================================

def _eval_bruck(eng: _Engine, n: int, *, sign: int, use_dt: bool,
                final_rotation: bool, tag_base: int = 0,
                radix: int = 2) -> None:
    """basic/modified Bruck, memcpy or datatype build."""
    p = eng.p
    if n == 0:
        return
    common = _core_common()
    with eng.phase("initial_rotation"):
        eng.charge_copies(np.full(p, n, dtype=np.int64))
    with eng.phase("communication"):
        for sub in common.bruck_substeps(p, radix):
            m = len(sub.distances)
            if use_dt:
                eng.charge_datatype(m, m * n)
            else:
                eng.charge_copies(np.full(m, n, dtype=np.int64))
            eng.exchange(sign * sub.jump, m * n, tag_base + sub.index)
            if use_dt:
                eng.charge_datatype(m, m * n)
            else:
                eng.charge_copies(np.full(m, n, dtype=np.int64))
    if final_rotation:
        with eng.phase("final_rotation"):
            eng.charge_copy(p * n)
            eng.charge_copies(np.full(p, n, dtype=np.int64))


def _eval_zero_rotation(eng: _Engine, n: int, *, tag_base: int = 0,
                        radix: int = 2) -> None:
    p = eng.p
    if n == 0:
        return
    common = _core_common()
    with eng.phase("index_setup"):
        eng.charge_compute(p * 1.0e-9)
    eng.charge_copy(n)
    with eng.phase("communication"):
        for sub in common.bruck_substeps(p, radix):
            m = len(sub.distances)
            eng.charge_copies(np.full(m, n, dtype=np.int64))
            eng.exchange(-sub.jump, m * n, tag_base + sub.index)
            eng.charge_copies(np.full(m, n, dtype=np.int64))


def _eval_zero_copy(eng: _Engine, n: int, *, tag_base: int = 0) -> None:
    p = eng.p
    if n == 0:
        return
    common = _core_common()
    with eng.phase("initial_rotation"):
        eng.charge_copies(np.full(p, n, dtype=np.int64))
    with eng.phase("communication"):
        for k in range(common.num_steps(p)):
            dist = common.send_block_distances(k, p)
            if not dist:
                continue
            m = len(dist)
            # Remaining-hop parity split: mr blocks travel R→T, mt T→R.
            mr = sum(1 for i in dist
                     if int(i >> (k + 1)).bit_count() % 2 == 1)
            mt = m - mr
            if mr:
                eng.charge_datatype(mr, mr * n)   # pack from R
            if mt:
                eng.charge_datatype(mt, mt * n)   # pack from T
            eng.exchange(-(1 << k), m * n, tag_base + k)
            if mt:
                eng.charge_datatype(mt, mt * n)   # unpack into R
            if mr:
                eng.charge_datatype(mr, mr * n)   # unpack into T
    # no final rotation (modified orientation)


def _eval_spread_out(eng: _Engine, n: int, *, tag_base: int = 0) -> None:
    if n == 0:
        return
    with eng.phase("communication"):
        eng.charge_copy(n)
        eng.fanout(n, tag_base)


def _eval_vendor_alltoall(eng: _Engine, n: int) -> None:
    with eng.collective("alltoall"):
        tag = eng.collective_tag()
        eng.charge_copy(n)
        eng.fanout(n, tag)


def _eval_padded(eng: _Engine, sv: _SizeView, *, vendor: bool,
                 tag_base: int = 0, radix: int = 2) -> None:
    with eng.phase("padding"):
        eng.allreduce_rounds()
        max_n = sv.max()
        if max_n == 0:
            return
        eng.charge_copies(sv.row())
    if vendor:
        _eval_vendor_alltoall(eng, max_n)
    else:
        _eval_zero_rotation(eng, max_n, tag_base=tag_base, radix=radix)
    with eng.phase("scan"):
        eng.charge_copies(sv.col())


def _eval_two_phase(eng: _Engine, sv: _SizeView, *, tag_base: int = 0,
                    radix: int = 2) -> None:
    p, L = eng.p, eng.L
    common = _core_common()
    with eng.phase("setup"):
        eng.allreduce_rounds()
        eng.charge_compute(p * 1.0e-9)
        if sv.max() == 0:
            return
    cur = sv.row_matrix(L)          # working counts keyed by block index
    eng.charge_copy(sv.self_block())
    for sub in common.bruck_substeps(p, radix):
        m = len(sub.distances)
        d = np.asarray(sub.distances, dtype=np.int64)
        keys = (eng.lane[:, None] - d[None, :]) % p     # I[(dist+rank)%p]
        with eng.phase("metadata_exchange"):
            eng.exchange(-sub.jump, 4 * m, tag_base + 2 * sub.index)
        with eng.phase("data_exchange"):
            counts_out = np.take_along_axis(cur, keys, axis=1)
            eng.charge_copies(counts_out)
            out_total = counts_out.sum(axis=1)
            eng.exchange(-sub.jump, out_total, tag_base + 2 * sub.index + 1)
            counts_in = eng.from_src(counts_out, -sub.jump)
            eng.charge_copies(counts_in)
            np.put_along_axis(cur, keys, counts_in, axis=1)


def _eval_sloav(eng: _Engine, sv: _SizeView, *, tag_base: int = 0) -> None:
    p, L = eng.p, eng.L
    common = _core_common()
    with eng.phase("setup"):
        eng.charge_compute(p * 1.0e-9)
    cur = sv.row_matrix(L)           # block size at slot j's original dest
    temp_sizes = np.zeros((L, p), dtype=np.int64)
    stored = np.zeros(L, dtype=np.int64)
    capacity = np.full(L, 4096, dtype=np.int64)
    with eng.phase("communication"):
        for k in range(common.num_steps(p)):
            dist = common.send_block_distances(k, p)
            if not dist:
                continue
            m = len(dist)
            d = np.asarray(dist, dtype=np.int64)
            keys = (eng.lane[:, None] + d[None, :]) % p   # rot[j], slot j=i
            meta_out = np.take_along_axis(cur, keys, axis=1)
            data_total = meta_out.sum(axis=1)
            eng.charge_copy(4 * m)                    # meta into combined
            eng.charge_copies(meta_out)               # per-block pack
            eng.exchange(1 << k, 4, tag_base + 2 * k)             # header
            eng.exchange(1 << k, 4 * m + data_total,
                         tag_base + 2 * k + 1)                    # combined
            eng.charge_copy(4 * m)                    # meta out of combined
            meta_in = eng.from_src(meta_out, 1 << k)
            if L == 1:
                _sloav_store_scalar(eng, dist, k, meta_in[0],
                                    temp_sizes, stored, capacity)
            else:
                _sloav_store_vector(eng, dist, k, meta_in,
                                    temp_sizes, stored, capacity)
            np.put_along_axis(cur, keys, meta_in, axis=1)
    with eng.phase("final_rotation"):
        # Every slot 1..p-1 was stored at least once; rotate in slot order.
        eng.charge_copies(temp_sizes[:, 1:])
    with eng.phase("scan"):
        eng.charge_copy(sv.self_block())
        rc = sv.col_matrix(L)
        if L == 1:
            rc[0, 0] = 0      # the self entry is skipped (same fold on
        else:                 # every rank: the remaining values are equal)
            rc[eng.lane, eng.lane] = 0
        eng.charge_copies(rc)


def _sloav_store_scalar(eng: _Engine, dist, k: int, meta_row,
                        temp_sizes, stored, capacity) -> None:
    """Lockstep replay of ``_GrowableTemp.store`` with Python floats (the
    same ``copy_time`` expression, so bit-identical to the charge loop)."""
    m = eng.machine
    c = float(eng.clocks[0])
    st = int(stored[0])
    cap = int(capacity[0])
    low_mask = (1 << k) - 1
    for a, j in enumerate(dist):
        cnt = int(meta_row[a])
        first = (j & low_mask) == 0   # first visit <=> no lower bit set
        st += cnt - int(temp_sizes[0, j])
        sub = cnt if first else 0
        while st > cap:
            grow = st - sub
            if grow > 0:
                c += m.copy_time(grow)
            cap *= 2
        if cnt > 0:
            c += m.copy_time(cnt)
        temp_sizes[0, j] = cnt
    eng.clocks = np.array([c])
    stored[0] = st
    capacity[0] = cap


def _sloav_store_vector(eng: _Engine, dist, k: int, meta_in,
                        temp_sizes, stored, capacity) -> None:
    low_mask = (1 << k) - 1
    for a, j in enumerate(dist):
        cnt = meta_in[:, a]
        first = (j & low_mask) == 0
        stored += cnt - temp_sizes[:, j]
        sub = cnt if first else np.zeros_like(cnt)
        while True:
            mask = stored > capacity
            if not mask.any():
                break
            eng.charge_copy(np.where(mask, stored - sub, 0))
            capacity[mask] *= 2
        eng.charge_copy(cnt)
        temp_sizes[:, j] = cnt


def _eval_spread_out_v(eng: _Engine, sv: _SizeView, *,
                       tag_base: int = 0) -> None:
    eng.charge_copy(sv.self_block())
    eng.fanout(sv.fanout_cols(eng.lane), tag_base)


def _eval_vendor_alltoallv(eng: _Engine, sv: _SizeView) -> None:
    with eng.collective("alltoallv"):
        tag = eng.collective_tag()
        eng.charge_copy(sv.self_block())
        eng.fanout(sv.fanout_cols(eng.lane), tag)


def _eval_grouped(eng: _Engine, sv: _SizeView, *, group_size: int = 8,
                  tag_base: int = 0) -> None:
    """Leader-based grouped alltoallv.  Leaders and members run different
    programs, so this always evaluates with ``L == P`` lanes."""
    p = eng.p
    if eng.L != p:
        raise ValueError("grouped evaluation requires one lane per rank")
    g = min(group_size, p)
    n_groups = (p + g - 1) // g
    lane = eng.lane
    lead = (lane // g) * g
    leads = np.arange(n_groups, dtype=np.int64) * g
    gsize = np.minimum(leads + g, p) - leads
    members = lane[lane != lead]
    t = tag_base
    row_sum = np.broadcast_to(np.asarray(sv.row_sum()), (p,))
    col_sum = np.broadcast_to(np.asarray(sv.col_sum()), (p,))

    # -- phase 1: members funnel counts + data to their leader ----------
    with eng.phase("gather_to_leader"):
        d_up_counts = np.zeros(p, dtype=np.float64)
        d_up_data = np.zeros(p, dtype=np.float64)
        if members.size:
            d_up_counts[members] = eng.post_at(
                members, lead[members], 8 * p, t + 0)
            d_up_data[members] = eng.post_at(
                members, lead[members], row_sum[members], t + 1)
        for j in range(1, g):
            sel = leads[gsize > j]
            if sel.size == 0:
                continue
            mem = sel + j
            eng.recv_at(sel, mem)
            eng.complete_at(sel, d_up_counts[mem], 8 * p, mem, tag=t + 0)
            eng.recv_at(sel, mem)
            eng.complete_at(sel, d_up_data[mem], row_sum[mem], mem,
                            tag=t + 1)

    # -- phase 2: leaders exchange aggregated counts + blobs ------------
    with eng.phase("leader_exchange"):
        if n_groups > 1:
            gi = np.arange(n_groups)
            if sv.is_const:
                blob_bytes = sv.const * np.outer(gsize, gsize)
                # Build charges: for each og (ascending, skip own) the
                # kernel copies gsize[gi]*gsize[og] blocks of `const` —
                # all equal, so the fold over all og collapses into one.
                eng.const_copies_at(leads, sv.const, gsize * (p - gsize))
            else:
                S = sv.mat
                starts = leads
                blob_bytes = np.add.reduceat(
                    np.add.reduceat(S, starts, axis=0), starts, axis=1)
                member_idx = leads[:, None] + np.arange(g)[None, :]
                member_ok = np.arange(g)[None, :] < gsize[:, None]
                member_idx = np.where(member_ok, member_idx, 0)
                for og in range(n_groups):
                    sel_mask = gi != og
                    sel = leads[sel_mask]
                    dsts = np.arange(leads[og], leads[og] + gsize[og])
                    srcs = member_idx[sel_mask]            # (nsel, g)
                    ok = member_ok[sel_mask]
                    counts = S[srcs[:, :, None], dsts[None, None, :]]
                    counts = counts * ok[:, :, None]
                    eng.copies_at(sel, counts.reshape(len(sel), -1))
            # Post loop: per og (ascending, skip own) each leader isends
            # its count header then its blob.
            cnt_bytes = 8 * np.outer(gsize, gsize)
            Dc = np.zeros((n_groups, n_groups), dtype=np.float64)
            Db = np.zeros((n_groups, n_groups), dtype=np.float64)
            for og in range(n_groups):
                sel_mask = gi != og
                sel = leads[sel_mask]
                Dc[sel_mask, og] = eng.post_at(
                    sel, leads[og], cnt_bytes[sel_mask, og], t + 2)
                Db[sel_mask, og] = eng.post_at(
                    sel, leads[og], blob_bytes[sel_mask, og], t + 3)
            # Receive loop: per og ascending, counts then blob.
            for og in range(n_groups):
                sel_mask = gi != og
                sel = leads[sel_mask]
                eng.recv_at(sel, leads[og])
                eng.complete_at(sel, Dc[og, sel_mask],
                                cnt_bytes[og, sel_mask], leads[og],
                                tag=t + 2)
                eng.recv_at(sel, leads[og])
                eng.complete_at(sel, Db[og, sel_mask],
                                blob_bytes[og, sel_mask], leads[og],
                                tag=t + 3)

    # -- phase 3: leaders deliver; members receive and place ------------
    with eng.phase("scatter_from_leader"):
        d_down = np.zeros(p, dtype=np.float64)
        for j in range(g):
            sel = leads[gsize > j]
            if sel.size == 0:
                continue
            mem = sel + j
            # Blob build: one copy per own-group source block (ascending).
            if sv.is_const:
                eng.const_copies_at(sel, sv.const, gsize[gsize > j])
            else:
                own_idx = sel[:, None] + np.arange(g)[None, :]
                ok = np.arange(g)[None, :] < gsize[gsize > j][:, None]
                own_idx = np.where(ok, own_idx, 0)
                counts = sv.mat[own_idx, mem[:, None]] * ok
                eng.copies_at(sel, counts)
            if j == 0:
                # The leader's own slice: placed directly (every source
                # ascending), no send.
                if sv.is_const:
                    eng.const_copies_at(sel, sv.const,
                                        np.full(sel.size, p))
                else:
                    eng.copies_at(sel, np.ascontiguousarray(
                        sv.mat[:, mem].T))
            else:
                d_down[mem] = eng.post_at(sel, mem, col_sum[mem], t + 4)
        if members.size:
            eng.recv_at(members, lead[members])
            eng.complete_at(members, d_down[members], col_sum[members],
                            lead[members], tag=t + 4)
            if sv.is_const:
                eng.const_copies_at(members, sv.const,
                                    np.full(members.size, p))
            else:
                eng.copies_at(members, np.ascontiguousarray(
                    sv.mat[:, members].T))


def _node_layout(eng: _Engine):
    """Shared node geometry for the locality evaluators: ``(ppn, nn,
    leads, lsize, lead, members)`` with ``leads``/``lsize`` per node and
    ``lead`` per lane."""
    p = eng.p
    ppn = min(int(eng.machine.ppn), p)
    nn = (p + ppn - 1) // ppn
    leads = np.arange(nn, dtype=np.int64) * ppn
    lsize = np.minimum(leads + ppn, p) - leads
    lead = (eng.lane // ppn) * ppn
    members = eng.lane[eng.lane != lead]
    return ppn, nn, leads, lsize, lead, members


def _eval_locality_padded(eng: _Engine, sv: _SizeView, *,
                          tag_base: int = 0) -> None:
    """Node-aware padded Bruck (``core.nonuniform.locality``): on the
    flat machine this is exactly ``_eval_padded``; otherwise leaders and
    members run different programs (one lane per rank)."""
    p = eng.p
    if min(int(eng.machine.ppn), p) <= 1:
        return _eval_padded(eng, sv, vendor=False, tag_base=tag_base)
    if eng.L != p:
        raise ValueError(
            "locality evaluation requires one lane per rank")
    common = _core_common()
    ppn, nn, leads, lsize, lead, members = _node_layout(eng)
    K = common.num_steps(nn)
    t_up = tag_base
    t_step = tag_base + 1
    t_down = tag_base + 1 + K

    with eng.phase("padding"):
        eng.allreduce_rounds()
        max_n = sv.max()
        if max_n == 0:
            return
        eng.charge_copies(sv.row())

    with eng.phase("node_gather"):
        d_up = np.zeros(p, dtype=np.float64)
        if members.size:
            d_up[members] = eng.post_at(members, lead[members],
                                        p * max_n, t_up)
        for j in range(1, ppn):
            sel = leads[lsize > j]
            if sel.size == 0:
                continue
            mem = sel + j
            eng.recv_at(sel, mem)
            eng.complete_at(sel, d_up[mem], p * max_n, mem, tag=t_up)

    super_n = ppn * ppn * max_n
    with eng.phase("inter_bruck"):
        # Super-block build: per destination node h (ascending), one
        # hsize·N copy per member (ascending) — zero columns pad the
        # partial last node and fold free.
        base = np.repeat(lsize * max_n, ppn)               # (nn*ppn,)
        member_ok = np.arange(ppn)[None, :] < lsize[:, None]
        counts = base[None, :] * np.tile(member_ok, (1, nn))
        eng.copies_at(leads, counts)
        eng.compute_at(leads, nn * 1.0e-9)
        eng.const_copies_at(leads, super_n, 1)             # self super-block
        node_i = np.arange(nn, dtype=np.int64)
        for k in range(K):
            dist = common.send_block_distances(k, nn)
            if not dist:
                continue
            m = len(dist)
            dstL = ((node_i - (1 << k)) % nn) * ppn
            src_i = (node_i + (1 << k)) % nn
            srcL = src_i * ppn
            eng.const_copies_at(leads, super_n, m)
            D = eng.post_at(leads, dstL, m * super_n, t_step + k)
            eng.recv_at(leads, srcL)
            eng.complete_at(leads, D[src_i], m * super_n, srcL,
                            tag=t_step + k)
            eng.const_copies_at(leads, super_n, m)

    with eng.phase("node_scatter"):
        d_down = np.zeros(p, dtype=np.float64)
        for i in range(ppn):
            sel = leads[lsize > i]
            if sel.size == 0:
                continue
            eng.const_copies_at(sel, max_n, np.full(sel.size, p))
            if i > 0:
                mem = sel + i
                d_down[mem] = eng.post_at(sel, mem, p * max_n, t_down)
        if members.size:
            eng.recv_at(members, lead[members])
            eng.complete_at(members, d_down[members], p * max_n,
                            lead[members], tag=t_down)

    with eng.phase("scan"):
        eng.charge_copies(sv.col())


def _eval_locality_two_phase(eng: _Engine, sv: _SizeView, *,
                             tag_base: int = 0) -> None:
    """Node-aware two-phase Bruck (``core.nonuniform.locality``)."""
    p = eng.p
    if min(int(eng.machine.ppn), p) <= 1:
        return _eval_two_phase(eng, sv, tag_base=tag_base)
    if eng.L != p:
        raise ValueError(
            "locality evaluation requires one lane per rank")
    common = _core_common()
    ppn, nn, leads, lsize, lead, members = _node_layout(eng)
    K = common.num_steps(nn)
    t_up_c = tag_base
    t_up_d = tag_base + 1
    t_meta = tag_base + 2
    t_data = tag_base + 3
    t_down = tag_base + 2 + 2 * K
    S = (sv.mat if sv.mat is not None
         else np.full((p, p), sv.const, dtype=np.int64))
    row_sum = S.sum(axis=1)
    col_sum = S.sum(axis=0)

    with eng.phase("node_gather"):
        d_up_c = np.zeros(p, dtype=np.float64)
        d_up_d = np.zeros(p, dtype=np.float64)
        if members.size:
            d_up_c[members] = eng.post_at(members, lead[members],
                                          8 * p, t_up_c)
            d_up_d[members] = eng.post_at(members, lead[members],
                                          row_sum[members], t_up_d)
        for j in range(1, ppn):
            sel = leads[lsize > j]
            if sel.size == 0:
                continue
            mem = sel + j
            eng.recv_at(sel, mem)
            eng.complete_at(sel, d_up_c[mem], 8 * p, mem, tag=t_up_c)
            eng.recv_at(sel, mem)
            eng.complete_at(sel, d_up_d[mem], row_sum[mem], mem,
                            tag=t_up_d)

    with eng.phase("setup"):
        eng.compute_at(leads, nn * 1.0e-9)

    # Node-aggregated working sizes, exactly `cur` of _eval_two_phase
    # lifted to node granularity: curN[g, h] = current bytes of the
    # super-blob keyed h held at node g's leader.
    curN = np.add.reduceat(
        np.add.reduceat(S, leads, axis=0), leads, axis=1)
    # SEG[s, h]: bytes rank s sends into node h (one contiguous segment
    # of its packed row under the canonical layout).
    SEG = np.add.reduceat(S, leads, axis=1)
    member_rows = leads[:, None] + np.arange(ppn)[None, :]  # (nn, ppn)
    member_ok = np.arange(ppn)[None, :] < lsize[:, None]
    member_rows = np.where(member_ok, member_rows, 0)
    node_i = np.arange(nn, dtype=np.int64)
    for k in range(K):
        dist = common.send_block_distances(k, nn)
        if not dist:
            continue
        m = len(dist)
        d = np.asarray(dist, dtype=np.int64)
        keys = (node_i[:, None] - d[None, :]) % nn
        dstL = ((node_i - (1 << k)) % nn) * ppn
        src_i = (node_i + (1 << k)) % nn
        srcL = src_i * ppn
        with eng.phase("metadata_exchange"):
            Dm = eng.post_at(leads, dstL, 4 * ppn * ppn * m,
                             t_meta + 2 * k)
            eng.recv_at(leads, srcL)
            eng.complete_at(leads, Dm[src_i], 4 * ppn * ppn * m, srcL,
                            tag=t_meta + 2 * k)
        with eng.phase("data_exchange"):
            counts_out = np.take_along_axis(curN, keys, axis=1)
            # Pack charges, slot-ascending: a parked blob forwards as one
            # copy of its current total; a fresh one as one segment per
            # member (whether a super-blob has moved is a pure function
            # of its node distance and the step, identical on every
            # leader).
            pack = []
            for a in range(m):
                if common.block_moved_before(int(d[a]), k):
                    pack.append(counts_out[:, a:a + 1])
                else:
                    segs = SEG[member_rows, keys[:, a:a + 1]] * member_ok
                    pack.append(segs)
            eng.copies_at(leads, np.concatenate(pack, axis=1))
            out_total = counts_out.sum(axis=1)
            Dd = eng.post_at(leads, dstL, out_total, t_data + 2 * k)
            eng.recv_at(leads, srcL)
            eng.complete_at(leads, Dd[src_i], out_total[src_i], srcL,
                            tag=t_data + 2 * k)
            counts_in = counts_out[src_i]
            eng.copies_at(leads, counts_in)
            np.put_along_axis(curN, keys, counts_in, axis=1)

    with eng.phase("node_scatter"):
        d_down = np.zeros(p, dtype=np.float64)
        for i in range(ppn):
            sel = leads[lsize > i]
            if sel.size == 0:
                continue
            mem = sel + i
            col = np.ascontiguousarray(S[:, mem].T)
            eng.copies_at(sel, col)                # blob build
            if i == 0:
                eng.copies_at(sel, col)            # place own column
            else:
                d_down[mem] = eng.post_at(sel, mem, col_sum[mem], t_down)
        if members.size:
            eng.recv_at(members, lead[members])
            eng.complete_at(members, d_down[members], col_sum[members],
                            lead[members], tag=t_down)
            eng.copies_at(members, np.ascontiguousarray(S[:, members].T))


# ======================================================================
# program specs
# ======================================================================

class TensorProgram:
    """A declarative SPMD program the tensor backend can evaluate.

    The tensor backend cannot run arbitrary rank functions (it never
    executes per-rank Python), so ``run_spmd(..., backend="tensor")``
    takes one of these spec objects instead.  A spec is *also* callable as
    a normal rank program — ``fn(comm)`` runs the real registered kernel —
    so the identical object drives the threads/coop backends in
    equivalence tests.
    """

    kind: str = ""
    algorithm: str = ""

    def lockstep_ok(self, machine, nprocs: int) -> bool:
        """Whether one lane can stand for all ranks: requires an
        identical charge sequence on every rank, which on the hierarchical
        model additionally requires every pair to share one tier."""
        raise NotImplementedError

    def evaluate(self, eng: _Engine) -> None:
        raise NotImplementedError

    def __call__(self, comm) -> None:
        raise NotImplementedError


class TensorAlltoall(TensorProgram):
    """Uniform alltoall spec: ``algorithm`` over ``block_nbytes`` blocks."""

    kind = "uniform"

    _EVALS = {
        "basic_bruck": dict(sign=+1, use_dt=False, final_rotation=True),
        "basic_bruck_dt": dict(sign=+1, use_dt=True, final_rotation=True),
        "modified_bruck": dict(sign=-1, use_dt=False, final_rotation=False),
        "modified_bruck_dt": dict(sign=-1, use_dt=True,
                                  final_rotation=False),
    }

    def __init__(self, algorithm: str, block_nbytes: int, *,
                 radix: int = 2) -> None:
        from ..core.registry import get_algorithm
        algo = get_algorithm(algorithm, "uniform")  # KeyError if unknown
        if block_nbytes < 0:
            raise ValueError(
                f"block_nbytes must be >= 0, got {block_nbytes}")
        if radix != 2 and not algo.supports_radix:
            raise ValueError(
                f"algorithm {algorithm!r} does not support radix {radix}")
        self.algorithm = algorithm
        self.block_nbytes = int(block_nbytes)
        self.radix = int(radix)

    @property
    def max_block(self) -> int:
        """The workload's block size — the ledger/tuner N label."""
        return self.block_nbytes

    def lockstep_ok(self, machine, nprocs: int) -> bool:
        return machine.ppn <= 1 or machine.ppn >= nprocs

    def evaluate(self, eng: _Engine) -> None:
        n = self.block_nbytes
        if self.algorithm in self._EVALS:
            _eval_bruck(eng, n, radix=self.radix,
                        **self._EVALS[self.algorithm])
        elif self.algorithm == "zero_rotation_bruck":
            _eval_zero_rotation(eng, n, radix=self.radix)
        elif self.algorithm == "zero_copy_bruck_dt":
            _eval_zero_copy(eng, n)
        elif self.algorithm == "spread_out":
            _eval_spread_out(eng, n)
        elif self.algorithm == "vendor":
            _eval_vendor_alltoall(eng, n)
        else:  # pragma: no cover - registry and this table move together
            raise KeyError(
                f"no tensor evaluator for uniform algorithm "
                f"{self.algorithm!r}")

    def __call__(self, comm) -> None:
        from ..core.uniform import alltoall
        p = comm.size
        n = self.block_nbytes
        send = np.zeros(p * n, dtype=np.uint8)
        recv = np.zeros(p * n, dtype=np.uint8)
        alltoall(comm, send, recv, n, algorithm=self.algorithm,
                 radix=self.radix)

    def __repr__(self) -> str:
        extra = f", radix={self.radix}" if self.radix != 2 else ""
        return (f"TensorAlltoall({self.algorithm!r}, "
                f"block_nbytes={self.block_nbytes}{extra})")


class TensorAlltoallv(TensorProgram):
    """Non-uniform alltoallv spec.

    ``sizes`` is either one int (every pair exchanges that many bytes —
    the form that scales to 32K ranks, since no P×P matrix exists) or a
    ``(P, P)`` matrix with ``sizes[i, j]`` = bytes rank ``i`` sends to
    rank ``j``.
    """

    kind = "nonuniform"

    def __init__(self, algorithm: str, sizes,
                 group_size: int = 8, *, radix: int = 2) -> None:
        from ..core.registry import get_algorithm
        algo = get_algorithm(algorithm, "nonuniform")
        if radix != 2 and not algo.supports_radix:
            raise ValueError(
                f"algorithm {algorithm!r} does not support radix {radix}")
        self.algorithm = algorithm
        self.sizes = sizes
        self.group_size = int(group_size)
        self.radix = int(radix)

    @property
    def max_block(self) -> int:
        """The workload's max block size — the ledger/tuner N label."""
        if isinstance(self.sizes, (int, np.integer)):
            return int(self.sizes)
        return int(np.asarray(self.sizes).max(initial=0))

    def lockstep_ok(self, machine, nprocs: int) -> bool:
        if not isinstance(self.sizes, (int, np.integer)):
            return False
        if self.algorithm == "grouped":
            return False
        if machine.ppn > 1 and self.algorithm in _LOCALITY_ALGORITHMS:
            return False   # leader/member asymmetric once nodes exist
        return machine.ppn <= 1 or machine.ppn >= nprocs

    def evaluate(self, eng: _Engine) -> None:
        sv = _SizeView(self.sizes, eng.p)
        if self.algorithm == "padded_bruck":
            _eval_padded(eng, sv, vendor=False, radix=self.radix)
        elif self.algorithm == "padded_alltoall":
            _eval_padded(eng, sv, vendor=True)
        elif self.algorithm == "two_phase_bruck":
            _eval_two_phase(eng, sv, radix=self.radix)
        elif self.algorithm == "sloav":
            _eval_sloav(eng, sv)
        elif self.algorithm == "spread_out":
            _eval_spread_out_v(eng, sv)
        elif self.algorithm == "grouped":
            _eval_grouped(eng, sv, group_size=self.group_size)
        elif self.algorithm == "locality_padded_bruck":
            _eval_locality_padded(eng, sv)
        elif self.algorithm == "locality_two_phase_bruck":
            _eval_locality_two_phase(eng, sv)
        elif self.algorithm == "vendor":
            _eval_vendor_alltoallv(eng, sv)
        else:  # pragma: no cover - registry and this table move together
            raise KeyError(
                f"no tensor evaluator for nonuniform algorithm "
                f"{self.algorithm!r}")

    def size_matrix(self, p: int) -> np.ndarray:
        if isinstance(self.sizes, (int, np.integer)):
            return np.full((p, p), int(self.sizes), dtype=np.int64)
        return np.asarray(self.sizes, dtype=np.int64)

    def __call__(self, comm) -> None:
        from ..core.registry import get_algorithm
        from ..workloads import build_vargs
        mat = self.size_matrix(comm.size)
        args = build_vargs(comm.rank, mat)
        kwargs = ({"group_size": self.group_size}
                  if self.algorithm == "grouped" else {})
        algo = get_algorithm(self.algorithm, "nonuniform")
        if self.radix != 2:
            kwargs["radix"] = self.radix
        algo.fn(comm, *args.as_tuple(), **kwargs)

    def __repr__(self) -> str:
        shape = (self.sizes if isinstance(self.sizes, (int, np.integer))
                 else f"matrix{np.asarray(self.sizes).shape}")
        extra = f", radix={self.radix}" if self.radix != 2 else ""
        return f"TensorAlltoallv({self.algorithm!r}, sizes={shape}{extra})"


# ======================================================================
# the backend entry point
# ======================================================================

def run_tensor(fn, nprocs: int, config: ExecutionConfig, *,
               args: Sequence = (), rank_args=None):
    """Execute a :class:`TensorProgram` on the vectorized backend.

    Called by ``run_spmd`` when ``config.backend == "tensor"``.  Produces
    an :class:`~repro.simmpi.executor.SPMDResult` whose per-rank clocks
    and message/byte totals are bit-identical to the threads/coop backends
    on the phantom wire.
    """
    from .executor import SPMDResult

    if not isinstance(fn, TensorProgram):
        raise ValueError(
            f"backend='tensor' requires a TensorProgram spec "
            f"(TensorAlltoall / TensorAlltoallv), got {fn!r}")
    if args or rank_args is not None:
        raise ValueError(
            "backend='tensor' does not support args/rank_args: the "
            "TensorProgram spec carries all inputs")
    if config.wire != "phantom":
        raise ValueError(
            "backend='tensor' requires wire='phantom' (it never "
            "materializes payload bytes)")
    if config.events_on:
        raise ValueError(
            "backend='tensor' does not record per-event traces; "
            "use trace=False or trace='metrics'")
    if config.reliability is not None:
        raise ValueError(
            "backend='tensor' does not support the reliability transport")
    if config.on_fault != "fail-fast":
        raise ValueError(
            f"backend='tensor' supports on_fault='fail-fast' only, "
            f"got {config.on_fault!r}")

    plan = config.fault_plan
    injector: Optional[FaultInjector] = None
    if plan is not None and not plan.empty:
        if plan.crashes:
            raise ValueError(
                "backend='tensor' does not support crash rules")
        unsupported = sorted({r.kind for r in plan.rules} - {"delay"})
        if unsupported:
            raise ValueError(
                f"backend='tensor' supports 'delay' fault rules and "
                f"stragglers only; plan has {unsupported}")
        injector = FaultInjector(plan, seed=config.fault_seed)

    lockstep = injector is None and fn.lockstep_ok(config.machine, nprocs)
    eng = _Engine(nprocs, config.machine, injector, lockstep)
    if config.metrics_on:
        eng.metrics = _TensorMetrics(eng.p, eng.L)
    fn.evaluate(eng)

    metrics = None
    attribution = None
    if eng.metrics is not None:
        metrics = eng.metrics.snapshot(eng)
        attribution = eng.metrics.attribution(eng)

    return SPMDResult(
        nprocs=nprocs,
        machine=config.machine,
        returns=[None] * nprocs,
        clocks=eng.final_clocks(),
        traces=None,
        total_messages=eng.total_messages,
        total_bytes=eng.total_bytes,
        metrics=metrics,
        wire=config.wire,
        config=config,
        raw_attribution=attribution,
    )

"""Structured event tracing for the simulated MPI runtime.

Every communicator owns a tracer implementing :class:`TraceBase`.  The
default :class:`RankTrace` records the structural events of an algorithm
run as **typed events** — messages sent/received (with sizes, simulated
timestamps, and durations), local copies, datatype pack/unpack operations,
named phases (e.g. ``"initial rotation"`` / ``"comm"`` / ``"final
rotation"``, which the paper's Fig. 2b breaks down), and collective
invocations.

Traces serve four purposes in this repository:

1. **Cross-validation** — integration tests assert that the analytic
   schedules in :mod:`repro.schedule` predict exactly the message sequence
   the functional algorithms emit.
2. **Phase breakdowns** — the Fig. 2b benchmark reports per-phase times
   straight from phase events.
3. **Timeline export** — :mod:`repro.simmpi.trace_export` renders traces
   to the Chrome ``chrome://tracing`` / Perfetto JSON format.
4. **Debugging** — a mis-routed block shows up immediately as an
   unexpected ``(src, dst, tag, nbytes)`` tuple.

Every event carries its simulated ``start`` and ``end`` timestamps (and a
derived ``duration``), so exporters can draw slices without re-deriving
cost-model internals.  Events are deterministic: simulated clocks depend
only on the communication structure, never on OS scheduling.

The tracer API is the abstract base :class:`TraceBase`; besides
:class:`RankTrace` the runtime ships :class:`NullTrace` (tracing disabled)
and :class:`MetricsTrace` (aggregate counters only, no per-event storage —
used by ``run_spmd(..., trace="metrics")``).  Third-party tracers plug in
by subclassing :class:`TraceBase`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "SendEvent",
    "RecvEvent",
    "CopyEvent",
    "DatatypeEvent",
    "PhaseEvent",
    "CollectiveEvent",
    "FaultEvent",
    "TraceBase",
    "RankTrace",
    "NullTrace",
    "MetricsTrace",
]


@dataclass(frozen=True)
class SendEvent:
    """One message leaving this rank."""

    src: int
    dst: int
    tag: int
    nbytes: int
    depart: float  # simulated clock at which the message entered the wire
    begin: Optional[float] = None  # clock when the send was posted

    @property
    def start(self) -> float:
        """Simulated clock when the send was posted (injection start)."""
        return self.depart if self.begin is None else self.begin

    @property
    def end(self) -> float:
        return self.depart

    @property
    def duration(self) -> float:
        """Injection overhead charged to the sender (``o_send``)."""
        return self.end - self.start


@dataclass(frozen=True)
class RecvEvent:
    """One message retired by this rank."""

    src: int
    dst: int
    tag: int
    nbytes: int
    complete: float  # simulated clock after the receive completed
    begin: Optional[float] = None  # clock when the transfer started landing

    @property
    def start(self) -> float:
        """Simulated clock at which the message started landing."""
        return self.complete if self.begin is None else self.begin

    @property
    def end(self) -> float:
        return self.complete

    @property
    def duration(self) -> float:
        """Receiver occupancy while landing the payload (serial time)."""
        return self.end - self.start


@dataclass(frozen=True)
class CopyEvent:
    """One explicit local memory copy."""

    nbytes: int
    clock: float  # simulated clock after the copy
    begin: Optional[float] = None

    @property
    def start(self) -> float:
        return self.clock if self.begin is None else self.begin

    @property
    def end(self) -> float:
        return self.clock

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class DatatypeEvent:
    """One datatype-engine pack or unpack."""

    kind: str  # "pack" | "unpack"
    nblocks: int
    nbytes: int
    clock: float  # simulated clock after the operation
    begin: Optional[float] = None

    @property
    def start(self) -> float:
        return self.clock if self.begin is None else self.begin

    @property
    def end(self) -> float:
        return self.clock

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class PhaseEvent:
    """A named interval of simulated time on one rank."""

    name: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class CollectiveEvent:
    """One collective invocation (barrier/bcast/allreduce/…) on one rank."""

    name: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault or reliability action observed by this rank.

    ``kind`` is one of the injection kinds (``drop``, ``delay``,
    ``duplicate``, ``reorder``, ``retry``, ``lost``, ``crash``) or a
    receiver-side reliability action (``dup_suppressed``, ``stashed``,
    ``dead_recv``).  ``clock`` is the *simulated* time the event takes
    effect; senders record faults injected on their posts, receivers
    record suppression/degrade events on their receives — so per-rank
    fault sequences are deterministic, like every other trace channel.
    """

    kind: str
    src: int
    dst: int
    tag: int
    nbytes: int
    clock: float
    detail: str = ""

    @property
    def start(self) -> float:
        return self.clock

    @property
    def end(self) -> float:
        return self.clock

    @property
    def duration(self) -> float:
        return 0.0


class TraceBase(abc.ABC):
    """Abstract tracer interface the communicator drives.

    Subclass this to plug a custom tracer into ``run_spmd`` — every hook
    receives simulated-clock timestamps, and implementations must be cheap
    (they sit on the simulator's hot path) and thread-confined (only the
    owning rank's thread calls them, so no locking is required).
    """

    __slots__ = ("rank",)

    def __init__(self, rank: int) -> None:
        self.rank = rank

    # -- recording hooks (called by the communicator) -------------------
    @abc.abstractmethod
    def record_send(self, src: int, dst: int, tag: int, nbytes: int,
                    depart: float, begin: Optional[float] = None) -> None:
        """One message posted to the wire at simulated clock ``depart``."""

    @abc.abstractmethod
    def record_recv(self, src: int, dst: int, tag: int, nbytes: int,
                    complete: float, begin: Optional[float] = None) -> None:
        """One message retired at simulated clock ``complete``."""

    @abc.abstractmethod
    def record_copy(self, nbytes: int, clock: float,
                    begin: Optional[float] = None) -> None:
        """One explicit local copy finishing at simulated clock ``clock``."""

    @abc.abstractmethod
    def record_datatype(self, kind: str, nblocks: int, nbytes: int,
                        clock: float, begin: Optional[float] = None) -> None:
        """One datatype-engine pack/unpack finishing at ``clock``."""

    def record_fault(self, kind: str, src: int, dst: int, tag: int,
                     nbytes: int, clock: float, detail: str = "") -> None:
        """One injected fault / reliability action at simulated ``clock``.

        Concrete (default no-op) rather than abstract so tracers written
        before the fault engine existed keep working unchanged.
        """

    @abc.abstractmethod
    def phase_begin(self, name: str, clock: float) -> None:
        """Open a named phase interval."""

    @abc.abstractmethod
    def phase_end(self, clock: float) -> None:
        """Close the innermost open phase interval."""

    @abc.abstractmethod
    def collective_begin(self, name: str, clock: float) -> None:
        """Open a collective-invocation interval."""

    @abc.abstractmethod
    def collective_end(self, clock: float) -> None:
        """Close the innermost open collective interval."""


class RankTrace(TraceBase):
    """Mutable per-rank event log.

    Only the owning rank's thread appends to a :class:`RankTrace`, so no
    locking is needed.
    """

    __slots__ = ("sends", "recvs", "copies", "datatype_ops", "phases",
                 "collectives", "faults", "_phase_stack", "_coll_stack")

    def __init__(self, rank: int) -> None:
        super().__init__(rank)
        self.sends: List[SendEvent] = []
        self.recvs: List[RecvEvent] = []
        self.copies: List[CopyEvent] = []
        self.datatype_ops: List[DatatypeEvent] = []
        self.phases: List[PhaseEvent] = []
        self.collectives: List[CollectiveEvent] = []
        self.faults: List[FaultEvent] = []
        self._phase_stack: List[Tuple[str, float]] = []
        self._coll_stack: List[Tuple[str, float]] = []

    # -- recording hooks (called by the communicator) -------------------
    def record_send(self, src: int, dst: int, tag: int, nbytes: int,
                    depart: float, begin: Optional[float] = None) -> None:
        self.sends.append(SendEvent(src, dst, tag, nbytes, depart, begin))

    def record_recv(self, src: int, dst: int, tag: int, nbytes: int,
                    complete: float, begin: Optional[float] = None) -> None:
        self.recvs.append(RecvEvent(src, dst, tag, nbytes, complete, begin))

    def record_copy(self, nbytes: int, clock: float,
                    begin: Optional[float] = None) -> None:
        self.copies.append(CopyEvent(nbytes, clock, begin))

    def record_datatype(self, kind: str, nblocks: int, nbytes: int,
                        clock: float, begin: Optional[float] = None) -> None:
        self.datatype_ops.append(
            DatatypeEvent(kind, nblocks, nbytes, clock, begin))

    def record_fault(self, kind: str, src: int, dst: int, tag: int,
                     nbytes: int, clock: float, detail: str = "") -> None:
        self.faults.append(
            FaultEvent(kind, src, dst, tag, nbytes, clock, detail))

    def phase_begin(self, name: str, clock: float) -> None:
        self._phase_stack.append((name, clock))

    def phase_end(self, clock: float) -> None:
        name, start = self._phase_stack.pop()
        self.phases.append(PhaseEvent(name, start, clock))

    def collective_begin(self, name: str, clock: float) -> None:
        self._coll_stack.append((name, clock))

    def collective_end(self, clock: float) -> None:
        name, start = self._coll_stack.pop()
        self.collectives.append(CollectiveEvent(name, start, clock))

    # -- queries ---------------------------------------------------------
    @property
    def bytes_sent(self) -> int:
        return sum(e.nbytes for e in self.sends)

    @property
    def bytes_received(self) -> int:
        return sum(e.nbytes for e in self.recvs)

    @property
    def bytes_copied(self) -> int:
        return sum(e.nbytes for e in self.copies)

    @property
    def message_count(self) -> int:
        return len(self.sends)

    def phase_times(self) -> Dict[str, float]:
        """Total simulated time per phase name (summed over occurrences)."""
        out: Dict[str, float] = {}
        for ph in self.phases:
            out[ph.name] = out.get(ph.name, 0.0) + ph.duration
        return out

    def collective_times(self) -> Dict[str, float]:
        """Total simulated time per collective name."""
        out: Dict[str, float] = {}
        for ev in self.collectives:
            out[ev.name] = out.get(ev.name, 0.0) + ev.duration
        return out

    def messages(self) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(dst, tag, nbytes)`` for each send, in program order."""
        for e in self.sends:
            yield (e.dst, e.tag, e.nbytes)

    def events(self) -> List:
        """Every typed event of this rank, ordered by end timestamp."""
        all_events: List = []
        all_events.extend(self.sends)
        all_events.extend(self.recvs)
        all_events.extend(self.copies)
        all_events.extend(self.datatype_ops)
        all_events.extend(self.phases)
        all_events.extend(self.collectives)
        all_events.extend(self.faults)
        all_events.sort(key=lambda e: (e.end, e.start))
        return all_events

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RankTrace(rank={self.rank}, sends={len(self.sends)}, "
                f"recvs={len(self.recvs)}, copies={len(self.copies)}, "
                f"phases={len(self.phases)})")


class NullTrace(TraceBase):
    """A do-nothing stand-in used when tracing is disabled.

    Keeps the communicator's hot path free of ``if trace is not None``
    branches: every hook exists and is a constant-time no-op.
    """

    __slots__ = ()

    def record_send(self, *args: object, **kwargs: object) -> None:
        pass

    def record_recv(self, *args: object, **kwargs: object) -> None:
        pass

    def record_copy(self, *args: object, **kwargs: object) -> None:
        pass

    def record_datatype(self, *args: object, **kwargs: object) -> None:
        pass

    def phase_begin(self, *args: object, **kwargs: object) -> None:
        pass

    def phase_end(self, *args: object, **kwargs: object) -> None:
        pass

    def collective_begin(self, *args: object, **kwargs: object) -> None:
        pass

    def collective_end(self, *args: object, **kwargs: object) -> None:
        pass


class MetricsTrace(TraceBase):
    """Aggregate-only tracer: counters and phase totals, no event storage.

    Used by ``run_spmd(..., trace="metrics")`` for big sweeps where the
    per-event lists of :class:`RankTrace` would dominate memory, but phase
    breakdowns and per-rank totals are still wanted.
    """

    __slots__ = ("message_count", "bytes_sent", "recv_count",
                 "bytes_received", "copy_count", "bytes_copied",
                 "datatype_count", "datatype_bytes", "fault_counts",
                 "_phase_totals", "_coll_totals", "_phase_stack",
                 "_coll_stack")

    def __init__(self, rank: int) -> None:
        super().__init__(rank)
        self.message_count = 0
        self.bytes_sent = 0
        self.recv_count = 0
        self.bytes_received = 0
        self.copy_count = 0
        self.bytes_copied = 0
        self.datatype_count = 0
        self.datatype_bytes = 0
        self.fault_counts: Dict[str, int] = {}
        self._phase_totals: Dict[str, float] = {}
        self._coll_totals: Dict[str, float] = {}
        self._phase_stack: List[Tuple[str, float]] = []
        self._coll_stack: List[Tuple[str, float]] = []

    def record_send(self, src: int, dst: int, tag: int, nbytes: int,
                    depart: float, begin: Optional[float] = None) -> None:
        self.message_count += 1
        self.bytes_sent += nbytes

    def record_recv(self, src: int, dst: int, tag: int, nbytes: int,
                    complete: float, begin: Optional[float] = None) -> None:
        self.recv_count += 1
        self.bytes_received += nbytes

    def record_copy(self, nbytes: int, clock: float,
                    begin: Optional[float] = None) -> None:
        self.copy_count += 1
        self.bytes_copied += nbytes

    def record_datatype(self, kind: str, nblocks: int, nbytes: int,
                        clock: float, begin: Optional[float] = None) -> None:
        self.datatype_count += 1
        self.datatype_bytes += nbytes

    def record_fault(self, kind: str, src: int, dst: int, tag: int,
                     nbytes: int, clock: float, detail: str = "") -> None:
        self.fault_counts[kind] = self.fault_counts.get(kind, 0) + 1

    def phase_begin(self, name: str, clock: float) -> None:
        self._phase_stack.append((name, clock))

    def phase_end(self, clock: float) -> None:
        name, start = self._phase_stack.pop()
        self._phase_totals[name] = (self._phase_totals.get(name, 0.0)
                                    + clock - start)

    def collective_begin(self, name: str, clock: float) -> None:
        self._coll_stack.append((name, clock))

    def collective_end(self, clock: float) -> None:
        name, start = self._coll_stack.pop()
        self._coll_totals[name] = (self._coll_totals.get(name, 0.0)
                                   + clock - start)

    def phase_times(self) -> Dict[str, float]:
        """Total simulated time per phase name (summed over occurrences)."""
        return dict(self._phase_totals)

    def collective_times(self) -> Dict[str, float]:
        """Total simulated time per collective name."""
        return dict(self._coll_totals)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MetricsTrace(rank={self.rank}, "
                f"sends={self.message_count}, recvs={self.recv_count})")

"""Event tracing for the simulated MPI runtime.

Every communicator owns a :class:`RankTrace` that records the structural
events of an algorithm run: messages sent/received (with sizes and simulated
timestamps), local copies, datatype pack/unpack operations, and named phases
(e.g. ``"initial rotation"`` / ``"comm"`` / ``"final rotation"``, which the
paper's Fig. 2b breaks down).

Traces serve three purposes in this repository:

1. **Cross-validation** — integration tests assert that the analytic
   schedules in :mod:`repro.schedule` predict exactly the message sequence
   the functional algorithms emit.
2. **Phase breakdowns** — the Fig. 2b benchmark reports per-phase times
   straight from phase events.
3. **Debugging** — a mis-routed block shows up immediately as an unexpected
   ``(src, dst, tag, nbytes)`` tuple.

Tracing is cheap (appending small tuples) but can be disabled wholesale by
passing ``trace=False`` to the executor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

__all__ = [
    "SendEvent",
    "RecvEvent",
    "CopyEvent",
    "DatatypeEvent",
    "PhaseEvent",
    "RankTrace",
    "NullTrace",
]


@dataclass(frozen=True)
class SendEvent:
    """One message leaving this rank."""

    src: int
    dst: int
    tag: int
    nbytes: int
    depart: float  # simulated clock at which the message entered the wire


@dataclass(frozen=True)
class RecvEvent:
    """One message retired by this rank."""

    src: int
    dst: int
    tag: int
    nbytes: int
    complete: float  # simulated clock after the receive completed


@dataclass(frozen=True)
class CopyEvent:
    """One explicit local memory copy."""

    nbytes: int
    clock: float


@dataclass(frozen=True)
class DatatypeEvent:
    """One datatype-engine pack or unpack."""

    kind: str  # "pack" | "unpack"
    nblocks: int
    nbytes: int
    clock: float


@dataclass(frozen=True)
class PhaseEvent:
    """A named interval of simulated time on one rank."""

    name: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class RankTrace:
    """Mutable per-rank event log.

    Only the owning rank's thread appends to a :class:`RankTrace`, so no
    locking is needed.
    """

    __slots__ = ("rank", "sends", "recvs", "copies", "datatype_ops", "phases",
                 "_phase_stack")

    def __init__(self, rank: int) -> None:
        self.rank = rank
        self.sends: List[SendEvent] = []
        self.recvs: List[RecvEvent] = []
        self.copies: List[CopyEvent] = []
        self.datatype_ops: List[DatatypeEvent] = []
        self.phases: List[PhaseEvent] = []
        self._phase_stack: List[Tuple[str, float]] = []

    # -- recording hooks (called by the communicator) -------------------
    def record_send(self, src: int, dst: int, tag: int, nbytes: int,
                    depart: float) -> None:
        self.sends.append(SendEvent(src, dst, tag, nbytes, depart))

    def record_recv(self, src: int, dst: int, tag: int, nbytes: int,
                    complete: float) -> None:
        self.recvs.append(RecvEvent(src, dst, tag, nbytes, complete))

    def record_copy(self, nbytes: int, clock: float) -> None:
        self.copies.append(CopyEvent(nbytes, clock))

    def record_datatype(self, kind: str, nblocks: int, nbytes: int,
                        clock: float) -> None:
        self.datatype_ops.append(DatatypeEvent(kind, nblocks, nbytes, clock))

    def phase_begin(self, name: str, clock: float) -> None:
        self._phase_stack.append((name, clock))

    def phase_end(self, clock: float) -> None:
        name, start = self._phase_stack.pop()
        self.phases.append(PhaseEvent(name, start, clock))

    # -- queries ---------------------------------------------------------
    @property
    def bytes_sent(self) -> int:
        return sum(e.nbytes for e in self.sends)

    @property
    def bytes_received(self) -> int:
        return sum(e.nbytes for e in self.recvs)

    @property
    def bytes_copied(self) -> int:
        return sum(e.nbytes for e in self.copies)

    @property
    def message_count(self) -> int:
        return len(self.sends)

    def phase_times(self) -> Dict[str, float]:
        """Total simulated time per phase name (summed over occurrences)."""
        out: Dict[str, float] = {}
        for ph in self.phases:
            out[ph.name] = out.get(ph.name, 0.0) + ph.duration
        return out

    def messages(self) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(dst, tag, nbytes)`` for each send, in program order."""
        for e in self.sends:
            yield (e.dst, e.tag, e.nbytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RankTrace(rank={self.rank}, sends={len(self.sends)}, "
                f"recvs={len(self.recvs)}, copies={len(self.copies)}, "
                f"phases={len(self.phases)})")


class NullTrace:
    """A do-nothing stand-in used when tracing is disabled.

    Keeps the communicator's hot path free of ``if trace is not None``
    branches: every hook exists and is a constant-time no-op.
    """

    __slots__ = ("rank",)

    def __init__(self, rank: int) -> None:
        self.rank = rank

    def record_send(self, *args: object) -> None:
        pass

    def record_recv(self, *args: object) -> None:
        pass

    def record_copy(self, *args: object) -> None:
        pass

    def record_datatype(self, *args: object) -> None:
        pass

    def phase_begin(self, *args: object) -> None:
        pass

    def phase_end(self, *args: object) -> None:
        pass

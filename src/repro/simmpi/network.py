"""In-process network fabric connecting simulated ranks.

The :class:`Network` is the one object shared by all rank threads.  It
implements MPI's matching semantics for the subset the paper's algorithms
need:

* messages are matched by exact ``(source, dest, tag)``;
* messages on the same ``(source, dest, tag)`` channel are delivered in FIFO
  order (MPI's non-overtaking guarantee);
* receives block until a matching message arrives.

Timing is **not** wall-clock: each message carries the sender's simulated
clock at departure, and the receiver computes the simulated arrival with the
machine profile's cost rules.  Because matching is by explicit source and
per-channel FIFO, the simulated clocks are deterministic regardless of OS
thread scheduling — re-running the same SPMD program yields bit-identical
timings.

The network also provides the failure path: when a rank thread dies, it
calls :meth:`Network.abort`, which wakes every blocked receiver with
:class:`RankFailedError` so the whole job tears down instead of hanging.
Symmetrically, a *send* posted after the job aborted raises
:class:`RankFailedError` immediately — survivors must not keep injecting
traffic (and inflating ``total_messages``) into a dead job.

Synchronization is a backend concern, not a matching concern: the channel
bookkeeping lives in lock-free ``_deposit`` / ``_take`` helpers that
:class:`Network` wraps in a mutex + condition variable for the default
thread-per-rank executor, while the cooperative backend's
:class:`~repro.simmpi.scheduler.CoopNetwork` subclass calls them directly
(exactly one rank runs at a time there, so the hot path takes no locks).
"""

from __future__ import annotations

import threading
from collections import deque
from time import monotonic
from typing import TYPE_CHECKING, Deque, Dict, Optional, Tuple

from .errors import CommAbortedError, RankFailedError
from .machine import MachineProfile
from .metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .communicator import Communicator
    from .faults import FaultInjector, FaultRecord

__all__ = ["Envelope", "Network", "WIRE_MODES"]

#: Channel key: ``(source, dest, tag)``.
ChannelKey = Tuple[int, int, int]

#: Payload transport modes.  ``"bytes"`` snapshots and delivers real data;
#: ``"phantom"`` carries only sizes for data-plane messages, so the
#: simulated clocks (a function of sizes alone) come out bit-identical
#: while the host moves no payload bytes.
WIRE_MODES = ("bytes", "phantom")


class Envelope:
    """One in-flight message.

    ``payload`` is an immutable ``bytes`` snapshot of the send buffer —
    snapshotting at post time gives correct MPI semantics even if the sender
    reuses its buffer immediately after ``Isend`` returns (the simulator
    behaves like an eager-protocol MPI for correctness purposes, while the
    *timing* still honours the rendezvous switch in the machine profile).

    In phantom wire mode, data-plane envelopes carry ``payload=None`` and
    an explicit ``nbytes``: every cost rule depends only on the size, so
    the clocks are unchanged while the snapshot/deposit/landing copies all
    disappear.  Control-plane envelopes (collective scalars, metadata size
    arrays, pickled objects) always carry real bytes — their contents steer
    algorithm control flow.

    The fault engine annotates envelopes through two optional slots:
    ``seq`` is the per-channel wire sequence number (assigned only when
    the reliability layer is on — receivers use it for duplicate
    suppression and in-order reassembly), and ``mark`` flags special
    envelopes: ``"dup"`` (an injected duplicate), ``"lost"`` (a tombstone
    for a message whose every retransmission was dropped — carries the
    simulated give-up deadline in ``depart``), ``"corrupt_lost"`` (a
    tombstone for a verified message whose every retransmission was
    tampered), or ``"dead"`` (a synthetic zero-byte stand-in for traffic
    from an excised rank in degrade mode).

    The verified transport (``reliability="verify"``) adds four more
    slots: ``auth`` (the ``(src, channel-seq)`` authentication tag),
    ``checksum`` (blake2b of the payload), ``declared`` (the size the
    sender stamped — phantom-mode tampering skews it away from
    ``nbytes``), and ``tampered`` (ground-truth flag set by the fault
    engine's corrupt rule; the transport never reads it, tests use it to
    check detection against truth).  All default to ``None``/``False``
    and stay that way on unverified fabrics.

    Slotted: at P=1024+ an all-to-all materializes hundreds of thousands of
    envelopes, and dropping the per-instance ``__dict__`` measurably cuts
    allocation time and memory.
    """

    __slots__ = ("src", "dst", "tag", "payload", "depart", "nbytes",
                 "seq", "mark", "auth", "checksum", "declared", "tampered")

    def __init__(self, src: int, dst: int, tag: int,
                 payload: Optional[bytes], depart: float,
                 nbytes: Optional[int] = None,
                 seq: Optional[int] = None,
                 mark: Optional[str] = None) -> None:
        self.src = src
        self.dst = dst
        self.tag = tag
        self.payload = payload
        self.depart = depart  # sender's clock when the message hit the wire
        if nbytes is None:
            if payload is None:
                raise ValueError("phantom envelopes need an explicit nbytes")
            nbytes = len(payload)
        self.nbytes = nbytes
        self.seq = seq
        self.mark = mark
        self.auth: Optional[int] = None
        self.checksum: Optional[int] = None
        self.declared: Optional[int] = None
        self.tampered = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "phantom" if self.payload is None else "bytes"
        extra = f", mark={self.mark}" if self.mark else ""
        return (f"Envelope(src={self.src}, dst={self.dst}, tag={self.tag}, "
                f"nbytes={self.nbytes}, {kind}, depart={self.depart:.6g}"
                f"{extra})")


class Network:
    """Shared mailbox fabric with deterministic simulated-time semantics."""

    def __init__(self, nprocs: int, machine: MachineProfile,
                 metrics: Optional[MetricsRegistry] = None,
                 wire: str = "bytes") -> None:
        if nprocs <= 0:
            raise ValueError(f"nprocs must be positive, got {nprocs}")
        if wire not in WIRE_MODES:
            raise ValueError(f"wire must be one of {WIRE_MODES}, got {wire!r}")
        self.nprocs = nprocs
        self.machine = machine
        #: Payload transport mode; communicators read this once at creation.
        self.wire = wire
        self.payload_enabled = wire == "bytes"
        #: Optional aggregate-metrics sink; ``None`` keeps the hot path to
        #: a single branch per message.
        self.metrics = metrics
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._channels: Dict[ChannelKey, Deque[Envelope]] = {}
        self._aborted: Optional[RankFailedError] = None
        self._shutdown = False
        #: Optional fault engine; when attached, every posted envelope runs
        #: through it (see :meth:`_inject`).  ``None`` keeps the clean-fabric
        #: hot path to a single branch per message.
        self.injector: Optional["FaultInjector"] = None
        #: Ranks excised by degrade mode: ``rank -> simulated crash clock``.
        #: Receives matching a dead source return a synthetic zero-byte
        #: ``mark="dead"`` envelope instead of blocking forever.
        self._dead: Dict[int, float] = {}
        #: Senders tombstoned by receivers under ``on_fault="degrade"``
        #: when a verified-transport check failed: ``rank -> earliest
        #: simulated detection clock``.  Pure bookkeeping for the
        #: executor's ``degraded_ranks`` report — the excision itself is
        #: receiver-local (each receiver tombstones independently, in its
        #: own program order, which is what keeps degrade deterministic
        #: per rank).
        self._tombstoned: Dict[int, float] = {}
        # Statistics (under lock); handy for tests and sanity checks.
        self.total_messages = 0
        self.total_bytes = 0

    # ------------------------------------------------------------------
    # backend hooks
    # ------------------------------------------------------------------
    def register_rank(self, rank: int, comm: "Communicator") -> None:
        """Attach one rank's communicator to the fabric.

        The thread backend needs nothing from it; the cooperative backend
        overrides this to learn each rank's simulated clock for its
        clock-ordered run queue.
        """

    # ------------------------------------------------------------------
    # lock-free bookkeeping shared by both backends.  Callers provide the
    # synchronization: the thread backend holds ``_cond``, the cooperative
    # backend is single-runner by construction.
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        """Raise if the job aborted or the fabric was torn down."""
        if self._aborted is not None:
            raise self._aborted
        if self._shutdown:
            raise CommAbortedError("network is shut down")

    def _deposit(self, key: ChannelKey, env: Envelope) -> None:
        self._channels.setdefault(key, deque()).append(env)
        if env.mark in ("lost", "corrupt_lost"):
            # Tombstones are bookkeeping, not traffic: they exist so the
            # receiver raises a typed error instead of hanging, and must
            # not inflate message/byte/in-flight statistics.
            return
        self.total_messages += 1
        self.total_bytes += env.nbytes
        if self.metrics is not None:
            self.metrics.on_post(env.src, env.dst, env.tag, env.nbytes)

    def _take(self, key: ChannelKey) -> Optional[Envelope]:
        chan = self._channels.get(key)
        if not chan:
            return None
        env = chan.popleft()
        if not chan:
            del self._channels[key]
        return env

    def _inject(self, env: Envelope,
                phase: Optional[str]) -> "Tuple[list, list]":
        """Run one posted envelope through the fault engine (if attached).

        Returns ``(envelopes, records)``: the envelopes to deposit (may be
        empty while a reorder holds the message back, or contain extras for
        duplicates / released reorder holds) and the
        :class:`~repro.simmpi.faults.FaultRecord` list describing what the
        engine did.  Deterministic: every decision is a pure function of
        ``(plan, seed)`` and the message's channel-sequence identity, never
        of host scheduling.
        """
        if self.injector is None:
            return [env], []
        envs, records = self.injector.on_post(env, phase)
        if records and self.metrics is not None:
            for rec in records:
                self.metrics.on_fault(rec.kind, rec.delay, rank=rec.src)
        return envs, records

    # ------------------------------------------------------------------
    def post(self, env: Envelope,
             phase: Optional[str] = None) -> "Optional[list]":
        """Deposit a message into its channel and wake blocked receivers.

        When a fault injector is attached the envelope first runs through
        it — the deposit may be delayed, duplicated, replaced by a
        ``mark="lost"`` tombstone, or held for reordering.  Returns the
        list of :class:`~repro.simmpi.faults.FaultRecord` produced (``None``
        on the clean-fabric fast path) so the sending communicator can log
        them into its per-rank trace.

        Raises
        ------
        RankFailedError
            if the job already aborted — a survivor must not keep sending
            (successfully) into a dead job.
        CommAbortedError
            if the network was shut down.
        """
        with self._cond:
            self._check_open()
            if self.injector is None:
                self._deposit((env.src, env.dst, env.tag), env)
                self._cond.notify_all()
                return None
            envs, records = self._inject(env, phase)
            for e in envs:
                self._deposit((e.src, e.dst, e.tag), e)
            if envs:
                self._cond.notify_all()
            return records

    def collect(self, src: int, dst: int, tag: int,
                host_timeout: Optional[float] = None) -> Envelope:
        """Block until the next message on ``(src, dst, tag)`` and pop it.

        Two kinds of time meet here, and they must not be conflated:

        * **Simulated time** lives *inside* envelopes (``depart`` plus the
          machine profile's cost rules) and advances only through the cost
          model.  Simulated deadlines — reliability RTOs, crash times,
          retry-exhaustion give-ups — are resolved by the *communicator*
          when it lands the envelope, never here.
        * **Host-monotonic time** governs ``host_timeout``: a wall-clock
          budget for this receive used purely as a liveness watchdog (the
          executor converts hangs into :class:`CommAbortedError`).  It has
          no effect whatsoever on simulated clocks.

        ``host_timeout`` is an *absolute* budget for this receive: the
        deadline is fixed on entry, so wakeups caused by traffic on
        unrelated channels only re-wait for the remainder instead of
        restarting the full timeout.

        If ``src`` was excised by degrade mode (:meth:`mark_dead`) and its
        channel is empty, a synthetic zero-byte ``mark="dead"`` envelope is
        returned immediately — survivors of a crashed rank observe an empty
        contribution instead of blocking forever.

        Raises
        ------
        RankFailedError
            if any rank aborted the job while we were blocked.
        CommAbortedError
            if the network was shut down, or ``host_timeout`` elapsed (the
            executor's watchdog uses this to convert hangs into errors).
        """
        key = (src, dst, tag)
        deadline = None if host_timeout is None else monotonic() + host_timeout
        with self._cond:
            while True:
                self._check_open()
                env = self._take(key)
                if env is not None:
                    return env
                if src in self._dead:
                    return Envelope(src, dst, tag, b"",
                                    depart=self._dead[src], nbytes=0,
                                    mark="dead")
                if deadline is None:
                    self._cond.wait()
                else:
                    remaining = deadline - monotonic()
                    if remaining <= 0:
                        raise CommAbortedError(
                            f"receive (src={src}, dst={dst}, tag={tag}) "
                            f"timed out after {host_timeout}s"
                        )
                    self._cond.wait(timeout=remaining)

    def probe(self, src: int, dst: int, tag: int) -> Optional[int]:
        """Return the size of the next matching message, or ``None``."""
        with self._lock:
            chan = self._channels.get((src, dst, tag))
            if chan:
                return chan[0].nbytes
            return None

    # ------------------------------------------------------------------
    def head_time(self, env: Envelope) -> float:
        """Simulated clock at which ``env``'s first byte reaches the
        receiver (departure plus head latency, on the tier the message's
        endpoints select)."""
        return env.depart + self.machine.head_latency(
            env.nbytes, self.machine.is_intra(env.src, env.dst))

    def serial_time(self, env: Envelope) -> float:
        """Receiver occupancy while landing ``env``'s bytes.

        Receives serialize at the receiver: completion is
        ``max(receiver clock, head_time) + serial_time`` — back-to-back
        messages queue behind each other, which is how ingress bandwidth
        saturation in an all-to-all is modelled.  Intra-node messages use
        the shared-memory tier constants.
        """
        return self.machine.serial_time(
            env.nbytes, self.nprocs, self.machine.is_intra(env.src, env.dst))

    # ------------------------------------------------------------------
    def flush_sender(self, rank: int) -> None:
        """Deposit ``rank``'s outstanding reorder hold (fault engine).

        The executor calls this when a rank's program returns, so a
        reorder can never strand its held message past the end of the
        sender's program.
        """
        if self.injector is None:
            return
        with self._cond:
            env = self.injector.flush(rank)
            if env is not None:
                self._deposit((env.src, env.dst, env.tag), env)
                self._cond.notify_all()

    def mark_dead(self, rank: int, clock: float) -> None:
        """Excise a crashed rank (degrade mode): record its simulated crash
        clock and wake blocked receivers so waits on its channels resolve
        to synthetic ``mark="dead"`` envelopes."""
        with self._cond:
            self._dead.setdefault(rank, clock)
            self._cond.notify_all()

    @property
    def dead_ranks(self) -> Dict[int, float]:
        """Snapshot of excised ranks: ``rank -> simulated crash clock``."""
        with self._lock:
            return dict(self._dead)

    def report_tombstone(self, rank: int, clock: float) -> None:
        """Record that a receiver tombstoned ``rank`` (verified transport,
        degrade policy).  First report wins the clock; the executor folds
        these into ``SPMDResult.degraded_ranks``."""
        with self._lock:
            self._tombstoned.setdefault(rank, clock)

    @property
    def tombstoned_ranks(self) -> Dict[int, float]:
        """Snapshot of tombstoned senders: ``rank -> detection clock``."""
        with self._lock:
            return dict(self._tombstoned)

    def abort(self, failed_rank: int, exc: BaseException, *,
              clock: Optional[float] = None,
              phase: Optional[str] = None,
              step: Optional[int] = None) -> None:
        """Mark the job failed; wake every blocked receiver.

        Idempotent with first-writer-wins semantics: when several ranks
        crash concurrently, the first ``abort`` under the lock fixes the
        :class:`RankFailedError` every blocked operation will observe;
        later calls only re-notify.  ``clock``/``phase``/``step`` describe
        the failing rank's position (simulated clock, algorithm phase,
        posted-op index) and ride along on the error for post-mortems.
        """
        with self._cond:
            if self._aborted is None:
                self._aborted = RankFailedError(
                    failed_rank, exc, clock=clock, phase=phase, step=step)
            self._cond.notify_all()

    def shutdown(self) -> None:
        """Tear the fabric down (used by the executor after join)."""
        with self._cond:
            self._shutdown = True
            self._cond.notify_all()

    def pending_summary(self) -> str:
        """Human-readable list of undelivered messages (for diagnostics)."""
        with self._lock:
            if not self._channels:
                return "no pending messages"
            lines = []
            for (src, dst, tag), chan in sorted(self._channels.items()):
                lines.append(
                    f"  src={src} dst={dst} tag={tag}: {len(chan)} message(s), "
                    f"{sum(e.nbytes for e in chan)} byte(s)"
                )
            return "pending messages:\n" + "\n".join(lines)

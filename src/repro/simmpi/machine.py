"""Machine performance profiles for the simulated cluster.

A :class:`MachineProfile` carries every constant the simulator's clock model
needs.  The model is LogGP-flavoured (Alexandrov et al.) with two additions
the paper's evaluation makes necessary:

* an **eager/rendezvous protocol switch**: messages above
  ``eager_threshold`` bytes pay one extra round-trip latency, as real MPI
  implementations do;
* a **congestion factor** applied to the per-byte cost, growing linearly in
  the communicator size.  All-to-all traffic saturates shared network
  resources (NIC, router tiles, bisection links) as the job grows, which is
  the physical mechanism behind the paper's observation that the block-size
  range where Bruck wins *shrinks* with process count (Fig. 6/9): Bruck
  injects ``log2(P)/2`` times more bytes than spread-out, so a congestion
  penalty common to both algorithms erodes Bruck's latency advantage
  super-logarithmically.

Cost rules (all times in seconds, sizes in bytes; ``beta_c`` denotes the
congested per-byte cost ``beta * (1 + P/congestion_procs)``):

==============================  =============================================
event                           charge
==============================  =============================================
post a send (``Isend``)         sender clock += ``o_send``
post a receive (``Irecv``)      receiver clock += ``o_recv``
message head latency            ``alpha`` (eager), ``2*alpha`` (rendezvous,
                                i.e. *n* > ``eager_threshold``)
message transfer (serializes    ``eager_factor * beta_c * n`` (eager) or
at the receiver)                ``beta_c * n`` (rendezvous / streaming)
receive completion              ``clock = max(clock, depart + head) + serial``
local copy of *n* bytes         ``kappa_mem + gamma_mem * n``
datatype pack/unpack,           ``dt_block * b + dt_byte * n``
*b* blocks / *n* bytes
==============================  =============================================

The named profiles are calibrated so the *relative* behaviour of the paper's
algorithms (orderings, win factors, crossover movement) reproduces the
published figures on Theta; they are not a cycle-accurate model of any
machine.  See ``DESIGN.md`` §5 and ``EXPERIMENTS.md`` for the calibration
story.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict

__all__ = ["MachineProfile", "THETA", "CORI", "STAMPEDE2", "LOCAL", "get_profile", "PROFILES"]


@dataclass(frozen=True)
class MachineProfile:
    """Immutable bundle of network / memory cost constants.

    Parameters
    ----------
    name:
        Human-readable identifier (``"theta"``, ``"cori"``, ...).
    alpha:
        Per-message wire latency in seconds.
    beta:
        Per-byte transfer cost in seconds (inverse of effective per-rank
        bandwidth in an uncongested network).
    o_send, o_recv:
        Per-message CPU overhead for injecting / retiring a message.  These
        are what make a linear-in-``P`` algorithm such as spread-out pay a
        latency cost proportional to ``P`` while Bruck pays ``log2 P``.
    gamma_mem:
        Per-byte cost of a local memory copy.
    kappa_mem:
        Fixed per-copy setup cost (function call, loop setup).
    dt_block:
        Per-block cost of the MPI derived-datatype engine (type map walk).
        Calibrated above the memcpy setup cost so datatype-based packing
        loses for small blocks, as both the paper (Fig. 2) and Träff et
        al. observed (crossover around a few hundred bytes per block).
    dt_byte:
        Per-byte cost of datatype-engine copying (slightly cheaper per byte
        than ``gamma_mem`` since it can stream).
    eager_threshold:
        Protocol switch point in bytes; larger messages pay ``alpha`` twice
        (rendezvous handshake), and the eager bandwidth penalty phases out
        above it.
    eager_factor:
        Effective-bandwidth penalty for eager-path bytes: the first
        ``eager_threshold`` bytes of every message cost
        ``eager_factor * beta`` per byte (header/packetization/extra-copy
        overheads that streaming transfers amortize).  This is the physical
        mechanism behind the paper's result: spread-out moves everything in
        small eager messages at poor effective bandwidth, while Bruck's
        aggregated messages stream — so Bruck can win despite moving
        ``log2(P)/2`` times more bytes.
    congestion_procs:
        Congestion scale ``K``: the effective per-byte cost grows as
        ``beta * (1 + P / K)``.  Smaller ``K`` means a network whose
        all-to-all bandwidth saturates earlier.
    """

    name: str
    alpha: float
    beta: float
    o_send: float
    o_recv: float
    gamma_mem: float = 2.5e-10
    kappa_mem: float = 5.0e-8
    dt_block: float = 1.0e-7
    dt_byte: float = 1.5e-10
    eager_threshold: int = 8192
    eager_factor: float = 5.2
    congestion_procs: float = 1400.0

    def __post_init__(self) -> None:
        for attr in ("alpha", "beta", "o_send", "o_recv", "gamma_mem",
                     "kappa_mem", "dt_block", "dt_byte"):
            value = getattr(self, attr)
            if value < 0:
                raise ValueError(f"{attr} must be non-negative, got {value}")
        if self.eager_threshold <= 0:
            raise ValueError("eager_threshold must be positive")
        if self.eager_factor < 1:
            raise ValueError("eager_factor must be >= 1")
        if self.congestion_procs <= 0:
            raise ValueError("congestion_procs must be positive")

    # ------------------------------------------------------------------
    # cost primitives — the single source of truth shared by the thread
    # simulator (repro.simmpi.network) and the analytic timing engine
    # (repro.timing).
    # ------------------------------------------------------------------
    def congestion(self, nprocs: int) -> float:
        """Multiplier on ``beta`` for a job of ``nprocs`` ranks."""
        return 1.0 + nprocs / self.congestion_procs

    def beta_eff(self, nprocs: int) -> float:
        """Effective per-byte cost under congestion at ``nprocs`` ranks."""
        return self.beta * self.congestion(nprocs)

    def head_latency(self, nbytes: int) -> float:
        """Latency until a message's first byte can land at the receiver:
        ``alpha``, doubled for rendezvous-protocol (large) messages."""
        if nbytes > self.eager_threshold:
            return 2.0 * self.alpha
        return self.alpha

    def serial_time(self, nbytes: int, nprocs: int) -> float:
        """Receiver-side transfer occupancy of one message.

        The receiver's NIC/CPU is busy for this long per message, so
        back-to-back receives serialize — which is how an all-to-all's
        ingress bandwidth is modelled.  Messages on the eager path
        (``nbytes <= eager_threshold``) pay ``eager_factor``-times the
        streaming per-byte cost (extra copies, packetization, header
        overhead); rendezvous messages stream zero-copy at ``beta_eff``.
        The discontinuity at the threshold mirrors the protocol-switch
        steps visible in real MPI pingpong curves.
        """
        rate = self.beta_eff(nprocs)
        if nbytes <= self.eager_threshold:
            rate *= self.eager_factor
        return rate * nbytes

    def wire_time(self, nbytes: int, nprocs: int) -> float:
        """End-to-end wire time of one isolated message (head + transfer)."""
        return self.head_latency(nbytes) + self.serial_time(nbytes, nprocs)

    def copy_time(self, nbytes: int) -> float:
        """Time for one contiguous local copy of ``nbytes`` bytes."""
        if nbytes <= 0:
            return 0.0
        return self.kappa_mem + self.gamma_mem * nbytes

    def datatype_time(self, nblocks: int, nbytes: int) -> float:
        """Time for the datatype engine to pack/unpack ``nblocks`` blocks."""
        if nblocks <= 0:
            return 0.0
        return self.dt_block * nblocks + self.dt_byte * nbytes

    def message_time(self, nbytes: int, nprocs: int) -> float:
        """End-to-end time of one message including both CPU overheads."""
        return self.o_send + self.o_recv + self.wire_time(nbytes, nprocs)

    def with_overrides(self, **kwargs: float) -> "MachineProfile":
        """Return a copy with selected constants replaced (for ablations)."""
        return replace(self, **kwargs)

    # Convenience used in docs/examples: predicted uncongested bandwidth.
    @property
    def peak_bandwidth(self) -> float:
        """Uncongested per-rank bandwidth in bytes/second."""
        return math.inf if self.beta == 0 else 1.0 / self.beta


# ----------------------------------------------------------------------
# Named profiles.
#
# THETA is the primary calibration target (the paper's main machine):
# KNL cores are slow (high per-message CPU overhead), the Aries network has
# microsecond-scale latency, and the per-core share of node injection
# bandwidth is modest because 64 ranks share one NIC.
# ----------------------------------------------------------------------
THETA = MachineProfile(
    name="theta",
    alpha=4.0e-6,
    beta=9.1e-9,          # ~110 MB/s per-rank share (64 KNL ranks per NIC)
    o_send=5.0e-6,        # KNL per-message software overhead
    o_recv=5.0e-6,
    gamma_mem=4.0e-10,    # KNL DDR copy ~2.5 GB/s per core
    kappa_mem=8.0e-8,
    dt_block=1.6e-7,
    dt_byte=2.5e-10,
    eager_threshold=8192,
    eager_factor=5.5,
    congestion_procs=13000.0,
)

# Cori (Haswell/KNL, Aries): faster cores than Theta KNL, similar network.
CORI = MachineProfile(
    name="cori",
    alpha=3.0e-6,
    beta=6.5e-9,
    o_send=3.0e-6,
    o_recv=3.0e-6,
    gamma_mem=2.0e-10,
    kappa_mem=5.0e-8,
    dt_block=1.2e-7,
    dt_byte=2.0e-10,
    eager_threshold=8192,
    eager_factor=5.0,
    congestion_procs=16000.0,
)

# Stampede2 (SKX/KNL, Omni-Path): slightly higher latency fabric, strong
# per-core compute.
STAMPEDE2 = MachineProfile(
    name="stampede2",
    alpha=5.0e-6,
    beta=8.0e-9,
    o_send=4.0e-6,
    o_recv=4.0e-6,
    gamma_mem=2.2e-10,
    kappa_mem=5.0e-8,
    dt_block=1.3e-7,
    dt_byte=2.0e-10,
    eager_threshold=16384,
    eager_factor=4.0,
    congestion_procs=10000.0,
)

# A forgiving profile for unit tests and laptop examples: low constant
# costs so functional runs at tiny P still produce readable times.
LOCAL = MachineProfile(
    name="local",
    alpha=1.0e-6,
    beta=1.0e-9,
    o_send=5.0e-7,
    o_recv=5.0e-7,
    eager_factor=3.0,
    congestion_procs=16384.0,
)

PROFILES: Dict[str, MachineProfile] = {
    p.name: p for p in (THETA, CORI, STAMPEDE2, LOCAL)
}


def get_profile(name: str) -> MachineProfile:
    """Look up a named machine profile (case-insensitive).

    Raises
    ------
    KeyError
        with the list of known names if ``name`` is unknown.
    """
    key = name.lower()
    try:
        return PROFILES[key]
    except KeyError:
        known = ", ".join(sorted(PROFILES))
        raise KeyError(f"unknown machine profile {name!r}; known: {known}") from None

"""Machine performance profiles for the simulated cluster.

A :class:`MachineProfile` carries every constant the simulator's clock model
needs.  The model is LogGP-flavoured (Alexandrov et al.) with two additions
the paper's evaluation makes necessary:

* an **eager/rendezvous protocol switch**: messages above
  ``eager_threshold`` bytes pay one extra round-trip latency, as real MPI
  implementations do;
* a **congestion factor** applied to the per-byte cost, growing linearly in
  the communicator size.  All-to-all traffic saturates shared network
  resources (NIC, router tiles, bisection links) as the job grows, which is
  the physical mechanism behind the paper's observation that the block-size
  range where Bruck wins *shrinks* with process count (Fig. 6/9): Bruck
  injects ``log2(P)/2`` times more bytes than spread-out, so a congestion
  penalty common to both algorithms erodes Bruck's latency advantage
  super-logarithmically.

Cost rules (all times in seconds, sizes in bytes; ``beta_c`` denotes the
congested per-byte cost ``beta * (1 + num_nodes/congestion_procs)``):

==============================  =============================================
event                           charge
==============================  =============================================
post a send (``Isend``)         sender clock += ``o_send``
post a receive (``Irecv``)      receiver clock += ``o_recv``
message head latency            ``alpha`` (eager), ``2*alpha`` (rendezvous,
                                i.e. *n* > ``eager_threshold``)
message transfer (serializes    ``beta_c * (eager_factor * min(n, T)``
at the receiver)                ``+ max(0, n - T))`` with
                                ``T = eager_threshold`` — the first ``T``
                                bytes of *every* message pay the eager
                                per-byte penalty; the remainder streams
receive completion              ``clock = max(clock, depart + head) + serial``
local copy of *n* bytes         ``kappa_mem + gamma_mem * n``
datatype pack/unpack,           ``dt_block * b + dt_byte * n``
*b* blocks / *n* bytes
==============================  =============================================

**Two-level hierarchy.**  With ``ppn > 1`` ranks are grouped onto nodes
(``node_of(rank) = rank // ppn``).  Messages between ranks on the *same*
node use the intra-tier constants (``alpha_intra``, ``beta_intra``,
``o_send_intra``, ``o_recv_intra``, ``eager_factor_intra``) and pay **no**
network congestion; inter-node messages use the flat constants with
congestion charged per inter-node endpoint: ``1 + num_nodes/K`` instead of
``1 + P/K``.  The default ``ppn=1`` puts every rank on its own node, so
every message is inter-node and the model reduces bit-for-bit to the flat
LogGP model (``num_nodes == P``).

The named profiles are calibrated so the *relative* behaviour of the paper's
algorithms (orderings, win factors, crossover movement) reproduces the
published figures on Theta; they are not a cycle-accurate model of any
machine.  See ``DESIGN.md`` §5 and ``EXPERIMENTS.md`` for the calibration
story.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, Optional

#: Version of the cost model implemented by this module.  Bumped whenever a
#: change alters simulated clocks (so committed benchmark results can carry
#: the version they were produced under and stale files fail loudly).
#: v2: piecewise eager tiering (monotone serial_time) + two-level hierarchy.
MACHINE_MODEL_VERSION = 2

__all__ = ["MachineProfile", "MACHINE_MODEL_VERSION", "THETA", "CORI",
           "STAMPEDE2", "LOCAL", "get_profile", "PROFILES"]

#: Default derivation ratios for intra-node constants when a profile does
#: not set them explicitly: shared-memory transports have ~10x lower
#: latency, ~4x higher bandwidth, and ~2x lower per-message CPU overhead
#: than the NIC path on the machines the paper calibrates against.
_INTRA_ALPHA_RATIO = 0.1
_INTRA_BETA_RATIO = 0.25
_INTRA_OVERHEAD_RATIO = 0.5


@dataclass(frozen=True)
class MachineProfile:
    """Immutable bundle of network / memory cost constants.

    Parameters
    ----------
    name:
        Human-readable identifier (``"theta"``, ``"cori"``, ...).
    alpha:
        Per-message wire latency in seconds.
    beta:
        Per-byte transfer cost in seconds (inverse of effective per-rank
        bandwidth in an uncongested network).
    o_send, o_recv:
        Per-message CPU overhead for injecting / retiring a message.  These
        are what make a linear-in-``P`` algorithm such as spread-out pay a
        latency cost proportional to ``P`` while Bruck pays ``log2 P``.
    gamma_mem:
        Per-byte cost of a local memory copy.
    kappa_mem:
        Fixed per-copy setup cost (function call, loop setup).
    dt_block:
        Per-block cost of the MPI derived-datatype engine (type map walk).
        Calibrated above the memcpy setup cost so datatype-based packing
        loses for small blocks, as both the paper (Fig. 2) and Träff et
        al. observed (crossover around a few hundred bytes per block).
    dt_byte:
        Per-byte cost of datatype-engine copying (slightly cheaper per byte
        than ``gamma_mem`` since it can stream).
    eager_threshold:
        Protocol switch point in bytes; larger messages pay ``alpha`` twice
        (rendezvous handshake), and the eager bandwidth penalty phases out
        above it.
    eager_factor:
        Effective-bandwidth penalty for eager-path bytes: the first
        ``eager_threshold`` bytes of every message cost
        ``eager_factor * beta`` per byte (header/packetization/extra-copy
        overheads that streaming transfers amortize).  This is the physical
        mechanism behind the paper's result: spread-out moves everything in
        small eager messages at poor effective bandwidth, while Bruck's
        aggregated messages stream — so Bruck can win despite moving
        ``log2(P)/2`` times more bytes.
    congestion_procs:
        Congestion scale ``K``: the effective per-byte cost grows as
        ``beta * (1 + num_nodes / K)`` (``num_nodes == P`` at the default
        ``ppn=1``).  Smaller ``K`` means a network whose all-to-all
        bandwidth saturates earlier.  Congestion is charged per inter-node
        link endpoint, so packing more ranks per node *reduces* the
        congestion multiplier — the physical point of node-aware
        aggregation.
    ppn:
        Ranks per node (the two-level hierarchy).  ``node_of(rank) =
        rank // ppn``; messages within a node use the intra-tier constants
        below.  The default ``1`` makes every message inter-node, which
        reproduces the flat model bit-for-bit.
    alpha_intra, beta_intra, o_send_intra, o_recv_intra, eager_factor_intra:
        Intra-node (shared-memory transport) analogues of ``alpha`` /
        ``beta`` / ``o_send`` / ``o_recv`` / ``eager_factor``.  ``None``
        (the default) derives them from the inter-node constants at
        construction time: latency /10, per-byte cost /4, CPU overheads /2,
        same eager factor (shared-memory transports also double-copy below
        the rendezvous switch).  Intra-node messages pay no network
        congestion.
    """

    name: str
    alpha: float
    beta: float
    o_send: float
    o_recv: float
    gamma_mem: float = 2.5e-10
    kappa_mem: float = 5.0e-8
    dt_block: float = 1.0e-7
    dt_byte: float = 1.5e-10
    eager_threshold: int = 8192
    eager_factor: float = 5.2
    congestion_procs: float = 1400.0
    ppn: int = 1
    alpha_intra: Optional[float] = None
    beta_intra: Optional[float] = None
    o_send_intra: Optional[float] = None
    o_recv_intra: Optional[float] = None
    eager_factor_intra: Optional[float] = None

    def __post_init__(self) -> None:
        for attr in ("alpha", "beta", "o_send", "o_recv", "gamma_mem",
                     "kappa_mem", "dt_block", "dt_byte"):
            value = getattr(self, attr)
            if value < 0:
                raise ValueError(f"{attr} must be non-negative, got {value}")
        if self.eager_threshold <= 0:
            raise ValueError("eager_threshold must be positive")
        if self.eager_factor < 1:
            raise ValueError("eager_factor must be >= 1")
        if self.congestion_procs <= 0:
            raise ValueError("congestion_procs must be positive")
        if int(self.ppn) < 1:
            raise ValueError(f"ppn must be >= 1, got {self.ppn}")
        object.__setattr__(self, "ppn", int(self.ppn))
        # Derive unset intra-tier constants from the inter-node ones.
        derived = (
            ("alpha_intra", self.alpha * _INTRA_ALPHA_RATIO),
            ("beta_intra", self.beta * _INTRA_BETA_RATIO),
            ("o_send_intra", self.o_send * _INTRA_OVERHEAD_RATIO),
            ("o_recv_intra", self.o_recv * _INTRA_OVERHEAD_RATIO),
            ("eager_factor_intra", self.eager_factor),
        )
        for attr, default in derived:
            if getattr(self, attr) is None:
                object.__setattr__(self, attr, default)
        for attr in ("alpha_intra", "beta_intra", "o_send_intra",
                     "o_recv_intra"):
            if getattr(self, attr) < 0:
                raise ValueError(
                    f"{attr} must be non-negative, got {getattr(self, attr)}")
        if self.eager_factor_intra < 1:
            raise ValueError("eager_factor_intra must be >= 1")

    # ------------------------------------------------------------------
    # hierarchy: the rank -> node mapping
    # ------------------------------------------------------------------
    def node_of(self, rank: int) -> int:
        """The node hosting ``rank`` (block placement: ``rank // ppn``)."""
        return rank // self.ppn

    def num_nodes(self, nprocs: int) -> int:
        """Nodes occupied by a job of ``nprocs`` ranks (``== nprocs`` at
        the default ``ppn=1``)."""
        return -(-nprocs // self.ppn)

    def is_intra(self, src: int, dst: int) -> bool:
        """Whether a ``src -> dst`` message stays within one node.

        At ``ppn=1`` this is always ``False`` — with one rank per node
        even a self-send is modelled on the NIC loopback path, preserving
        the flat model exactly.
        """
        return self.ppn > 1 and src // self.ppn == dst // self.ppn

    # ------------------------------------------------------------------
    # cost primitives — the single source of truth shared by the thread
    # simulator (repro.simmpi.network) and the analytic timing engine
    # (repro.timing).
    # ------------------------------------------------------------------
    def congestion(self, nprocs: int) -> float:
        """Multiplier on ``beta`` for a job of ``nprocs`` ranks.

        Charged per inter-node endpoint: ``1 + num_nodes / K``.  At the
        default ``ppn=1`` this is the flat ``1 + P / K``.
        """
        return 1.0 + self.num_nodes(nprocs) / self.congestion_procs

    def beta_eff(self, nprocs: int) -> float:
        """Effective per-byte cost under congestion at ``nprocs`` ranks."""
        return self.beta * self.congestion(nprocs)

    def head_latency(self, nbytes: int, intra: bool = False) -> float:
        """Latency until a message's first byte can land at the receiver:
        ``alpha`` (``alpha_intra`` within a node), doubled for
        rendezvous-protocol (large) messages."""
        a = self.alpha_intra if intra else self.alpha
        if nbytes > self.eager_threshold:
            return 2.0 * a
        return a

    def serial_time(self, nbytes: int, nprocs: int,
                    intra: bool = False) -> float:
        """Receiver-side transfer occupancy of one message.

        The receiver's NIC/CPU is busy for this long per message, so
        back-to-back receives serialize — which is how an all-to-all's
        ingress bandwidth is modelled.  The first ``eager_threshold``
        bytes of *every* message pay ``eager_factor``-times the streaming
        per-byte cost (extra copies, packetization, header overhead); the
        remainder streams at ``beta_eff``.  The piecewise form keeps
        per-message cost monotone non-decreasing in ``nbytes`` — real MPI
        pingpong curves show a slope change at the protocol switch, not a
        cost cliff.  Intra-node messages use the intra-tier constants and
        pay no network congestion.
        """
        if intra:
            rate = self.beta_intra
            factor = self.eager_factor_intra
        else:
            rate = self.beta_eff(nprocs)
            factor = self.eager_factor
        eager = min(nbytes, self.eager_threshold)
        return rate * (factor * eager + (nbytes - eager))

    def wire_time(self, nbytes: int, nprocs: int,
                  intra: bool = False) -> float:
        """End-to-end wire time of one isolated message (head + transfer)."""
        return self.head_latency(nbytes, intra) \
            + self.serial_time(nbytes, nprocs, intra)

    def copy_time(self, nbytes: int) -> float:
        """Time for one contiguous local copy of ``nbytes`` bytes."""
        if nbytes <= 0:
            return 0.0
        return self.kappa_mem + self.gamma_mem * nbytes

    def datatype_time(self, nblocks: int, nbytes: int) -> float:
        """Time for the datatype engine to pack/unpack ``nblocks`` blocks."""
        if nblocks <= 0:
            return 0.0
        return self.dt_block * nblocks + self.dt_byte * nbytes

    def message_time(self, nbytes: int, nprocs: int,
                     intra: bool = False) -> float:
        """End-to-end time of one message including both CPU overheads."""
        if intra:
            o = self.o_send_intra + self.o_recv_intra
        else:
            o = self.o_send + self.o_recv
        return o + self.wire_time(nbytes, nprocs, intra)

    def with_overrides(self, **kwargs: float) -> "MachineProfile":
        """Return a copy with selected constants replaced (for ablations).

        Note: the copy starts from this profile's *resolved* intra-tier
        constants, so overriding a base constant (e.g. ``alpha``) does not
        re-derive its intra analogue — pass both explicitly if the ablation
        should move them together.
        """
        return replace(self, **kwargs)

    # Convenience used in docs/examples: predicted uncongested bandwidth.
    @property
    def peak_bandwidth(self) -> float:
        """Uncongested per-rank bandwidth in bytes/second."""
        return math.inf if self.beta == 0 else 1.0 / self.beta


# ----------------------------------------------------------------------
# Named profiles.
#
# THETA is the primary calibration target (the paper's main machine):
# KNL cores are slow (high per-message CPU overhead), the Aries network has
# microsecond-scale latency, and the per-core share of node injection
# bandwidth is modest because 64 ranks share one NIC.
# ----------------------------------------------------------------------
# Constants fitted by repro.bench.calibrate against the paper's published
# Theta numbers under the piecewise eager model (crossover ladder matched
# exactly; total calibration error ~2.4 units).
THETA = MachineProfile(
    name="theta",
    alpha=4.0e-6,
    beta=6.86e-9,         # ~145 MB/s per-rank share (64 KNL ranks per NIC)
    o_send=6.0e-6,        # KNL per-message software overhead
    o_recv=6.0e-6,
    gamma_mem=4.0e-10,    # KNL DDR copy ~2.5 GB/s per core
    kappa_mem=8.0e-8,
    dt_block=1.6e-7,
    dt_byte=2.5e-10,
    eager_threshold=8192,
    eager_factor=5.0,
    congestion_procs=6000.0,
)

# Cori (Haswell/KNL, Aries): faster cores than Theta KNL, similar network.
CORI = MachineProfile(
    name="cori",
    alpha=3.0e-6,
    beta=6.5e-9,
    o_send=3.0e-6,
    o_recv=3.0e-6,
    gamma_mem=2.0e-10,
    kappa_mem=5.0e-8,
    dt_block=1.2e-7,
    dt_byte=2.0e-10,
    eager_threshold=8192,
    eager_factor=5.0,
    congestion_procs=16000.0,
)

# Stampede2 (SKX/KNL, Omni-Path): slightly higher latency fabric, strong
# per-core compute.
STAMPEDE2 = MachineProfile(
    name="stampede2",
    alpha=5.0e-6,
    beta=8.0e-9,
    o_send=4.0e-6,
    o_recv=4.0e-6,
    gamma_mem=2.2e-10,
    kappa_mem=5.0e-8,
    dt_block=1.3e-7,
    dt_byte=2.0e-10,
    eager_threshold=16384,
    eager_factor=4.0,
    congestion_procs=10000.0,
)

# A forgiving profile for unit tests and laptop examples: low constant
# costs so functional runs at tiny P still produce readable times.
LOCAL = MachineProfile(
    name="local",
    alpha=1.0e-6,
    beta=1.0e-9,
    o_send=5.0e-7,
    o_recv=5.0e-7,
    eager_factor=3.0,
    congestion_procs=16384.0,
)

PROFILES: Dict[str, MachineProfile] = {
    p.name: p for p in (THETA, CORI, STAMPEDE2, LOCAL)
}


def get_profile(name: str) -> MachineProfile:
    """Look up a named machine profile (case-insensitive).

    Raises
    ------
    KeyError
        with the list of known names if ``name`` is unknown.
    """
    key = name.lower()
    try:
        return PROFILES[key]
    except KeyError:
        known = ", ".join(sorted(PROFILES))
        raise KeyError(f"unknown machine profile {name!r}; known: {known}") from None

"""The per-rank communicator object for the simulated MPI runtime.

Each SPMD rank receives one :class:`Communicator`.  It exposes the MPI
subset the paper's algorithms are written against:

* point-to-point: :meth:`send` / :meth:`recv` / :meth:`isend` /
  :meth:`irecv` / :meth:`sendrecv` (byte-buffer based, NumPy arrays);
* object transport (pickled) for application-layer convenience:
  :meth:`send_obj` / :meth:`recv_obj`;
* collectives used as substrates: :meth:`barrier`, :meth:`bcast`,
  :meth:`allreduce`, :meth:`allgather`, and the *builtin* (spread-out)
  :meth:`alltoall` / :meth:`alltoallv`, which double as the "vendor
  MPI_Alltoallv" baseline in benchmarks;
* simulated-cost hooks used by algorithm implementations:
  :meth:`charge_copy`, :meth:`charge_compute`, :meth:`pack` /
  :meth:`unpack` (datatype engine), and the :meth:`phase` context manager
  for the Fig. 2b-style phase breakdowns.

Simulated time: ``comm.clock`` is this rank's simulated clock in seconds.
All clock updates are deterministic (see :mod:`repro.simmpi.network`), so a
collective's simulated duration is ``max over ranks of (clock_after -
clock_before)`` and is reproducible bit-for-bit.
"""

from __future__ import annotations

import pickle
from contextlib import contextmanager
from typing import (Any, Callable, Dict, Iterator, List, Optional, Sequence,
                    Union)

import numpy as np

from .datatype import IndexedBlocks
from .errors import (InjectedCrashError, InvalidRankError, InvalidTagError,
                     MessageCorruptError, MessageLostError)
from .faults import auth_tag, payload_digest
from .machine import MachineProfile
from .network import ChannelKey, Envelope, Network
from .request import RecvRequest, Request, SendRequest, waitall
from .tracing import NullTrace, TraceBase

__all__ = ["Communicator", "MAX_USER_TAG"]

# User tags live in [0, MAX_USER_TAG); internal collective tags above it.
MAX_USER_TAG = 1 << 20
_INTERNAL_TAG_BASE = MAX_USER_TAG
_INTERNAL_TAG_STRIDE = 8  # sub-operation slots per collective invocation

Buffer = np.ndarray


class Communicator:
    """One rank's endpoint in the simulated job."""

    def __init__(self, network: Network, rank: int,
                 trace: TraceBase,
                 recv_timeout: Optional[float] = 60.0) -> None:
        if not 0 <= rank < network.nprocs:
            raise InvalidRankError(rank, network.nprocs)
        self._network = network
        self._rank = rank
        self._trace = trace
        self._clock = 0.0
        self._coll_seq = 0
        self._recv_timeout = recv_timeout
        # Wire mode is fixed per job; cache the flag for the send hot path.
        self._payload_enabled = network.payload_enabled
        # Fault-engine state, resolved once: the straggler multiplier on
        # this rank's o/serialization charges, its crash rule (if any), and
        # the reliability transport config.  All None/1.0 on a clean fabric
        # so the hot paths pay only a multiply / an is-None branch.
        injector = network.injector
        self._straggle = (injector.straggle_factor(rank)
                          if injector is not None else 1.0)
        self._crash = (injector.crash_rule(rank)
                       if injector is not None else None)
        self._reliability = (injector.reliability
                             if injector is not None else None)
        # Verified-transport state: whether to stamp/check integrity on
        # this fabric, which policy a failed check follows, and the
        # receiver-local tombstones (senders this rank excised under
        # degrade after a failed check; local, so the decision is a pure
        # function of this rank's own receive order).
        self._verify = (self._reliability is not None
                        and self._reliability.verify)
        self._on_fault = (injector.on_fault
                          if injector is not None else "fail-fast")
        self._tombstoned: Dict[int, float] = {}
        self._op_index = 0
        self._phase_stack: List[str] = []
        # Reliability receive state: per-channel next-expected sequence
        # number and the out-of-order stash (in-order reassembly +
        # duplicate suppression).  Only this rank touches its own entries.
        self._rel_expected: Dict[ChannelKey, int] = {}
        self._rel_stash: Dict[ChannelKey, Dict[int, Envelope]] = {}
        # Backend hook: the cooperative scheduler reads this rank's clock
        # through the fabric to order its run queue.
        network.register_rank(rank, self)

    # -- identity -------------------------------------------------------
    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._network.nprocs

    @property
    def machine(self) -> MachineProfile:
        return self._network.machine

    @property
    def clock(self) -> float:
        """This rank's simulated clock, in seconds."""
        return self._clock

    @property
    def trace(self) -> TraceBase:
        return self._trace

    @property
    def wire(self) -> str:
        """The job's payload transport mode: ``"bytes"`` or ``"phantom"``."""
        return self._network.wire

    @property
    def payload_enabled(self) -> bool:
        """True when data-plane messages carry real bytes.

        Algorithm kernels branch on this to skip host-side data movement
        (staging copies, buffer fills) in phantom mode while charging the
        identical simulated costs.
        """
        return self._payload_enabled

    @property
    def op_index(self) -> int:
        """Count of point-to-point operations this rank has posted (sends
        plus receives, 1-based after the first).  Crash rules' ``step``
        indexes into this sequence."""
        return self._op_index

    @property
    def current_phase(self) -> Optional[str]:
        """Innermost open :meth:`phase` name, or ``None`` — fault rules
        with a ``phase`` matcher compare against this at post time."""
        return self._phase_stack[-1] if self._phase_stack else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Communicator(rank={self._rank}, size={self.size})"

    # -- validation helpers ----------------------------------------------
    def _check_peer(self, peer: int, what: str) -> int:
        peer = int(peer)
        if not 0 <= peer < self.size:
            raise InvalidRankError(peer, self.size, what)
        return peer

    @staticmethod
    def _check_tag(tag: int) -> int:
        tag = int(tag)
        if tag < 0:
            raise InvalidTagError(tag, "tags must be non-negative")
        if tag >= MAX_USER_TAG:
            raise InvalidTagError(tag, f"user tags must be below {MAX_USER_TAG}")
        return tag

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------
    def isend(self, buf: Buffer, dest: int, tag: int = 0, *,
              control: bool = False) -> SendRequest:
        """Post a nonblocking send of ``buf`` (an ndarray).

        ``control=True`` marks a control-plane message (block-size arrays,
        headers — anything the receiver *reads* to steer its own control
        flow): those carry real bytes even in phantom wire mode.  Plain
        data-plane sends carry only their size in phantom mode.
        """
        dest = self._check_peer(dest, "destination")
        tag = self._check_tag(tag)
        return self._isend_buffer(buf, dest, tag, control)

    def _isend_buffer(self, buf: Buffer, dest: int, tag: int,
                      control: bool = False) -> SendRequest:
        """Wire-mode-aware ndarray send (peer/tag already validated)."""
        if control or self._payload_enabled:
            payload = _payload_of(buf)
            return self._post_envelope(payload, len(payload), dest, tag)
        if not isinstance(buf, np.ndarray):
            raise TypeError(f"send buffer must be an ndarray, got {type(buf)}")
        return self._post_envelope(None, int(buf.nbytes), dest, tag)

    def _isend_raw(self, payload: bytes, dest: int, tag: int) -> SendRequest:
        """Send pre-serialized bytes; always carried, even in phantom mode
        (the object transport's contents are the message)."""
        return self._post_envelope(payload, len(payload), dest, tag)

    def _post_envelope(self, payload: Optional[bytes], nbytes: int,
                       dest: int, tag: int) -> SendRequest:
        self._bump_op()
        begin = self._clock
        self._clock += self._o_send_to(dest) * self._straggle
        if self._verify:
            # Stamping the checksum/auth tag is a hash pass over the
            # message: one copy_time(nbytes), before departure.
            self._clock += self.machine.copy_time(nbytes) * self._straggle
        depart = self._clock
        records = self._network.post(
            Envelope(self._rank, dest, tag, payload, depart, nbytes),
            phase=self.current_phase)
        if records:
            for rec in records:
                self._trace.record_fault(rec.kind, rec.src, rec.dst, rec.tag,
                                         rec.nbytes, rec.clock, rec.detail)
        self._trace.record_send(self._rank, dest, tag, nbytes, depart,
                                begin=begin)
        return SendRequest(self, depart, nbytes)

    def irecv(self, buf: Buffer, source: int, tag: int = 0) -> RecvRequest:
        """Post a nonblocking receive into ``buf`` (a contiguous ndarray)."""
        source = self._check_peer(source, "source")
        tag = self._check_tag(tag)
        return self._irecv_raw(buf, source, tag)

    def _irecv_raw(self, buf: Buffer, source: int, tag: int) -> RecvRequest:
        self._bump_op()
        self._clock += self._o_recv_from(source) * self._straggle
        return RecvRequest(self, source, tag, buf)

    def _o_send_to(self, dest: int) -> float:
        """Per-message injection overhead on the tier ``dest`` selects."""
        m = self.machine
        return m.o_send_intra if m.is_intra(self._rank, dest) else m.o_send

    def _o_recv_from(self, source: int) -> float:
        """Per-message retire overhead on the tier ``source`` selects."""
        m = self.machine
        return m.o_recv_intra if m.is_intra(source, self._rank) else m.o_recv

    def _bump_op(self) -> None:
        """Advance the posted-op counter; trip this rank's crash rule.

        Both triggers are pure functions of the rank's own program state
        (its op count / its simulated clock), so where a rank crashes is
        identical on every backend and every re-run.
        """
        self._op_index += 1
        c = self._crash
        if c is not None and (
                (c.step is not None and self._op_index >= c.step)
                or (c.time is not None and self._clock >= c.time)):
            raise InjectedCrashError(self._rank, self._clock, self._op_index)

    def send(self, buf: Buffer, dest: int, tag: int = 0, *,
             control: bool = False) -> None:
        """Blocking send (eager: completes locally)."""
        self.isend(buf, dest, tag, control=control).wait()

    def recv(self, buf: Buffer, source: int, tag: int = 0) -> int:
        """Blocking receive; returns the number of bytes received."""
        req = self.irecv(buf, source, tag)
        req.wait()
        assert req.received_nbytes is not None
        return req.received_nbytes

    def sendrecv(self, sendbuf: Buffer, dest: int, sendtag: int,
                 recvbuf: Buffer, source: int, recvtag: int, *,
                 control: bool = False) -> int:
        """Simultaneous send and receive (deadlock-free pairwise exchange)."""
        sreq = self.isend(sendbuf, dest, sendtag, control=control)
        rreq = self.irecv(recvbuf, source, recvtag)
        sreq.wait()
        rreq.wait()
        assert rreq.received_nbytes is not None
        return rreq.received_nbytes

    def waitall(self, requests: Sequence[Request]) -> None:
        waitall(requests)

    # Internal variants used by collectives: tags come from the reserved
    # internal space, so they bypass user-tag validation.  These carry the
    # collective's own state (barrier tokens, reduction accumulators,
    # allgather slices), which the receiver reads — control plane, so they
    # always transport real bytes regardless of wire mode.
    def _send_internal(self, buf: Buffer, dest: int, tag: int) -> None:
        self._isend_buffer(buf, dest, tag, control=True).wait()

    def _recv_internal(self, buf: Buffer, source: int, tag: int) -> int:
        req = self._irecv_raw(buf, source, tag)
        req.wait()
        assert req.received_nbytes is not None
        return req.received_nbytes

    def _sendrecv_internal(self, sendbuf: Buffer, dest: int, sendtag: int,
                           recvbuf: Buffer, source: int, recvtag: int) -> int:
        sreq = self._isend_buffer(sendbuf, dest, sendtag, control=True)
        rreq = self._irecv_raw(recvbuf, source, recvtag)
        sreq.wait()
        rreq.wait()
        assert rreq.received_nbytes is not None
        return rreq.received_nbytes

    def probe_nbytes(self, source: int, tag: int = 0) -> Optional[int]:
        """Size of the next matching pending message, if already posted."""
        return self._network.probe(self._check_peer(source, "source"),
                                   self._rank, self._check_tag(tag))

    # -- pickled-object transport (application convenience) -------------
    def send_obj(self, obj: Any, dest: int, tag: int = 0) -> None:
        dest = self._check_peer(dest, "destination")
        tag = self._check_tag(tag)
        self._isend_raw(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL),
                        dest, tag).wait()

    def recv_obj(self, source: int, tag: int = 0) -> Any:
        """Receive one pickled object; returns ``None`` if ``source`` was
        excised by degrade mode (its contribution reads as empty)."""
        source = self._check_peer(source, "source")
        tag = self._check_tag(tag)
        self._bump_op()
        self._clock += self._o_recv_from(source) * self._straggle
        env = self._collect(source, tag)
        if env.mark == "dead":
            self._complete_dead_recv(env)
            return None
        if env.mark == "lost":
            self._raise_lost(env)
        if env.mark == "corrupt_lost":
            self._raise_corrupt_exhausted(env)
        self._complete_recv(env)
        return pickle.loads(env.payload)

    # -- fault-aware receive plumbing ------------------------------------
    def _collect(self, source: int, tag: int) -> Envelope:
        """Fetch the next deliverable envelope on ``(source, rank, tag)``.

        On a clean fabric this is a straight ``Network.collect``.  Under
        the reliability transport it enforces in-order delivery by wire
        sequence number: later sequences are stashed until their
        predecessors land (reordered messages reassemble), and sequences
        below the expected one are suppressed as duplicates (each
        suppression is counted, costs nothing in simulated time, and never
        reaches the application).

        Under the ``verify`` tier every collected envelope is integrity-
        checked *before* it can influence this rank (auth tag first, then
        checksum — or declared-size in phantom mode); a failed check is
        handled per the ``on_fault`` policy (raise typed / discard and
        await the retransmission / tombstone the claimed sender) in
        :meth:`_on_verify_failure`.
        """
        net = self._network
        # Release our own outstanding reorder hold (if any) before
        # blocking: a held message may be exactly what the peer needs to
        # make progress toward satisfying this receive.  The trigger is a
        # program-order event of this rank, so it is identical on both
        # backends and determinism is preserved.
        net.flush_sender(self._rank)
        if self._reliability is None:
            return net.collect(source, self._rank, tag,
                               host_timeout=self._recv_timeout)
        if self._verify and source in self._tombstoned:
            # This rank already excised the sender: every later receive
            # from it short-circuits to an empty contribution without
            # consuming (possibly genuine) channel traffic.
            return Envelope(source, self._rank, tag, b"",
                            depart=self._tombstoned[source], nbytes=0,
                            mark="dead")
        key = (source, self._rank, tag)
        stash = self._rel_stash.setdefault(key, {})
        while True:
            expected = self._rel_expected.get(key, 0)
            env = stash.pop(expected, None)
            if env is None:
                env = net.collect(source, self._rank, tag,
                                  host_timeout=self._recv_timeout)
                if env.mark == "dead":
                    return env
                if self._verify:
                    verdict = self._verify_env(env)
                    if verdict is not None:
                        replacement = self._on_verify_failure(verdict, env)
                        if replacement is not None:
                            return replacement
                        continue
                if env.seq is None:
                    return env
                if env.seq < expected:
                    self._record_fault("dup_suppressed", env)
                    continue
                if env.seq > expected:
                    stash[env.seq] = env
                    continue
            self._rel_expected[key] = expected + 1
            return env

    def _record_fault(self, kind: str, env: Envelope,
                      detail: str = "") -> None:
        """Receiver-side fault event: into the rank trace and aggregates."""
        self._trace.record_fault(kind, env.src, env.dst, env.tag,
                                 env.nbytes, self._clock, detail)
        metrics = self._network.metrics
        if metrics is not None:
            metrics.on_fault(kind, rank=self._rank)

    def _complete_dead_recv(self, env: Envelope) -> None:
        """Land a synthetic envelope from an excised rank: no bytes, no
        landing cost — the receiver just cannot finish before it learned
        of the crash (``max`` against the crash clock)."""
        self._clock = max(self._clock, env.depart)
        self._record_fault("dead_recv", env)
        self._trace.record_recv(env.src, env.dst, env.tag, 0,
                                self._clock, begin=self._clock)

    def _raise_lost(self, env: Envelope) -> None:
        """A reliable message exhausted its retries: fail typed at the
        simulated give-up deadline."""
        self._clock = max(self._clock, env.depart)
        self._record_fault("lost_detected", env)
        raise MessageLostError(env.src, env.dst, env.tag, env.depart)

    def _raise_corrupt_exhausted(self, env: Envelope) -> None:
        """Every retransmission of a verified message arrived tampered:
        fail typed at the simulated give-up deadline."""
        self._clock = max(self._clock, env.depart)
        self._record_fault("corrupt_lost_detected", env)
        raise MessageCorruptError(env.src, env.dst, env.tag, env.depart,
                                  reason="exhausted")

    def _verify_env(self, env: Envelope) -> Optional[str]:
        """Integrity-check one collected envelope under the verify tier.

        Returns ``None`` when the envelope is genuine, ``"forged"`` when
        the authentication tag does not match its (src, channel-seq)
        identity — a spoofed envelope was never stamped by the sender's
        transport — and ``"corrupt"`` when the tag is good but the payload
        checksum (bytes mode) or declared size (phantom mode) disagrees
        with what landed.  Tombstone marks pass through untouched: they
        carry the failure verdict themselves.
        """
        if env.mark in ("lost", "corrupt_lost"):
            return None
        if env.auth is None or env.auth != auth_tag(env.src, env.dst,
                                                    env.tag, env.seq):
            return "forged"
        if env.payload is None:
            if env.declared != env.nbytes:
                return "corrupt"
        elif env.checksum is None or env.checksum != payload_digest(env.payload):
            return "corrupt"
        return None

    def _on_verify_failure(self, verdict: str,
                           env: Envelope) -> Optional[Envelope]:
        """Handle a failed integrity check per the ``on_fault`` policy.

        The receiver pays for the rejected envelope first — it landed on
        the wire and was hashed before the check could fail — so detection
        charges the normal serial landing plus one checksum pass.  Then:
        ``fail-fast`` raises :class:`MessageCorruptError`; ``retry``
        returns ``None`` (discard and keep collecting — the sender's
        retransmission dialogue is already in flight); ``degrade``
        tombstones the claimed sender and returns a synthetic dead
        envelope so the collective completes without it.
        """
        head = self._network.head_time(env)
        landing_start = max(self._clock, head)
        self._clock = (landing_start
                       + self._network.serial_time(env) * self._straggle
                       + self.machine.copy_time(env.nbytes) * self._straggle)
        kind = "forge_rejected" if verdict == "forged" else "corrupt_detected"
        self._record_fault(kind, env)
        if self._on_fault == "retry":
            return None
        if self._on_fault == "degrade":
            self._tombstoned.setdefault(env.src, self._clock)
            self._network.report_tombstone(env.src, self._clock)
            return Envelope(env.src, self._rank, env.tag, b"",
                            depart=self._clock, nbytes=0, mark="dead")
        raise MessageCorruptError(env.src, self._rank, env.tag,
                                  self._clock, reason=verdict)

    def _complete_recv(self, env: Envelope) -> None:
        """Land one delivered message on this rank's simulated clock.

        The one place the receive-side timing rule lives (both backends,
        both the object and the buffer transport): completion is
        ``max(clock, head arrival) + serial landing time``.  Stragglers pay
        their multiplier on the serial landing; the reliability transport
        adds one ``o_send`` for the ack injection.
        """
        head = self._network.head_time(env)
        landing_start = max(self._clock, head)
        metrics = self._network.metrics
        if metrics is not None:
            metrics.on_retire(env.src, self._rank, env.tag,
                              env.depart, head, self._clock)
        self._clock = (landing_start
                       + self._network.serial_time(env) * self._straggle)
        if self._verify:
            # One checksum pass over the landed bytes: the integrity
            # check is a memory-bandwidth-bound scan, costed like a copy.
            self._clock += self.machine.copy_time(env.nbytes) * self._straggle
        rel = self._reliability
        if rel is not None and rel.ack_overhead:
            self._clock += self._o_send_to(env.src) * self._straggle
        self._trace.record_recv(env.src, env.dst, env.tag, env.nbytes,
                                self._clock, begin=landing_start)

    # ------------------------------------------------------------------
    # simulated-cost hooks for algorithm implementations
    # ------------------------------------------------------------------
    def charge_compute(self, seconds: float) -> None:
        """Advance this rank's clock by an arbitrary local-compute cost."""
        if seconds < 0:
            raise ValueError("compute time must be non-negative")
        self._clock += seconds

    def charge_copy(self, nbytes: int) -> None:
        """Charge one explicit contiguous memory copy of ``nbytes`` bytes."""
        if nbytes <= 0:
            return
        begin = self._clock
        self._clock += self.machine.copy_time(int(nbytes))
        self._trace.record_copy(int(nbytes), self._clock, begin=begin)

    def charge_copies(self, counts: Sequence[int]) -> None:
        """Charge one copy per entry of ``counts``, in order.

        Bit-identical to calling :meth:`charge_copy` in a Python loop — the
        per-copy times are evaluated with the same IEEE expressions and the
        clock advances through the same left-to-right float additions (via
        ``np.add.accumulate``) — but the per-block interpreter overhead
        collapses into one vectorized call.  This is what keeps the
        Two-Phase/Padded staging loops' cost accounting cheap at P=1024+.
        Non-positive entries are skipped, exactly like ``charge_copy``.
        """
        arr = np.asarray(counts, dtype=np.int64)
        arr = arr[arr > 0]
        if arr.size == 0:
            return
        m = self.machine
        times = m.kappa_mem + m.gamma_mem * arr.astype(np.float64)
        clocks = np.add.accumulate(np.concatenate(([self._clock], times)))
        if not isinstance(self._trace, NullTrace):
            begin = self._clock
            for n, after in zip(arr.tolist(), clocks[1:].tolist()):
                self._trace.record_copy(int(n), after, begin=begin)
                begin = after
        self._clock = float(clocks[-1])

    def pack(self, buffer: Buffer, blocks: IndexedBlocks) -> np.ndarray:
        """Datatype-engine pack: gather ``blocks`` of ``buffer``, charging
        the derived-datatype cost (used by the ``-dt`` Bruck variants).

        In phantom wire mode the gather is skipped: the returned array has
        the right size for the subsequent (size-only) send but its contents
        are unspecified.
        """
        if self._payload_enabled:
            data = blocks.pack(buffer)
        else:
            data = np.empty(blocks.nbytes, dtype=np.uint8)
        begin = self._clock
        self._clock += self.machine.datatype_time(blocks.nblocks, blocks.nbytes)
        self._trace.record_datatype("pack", blocks.nblocks, blocks.nbytes,
                                    self._clock, begin=begin)
        return data

    def unpack(self, buffer: Buffer, blocks: IndexedBlocks,
               data: np.ndarray) -> None:
        """Datatype-engine unpack: scatter ``data`` into ``blocks``
        (skipped, but charged, in phantom wire mode)."""
        if self._payload_enabled:
            blocks.unpack(buffer, data)
        begin = self._clock
        self._clock += self.machine.datatype_time(blocks.nblocks, blocks.nbytes)
        self._trace.record_datatype("unpack", blocks.nblocks, blocks.nbytes,
                                    self._clock, begin=begin)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Record a named simulated-time interval (Fig. 2b breakdowns).

        The innermost open phase name is also the fault engine's ``phase``
        matcher input for messages this rank posts (see
        :attr:`current_phase`).
        """
        self._trace.phase_begin(name, self._clock)
        self._phase_stack.append(name)
        try:
            yield
        finally:
            self._phase_stack.pop()
            self._trace.phase_end(self._clock)

    @contextmanager
    def _collective(self, name: str) -> Iterator[None]:
        """Record one collective invocation as a traced interval."""
        self._trace.collective_begin(name, self._clock)
        try:
            yield
        finally:
            self._trace.collective_end(self._clock)

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------
    def _next_coll_tags(self) -> int:
        """Reserve a fresh internal tag block for one collective call.

        SPMD discipline (all ranks invoke collectives in the same order)
        guarantees every rank derives the same base tag for the same call.
        """
        base = _INTERNAL_TAG_BASE + self._coll_seq * _INTERNAL_TAG_STRIDE
        self._coll_seq += 1
        return base

    def barrier(self) -> None:
        """Dissemination barrier: ``ceil(log2 P)`` pairwise rounds."""
        with self._collective("barrier"):
            p, rank = self.size, self._rank
            if p == 1:
                return
            tag = self._next_coll_tags()
            token = np.zeros(1, dtype=np.uint8)
            scratch = np.zeros(1, dtype=np.uint8)
            k = 1
            while k < p:
                self._sendrecv_internal(token, (rank + k) % p, tag,
                                        scratch, (rank - k) % p, tag)
                k <<= 1

    def bcast(self, buf: Buffer, root: int = 0) -> None:
        """Binomial-tree broadcast of ``buf`` (in place on non-roots)."""
        with self._collective("bcast"):
            p = self.size
            root = self._check_peer(root, "root")
            if p == 1:
                return
            tag = self._next_coll_tags()
            # Rotate ranks so the tree is rooted at 0.
            vrank = (self._rank - root) % p
            mask = 1
            while mask < p:
                if vrank & mask:
                    src = ((vrank ^ mask) + root) % p
                    self._recv_internal(buf, src, tag)
                    break
                mask <<= 1
            mask >>= 1
            while mask > 0:
                if vrank + mask < p:
                    dst = ((vrank | mask) + root) % p
                    self._send_internal(buf, dst, tag)
                mask >>= 1

    def allreduce(self, value: Union[int, float], op: str = "max") -> Union[int, float]:
        """Allreduce of one scalar with ``op`` in {"max", "min", "sum"}.

        ``max``/``min`` use a dissemination exchange (idempotent ops are
        safe under the non-power-of-two double-counting of dissemination);
        ``sum`` uses recursive doubling over a power-of-two subgroup with
        pre/post folding of the remainder ranks.
        """
        if op in ("max", "min"):
            with self._collective("allreduce"):
                return self._allreduce_idempotent(
                    value, max if op == "max" else min)
        if op == "sum":
            with self._collective("allreduce"):
                return self._allreduce_sum(value)
        raise ValueError(f"unsupported allreduce op {op!r}")

    def _allreduce_idempotent(self, value: Union[int, float],
                              fold: Callable[[Any, Any], Any]) -> Union[int, float]:
        p, rank = self.size, self._rank
        if p == 1:
            return value
        tag = self._next_coll_tags()
        acc = np.array([value], dtype=np.float64)
        incoming = np.empty(1, dtype=np.float64)
        k = 1
        while k < p:
            self._sendrecv_internal(acc, (rank + k) % p, tag,
                                    incoming, (rank - k) % p, tag)
            acc[0] = fold(acc[0], incoming[0])
            k <<= 1
        result = acc[0]
        return int(result) if isinstance(value, (int, np.integer)) else float(result)

    def _allreduce_sum(self, value: Union[int, float]) -> Union[int, float]:
        p, rank = self.size, self._rank
        if p == 1:
            return value
        tag = self._next_coll_tags()
        pof2 = 1 << (p.bit_length() - 1)
        rem = p - pof2
        acc = np.array([value], dtype=np.float64)
        incoming = np.empty(1, dtype=np.float64)
        # Fold remainder ranks into the power-of-two group.
        if rank < 2 * rem:
            if rank % 2 == 1:          # odd ranks donate and sit out
                self._send_internal(acc, rank - 1, tag)
                newrank = -1
            else:                       # even ranks absorb a partner
                self._recv_internal(incoming, rank + 1, tag)
                acc[0] += incoming[0]
                newrank = rank // 2
        else:
            newrank = rank - rem
        if newrank >= 0:
            mask = 1
            while mask < pof2:
                partner_new = newrank ^ mask
                partner = (partner_new * 2 if partner_new < rem
                           else partner_new + rem)
                self._sendrecv_internal(acc, partner, tag + 1,
                                        incoming, partner, tag + 1)
                acc[0] += incoming[0]
                mask <<= 1
        # Hand results back to the sat-out ranks.
        if rank < 2 * rem:
            if rank % 2 == 1:
                self._recv_internal(acc, rank - 1, tag + 2)
            else:
                self._send_internal(acc, rank + 1, tag + 2)
        result = acc[0]
        return int(result) if isinstance(value, (int, np.integer)) else float(result)

    def allgather(self, value: np.ndarray) -> np.ndarray:
        """Allgather equal-size arrays via the ring algorithm.

        Returns an array of shape ``(size,) + value.shape``.
        """
        with self._collective("allgather"):
            p, rank = self.size, self._rank
            value = np.ascontiguousarray(value)
            out = np.empty((p,) + value.shape, dtype=value.dtype)
            out[rank] = value
            if p == 1:
                return out
            tag = self._next_coll_tags()
            right, left = (rank + 1) % p, (rank - 1) % p
            for step in range(p - 1):
                send_idx = (rank - step) % p
                recv_idx = (rank - step - 1) % p
                self._sendrecv_internal(out[send_idx], right, tag,
                                        out[recv_idx], left, tag)
            return out

    # -- builtin all-to-all (the spread-out "vendor" baseline) ----------
    def alltoall(self, sendbuf: Buffer, recvbuf: Buffer, block_nbytes: int) -> None:
        """Uniform all-to-all with the spread-out (pairwise Isend/Irecv)
        algorithm — the stand-in for the vendor ``MPI_Alltoall``.

        ``sendbuf``/``recvbuf`` are flat byte buffers of ``P * block_nbytes``.
        """
        with self._collective("alltoall"):
            p, rank = self.size, self._rank
            sview = _byte_view(sendbuf)
            rview = _byte_view(recvbuf)
            n = int(block_nbytes)
            if sview.nbytes < p * n or rview.nbytes < p * n:
                raise ValueError(
                    f"alltoall buffers need {p * n} bytes "
                    f"(send has {sview.nbytes}, recv has {rview.nbytes})"
                )
            tag = self._next_coll_tags()
            # Self block: local copy (charged in both wire modes).
            if self._payload_enabled:
                rview[rank * n:(rank + 1) * n] = sview[rank * n:(rank + 1) * n]
            self.charge_copy(n)
            reqs: List[Request] = []
            for off in range(1, p):
                src = (rank - off) % p
                reqs.append(self._irecv_raw(rview[src * n:(src + 1) * n],
                                            src, tag))
            for off in range(1, p):
                dst = (rank + off) % p
                reqs.append(self._isend_buffer(sview[dst * n:(dst + 1) * n],
                                               dst, tag))
            waitall(reqs)

    def alltoallv(self, sendbuf: Buffer, sendcounts: Sequence[int],
                  sdispls: Sequence[int], recvbuf: Buffer,
                  recvcounts: Sequence[int], rdispls: Sequence[int]) -> None:
        """Non-uniform all-to-all with the spread-out algorithm — the
        stand-in for the vendor ``MPI_Alltoallv`` (MPICH-style).

        All counts/displacements are in bytes over flat byte buffers.
        """
        with self._collective("alltoallv"):
            p, rank = self.size, self._rank
            sview = _byte_view(sendbuf)
            rview = _byte_view(recvbuf)
            sendcounts = np.asarray(sendcounts, dtype=np.int64)
            recvcounts = np.asarray(recvcounts, dtype=np.int64)
            sdispls = np.asarray(sdispls, dtype=np.int64)
            rdispls = np.asarray(rdispls, dtype=np.int64)
            for name, arr in (("sendcounts", sendcounts),
                              ("recvcounts", recvcounts),
                              ("sdispls", sdispls), ("rdispls", rdispls)):
                if len(arr) != p:
                    raise ValueError(
                        f"{name} must have length {p}, got {len(arr)}")
            # Counts/displs reaching past the buffers would silently produce
            # short slice views (truncated sends, partially-landed receives);
            # validate extents like the Bruck kernels do.  Imported lazily:
            # ``repro.core`` imports ``simmpi`` at module load.
            from ..core.common import checked_counts_displs
            checked_counts_displs(sendcounts, sdispls, p, sview.nbytes,
                                  "alltoallv send")
            checked_counts_displs(recvcounts, rdispls, p, rview.nbytes,
                                  "alltoallv recv")
            tag = self._next_coll_tags()
            # Self block (charged in both wire modes).
            n_self = int(sendcounts[rank])
            if n_self:
                if self._payload_enabled:
                    rview[rdispls[rank]:rdispls[rank] + n_self] = \
                        sview[sdispls[rank]:sdispls[rank] + n_self]
                self.charge_copy(n_self)
            reqs: List[Request] = []
            for off in range(1, p):
                src = (rank - off) % p
                cnt = int(recvcounts[src])
                reqs.append(self._irecv_raw(
                    rview[rdispls[src]:rdispls[src] + cnt], src, tag))
            for off in range(1, p):
                dst = (rank + off) % p
                cnt = int(sendcounts[dst])
                reqs.append(self._isend_buffer(
                    sview[sdispls[dst]:sdispls[dst] + cnt], dst, tag))
            waitall(reqs)


def _byte_view(buffer: Buffer) -> np.ndarray:
    if not isinstance(buffer, np.ndarray):
        raise TypeError(f"buffer must be an ndarray, got {type(buffer)}")
    if not buffer.flags.c_contiguous:
        raise ValueError("buffer must be C-contiguous")
    return buffer.reshape(-1).view(np.uint8)


def _payload_of(buf: Buffer) -> bytes:
    """Snapshot an ndarray (or slice view) as immutable bytes.

    ``tobytes()`` serializes in C order for any layout, so non-contiguous
    views are snapshotted in one pass — no ``ascontiguousarray`` staging
    copy first.
    """
    if not isinstance(buf, np.ndarray):
        raise TypeError(f"send buffer must be an ndarray, got {type(buf)}")
    return buf.tobytes()

"""Critical-path extraction and makespan attribution for SPMD runs.

Two questions matter when a simulated all-to-all is slower than the
model says it should be: *which chain of messages actually bounded the
makespan* (the critical path through the happens-before DAG), and *what
each rank's clock was spent on* (attribution).  This module answers both
from data the run already recorded:

* With **event traces** (``trace=True`` / ``"events"``) the message DAG
  is explicit: the i-th receive on a ``(src, dst, tag)`` channel
  happens-after the i-th send on it (per-channel FIFO delivery).
  :func:`analyze` walks that DAG backwards from the slowest rank's final
  event, hopping to the sender whenever a landing was bound by arrival
  rather than by local readiness.
* On the **tensor backend** (``trace="metrics"``) there are no per-event
  traces; the lane engine instead logs one coarse record per
  communication step and exact per-rank bucket sums, which yield a
  step-granular path and the same attribution table.

Attribution buckets per rank (they sum *exactly* to the rank's final
clock — see :func:`_exact_residual`):

``overhead``
    CPU injection/reception charges (``o_send``/``o_recv``, with the
    straggler multiplier folded in).
``transmit``
    Uncongested serialization — ``serial_time(n, 1)`` per received
    message: the time the bytes would need on an idle fabric.
``congestion``
    The concurrency surcharge ``serial_time(n, P) - serial_time(n, 1)``
    the machine model levies on each landing.
``fault_delay``
    The straggler multiplier's surcharge on serialization.  Injected
    departure *delays* are reported separately
    (:attr:`CriticalPathResult.injected_delay`): a delayed departure
    costs the receiver waiting time, so its clock effect already shows
    up in ``queue_wait`` — charging it here as well would double-count.
``queue_wait``
    Idle time waiting for messages to arrive.
``compute``
    Everything else — copies, datatype packing, and explicit compute
    charges — obtained as the exact residual of the other buckets
    against the rank's clock, so the decomposition is conserving by
    construction.

The event-trace decomposition derives ``queue_wait`` from timeline gaps
(idle = clock minus the union of evented busy intervals minus the
un-evented ``o_recv`` charges), so tiny explicit compute charges that
fall inside a pre-landing gap can be counted as waiting; the tensor
path records every bucket directly in the engine and has no such
smearing.  Both decompositions are exact in *sum* on every rank.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .executor import SPMDResult

__all__ = ["BUCKETS", "PathSegment", "RankAttribution",
           "CriticalPathResult", "analyze"]

#: Attribution bucket names, in report order.
BUCKETS = ("compute", "overhead", "transmit", "congestion", "queue_wait",
           "fault_delay")

#: Relative tolerance for "was this landing bound by arrival or by local
#: readiness" comparisons on the event-trace walk.  Purely a tie-break
#: for float-equal timestamps; never used in the attribution arithmetic.
_EPS = 1e-12


@dataclass(frozen=True)
class PathSegment:
    """One hop of the critical path: an interval on one rank's clock."""

    rank: int
    kind: str       # "send" | "recv" | "copy" | "datatype" | "step" | "local"
    start: float
    end: float
    detail: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class RankAttribution:
    """One rank's makespan, decomposed into the six buckets.

    ``compute + overhead + transmit + congestion + queue_wait +
    fault_delay == makespan`` exactly (``math.fsum``, not approximately).
    """

    rank: int
    makespan: float
    compute: float
    overhead: float
    transmit: float
    congestion: float
    queue_wait: float
    fault_delay: float

    def buckets(self) -> Dict[str, float]:
        return {name: getattr(self, name) for name in BUCKETS}

    def total(self) -> float:
        """Exact sum of the buckets — equals :attr:`makespan`."""
        return math.fsum(getattr(self, name) for name in BUCKETS)


@dataclass
class CriticalPathResult:
    """Outcome of :func:`analyze`: the path plus per-rank attribution."""

    nprocs: int
    #: The run's simulated makespan; equals ``path[-1].end`` exactly.
    elapsed: float
    per_rank: List[RankAttribution]
    #: Chronological happens-before chain ending at ``elapsed``.
    path: List[PathSegment]
    #: "events" (trace-DAG walk) or "steps" (tensor coarse step log).
    granularity: str = "events"
    #: Total injected departure delay (informational; see module docs).
    injected_delay: float = 0.0

    def bucket_totals(self) -> Dict[str, float]:
        """Per-bucket sums over all ranks (``math.fsum``)."""
        return {name: math.fsum(getattr(a, name) for a in self.per_rank)
                for name in BUCKETS}

    def slowest(self) -> RankAttribution:
        return max(self.per_rank, key=lambda a: (a.makespan, -a.rank))

    def path_ranks(self) -> List[int]:
        """Distinct ranks on the path, in order of first appearance."""
        seen: List[int] = []
        for seg in self.path:
            if seg.rank not in seen:
                seen.append(seg.rank)
        return seen

    def format(self, limit: int = 12) -> str:
        """Human-readable attribution + path report."""
        lines: List[str] = []
        slow = self.slowest()
        lines.append(
            f"critical path: {len(self.path)} segment(s) across "
            f"{len(self.path_ranks())} rank(s), ending on rank "
            f"{slow.rank} at {self.elapsed * 1e3:.4f} ms "
            f"({self.granularity} granularity)")
        totals = self.bucket_totals()
        denom = math.fsum(totals.values()) or 1.0
        lines.append("makespan attribution (summed over ranks, ms):")
        width = max(len(n) for n in BUCKETS)
        for name in BUCKETS:
            t = totals[name]
            lines.append(f"  {name:>{width}}: {t * 1e3:12.4f}  "
                         f"({100.0 * t / denom:5.1f}%)")
        if self.injected_delay:
            lines.append(
                f"  (+ {self.injected_delay * 1e3:.4f} ms injected "
                f"departure delay, surfacing as queue_wait downstream)")
        lines.append(f"slowest rank {slow.rank} breakdown (ms): " + ", ".join(
            f"{name}={getattr(slow, name) * 1e3:.4f}" for name in BUCKETS))
        shown = self.path if len(self.path) <= limit else self.path[-limit:]
        if shown is not self.path:
            lines.append(f"  ({len(self.path) - limit} earlier path "
                         f"segments elided)")
        for seg in shown:
            lines.append(
                f"  rank {seg.rank:>5} {seg.kind:>9} "
                f"[{seg.start * 1e3:12.4f}, {seg.end * 1e3:12.4f}] ms"
                + (f"  {seg.detail}" if seg.detail else ""))
        return "\n".join(lines)


def _exact_residual(makespan: float, parts: List[float]) -> float:
    """The float ``c`` with ``fsum(parts + [c]) == makespan`` exactly.

    Iterative refinement: each step adds the exact remaining defect
    (``fsum`` is correctly rounded), which shrinks below one ulp within a
    few iterations.  ``c += d`` itself rounds, so the loop can oscillate
    between two neighbours one ulp apart; the tail walks ``c`` ulp by
    ulp to close the last bit (``fsum(parts + [c])`` is monotone in
    ``c``, and ``|c| <= |makespan|`` guarantees a representable hit).
    """
    c = makespan - math.fsum(parts)
    for _ in range(64):
        d = makespan - math.fsum(parts + [c])
        if d == 0.0:
            return c
        c += d
    for _ in range(8):
        d = makespan - math.fsum(parts + [c])
        if d == 0.0:
            break
        c = math.nextafter(c, math.inf if d > 0.0 else -math.inf)
    return c


def _close_buckets(makespan: float, overhead: float, transmit: float,
                   congestion: float, queue_wait: float,
                   fault_delay: float) -> Tuple[float, float]:
    """``(compute, queue_wait)`` closing the decomposition exactly.

    ``compute`` is the exact residual of the other five buckets against
    the makespan.  When float dust drives it a hair negative (the gap
    analysis and the bucket charges round independently), the dust is
    folded into ``queue_wait`` instead so every reported bucket stays
    non-negative while the sum stays exact.
    """
    parts = [overhead, transmit, congestion, queue_wait, fault_delay]
    compute = _exact_residual(makespan, parts)
    if compute < 0.0:
        queue_wait = _exact_residual(
            makespan, [overhead, transmit, congestion, fault_delay])
        compute = 0.0
    return compute, queue_wait


def analyze(result: "SPMDResult") -> CriticalPathResult:
    """Extract the critical path and attribution for one SPMD run."""
    if result.traces is not None:
        return _from_events(result)
    if result.raw_attribution is not None:
        return _from_tensor(result)
    raise ValueError(
        "critical-path analysis needs event traces (trace=True or "
        "trace='events') or tensor-backend metrics (backend='tensor' "
        "with trace='metrics'); this run recorded neither")


# ----------------------------------------------------------------------
# event-trace mode (threads / coop backends)
# ----------------------------------------------------------------------

def _straggle_factors(result: "SPMDResult") -> List[float]:
    cfg = result.config
    plan = cfg.fault_plan if cfg is not None else None
    if plan is None:
        return [1.0] * result.nprocs
    return [plan.straggle_factor(r) for r in range(result.nprocs)]


def _from_events(result: "SPMDResult") -> CriticalPathResult:
    machine = result.machine
    p = result.nprocs
    straggle = _straggle_factors(result)
    injected = 0.0
    per_rank: List[RankAttribution] = []

    # Busy events per rank, sorted by end time, for the gap analysis and
    # the backward walk.
    busy_by_rank: List[List] = []
    for tr in result.traces:
        evs = list(tr.sends) + list(tr.recvs) + list(tr.copies) \
            + list(tr.datatype_ops)
        evs.sort(key=lambda e: (e.end, e.start))
        busy_by_rank.append(evs)
        injected += math.fsum(e.detail and _parse_delay(e.detail) or 0.0
                              for e in tr.faults if e.kind == "delay")

    for rank, tr in enumerate(result.traces):
        makespan = result.clocks[rank]
        s = straggle[rank]
        overhead = math.fsum(e.duration for e in tr.sends)
        o_recv_total = 0.0
        transmit = 0.0
        congestion = 0.0
        fault_delay = 0.0
        for e in tr.recvs:
            intra = machine.is_intra(e.src, e.dst)
            o_recv_total += (machine.o_recv_intra if intra
                             else machine.o_recv) * s
            serial = machine.serial_time(e.nbytes, p, intra)
            uncong = machine.serial_time(e.nbytes, 1, intra)
            transmit += uncong
            congestion += serial - uncong
            if s != 1.0:
                # On a clean rank duration == serial exactly; only
                # straggler ranks pay a serialization surcharge (the
                # difference would otherwise accumulate float dust).
                fault_delay += e.duration - serial
        overhead += o_recv_total
        # Idle time = clock minus the union of evented busy intervals;
        # the un-evented o_recv charges live in those gaps too.
        busy = _union_length(busy_by_rank[rank])
        queue_wait = max(0.0, makespan - busy - o_recv_total)
        compute, queue_wait = _close_buckets(
            makespan, overhead, transmit, congestion, queue_wait,
            fault_delay)
        per_rank.append(RankAttribution(
            rank=rank, makespan=makespan, compute=compute,
            overhead=overhead, transmit=transmit, congestion=congestion,
            queue_wait=queue_wait, fault_delay=fault_delay))

    path = _walk_event_dag(result, busy_by_rank)
    return CriticalPathResult(nprocs=p, elapsed=result.elapsed,
                              per_rank=per_rank, path=path,
                              granularity="events",
                              injected_delay=injected)


def _parse_delay(detail: str) -> float:
    """Injected delay from a FaultEvent detail like ``"+3.2e-05s"``."""
    try:
        return float(detail.lstrip("+").rstrip("s"))
    except ValueError:
        return 0.0


def _union_length(events: List) -> float:
    """Total length of the union of ``[start, end]`` event intervals."""
    if not events:
        return 0.0
    ivs = sorted((e.start, e.end) for e in events)
    total = 0.0
    cur_s, cur_e = ivs[0]
    for s, e in ivs[1:]:
        if s > cur_e:
            total += cur_e - cur_s
            cur_s, cur_e = s, e
        elif e > cur_e:
            cur_e = e
    return total + (cur_e - cur_s)


def _kind_of(e) -> str:
    name = type(e).__name__
    return {"SendEvent": "send", "RecvEvent": "recv", "CopyEvent": "copy",
            "DatatypeEvent": "datatype"}.get(name, "event")


def _walk_event_dag(result: "SPMDResult",
                    busy_by_rank: List[List]) -> List[PathSegment]:
    """Backward walk from the slowest rank's final clock.

    At each step, the latest event ending at (or before) the cursor is
    the binding constraint.  A receive whose landing began *after* the
    rank's previous activity ended was arrival-bound: the walk hops to
    the matching send on the source rank (the i-th receive on a channel
    matches the i-th send — per-channel FIFO).  Everything else is
    locally bound and the walk steps to the event's start.
    """
    # Channel-indexed send events for recv -> send matching.
    send_chan: Dict[Tuple[int, int, int], List] = {}
    for tr in result.traces:
        for e in tr.sends:
            send_chan.setdefault((e.src, e.dst, e.tag), []).append(e)
    # Receive sequence numbers per channel, assigned in per-rank program
    # order (the network delivers each channel FIFO).
    recv_seq: Dict[int, Dict[int, int]] = {}
    for tr in result.traces:
        seqs: Dict[Tuple[int, int, int], int] = {}
        table: Dict[int, int] = {}
        for e in tr.recvs:
            chan = (e.src, e.dst, e.tag)
            table[id(e)] = seqs.get(chan, 0)
            seqs[chan] = seqs.get(chan, 0) + 1
        recv_seq[tr.rank] = table

    rank = max(range(result.nprocs), key=lambda r: (result.clocks[r], -r))
    t = result.clocks[rank]
    segments: List[PathSegment] = []
    if t > 0.0 and (not busy_by_rank[rank]
                    or busy_by_rank[rank][-1].end < t):
        # The final charge was un-evented (o_recv / compute): close the
        # gap so the path provably ends at the run's makespan.
        start = busy_by_rank[rank][-1].end if busy_by_rank[rank] else 0.0
        segments.append(PathSegment(rank, "local", start, t))
        t = start
    guard = sum(len(evs) for evs in busy_by_rank) + result.nprocs + 1
    for _ in range(guard):
        if t <= 0.0:
            break
        evs = busy_by_rank[rank]
        ev = _latest_ending_at_or_before(evs, t)
        if ev is None:
            segments.append(PathSegment(rank, "local", 0.0, t))
            break
        if ev.end < t - _EPS * max(1.0, t):
            # Gap between the cursor and the last event: un-evented
            # charges (o_recv, explicit compute) on this rank.
            segments.append(PathSegment(rank, "local", ev.end, t))
        segments.append(PathSegment(
            rank, _kind_of(ev), ev.start, ev.end, _detail_of(ev)))
        if _kind_of(ev) == "recv":
            prev = _latest_ending_at_or_before(evs, ev.start)
            prev_end = prev.end if prev is not None else 0.0
            if ev.start > prev_end + _EPS * max(1.0, ev.start):
                # Arrival-bound landing: hop to the matching send.
                seq = recv_seq[rank].get(id(ev))
                sends = send_chan.get((ev.src, ev.dst, ev.tag), [])
                if seq is not None and seq < len(sends):
                    s = sends[seq]
                    rank, t = ev.src, s.end
                    continue
        t = ev.start
    segments.reverse()
    return segments


def _detail_of(e) -> str:
    kind = _kind_of(e)
    if kind == "send":
        return f"-> {e.dst} tag={e.tag} {e.nbytes}B"
    if kind == "recv":
        return f"<- {e.src} tag={e.tag} {e.nbytes}B"
    if kind in ("copy", "datatype"):
        return f"{e.nbytes}B"
    return ""


def _latest_ending_at_or_before(evs: List, t: float):
    """Latest event with ``end <= t`` (tolerating float dust above)."""
    lo, hi = 0, len(evs)
    bound = t + _EPS * max(1.0, t)
    while lo < hi:
        mid = (lo + hi) // 2
        if evs[mid].end <= bound:
            lo = mid + 1
        else:
            hi = mid
    return evs[lo - 1] if lo else None


# ----------------------------------------------------------------------
# tensor-backend mode (coarse step log)
# ----------------------------------------------------------------------

def _from_tensor(result: "SPMDResult") -> CriticalPathResult:
    raw = result.raw_attribution
    p = result.nprocs
    per_rank: List[RankAttribution] = []
    for rank in range(p):
        makespan = result.clocks[rank]
        parts = [raw["overhead"][rank], raw["transmit"][rank],
                 raw["congestion"][rank], raw["queue_wait"][rank],
                 raw["fault_delay"][rank]]
        compute, queue_wait = _close_buckets(makespan, parts[0], parts[1],
                                             parts[2], parts[3], parts[4])
        per_rank.append(RankAttribution(
            rank=rank, makespan=makespan, compute=compute,
            overhead=parts[0], transmit=parts[1], congestion=parts[2],
            queue_wait=queue_wait, fault_delay=parts[4]))

    path: List[PathSegment] = []
    prev_end = 0.0
    for tag, phase, end, rank in raw.get("step_log", ()):
        if end < prev_end:
            continue  # lane subsets can finish out of global order
        detail = f"tag={tag}" + (f" phase={phase}" if phase else "")
        path.append(PathSegment(rank, "step", prev_end, end, detail))
        prev_end = end
    elapsed = result.elapsed
    if elapsed > prev_end or not path:
        tail_rank = max(range(p), key=lambda r: (result.clocks[r], -r))
        path.append(PathSegment(tail_rank, "local", prev_end, elapsed))
    return CriticalPathResult(
        nprocs=p, elapsed=elapsed, per_rank=per_rank, path=path,
        granularity="steps",
        injected_delay=math.fsum(raw.get("injected_delay", ())))

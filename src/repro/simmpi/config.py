"""The typed execution configuration for :func:`repro.simmpi.run_spmd`.

``run_spmd`` grew one keyword at a time — machine, trace, timeout,
backend, wire, fault plan, fault seed, failure policy, reliability — until
every caller threaded nine loose kwargs through every layer.
:class:`ExecutionConfig` replaces that surface with one frozen, validated
value object:

* **validated at construction** — unknown backend/wire/on_fault/trace
  strings raise ``ValueError`` naming the valid set *before* any rank
  spawns, and the fault-plan / reliability spec strings are parsed here,
  so a typo fails at config build time, not deep inside a run;
* **normalized** — ``fault_plan`` and ``reliability`` are stored as their
  parsed object forms, and ``on_fault="retry"`` resolves the implied
  default :class:`~repro.simmpi.faults.ReliabilityConfig`, so the config
  echoed on :class:`~repro.simmpi.executor.SPMDResult` describes exactly
  what the run did;
* **hashable/frozen** — a config can key a result cache or be compared
  across runs.

The legacy ``run_spmd(fn, n, machine=..., backend=...)`` kwargs keep
working through a deprecation shim that forwards into a config.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Optional, Union

from .faults import FaultPlan, ReliabilityConfig
from .machine import LOCAL, MachineProfile
from .network import WIRE_MODES

__all__ = [
    "ExecutionConfig",
    "BACKENDS",
    "ON_FAULT_POLICIES",
    "TRACE_MODES",
    "WIRE_MODES",
]

#: Accepted values of the ``backend`` parameter.  ``threads`` runs one OS
#: thread per rank, ``coop`` a clock-ordered cooperative scheduler, and
#: ``tensor`` the vectorized whole-fabric engine (:mod:`repro.simmpi.tensor`).
BACKENDS = ("threads", "coop", "tensor")

#: Accepted values of the ``on_fault`` failure policy.
ON_FAULT_POLICIES = ("fail-fast", "retry", "degrade")

#: Accepted values of the ``trace`` parameter.  Booleans remain valid:
#: ``True`` maps to ``"full"`` (events + metrics) and ``False`` to ``"off"``.
TRACE_MODES = ("off", "events", "metrics", "full")


def _resolve_trace_mode(trace: Union[bool, str, None]) -> str:
    if trace is None or trace is False:
        return "off"
    if trace is True:
        return "full"
    if isinstance(trace, str) and trace in TRACE_MODES:
        return trace
    raise ValueError(
        f"trace must be a bool or one of {TRACE_MODES}, got {trace!r}"
    )


@dataclass(frozen=True)
class ExecutionConfig:
    """Everything about *how* an SPMD run executes (not *what* it runs).

    Parameters mirror the documented semantics of :func:`run_spmd`:

    machine:
        Cost-model profile (default: the forgiving ``LOCAL`` profile).
    trace:
        Observability mode: ``True``/``"full"``, ``"events"``,
        ``"metrics"``, or ``False``/``None``/``"off"``.  Stored
        normalized to one of :data:`TRACE_MODES`.
    timeout:
        Thread-backend watchdog in wall-clock seconds (shared by the
        whole job).  The coop and tensor backends ignore it.
    backend:
        One of :data:`BACKENDS`.
    wire:
        One of :data:`WIRE_MODES` (``"bytes"`` or ``"phantom"``).
    fault_plan:
        A :class:`~repro.simmpi.faults.FaultPlan`, its ``--faults`` spec
        string (parsed here), or ``None`` for a clean fabric.
    fault_seed:
        Seed of the fault engine's per-message RNG.
    on_fault:
        One of :data:`ON_FAULT_POLICIES`.  ``"retry"`` resolves the
        implied default :class:`ReliabilityConfig` at construction.
    reliability:
        A :class:`ReliabilityConfig`, ``"retry"`` (the defaults),
        ``"verify"`` (the defaults plus end-to-end integrity checks),
        or ``"none"``/``None``.
    ledger:
        Path of a JSONL run ledger.  When set and the run records
        metrics (``trace="metrics"``/``"full"``), the executor appends
        one structured record per run — config fingerprint, machine
        model version, aggregates, attribution buckets — via
        :mod:`repro.bench.ledger`.  ``None`` (default) disables it.

    Examples
    --------
    >>> cfg = ExecutionConfig(machine=THETA, backend="coop",
    ...                       wire="phantom", trace=False)
    >>> result = run_spmd(prog, 1024, config=cfg)
    """

    machine: MachineProfile = LOCAL
    trace: str = "full"
    timeout: float = 120.0
    backend: str = "threads"
    wire: str = "bytes"
    fault_plan: Optional[FaultPlan] = None
    fault_seed: int = 0
    on_fault: str = "fail-fast"
    reliability: Optional[ReliabilityConfig] = field(default=None)
    ledger: Optional[str] = None

    def __post_init__(self) -> None:
        if not isinstance(self.machine, MachineProfile):
            raise ValueError(
                f"machine must be a MachineProfile, got {self.machine!r}")
        # Normalize the trace mode (bools and None are accepted inputs).
        object.__setattr__(self, "trace", _resolve_trace_mode(self.trace))
        if self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")
        if self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}")
        if self.wire not in WIRE_MODES:
            raise ValueError(
                f"wire must be one of {WIRE_MODES}, got {self.wire!r}")
        if self.on_fault not in ON_FAULT_POLICIES:
            raise ValueError(
                f"on_fault must be one of {ON_FAULT_POLICIES}, "
                f"got {self.on_fault!r}")
        if isinstance(self.fault_plan, str):
            object.__setattr__(self, "fault_plan",
                               FaultPlan.parse(self.fault_plan))
        elif self.fault_plan is not None and \
                not isinstance(self.fault_plan, FaultPlan):
            raise ValueError(
                f"fault_plan must be a FaultPlan, a spec string or None, "
                f"got {self.fault_plan!r}")
        rel = self.reliability
        if isinstance(rel, str):
            if rel == "none":
                rel = None
            elif rel == "retry":
                rel = ReliabilityConfig()
            elif rel == "verify":
                rel = ReliabilityConfig(verify=True)
            else:
                raise ValueError(
                    f"reliability must be 'none', 'retry', 'verify' or a "
                    f"ReliabilityConfig, got {rel!r}")
        elif rel is not None and not isinstance(rel, ReliabilityConfig):
            raise ValueError(
                f"reliability must be 'none', 'retry', 'verify', a "
                f"ReliabilityConfig or None, got {rel!r}")
        if self.on_fault == "retry" and rel is None:
            rel = ReliabilityConfig()
        object.__setattr__(self, "reliability", rel)
        if self.ledger is not None and not isinstance(self.ledger, str):
            raise ValueError(
                f"ledger must be a path string or None, got {self.ledger!r}")

    # -- derived views ---------------------------------------------------
    @property
    def events_on(self) -> bool:
        return self.trace in ("full", "events")

    @property
    def metrics_on(self) -> bool:
        return self.trace in ("full", "metrics")

    @property
    def faulted(self) -> bool:
        """True when the fabric carries an injector (plan or reliability)."""
        return self.fault_plan is not None or self.reliability is not None

    def replace(self, **overrides) -> "ExecutionConfig":
        """Return a copy with selected fields replaced (re-validated)."""
        kwargs = {f.name: getattr(self, f.name) for f in fields(self)}
        kwargs.update(overrides)
        return ExecutionConfig(**kwargs)

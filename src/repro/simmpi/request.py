"""Nonblocking-operation request handles.

Mirrors MPI's request model: ``Isend``/``Irecv`` return a request; the
operation's effect on the caller's simulated clock is applied when the
request is waited on.  Requests are single-completion objects — calling
:meth:`Request.wait` twice is legal and idempotent (the second call is a
no-op returning the cached result), matching ``MPI_Wait`` on an inactive
request.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from .errors import TruncationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .communicator import Communicator

__all__ = ["Request", "SendRequest", "RecvRequest", "waitall"]


class Request:
    """Abstract base for nonblocking-operation handles."""

    __slots__ = ("_comm", "_done")

    def __init__(self, comm: "Communicator") -> None:
        self._comm = comm
        self._done = False

    @property
    def completed(self) -> bool:
        return self._done

    def wait(self) -> Optional[np.ndarray]:
        """Complete the operation, advancing the owner's simulated clock."""
        raise NotImplementedError


class SendRequest(Request):
    """Handle for an ``Isend``.

    The simulator is eager for correctness (the payload was snapshotted at
    post time), so waiting on a send only needs to ensure the sender's clock
    reflects the injection overhead — which was already charged at post
    time.  ``wait`` is therefore a clock no-op kept for API fidelity.
    """

    __slots__ = ("depart", "nbytes")

    def __init__(self, comm: "Communicator", depart: float, nbytes: int) -> None:
        super().__init__(comm)
        self.depart = depart
        self.nbytes = nbytes

    def wait(self) -> None:
        self._done = True
        return None


class RecvRequest(Request):
    """Handle for an ``Irecv`` into a caller-provided buffer.

    Completion blocks until the matching message arrives, copies the payload
    into the posted buffer, and advances the receiver's clock to::

        max(current clock, depart + wire_time(nbytes))

    The ``o_recv`` posting overhead was charged when the receive was posted.
    """

    __slots__ = ("source", "tag", "buffer", "_result_nbytes")

    def __init__(self, comm: "Communicator", source: int, tag: int,
                 buffer: np.ndarray) -> None:
        super().__init__(comm)
        self.source = source
        self.tag = tag
        self.buffer = buffer
        self._result_nbytes: Optional[int] = None

    def wait(self) -> np.ndarray:
        if self._done:
            return self.buffer
        comm = self._comm
        env = comm._collect(self.source, self.tag)
        if env.mark == "dead":
            # Degrade mode: the source crashed and was excised.  Its
            # contribution reads as zeros — control-plane counts received
            # from it become 0, data blocks become empty — so survivors
            # complete a shrunken collective instead of blocking forever.
            view = _as_byte_view(self.buffer)
            view[:] = 0
            comm._complete_dead_recv(env)
            self._result_nbytes = 0
            self._done = True
            return self.buffer
        if env.mark == "lost":
            comm._raise_lost(env)
        if env.mark == "corrupt_lost":
            comm._raise_corrupt_exhausted(env)
        if env.payload is None:
            # Phantom wire mode: the envelope carries only its size.  The
            # buffer is still validated and checked for truncation — the
            # same programs that fail in bytes mode fail here — but no
            # bytes land.
            view = _as_byte_view(self.buffer)
            if env.nbytes > view.nbytes:
                raise TruncationError(view.nbytes, env.nbytes,
                                      self.source, self.tag)
        else:
            # Bytes mode: one vectorized landing — frombuffer is zero-copy,
            # the slice assignment is the single memcpy into place.
            payload = np.frombuffer(env.payload, dtype=np.uint8)
            view = _as_byte_view(self.buffer)
            if payload.nbytes > view.nbytes:
                raise TruncationError(view.nbytes, payload.nbytes,
                                      self.source, self.tag)
            view[: payload.nbytes] = payload
        comm._complete_recv(env)
        self._result_nbytes = env.nbytes
        self._done = True
        return self.buffer

    @property
    def received_nbytes(self) -> Optional[int]:
        """Actual message size in bytes (``None`` until completed)."""
        return self._result_nbytes


def waitall(requests: Sequence[Request]) -> None:
    """Complete every request, in order.

    Order does not affect the final simulated clock: each completion takes a
    ``max`` against the owner's clock, and ``max`` is order-independent.  It
    *can* affect OS-level blocking order, but FIFO channels keep matching
    deterministic regardless.
    """
    for req in requests:
        req.wait()


def _as_byte_view(buffer: np.ndarray) -> np.ndarray:
    """Reinterpret a contiguous ndarray as a flat uint8 view."""
    if not isinstance(buffer, np.ndarray):
        raise TypeError(f"receive buffer must be an ndarray, got {type(buffer)}")
    if not buffer.flags.c_contiguous:
        raise ValueError("receive buffer must be C-contiguous")
    return buffer.reshape(-1).view(np.uint8)

"""Simulated MPI substrate.

A deterministic, in-process stand-in for an MPI runtime: SPMD programs run
against a shared :class:`~repro.simmpi.network.Network` whose simulated
clocks follow a LogGP-style cost model parameterized by
:class:`~repro.simmpi.machine.MachineProfile`.  Two executor backends with
bit-identical simulated clocks: thread-per-rank (default, up to a few
hundred ranks) and the cooperative scheduler (``backend="coop"``,
thousands of ranks; see :mod:`repro.simmpi.scheduler`).

Quick start::

    from repro.simmpi import ExecutionConfig, run_spmd, THETA

    def program(comm):
        comm.barrier()
        return comm.rank

    result = run_spmd(program, nprocs=8,
                      config=ExecutionConfig(machine=THETA))
    print(result.returns, result.elapsed)

See ``DESIGN.md`` §5 for the cost rules and calibration rationale.
"""

from .communicator import MAX_USER_TAG, Communicator
from .config import ExecutionConfig
from .critical_path import (
    BUCKETS,
    CriticalPathResult,
    PathSegment,
    RankAttribution,
    analyze as analyze_critical_path,
)
from .datatype import IndexedBlocks
from .errors import (
    CommAbortedError,
    DeadlockError,
    InjectedCrashError,
    InvalidRankError,
    InvalidTagError,
    MessageCorruptError,
    MessageLostError,
    RankFailedError,
    SimMPIError,
    TruncationError,
)
from .executor import (
    BACKENDS,
    ON_FAULT_POLICIES,
    TRACE_MODES,
    SPMDResult,
    run_spmd,
)
from .faults import (
    FAULT_KINDS,
    KNOWN_FAULT_CLAUSES,
    CrashRule,
    FaultInjector,
    FaultPlan,
    FaultRule,
    ReliabilityConfig,
    StragglerRule,
)
from .machine import (
    CORI,
    LOCAL,
    MACHINE_MODEL_VERSION,
    PROFILES,
    STAMPEDE2,
    THETA,
    MachineProfile,
    get_profile,
)
from .metrics import Counter, Histogram, MetricsRegistry, RunMetrics
from .network import WIRE_MODES, Envelope, Network
from .scheduler import CoopNetwork, CoopScheduler
from .request import RecvRequest, Request, SendRequest, waitall
from .tensor import TensorAlltoall, TensorAlltoallv
from .trace_export import (
    chrome_trace,
    export_chrome_trace,
    format_phase_table,
    format_summary,
)
from .tracing import (
    CollectiveEvent,
    CopyEvent,
    DatatypeEvent,
    FaultEvent,
    MetricsTrace,
    NullTrace,
    PhaseEvent,
    RankTrace,
    RecvEvent,
    SendEvent,
    TraceBase,
)

__all__ = [
    "Communicator",
    "MAX_USER_TAG",
    "IndexedBlocks",
    "SimMPIError",
    "InvalidRankError",
    "InvalidTagError",
    "TruncationError",
    "DeadlockError",
    "RankFailedError",
    "CommAbortedError",
    "InjectedCrashError",
    "MessageLostError",
    "MessageCorruptError",
    "run_spmd",
    "SPMDResult",
    "ExecutionConfig",
    "TensorAlltoall",
    "TensorAlltoallv",
    "TRACE_MODES",
    "BACKENDS",
    "WIRE_MODES",
    "ON_FAULT_POLICIES",
    "FaultPlan",
    "FaultRule",
    "CrashRule",
    "StragglerRule",
    "ReliabilityConfig",
    "FaultInjector",
    "FAULT_KINDS",
    "KNOWN_FAULT_CLAUSES",
    "CoopScheduler",
    "CoopNetwork",
    "MachineProfile",
    "get_profile",
    "PROFILES",
    "MACHINE_MODEL_VERSION",
    "THETA",
    "CORI",
    "STAMPEDE2",
    "LOCAL",
    "Network",
    "Envelope",
    "Request",
    "SendRequest",
    "RecvRequest",
    "waitall",
    "TraceBase",
    "RankTrace",
    "NullTrace",
    "MetricsTrace",
    "SendEvent",
    "RecvEvent",
    "CopyEvent",
    "DatatypeEvent",
    "PhaseEvent",
    "CollectiveEvent",
    "FaultEvent",
    "MetricsRegistry",
    "RunMetrics",
    "Counter",
    "Histogram",
    "BUCKETS",
    "CriticalPathResult",
    "PathSegment",
    "RankAttribution",
    "analyze_critical_path",
    "chrome_trace",
    "export_chrome_trace",
    "format_summary",
    "format_phase_table",
]

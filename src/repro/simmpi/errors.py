"""Exception hierarchy for the simulated MPI runtime.

Every error raised by :mod:`repro.simmpi` derives from :class:`SimMPIError`
so applications can catch simulator failures distinctly from ordinary Python
errors.  The hierarchy mirrors the failure classes a real MPI library
surfaces: invalid arguments (``MPI_ERR_ARG``-style), truncation on receive
(``MPI_ERR_TRUNCATE``), and distributed-progress failures (deadlock, a peer
rank dying mid-collective).
"""

from __future__ import annotations

__all__ = [
    "SimMPIError",
    "InvalidRankError",
    "InvalidTagError",
    "TruncationError",
    "DeadlockError",
    "RankFailedError",
    "CommAbortedError",
]


class SimMPIError(RuntimeError):
    """Base class for all simulated-MPI failures."""


class InvalidRankError(SimMPIError, ValueError):
    """A rank argument was outside ``[0, size)``."""

    def __init__(self, rank: int, size: int, what: str = "rank") -> None:
        super().__init__(f"invalid {what} {rank!r} for communicator of size {size}")
        self.rank = rank
        self.size = size


class InvalidTagError(SimMPIError, ValueError):
    """A tag argument was negative or collided with the reserved tag space."""

    def __init__(self, tag: int, reason: str) -> None:
        super().__init__(f"invalid tag {tag!r}: {reason}")
        self.tag = tag


class TruncationError(SimMPIError):
    """An incoming message was larger than the posted receive buffer."""

    def __init__(self, expected: int, actual: int, source: int, tag: int) -> None:
        super().__init__(
            f"message truncated: receive buffer holds {expected} bytes but "
            f"message from rank {source} (tag {tag}) carries {actual} bytes"
        )
        self.expected = expected
        self.actual = actual
        self.source = source
        self.tag = tag


class DeadlockError(SimMPIError):
    """The SPMD program made no progress within the watchdog timeout.

    Raised by the executor (on the launching thread) when worker ranks are
    still blocked after ``timeout`` seconds; the message lists which ranks
    were blocked and on what, which is usually enough to spot a mismatched
    send/recv pair.
    """


class RankFailedError(SimMPIError):
    """A peer rank raised an exception, so this rank can never complete."""

    def __init__(self, failed_rank: int, original: BaseException) -> None:
        super().__init__(
            f"rank {failed_rank} failed with "
            f"{type(original).__name__}: {original}"
        )
        self.failed_rank = failed_rank
        self.original = original


class CommAbortedError(SimMPIError):
    """The network was shut down while an operation was still blocked."""

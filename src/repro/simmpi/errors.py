"""Exception hierarchy for the simulated MPI runtime.

Every error raised by :mod:`repro.simmpi` derives from :class:`SimMPIError`
so applications can catch simulator failures distinctly from ordinary Python
errors.  The hierarchy mirrors the failure classes a real MPI library
surfaces: invalid arguments (``MPI_ERR_ARG``-style), truncation on receive
(``MPI_ERR_TRUNCATE``), and distributed-progress failures (deadlock, a peer
rank dying mid-collective).
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "SimMPIError",
    "InvalidRankError",
    "InvalidTagError",
    "TruncationError",
    "DeadlockError",
    "RankFailedError",
    "CommAbortedError",
    "InjectedCrashError",
    "MessageLostError",
    "MessageCorruptError",
]


class SimMPIError(RuntimeError):
    """Base class for all simulated-MPI failures."""


class InvalidRankError(SimMPIError, ValueError):
    """A rank argument was outside ``[0, size)``."""

    def __init__(self, rank: int, size: int, what: str = "rank") -> None:
        super().__init__(f"invalid {what} {rank!r} for communicator of size {size}")
        self.rank = rank
        self.size = size


class InvalidTagError(SimMPIError, ValueError):
    """A tag argument was negative or collided with the reserved tag space."""

    def __init__(self, tag: int, reason: str) -> None:
        super().__init__(f"invalid tag {tag!r}: {reason}")
        self.tag = tag


class TruncationError(SimMPIError):
    """An incoming message was larger than the posted receive buffer."""

    def __init__(self, expected: int, actual: int, source: int, tag: int) -> None:
        super().__init__(
            f"message truncated: receive buffer holds {expected} bytes but "
            f"message from rank {source} (tag {tag}) carries {actual} bytes"
        )
        self.expected = expected
        self.actual = actual
        self.source = source
        self.tag = tag


class DeadlockError(SimMPIError):
    """The SPMD program made no progress within the watchdog timeout.

    Raised by the executor (on the launching thread) when worker ranks are
    still blocked after ``timeout`` seconds; the message lists which ranks
    were blocked and on what, which is usually enough to spot a mismatched
    send/recv pair.
    """


class RankFailedError(SimMPIError):
    """A peer rank raised an exception, so this rank can never complete.

    When the executor knows them, the failing rank's *simulated* clock and
    its current algorithm step/phase ride along (``clock`` / ``phase`` /
    ``step``), so a post-mortem can localize the failure inside the
    algorithm without re-running with a trace file.  ``step`` counts the
    rank's posted point-to-point operations (sends + receives), matching
    :attr:`Communicator.op_index`.
    """

    def __init__(self, failed_rank: int, original: BaseException, *,
                 clock: Optional[float] = None,
                 phase: Optional[str] = None,
                 step: Optional[int] = None) -> None:
        where = ""
        if clock is not None:
            where += f" at simulated clock {clock:.6g}s"
        if phase is not None:
            where += f" in phase {phase!r}"
        if step is not None:
            where += f" (op {step})"
        super().__init__(
            f"rank {failed_rank} failed{where} with "
            f"{type(original).__name__}: {original}"
        )
        self.failed_rank = failed_rank
        self.original = original
        self.clock = clock
        self.phase = phase
        self.step = step


class CommAbortedError(SimMPIError):
    """The network was shut down while an operation was still blocked."""


class InjectedCrashError(SimMPIError):
    """A fault plan's crash rule killed this rank on purpose.

    Raised inside the rank program by the communicator when the rank hits
    its scheduled crash point.  Under ``on_fault="fail-fast"`` it tears
    the job down like any rank failure; under ``on_fault="degrade"`` the
    executor excises the rank instead and survivors complete a reduced
    collective.
    """

    def __init__(self, rank: int, clock: float, step: int,
                 reason: str = "fault plan") -> None:
        super().__init__(
            f"rank {rank} crashed by {reason} at simulated clock "
            f"{clock:.6g}s (op {step})"
        )
        self.rank = rank
        self.clock = clock
        self.step = step


class MessageLostError(SimMPIError):
    """A reliable message exhausted its retransmission budget.

    Raised on the *receiver* at the message's simulated retry-exhaustion
    deadline — the typed alternative to hanging on a message that will
    never arrive.
    """

    def __init__(self, source: int, dest: int, tag: int,
                 deadline: float) -> None:
        super().__init__(
            f"message from rank {source} to rank {dest} (tag {tag}) lost: "
            f"every retransmission dropped; gave up at simulated clock "
            f"{deadline:.6g}s"
        )
        self.source = source
        self.dest = dest
        self.tag = tag
        self.deadline = deadline


class MessageCorruptError(SimMPIError):
    """A verified-transport integrity check failed.

    Raised on the *receiver* under ``on_fault="fail-fast"`` the moment a
    delivered envelope fails its checksum/size check (``reason=
    "corrupt"``) or its authentication-tag check (``reason="forged"``),
    and under ``on_fault="retry"`` at the simulated deadline of a message
    whose every retransmission arrived tampered (``reason="exhausted"``).
    The typed alternative to silently accepting Byzantine bytes.
    """

    _DETAIL = {
        "corrupt": "payload checksum/size check failed",
        "forged": "authentication tag check failed (spoofed envelope)",
        "exhausted": "every retransmission arrived corrupted; gave up",
    }

    def __init__(self, source: int, dest: int, tag: int, clock: float,
                 reason: str = "corrupt") -> None:
        detail = self._DETAIL.get(reason, reason)
        super().__init__(
            f"message from rank {source} to rank {dest} (tag {tag}) "
            f"rejected by the verified transport at simulated clock "
            f"{clock:.6g}s: {detail}"
        )
        self.source = source
        self.dest = dest
        self.tag = tag
        self.clock = clock
        self.reason = reason

"""SPMD launcher: run one Python function as ``P`` simulated MPI ranks.

``run_spmd(fn, nprocs)`` spawns one thread per rank, hands each a
:class:`~repro.simmpi.communicator.Communicator`, and returns an
:class:`SPMDResult` with per-rank return values, per-rank simulated clocks,
and (optionally) per-rank event traces.

Failure semantics: if any rank raises, the network is aborted so blocked
peers wake with :class:`RankFailedError`, and the *original* exception is
re-raised on the calling thread with the failing rank identified.  A
watchdog timeout converts genuine deadlocks into
:class:`DeadlockError` with a dump of pending messages.

Determinism: simulated clocks depend only on the program's communication
structure (see :mod:`repro.simmpi.network`), never on OS scheduling, so
``SPMDResult.elapsed`` values are reproducible across runs and machines.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from .communicator import Communicator
from .errors import DeadlockError, SimMPIError
from .machine import LOCAL, MachineProfile
from .network import Network
from .tracing import NullTrace, RankTrace

__all__ = ["run_spmd", "SPMDResult"]


@dataclass
class SPMDResult:
    """Outcome of one SPMD run."""

    nprocs: int
    machine: MachineProfile
    returns: List[Any]          # per-rank return value of ``fn``
    clocks: List[float]         # per-rank final simulated clock (seconds)
    traces: Optional[List[RankTrace]]
    total_messages: int
    total_bytes: int

    @property
    def elapsed(self) -> float:
        """Simulated makespan: the slowest rank's clock."""
        return max(self.clocks) if self.clocks else 0.0

    def phase_times(self) -> Dict[str, float]:
        """Max-over-ranks simulated time per phase name.

        The max (not mean) matches how a phase bounds a bulk-synchronous
        program: everyone waits for the slowest rank.
        """
        if self.traces is None:
            raise ValueError("run was executed with trace=False")
        out: Dict[str, float] = {}
        for tr in self.traces:
            for name, t in tr.phase_times().items():
                out[name] = max(out.get(name, 0.0), t)
        return out


def run_spmd(fn: Callable[..., Any], nprocs: int, *,
             machine: MachineProfile = LOCAL,
             args: Sequence[Any] = (),
             rank_args: Optional[Sequence[Sequence[Any]]] = None,
             trace: bool = True,
             timeout: float = 120.0) -> SPMDResult:
    """Execute ``fn(comm, *args)`` on ``nprocs`` simulated ranks.

    Parameters
    ----------
    fn:
        The SPMD program.  Called as ``fn(comm, *args)`` — or, when
        ``rank_args`` is given, as ``fn(comm, *rank_args[rank])`` so each
        rank can receive its own inputs (e.g. its row of a block-size
        matrix).
    nprocs:
        Number of simulated ranks (one OS thread each; practical up to a
        few hundred — use :mod:`repro.timing` beyond that).
    machine:
        Cost-model profile; defaults to the forgiving ``LOCAL`` profile.
    trace:
        Record per-rank event traces (cheap; disable for big sweeps).
    timeout:
        Watchdog in seconds; a blocked job raises :class:`DeadlockError`.

    Returns
    -------
    SPMDResult
    """
    if nprocs <= 0:
        raise ValueError(f"nprocs must be positive, got {nprocs}")
    if rank_args is not None and len(rank_args) != nprocs:
        raise ValueError(
            f"rank_args must have one entry per rank "
            f"({nprocs}), got {len(rank_args)}"
        )

    network = Network(nprocs, machine)
    traces: Optional[List[RankTrace]] = (
        [RankTrace(r) for r in range(nprocs)] if trace else None
    )
    returns: List[Any] = [None] * nprocs
    clocks: List[float] = [0.0] * nprocs
    failures: List[tuple] = []
    failure_lock = threading.Lock()

    def worker(rank: int) -> None:
        tr: Union[RankTrace, NullTrace] = (
            traces[rank] if traces is not None else NullTrace(rank)
        )
        comm = Communicator(network, rank, tr, recv_timeout=timeout)
        try:
            call_args = rank_args[rank] if rank_args is not None else args
            returns[rank] = fn(comm, *call_args)
            clocks[rank] = comm.clock
        except BaseException as exc:  # noqa: BLE001 - must propagate any failure
            with failure_lock:
                failures.append((rank, exc))
            network.abort(rank, exc)

    threads = [
        threading.Thread(target=worker, args=(r,), name=f"simmpi-rank-{r}",
                         daemon=True)
        for r in range(nprocs)
    ]
    for t in threads:
        t.start()
    deadline_hit = False
    for t in threads:
        t.join(timeout=timeout)
        if t.is_alive():
            deadline_hit = True
            break
    if deadline_hit:
        network.shutdown()  # wake anything still blocked
        for t in threads:
            t.join(timeout=5.0)
        blocked = [t.name for t in threads if t.is_alive()]
        raise DeadlockError(
            f"SPMD run made no progress within {timeout}s; "
            f"still-blocked threads: {blocked or 'none (woke on shutdown)'}; "
            f"{network.pending_summary()}"
        )

    network.shutdown()
    if failures:
        failures.sort(key=lambda f: f[0])
        rank, exc = failures[0]
        if isinstance(exc, SimMPIError):
            raise exc
        try:
            wrapped = type(exc)(f"[simulated rank {rank}] {exc}")
        except Exception:  # exotic exception signature: re-raise as-is
            raise exc
        raise wrapped from exc

    return SPMDResult(
        nprocs=nprocs,
        machine=machine,
        returns=returns,
        clocks=clocks,
        traces=traces,
        total_messages=network.total_messages,
        total_bytes=network.total_bytes,
    )

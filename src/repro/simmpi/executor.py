"""SPMD launcher: run one Python function as ``P`` simulated MPI ranks.

``run_spmd(fn, nprocs)`` hands each rank a
:class:`~repro.simmpi.communicator.Communicator` and returns an
:class:`SPMDResult` with per-rank return values, per-rank simulated clocks,
and (optionally) per-rank event traces.

Two execution backends share identical semantics and bit-identical
simulated clocks:

* ``backend="threads"`` (default) — one OS thread per rank against the
  locking :class:`Network`; practical up to a few hundred ranks.
* ``backend="coop"`` — the deterministic cooperative scheduler
  (:mod:`repro.simmpi.scheduler`): a single-runner event loop switching
  ranks at communication points, ordered by simulated clock.  No lock
  contention, exact (immediate) deadlock detection, practical to
  thousands of ranks.

Failure semantics: if any rank raises, the network is aborted so blocked
peers wake with :class:`RankFailedError` (and further sends fail the same
way), and the *original* exception is re-raised on the calling thread with
the failing rank identified.  Deadlocks raise :class:`DeadlockError` with
a dump of pending messages — detected by a wall-clock watchdog under the
thread backend, and exactly (no timeout involved) under the coop backend.

Determinism: simulated clocks depend only on the program's communication
structure (see :mod:`repro.simmpi.network`), never on OS scheduling, so
``SPMDResult.elapsed`` values are reproducible across runs, machines, and
backends.
"""

from __future__ import annotations

import threading
import warnings
from dataclasses import dataclass, field
from time import monotonic
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from .communicator import Communicator
from .config import (BACKENDS, ON_FAULT_POLICIES, TRACE_MODES,
                     ExecutionConfig)
from .errors import (CommAbortedError, DeadlockError, InjectedCrashError,
                     RankFailedError, SimMPIError)
from .faults import FaultInjector, FaultPlan, ReliabilityConfig
from .machine import MachineProfile
from .metrics import MetricsRegistry, RunMetrics
from .network import WIRE_MODES, Network
from .scheduler import CoopNetwork, CoopScheduler
from .tracing import MetricsTrace, NullTrace, RankTrace, TraceBase

__all__ = ["run_spmd", "SPMDResult", "ExecutionConfig", "TRACE_MODES",
           "BACKENDS", "WIRE_MODES", "ON_FAULT_POLICIES"]

#: Sentinel distinguishing "kwarg not passed" from any real value, so the
#: deprecation shim can detect legacy keyword use and reject mixing it
#: with ``config=``.
_UNSET: Any = object()


@dataclass
class SPMDResult:
    """Outcome of one SPMD run."""

    nprocs: int
    machine: MachineProfile
    returns: List[Any]          # per-rank return value of ``fn``
    clocks: List[float]         # per-rank final simulated clock (seconds)
    traces: Optional[List[RankTrace]]
    total_messages: int
    total_bytes: int
    metrics: Optional[RunMetrics] = field(default=None)
    wire: str = "bytes"         # payload transport mode of the run
    #: Echo of the resolved :class:`ExecutionConfig` the run executed under.
    config: Optional[ExecutionConfig] = field(default=None)
    #: Ranks excised by ``on_fault="degrade"``: injected crashes that did
    #: not tear the job down (their ``returns`` entry is ``None`` and
    #: their ``clocks`` entry is the simulated crash time), plus senders
    #: tombstoned by the verified transport after a failed integrity
    #: check (those ranks ran to completion, so their ``returns``/
    #: ``clocks`` entries are real — but at least one receiver discarded
    #: their traffic, so the result is a flagged partial).  Empty for
    #: clean runs and for the fail-fast/retry policies.
    degraded_ranks: List[int] = field(default_factory=list)
    #: Tensor-backend only: raw per-rank attribution bucket sums
    #: (overhead/transmit/congestion/fault_delay/queue_wait) recorded by
    #: the lane engine, consumed by :meth:`critical_path`.  ``None`` on
    #: the threads/coop backends (attribution is derived from event
    #: traces there) and when metrics were off.  The ``"step_log"`` key
    #: carries the engine's coarse per-step records for the path walk.
    raw_attribution: Optional[Dict[str, Any]] = field(default=None)

    @property
    def degraded(self) -> bool:
        """True when at least one rank was excised mid-run — the result is
        a verified *partial* (survivors completed a shrunken collective)."""
        return bool(self.degraded_ranks)

    @property
    def elapsed(self) -> float:
        """Simulated makespan: the slowest rank's clock."""
        return max(self.clocks) if self.clocks else 0.0

    def phase_times(self) -> Dict[str, float]:
        """Max-over-ranks simulated time per phase name.

        The max (not mean) matches how a phase bounds a bulk-synchronous
        program: everyone waits for the slowest rank.  Works from event
        traces when present, else from the metrics snapshot
        (``trace="metrics"``).
        """
        if self.traces is not None:
            out: Dict[str, float] = {}
            for tr in self.traces:
                for name, t in tr.phase_times().items():
                    out[name] = max(out.get(name, 0.0), t)
            return out
        if self.metrics is not None:
            return dict(self.metrics.phase_times)
        raise ValueError(
            "phase data unavailable: the run was executed with trace=False; "
            "re-run with trace=True, trace='events' or trace='metrics'"
        )

    def collective_times(self) -> Dict[str, float]:
        """Max-over-ranks simulated time per builtin-collective name."""
        if self.traces is not None:
            out: Dict[str, float] = {}
            for tr in self.traces:
                for name, t in tr.collective_times().items():
                    out[name] = max(out.get(name, 0.0), t)
            return out
        if self.metrics is not None:
            return dict(self.metrics.collective_times)
        raise ValueError(
            "collective data unavailable: the run was executed with "
            "trace=False; re-run with trace=True, trace='events' or "
            "trace='metrics'"
        )

    def export_chrome_trace(self, path: Optional[str] = None,
                            critical_path: bool = False) -> dict:
        """Render this run to Chrome/Perfetto trace-event JSON.

        Needs event traces (``trace=True`` or ``trace="events"``).  Writes
        the document to ``path`` when given; always returns it.  With
        ``critical_path=True`` the document gains a pinned track tracing
        the chain of events that bounded the makespan.
        """
        from .trace_export import export_chrome_trace
        return export_chrome_trace(self, path, critical_path=critical_path)

    def summary(self, title: str = "") -> str:
        """Plain-text per-phase / per-step accounting of this run."""
        from .trace_export import format_summary
        return format_summary(self, title)

    def critical_path(self) -> "CriticalPathResult":
        """Critical-path walk + per-rank makespan attribution.

        Needs event traces (``trace=True``/``"events"``) or, on the tensor
        backend, ``trace="metrics"`` (coarse per-step path from the lane
        engine's step log).  See :mod:`repro.simmpi.critical_path`.
        """
        from .critical_path import analyze
        return analyze(self)


def run_spmd(fn: Callable[..., Any], nprocs: int, *,
             config: Optional[ExecutionConfig] = None,
             args: Sequence[Any] = (),
             rank_args: Optional[Sequence[Sequence[Any]]] = None,
             machine: MachineProfile = _UNSET,
             trace: Union[bool, str, None] = _UNSET,
             timeout: float = _UNSET,
             backend: str = _UNSET,
             wire: str = _UNSET,
             fault_plan: Union[FaultPlan, str, None] = _UNSET,
             fault_seed: int = _UNSET,
             on_fault: str = _UNSET,
             reliability: Union[ReliabilityConfig, str, None] = _UNSET,
             ) -> SPMDResult:
    """Execute ``fn(comm, *args)`` on ``nprocs`` simulated ranks.

    The primary signature is ``run_spmd(fn, nprocs, config=ExecutionConfig
    (...))``: one validated value object describes how the run executes.
    The loose keyword arguments below (``machine``, ``trace``, ...) are the
    legacy surface — they keep working through a deprecation shim that
    forwards them into a config, but cannot be mixed with ``config=``.

    Parameters
    ----------
    fn:
        The SPMD program.  Called as ``fn(comm, *args)`` — or, when
        ``rank_args`` is given, as ``fn(comm, *rank_args[rank])`` so each
        rank can receive its own inputs (e.g. its row of a block-size
        matrix).  Under ``backend="tensor"`` this must be a
        :class:`~repro.simmpi.tensor.TensorProgram` spec object.
    nprocs:
        Number of simulated ranks.  The thread backend is practical up to
        a few hundred; ``backend="coop"`` scales to thousands;
        ``backend="tensor"`` to the paper's 32K.
    config:
        An :class:`ExecutionConfig`; mutually exclusive with the legacy
        keywords below.
    machine:
        Cost-model profile; defaults to the forgiving ``LOCAL`` profile.
    trace:
        Observability mode.  ``True`` (the default) records per-rank event
        traces *and* aggregate metrics; ``False``/``None`` disables both
        (for big sweeps).  The string forms select one channel:
        ``"events"`` (per-event traces only), ``"metrics"`` (aggregate
        counters only — ``result.traces`` is ``None`` but
        ``result.metrics`` is populated), or ``"full"`` (same as
        ``True``).
    timeout:
        Watchdog in wall-clock seconds for the thread backend; a blocked
        job raises :class:`DeadlockError`.  The deadline is shared by the
        whole job, not per rank.  The coop backend ignores it — a stuck
        job is detected exactly, the instant no rank can progress.
    backend:
        ``"threads"`` (default) or ``"coop"``; see the module docstring.
        Both produce bit-identical simulated clocks.
    wire:
        Payload transport mode.  ``"bytes"`` (default) moves real data, so
        receive buffers hold byte-exact results.  ``"phantom"`` sends only
        message *sizes* for data-plane traffic: simulated clocks are
        bit-identical to bytes mode (every cost rule is a function of size
        alone) but receive buffers are never written — use it for timing
        sweeps where data correctness is already covered by tests.
    fault_plan:
        A :class:`~repro.simmpi.faults.FaultPlan` (or its ``--faults``
        spec string) to inject on the fabric.  ``None`` (default) keeps
        the fabric clean.  Same ``(plan, fault_seed)`` ⇒ bit-identical
        clocks, message counts and fault sequences on every backend/wire.
    fault_seed:
        Seed of the fault engine's per-message RNG.
    on_fault:
        Failure policy.  ``"fail-fast"`` (default): any injected crash or
        unrecovered fault tears the job down with a typed error.
        ``"retry"``: enable the reliability transport (acked delivery,
        retransmission with exponential backoff, duplicate suppression,
        in-order reassembly); messages whose retries are exhausted raise
        :class:`~repro.simmpi.errors.MessageLostError`.  ``"degrade"``:
        an injected rank crash excises the rank instead of aborting —
        survivors read its contributions as empty and the result carries
        :attr:`SPMDResult.degraded_ranks`.
    reliability:
        Explicit reliability transport config: a
        :class:`~repro.simmpi.faults.ReliabilityConfig`, ``"retry"`` (the
        defaults), or ``"none"``/``None``.  ``on_fault="retry"`` implies
        the default config when this is unset.

    Returns
    -------
    SPMDResult
    """
    if nprocs <= 0:
        raise ValueError(f"nprocs must be positive, got {nprocs}")
    if rank_args is not None and len(rank_args) != nprocs:
        raise ValueError(
            f"rank_args must have one entry per rank "
            f"({nprocs}), got {len(rank_args)}"
        )
    legacy = {name: value for name, value in (
        ("machine", machine), ("trace", trace), ("timeout", timeout),
        ("backend", backend), ("wire", wire), ("fault_plan", fault_plan),
        ("fault_seed", fault_seed), ("on_fault", on_fault),
        ("reliability", reliability)) if value is not _UNSET}
    if config is not None:
        if legacy:
            raise ValueError(
                f"pass either config= or the legacy keyword(s) "
                f"{sorted(legacy)} — not both")
        if not isinstance(config, ExecutionConfig):
            raise ValueError(
                f"config must be an ExecutionConfig, got {config!r}")
        cfg = config
    elif legacy:
        warnings.warn(
            "passing machine/trace/timeout/backend/wire/fault_* keywords to "
            "run_spmd is deprecated; build an ExecutionConfig and pass "
            "config=", DeprecationWarning, stacklevel=2)
        cfg = ExecutionConfig(**legacy)
    else:
        cfg = ExecutionConfig()

    if cfg.backend == "tensor":
        from .tensor import run_tensor
        result = run_tensor(fn, nprocs, cfg, args=args, rank_args=rank_args)
        _maybe_append_ledger(result, fn)
        return result

    machine = cfg.machine
    backend = cfg.backend
    wire = cfg.wire
    timeout = cfg.timeout
    on_fault = cfg.on_fault
    events_on = cfg.events_on
    metrics_on = cfg.metrics_on

    registry = MetricsRegistry(nprocs) if metrics_on else None
    scheduler: Optional[CoopScheduler] = None
    if backend == "coop":
        scheduler = CoopScheduler(nprocs)
        network: Network = CoopNetwork(nprocs, machine, metrics=registry,
                                       wire=wire, scheduler=scheduler)
        recv_timeout = None  # stalls are caught exactly, not by the clock
    else:
        network = Network(nprocs, machine, metrics=registry, wire=wire)
        recv_timeout = timeout
    if cfg.faulted:
        # Attached before any Communicator exists: ranks resolve their
        # straggler/crash/reliability state from it at construction.
        network.injector = FaultInjector(cfg.fault_plan, seed=cfg.fault_seed,
                                         reliability=cfg.reliability,
                                         on_fault=cfg.on_fault)
    tracers: List[TraceBase]
    if events_on:
        tracers = [RankTrace(r) for r in range(nprocs)]
    elif metrics_on:
        tracers = [MetricsTrace(r) for r in range(nprocs)]
    else:
        tracers = [NullTrace(r) for r in range(nprocs)]
    traces: Optional[List[RankTrace]] = tracers if events_on else None
    returns: List[Any] = [None] * nprocs
    clocks: List[float] = [0.0] * nprocs
    failures: List[Tuple[int, BaseException]] = []
    degraded: List[int] = []
    failure_lock = threading.Lock()

    def worker(rank: int) -> None:
        comm = Communicator(network, rank, tracers[rank],
                            recv_timeout=recv_timeout)
        try:
            call_args = rank_args[rank] if rank_args is not None else args
            returns[rank] = fn(comm, *call_args)
            clocks[rank] = comm.clock
            network.flush_sender(rank)
        except InjectedCrashError as exc:
            if on_fault == "degrade":
                # The planned crash is not a job failure: excise the rank
                # (survivors read its traffic as empty) and keep going.
                with failure_lock:
                    degraded.append(rank)
                clocks[rank] = exc.clock
                network.mark_dead(rank, exc.clock)
                return
            with failure_lock:
                failures.append((rank, exc))
            network.abort(rank, exc, clock=comm.clock,
                          phase=comm.current_phase, step=comm.op_index)
        except BaseException as exc:  # noqa: BLE001 - must propagate any failure
            with failure_lock:
                failures.append((rank, exc))
            network.abort(rank, exc, clock=comm.clock,
                          phase=comm.current_phase, step=comm.op_index)

    if scheduler is not None:
        scheduler.run(network, worker)  # DeadlockError propagates directly
    else:
        _run_threaded(worker, nprocs, network, timeout)

    network.shutdown()
    _raise_first_failure(failures)

    metrics: Optional[RunMetrics] = None
    if registry is not None:
        phase_times: Dict[str, float] = {}
        coll_times: Dict[str, float] = {}
        for tr in tracers:
            for name, t in tr.phase_times().items():
                phase_times[name] = max(phase_times.get(name, 0.0), t)
            for name, t in tr.collective_times().items():
                coll_times[name] = max(coll_times.get(name, 0.0), t)
        metrics = registry.snapshot(phase_times=phase_times,
                                    collective_times=coll_times)

    result = SPMDResult(
        nprocs=nprocs,
        machine=machine,
        returns=returns,
        clocks=clocks,
        traces=traces,
        total_messages=network.total_messages,
        total_bytes=network.total_bytes,
        metrics=metrics,
        wire=wire,
        config=cfg,
        degraded_ranks=sorted(set(degraded) | set(network.tombstoned_ranks)),
    )
    _maybe_append_ledger(result, fn)
    return result


def _maybe_append_ledger(result: SPMDResult, fn: Callable) -> None:
    """Record the run into ``config.ledger`` when one is configured.

    Only metric-bearing runs are ledger-worthy (the record is built
    around the aggregates); ``trace="off"``/``"events"`` runs skip
    silently so a ledger-configured config stays usable for quick
    unobserved runs.  Workload labels come off the program object when
    it carries them — tensor specs have ``.algorithm``, and any rank
    closure can be stamped with ``algorithm``/``distribution``
    attributes (the CLI does).  Imported lazily — the ledger lives in
    the bench layer, which sits above simmpi.
    """
    cfg = result.config
    if cfg is None or cfg.ledger is None or result.metrics is None:
        return
    from repro.bench.ledger import append_run
    extra = {}
    for label in ("radix", "max_block"):
        value = getattr(fn, label, None)
        if value is not None:
            extra[label] = int(value)
    append_run(cfg.ledger, result,
               algorithm=getattr(fn, "algorithm", None),
               distribution=getattr(fn, "distribution", None),
               extra=extra or None)


def _run_threaded(worker: Callable[[int], None], nprocs: int,
                  network: Network, timeout: float) -> None:
    """Thread-per-rank execution with a *shared* watchdog deadline.

    One deadline covers the whole job: every join waits only for the
    remaining budget, so a hung job is declared dead after ``timeout``
    seconds total — not up to ``nprocs * timeout`` as a fresh-per-join
    timeout would allow.
    """
    threads = [
        threading.Thread(target=worker, args=(r,), name=f"simmpi-rank-{r}",
                         daemon=True)
        for r in range(nprocs)
    ]
    for t in threads:
        t.start()
    deadline = monotonic() + timeout
    deadline_hit = False
    for t in threads:
        t.join(timeout=max(0.0, deadline - monotonic()))
        if t.is_alive():
            deadline_hit = True
            break
    if deadline_hit:
        network.shutdown()  # wake anything still blocked
        for t in threads:
            t.join(timeout=5.0)
        blocked = [t.name for t in threads if t.is_alive()]
        raise DeadlockError(
            f"SPMD run made no progress within {timeout}s; "
            f"still-blocked threads: {blocked or 'none (woke on shutdown)'}; "
            f"{network.pending_summary()}"
        )


def _raise_first_failure(failures: List[Tuple[int, BaseException]]) -> None:
    """Re-raise the root cause of a failed run, tagged with its rank.

    Secondary casualties — ranks that died of :class:`RankFailedError` or
    :class:`CommAbortedError` *because* a peer failed first — never mask
    the original exception; they are only reported when no primary failure
    exists (e.g. a receive timeout was the first thing to go wrong).
    """
    if not failures:
        return
    primary = [f for f in failures
               if not isinstance(f[1], (RankFailedError, CommAbortedError))]
    pool = primary or failures
    rank, exc = min(pool, key=lambda f: f[0])
    if isinstance(exc, SimMPIError):
        raise exc
    try:
        wrapped = type(exc)(f"[simulated rank {rank}] {exc}")
    except Exception:  # exotic exception signature: re-raise as-is
        raise exc
    raise wrapped from exc

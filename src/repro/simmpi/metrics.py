"""Counters/histograms registry for the simulated runtime.

The :class:`MetricsRegistry` is the aggregate observability channel of an
SPMD run: while :mod:`repro.simmpi.tracing` records *per-event* logs, the
registry keeps cheap running aggregates —

* message and byte totals, plus a power-of-two **message-size histogram**;
* per-link ``(src, dst)`` traffic and the **maximum number of in-flight
  messages** per link and globally (the congestion signal the paper's
  Fig. 8 sensitivity study reasons about);
* per-step (per-tag) message/byte/in-flight aggregates — the Bruck
  algorithms use one tag per exchange step, so this is the per-step
  congestion table;
* simulated **queue-wait** time: how long retired messages sat delivered
  in their channel before the receiver got to them, and how long receivers
  idled waiting for the wire.

The :class:`~repro.simmpi.network.Network` feeds the registry from
``post``/``collect`` under its existing lock; the communicator feeds the
receive-wait decomposition from the rank threads through
:meth:`MetricsRegistry.on_retire` (guarded by the registry's own lock).
When metrics are disabled the network holds ``None`` and pays a single
``is not None`` branch per message — near-zero overhead.

After a run the executor freezes the registry into a :class:`RunMetrics`
snapshot exposed as ``SPMDResult.metrics``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "Counter",
    "Histogram",
    "LinkStats",
    "StepStats",
    "MetricsRegistry",
    "RunMetrics",
]


class Counter:
    """A named monotonically-increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int = 0) -> None:
        self.name = name
        self.value = value

    def add(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, {self.value})"


class Histogram:
    """Power-of-two bucketed histogram of non-negative integer samples.

    Bucket ``i >= 1`` holds samples in ``[2**(i-1) + 1, 2**i]``; bucket 0
    holds samples in ``[0, 1]``.  Powers of two match how message sizes
    cluster around the eager/rendezvous protocol tiers.
    """

    __slots__ = ("name", "_counts", "count", "total", "max_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._counts: Dict[int, int] = {}
        self.count = 0
        self.total = 0
        self.max_value = 0

    def add(self, value: int) -> None:
        bucket = int(value - 1).bit_length() if value > 0 else 0
        self._counts[bucket] = self._counts.get(bucket, 0) + 1
        self.count += 1
        self.total += value
        if value > self.max_value:
            self.max_value = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def buckets(self) -> List[Tuple[int, int, int]]:
        """Sorted ``(low, high, count)`` rows for every non-empty bucket."""
        rows = []
        for b in sorted(self._counts):
            low = 0 if b == 0 else (1 << (b - 1)) + 1
            high = 1 if b == 0 else 1 << b
            rows.append((low, high, self._counts[b]))
        return rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name!r}, n={self.count}, sum={self.total})"


@dataclass
class LinkStats:
    """Aggregates for one directed ``(src, dst)`` link."""

    messages: int = 0
    nbytes: int = 0
    in_flight: int = 0
    max_in_flight: int = 0

    def on_post(self, nbytes: int) -> None:
        self.messages += 1
        self.nbytes += nbytes
        self.in_flight += 1
        if self.in_flight > self.max_in_flight:
            self.max_in_flight = self.in_flight

    def on_deliver(self) -> None:
        self.in_flight -= 1


@dataclass
class StepStats:
    """Aggregates for one tag (one exchange step of an algorithm)."""

    messages: int = 0
    nbytes: int = 0
    in_flight: int = 0
    max_in_flight: int = 0

    def on_post(self, nbytes: int) -> None:
        self.messages += 1
        self.nbytes += nbytes
        self.in_flight += 1
        if self.in_flight > self.max_in_flight:
            self.max_in_flight = self.in_flight

    def on_deliver(self) -> None:
        self.in_flight -= 1


class MetricsRegistry:
    """Live aggregates of one SPMD run.

    The network-facing hooks (:meth:`on_post` / :meth:`on_deliver`) are
    invoked under the network's lock, so they need no synchronization of
    their own; :meth:`on_retire` is invoked concurrently from rank threads
    and takes the registry lock.
    """

    def __init__(self, nprocs: int) -> None:
        self.nprocs = nprocs
        self.messages = Counter("messages")
        self.wire_bytes = Counter("wire_bytes")
        self.message_sizes = Histogram("message_nbytes")
        self.per_link: Dict[Tuple[int, int], LinkStats] = {}
        self.per_step: Dict[int, StepStats] = {}
        self.in_flight = 0
        self.max_in_flight = 0
        self.queue_wait_total = 0.0
        self.queue_wait_max = 0.0
        self.recv_wait_total = 0.0
        self.recv_wait_max = 0.0
        #: Injected-fault aggregates (chaos runs): counts per fault kind
        #: and the total simulated delay added to message departures.
        self.fault_counts: Dict[str, int] = {}
        self.injected_delay_total = 0.0
        self._lock = threading.Lock()

    # -- network-side hooks (called under the network lock) --------------
    def on_post(self, src: int, dst: int, tag: int, nbytes: int) -> None:
        """One message entered its channel."""
        self.messages.add()
        self.wire_bytes.add(nbytes)
        self.message_sizes.add(nbytes)
        link = self.per_link.get((src, dst))
        if link is None:
            link = self.per_link[(src, dst)] = LinkStats()
        link.on_post(nbytes)
        step = self.per_step.get(tag)
        if step is None:
            step = self.per_step[tag] = StepStats()
        step.on_post(nbytes)
        self.in_flight += 1
        if self.in_flight > self.max_in_flight:
            self.max_in_flight = self.in_flight

    def on_deliver(self, src: int, dst: int, tag: int, nbytes: int) -> None:
        """One message left its channel (popped by a receiver)."""
        self.per_link[(src, dst)].on_deliver()
        self.per_step[tag].on_deliver()
        self.in_flight -= 1

    # -- fault-engine hook (network post path or rank threads) -----------
    def on_fault(self, kind: str, delay: float = 0.0) -> None:
        """Count one injected fault / reliability action.

        Called both from the network's post path and from rank threads
        (receiver-side suppression), so it takes the registry lock.
        """
        with self._lock:
            self.fault_counts[kind] = self.fault_counts.get(kind, 0) + 1
            self.injected_delay_total += delay

    # -- communicator-side hook (called from rank threads) ---------------
    def on_retire(self, queue_wait: float, recv_wait: float) -> None:
        """Account one completed receive's simulated wait decomposition.

        ``queue_wait`` — time the message sat arrived-but-unretired in its
        channel (receiver was busy); ``recv_wait`` — time the receiver
        idled before the message's first byte arrived.  Exactly one of the
        two is non-zero per receive.
        """
        with self._lock:
            self.queue_wait_total += queue_wait
            if queue_wait > self.queue_wait_max:
                self.queue_wait_max = queue_wait
            self.recv_wait_total += recv_wait
            if recv_wait > self.recv_wait_max:
                self.recv_wait_max = recv_wait

    # -- snapshot ---------------------------------------------------------
    def snapshot(self, phase_times: Optional[Dict[str, float]] = None,
                 collective_times: Optional[Dict[str, float]] = None,
                 ) -> "RunMetrics":
        """Freeze the registry into an immutable-by-convention snapshot."""
        per_link = {
            link: (s.messages, s.nbytes, s.max_in_flight)
            for link, s in self.per_link.items()
        }
        per_step = {
            tag: (s.messages, s.nbytes, s.max_in_flight)
            for tag, s in self.per_step.items()
        }
        return RunMetrics(
            nprocs=self.nprocs,
            total_messages=self.messages.value,
            total_bytes=self.wire_bytes.value,
            message_size_buckets=self.message_sizes.buckets(),
            max_message_nbytes=self.message_sizes.max_value,
            max_in_flight=self.max_in_flight,
            per_link=per_link,
            per_step=per_step,
            queue_wait_total=self.queue_wait_total,
            queue_wait_max=self.queue_wait_max,
            recv_wait_total=self.recv_wait_total,
            recv_wait_max=self.recv_wait_max,
            phase_times=dict(phase_times or {}),
            collective_times=dict(collective_times or {}),
            fault_counts=dict(self.fault_counts),
            injected_delay_total=self.injected_delay_total,
        )


@dataclass
class RunMetrics:
    """Frozen aggregates of one SPMD run (``SPMDResult.metrics``).

    ``per_link``/``per_step`` values are ``(messages, nbytes,
    max_in_flight)`` tuples; ``phase_times`` is the max-over-ranks table
    (the bulk-synchronous bound: everyone waits for the slowest rank).
    """

    nprocs: int
    total_messages: int
    total_bytes: int
    message_size_buckets: List[Tuple[int, int, int]]
    max_message_nbytes: int
    max_in_flight: int
    per_link: Dict[Tuple[int, int], Tuple[int, int, int]]
    per_step: Dict[int, Tuple[int, int, int]]
    queue_wait_total: float
    queue_wait_max: float
    recv_wait_total: float
    recv_wait_max: float
    phase_times: Dict[str, float] = field(default_factory=dict)
    collective_times: Dict[str, float] = field(default_factory=dict)
    #: Injected-fault counts per kind (empty for clean-fabric runs) and
    #: the total simulated delay the fault engine added to departures.
    fault_counts: Dict[str, int] = field(default_factory=dict)
    injected_delay_total: float = 0.0

    @property
    def total_faults(self) -> int:
        """Total injected faults / reliability actions of every kind."""
        return sum(self.fault_counts.values())

    @property
    def max_in_flight_per_link(self) -> int:
        """Largest concurrent queue depth observed on any single link."""
        if not self.per_link:
            return 0
        return max(stats[2] for stats in self.per_link.values())

    def busiest_links(self, limit: int = 5) -> List[Tuple[Tuple[int, int],
                                                          Tuple[int, int, int]]]:
        """The ``limit`` links carrying the most bytes, descending."""
        ranked = sorted(self.per_link.items(),
                        key=lambda kv: (-kv[1][1], kv[0]))
        return ranked[:limit]

    def step_table(self) -> List[Tuple[int, int, int, int]]:
        """Per-step rows ``(tag, messages, nbytes, max_in_flight)``,
        ordered by tag (the algorithms' step order)."""
        return [(tag,) + self.per_step[tag] for tag in sorted(self.per_step)]

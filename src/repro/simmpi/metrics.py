"""Counters/histograms registry for the simulated runtime.

The :class:`MetricsRegistry` is the aggregate observability channel of an
SPMD run: while :mod:`repro.simmpi.tracing` records *per-event* logs, the
registry keeps cheap running aggregates —

* message and byte totals, plus a power-of-two **message-size histogram**;
* per-link ``(src, dst)`` traffic and the **maximum number of in-flight
  messages** per link and globally (the congestion signal the paper's
  Fig. 8 sensitivity study reasons about);
* per-step (per-tag) message/byte/in-flight/queue-wait aggregates — the
  Bruck algorithms use one tag per exchange step, so this is the per-step
  congestion table;
* simulated **queue-wait** time: how long retired messages sat delivered
  in their channel before the receiver got to them, and how long receivers
  idled waiting for the wire.

Every aggregate is a pure function of *simulated* timestamps, never of
host scheduling.  A message is **in flight** over the simulated interval
``[depart, landing_start]`` — from the instant its first byte leaves the
sender (post-fault-injection departure) until the receiver begins landing
it (``landing_start = max(receiver clock, head arrival)``).  The maxima
are computed at snapshot time by a sweep over those intervals, with the
pinned tie-break that at equal timestamps a departure counts before a
landing (touching intervals overlap, so every message registers a depth
of at least one).  Because the simulated timestamps are bit-identical
across the threads / coop / tensor backends, so are the metrics — the
older implementation counted posts and deliveries as host events and was
therefore scheduling-dependent on the threads backend.

Wait totals are accumulated per receiving rank (each rank appends its own
receives in program order — no lock needed) and combined at snapshot time
with :func:`math.fsum`, which is correctly rounded and therefore
independent of rank order.

The :class:`~repro.simmpi.network.Network` feeds the registry from
``post`` under its existing lock; the communicator feeds the per-receive
record from the rank threads through :meth:`MetricsRegistry.on_retire`.
When metrics are disabled the network holds ``None`` and pays a single
``is not None`` branch per message — near-zero overhead.

After a run the executor freezes the registry into a :class:`RunMetrics`
snapshot exposed as ``SPMDResult.metrics``.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "RunMetrics",
    "max_overlap",
    "max_overlap_by_group",
]


class Counter:
    """A named monotonically-increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int = 0) -> None:
        self.name = name
        self.value = value

    def add(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, {self.value})"


class Histogram:
    """Power-of-two bucketed histogram of non-negative integer samples.

    Bucket ``i >= 1`` holds samples in ``[2**(i-1) + 1, 2**i]``; bucket 0
    holds samples in ``[0, 1]``.  Powers of two match how message sizes
    cluster around the eager/rendezvous protocol tiers.
    """

    __slots__ = ("name", "_counts", "count", "total", "max_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._counts: Dict[int, int] = {}
        self.count = 0
        self.total = 0
        self.max_value = 0

    def add(self, value: int) -> None:
        bucket = int(value - 1).bit_length() if value > 0 else 0
        self._counts[bucket] = self._counts.get(bucket, 0) + 1
        self.count += 1
        self.total += value
        if value > self.max_value:
            self.max_value = value

    def add_bucket_counts(self, counts: Sequence[int], total: int,
                          max_value: int, n: int) -> None:
        """Bulk-merge pre-bucketed samples (the tensor backend's path).

        ``counts[i]`` is the number of samples in bucket ``i`` — the same
        bucketing rule as :meth:`add` (``(v - 1).bit_length()``).
        """
        for b, c in enumerate(counts):
            if c:
                self._counts[b] = self._counts.get(b, 0) + int(c)
        self.count += int(n)
        self.total += int(total)
        if max_value > self.max_value:
            self.max_value = int(max_value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def buckets(self) -> List[Tuple[int, int, int]]:
        """Sorted ``(low, high, count)`` rows for every non-empty bucket."""
        rows = []
        for b in sorted(self._counts):
            low = 0 if b == 0 else (1 << (b - 1)) + 1
            high = 1 if b == 0 else 1 << b
            rows.append((low, high, self._counts[b]))
        return rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name!r}, n={self.count}, sum={self.total})"


def max_overlap(starts: np.ndarray, ends: np.ndarray,
                weights: Optional[np.ndarray] = None) -> int:
    """Maximum number of simultaneously-open ``[start, end]`` intervals.

    Tie-break: at equal timestamps an interval *opening* is processed
    before an interval *closing*, so touching intervals overlap and every
    non-empty input yields at least ``min(weights)``.  ``weights`` lets a
    single interval stand for many identical messages (the tensor
    backend's lockstep pattern events).
    """
    n = len(starts)
    if n == 0:
        return 0
    if weights is None:
        deltas = np.ones(2 * n, dtype=np.int64)
        deltas[n:] = -1
    else:
        w = np.asarray(weights, dtype=np.int64)
        deltas = np.concatenate([w, -w])
    times = np.concatenate([np.asarray(starts, dtype=np.float64),
                            np.asarray(ends, dtype=np.float64)])
    closing = np.zeros(2 * n, dtype=np.int8)
    closing[n:] = 1
    order = np.lexsort((closing, times))
    return int(np.cumsum(deltas[order]).max())


def max_overlap_by_group(gids: np.ndarray, starts: np.ndarray,
                         ends: np.ndarray,
                         weights: Optional[np.ndarray] = None,
                         ) -> Dict[int, int]:
    """:func:`max_overlap` computed independently per integer group id.

    Returns ``{gid: max_overlap}`` for every group present.  One sort over
    all events; within each group the running depth is the global running
    sum minus the sum at the group's boundary.
    """
    n = len(starts)
    if n == 0:
        return {}
    gids = np.asarray(gids, dtype=np.int64)
    if weights is None:
        deltas = np.ones(2 * n, dtype=np.int64)
        deltas[n:] = -1
    else:
        w = np.asarray(weights, dtype=np.int64)
        deltas = np.concatenate([w, -w])
    times = np.concatenate([np.asarray(starts, dtype=np.float64),
                            np.asarray(ends, dtype=np.float64)])
    closing = np.zeros(2 * n, dtype=np.int8)
    closing[n:] = 1
    g2 = np.concatenate([gids, gids])
    order = np.lexsort((closing, times, g2))
    g_sorted = g2[order]
    cum = np.cumsum(deltas[order])
    bounds = np.flatnonzero(np.r_[True, g_sorted[1:] != g_sorted[:-1]])
    base = np.zeros(len(bounds), dtype=np.int64)
    base[1:] = cum[bounds[1:] - 1]
    lengths = np.diff(np.r_[bounds, len(cum)])
    depth = cum - np.repeat(base, lengths)
    gmax = np.maximum.reduceat(depth, bounds)
    return {int(g): int(m) for g, m in zip(g_sorted[bounds], gmax)}


class MetricsRegistry:
    """Live aggregates of one SPMD run.

    The network-facing hook (:meth:`on_post`) is invoked under the
    network's lock; :meth:`on_retire` is invoked from rank threads but
    each rank only touches its own per-rank stores, so it is lock-free;
    :meth:`on_fault` takes the registry lock for the shared count table.
    """

    def __init__(self, nprocs: int) -> None:
        self.nprocs = nprocs
        self.messages = Counter("messages")
        self.wire_bytes = Counter("wire_bytes")
        self.message_sizes = Histogram("message_nbytes")
        #: Per-link / per-step byte+message totals (in-flight maxima are
        #: derived from the flight intervals at snapshot time).
        self.per_link: Dict[Tuple[int, int], List[int]] = {}
        self.per_step: Dict[int, List[int]] = {}
        # Per-receiving-rank stores: each rank appends only to its own
        # slot, in program order, so no lock is needed and totals are
        # deterministic.
        self._flights: List[List[Tuple[int, int, int, float, float]]] = [
            [] for _ in range(nprocs)]
        self._qw_total = [0.0] * nprocs
        self._qw_max = [0.0] * nprocs
        self._rw_total = [0.0] * nprocs
        self._rw_max = [0.0] * nprocs
        self._step_qw_max: List[Dict[int, float]] = [
            {} for _ in range(nprocs)]
        #: Injected-fault aggregates (chaos runs): counts per fault kind
        #: and, per posting rank, the simulated delay added to departures.
        self.fault_counts: Dict[str, int] = {}
        self._delay_by_rank = [0.0] * nprocs
        self._lock = threading.Lock()

    # -- network-side hook (called under the network lock) ----------------
    def on_post(self, src: int, dst: int, tag: int, nbytes: int) -> None:
        """One message entered its channel."""
        self.messages.add()
        self.wire_bytes.add(nbytes)
        self.message_sizes.add(nbytes)
        link = self.per_link.get((src, dst))
        if link is None:
            link = self.per_link[(src, dst)] = [0, 0]
        link[0] += 1
        link[1] += nbytes
        step = self.per_step.get(tag)
        if step is None:
            step = self.per_step[tag] = [0, 0]
        step[0] += 1
        step[1] += nbytes

    # -- fault-engine hook (network post path or rank threads) -----------
    def on_fault(self, kind: str, delay: float = 0.0,
                 rank: Optional[int] = None) -> None:
        """Count one injected fault / reliability action.

        ``rank`` is the posting rank whose message the delay was added to;
        per-rank delay accumulation keeps ``injected_delay_total``
        independent of host scheduling (each rank's faults occur in its
        own program order; :func:`math.fsum` combines ranks at snapshot).
        """
        with self._lock:
            self.fault_counts[kind] = self.fault_counts.get(kind, 0) + 1
            if delay:
                self._delay_by_rank[rank if rank is not None else 0] += delay

    # -- communicator-side hook (called from rank threads) ---------------
    def on_retire(self, src: int, dst: int, tag: int,
                  depart: float, head: float, clock: float) -> None:
        """Account one completed receive on rank ``dst``.

        ``depart`` is the message's simulated departure (post-fault),
        ``head`` the simulated arrival of its first byte, and ``clock``
        the receiver's simulated clock when it retired the message.  The
        wait decomposition — ``queue_wait = max(0, clock - head)`` (the
        message sat arrived-but-unretired) versus ``recv_wait = max(0,
        head - clock)`` (the receiver idled for the wire); exactly one is
        non-zero — and the flight interval ``[depart, max(clock, head)]``
        are derived here.  Only rank ``dst``'s thread touches rank
        ``dst``'s slots, so this needs no lock.
        """
        queue_wait = max(0.0, clock - head)
        recv_wait = max(0.0, head - clock)
        self._qw_total[dst] += queue_wait
        if queue_wait > self._qw_max[dst]:
            self._qw_max[dst] = queue_wait
        self._rw_total[dst] += recv_wait
        if recv_wait > self._rw_max[dst]:
            self._rw_max[dst] = recv_wait
        step_max = self._step_qw_max[dst]
        if queue_wait > step_max.get(tag, 0.0):
            step_max[tag] = queue_wait
        landing = clock if clock > head else head
        self._flights[dst].append((src, dst, tag, depart, landing))

    # -- snapshot ---------------------------------------------------------
    def snapshot(self, phase_times: Optional[Dict[str, float]] = None,
                 collective_times: Optional[Dict[str, float]] = None,
                 ) -> "RunMetrics":
        """Freeze the registry into an immutable-by-convention snapshot."""
        events = [ev for per_rank in self._flights for ev in per_rank]
        p = self.nprocs
        if events:
            arr = np.asarray(events, dtype=np.float64)
            srcs = arr[:, 0].astype(np.int64)
            dsts = arr[:, 1].astype(np.int64)
            tags = arr[:, 2].astype(np.int64)
            starts = arr[:, 3]
            ends = arr[:, 4]
            global_max = max_overlap(starts, ends)
            link_max = max_overlap_by_group(srcs * p + dsts, starts, ends)
            step_max = max_overlap_by_group(tags, starts, ends)
        else:
            global_max = 0
            link_max = {}
            step_max = {}
        per_link = {
            (src, dst): (m, b, link_max.get(src * p + dst, 0))
            for (src, dst), (m, b) in self.per_link.items()
        }
        step_qw: Dict[int, float] = {}
        for per_rank in self._step_qw_max:
            for tag, qw in per_rank.items():
                if qw > step_qw.get(tag, 0.0):
                    step_qw[tag] = qw
        per_step = {
            tag: (m, b, step_max.get(tag, 0), step_qw.get(tag, 0.0))
            for tag, (m, b) in self.per_step.items()
        }
        return RunMetrics(
            nprocs=self.nprocs,
            total_messages=self.messages.value,
            total_bytes=self.wire_bytes.value,
            message_size_buckets=self.message_sizes.buckets(),
            max_message_nbytes=self.message_sizes.max_value,
            max_in_flight=global_max,
            per_link=per_link,
            per_step=per_step,
            queue_wait_total=math.fsum(self._qw_total),
            queue_wait_max=max(self._qw_max),
            recv_wait_total=math.fsum(self._rw_total),
            recv_wait_max=max(self._rw_max),
            phase_times=dict(phase_times or {}),
            collective_times=dict(collective_times or {}),
            fault_counts=dict(self.fault_counts),
            injected_delay_total=math.fsum(self._delay_by_rank),
        )


@dataclass
class RunMetrics:
    """Frozen aggregates of one SPMD run (``SPMDResult.metrics``).

    ``per_link`` values are ``(messages, nbytes, max_in_flight)`` tuples;
    ``per_step`` values are ``(messages, nbytes, max_in_flight,
    queue_wait_max)``; ``phase_times`` is the max-over-ranks table (the
    bulk-synchronous bound: everyone waits for the slowest rank).  All
    fields are pure functions of simulated time, so snapshots are
    bit-identical across backends and host schedules.
    """

    nprocs: int
    total_messages: int
    total_bytes: int
    message_size_buckets: List[Tuple[int, int, int]]
    max_message_nbytes: int
    max_in_flight: int
    per_link: Dict[Tuple[int, int], Tuple[int, int, int]]
    per_step: Dict[int, Tuple[int, int, int, float]]
    queue_wait_total: float
    queue_wait_max: float
    recv_wait_total: float
    recv_wait_max: float
    phase_times: Dict[str, float] = field(default_factory=dict)
    collective_times: Dict[str, float] = field(default_factory=dict)
    #: Injected-fault counts per kind (empty for clean-fabric runs) and
    #: the total simulated delay the fault engine added to departures.
    fault_counts: Dict[str, int] = field(default_factory=dict)
    injected_delay_total: float = 0.0

    @property
    def total_faults(self) -> int:
        """Total injected faults / reliability actions of every kind."""
        return sum(self.fault_counts.values())

    @property
    def max_in_flight_per_link(self) -> int:
        """Largest concurrent queue depth observed on any single link."""
        if not self.per_link:
            return 0
        return max(stats[2] for stats in self.per_link.values())

    def busiest_links(self, limit: int = 5) -> List[Tuple[Tuple[int, int],
                                                          Tuple[int, int, int]]]:
        """The ``limit`` links carrying the most bytes, descending.

        Deterministic tie-break: links are ranked by ``(-nbytes, (src,
        dst))`` — equal-byte links appear in ascending ``(src, dst)``
        order, so the table is stable across runs and backends.
        """
        ranked = sorted(self.per_link.items(),
                        key=lambda kv: (-kv[1][1], kv[0]))
        return ranked[:limit]

    def step_table(self) -> List[Tuple[int, int, int, int, float]]:
        """Per-step rows ``(tag, messages, nbytes, max_in_flight,
        queue_wait_max)``, ordered by tag (the algorithms' step order)."""
        return [(tag,) + self.per_step[tag] for tag in sorted(self.per_step)]

"""Deterministic fault injection and the reliability model.

The simulator's clean-fabric assumption (every posted message arrives,
exactly once, in FIFO order) is what PR 2's failure semantics tear down
*after* something already went wrong.  This module is the other half of a
robustness story: a way to *cause* faults on purpose, deterministically,
and to *tolerate* them with a measurable cost.

Three pieces:

* :class:`FaultPlan` — a declarative, pure-literal description of what to
  break: per-message **drop**, **delay/jitter**, **duplicate** and
  **reorder** rules matched by ``(src, dst, tag, phase)``; **crash** rules
  killing a rank at its *k*-th communication operation or at a simulated
  time; **straggler** rules multiplying a rank's CPU/serialization
  charges.  Plans parse from a compact CLI spec grammar
  (:meth:`FaultPlan.parse`).
* :class:`ReliabilityConfig` — the opt-in transport layer: acked
  delivery with per-channel sequence numbers, retransmission of dropped
  messages with exponential backoff up to a cap (each retry *delays* the
  delivery in simulated time — the cost of reliability is measurable),
  duplicate suppression, and in-order reassembly of reordered messages.
  A message whose every retransmission is dropped surfaces as a typed
  :class:`~repro.simmpi.errors.MessageLostError` at its simulated
  retry-exhaustion deadline — never a hang.
* :class:`FaultInjector` — the engine the
  :class:`~repro.simmpi.network.Network` consults on its post hot path.

Determinism
-----------
Every probabilistic decision is a **pure function of the message's
identity**, never of arrival order: the RNG for message *n* on channel
``(src, dst, tag)`` is seeded from ``(plan seed, src, dst, tag, n)``
(per-channel sequence numbers are deterministic because each channel has
a single sender posting in program order).  OS thread scheduling therefore
cannot change any fault decision, and the same ``(plan, seed)`` produces
bit-identical per-rank clocks, message counts, and fault-event sequences
on the ``threads`` and ``coop`` backends, for both wire modes —
``tests/simmpi/test_backend_equivalence.py`` enforces exactly that.

All injected faults are charged under the LogGP cost model in *simulated*
time (a delayed message departs later; a retransmitted message arrives
after its backoff schedule; a straggler pays multiplied ``o``/``beta``
charges).  No fault consults the host clock.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .network import ChannelKey, Envelope

__all__ = [
    "FaultRule",
    "CrashRule",
    "StragglerRule",
    "FaultPlan",
    "ReliabilityConfig",
    "FaultRecord",
    "FaultInjector",
    "FAULT_KINDS",
]

#: Message-level fault kinds a :class:`FaultRule` can inject.
FAULT_KINDS = ("drop", "delay", "duplicate", "reorder")


@dataclass(frozen=True)
class FaultRule:
    """One message-matched fault rule.

    ``src``/``dst``/``tag``/``phase`` of ``None`` are wildcards; ``phase``
    matches the *sender's* innermost open ``comm.phase(...)`` name at post
    time.  ``prob`` is the per-message firing probability (per
    *transmission attempt* for ``drop`` under reliability).  ``delay`` and
    ``jitter`` apply to ``kind="delay"``: the message's departure is
    shifted by ``delay + U[0, jitter)`` simulated seconds.
    """

    kind: str
    src: Optional[int] = None
    dst: Optional[int] = None
    tag: Optional[int] = None
    phase: Optional[str] = None
    prob: float = 1.0
    delay: float = 0.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}")
        if not 0.0 <= self.prob <= 1.0:
            raise ValueError(f"prob must be in [0, 1], got {self.prob}")
        if self.delay < 0 or self.jitter < 0:
            raise ValueError("delay and jitter must be non-negative")

    def matches(self, src: int, dst: int, tag: int,
                phase: Optional[str]) -> bool:
        return ((self.src is None or self.src == src)
                and (self.dst is None or self.dst == dst)
                and (self.tag is None or self.tag == tag)
                and (self.phase is None or self.phase == phase))


@dataclass(frozen=True)
class CrashRule:
    """Kill ``rank`` at its ``step``-th communication operation (1-based
    count over posted sends + receives) or at the first operation where
    its simulated clock reaches ``time`` seconds."""

    rank: int
    step: Optional[int] = None
    time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.step is None and self.time is None:
            raise ValueError("crash rule needs step= or time=")
        if self.step is not None and self.step < 1:
            raise ValueError("crash step is 1-based; must be >= 1")


@dataclass(frozen=True)
class StragglerRule:
    """Multiply the CPU/serialization charges (``o_send``, ``o_recv`` and
    the per-byte landing cost) of ``ranks`` by ``factor``."""

    ranks: Tuple[int, ...]
    factor: float

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise ValueError(f"straggler factor must be >= 1, got {self.factor}")


@dataclass(frozen=True)
class FaultPlan:
    """A declarative bundle of fault rules (pure literal, no callables).

    Build directly::

        plan = FaultPlan(
            rules=(FaultRule("drop", prob=0.02),
                   FaultRule("delay", delay=50e-6, jitter=20e-6)),
            crashes=(CrashRule(rank=3, step=40),),
            stragglers=(StragglerRule(ranks=(5,), factor=4.0),),
        )

    or parse the CLI spec grammar (rules separated by ``;``, parameters by
    ``,``)::

        FaultPlan.parse("drop:p=0.02;delay:d=50us,jitter=20us;"
                        "crash:rank=3,step=40;straggler:ranks=5,factor=4")
    """

    rules: Tuple[FaultRule, ...] = ()
    crashes: Tuple[CrashRule, ...] = ()
    stragglers: Tuple[StragglerRule, ...] = ()

    def __post_init__(self) -> None:
        seen = set()
        for c in self.crashes:
            if c.rank in seen:
                raise ValueError(f"duplicate crash rule for rank {c.rank}")
            seen.add(c.rank)

    @property
    def empty(self) -> bool:
        return not (self.rules or self.crashes or self.stragglers)

    def straggle_factor(self, rank: int) -> float:
        factor = 1.0
        for s in self.stragglers:
            if rank in s.ranks:
                factor *= s.factor
        return factor

    def crash_rule(self, rank: int) -> Optional[CrashRule]:
        for c in self.crashes:
            if c.rank == rank:
                return c
        return None

    # ------------------------------------------------------------------
    # spec grammar
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse the compact ``--faults`` grammar.

        ``spec`` is ``;``-separated clauses, each ``kind:key=val,...``:

        ========== =====================================================
        clause     parameters
        ========== =====================================================
        drop       ``p`` (prob), ``src``, ``dst``, ``tag``, ``phase``
        delay      ``d`` (seconds; ``us``/``ms`` suffixes ok), ``jitter``,
                   ``p``, ``src``, ``dst``, ``tag``, ``phase``
        dup        same matchers as drop (``duplicate`` also accepted)
        reorder    same matchers as drop
        crash      ``rank``, ``step`` (1-based op index) or ``at`` (sim s)
        straggler  ``ranks`` (``:``-separated), ``factor``
        ========== =====================================================

        Example: ``drop:p=0.02;straggler:ranks=0:3,factor=4;crash:rank=5,step=200``
        """
        rules: List[FaultRule] = []
        crashes: List[CrashRule] = []
        stragglers: List[StragglerRule] = []
        for clause in spec.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            kind, _, params = clause.partition(":")
            kind = kind.strip().lower()
            kv = _parse_params(params, clause)
            if kind in ("dup", "duplicate"):
                kind = "duplicate"
            if kind in FAULT_KINDS:
                rules.append(FaultRule(
                    kind=kind,
                    src=_get_int(kv, "src"),
                    dst=_get_int(kv, "dst"),
                    tag=_get_int(kv, "tag"),
                    phase=kv.pop("phase", None),
                    prob=_get_float(kv, "p", _get_float(kv, "prob", 1.0)),
                    delay=_get_time(kv, "d", _get_time(kv, "delay", 0.0)),
                    jitter=_get_time(kv, "jitter", 0.0),
                ))
            elif kind == "crash":
                rank = _get_int(kv, "rank")
                if rank is None:
                    raise ValueError(f"crash clause needs rank=: {clause!r}")
                crashes.append(CrashRule(
                    rank=rank, step=_get_int(kv, "step"),
                    time=_get_time(kv, "at", _get_time(kv, "time", None))))
            elif kind == "straggler":
                ranks_s = kv.pop("ranks", None) or kv.pop("rank", None)
                if ranks_s is None:
                    raise ValueError(
                        f"straggler clause needs ranks=: {clause!r}")
                ranks = tuple(int(r) for r in str(ranks_s).split(":"))
                stragglers.append(StragglerRule(
                    ranks=ranks, factor=_get_float(kv, "factor", 2.0)))
            else:
                raise ValueError(
                    f"unknown fault clause kind {kind!r} in {clause!r}; "
                    f"known: {FAULT_KINDS + ('crash', 'straggler')}")
            if kv:
                raise ValueError(
                    f"unknown parameter(s) {sorted(kv)} in clause {clause!r}")
        return cls(rules=tuple(rules), crashes=tuple(crashes),
                   stragglers=tuple(stragglers))


def _parse_params(params: str, clause: str) -> Dict[str, str]:
    kv: Dict[str, str] = {}
    for part in params.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, val = part.partition("=")
        if not sep:
            raise ValueError(f"expected key=value, got {part!r} in {clause!r}")
        kv[key.strip().lower()] = val.strip()
    return kv


def _get_int(kv: Dict[str, str], key: str,
             default: Optional[int] = None) -> Optional[int]:
    return int(kv.pop(key)) if key in kv else default


def _get_float(kv: Dict[str, str], key: str, default: float) -> float:
    return float(kv.pop(key)) if key in kv else default


def _get_time(kv: Dict[str, str], key: str, default):
    """Parse a simulated-time literal; bare numbers are seconds, with
    ``us``/``ms``/``s`` suffixes accepted."""
    if key not in kv:
        return default
    text = kv.pop(key).lower()
    scale = 1.0
    for suffix, s in (("us", 1e-6), ("ms", 1e-3), ("s", 1.0)):
        if text.endswith(suffix):
            text, scale = text[: -len(suffix)], s
            break
    return float(text) * scale


@dataclass(frozen=True)
class ReliabilityConfig:
    """Parameters of the ``reliability="retry"`` transport.

    All times are *simulated* seconds.  A dropped transmission is
    retransmitted after ``rto * backoff**i`` (attempt ``i``), up to
    ``max_retries`` retransmissions; exhaustion surfaces as
    :class:`~repro.simmpi.errors.MessageLostError` at the simulated
    deadline.  ``ack_overhead`` charges the receiver one ``o_send`` per
    delivered message (the ack injection), so reliability costs simulated
    time even on a clean fabric.
    """

    rto: float = 100e-6
    backoff: float = 2.0
    max_retries: int = 5
    ack_overhead: bool = True

    def __post_init__(self) -> None:
        if self.rto <= 0:
            raise ValueError("rto must be positive")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")

    def deadline_offset(self) -> float:
        """Total simulated wait after which a message is declared lost."""
        return sum(self.rto * self.backoff ** i
                   for i in range(self.max_retries + 1))


@dataclass(frozen=True)
class FaultRecord:
    """One injected fault, as reported by the network's post path.

    ``clock`` is the simulated time the fault takes effect (departure for
    drops/dups, delayed departure for delays, the retransmission instant
    for retries).
    """

    kind: str
    src: int
    dst: int
    tag: int
    nbytes: int
    clock: float
    detail: str = ""
    #: Simulated seconds this event added to the message's departure
    #: (``delay`` rules and ``retry`` backoffs; zero otherwise).
    delay: float = 0.0


class FaultInjector:
    """The per-run fault engine, shared by every rank through the network.

    State is confined to the network's synchronization domain: under the
    thread backend every call happens inside the network lock; under the
    cooperative backend exactly one rank runs at a time.  Per-channel
    counters are touched only by that channel's single sender, so their
    values are deterministic regardless of interleaving.
    """

    def __init__(self, plan: Optional[FaultPlan], seed: int = 0,
                 reliability: Optional[ReliabilityConfig] = None) -> None:
        self.plan = plan if plan is not None else FaultPlan()
        self.seed = int(seed)
        self.reliability = reliability
        #: Per-channel post counters: message identity for RNG seeding and
        #: (under reliability) the wire sequence number.
        self._chan_seq: Dict[ChannelKey, int] = {}
        #: Reorder holds, keyed by *sender*: a held message is deposited
        #: behind the sender's next post (any channel), or at program end
        #: via :meth:`flush` — both pure program-order triggers, so the
        #: perturbed deposit order is still deterministic.
        self._held: Dict[int, Envelope] = {}

    # ------------------------------------------------------------------
    def _rng(self, src: int, dst: int, tag: int, seq: int) -> random.Random:
        """Per-message RNG: a pure function of the message identity."""
        key = f"{self.seed}|{src}|{dst}|{tag}|{seq}".encode()
        digest = hashlib.blake2b(key, digest_size=8).digest()
        return random.Random(int.from_bytes(digest, "big"))

    def straggle_factor(self, rank: int) -> float:
        return self.plan.straggle_factor(rank)

    def crash_rule(self, rank: int) -> Optional[CrashRule]:
        return self.plan.crash_rule(rank)

    # ------------------------------------------------------------------
    def on_post(self, env: Envelope, phase: Optional[str]
                ) -> Tuple[List[Envelope], List[FaultRecord]]:
        """Transform one posted envelope into the envelope(s) to deposit.

        Returns ``(deposits, records)``: the envelopes that actually enter
        the channel (possibly empty for a drop or a reorder hold, possibly
        several for duplicates or a released reorder) and the fault
        records describing every injected event.
        """
        key = (env.src, env.dst, env.tag)
        seq = self._chan_seq.get(key, 0)
        self._chan_seq[key] = seq + 1
        if self.reliability is not None:
            env.seq = seq

        records: List[FaultRecord] = []
        rng: Optional[random.Random] = None

        def fired(rule: FaultRule) -> bool:
            nonlocal rng
            if rule.prob >= 1.0:
                return True
            if rng is None:
                rng = self._rng(env.src, env.dst, env.tag, seq)
            return rng.random() < rule.prob

        dropped = False
        duplicate = False
        reorder = False
        for rule in self.plan.rules:
            if not rule.matches(env.src, env.dst, env.tag, phase):
                continue
            if rule.kind == "drop" and not dropped:
                dropped = self._apply_drop(env, rule, seq, records)
            elif rule.kind == "delay":
                if fired(rule):
                    extra = rule.delay
                    if rule.jitter > 0.0:
                        if rng is None:
                            rng = self._rng(env.src, env.dst, env.tag, seq)
                        extra += rng.random() * rule.jitter
                    env.depart += extra
                    records.append(FaultRecord(
                        "delay", env.src, env.dst, env.tag, env.nbytes,
                        env.depart, f"+{extra:.3g}s", delay=extra))
            elif rule.kind == "duplicate":
                duplicate = duplicate or fired(rule)
            elif rule.kind == "reorder":
                reorder = reorder or fired(rule)

        deposits: List[Envelope] = []
        if dropped and env.mark != "lost":
            # Fully dropped, no reliability: the message vanishes.  The
            # receiver's blocked collect is the deadlock detector's
            # problem now — a typed error, never a hang.
            pass
        else:
            deposits.append(env)
            if duplicate and not dropped:
                deposits.append(Envelope(env.src, env.dst, env.tag,
                                         env.payload, env.depart,
                                         env.nbytes, seq=env.seq,
                                         mark="dup"))
                records.append(FaultRecord(
                    "duplicate", env.src, env.dst, env.tag, env.nbytes,
                    env.depart))

        # Reorder bookkeeping: a held predecessor from this sender is
        # released *behind* whatever this post deposits (adjacent posts
        # swap deposit order); a fresh reorder hit holds this message for
        # the sender's next post.  Messages within one channel really
        # invert (FIFO broken — the injected fault); across channels only
        # the deposit instant moves, which the receiver matches by tag
        # anyway.  :meth:`flush` releases a sender's final hold when its
        # program returns, so a hold can never outlive the run.
        held = self._held.pop(env.src, None)
        if reorder and held is None and deposits:
            self._held[env.src] = deposits.pop(0)
            records.append(FaultRecord(
                "reorder", env.src, env.dst, env.tag, env.nbytes,
                env.depart, "held behind sender's next post"))
        if held is not None:
            deposits.append(held)
        return deposits, records

    def flush(self, sender: int) -> Optional[Envelope]:
        """Release ``sender``'s outstanding reorder hold, if any.

        Called (through the network) when the sender's rank program
        returns; the envelope is deposited then, guaranteeing no message
        is held forever.
        """
        return self._held.pop(sender, None)

    def _apply_drop(self, env: Envelope, rule: FaultRule, seq: int,
                    records: List[FaultRecord]) -> bool:
        """Decide the fate of one message under a drop rule.

        Without reliability a single draw decides delivery.  With
        reliability each transmission attempt draws independently; the
        first surviving attempt delivers the message delayed by the
        accumulated backoff, and exhaustion converts the envelope into a
        ``mark="lost"`` tombstone carrying its simulated deadline (so the
        receiver fails typed instead of hanging).
        """
        rng = self._rng(env.src, env.dst, env.tag, seq)
        if rng.random() >= rule.prob:
            return False
        records.append(FaultRecord(
            "drop", env.src, env.dst, env.tag, env.nbytes, env.depart))
        rel = self.reliability
        if rel is None:
            return True
        delay = 0.0
        for attempt in range(rel.max_retries):
            step = rel.rto * rel.backoff ** attempt
            delay += step
            records.append(FaultRecord(
                "retry", env.src, env.dst, env.tag, env.nbytes,
                env.depart + delay, f"attempt {attempt + 1}", delay=step))
            if rng.random() >= rule.prob:  # this retransmission survives
                env.depart += delay
                return False
            records.append(FaultRecord(
                "drop", env.src, env.dst, env.tag, env.nbytes,
                env.depart + delay, f"retry {attempt + 1} dropped"))
        # Every attempt dropped: tombstone at the exhaustion deadline.
        delay += rel.rto * rel.backoff ** rel.max_retries
        env.mark = "lost"
        env.payload = b""
        env.depart += delay
        records.append(FaultRecord(
            "lost", env.src, env.dst, env.tag, env.nbytes, env.depart,
            f"gave up after {rel.max_retries} retries"))
        return True

"""Deterministic fault injection and the reliability model.

The simulator's clean-fabric assumption (every posted message arrives,
exactly once, in FIFO order) is what PR 2's failure semantics tear down
*after* something already went wrong.  This module is the other half of a
robustness story: a way to *cause* faults on purpose, deterministically,
and to *tolerate* them with a measurable cost.

Three pieces:

* :class:`FaultPlan` — a declarative, pure-literal description of what to
  break: per-message **drop**, **delay/jitter**, **duplicate**,
  **reorder**, **corrupt** (seeded bit-flips; in phantom wire mode a
  tamper flag plus a declared-vs-actual size skew, so detection works
  without payload bytes) and **forge** (a spoofed envelope synthesized on
  a matched channel) rules matched by ``(src, dst, tag, phase)``;
  **crash** rules killing a rank at its *k*-th communication operation or
  at a simulated time; **straggler** rules multiplying a rank's
  CPU/serialization charges.  Plans parse from a compact CLI spec grammar
  (:meth:`FaultPlan.parse`) and print back to it (:meth:`FaultPlan.to_spec`).
* :class:`ReliabilityConfig` — the opt-in transport ladder: acked
  delivery with per-channel sequence numbers, retransmission of dropped
  messages with exponential backoff up to a cap (each retry *delays* the
  delivery in simulated time — the cost of reliability is measurable),
  duplicate suppression, and in-order reassembly of reordered messages.
  A message whose every retransmission is dropped surfaces as a typed
  :class:`~repro.simmpi.errors.MessageLostError` at its simulated
  retry-exhaustion deadline — never a hang.  The ``verify=True`` tier
  (``reliability="verify"``) additionally stamps every posted envelope
  with a blake2b payload checksum and a ``(src, channel-seq)`` auth tag;
  the receiving communicator checks both at delivery and turns a failed
  check into a typed :class:`~repro.simmpi.errors.MessageCorruptError`,
  a NACK + retransmission, or a sender tombstone, depending on the
  ``on_fault`` policy.
* :class:`FaultInjector` — the engine the
  :class:`~repro.simmpi.network.Network` consults on its post hot path.

Determinism
-----------
Every probabilistic decision is a **pure function of the message's
identity**, never of arrival order: the RNG for message *n* on channel
``(src, dst, tag)`` is seeded from ``(plan seed, src, dst, tag, n)``
(per-channel sequence numbers are deterministic because each channel has
a single sender posting in program order).  OS thread scheduling therefore
cannot change any fault decision, and the same ``(plan, seed)`` produces
bit-identical per-rank clocks, message counts, and fault-event sequences
on the ``threads`` and ``coop`` backends, for both wire modes —
``tests/simmpi/test_backend_equivalence.py`` enforces exactly that.

All injected faults are charged under the LogGP cost model in *simulated*
time (a delayed message departs later; a retransmitted message arrives
after its backoff schedule; a straggler pays multiplied ``o``/``beta``
charges).  No fault consults the host clock.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .network import ChannelKey, Envelope

__all__ = [
    "FaultRule",
    "CrashRule",
    "StragglerRule",
    "FaultPlan",
    "ReliabilityConfig",
    "FaultRecord",
    "FaultInjector",
    "FAULT_KINDS",
    "KNOWN_FAULT_CLAUSES",
    "auth_tag",
    "payload_digest",
]

#: Message-level fault kinds a :class:`FaultRule` can inject.
FAULT_KINDS = ("drop", "delay", "duplicate", "reorder", "corrupt", "forge")

#: Every clause kind the ``--faults`` grammar accepts: the message-level
#: rules plus the rank-level crash/straggler clauses.  The single source
#: of truth for "known kinds" listings (parse errors, CLI help) — a new
#: kind added to :data:`FAULT_KINDS` can never drift out of them.
KNOWN_FAULT_CLAUSES = FAULT_KINDS + ("crash", "straggler")


def auth_tag(src: int, dst: int, tag: int, seq: Optional[int]) -> int:
    """The verified transport's per-message authentication tag.

    A pure function of the message's channel identity ``(src, dst, tag,
    seq)`` — the simulator's stand-in for a MAC under a shared channel
    key.  Stamped by :meth:`FaultInjector.on_post`, recomputed and
    compared by the receiving communicator; a forged envelope cannot
    carry a valid tag because the forger (the fault engine acting as the
    adversary) stamps garbage instead of this value.
    """
    key = f"auth|{src}|{dst}|{tag}|{seq}".encode()
    return int.from_bytes(hashlib.blake2b(key, digest_size=8).digest(), "big")


def payload_digest(payload: bytes) -> int:
    """blake2b checksum of a payload, as stamped on verified envelopes."""
    return int.from_bytes(
        hashlib.blake2b(payload, digest_size=8).digest(), "big")


@dataclass(frozen=True)
class FaultRule:
    """One message-matched fault rule.

    ``src``/``dst``/``tag``/``phase`` of ``None`` are wildcards; ``phase``
    matches the *sender's* innermost open ``comm.phase(...)`` name at post
    time.  ``prob`` is the per-message firing probability (per
    *transmission attempt* for ``drop`` and ``corrupt`` under
    reliability).  ``delay`` and ``jitter`` apply to ``kind="delay"``: the
    message's departure is shifted by ``delay + U[0, jitter)`` simulated
    seconds.  ``corrupt`` flips 1–4 seeded payload bits (in phantom wire
    mode it skews the envelope's declared size instead, so the verified
    transport detects the tamper without payload bytes); ``forge``
    deposits a spoofed envelope — same channel, adversarial contents,
    invalid auth — in front of the genuine message.
    """

    kind: str
    src: Optional[int] = None
    dst: Optional[int] = None
    tag: Optional[int] = None
    phase: Optional[str] = None
    prob: float = 1.0
    delay: float = 0.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}")
        if not 0.0 <= self.prob <= 1.0:
            raise ValueError(f"prob must be in [0, 1], got {self.prob}")
        if self.delay < 0 or self.jitter < 0:
            raise ValueError("delay and jitter must be non-negative")

    def matches(self, src: int, dst: int, tag: int,
                phase: Optional[str]) -> bool:
        return ((self.src is None or self.src == src)
                and (self.dst is None or self.dst == dst)
                and (self.tag is None or self.tag == tag)
                and (self.phase is None or self.phase == phase))

    def to_spec(self) -> str:
        """This rule as one clause of the ``--faults`` grammar.

        Only non-default parameters are emitted, so
        ``FaultRule.to_spec()`` round-trips through
        :meth:`FaultPlan.parse` to an equal rule.
        """
        params = []
        if self.prob != 1.0:
            params.append(f"p={self.prob!r}")
        if self.delay:
            params.append(f"d={self.delay!r}")
        if self.jitter:
            params.append(f"jitter={self.jitter!r}")
        for name in ("src", "dst", "tag", "phase"):
            value = getattr(self, name)
            if value is not None:
                params.append(f"{name}={value}")
        return self.kind + (":" + ",".join(params) if params else "")


@dataclass(frozen=True)
class CrashRule:
    """Kill ``rank`` at its ``step``-th communication operation (1-based
    count over posted sends + receives) or at the first operation where
    its simulated clock reaches ``time`` seconds."""

    rank: int
    step: Optional[int] = None
    time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.step is None and self.time is None:
            raise ValueError("crash rule needs step= or time=")
        if self.step is not None and self.step < 1:
            raise ValueError("crash step is 1-based; must be >= 1")

    def to_spec(self) -> str:
        params = [f"rank={self.rank}"]
        if self.step is not None:
            params.append(f"step={self.step}")
        if self.time is not None:
            params.append(f"at={self.time!r}")
        return "crash:" + ",".join(params)


@dataclass(frozen=True)
class StragglerRule:
    """Multiply the CPU/serialization charges (``o_send``, ``o_recv`` and
    the per-byte landing cost) of ``ranks`` by ``factor``."""

    ranks: Tuple[int, ...]
    factor: float

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise ValueError(f"straggler factor must be >= 1, got {self.factor}")

    def to_spec(self) -> str:
        ranks = ":".join(str(r) for r in self.ranks)
        return f"straggler:ranks={ranks},factor={self.factor!r}"


@dataclass(frozen=True)
class FaultPlan:
    """A declarative bundle of fault rules (pure literal, no callables).

    Build directly::

        plan = FaultPlan(
            rules=(FaultRule("drop", prob=0.02),
                   FaultRule("delay", delay=50e-6, jitter=20e-6)),
            crashes=(CrashRule(rank=3, step=40),),
            stragglers=(StragglerRule(ranks=(5,), factor=4.0),),
        )

    or parse the CLI spec grammar (rules separated by ``;``, parameters by
    ``,``)::

        FaultPlan.parse("drop:p=0.02;delay:d=50us,jitter=20us;"
                        "crash:rank=3,step=40;straggler:ranks=5,factor=4")
    """

    rules: Tuple[FaultRule, ...] = ()
    crashes: Tuple[CrashRule, ...] = ()
    stragglers: Tuple[StragglerRule, ...] = ()

    def __post_init__(self) -> None:
        seen = set()
        for c in self.crashes:
            if c.rank in seen:
                raise ValueError(f"duplicate crash rule for rank {c.rank}")
            seen.add(c.rank)

    @property
    def empty(self) -> bool:
        return not (self.rules or self.crashes or self.stragglers)

    def straggle_factor(self, rank: int) -> float:
        factor = 1.0
        for s in self.stragglers:
            if rank in s.ranks:
                factor *= s.factor
        return factor

    def crash_rule(self, rank: int) -> Optional[CrashRule]:
        for c in self.crashes:
            if c.rank == rank:
                return c
        return None

    def to_spec(self) -> str:
        """Print this plan back to the ``--faults`` grammar.

        The inverse of :meth:`parse`: ``FaultPlan.parse(plan.to_spec())
        == plan`` for every plan expressible in the grammar (the
        round-trip property ``tests/simmpi/test_faults.py`` pins).
        """
        clauses = [r.to_spec() for r in self.rules]
        clauses += [c.to_spec() for c in self.crashes]
        clauses += [s.to_spec() for s in self.stragglers]
        return ";".join(clauses)

    # ------------------------------------------------------------------
    # spec grammar
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse the compact ``--faults`` grammar.

        ``spec`` is ``;``-separated clauses, each ``kind:key=val,...``:

        ========== =====================================================
        clause     parameters
        ========== =====================================================
        drop       ``p`` (prob), ``src``, ``dst``, ``tag``, ``phase``
        delay      ``d`` (seconds; ``us``/``ms`` suffixes ok), ``jitter``,
                   ``p``, ``src``, ``dst``, ``tag``, ``phase``
        dup        same matchers as drop (``duplicate`` also accepted)
        reorder    same matchers as drop
        corrupt    same matchers as drop (seeded payload bit-flips)
        forge      same matchers as drop (spoofed envelope injection)
        crash      ``rank``, ``step`` (1-based op index) or ``at`` (sim s)
        straggler  ``ranks`` (``:``-separated), ``factor``
        ========== =====================================================

        Example: ``drop:p=0.02;straggler:ranks=0:3,factor=4;crash:rank=5,step=200``
        """
        rules: List[FaultRule] = []
        crashes: List[CrashRule] = []
        stragglers: List[StragglerRule] = []
        for clause in spec.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            kind, _, params = clause.partition(":")
            kind = kind.strip().lower()
            kv = _parse_params(params, clause)
            if kind in ("dup", "duplicate"):
                kind = "duplicate"
            if kind in FAULT_KINDS:
                rules.append(FaultRule(
                    kind=kind,
                    src=_get_int(kv, "src"),
                    dst=_get_int(kv, "dst"),
                    tag=_get_int(kv, "tag"),
                    phase=kv.pop("phase", None),
                    prob=_get_float(kv, "p", _get_float(kv, "prob", 1.0)),
                    delay=_get_time(kv, "d", _get_time(kv, "delay", 0.0)),
                    jitter=_get_time(kv, "jitter", 0.0),
                ))
            elif kind == "crash":
                rank = _get_int(kv, "rank")
                if rank is None:
                    raise ValueError(f"crash clause needs rank=: {clause!r}")
                crashes.append(CrashRule(
                    rank=rank, step=_get_int(kv, "step"),
                    time=_get_time(kv, "at", _get_time(kv, "time", None))))
            elif kind == "straggler":
                ranks_s = kv.pop("ranks", None) or kv.pop("rank", None)
                if ranks_s is None:
                    raise ValueError(
                        f"straggler clause needs ranks=: {clause!r}")
                ranks = tuple(int(r) for r in str(ranks_s).split(":"))
                stragglers.append(StragglerRule(
                    ranks=ranks, factor=_get_float(kv, "factor", 2.0)))
            else:
                raise ValueError(
                    f"unknown fault clause kind {kind!r} in {clause!r}; "
                    f"known: {KNOWN_FAULT_CLAUSES}")
            if kv:
                raise ValueError(
                    f"unknown parameter(s) {sorted(kv)} in clause {clause!r}")
        return cls(rules=tuple(rules), crashes=tuple(crashes),
                   stragglers=tuple(stragglers))


def _parse_params(params: str, clause: str) -> Dict[str, str]:
    kv: Dict[str, str] = {}
    for part in params.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, val = part.partition("=")
        if not sep:
            raise ValueError(f"expected key=value, got {part!r} in {clause!r}")
        kv[key.strip().lower()] = val.strip()
    return kv


def _get_int(kv: Dict[str, str], key: str,
             default: Optional[int] = None) -> Optional[int]:
    return int(kv.pop(key)) if key in kv else default


def _get_float(kv: Dict[str, str], key: str, default: float) -> float:
    return float(kv.pop(key)) if key in kv else default


def _get_time(kv: Dict[str, str], key: str, default):
    """Parse a simulated-time literal; bare numbers are seconds, with
    ``us``/``ms``/``s`` suffixes accepted."""
    if key not in kv:
        return default
    text = kv.pop(key).lower()
    scale = 1.0
    for suffix, s in (("us", 1e-6), ("ms", 1e-3), ("s", 1.0)):
        if text.endswith(suffix):
            text, scale = text[: -len(suffix)], s
            break
    return float(text) * scale


@dataclass(frozen=True)
class ReliabilityConfig:
    """Parameters of the ``reliability="retry"`` transport.

    All times are *simulated* seconds.  A dropped transmission is
    retransmitted after ``rto * backoff**i`` (attempt ``i``), up to
    ``max_retries`` retransmissions; exhaustion surfaces as
    :class:`~repro.simmpi.errors.MessageLostError` at the simulated
    deadline.  ``ack_overhead`` charges the receiver one ``o_send`` per
    delivered message (the ack injection), so reliability costs simulated
    time even on a clean fabric.

    ``verify=True`` is the top rung of the reliability ladder
    (``reliability="verify"``): every posted envelope is stamped with a
    blake2b payload checksum and a ``(src, channel-seq)`` auth tag, both
    checked at delivery.  The check costs one ``copy_time(nbytes)`` at
    each end (hashing is a pass over the bytes), so verification has a
    measurable simulated price even on a clean fabric.
    """

    rto: float = 100e-6
    backoff: float = 2.0
    max_retries: int = 5
    ack_overhead: bool = True
    verify: bool = False

    def __post_init__(self) -> None:
        if self.rto <= 0:
            raise ValueError("rto must be positive")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")

    def deadline_offset(self) -> float:
        """Total simulated wait after which a message is declared lost."""
        return sum(self.rto * self.backoff ** i
                   for i in range(self.max_retries + 1))


@dataclass(frozen=True)
class FaultRecord:
    """One injected fault, as reported by the network's post path.

    ``clock`` is the simulated time the fault takes effect (departure for
    drops/dups, delayed departure for delays, the retransmission instant
    for retries).
    """

    kind: str
    src: int
    dst: int
    tag: int
    nbytes: int
    clock: float
    detail: str = ""
    #: Simulated seconds this event added to the message's departure
    #: (``delay`` rules and ``retry`` backoffs; zero otherwise).
    delay: float = 0.0


class FaultInjector:
    """The per-run fault engine, shared by every rank through the network.

    State is confined to the network's synchronization domain: under the
    thread backend every call happens inside the network lock; under the
    cooperative backend exactly one rank runs at a time.  Per-channel
    counters are touched only by that channel's single sender, so their
    values are deterministic regardless of interleaving.
    """

    def __init__(self, plan: Optional[FaultPlan], seed: int = 0,
                 reliability: Optional[ReliabilityConfig] = None,
                 on_fault: str = "fail-fast") -> None:
        self.plan = plan if plan is not None else FaultPlan()
        self.seed = int(seed)
        self.reliability = reliability
        #: The run's failure policy.  The injector needs it because the
        #: verified transport's retransmission dialogue is precomputed at
        #: post time: a corrupted copy is followed by its retransmissions
        #: only when the receiver would actually NACK (``on_fault=
        #: "retry"``), never under fail-fast/degrade.
        self.on_fault = on_fault
        #: Per-channel post counters: message identity for RNG seeding and
        #: (under reliability) the wire sequence number.
        self._chan_seq: Dict[ChannelKey, int] = {}
        #: Reorder holds, keyed by *sender*: a held message is deposited
        #: behind the sender's next post (any channel), or at program end
        #: via :meth:`flush` — both pure program-order triggers, so the
        #: perturbed deposit order is still deterministic.
        self._held: Dict[int, Envelope] = {}

    # ------------------------------------------------------------------
    def _rng(self, src: int, dst: int, tag: int, seq: int,
             salt: str = "") -> random.Random:
        """Per-message RNG: a pure function of the message identity.

        ``salt`` gives each independent decision family (corrupt, forge)
        its own stream, so e.g. a plan with both ``drop:p=0.1`` and
        ``corrupt:p=0.1`` does not fire them on exactly the same
        messages.
        """
        text = f"{self.seed}|{src}|{dst}|{tag}|{seq}"
        if salt:
            text += f"|{salt}"
        digest = hashlib.blake2b(text.encode(), digest_size=8).digest()
        return random.Random(int.from_bytes(digest, "big"))

    @property
    def verify(self) -> bool:
        """True when the verified-transport tier is on."""
        return self.reliability is not None and self.reliability.verify

    def straggle_factor(self, rank: int) -> float:
        return self.plan.straggle_factor(rank)

    def crash_rule(self, rank: int) -> Optional[CrashRule]:
        return self.plan.crash_rule(rank)

    # ------------------------------------------------------------------
    def on_post(self, env: Envelope, phase: Optional[str]
                ) -> Tuple[List[Envelope], List[FaultRecord]]:
        """Transform one posted envelope into the envelope(s) to deposit.

        Returns ``(deposits, records)``: the envelopes that actually enter
        the channel (possibly empty for a drop or a reorder hold, possibly
        several for duplicates or a released reorder) and the fault
        records describing every injected event.
        """
        key = (env.src, env.dst, env.tag)
        seq = self._chan_seq.get(key, 0)
        self._chan_seq[key] = seq + 1
        if self.reliability is not None:
            env.seq = seq
            if self.reliability.verify:
                # Verified-transport stamps.  ``declared`` mirrors the
                # true size so phantom-mode tampering (a size skew) is
                # detectable without payload bytes.
                env.auth = auth_tag(env.src, env.dst, env.tag, seq)
                env.declared = env.nbytes
                if env.payload is not None:
                    env.checksum = payload_digest(env.payload)

        records: List[FaultRecord] = []
        rng: Optional[random.Random] = None

        def fired(rule: FaultRule) -> bool:
            nonlocal rng
            if rule.prob >= 1.0:
                return True
            if rng is None:
                rng = self._rng(env.src, env.dst, env.tag, seq)
            return rng.random() < rule.prob

        dropped = False
        duplicate = False
        reorder = False
        corrupt_rule: Optional[FaultRule] = None
        forge_rule: Optional[FaultRule] = None
        for rule in self.plan.rules:
            if not rule.matches(env.src, env.dst, env.tag, phase):
                continue
            if rule.kind == "drop" and not dropped:
                dropped = self._apply_drop(env, rule, seq, records)
            elif rule.kind == "delay":
                if fired(rule):
                    extra = rule.delay
                    if rule.jitter > 0.0:
                        if rng is None:
                            rng = self._rng(env.src, env.dst, env.tag, seq)
                        extra += rng.random() * rule.jitter
                    env.depart += extra
                    records.append(FaultRecord(
                        "delay", env.src, env.dst, env.tag, env.nbytes,
                        env.depart, f"+{extra:.3g}s", delay=extra))
            elif rule.kind == "duplicate":
                duplicate = duplicate or fired(rule)
            elif rule.kind == "reorder":
                reorder = reorder or fired(rule)
            elif rule.kind == "corrupt" and corrupt_rule is None:
                corrupt_rule = rule
            elif rule.kind == "forge" and forge_rule is None:
                forge_rule = rule

        deposits: List[Envelope] = []
        if dropped and env.mark != "lost":
            # Fully dropped, no reliability: the message vanishes.  The
            # receiver's blocked collect is the deadlock detector's
            # problem now — a typed error, never a hang.
            pass
        else:
            deposits.append(env)
            if duplicate and not dropped:
                dup = Envelope(env.src, env.dst, env.tag, env.payload,
                               env.depart, env.nbytes, seq=env.seq,
                               mark="dup")
                # A duplicate is a re-send of the genuine message, so it
                # carries the genuine stamps (taken before any tamper —
                # corrupt runs below and replaces, never mutates, the
                # stamped fields).
                dup.auth = env.auth
                dup.checksum = env.checksum
                dup.declared = env.declared
                deposits.append(dup)
                records.append(FaultRecord(
                    "duplicate", env.src, env.dst, env.tag, env.nbytes,
                    env.depart))

        # Byzantine injections.  Corrupt tampers the delivered copy
        # (post-drop-resolution, so a retransmitted survivor can still be
        # corrupted) and, under the verified transport's retry policy,
        # precomputes the NACK/retransmission dialogue.  Forge deposits a
        # spoofed envelope *in front of* the genuine traffic on the same
        # channel — single-sender program order keeps the perturbed
        # deposit order deterministic.
        if corrupt_rule is not None and deposits and env.mark != "lost":
            self._apply_corrupt(env, corrupt_rule, seq, deposits, records)
        if forge_rule is not None:
            forged = self._apply_forge(env, forge_rule, seq, records)
            if forged is not None:
                deposits.insert(0, forged)

        # Reorder bookkeeping: a held predecessor from this sender is
        # released *behind* whatever this post deposits (adjacent posts
        # swap deposit order); a fresh reorder hit holds this message for
        # the sender's next post.  Messages within one channel really
        # invert (FIFO broken — the injected fault); across channels only
        # the deposit instant moves, which the receiver matches by tag
        # anyway.  :meth:`flush` releases a sender's final hold when its
        # program returns, so a hold can never outlive the run.
        held = self._held.pop(env.src, None)
        if reorder and held is None and deposits:
            self._held[env.src] = deposits.pop(0)
            records.append(FaultRecord(
                "reorder", env.src, env.dst, env.tag, env.nbytes,
                env.depart, "held behind sender's next post"))
        if held is not None:
            deposits.append(held)
        return deposits, records

    def flush(self, sender: int) -> Optional[Envelope]:
        """Release ``sender``'s outstanding reorder hold, if any.

        Called (through the network) when the sender's rank program
        returns; the envelope is deposited then, guaranteeing no message
        is held forever.
        """
        return self._held.pop(sender, None)

    def _apply_drop(self, env: Envelope, rule: FaultRule, seq: int,
                    records: List[FaultRecord]) -> bool:
        """Decide the fate of one message under a drop rule.

        Without reliability a single draw decides delivery.  With
        reliability each transmission attempt draws independently; the
        first surviving attempt delivers the message delayed by the
        accumulated backoff, and exhaustion converts the envelope into a
        ``mark="lost"`` tombstone carrying its simulated deadline (so the
        receiver fails typed instead of hanging).
        """
        rng = self._rng(env.src, env.dst, env.tag, seq)
        if rng.random() >= rule.prob:
            return False
        records.append(FaultRecord(
            "drop", env.src, env.dst, env.tag, env.nbytes, env.depart))
        rel = self.reliability
        if rel is None:
            return True
        delay = 0.0
        for attempt in range(rel.max_retries):
            step = rel.rto * rel.backoff ** attempt
            delay += step
            records.append(FaultRecord(
                "retry", env.src, env.dst, env.tag, env.nbytes,
                env.depart + delay, f"attempt {attempt + 1}", delay=step))
            if rng.random() >= rule.prob:  # this retransmission survives
                env.depart += delay
                return False
            records.append(FaultRecord(
                "drop", env.src, env.dst, env.tag, env.nbytes,
                env.depart + delay, f"retry {attempt + 1} dropped"))
        # Every attempt dropped: tombstone at the exhaustion deadline.
        delay += rel.rto * rel.backoff ** rel.max_retries
        env.mark = "lost"
        env.payload = b""
        env.depart += delay
        records.append(FaultRecord(
            "lost", env.src, env.dst, env.tag, env.nbytes, env.depart,
            f"gave up after {rel.max_retries} retries"))
        return True

    # ------------------------------------------------------------------
    # Byzantine injections
    # ------------------------------------------------------------------
    @staticmethod
    def _tamper(env: Envelope, rng: random.Random) -> int:
        """Corrupt one envelope in place; returns the bit-flip count.

        Every random draw happens in both wire modes and depends only on
        ``nbytes`` (wire-identical), so the decision stream — and with it
        every later fault decision — is bit-identical across bytes and
        phantom.  Bytes mode (and any control-plane message, which
        carries payload in both modes) flips distinct payload bits, so
        the tampered bytes always differ from the original; phantom
        data envelopes skew the declared size instead — the wire image
        the checksum/size check sees is wrong either way, while
        ``nbytes`` (the cost driver) never changes.
        """
        nbits = env.nbytes * 8
        k = min(1 + rng.randrange(4), nbits)
        positions = rng.sample(range(nbits), k)
        skew = 1 + rng.randrange(255)
        env.tampered = True
        if env.payload is not None:
            data = bytearray(env.payload)
            for pos in positions:
                data[pos >> 3] ^= 1 << (pos & 7)
            env.payload = bytes(data)
        else:
            env.declared = env.nbytes + skew
        return k

    def _apply_corrupt(self, env: Envelope, rule: FaultRule, seq: int,
                       deposits: List[Envelope],
                       records: List[FaultRecord]) -> None:
        """Decide and apply in-flight corruption of one message.

        Without the verified transport the tampered copy is simply
        delivered — silent corruption is exactly the failure mode the
        verify tier exists to rule out.  With ``verify`` + ``on_fault=
        "retry"`` the receiver NACKs a failed check, so the dialogue is
        precomputed here like :meth:`_apply_drop`'s: each retransmission
        attempt draws corruption independently; the first clean copy ends
        the exchange, and exhaustion deposits a ``mark="corrupt_lost"``
        tombstone the receiver converts into a typed
        :class:`~repro.simmpi.errors.MessageCorruptError` at the
        simulated deadline.
        """
        rng = self._rng(env.src, env.dst, env.tag, seq, salt="corrupt")
        if rng.random() >= rule.prob or env.nbytes == 0:
            return
        original = (env.payload, env.auth, env.checksum, env.declared)

        def clean_copy(depart: float, mark: Optional[str] = None) -> Envelope:
            copy = Envelope(env.src, env.dst, env.tag, original[0], depart,
                            env.nbytes, seq=env.seq, mark=mark)
            copy.auth, copy.checksum, copy.declared = original[1:]
            return copy

        flips = self._tamper(env, rng)
        records.append(FaultRecord(
            "corrupt", env.src, env.dst, env.tag, env.nbytes, env.depart,
            f"flips={flips}"))
        rel = self.reliability
        if rel is None or not rel.verify or self.on_fault != "retry":
            return
        delay = 0.0
        for attempt in range(rel.max_retries):
            step = rel.rto * rel.backoff ** attempt
            delay += step
            records.append(FaultRecord(
                "retry", env.src, env.dst, env.tag, env.nbytes,
                env.depart + delay, f"attempt {attempt + 1}", delay=step))
            copy = clean_copy(env.depart + delay)
            if rng.random() >= rule.prob:  # this retransmission is clean
                deposits.append(copy)
                return
            flips = self._tamper(copy, rng)
            records.append(FaultRecord(
                "corrupt", env.src, env.dst, env.tag, env.nbytes,
                env.depart + delay,
                f"retry {attempt + 1} corrupted (flips={flips})"))
            deposits.append(copy)
        # Every retransmission tampered: tombstone at the deadline.
        delay += rel.rto * rel.backoff ** rel.max_retries
        tomb = clean_copy(env.depart + delay, mark="corrupt_lost")
        tomb.payload = b"" if original[0] is not None else None
        records.append(FaultRecord(
            "corrupt_lost", env.src, env.dst, env.tag, env.nbytes,
            env.depart + delay,
            f"gave up after {rel.max_retries} retries"))
        deposits.append(tomb)

    def _apply_forge(self, env: Envelope, rule: FaultRule, seq: int,
                     records: List[FaultRecord]) -> Optional[Envelope]:
        """Synthesize a spoofed envelope on the matched channel, or None.

        The forgery claims the genuine message's ``(src, dst, tag)`` and
        size but carries adversarial contents and (under the verified
        transport) a garbage auth tag — an internally consistent
        checksum, because a checksum is attacker-computable; only the
        auth tag is not.  It carries no wire sequence number: an
        unverified receiver delivers it ahead of the genuine traffic (a
        Byzantine delivery), a verifying receiver rejects it on the auth
        check.  Draw order is fixed (auth before payload bytes, payload
        last) so phantom mode, which synthesizes no payload, consumes an
        identical RNG prefix.
        """
        rng = self._rng(env.src, env.dst, env.tag, seq, salt="forge")
        if rng.random() >= rule.prob:
            return None
        forged = Envelope(env.src, env.dst, env.tag, None, env.depart,
                          env.nbytes)
        fake_auth = rng.getrandbits(64)
        if self.verify:
            forged.auth = fake_auth
            forged.declared = env.nbytes
        if env.payload is not None:
            forged.payload = rng.randbytes(env.nbytes)
            if self.verify:
                forged.checksum = payload_digest(forged.payload)
        records.append(FaultRecord(
            "forge", env.src, env.dst, env.tag, env.nbytes, env.depart,
            "spoofed envelope injected"))
        return forged

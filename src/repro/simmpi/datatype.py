"""Emulation of MPI derived datatypes (indexed-block / struct types).

The paper's ``-dt`` Bruck variants describe non-contiguous block sets with
``MPI_Type_create_struct`` so the MPI library packs and unpacks them inside
the send/receive calls.  We reproduce both the *function* (gather scattered
blocks into one wire message, scatter on arrival) and the *cost character*
(a per-block datatype-engine overhead larger than a plain ``memcpy`` setup,
which is why the paper — and Träff et al. [39] — find datatype variants
slower for blocks under a few hundred bytes).

An :class:`IndexedBlocks` instance is the analogue of a committed datatype:
it freezes the ``(offset, length)`` list and can be reused across steps.
Packing with NumPy fancy indexing keeps the *host* cost low while the
*simulated* cost is charged from the machine profile's ``dt_block`` /
``dt_byte`` constants.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = ["IndexedBlocks", "gather_index"]


def gather_index(offsets: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Flat byte-gather index covering ``[off, off+len)`` per block.

    Fully vectorized — no per-block Python loop: for each output position
    the index is its block's offset plus the position's rank *within* the
    block, built with one ``repeat`` and one ``arange``.  This is the
    "committed datatype" trick: compute the index once, then every
    gather/scatter over the same block structure is a single fancy-indexing
    call.  Shared by :class:`IndexedBlocks` and the Two-Phase/Padded
    staging paths.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(lengths)
    starts = ends - lengths
    # position i of the output belongs to block b: index = offsets[b] +
    # (i - starts[b]), i.e. repeat(offsets - starts) + arange(total).
    return np.repeat(offsets - starts, lengths) + np.arange(total, dtype=np.int64)


class IndexedBlocks:
    """A frozen list of ``(offset, length)`` byte extents within a buffer.

    Equivalent to an ``MPI_Type_create_indexed_block``/``struct`` datatype
    built over ``MPI_BYTE``.  Offsets may appear in any order (the Bruck
    algorithms enumerate blocks in rotated order) and lengths may be zero.
    Extents must not overlap: MPI's type-matching rules make overlapping
    receive extents erroneous, and catching it here converts silent data
    corruption into an immediate error.
    """

    __slots__ = ("offsets", "lengths", "nblocks", "nbytes", "_gather_index")

    def __init__(self, extents: Sequence[Tuple[int, int]]) -> None:
        offsets = np.asarray([e[0] for e in extents], dtype=np.int64)
        lengths = np.asarray([e[1] for e in extents], dtype=np.int64)
        if np.any(lengths < 0):
            raise ValueError("block lengths must be non-negative")
        if np.any(offsets < 0):
            raise ValueError("block offsets must be non-negative")
        self._check_disjoint(offsets, lengths)
        self.offsets = offsets
        self.lengths = lengths
        self.nblocks = int(len(extents))
        self.nbytes = int(lengths.sum())
        # Precompute the flat gather index once ("commit" the type); reuse
        # across communication steps is free, like a committed MPI datatype.
        self._gather_index = gather_index(offsets, lengths)

    @staticmethod
    def _check_disjoint(offsets: np.ndarray, lengths: np.ndarray) -> None:
        if len(offsets) < 2:
            return
        order = np.argsort(offsets, kind="stable")
        so, sl = offsets[order], lengths[order]
        ends = so[:-1] + sl[:-1]
        if np.any(ends > so[1:]):
            bad = int(np.argmax(ends > so[1:]))
            raise ValueError(
                f"overlapping extents: block at offset {so[bad]} "
                f"(len {sl[bad]}) overlaps block at offset {so[bad + 1]}"
            )

    # ------------------------------------------------------------------
    def pack(self, buffer: np.ndarray) -> np.ndarray:
        """Gather the described extents of ``buffer`` into one flat array."""
        view = _byte_view(buffer)
        self._bounds_check(view)
        return view[self._gather_index]

    def unpack(self, buffer: np.ndarray, data: np.ndarray) -> None:
        """Scatter ``data`` into the described extents of ``buffer``."""
        view = _byte_view(buffer)
        self._bounds_check(view)
        flat = np.asarray(data, dtype=np.uint8).reshape(-1)
        if flat.nbytes != self.nbytes:
            raise ValueError(
                f"datatype describes {self.nbytes} bytes but payload has "
                f"{flat.nbytes}"
            )
        view[self._gather_index] = flat

    def _bounds_check(self, view: np.ndarray) -> None:
        if self.nbytes and int((self.offsets + self.lengths).max()) > view.nbytes:
            raise ValueError(
                f"datatype extends to byte "
                f"{int((self.offsets + self.lengths).max())} but buffer has "
                f"only {view.nbytes} bytes"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IndexedBlocks(nblocks={self.nblocks}, nbytes={self.nbytes})"


def _byte_view(buffer: np.ndarray) -> np.ndarray:
    if not isinstance(buffer, np.ndarray):
        raise TypeError(f"buffer must be an ndarray, got {type(buffer)}")
    if not buffer.flags.c_contiguous:
        raise ValueError("buffer must be C-contiguous")
    return buffer.reshape(-1).view(np.uint8)

"""Render SPMD runs to the Chrome/Perfetto trace-event format and to
plain-text summaries.

``chrome://tracing`` and https://ui.perfetto.dev both load the JSON
*trace event format* (one object per event).  :func:`chrome_trace` turns
an :class:`~repro.simmpi.executor.SPMDResult` into that format:

* one track (process) per rank, named ``rank N``;
* complete-duration slices (``"ph": "X"``) for phases, collectives,
  sends (injection overhead), receives (landing/serialization time),
  copies and datatype-engine operations;
* **flow arrows** (``"ph": "s"`` / ``"ph": "f"``) connecting each send
  slice to the matching receive slice on the destination rank, so message
  routes are visible as arrows in the timeline;
* a **fabric counter track** (``"ph": "C"``) charting the number of
  in-flight messages over simulated time — the same quantity whose
  maximum :class:`~repro.simmpi.metrics.RunMetrics` reports as
  ``max_in_flight``;
* optionally (``critical_path=True``) a **critical path track**: the
  happens-before chain that bounded the makespan, rendered as its own
  pinned process with one slice per path segment and flow arrows at
  every cross-rank hop.

All timestamps are *simulated* microseconds — the exported timeline is
deterministic and bit-reproducible, like the simulation itself.

:func:`format_summary` renders the shared plain-text per-phase / per-step
accounting table used by ``SPMDResult.summary()``, the ``python -m repro
trace`` subcommand, and the benchmark harness.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .executor import SPMDResult

__all__ = ["chrome_trace", "export_chrome_trace", "format_summary",
           "format_phase_table"]

_US = 1e6  # simulated seconds -> trace-event microseconds


def _slice(name: str, cat: str, pid: int, start: float, end: float,
           args: Optional[dict] = None) -> dict:
    ev = {"name": name, "cat": cat, "ph": "X", "pid": pid, "tid": 0,
          "ts": start * _US, "dur": max(0.0, (end - start)) * _US}
    if args:
        ev["args"] = args
    return ev


def chrome_trace(result: "SPMDResult", critical_path: bool = False) -> dict:
    """Build the trace-event JSON document for one SPMD run.

    Requires event traces — run with ``trace=True`` or ``trace="events"``.
    With ``critical_path=True`` the document additionally carries a
    pinned "critical path" track computed by
    :meth:`~repro.simmpi.executor.SPMDResult.critical_path`.
    """
    if result.traces is None:
        raise ValueError(
            "chrome_trace needs per-event traces; re-run with trace=True "
            "or trace='events' (this run used trace=False or "
            "trace='metrics')"
        )
    events: List[dict] = []
    for rank in range(result.nprocs):
        events.append({"name": "process_name", "ph": "M", "pid": rank,
                       "tid": 0, "args": {"name": f"rank {rank}"}})
        events.append({"name": "process_sort_index", "ph": "M", "pid": rank,
                       "tid": 0, "args": {"sort_index": rank}})

    # Flow-arrow ids: the i-th send on a (src, dst, tag) channel matches
    # the i-th receive on it (the network delivers per-channel FIFO).
    flow_ids: Dict[tuple, int] = {}

    def flow_id(src: int, dst: int, tag: int, seq: int) -> int:
        key = (src, dst, tag, seq)
        if key not in flow_ids:
            flow_ids[key] = len(flow_ids) + 1
        return flow_ids[key]

    for tr in result.traces:
        rank = tr.rank
        for ph in tr.phases:
            events.append(_slice(ph.name, "phase", rank, ph.start, ph.end))
        for coll in tr.collectives:
            events.append(_slice(coll.name, "collective", rank,
                                 coll.start, coll.end))
        send_seq: Dict[tuple, int] = {}
        for e in tr.sends:
            chan = (e.src, e.dst, e.tag)
            seq = send_seq.get(chan, 0)
            send_seq[chan] = seq + 1
            fid = flow_id(e.src, e.dst, e.tag, seq)
            events.append(_slice(f"send->{e.dst}", "comm", rank,
                                 e.start, e.end,
                                 {"dst": e.dst, "tag": e.tag,
                                  "nbytes": e.nbytes}))
            events.append({"name": "msg", "cat": "flow", "ph": "s",
                           "id": fid, "pid": rank, "tid": 0,
                           "ts": e.end * _US})
        recv_seq: Dict[tuple, int] = {}
        for e in tr.recvs:
            chan = (e.src, e.dst, e.tag)
            seq = recv_seq.get(chan, 0)
            recv_seq[chan] = seq + 1
            fid = flow_id(e.src, e.dst, e.tag, seq)
            events.append(_slice(f"recv<-{e.src}", "comm", rank,
                                 e.start, e.end,
                                 {"src": e.src, "tag": e.tag,
                                  "nbytes": e.nbytes}))
            events.append({"name": "msg", "cat": "flow", "ph": "f",
                           "bp": "e", "id": fid, "pid": rank, "tid": 0,
                           "ts": e.end * _US})
        for e in tr.faults:
            # Injected faults render as instant events ("ph": "i") pinned
            # to their simulated instant on the affected sender's track.
            events.append({"name": f"fault:{e.kind}", "cat": "fault",
                           "ph": "i", "s": "t", "pid": rank, "tid": 0,
                           "ts": e.clock * _US,
                           "args": {"src": e.src, "dst": e.dst,
                                    "tag": e.tag, "nbytes": e.nbytes,
                                    "detail": e.detail}})
        for e in tr.copies:
            events.append(_slice("copy", "memory", rank, e.start, e.end,
                                 {"nbytes": e.nbytes}))
        for e in tr.datatype_ops:
            events.append(_slice(f"dt_{e.kind}", "memory", rank,
                                 e.start, e.end,
                                 {"nblocks": e.nblocks, "nbytes": e.nbytes}))

    events.extend(_fabric_counter_events(result))
    if critical_path:
        events.extend(_critical_path_events(result))
    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "nprocs": result.nprocs,
            "machine": result.machine.name,
            "total_messages": result.total_messages,
            "total_bytes": result.total_bytes,
            "simulated_makespan_s": result.elapsed,
            "degraded_ranks": list(result.degraded_ranks),
        },
    }
    return doc


def _fabric_counter_events(result: "SPMDResult") -> List[dict]:
    """In-flight message counter samples on a synthetic "fabric" track.

    A message is in flight from its departure (send slice end) until its
    landing begins (receive slice start).  Ties resolve starts before
    ends — the same sweep convention the metrics registry uses, so on a
    clean fabric the counter's peak equals ``RunMetrics.max_in_flight``.
    (Under injected *delay* faults the counter opens at the scheduled
    departure — the send event predates fault injection — while the
    registry sweeps post-injection departs, so the peaks can differ.)
    """
    pid = result.nprocs  # first pid after the rank tracks
    deltas: List[tuple] = []
    for tr in result.traces:
        for e in tr.sends:
            deltas.append((e.end, 0, 1))
        for e in tr.recvs:
            deltas.append((e.start, 1, -1))
    deltas.sort()
    events: List[dict] = [
        {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
         "args": {"name": "fabric"}},
        {"name": "process_sort_index", "ph": "M", "pid": pid, "tid": 0,
         "args": {"sort_index": pid}},
    ]
    level = 0
    i = 0
    while i < len(deltas):
        ts = deltas[i][0]
        while i < len(deltas) and deltas[i][0] == ts:
            level += deltas[i][2]
            i += 1
        events.append({"name": "in-flight", "ph": "C", "pid": pid,
                       "tid": 0, "ts": ts * _US,
                       "args": {"messages": level}})
    return events


def _critical_path_events(result: "SPMDResult") -> List[dict]:
    """The critical-path chain as a pinned track plus hop arrows."""
    cp = result.critical_path()
    pid = result.nprocs + 1  # after the rank tracks and the fabric track
    events: List[dict] = [
        {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
         "args": {"name": "critical path"}},
        {"name": "process_sort_index", "ph": "M", "pid": pid, "tid": 0,
         "args": {"sort_index": -1}},  # pin above the rank tracks
    ]
    prev_rank: Optional[int] = None
    for i, seg in enumerate(cp.path):
        name = f"rank {seg.rank}: {seg.kind}"
        args = {"rank": seg.rank, "kind": seg.kind}
        if seg.detail:
            args["detail"] = seg.detail
        events.append(_slice(name, "critical", pid, seg.start, seg.end,
                             args))
        if prev_rank is not None and seg.rank != prev_rank:
            # Arrow on the rank tracks marking the cross-rank hop.
            events.append({"name": "critical-hop", "cat": "critical",
                           "ph": "s", "id": 10_000_000 + i,
                           "pid": prev_rank, "tid": 0,
                           "ts": seg.start * _US})
            events.append({"name": "critical-hop", "cat": "critical",
                           "ph": "f", "bp": "e", "id": 10_000_000 + i,
                           "pid": seg.rank, "tid": 0,
                           "ts": seg.start * _US})
        prev_rank = seg.rank
    return events


def export_chrome_trace(result: "SPMDResult",
                        path: Optional[str] = None,
                        critical_path: bool = False) -> dict:
    """Render ``result`` to trace-event JSON; write it to ``path`` if given.

    The file loads directly in ``chrome://tracing`` or Perfetto
    (https://ui.perfetto.dev -> "Open trace file").
    """
    doc = chrome_trace(result, critical_path=critical_path)
    if path is not None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, separators=(",", ":"))
    return doc


# ----------------------------------------------------------------------
# plain-text summaries
# ----------------------------------------------------------------------

def format_phase_table(phase_times: Mapping[str, float],
                       header: str = "phases (max over ranks, ms):") -> str:
    """Aligned per-phase table in milliseconds, ordered by time desc."""
    if not phase_times:
        return f"{header} none recorded"
    width = max(len(name) for name in phase_times)
    lines = [header]
    for name, t in sorted(phase_times.items(), key=lambda kv: -kv[1]):
        lines.append(f"  {name:>{width}}: {t * 1e3:10.4f}")
    return "\n".join(lines)


def _step_table(metrics, limit: int = 16) -> List[str]:
    rows = metrics.step_table()
    lines = [f"{'step(tag)':>10} {'messages':>9} {'bytes':>12} "
             f"{'max in-flight':>14} {'max q-wait(ms)':>15}"]
    shown = rows
    if len(rows) > limit:
        shown = sorted(rows, key=lambda r: -r[2])[:limit]
        shown.sort(key=lambda r: r[0])
    for tag, msgs, nbytes, mif, qw in shown:
        lines.append(f"{tag:>10} {msgs:>9} {nbytes:>12} {mif:>14} "
                     f"{qw * 1e3:>15.4f}")
    if len(rows) > limit:
        lines.append(f"  ({len(rows) - limit} smaller steps elided)")
    return lines


def format_summary(result: "SPMDResult", title: str = "") -> str:
    """Shared per-phase / per-step accounting of one SPMD run.

    Works with whatever the run recorded: phase breakdowns come from event
    traces or the metrics phase table; congestion and queue-wait rows need
    ``result.metrics`` (``trace=True`` or ``trace="metrics"``).
    """
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(
        f"SPMD run: P={result.nprocs}, machine={result.machine.name}, "
        f"simulated makespan {result.elapsed * 1e3:.4f} ms")
    lines.append(f"wire traffic: {result.total_messages} messages, "
                 f"{result.total_bytes} bytes")
    if result.degraded_ranks:
        lines.append(
            f"DEGRADED run: rank(s) {result.degraded_ranks} excised by "
            f"injected crashes; survivors completed a shrunken collective")
    m = result.metrics
    if m is not None:
        lines.append(
            f"congestion: max in-flight {m.max_in_flight} globally, "
            f"{m.max_in_flight_per_link} on the busiest link")
        lines.append(
            f"receive waits: {m.queue_wait_total * 1e3:.4f} ms queued "
            f"(max {m.queue_wait_max * 1e3:.4f}), "
            f"{m.recv_wait_total * 1e3:.4f} ms idle "
            f"(max {m.recv_wait_max * 1e3:.4f})")
        if m.fault_counts:
            counts = ", ".join(f"{k}={v}" for k, v in
                               sorted(m.fault_counts.items()))
            lines.append(
                f"injected faults: {counts}; "
                f"+{m.injected_delay_total * 1e3:.4f} ms simulated delay")
    try:
        phases = result.phase_times()
    except ValueError:
        phases = {}
    if phases:
        lines.append(format_phase_table(phases))
    if m is not None and m.collective_times:
        lines.append(format_phase_table(
            m.collective_times, header="collectives (max over ranks, ms):"))
    if m is not None and m.per_step:
        lines.extend(_step_table(m))
    return "\n".join(lines)

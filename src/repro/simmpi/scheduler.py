"""Deterministic cooperative scheduler: the ``backend="coop"`` executor core.

The thread-per-rank executor stops being practical at a few hundred ranks:
every rank owns a full OS thread, every message post storms a shared
condition variable with ``notify_all`` (an O(P) thundering herd), and
deadlock detection degrades to a wall-clock watchdog.  This module replaces
all of that with a *cooperative* design:

* Each rank is a **tasklet** — a suspended continuation of the rank's
  program.  CPython cannot suspend an arbitrary call stack from pure Python
  (that is what C extensions like ``greenlet`` exist for), so each tasklet
  carries its stack on a parked daemon thread with a tiny stack allocation;
  the thread is purely a continuation holder.  **Exactly one tasklet (or
  the scheduler loop) runs at any instant** — handoff is two event signals,
  there is never lock contention, and the network fast path below takes no
  locks at all.
* The scheduler's run queue is ordered by **(simulated clock, rank id)**,
  so execution order is a pure function of the program's communication
  structure: re-running the same program replays the identical schedule.
* A rank that blocks on an empty channel yields back to the scheduler; the
  matching ``post`` makes it runnable again.  When the run queue is empty
  while unfinished ranks remain, *no* interleaving can make progress —
  that is an exact deadlock proof, and the scheduler raises
  :class:`~repro.simmpi.errors.DeadlockError` immediately (with the
  blocked-rank and pending-message dump) instead of waiting out a
  wall-clock watchdog.

Simulated clocks are bit-identical to the thread backend's: all timing
arithmetic lives in :class:`~repro.simmpi.communicator.Communicator` /
:class:`~repro.simmpi.request.RecvRequest` and depends only on envelope
departure times and each rank's own operation order, neither of which the
backend changes.  ``tests/simmpi/test_backend_equivalence.py`` enforces
this across every registered algorithm.

Practical scale: the coop backend runs thousands of ranks (CI exercises
P=1024; P=4096 works) where the thread backend is limited to a few
hundred.  Parked carrier threads cost one small stack each and are created
lazily, the first time a rank is scheduled.
"""

from __future__ import annotations

import heapq
import threading
from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Optional, Tuple

from .errors import DeadlockError, RankFailedError
from .machine import MachineProfile
from .metrics import MetricsRegistry
from .network import ChannelKey, Envelope, Network

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .communicator import Communicator

__all__ = ["CoopScheduler", "CoopNetwork"]

#: Stack allocation for carrier threads.  They only ever hold a suspended
#: rank program (algorithm code + numpy calls, no deep recursion), so 2 MiB
#: is comfortable while letting thousands of ranks coexist.
_CARRIER_STACK_BYTES = 2 << 20


class _Tasklet:
    """One rank's suspended continuation.

    The carrier thread is started lazily on first schedule and exits when
    the rank's program returns or unwinds; in between it is parked on
    ``resume_evt`` whenever the rank is not the running one.
    """

    __slots__ = ("rank", "body", "thread", "resume_evt", "started", "finished")

    def __init__(self, rank: int, body: Callable[[], None]) -> None:
        self.rank = rank
        self.body = body
        self.thread: Optional[threading.Thread] = None
        self.resume_evt = threading.Event()
        self.started = False
        self.finished = False


class CoopScheduler:
    """Single-runner event loop driving one tasklet per rank.

    Usage (the executor does this)::

        scheduler = CoopScheduler(nprocs)
        network = CoopNetwork(nprocs, machine, scheduler=scheduler)
        scheduler.run(network, worker)   # worker(rank) is the rank program

    ``run`` returns when every rank finished (normally or by unwinding
    with an exception the worker recorded), or raises
    :class:`DeadlockError` the moment no rank can make progress.
    """

    def __init__(self, nprocs: int) -> None:
        if nprocs <= 0:
            raise ValueError(f"nprocs must be positive, got {nprocs}")
        self.nprocs = nprocs
        self._tasklets: List[_Tasklet] = []
        self._comms: Dict[int, "Communicator"] = {}
        # Min-heap of (simulated clock, rank) over runnable-but-suspended
        # ranks; the clock is the rank's clock when it last yielded.
        self._runnable: List[Tuple[float, int]] = []
        self._blocked: Dict[ChannelKey, Deque[int]] = {}
        self._blocked_clock: Dict[int, float] = {}
        self._unfinished = 0
        self._current: Optional[_Tasklet] = None
        self._sched_evt = threading.Event()
        self._running = False

    # ------------------------------------------------------------------
    # fabric-facing interface (called by CoopNetwork, from the running
    # tasklet or from the scheduler loop — never concurrently)
    # ------------------------------------------------------------------
    def bind_clock(self, rank: int, comm: "Communicator") -> None:
        """Learn where ``rank``'s simulated clock lives."""
        self._comms[rank] = comm

    def block_current(self, key: ChannelKey) -> None:
        """Suspend the running rank until ``notify_key(key)`` (or a global
        wake) reschedules it.  Returns once the rank runs again; the caller
        re-checks its channel/abort conditions in a loop."""
        t = self._current
        if t is None:
            raise RuntimeError(
                "cooperative network used outside a scheduler run"
            )
        comm = self._comms.get(t.rank)
        self._blocked_clock[t.rank] = comm.clock if comm is not None else 0.0
        self._blocked.setdefault(key, deque()).append(t.rank)
        # Hand the baton to the scheduler and park.
        self._sched_evt.set()
        t.resume_evt.wait()
        t.resume_evt.clear()

    def notify_key(self, key: ChannelKey) -> None:
        """A message landed on ``key``: make its oldest waiter runnable."""
        waiters = self._blocked.get(key)
        if waiters:
            rank = waiters.popleft()
            if not waiters:
                del self._blocked[key]
            heapq.heappush(self._runnable,
                           (self._blocked_clock.pop(rank), rank))

    def wake_all_blocked(self) -> None:
        """Abort/shutdown path: every blocked rank becomes runnable so it
        can observe the failure flag and unwind."""
        for waiters in self._blocked.values():
            for rank in waiters:
                heapq.heappush(self._runnable,
                               (self._blocked_clock.pop(rank), rank))
        self._blocked.clear()

    # ------------------------------------------------------------------
    # the loop
    # ------------------------------------------------------------------
    def run(self, network: Network, worker: Callable[[int], None]) -> None:
        """Drive ``worker(rank)`` for every rank to completion."""
        if self._running:
            raise RuntimeError("scheduler is already running")
        self._running = True
        self._tasklets = [
            _Tasklet(rank, lambda rank=rank: worker(rank))
            for rank in range(self.nprocs)
        ]
        self._unfinished = self.nprocs
        self._runnable = [(0.0, rank) for rank in range(self.nprocs)]
        # Already sorted (equal clocks, ascending rank) — valid heap.
        old_stack = self._set_carrier_stack_size()
        try:
            while self._unfinished:
                if not self._runnable:
                    self._raise_deadlock(network)
                _, rank = heapq.heappop(self._runnable)
                self._switch_to(self._tasklets[rank])
        finally:
            self._restore_stack_size(old_stack)
            self._running = False

    @staticmethod
    def _set_carrier_stack_size() -> Optional[int]:
        """Shrink the stack of subsequently created (carrier) threads.

        Returns the previous size for restoration, or ``None`` if the
        platform refuses (then carriers just use the default stack).
        """
        try:
            return threading.stack_size(_CARRIER_STACK_BYTES)
        except (ValueError, RuntimeError, OverflowError):  # pragma: no cover
            return None

    @staticmethod
    def _restore_stack_size(old: Optional[int]) -> None:
        if old is None:  # pragma: no cover - platform-dependent
            return
        try:
            threading.stack_size(old)
        except (ValueError, RuntimeError, OverflowError):  # pragma: no cover
            pass

    def _switch_to(self, t: _Tasklet) -> None:
        """Run ``t`` until it yields (blocks) or finishes."""
        self._current = t
        if not t.started:
            t.started = True
            t.thread = threading.Thread(
                target=self._bootstrap, args=(t,),
                name=f"coop-rank-{t.rank}", daemon=True)
            t.thread.start()
        else:
            t.resume_evt.set()
        self._sched_evt.wait()
        self._sched_evt.clear()
        self._current = None

    def _bootstrap(self, t: _Tasklet) -> None:
        try:
            t.body()
        finally:
            t.finished = True
            self._unfinished -= 1
            self._sched_evt.set()

    # ------------------------------------------------------------------
    # exact deadlock detection
    # ------------------------------------------------------------------
    def _raise_deadlock(self, network: Network) -> None:
        """No runnable rank, unfinished ranks remain: provably stuck.

        Composes the diagnostic, then tears the job down (shutdown flag +
        wake) so every parked continuation unwinds and its carrier thread
        exits before the error propagates.
        """
        waits = []
        for (src, dst, tag), waiters in sorted(self._blocked.items()):
            for rank in waiters:
                waits.append(
                    f"rank {rank} waiting on src={src} tag={tag} "
                    f"at simulated clock {self._blocked_clock[rank]:.6g}"
                )
        message = (
            f"SPMD run deadlocked ({self._unfinished} of {self.nprocs} "
            f"ranks blocked with no runnable peer):\n  "
            + ";\n  ".join(waits)
            + f"\n{network.pending_summary()}"
        )
        network.shutdown()  # flags the fabric; wakes the blocked ranks
        while self._unfinished and self._runnable:
            _, rank = heapq.heappop(self._runnable)
            self._switch_to(self._tasklets[rank])
        raise DeadlockError(message)


class CoopNetwork(Network):
    """The fabric for the cooperative backend: no locks, exact blocking.

    Because the scheduler guarantees a single runner, ``post``/``collect``
    touch the channel dictionaries directly — no mutex, no condition
    variable, no ``notify_all`` storm.  Blocking is a scheduler yield;
    waking is targeted at the one rank waiting on the posted channel.
    Matching, FIFO, statistics, and timing rules are all inherited, so the
    two backends cannot drift apart semantically.
    """

    def __init__(self, nprocs: int, machine: MachineProfile,
                 metrics: Optional[MetricsRegistry] = None,
                 wire: str = "bytes", *,
                 scheduler: CoopScheduler) -> None:
        super().__init__(nprocs, machine, metrics=metrics, wire=wire)
        if scheduler.nprocs != nprocs:
            raise ValueError(
                f"scheduler is sized for {scheduler.nprocs} ranks, "
                f"network for {nprocs}"
            )
        self._scheduler = scheduler

    def register_rank(self, rank: int, comm: "Communicator") -> None:
        self._scheduler.bind_clock(rank, comm)

    def post(self, env: Envelope,
             phase: Optional[str] = None) -> "Optional[list]":
        self._check_open()
        if self.injector is None:
            key = (env.src, env.dst, env.tag)
            self._deposit(key, env)
            self._scheduler.notify_key(key)
            return None
        envs, records = self._inject(env, phase)
        for e in envs:
            self._deposit((e.src, e.dst, e.tag), e)
            self._scheduler.notify_key((e.src, e.dst, e.tag))
        return records

    def collect(self, src: int, dst: int, tag: int,
                host_timeout: Optional[float] = None) -> Envelope:
        # ``host_timeout`` is deliberately ignored: wall-clock receive
        # timeouts exist to approximate deadlock detection under preemptive
        # threads; here a stuck receive is detected *exactly* by the
        # scheduler.  (Simulated-time deadlines — reliability RTOs, crash
        # times — are the communicator's job on both backends; see
        # ``Network.collect`` for the full host-vs-simulated split.)
        key = (src, dst, tag)
        while True:
            self._check_open()
            env = self._take(key)
            if env is not None:
                return env
            if src in self._dead:
                return Envelope(src, dst, tag, b"",
                                depart=self._dead[src], nbytes=0,
                                mark="dead")
            self._scheduler.block_current(key)

    def flush_sender(self, rank: int) -> None:
        if self.injector is None:
            return
        env = self.injector.flush(rank)
        if env is not None:
            key = (env.src, env.dst, env.tag)
            self._deposit(key, env)
            self._scheduler.notify_key(key)

    def mark_dead(self, rank: int, clock: float) -> None:
        self._dead.setdefault(rank, clock)
        self._scheduler.wake_all_blocked()

    @property
    def dead_ranks(self) -> Dict[int, float]:
        return dict(self._dead)

    def abort(self, failed_rank: int, exc: BaseException, *,
              clock: Optional[float] = None,
              phase: Optional[str] = None,
              step: Optional[int] = None) -> None:
        if self._aborted is None:
            self._aborted = RankFailedError(
                failed_rank, exc, clock=clock, phase=phase, step=step)
        self._scheduler.wake_all_blocked()

    def shutdown(self) -> None:
        self._shutdown = True
        self._scheduler.wake_all_blocked()

"""Analytic communication schedules.

For every algorithm in the library, :func:`uniform_schedule` /
:func:`nonuniform_schedule` compute — *without executing anything* — the
exact sequence of wire messages each rank will send: destination, size,
and kind (data / metadata / header), in program order.

Three uses:

1. **Cross-validation** — integration tests assert the schedules equal
   the functional simulator's traced message sequence message-for-message,
   which pins the documented communication structure of every algorithm
   (and is the foundation the analytic timing engine's byte math rests on).
2. **Volume accounting** — :func:`schedule_volume` gives per-algorithm
   totals (the ``log2(P)/2 ×`` volume factor the paper reasons about)
   without running a simulation.
3. **Documentation** — the schedule *is* the algorithm's communication
   pattern, in executable form.

:func:`fabric_schedule` is the whole-fabric form of the same information:
per communication step, flat ``(src, dst, nbytes, tag)`` arrays covering
every rank at once — the plug-in representation the vectorized tensor
backend consumes, and the only form that covers ``grouped`` (whose leader
aggregation has no natural single-rank schedule).
"""

from .schedules import (
    ExchangeStep,
    Message,
    fabric_schedule,
    fabric_volume,
    nonuniform_schedule,
    schedule_volume,
    uniform_schedule,
)

__all__ = ["Message", "uniform_schedule", "nonuniform_schedule",
           "schedule_volume", "ExchangeStep", "fabric_schedule",
           "fabric_volume"]

"""Per-algorithm wire-message schedules (see package docstring).

A schedule lists, for one rank, every *user-level* message the algorithm
sends (internal collective traffic — the allreduce inside padded and
two-phase Bruck — is excluded; traces filter it by tag the same way).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

import numpy as np

from ..core.common import bruck_substeps, num_steps, send_block_distances

__all__ = ["Message", "uniform_schedule", "nonuniform_schedule",
           "schedule_volume", "ExchangeStep", "fabric_schedule",
           "fabric_volume"]

# Schedules describe the flat (ppn = 1) machine, where the node-aware
# locality kernels delegate verbatim to their flat counterparts — so the
# aliases are exact.  Hierarchical (ppn > 1) traffic has no single
# machine-independent schedule at this layer.
_FLAT_EQUIVALENT = {
    "locality_padded_bruck": "padded_bruck",
    "locality_two_phase_bruck": "two_phase_bruck",
}


@dataclass(frozen=True)
class Message:
    """One wire message in program order on the sending rank."""

    step: int       # Bruck step index; -1 for single-phase algorithms
    dst: int
    nbytes: int
    kind: str       # "data" | "meta" | "header"


# ----------------------------------------------------------------------
# uniform algorithms
# ----------------------------------------------------------------------

def _check_radix(algorithm: str, kind: str, radix: int) -> None:
    """Reject ``radix != 2`` for algorithms whose kernels would too."""
    if radix == 2:
        return
    from ..core.registry import get_algorithm

    if not get_algorithm(algorithm, kind).supports_radix:
        raise ValueError(
            f"algorithm {algorithm!r} does not support radix {radix}")


def uniform_schedule(algorithm: str, rank: int, nprocs: int,
                     block_nbytes: int, *, radix: int = 2) -> List[Message]:
    """Messages rank ``rank`` sends in a uniform all-to-all of ``P``
    blocks of ``block_nbytes`` bytes."""
    if nprocs <= 0:
        raise ValueError(f"nprocs must be positive, got {nprocs}")
    _check_radix(algorithm, "uniform", radix)
    n = int(block_nbytes)
    if n == 0:
        return []
    out: List[Message] = []
    if algorithm in ("spread_out", "vendor"):
        for off in range(1, nprocs):
            out.append(Message(-1, (rank + off) % nprocs, n, "data"))
        return out
    if algorithm in ("basic_bruck", "basic_bruck_dt"):
        direction = +1
    elif algorithm in ("modified_bruck", "modified_bruck_dt",
                       "zero_copy_bruck_dt", "zero_rotation_bruck"):
        direction = -1
    else:
        raise KeyError(f"unknown uniform algorithm {algorithm!r}")
    for sub in bruck_substeps(nprocs, radix):
        dst = (rank + direction * sub.jump) % nprocs
        out.append(Message(sub.step, dst, len(sub.distances) * n, "data"))
    return out


# ----------------------------------------------------------------------
# non-uniform algorithms
# ----------------------------------------------------------------------

def _two_phase_bytes_out(rank: int, sizes: np.ndarray, k: int,
                         dist, radix: int = 2) -> int:
    """Bytes rank ``rank`` sends in step ``k`` of two-phase Bruck.

    Modified-Bruck orientation: the block at working slot ``(i + rank)``
    originated at source ``s = rank + (i mod r^k)`` and is destined for
    ``d = s - i`` (see repro.timing.nonuniform for the derivation).
    """
    p = sizes.shape[0]
    base = radix ** k
    total = 0
    for i in dist:
        s = (rank + i % base) % p
        d = (s - i) % p
        total += int(sizes[s, d])
    return total


def _sloav_bytes_out(rank: int, sizes: np.ndarray, k: int,
                     dist: List[int]) -> int:
    """Bytes rank ``rank`` sends in step ``k`` of SLOAV.

    Basic-Bruck orientation: the block at slot ``i`` originated at
    ``s = rank - (i mod 2^k)`` and is destined for ``d = s + i``.
    """
    p = sizes.shape[0]
    total = 0
    for i in dist:
        s = (rank - (i & ((1 << k) - 1))) % p
        d = (s + i) % p
        total += int(sizes[s, d])
    return total


def nonuniform_schedule(algorithm: str, rank: int,
                        sizes: np.ndarray, *,
                        radix: int = 2) -> List[Message]:
    """Messages rank ``rank`` sends for the given ``P × P`` size matrix."""
    _check_radix(algorithm, "nonuniform", radix)
    algorithm = _FLAT_EQUIVALENT.get(algorithm, algorithm)
    p = sizes.shape[0]
    if sizes.shape != (p, p):
        raise ValueError(f"sizes must be square, got {sizes.shape}")
    out: List[Message] = []

    if algorithm in ("spread_out", "vendor"):
        for off in range(1, p):
            dst = (rank + off) % p
            out.append(Message(-1, dst, int(sizes[rank, dst]), "data"))
        return out

    max_n = int(sizes.max(initial=0))
    if max_n == 0:
        return []

    if algorithm == "padded_bruck":
        for sub in bruck_substeps(p, radix):
            out.append(Message(sub.step, (rank - sub.jump) % p,
                               len(sub.distances) * max_n, "data"))
        return out

    if algorithm == "padded_alltoall":
        for off in range(1, p):
            out.append(Message(-1, (rank + off) % p, max_n, "data"))
        return out

    if algorithm == "two_phase_bruck":
        for sub in bruck_substeps(p, radix):
            dist = sub.distances
            dst = (rank - sub.jump) % p
            out.append(Message(sub.step, dst, 4 * len(dist), "meta"))
            out.append(Message(sub.step, dst,
                               _two_phase_bytes_out(rank, sizes, sub.step,
                                                    dist, radix),
                               "data"))
        return out

    if algorithm == "sloav":
        for k in range(num_steps(p)):
            dist = send_block_distances(k, p)
            if not dist:
                continue
            dst = (rank + (1 << k)) % p
            data = _sloav_bytes_out(rank, sizes, k, dist)
            out.append(Message(k, dst, 4, "header"))
            out.append(Message(k, dst, 4 * len(dist) + data, "data"))
        return out

    raise KeyError(f"unknown non-uniform algorithm {algorithm!r}")


# ----------------------------------------------------------------------
# whole-fabric exchange schedules (the tensor backend's plug-in form)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ExchangeStep:
    """One communication step of the whole fabric as flat arrays.

    All four arrays have one entry per wire message posted in this step:
    ``src[i]`` sends ``nbytes[i]`` bytes to ``dst[i]`` on channel
    ``tag[i]``.  This is the per-step array form the vectorized tensor
    backend consumes (:mod:`repro.simmpi.tensor`): within a step every
    message is independent; steps are ordered.
    """

    label: str              # e.g. "bruck_step_3", "leader_counts"
    src: np.ndarray         # (M,) int64 sending ranks
    dst: np.ndarray         # (M,) int64 receiving ranks
    nbytes: np.ndarray      # (M,) int64 payload bytes
    tag: np.ndarray         # (M,) int64 channel tags

    @property
    def messages(self) -> int:
        return len(self.src)

    @property
    def total_bytes(self) -> int:
        return int(self.nbytes.sum())


def _step(label: str, src, dst, nbytes, tag) -> ExchangeStep:
    src = np.asarray(src, dtype=np.int64)
    make = (lambda v: np.broadcast_to(
        np.asarray(v, dtype=np.int64), src.shape).copy())
    return ExchangeStep(label, src, make(dst), make(nbytes), make(tag))


def _shift_steps(label: str, p: int, direction: int, per_step_bytes,
                 tag_base: int, radix: int = 2) -> List[ExchangeStep]:
    """The Bruck family: at substep ``(k, z)`` every rank exchanges with
    its partner at distance ``direction * z * r^k``."""
    ranks = np.arange(p, dtype=np.int64)
    out: List[ExchangeStep] = []
    for sub in bruck_substeps(p, radix):
        nbytes = per_step_bytes(sub.step, len(sub.distances))
        out.append(_step(f"{label}_{sub.index}", ranks,
                         (ranks + direction * sub.jump) % p,
                         nbytes, tag_base + sub.index))
    return out


def _spread_steps(p: int, sizes: Optional[np.ndarray], const: int,
                  tag: int) -> List[ExchangeStep]:
    """Spread-out: one step, every ordered pair, a single shared tag."""
    ranks = np.arange(p, dtype=np.int64)
    offs = np.arange(1, p, dtype=np.int64)
    src = np.repeat(ranks, p - 1)
    dst = ((ranks[:, None] + offs[None, :]) % p).ravel()
    if sizes is None:
        nbytes = np.full(src.shape, const, dtype=np.int64)
    else:
        nbytes = sizes[src, dst]
    return [_step("spread_out", src, dst, nbytes, tag)]


def _bruck_route(p: int, k: int, dist,
                 orientation: int, radix: int = 2) -> np.ndarray:
    """(origin, destination) source-matrix indices of each in-flight block.

    For each rank ``r`` (axis 0) and block distance ``dist[a]`` (axis 1)
    returns the ``sizes[s, d]`` index pair of the block rank ``r``
    forwards at step ``k``.  ``orientation=+1`` is basic-Bruck (SLOAV),
    ``-1`` modified-Bruck (two-phase); ``radix`` sets the digit base
    (``low = dist mod r^k``).
    """
    ranks = np.arange(p, dtype=np.int64)[:, None]
    d_arr = np.asarray(dist, dtype=np.int64)[None, :]
    low = d_arr % radix ** k
    if orientation > 0:
        s = (ranks - low) % p
        dest = (s + d_arr) % p
    else:
        s = (ranks + low) % p
        dest = (s - d_arr) % p
    return s, dest


def fabric_schedule(algorithm: str, kind: str, nprocs: int, *,
                    block_nbytes: Optional[int] = None,
                    sizes: Optional[np.ndarray] = None,
                    group_size: int = 8,
                    tag_base: int = 0,
                    radix: int = 2) -> List[ExchangeStep]:
    """The whole fabric's data-plane exchange schedule, step by step.

    Covers every algorithm registered in :mod:`repro.core.registry` —
    including ``grouped``, whose leader aggregation only has a natural
    schedule at fabric granularity.  Uniform algorithms take
    ``block_nbytes``; non-uniform take the ``(P, P)`` byte matrix
    ``sizes``.  Like the per-rank schedules, internal *control* traffic
    (the allreduce inside padded/two-phase, SLOAV's metadata headers
    excepted — those ride the data plane) is excluded; ``vendor`` tags
    are reported as the builtin collective would allocate them on an
    otherwise-quiet communicator.
    """
    _check_radix(algorithm, kind, radix)
    algorithm = _FLAT_EQUIVALENT.get(algorithm, algorithm)
    p = int(nprocs)
    if p <= 0:
        raise ValueError(f"nprocs must be positive, got {p}")
    ranks = np.arange(p, dtype=np.int64)
    # mirrors communicator.MAX_USER_TAG without importing the simulator
    coll_tag = 1 << 20

    if kind == "uniform":
        if block_nbytes is None:
            raise ValueError("uniform schedules require block_nbytes")
        n = int(block_nbytes)
        if algorithm in ("spread_out", "vendor"):
            if n == 0 and algorithm == "spread_out":
                return []
            tag = coll_tag if algorithm == "vendor" else tag_base
            return _spread_steps(p, None, n, tag)
        if n == 0:
            return []
        if algorithm in ("basic_bruck", "basic_bruck_dt"):
            direction = +1
        elif algorithm in ("modified_bruck", "modified_bruck_dt",
                           "zero_copy_bruck_dt", "zero_rotation_bruck"):
            direction = -1
        else:
            raise KeyError(f"unknown uniform algorithm {algorithm!r}")
        return _shift_steps("bruck_step", p, direction,
                            lambda k, m: m * n, tag_base, radix)

    if kind != "nonuniform":
        raise KeyError(f"unknown algorithm kind {kind!r}")
    if sizes is None:
        raise ValueError("nonuniform schedules require sizes")
    sizes = np.asarray(sizes, dtype=np.int64)
    if sizes.shape != (p, p):
        raise ValueError(
            f"sizes must have shape ({p}, {p}), got {sizes.shape}")

    if algorithm in ("spread_out", "vendor"):
        tag = coll_tag if algorithm == "vendor" else tag_base
        return _spread_steps(p, sizes, 0, tag)

    max_n = int(sizes.max(initial=0))

    if algorithm == "padded_bruck":
        if max_n == 0:
            return []
        return _shift_steps("bruck_step", p, -1,
                            lambda k, m: m * max_n, tag_base, radix)

    if algorithm == "padded_alltoall":
        if max_n == 0:
            return []
        # allreduce consumes the first collective tag block before the
        # builtin alltoall allocates its own
        return _spread_steps(p, None, max_n,
                             coll_tag + (8 if p > 1 else 0))

    if algorithm == "two_phase_bruck":
        if max_n == 0:
            return []
        out: List[ExchangeStep] = []
        for sub in bruck_substeps(p, radix):
            dist = sub.distances
            s, d = _bruck_route(p, sub.step, dist, -1, radix)
            data = sizes[s, d].sum(axis=1)
            dst = (ranks - sub.jump) % p
            out.append(_step(f"meta_{sub.index}", ranks, dst,
                             4 * len(dist), tag_base + 2 * sub.index))
            out.append(_step(f"data_{sub.index}", ranks, dst, data,
                             tag_base + 2 * sub.index + 1))
        return out

    if algorithm == "sloav":
        if max_n == 0:
            pass  # SLOAV still runs its exchange rounds on empty input
        out = []
        for k in range(num_steps(p)):
            dist = send_block_distances(k, p)
            if not dist:
                continue
            s, d = _bruck_route(p, k, dist, +1)
            data = sizes[s, d].sum(axis=1)
            dst = (ranks + (1 << k)) % p
            out.append(_step(f"header_{k}", ranks, dst, 4,
                             tag_base + 2 * k))
            out.append(_step(f"combined_{k}", ranks, dst,
                             4 * len(dist) + data, tag_base + 2 * k + 1))
        return out

    if algorithm == "grouped":
        g = min(int(group_size), p)
        n_groups = (p + g - 1) // g
        lead = (ranks // g) * g
        leads = np.arange(n_groups, dtype=np.int64) * g
        gsize = np.minimum(leads + g, p) - leads
        members = ranks[ranks != lead]
        row_sum = sizes.sum(axis=1)
        col_sum = sizes.sum(axis=0)
        out = []
        if members.size:
            out.append(_step("gather_counts", members, lead[members],
                             8 * p, tag_base + 0))
            out.append(_step("gather_data", members, lead[members],
                             row_sum[members], tag_base + 1))
        if n_groups > 1:
            blob = np.add.reduceat(
                np.add.reduceat(sizes, leads, axis=0), leads, axis=1)
            gi, og = np.nonzero(~np.eye(n_groups, dtype=bool))
            out.append(_step("leader_counts", leads[gi], leads[og],
                             8 * gsize[gi] * gsize[og], tag_base + 2))
            out.append(_step("leader_blobs", leads[gi], leads[og],
                             blob[gi, og], tag_base + 3))
        if members.size:
            out.append(_step("scatter_data", lead[members], members,
                             col_sum[members], tag_base + 4))
        return out

    raise KeyError(f"unknown non-uniform algorithm {algorithm!r}")


def fabric_volume(steps: List[ExchangeStep]) -> Dict[str, int]:
    """Aggregate a fabric schedule into message and byte totals."""
    return {
        "steps": len(steps),
        "messages": sum(s.messages for s in steps),
        "bytes": sum(s.total_bytes for s in steps),
    }


def schedule_volume(schedule: List[Message]) -> Dict[str, int]:
    """Aggregate a schedule: total bytes and message count per kind."""
    out: Dict[str, int] = {"messages": len(schedule), "bytes": 0}
    for msg in schedule:
        out["bytes"] += msg.nbytes
        out[f"{msg.kind}_bytes"] = out.get(f"{msg.kind}_bytes", 0) \
            + msg.nbytes
    return out

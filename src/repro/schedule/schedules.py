"""Per-algorithm wire-message schedules (see package docstring).

A schedule lists, for one rank, every *user-level* message the algorithm
sends (internal collective traffic — the allreduce inside padded and
two-phase Bruck — is excluded; traces filter it by tag the same way).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..core.common import num_steps, send_block_distances

__all__ = ["Message", "uniform_schedule", "nonuniform_schedule",
           "schedule_volume"]


@dataclass(frozen=True)
class Message:
    """One wire message in program order on the sending rank."""

    step: int       # Bruck step index; -1 for single-phase algorithms
    dst: int
    nbytes: int
    kind: str       # "data" | "meta" | "header"


# ----------------------------------------------------------------------
# uniform algorithms
# ----------------------------------------------------------------------

def uniform_schedule(algorithm: str, rank: int, nprocs: int,
                     block_nbytes: int) -> List[Message]:
    """Messages rank ``rank`` sends in a uniform all-to-all of ``P``
    blocks of ``block_nbytes`` bytes."""
    if nprocs <= 0:
        raise ValueError(f"nprocs must be positive, got {nprocs}")
    n = int(block_nbytes)
    if n == 0:
        return []
    out: List[Message] = []
    if algorithm in ("spread_out", "vendor"):
        for off in range(1, nprocs):
            out.append(Message(-1, (rank + off) % nprocs, n, "data"))
        return out
    if algorithm in ("basic_bruck", "basic_bruck_dt"):
        direction = +1
    elif algorithm in ("modified_bruck", "modified_bruck_dt",
                       "zero_copy_bruck_dt", "zero_rotation_bruck"):
        direction = -1
    else:
        raise KeyError(f"unknown uniform algorithm {algorithm!r}")
    for k in range(num_steps(nprocs)):
        m = len(send_block_distances(k, nprocs))
        if m:
            dst = (rank + direction * (1 << k)) % nprocs
            out.append(Message(k, dst, m * n, "data"))
    return out


# ----------------------------------------------------------------------
# non-uniform algorithms
# ----------------------------------------------------------------------

def _two_phase_bytes_out(rank: int, sizes: np.ndarray, k: int,
                         dist: List[int]) -> int:
    """Bytes rank ``rank`` sends in step ``k`` of two-phase Bruck.

    Modified-Bruck orientation: the block at working slot ``(i + rank)``
    originated at source ``s = rank + (i mod 2^k)`` and is destined for
    ``d = s - i`` (see repro.timing.nonuniform for the derivation).
    """
    p = sizes.shape[0]
    total = 0
    for i in dist:
        s = (rank + (i & ((1 << k) - 1))) % p
        d = (s - i) % p
        total += int(sizes[s, d])
    return total


def _sloav_bytes_out(rank: int, sizes: np.ndarray, k: int,
                     dist: List[int]) -> int:
    """Bytes rank ``rank`` sends in step ``k`` of SLOAV.

    Basic-Bruck orientation: the block at slot ``i`` originated at
    ``s = rank - (i mod 2^k)`` and is destined for ``d = s + i``.
    """
    p = sizes.shape[0]
    total = 0
    for i in dist:
        s = (rank - (i & ((1 << k) - 1))) % p
        d = (s + i) % p
        total += int(sizes[s, d])
    return total


def nonuniform_schedule(algorithm: str, rank: int,
                        sizes: np.ndarray) -> List[Message]:
    """Messages rank ``rank`` sends for the given ``P × P`` size matrix."""
    p = sizes.shape[0]
    if sizes.shape != (p, p):
        raise ValueError(f"sizes must be square, got {sizes.shape}")
    out: List[Message] = []

    if algorithm in ("spread_out", "vendor"):
        for off in range(1, p):
            dst = (rank + off) % p
            out.append(Message(-1, dst, int(sizes[rank, dst]), "data"))
        return out

    max_n = int(sizes.max(initial=0))
    if max_n == 0:
        return []

    if algorithm == "padded_bruck":
        for k in range(num_steps(p)):
            m = len(send_block_distances(k, p))
            if m:
                out.append(Message(k, (rank - (1 << k)) % p, m * max_n,
                                   "data"))
        return out

    if algorithm == "padded_alltoall":
        for off in range(1, p):
            out.append(Message(-1, (rank + off) % p, max_n, "data"))
        return out

    if algorithm == "two_phase_bruck":
        for k in range(num_steps(p)):
            dist = send_block_distances(k, p)
            if not dist:
                continue
            dst = (rank - (1 << k)) % p
            out.append(Message(k, dst, 4 * len(dist), "meta"))
            out.append(Message(k, dst,
                               _two_phase_bytes_out(rank, sizes, k, dist),
                               "data"))
        return out

    if algorithm == "sloav":
        for k in range(num_steps(p)):
            dist = send_block_distances(k, p)
            if not dist:
                continue
            dst = (rank + (1 << k)) % p
            data = _sloav_bytes_out(rank, sizes, k, dist)
            out.append(Message(k, dst, 4, "header"))
            out.append(Message(k, dst, 4 * len(dist) + data, "data"))
        return out

    raise KeyError(f"unknown non-uniform algorithm {algorithm!r}")


def schedule_volume(schedule: List[Message]) -> Dict[str, int]:
    """Aggregate a schedule: total bytes and message count per kind."""
    out: Dict[str, int] = {"messages": len(schedule), "bytes": 0}
    for msg in schedule:
        out["bytes"] += msg.nbytes
        out[f"{msg.kind}_bytes"] = out.get(f"{msg.kind}_bytes", 0) \
            + msg.nbytes
    return out

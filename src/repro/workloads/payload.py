"""Payload construction and verification for alltoallv runs.

The benchmarks need (a) buffers laid out per an arbitrary size matrix and
(b) a cheap way to *verify* that an exchange delivered exactly the right
bytes.  We fill each block with a pattern derived from ``(source, dest)``
so any routing error — wrong block, wrong offset, truncation — is caught by
a byte comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = ["VArgs", "build_vargs", "expected_recv", "first_corrupted_block",
           "verify_recv"]


def _pattern(src: int, dst: int) -> int:
    """The fill byte for the block ``src -> dst`` (stable, spread out)."""
    return (src * 131 + dst * 29 + 7) % 256


@dataclass
class VArgs:
    """Everything one rank passes to an alltoallv call."""

    sendbuf: np.ndarray
    sendcounts: np.ndarray
    sdispls: np.ndarray
    recvbuf: np.ndarray
    recvcounts: np.ndarray
    rdispls: np.ndarray

    def as_tuple(self) -> Tuple[np.ndarray, ...]:
        return (self.sendbuf, self.sendcounts, self.sdispls,
                self.recvbuf, self.recvcounts, self.rdispls)


def _displs_of(counts: np.ndarray) -> np.ndarray:
    d = np.zeros(len(counts), dtype=np.int64)
    if len(counts) > 1:
        np.cumsum(counts[:-1], out=d[1:])
    return d


def build_vargs(rank: int, sizes: np.ndarray, *, fill: bool = True) -> VArgs:
    """Build one rank's alltoallv arguments from the P×P size matrix.

    ``sizes[s, d]`` is the byte count rank ``s`` sends to rank ``d``; the
    send buffer is filled with the per-pair pattern byte.  Pass
    ``fill=False`` for phantom-wire timing runs: buffers are allocated at
    the right sizes but never written (untouched virtual pages), keeping
    large-P sweeps memory-flat.
    """
    p = sizes.shape[0]
    if sizes.shape != (p, p):
        raise ValueError(f"sizes must be square, got {sizes.shape}")
    sendcounts = sizes[rank, :].astype(np.int64)
    recvcounts = sizes[:, rank].astype(np.int64)
    sdispls = _displs_of(sendcounts)
    rdispls = _displs_of(recvcounts)
    sendbuf = np.empty(int(sendcounts.sum()), dtype=np.uint8)
    if fill:
        for d in range(p):
            c = int(sendcounts[d])
            if c:
                sendbuf[sdispls[d]:sdispls[d] + c] = _pattern(rank, d)
        recvbuf = np.zeros(int(recvcounts.sum()), dtype=np.uint8)
    else:
        recvbuf = np.empty(int(recvcounts.sum()), dtype=np.uint8)
    return VArgs(sendbuf, sendcounts, sdispls, recvbuf, recvcounts, rdispls)


def expected_recv(rank: int, sizes: np.ndarray) -> np.ndarray:
    """The byte-exact receive buffer rank ``rank`` must end up with."""
    p = sizes.shape[0]
    recvcounts = sizes[:, rank].astype(np.int64)
    rdispls = _displs_of(recvcounts)
    out = np.zeros(int(recvcounts.sum()), dtype=np.uint8)
    for s in range(p):
        c = int(recvcounts[s])
        if c:
            out[rdispls[s]:rdispls[s] + c] = _pattern(s, rank)
    return out


def first_corrupted_block(rank: int, sizes: np.ndarray,
                          recvbuf: np.ndarray) -> Optional[Tuple[int, int, str]]:
    """Locate the first wrong byte in a receive buffer, or ``None``.

    Returns ``(source, offset, detail)`` naming the sending rank, the byte
    offset of the first mismatch *within that source's block*, and a short
    got/want excerpt — the shared vocabulary for byte-verification failure
    messages (used by :func:`verify_recv` and the chaos harness), so a
    corruption escape is localized instead of reported as a bare mismatch.
    """
    expect = expected_recv(rank, sizes)
    if recvbuf.shape == expect.shape and np.array_equal(recvbuf, expect):
        return None
    p = sizes.shape[0]
    recvcounts = sizes[:, rank].astype(np.int64)
    rdispls = _displs_of(recvcounts)
    for s in range(p):
        c = int(recvcounts[s])
        got = np.asarray(recvbuf[rdispls[s]:rdispls[s] + c])
        want = expect[rdispls[s]:rdispls[s] + c]
        if got.shape != want.shape:
            return (s, int(got.size),
                    f"block truncated to {got.size} of {c} bytes")
        if not np.array_equal(got, want):
            offset = int(np.flatnonzero(got != want)[0])
            lo = max(0, offset - 2)
            detail = (f"got={got[lo:offset + 6].tolist()} "
                      f"want={want[lo:offset + 6].tolist()}")
            return (s, offset, detail)
    return (p, 0, f"buffer length {recvbuf.size} != expected {expect.size}")


def verify_recv(rank: int, sizes: np.ndarray, recvbuf: np.ndarray) -> None:
    """Raise ``AssertionError`` naming the first corrupted block, if any."""
    found = first_corrupted_block(rank, sizes, recvbuf)
    if found is None:
        return
    source, offset, detail = found
    if source >= sizes.shape[0]:
        raise AssertionError(f"rank {rank}: receive buffer length mismatch "
                             f"({detail})")
    raise AssertionError(
        f"rank {rank}: block from source {source} corrupted at "
        f"offset {offset} ({detail})"
    )

"""Workload generators: block-size distributions and payload builders."""

from .distributions import (
    BlockSizeDistribution,
    NormalBlocks,
    PowerLawBlocks,
    UniformBlocks,
    WindowedUniformBlocks,
    block_size_matrix,
    distribution_by_name,
)
from .payload import VArgs, build_vargs, expected_recv, verify_recv

__all__ = [
    "BlockSizeDistribution",
    "UniformBlocks",
    "WindowedUniformBlocks",
    "NormalBlocks",
    "PowerLawBlocks",
    "block_size_matrix",
    "distribution_by_name",
    "VArgs",
    "build_vargs",
    "expected_recv",
    "verify_recv",
]

"""Workload generators: block-size distributions, payload builders, and
app-level Byzantine broadcast programs."""

from .byzantine import (
    BYZANTINE_STRATEGIES,
    FORGED_VALUE,
    BroadcastOutcome,
    bracha_broadcast,
    dolev_broadcast,
    get_byzantine_workload,
    list_byzantine_workloads,
    register_byzantine_workload,
)
from .distributions import (
    BlockSizeDistribution,
    NormalBlocks,
    PowerLawBlocks,
    UniformBlocks,
    WindowedUniformBlocks,
    block_size_matrix,
    distribution_by_name,
)
from .payload import (VArgs, build_vargs, expected_recv,
                      first_corrupted_block, verify_recv)

__all__ = [
    "BYZANTINE_STRATEGIES",
    "FORGED_VALUE",
    "BroadcastOutcome",
    "bracha_broadcast",
    "dolev_broadcast",
    "get_byzantine_workload",
    "list_byzantine_workloads",
    "register_byzantine_workload",
    "BlockSizeDistribution",
    "UniformBlocks",
    "WindowedUniformBlocks",
    "NormalBlocks",
    "PowerLawBlocks",
    "block_size_matrix",
    "distribution_by_name",
    "VArgs",
    "build_vargs",
    "expected_recv",
    "first_corrupted_block",
    "verify_recv",
]

"""Block-size distributions for the paper's microbenchmarks (§4.1, §4.3).

Every rank in a non-uniform all-to-all owns ``P`` data blocks whose sizes
are drawn from a distribution parameterized by the *maximum block size*
``N``:

* :class:`UniformBlocks` — the paper's default: continuous uniform on
  ``[0, N]`` (average ``N/2``), discretized to whole bytes.
* :class:`WindowedUniformBlocks` — the sensitivity-analysis variant
  (§4.2): uniform on ``[(100-r)% of N, N]``; ``r = 100`` recovers
  :class:`UniformBlocks`.
* :class:`NormalBlocks` — Gaussian windowed to ``±3σ`` (§4.3): mean
  ``N/2``, ``σ = N/6``, clipped to ``[0, N]``.
* :class:`PowerLawBlocks` — the paper's "power-law (exponential)"
  distributions with exponent bases 0.99 / 0.999 (§4.3): probability
  ``∝ base**x`` on ``x ∈ [0, N]``, so small blocks dominate and the mean
  sits far below ``N/2``.

Each distribution reports exact ``mean``/``variance`` of its discretized
form; :mod:`repro.timing` uses them for the CLT approximation of per-step
byte sums at very large ``P`` (documented in DESIGN.md), and tests check
the sampled moments against them.

All sampling is deterministic given a seed.  :func:`block_size_matrix`
materializes the full ``P × P`` size matrix (entry ``[s, d]`` = bytes rank
``s`` sends to rank ``d``) for functional runs; for analytic runs at 32K
ranks use the distributions' moments instead — the matrix would need
gigabytes.
"""

from __future__ import annotations

import math
from typing import Dict

import numpy as np

__all__ = [
    "BlockSizeDistribution",
    "UniformBlocks",
    "WindowedUniformBlocks",
    "NormalBlocks",
    "PowerLawBlocks",
    "block_size_matrix",
    "distribution_by_name",
]


class BlockSizeDistribution:
    """Base class: a distribution over integer block sizes in ``[0, N]``."""

    #: Human-readable identifier used by benchmarks and reports.
    name: str = "abstract"

    def __init__(self, max_block: int) -> None:
        if max_block < 0:
            raise ValueError(f"max_block must be non-negative, got {max_block}")
        self.max_block = int(max_block)

    # -- interface ------------------------------------------------------
    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` block sizes as an int64 array."""
        raise NotImplementedError

    @property
    def mean(self) -> float:
        raise NotImplementedError

    @property
    def variance(self) -> float:
        raise NotImplementedError

    # -- common helpers --------------------------------------------------
    def describe(self) -> str:
        return (f"{self.name}(N={self.max_block}, mean={self.mean:.1f}, "
                f"std={math.sqrt(self.variance):.1f})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()


class UniformBlocks(BlockSizeDistribution):
    """Discrete uniform on ``{0, 1, ..., N}`` — the paper's §4.1 workload."""

    name = "uniform"

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.integers(0, self.max_block + 1, size=size, dtype=np.int64)

    @property
    def mean(self) -> float:
        return self.max_block / 2.0

    @property
    def variance(self) -> float:
        span = self.max_block + 1
        return (span * span - 1) / 12.0


class WindowedUniformBlocks(BlockSizeDistribution):
    """Uniform on ``{floor((100-r)% N), ..., N}`` (§4.2 sensitivity).

    The paper labels configurations ``(100-r)-r``; e.g. ``r = 50`` draws
    sizes from ``[N/2, N]``.  ``r = 100`` is the full-range uniform.
    """

    name = "windowed_uniform"

    def __init__(self, max_block: int, r_percent: float) -> None:
        super().__init__(max_block)
        if not 0 <= r_percent <= 100:
            raise ValueError(f"r_percent must be in [0, 100], got {r_percent}")
        self.r_percent = float(r_percent)
        self.low = int(math.floor(max_block * (100.0 - r_percent) / 100.0))

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.integers(self.low, self.max_block + 1, size=size,
                            dtype=np.int64)

    @property
    def mean(self) -> float:
        return (self.low + self.max_block) / 2.0

    @property
    def variance(self) -> float:
        span = self.max_block - self.low + 1
        return (span * span - 1) / 12.0

    def describe(self) -> str:
        lo_pct = 100.0 - self.r_percent
        return (f"{self.name}(N={self.max_block}, window "
                f"{lo_pct:.0f}-{self.r_percent:.0f}, mean={self.mean:.1f})")


class _TabulatedDistribution(BlockSizeDistribution):
    """Helper base: explicit pmf over {0..N}; exact moments; fast sampling."""

    def __init__(self, max_block: int) -> None:
        super().__init__(max_block)
        pmf = self._build_pmf()
        total = pmf.sum()
        if not np.isfinite(total) or total <= 0:
            raise ValueError(f"degenerate pmf for {self.name} (N={max_block})")
        self._pmf = pmf / total
        self._cdf = np.cumsum(self._pmf)
        support = np.arange(self.max_block + 1, dtype=np.float64)
        self._mean = float((support * self._pmf).sum())
        self._var = float(((support - self._mean) ** 2 * self._pmf).sum())

    def _build_pmf(self) -> np.ndarray:
        raise NotImplementedError

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        u = rng.random(size)
        return np.searchsorted(self._cdf, u, side="right").astype(np.int64)

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        return self._var


class NormalBlocks(_TabulatedDistribution):
    """Gaussian block sizes windowed to ``±3σ`` (§4.3).

    Mean ``N/2`` and ``σ = N/6`` put the whole ``±3σ`` window exactly on
    ``[0, N]``; the residual 0.27% tail mass is clipped into the endpoints,
    matching the paper's description of "a window on this distribution".
    """

    name = "normal"

    def _build_pmf(self) -> np.ndarray:
        n = self.max_block
        if n == 0:
            return np.ones(1)
        mu, sigma = n / 2.0, n / 6.0
        edges = np.arange(-0.5, n + 1.0, 1.0)
        cdf = _normal_cdf((edges - mu) / sigma)
        pmf = np.diff(cdf)
        pmf[0] += cdf[0]            # clip left tail into 0
        pmf[-1] += 1.0 - cdf[-1]    # clip right tail into N
        return pmf


class PowerLawBlocks(_TabulatedDistribution):
    """The paper's "power-law (exponential)" sizes: ``pmf(x) ∝ base**x``.

    ``base = 0.99`` concentrates mass near zero (light total load);
    ``base = 0.999`` spreads further (heavier).  Fig. 10 uses both.
    """

    name = "power_law"

    def __init__(self, max_block: int, base: float = 0.99) -> None:
        if not 0 < base < 1:
            raise ValueError(f"base must be in (0, 1), got {base}")
        self.base = float(base)
        super().__init__(max_block)

    def _build_pmf(self) -> np.ndarray:
        x = np.arange(self.max_block + 1, dtype=np.float64)
        return np.power(self.base, x)

    def describe(self) -> str:
        return (f"{self.name}(N={self.max_block}, base={self.base}, "
                f"mean={self.mean:.1f})")


def _normal_cdf(z: np.ndarray) -> np.ndarray:
    """Standard normal CDF via erf (vectorized, no SciPy dependency)."""
    return 0.5 * (1.0 + _erf_vec(z / math.sqrt(2.0)))


_erf_vec = np.vectorize(math.erf, otypes=[np.float64])


def block_size_matrix(dist: BlockSizeDistribution, nprocs: int,
                      seed: int = 0) -> np.ndarray:
    """Materialize the ``P × P`` block-size matrix ``sizes[src, dst]``.

    Row ``s`` is the ``sendcounts`` of rank ``s``; column ``d`` is the
    ``recvcounts`` of rank ``d``.  Deterministic in ``seed``.
    """
    if nprocs <= 0:
        raise ValueError(f"nprocs must be positive, got {nprocs}")
    rng = np.random.default_rng(seed)
    return dist.sample(rng, nprocs * nprocs).reshape(nprocs, nprocs)


def distribution_by_name(name: str, max_block: int,
                         **kwargs: float) -> BlockSizeDistribution:
    """Factory used by benchmark CLIs: ``uniform``, ``windowed_uniform``,
    ``normal``, ``power_law`` (with optional ``base=`` / ``r_percent=``)."""
    factories: Dict[str, type] = {
        UniformBlocks.name: UniformBlocks,
        WindowedUniformBlocks.name: WindowedUniformBlocks,
        NormalBlocks.name: NormalBlocks,
        PowerLawBlocks.name: PowerLawBlocks,
    }
    try:
        cls = factories[name]
    except KeyError:
        raise KeyError(
            f"unknown distribution {name!r}; known: {sorted(factories)}"
        ) from None
    return cls(max_block, **kwargs)

"""Byzantine-tolerant reliable broadcast workloads (Bracha, Dolev).

The alltoall(v) kernels assume every delivered byte is genuine; these
workloads are the app-level counterpoint — classic reliable-broadcast
protocols that deliver a value *despite* ranks that lie.  They run as
ordinary SPMD programs over the simulator's control plane (the pickled
object transport), so every fault the engine can inject — corrupt, forge,
duplicate, reorder — and every transport tier (none / retry / verify)
composes with them unchanged.

Two protocols, layered the way the literature layers them:

``dolev_broadcast``
    Dolev-style relay over authenticated channels on the complete graph:
    the broadcaster sends directly, every rank relays what it received,
    and a value is delivered once ``f + 1`` distinct one-hop vouchers
    agree on it — more vouchers than there are liars.  Tolerates
    ``f`` Byzantine ranks for ``P >= 2f + 2``.

``bracha_broadcast``
    Bracha reliable broadcast: SEND from the broadcaster, ECHO once a
    rank has the broadcaster's value, READY once ``⌊(P+f)/2⌋ + 1`` echoes
    (or ``f + 1`` readys — the amplification rule) support one value, and
    delivery at ``2f + 1`` readys.  Guarantees agreement + validity for
    ``f < P/3``; for ``f >= ⌈P/3⌉`` liveness may be lost but a forged
    value still cannot gather ``2f + 1`` readys from ``f`` liars, so
    safety holds — the property the adversarial test pins down.

Byzantine ranks are *simulated in-protocol* (they run the same program
with a lying strategy), while the fault engine attacks the transport
underneath; the two adversaries are independent and composable.

Both protocols proceed in deterministic synchronous rounds: each round
every rank sends one (possibly empty) batch of protocol messages to every
peer and receives one batch from every peer, in rank order, so runs are
bit-identical across backends and wire modes.  Rounds are wrapped in
``comm.phase("bracha/round0")``-style phases, so a Perfetto trace shows
the echo/ready waves directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

__all__ = [
    "BYZANTINE_STRATEGIES",
    "FORGED_VALUE",
    "BroadcastOutcome",
    "bracha_broadcast",
    "dolev_broadcast",
    "get_byzantine_workload",
    "list_byzantine_workloads",
    "register_byzantine_workload",
]

#: The payload a lying rank pushes; tests assert it never gets delivered
#: by an honest rank while safety holds.
FORGED_VALUE = "<forged-by-byzantine-rank>"

#: How a Byzantine rank misbehaves: ``"forge"`` floods SEND/ECHO/READY
#: for :data:`FORGED_VALUE` from round one (the strongest attack on
#: safety); ``"equivocate"`` makes a Byzantine *broadcaster* send
#: different values to even and odd ranks (the classic agreement attack)
#: while Byzantine helpers support both; ``"silent"`` sends nothing
#: (crash-equivalent, attacks liveness only).
BYZANTINE_STRATEGIES = ("forge", "equivocate", "silent")


@dataclass
class BroadcastOutcome:
    """One rank's view of a reliable-broadcast run."""

    rank: int
    delivered: Any                      # delivered value, or None
    rounds: int                         # synchronous rounds executed
    byzantine: bool                     # this rank ran a lying strategy
    #: value -> number of distinct ranks seen echoing it (incl. self).
    echo_counts: Dict[Any, int] = field(default_factory=dict)
    #: value -> number of distinct ranks seen READY for it (incl. self).
    ready_counts: Dict[Any, int] = field(default_factory=dict)
    #: Dolev only: value -> number of distinct one-hop vouchers.
    voucher_counts: Dict[Any, int] = field(default_factory=dict)


def _exchange(comm, outbox: Dict[int, List[Tuple[str, Any]]],
              tag: int) -> Dict[int, List[Tuple[str, Any]]]:
    """One synchronous round: send a batch to every peer, then receive a
    batch from every peer, both in ascending rank order.

    Sends are eager (the object transport buffers into the channel), so
    the send loop never blocks on the receive loop and the lockstep
    pattern is deadlock-free on both backends.
    """
    rank, size = comm.rank, comm.size
    for dst in range(size):
        if dst != rank:
            comm.send_obj(outbox.get(dst, []), dst, tag=tag)
    inbox: Dict[int, List[Tuple[str, Any]]] = {}
    for src in range(size):
        if src != rank:
            batch = comm.recv_obj(src, tag=tag)
            inbox[src] = list(batch) if batch else []
    return inbox


def _alt_value(value: Any) -> Any:
    """The second value an equivocating broadcaster pushes."""
    return ("equivocation-twin", value)


def bracha_broadcast(comm, value: Any, *, broadcaster: int = 0, f: int = 1,
                     byzantine: Iterable[int] = (), strategy: str = "forge",
                     rounds: int = 6, tag_base: int = 0) -> BroadcastOutcome:
    """Run Bracha reliable broadcast; returns this rank's outcome.

    ``value`` is the broadcaster's input (ignored on other ranks).
    ``byzantine`` names the lying ranks; every rank must be called with
    the same ``broadcaster`` / ``f`` / ``byzantine`` / ``strategy`` /
    ``rounds``.  Six rounds cover the longest honest chain
    (send → echo → ready → amplify → deliver) with margin.
    """
    if strategy not in BYZANTINE_STRATEGIES:
        raise ValueError(f"strategy must be one of {BYZANTINE_STRATEGIES}, "
                         f"got {strategy!r}")
    rank, size = comm.rank, comm.size
    byz: FrozenSet[int] = frozenset(byzantine)
    echo_threshold = (size + f) // 2 + 1
    ready_amplify = f + 1
    deliver_threshold = 2 * f + 1

    echoes: Dict[Any, Set[int]] = {}
    readys: Dict[Any, Set[int]] = {}
    sent_echo: Optional[Tuple[Any]] = None   # 1-tuple so value None works
    sent_ready: Optional[Tuple[Any]] = None
    delivered: Optional[Tuple[Any]] = None
    pending: List[Tuple[str, Any]] = []

    is_byz = rank in byz
    if rank == broadcaster:
        if is_byz and strategy == "forge":
            pending.append(("send", FORGED_VALUE))
        elif not is_byz:
            pending.append(("send", value))
        # Equivocating broadcasters build per-destination batches below;
        # silent ones send nothing.
        if not is_byz:
            sent_echo = (value,)
            pending.append(("echo", value))
            echoes.setdefault(value, set()).add(rank)

    for r in range(rounds):
        with comm.phase(f"bracha/round{r}"):
            outbox: Dict[int, List[Tuple[str, Any]]] = {}
            if is_byz:
                if strategy == "forge":
                    # Flood the forged value with every message type: the
                    # strongest safety attack f liars can mount.
                    batch = [("send", FORGED_VALUE), ("echo", FORGED_VALUE),
                             ("ready", FORGED_VALUE)]
                    outbox = {d: batch for d in range(size) if d != rank}
                elif strategy == "equivocate":
                    for d in range(size):
                        if d == rank:
                            continue
                        v = value if d % 2 == 0 else _alt_value(value)
                        batch = [("echo", v), ("ready", v)]
                        if r == 0 and rank == broadcaster:
                            batch.insert(0, ("send", v))
                        outbox[d] = batch
                # "silent": empty outbox every round.
            else:
                outbox = {d: list(pending) for d in range(size) if d != rank}
                pending = []
            inbox = _exchange(comm, outbox, tag_base + r)

            if not is_byz:
                for src in range(size):
                    for kind, v in inbox.get(src, []):
                        if kind == "send" and src == broadcaster:
                            # Channels are authenticated: a SEND only
                            # counts from the broadcaster's own channel.
                            if sent_echo is None:
                                sent_echo = (v,)
                                pending.append(("echo", v))
                                echoes.setdefault(v, set()).add(rank)
                        elif kind == "echo":
                            echoes.setdefault(v, set()).add(src)
                        elif kind == "ready":
                            readys.setdefault(v, set()).add(src)
                if sent_ready is None:
                    for v, who in list(echoes.items()):
                        supporters = readys.get(v, set())
                        if (len(who) >= echo_threshold
                                or len(supporters) >= ready_amplify):
                            sent_ready = (v,)
                            pending.append(("ready", v))
                            readys.setdefault(v, set()).add(rank)
                            break
                    else:
                        for v, supporters in list(readys.items()):
                            if len(supporters) >= ready_amplify:
                                sent_ready = (v,)
                                pending.append(("ready", v))
                                supporters.add(rank)
                                break
                if delivered is None:
                    for v, supporters in readys.items():
                        if len(supporters) >= deliver_threshold:
                            delivered = (v,)
                            break

    return BroadcastOutcome(
        rank=rank,
        delivered=delivered[0] if delivered is not None else None,
        rounds=rounds,
        byzantine=is_byz,
        echo_counts={v: len(s) for v, s in echoes.items()},
        ready_counts={v: len(s) for v, s in readys.items()},
    )


def dolev_broadcast(comm, value: Any, *, broadcaster: int = 0, f: int = 1,
                    byzantine: Iterable[int] = (), strategy: str = "forge",
                    tag_base: int = 0) -> BroadcastOutcome:
    """Dolev-style authenticated-channel relay on the complete graph.

    Two rounds: the broadcaster sends directly, then every rank relays
    the copy it received.  A value is delivered once ``f + 1`` distinct
    one-hop vouchers (the direct channel counts as one) support it —
    node-disjoint paths on the complete graph are exactly the distinct
    relays.  Tolerates ``f`` liars for ``P >= 2f + 2``.
    """
    if strategy not in BYZANTINE_STRATEGIES:
        raise ValueError(f"strategy must be one of {BYZANTINE_STRATEGIES}, "
                         f"got {strategy!r}")
    rank, size = comm.rank, comm.size
    byz: FrozenSet[int] = frozenset(byzantine)
    is_byz = rank in byz
    vouchers: Dict[Any, Set[int]] = {}
    got_direct: Optional[Tuple[Any]] = None

    def _lie_for(dst: int) -> Any:
        if strategy == "equivocate":
            return value if dst % 2 == 0 else _alt_value(value)
        return FORGED_VALUE

    # Round 0: the broadcaster's direct sends.
    with comm.phase("dolev/direct"):
        outbox: Dict[int, List[Tuple[str, Any]]] = {}
        if rank == broadcaster:
            if is_byz and strategy == "silent":
                pass
            elif is_byz:
                outbox = {d: [("direct", _lie_for(d))]
                          for d in range(size) if d != rank}
            else:
                outbox = {d: [("direct", value)]
                          for d in range(size) if d != rank}
                got_direct = (value,)
                vouchers.setdefault(value, set()).add(broadcaster)
        inbox = _exchange(comm, outbox, tag_base)
        if not is_byz:
            for kind, v in inbox.get(broadcaster, []):
                if kind == "direct" and got_direct is None:
                    got_direct = (v,)
                    vouchers.setdefault(v, set()).add(broadcaster)

    # Round 1: everyone relays its direct copy over its own channel.
    with comm.phase("dolev/relay"):
        outbox = {}
        if is_byz and strategy != "silent":
            outbox = {d: [("relay", _lie_for(d))]
                      for d in range(size) if d != rank}
        elif not is_byz and got_direct is not None and rank != broadcaster:
            outbox = {d: [("relay", got_direct[0])]
                      for d in range(size) if d != rank}
        inbox = _exchange(comm, outbox, tag_base + 1)
        if not is_byz:
            for src in range(size):
                for kind, v in inbox.get(src, []):
                    if kind == "relay" and src != broadcaster:
                        vouchers.setdefault(v, set()).add(src)

    delivered = None
    if not is_byz:
        for v, who in sorted(vouchers.items(),
                             key=lambda kv: (-len(kv[1]), repr(kv[0]))):
            if len(who) >= f + 1:
                delivered = (v,)
                break

    return BroadcastOutcome(
        rank=rank,
        delivered=delivered[0] if delivered is not None else None,
        rounds=2,
        byzantine=is_byz,
        voucher_counts={v: len(s) for v, s in vouchers.items()},
    )


# ---------------------------------------------------------------------------
# registry of app-level Byzantine workloads (mirrors the algorithm registry)
# ---------------------------------------------------------------------------
_WORKLOADS: Dict[str, Tuple[Callable[..., BroadcastOutcome], str]] = {}


def register_byzantine_workload(name: str, fn: Callable[..., BroadcastOutcome],
                                description: str = "") -> None:
    """Register one Byzantine broadcast program (idempotent per name)."""
    if not name:
        raise ValueError("workload name must be non-empty")
    _WORKLOADS[name] = (fn, description)


def get_byzantine_workload(name: str) -> Callable[..., BroadcastOutcome]:
    """Resolve a registered workload; raises ``KeyError`` naming the
    known workloads on a miss."""
    try:
        return _WORKLOADS[name][0]
    except KeyError:
        known = sorted(_WORKLOADS)
        raise KeyError(f"unknown byzantine workload {name!r}; "
                       f"known: {known}") from None


def list_byzantine_workloads() -> List[str]:
    """Sorted names of every registered Byzantine workload."""
    return sorted(_WORKLOADS)


register_byzantine_workload(
    "bracha", bracha_broadcast,
    "Bracha reliable broadcast: echo/ready thresholds, deliver at 2f+1")
register_byzantine_workload(
    "dolev", dolev_broadcast,
    "Dolev authenticated-channel relay: deliver at f+1 disjoint vouchers")

"""Shared math and validation helpers for all Bruck-family algorithms.

The index arithmetic here is the substance of the paper's Section 2/3: which
blocks move in which communication step, and how slots map to sources and
destinations.  Centralizing it keeps the six uniform variants and the two
non-uniform algorithms from re-deriving (and re-bugging) the same bit
tricks, and lets :mod:`repro.schedule` reuse the identical definitions so
the analytic schedules provably match the functional implementations.

Bruck index conventions used throughout (see DESIGN.md):

* ``num_steps(P) == ceil(log2 P)`` communication steps.
* In step ``k``, the *distance indices* ``i`` with bit ``k`` set move.  For
  the **basic** algorithm a block with distance ``i`` travels from source
  ``s`` to destination ``(s + i) % P``; for the **modified/zero-rotation**
  family it travels to ``(s - i) % P`` and sits at slot
  ``(i + current_rank) % P`` at every hop, so it lands at slot ``s`` on its
  destination with no final rotation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "num_steps",
    "send_block_distances",
    "block_moved_before",
    "rotation_index_array",
    "as_byte_view",
    "checked_counts_displs",
    "validate_uniform_args",
    "total_send_blocks_per_step",
    "validate_radix",
    "radix_num_steps",
    "radix_send_block_distances",
    "radix_block_moved_before",
    "BruckSubstep",
    "bruck_substeps",
    "total_forwarded_blocks",
]


def num_steps(nprocs: int) -> int:
    """Number of Bruck communication steps: ``ceil(log2 P)`` (0 for P=1)."""
    if nprocs <= 0:
        raise ValueError(f"nprocs must be positive, got {nprocs}")
    return (nprocs - 1).bit_length()


def send_block_distances(step: int, nprocs: int) -> List[int]:
    """Distance indices moving in ``step``: all ``i in [1, P)`` with bit
    ``step`` of ``i`` set, ascending.

    Every step moves at most ``(P+1)//2`` blocks; the last step of a
    non-power-of-two ``P`` moves fewer (the paper calls this out
    explicitly).
    """
    if step < 0:
        raise ValueError(f"step must be non-negative, got {step}")
    bit = 1 << step
    return [i for i in range(bit, nprocs) if i & bit]


def block_moved_before(distance: int, step: int) -> bool:
    """Has the block with this distance index already been exchanged in a
    step before ``step``?

    True iff ``distance`` has a set bit below ``step``.  Used by
    zero-rotation Bruck to decide whether a block is drawn from the original
    send buffer or from the working/receive buffer — the functional
    equivalent of two-phase Bruck's explicit ``status`` array.
    """
    return (distance & ((1 << step) - 1)) != 0


def rotation_index_array(rank: int, nprocs: int) -> np.ndarray:
    """The paper's rotation index array ``I[j] = (2*rank - j) % P``.

    ``I[j]`` is the index (into the caller's original block order) of the
    block that *logically* sits at working slot ``j`` before any exchange.
    Creating ``I`` costs O(P), replacing the O(P*n) physical rotation.
    """
    j = np.arange(nprocs, dtype=np.int64)
    return (2 * rank - j) % nprocs


def total_send_blocks_per_step(nprocs: int) -> List[int]:
    """Blocks sent by each rank in every step (for models and tests)."""
    return [len(send_block_distances(k, nprocs)) for k in range(num_steps(nprocs))]


# ----------------------------------------------------------------------
# radix-r generalization
# ----------------------------------------------------------------------
#
# Radix r rewrites a distance index in base r instead of base 2: step ``k``
# handles digit position ``k``, with one substep per nonzero digit value
# ``z in [1, r)``.  The substep with digit ``z`` moves every distance ``i``
# whose ``k``-th base-r digit equals ``z`` a jump of ``z * r**k`` (negative
# direction for the modified/zero-rotation family).  ``ceil(log_r P)``
# steps of up to ``r - 1`` messages each replace ``ceil(log2 P)`` single-
# message steps — fewer rounds, more messages and forwarded volume per
# round, the trade the radix dial exposes.  Radix 2 reduces every formula
# here to the bit-trick originals, and :func:`bruck_substeps` *delegates*
# to them so the radix-2 schedules stay integer-identical.


def validate_radix(radix: int) -> int:
    """Check a Bruck radix: an integer >= 2 (radix 2 is today's kernels)."""
    r = int(radix)
    if r != radix or r < 2:
        raise ValueError(f"radix must be an integer >= 2, got {radix!r}")
    return r


def radix_num_steps(nprocs: int, radix: int = 2) -> int:
    """Number of radix-``r`` Bruck steps: ``ceil(log_r P)`` (0 for P=1)."""
    if nprocs <= 0:
        raise ValueError(f"nprocs must be positive, got {nprocs}")
    r = validate_radix(radix)
    if r == 2:
        return num_steps(nprocs)
    steps, span = 0, 1
    while span < nprocs:
        span *= r
        steps += 1
    return steps


def radix_send_block_distances(
    step: int, digit: int, nprocs: int, radix: int = 2
) -> List[int]:
    """Distances moving in substep (``step``, ``digit``): all ``i`` in
    ``[1, P)`` whose base-``radix`` digit at position ``step`` is ``digit``.

    Reduces to :func:`send_block_distances` for radix 2 (where the only
    nonzero digit value is 1).
    """
    if step < 0:
        raise ValueError(f"step must be non-negative, got {step}")
    r = validate_radix(radix)
    if not 1 <= digit < r:
        raise ValueError(f"digit must be in [1, {r}), got {digit}")
    if r == 2:
        return send_block_distances(step, nprocs)
    base = r ** step
    return [i for i in range(1, nprocs) if (i // base) % r == digit]


def radix_block_moved_before(distance: int, step: int, radix: int = 2) -> bool:
    """Has this distance index been exchanged in a step before ``step``?

    True iff ``distance`` has a nonzero base-``radix`` digit below position
    ``step`` — i.e. ``distance % radix**step != 0``.  Radix 2 reduces to
    :func:`block_moved_before` (a set bit below ``step``).
    """
    r = validate_radix(radix)
    if r == 2:
        return block_moved_before(distance, step)
    return distance % (r ** step) != 0


@dataclass(frozen=True)
class BruckSubstep:
    """One communication round of a radix-``r`` Bruck exchange.

    ``index``
        Dense substep number ``step * (r-1) + (digit-1)`` — the tag offset
        (``tag_base + index`` for uniform kernels, ``tag_base + 2*index``
        and ``+ 2*index + 1`` for two-phase's metadata/data pair).  For
        radix 2 it equals ``step``, so tags match the unparameterized code.
    ``step`` / ``digit``
        Digit position ``k`` and digit value ``z`` of the distances moved.
    ``jump``
        Partner offset ``z * r**k``: the modified family sends to
        ``(rank - jump) % P`` and receives from ``(rank + jump) % P``.
    ``distances``
        The distance indices moving, ascending
        (:func:`radix_send_block_distances`).
    """

    index: int
    step: int
    digit: int
    jump: int
    distances: Tuple[int, ...]


def bruck_substeps(nprocs: int, radix: int = 2) -> List[BruckSubstep]:
    """The full substep schedule of a radix-``r`` Bruck exchange.

    Substeps whose distance set is empty (``digit * r**step >= P``) are
    omitted, mirroring the kernels' ``if not dist: continue``.  For radix 2
    this is exactly one substep per classic step, built from the original
    bit-trick helpers, so every integer (index, jump, distances) — and
    therefore every message, tag and clock charge downstream — is identical
    to the unparameterized path.
    """
    r = validate_radix(radix)
    subs: List[BruckSubstep] = []
    for k in range(radix_num_steps(nprocs, r)):
        for z in range(1, r):
            dist = radix_send_block_distances(k, z, nprocs, r)
            if not dist:
                continue
            subs.append(BruckSubstep(index=k * (r - 1) + (z - 1), step=k,
                                     digit=z, jump=z * r ** k,
                                     distances=tuple(dist)))
    return subs


def total_forwarded_blocks(nprocs: int, radix: int = 2) -> int:
    """Total blocks a rank sends across a whole radix-``r`` exchange.

    Equals the sum of nonzero base-``r`` digit counts over all distances —
    the exact volume multiplier behind the cost model's ``(P+1)/2``-per-
    step approximation (radix 2) and its ``(P+1)(r-1)/r`` generalization.
    """
    return sum(len(s.distances) for s in bruck_substeps(nprocs, radix))


# ----------------------------------------------------------------------
# buffer validation
# ----------------------------------------------------------------------

def as_byte_view(buffer: np.ndarray, name: str = "buffer") -> np.ndarray:
    """Flat uint8 view of a contiguous ndarray (zero-copy)."""
    if not isinstance(buffer, np.ndarray):
        raise TypeError(f"{name} must be a numpy ndarray, got {type(buffer)}")
    if not buffer.flags.c_contiguous:
        raise ValueError(f"{name} must be C-contiguous")
    return buffer.reshape(-1).view(np.uint8)


def checked_counts_displs(
    counts: Sequence[int],
    displs: Sequence[int],
    nprocs: int,
    buf_nbytes: int,
    what: str,
) -> Tuple[np.ndarray, np.ndarray]:
    """Validate an alltoallv counts/displacements pair.

    Checks length, non-negativity, and that every ``[displ, displ+count)``
    extent fits in the buffer.  Overlap between extents is *not* rejected
    for send buffers (MPI allows reading the same bytes twice) — receive
    extents are the caller's contract, as in MPI.
    """
    counts = np.asarray(counts, dtype=np.int64)
    displs = np.asarray(displs, dtype=np.int64)
    if counts.shape != (nprocs,):
        raise ValueError(f"{what}counts must have shape ({nprocs},), got {counts.shape}")
    if displs.shape != (nprocs,):
        raise ValueError(f"{what}displs must have shape ({nprocs},), got {displs.shape}")
    if np.any(counts < 0):
        raise ValueError(f"{what}counts must be non-negative")
    if np.any(displs < 0):
        raise ValueError(f"{what}displs must be non-negative")
    if np.any(displs + counts > buf_nbytes):
        bad = int(np.argmax(displs + counts > buf_nbytes))
        raise ValueError(
            f"{what} block {bad} (displ {int(displs[bad])}, count "
            f"{int(counts[bad])}) exceeds buffer of {buf_nbytes} bytes"
        )
    return counts, displs


def validate_uniform_args(
    sendbuf: np.ndarray, recvbuf: np.ndarray, block_nbytes: int, nprocs: int
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Validate uniform-alltoall buffers; returns byte views and block size."""
    n = int(block_nbytes)
    if n < 0:
        raise ValueError(f"block_nbytes must be non-negative, got {block_nbytes}")
    sview = as_byte_view(sendbuf, "sendbuf")
    rview = as_byte_view(recvbuf, "recvbuf")
    need = nprocs * n
    if sview.nbytes < need:
        raise ValueError(f"sendbuf needs {need} bytes, has {sview.nbytes}")
    if rview.nbytes < need:
        raise ValueError(f"recvbuf needs {need} bytes, has {rview.nbytes}")
    return sview, rview, n

"""Shared math and validation helpers for all Bruck-family algorithms.

The index arithmetic here is the substance of the paper's Section 2/3: which
blocks move in which communication step, and how slots map to sources and
destinations.  Centralizing it keeps the six uniform variants and the two
non-uniform algorithms from re-deriving (and re-bugging) the same bit
tricks, and lets :mod:`repro.schedule` reuse the identical definitions so
the analytic schedules provably match the functional implementations.

Bruck index conventions used throughout (see DESIGN.md):

* ``num_steps(P) == ceil(log2 P)`` communication steps.
* In step ``k``, the *distance indices* ``i`` with bit ``k`` set move.  For
  the **basic** algorithm a block with distance ``i`` travels from source
  ``s`` to destination ``(s + i) % P``; for the **modified/zero-rotation**
  family it travels to ``(s - i) % P`` and sits at slot
  ``(i + current_rank) % P`` at every hop, so it lands at slot ``s`` on its
  destination with no final rotation.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "num_steps",
    "send_block_distances",
    "block_moved_before",
    "rotation_index_array",
    "as_byte_view",
    "checked_counts_displs",
    "validate_uniform_args",
    "total_send_blocks_per_step",
]


def num_steps(nprocs: int) -> int:
    """Number of Bruck communication steps: ``ceil(log2 P)`` (0 for P=1)."""
    if nprocs <= 0:
        raise ValueError(f"nprocs must be positive, got {nprocs}")
    return (nprocs - 1).bit_length()


def send_block_distances(step: int, nprocs: int) -> List[int]:
    """Distance indices moving in ``step``: all ``i in [1, P)`` with bit
    ``step`` of ``i`` set, ascending.

    Every step moves at most ``(P+1)//2`` blocks; the last step of a
    non-power-of-two ``P`` moves fewer (the paper calls this out
    explicitly).
    """
    if step < 0:
        raise ValueError(f"step must be non-negative, got {step}")
    bit = 1 << step
    return [i for i in range(bit, nprocs) if i & bit]


def block_moved_before(distance: int, step: int) -> bool:
    """Has the block with this distance index already been exchanged in a
    step before ``step``?

    True iff ``distance`` has a set bit below ``step``.  Used by
    zero-rotation Bruck to decide whether a block is drawn from the original
    send buffer or from the working/receive buffer — the functional
    equivalent of two-phase Bruck's explicit ``status`` array.
    """
    return (distance & ((1 << step) - 1)) != 0


def rotation_index_array(rank: int, nprocs: int) -> np.ndarray:
    """The paper's rotation index array ``I[j] = (2*rank - j) % P``.

    ``I[j]`` is the index (into the caller's original block order) of the
    block that *logically* sits at working slot ``j`` before any exchange.
    Creating ``I`` costs O(P), replacing the O(P*n) physical rotation.
    """
    j = np.arange(nprocs, dtype=np.int64)
    return (2 * rank - j) % nprocs


def total_send_blocks_per_step(nprocs: int) -> List[int]:
    """Blocks sent by each rank in every step (for models and tests)."""
    return [len(send_block_distances(k, nprocs)) for k in range(num_steps(nprocs))]


# ----------------------------------------------------------------------
# buffer validation
# ----------------------------------------------------------------------

def as_byte_view(buffer: np.ndarray, name: str = "buffer") -> np.ndarray:
    """Flat uint8 view of a contiguous ndarray (zero-copy)."""
    if not isinstance(buffer, np.ndarray):
        raise TypeError(f"{name} must be a numpy ndarray, got {type(buffer)}")
    if not buffer.flags.c_contiguous:
        raise ValueError(f"{name} must be C-contiguous")
    return buffer.reshape(-1).view(np.uint8)


def checked_counts_displs(
    counts: Sequence[int],
    displs: Sequence[int],
    nprocs: int,
    buf_nbytes: int,
    what: str,
) -> Tuple[np.ndarray, np.ndarray]:
    """Validate an alltoallv counts/displacements pair.

    Checks length, non-negativity, and that every ``[displ, displ+count)``
    extent fits in the buffer.  Overlap between extents is *not* rejected
    for send buffers (MPI allows reading the same bytes twice) — receive
    extents are the caller's contract, as in MPI.
    """
    counts = np.asarray(counts, dtype=np.int64)
    displs = np.asarray(displs, dtype=np.int64)
    if counts.shape != (nprocs,):
        raise ValueError(f"{what}counts must have shape ({nprocs},), got {counts.shape}")
    if displs.shape != (nprocs,):
        raise ValueError(f"{what}displs must have shape ({nprocs},), got {displs.shape}")
    if np.any(counts < 0):
        raise ValueError(f"{what}counts must be non-negative")
    if np.any(displs < 0):
        raise ValueError(f"{what}displs must be non-negative")
    if np.any(displs + counts > buf_nbytes):
        bad = int(np.argmax(displs + counts > buf_nbytes))
        raise ValueError(
            f"{what} block {bad} (displ {int(displs[bad])}, count "
            f"{int(counts[bad])}) exceeds buffer of {buf_nbytes} bytes"
        )
    return counts, displs


def validate_uniform_args(
    sendbuf: np.ndarray, recvbuf: np.ndarray, block_nbytes: int, nprocs: int
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Validate uniform-alltoall buffers; returns byte views and block size."""
    n = int(block_nbytes)
    if n < 0:
        raise ValueError(f"block_nbytes must be non-negative, got {block_nbytes}")
    sview = as_byte_view(sendbuf, "sendbuf")
    rview = as_byte_view(recvbuf, "recvbuf")
    need = nprocs * n
    if sview.nbytes < need:
        raise ValueError(f"sendbuf needs {need} bytes, has {sview.nbytes}")
    if rview.nbytes < need:
        raise ValueError(f"recvbuf needs {need} bytes, has {rview.nbytes}")
    return sview, rview, n

"""Ledger-driven online auto-tuner for the radix dial.

The radix generalization (``radix=`` on the Bruck-family kernels) turns
algorithm choice into a two-dimensional decision: *which* algorithm, and
*what digit base*.  The closed forms in :mod:`repro.core.cost_model`
answer it analytically, but the whole point of the run ledger
(:mod:`repro.bench.ledger`) is that observed runs beat model
extrapolation wherever they exist.  :class:`AutoTuner` arbitrates:

* **warm** — enough ledger records cover the requested ``(P, N-band)``
  cell: pick the ``(algorithm, radix)`` group with the lowest mean
  observed time (``source="ledger"``);
* **cold** — no cell has :attr:`~AutoTuner.min_samples` observations:
  fall back to :meth:`PerformanceModel.recommend_radix
  <repro.core.selector.PerformanceModel.recommend_radix>`, i.e. the
  Fig. 9 frontier interpolation plus the radix closed form
  (``source="model"``).

Block sizes are coarsened into power-of-two **bands**
(:func:`block_band`) so nearby workloads pool their observations — the
model's own block grid is octave-spaced for the same reason.  Decisions
are deterministic: the same ledger contents produce the same decision,
with ties broken toward the smaller radix, then the lexicographically
smaller algorithm name.

Stale records are ignored: a record only counts if its
``machine_model_version`` matches the current
:data:`~repro.simmpi.machine.MACHINE_MODEL_VERSION` and its machine name
matches the tuner's profile — numbers from a recalibrated model or a
different machine are not comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..simmpi.machine import MACHINE_MODEL_VERSION, MachineProfile
from .cost_model import best_radix
from .registry import get_algorithm
from .selector import PerformanceModel

__all__ = ["AutoTuner", "TunerDecision", "block_band"]


def block_band(max_block: int) -> int:
    """The power-of-two band index of a block size (``bit_length``).

    Band ``b`` covers ``[2^(b-1), 2^b)``; band 0 is the empty workload.
    Ledger records whose ``max_block`` falls in the same band pool their
    observations for one tuning cell.
    """
    n = int(max_block)
    if n < 0:
        raise ValueError(f"max_block must be non-negative, got {n}")
    return n.bit_length()


@dataclass(frozen=True)
class TunerDecision:
    """One auto-tuner answer for a ``(P, N)`` request.

    ``source`` says which path produced it: ``"ledger"`` (warm — mean of
    ``samples`` observed runs) or ``"model"`` (cold — analytic fallback,
    ``samples == 0``).  ``expected_s`` is the winning group's mean
    observed time when warm, ``None`` when cold (the model's absolute
    scale is not comparable to ledger timings).
    """

    algorithm: str
    radix: int
    source: str
    samples: int
    nprocs: int
    band: int
    expected_s: Optional[float] = None


class AutoTuner:
    """Per-``(P, N-band)`` algorithm/radix chooser over the run ledger.

    Parameters
    ----------
    machine:
        The profile decisions are for; ledger records from other
        machines are ignored.
    ledger_path:
        JSONL run ledger to learn from (``None`` = always cold).
    model:
        A fitted :class:`~repro.core.selector.PerformanceModel` for the
        cold path.  When omitted, one is fitted lazily on first cold
        decision and cached.
    min_samples:
        Observations an ``(algorithm, radix)`` group needs before it can
        win a warm decision.  Below that the group is ignored — one
        lucky run must not lock in a radix.
    """

    def __init__(self, machine: MachineProfile,
                 ledger_path: Optional[str] = None, *,
                 model: Optional[PerformanceModel] = None,
                 min_samples: int = 3) -> None:
        if min_samples < 1:
            raise ValueError(
                f"min_samples must be >= 1, got {min_samples}")
        self.machine = machine
        self.ledger_path = ledger_path
        self.min_samples = int(min_samples)
        self._model = model
        self._records: Optional[List[Dict[str, Any]]] = None

    # ------------------------------------------------------------------
    @property
    def model(self) -> PerformanceModel:
        """The cold-path model, fitted lazily on first use."""
        if self._model is None:
            self._model = PerformanceModel.fit(self.machine)
        return self._model

    def refresh(self) -> int:
        """(Re)read the ledger; returns the number of usable records.

        Call after new runs append to the ledger — the tuner otherwise
        keeps serving decisions from the records it read first.
        """
        if self.ledger_path is None:
            self._records = []
            return 0
        from ..bench.ledger import iter_ledger

        usable = []
        for rec in iter_ledger(self.ledger_path):
            if rec.get("machine") != self.machine.name:
                continue
            if rec.get("machine_model_version") != MACHINE_MODEL_VERSION:
                continue
            if not rec.get("algorithm"):
                continue
            if not isinstance(rec.get("elapsed_s"), (int, float)):
                continue
            if not isinstance(rec.get("nprocs"), int):
                continue
            if not isinstance(rec.get("max_block"), int):
                continue
            usable.append(rec)
        self._records = usable
        return len(usable)

    def _usable_records(self) -> List[Dict[str, Any]]:
        if self._records is None:
            self.refresh()
        return self._records

    # ------------------------------------------------------------------
    def observations(self, nprocs: int, max_block: int, *,
                     algorithm: Optional[str] = None,
                     ) -> Dict[Tuple[str, int], List[float]]:
        """The cell's ledger timings grouped by ``(algorithm, radix)``."""
        band = block_band(max_block)
        groups: Dict[Tuple[str, int], List[float]] = {}
        for rec in self._usable_records():
            if rec["nprocs"] != nprocs:
                continue
            if block_band(rec["max_block"]) != band:
                continue
            if algorithm is not None and rec["algorithm"] != algorithm:
                continue
            radix = rec.get("radix")
            key = (rec["algorithm"], int(radix) if radix else 2)
            groups.setdefault(key, []).append(float(rec["elapsed_s"]))
        return groups

    def decide(self, nprocs: int, max_block: int, *,
               algorithm: Optional[str] = None) -> TunerDecision:
        """The tuner's answer for one ``(P, N)`` request.

        ``algorithm`` pins the algorithm (the CLI's ``--radix auto``
        with an explicit ``-a``) so only the radix is tuned; without it
        both dimensions are chosen together.
        """
        if nprocs <= 0:
            raise ValueError(f"nprocs must be positive, got {nprocs}")
        band = block_band(max_block)
        groups = self.observations(nprocs, max_block, algorithm=algorithm)
        eligible = [(sum(ts) / len(ts), radix, algo)
                    for (algo, radix), ts in groups.items()
                    if len(ts) >= self.min_samples]
        if eligible:
            mean, radix, algo = min(eligible)
            samples = len(groups[(algo, radix)])
            return TunerDecision(algorithm=algo, radix=radix,
                                 source="ledger", samples=samples,
                                 nprocs=nprocs, band=band,
                                 expected_s=mean)
        if algorithm is None:
            algo, radix = self.model.recommend_radix(nprocs, max_block)
        else:
            algo = algorithm
            if get_algorithm(algo).supports_radix:
                radix = best_radix(nprocs, max_block, self.machine,
                                   algorithm=algo)
            else:
                radix = 2
        return TunerDecision(algorithm=algo, radix=radix, source="model",
                             samples=0, nprocs=nprocs, band=band)

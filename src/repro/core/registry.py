"""Central registry of the paper's all-to-all algorithms.

Every algorithm name used anywhere in the project — dispatchers, the
analytic timing engine, the selector, the CLI, the benchmarks — resolves
through this one table, so "which algorithms exist" has a single answer
and a typo fails the same way everywhere.

The registry is a *passive* store: implementation packages register
themselves when imported (see ``repro.core.uniform`` /
``repro.core.nonuniform``), and :func:`get_algorithm` /
:func:`list_algorithms` lazily import them on first use.  That keeps this
module import-cycle-free — it never imports implementation code at module
level.

``"vendor"`` is registered here directly for both kinds: it stands in for
the MPI library's own ``MPI_Alltoall(v)`` and routes to the communicator's
builtin (spread-out) collectives.

The legacy ``UNIFORM_ALGORITHMS`` / ``NONUNIFORM_ALGORITHMS`` alias dicts
are gone; one-release compatibility stubs in the implementation packages
rebuild them on access and emit a ``DeprecationWarning``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Algorithm",
    "KINDS",
    "register_algorithm",
    "get_algorithm",
    "list_algorithms",
    "radix_algorithms",
]

#: Valid algorithm kinds: uniform ``MPI_Alltoall``-style (equal blocks)
#: and non-uniform ``MPI_Alltoallv``-style (per-pair block sizes).
KINDS = ("uniform", "nonuniform")


@dataclass(frozen=True)
class Algorithm:
    """One registered all-to-all implementation.

    ``fn`` has the kind's dispatch signature::

        uniform:    fn(comm, sendbuf, recvbuf, block_nbytes, *, tag_base=0)
        nonuniform: fn(comm, sendbuf, sendcounts, sdispls,
                       recvbuf, recvcounts, rdispls, *, tag_base=0)

    ``supports_radix`` marks the Bruck-family kernels that additionally
    accept a ``radix=`` keyword (base-``r`` digit schedule); consumers —
    dispatchers, the timing engine, the tensor backend, the tuner — gate
    radix requests on this flag instead of keeping their own name lists.
    """

    name: str
    kind: str
    fn: Callable[..., None]
    description: str = ""
    supports_radix: bool = False


_REGISTRY: Dict[Tuple[str, str], Algorithm] = {}
_populated = False


def register_algorithm(name: str, kind: str, fn: Callable[..., None],
                       description: str = "", *,
                       supports_radix: bool = False) -> Algorithm:
    """Add one algorithm to the registry (idempotent per ``(kind, name)``).

    Re-registering an existing ``(kind, name)`` pair replaces it — that
    keeps module reloads harmless.
    """
    if kind not in KINDS:
        raise ValueError(f"kind must be one of {KINDS}, got {kind!r}")
    if not name:
        raise ValueError("algorithm name must be non-empty")
    algo = Algorithm(name=name, kind=kind, fn=fn, description=description,
                     supports_radix=supports_radix)
    _REGISTRY[(kind, name)] = algo
    return algo


def _ensure_populated() -> None:
    """Import the implementation packages so they self-register."""
    global _populated
    if _populated:
        return
    _populated = True
    from . import nonuniform, uniform  # noqa: F401 - registration side effect


def get_algorithm(name: str, kind: Optional[str] = None) -> Algorithm:
    """Look ``name`` up, optionally restricted to one ``kind``.

    Raises ``KeyError`` (naming the unknown algorithm and listing the
    known ones) on a miss — the same failure mode every consumer sees.
    """
    _ensure_populated()
    kinds: Sequence[str]
    if kind is None:
        kinds = KINDS
    elif kind in KINDS:
        kinds = (kind,)
    else:
        raise ValueError(f"kind must be one of {KINDS} or None, got {kind!r}")
    for k in kinds:
        algo = _REGISTRY.get((k, name))
        if algo is not None:
            return algo
    what = f"{kind} algorithm" if kind is not None else "algorithm"
    known = ", ".join(list_algorithms(kind))
    raise KeyError(f"unknown {what} {name!r}; known: {known}")


def list_algorithms(kind: Optional[str] = None) -> List[str]:
    """Sorted names of every registered algorithm (of ``kind``, if given)."""
    _ensure_populated()
    if kind is not None and kind not in KINDS:
        raise ValueError(f"kind must be one of {KINDS} or None, got {kind!r}")
    names = {n for (k, n) in _REGISTRY if kind is None or k == kind}
    return sorted(names)


def radix_algorithms(kind: Optional[str] = None) -> List[str]:
    """Sorted names of the algorithms accepting a ``radix=`` keyword."""
    _ensure_populated()
    if kind is not None and kind not in KINDS:
        raise ValueError(f"kind must be one of {KINDS} or None, got {kind!r}")
    names = {n for (k, n), a in _REGISTRY.items()
             if a.supports_radix and (kind is None or k == kind)}
    return sorted(names)


def deprecated_alias_dict(kind: str) -> Dict[str, Callable[..., None]]:
    """Registry-backed body of the removed ``*_ALGORITHMS`` alias dicts.

    Used only by the one-release compatibility stubs (module
    ``__getattr__`` hooks); each stub emits its own DeprecationWarning
    with ``stacklevel=2`` so the warning points at the *caller's* access,
    then returns this dict.  Excludes the vendor stand-in, matching the
    removed dicts.
    """
    return {n: get_algorithm(n, kind).fn
            for n in list_algorithms(kind) if n != "vendor"}


# ----------------------------------------------------------------------
# The vendor stand-ins: the communicator's builtin (spread-out)
# collectives, mirroring a call into the MPI library itself.
# ----------------------------------------------------------------------

def _vendor_alltoall(comm, sendbuf, recvbuf, block_nbytes, *,
                     tag_base: int = 0) -> None:
    comm.alltoall(sendbuf, recvbuf, block_nbytes)


def _vendor_alltoallv(comm, sendbuf, sendcounts, sdispls, recvbuf,
                      recvcounts, rdispls, *, tag_base: int = 0) -> None:
    comm.alltoallv(sendbuf, sendcounts, sdispls, recvbuf, recvcounts,
                   rdispls)


register_algorithm(
    "vendor", "uniform", _vendor_alltoall,
    "the MPI library's own MPI_Alltoall (builtin spread-out)")
register_algorithm(
    "vendor", "nonuniform", _vendor_alltoallv,
    "the MPI library's own MPI_Alltoallv (builtin spread-out)")

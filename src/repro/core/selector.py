"""Empirical performance model and algorithm selector (paper §4.1, Fig. 9).

The paper runs data-scaling sweeps, finds — for each process count ``P`` —
the block-size threshold ``N*`` where two-phase Bruck stops beating the
vendor ``MPI_Alltoallv``, plots the ``(N*, P)`` frontier, and adds a second
polyline separating padded Bruck's niche.  The resulting chart answers
"with ``P = 350`` and ``N = 800``, which algorithm should I call?"

:class:`PerformanceModel` reproduces that artifact programmatically:

* :meth:`PerformanceModel.fit` runs the same sweeps with the analytic
  timing engine (or accepts precomputed measurements) and extracts the two
  crossover frontiers;
* :meth:`PerformanceModel.recommend` interpolates the frontiers in
  log-log space to answer the paper's question for arbitrary ``(P, N)``.

The fitted frontiers are also what the Fig. 9 benchmark prints.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..simmpi.machine import THETA, MachineProfile
from ..workloads.distributions import UniformBlocks
from .cost_model import crossover_block_size
from .registry import get_algorithm

# The three contenders of the Fig. 9 chart, resolved through the central
# registry so a rename there fails loudly here.
def _contenders() -> Tuple[str, str, str]:
    return (get_algorithm("two_phase_bruck", kind="nonuniform").name,
            get_algorithm("padded_bruck", kind="nonuniform").name,
            get_algorithm("vendor", kind="nonuniform").name)

__all__ = ["CrossoverPoint", "PerformanceModel"]

DEFAULT_PROCS = (128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768)
DEFAULT_BLOCKS = (16, 32, 64, 128, 256, 512, 1024, 2048)


@dataclass(frozen=True)
class CrossoverPoint:
    """One fitted frontier point: at ``nprocs``, the algorithm on the left
    wins for block sizes up to ``max_block`` (0 = never wins)."""

    nprocs: int
    max_block: int


@dataclass
class PerformanceModel:
    """The Fig. 9 empirical model: two frontiers over the (N, P) plane.

    ``two_phase_frontier[i]`` — largest N where two-phase Bruck beats the
    vendor alltoallv at that P; ``padded_frontier[i]`` — largest N where
    padded Bruck additionally beats two-phase Bruck.
    """

    machine: MachineProfile
    two_phase_frontier: List[CrossoverPoint] = field(default_factory=list)
    padded_frontier: List[CrossoverPoint] = field(default_factory=list)

    # ------------------------------------------------------------------
    @classmethod
    def fit(cls, machine: MachineProfile = THETA,
            procs: Sequence[int] = DEFAULT_PROCS,
            blocks: Sequence[int] = DEFAULT_BLOCKS,
            seed: int = 0) -> "PerformanceModel":
        """Run data-scaling sweeps and extract both crossover frontiers.

        Uses the analytic timing engine (exact mode through 2048 ranks,
        CLT beyond), mirroring how the paper derives Fig. 9 from Fig. 6.
        """
        from ..timing import predict_alltoallv  # local import: avoid cycle

        tp_name, padded_name, vendor_name = _contenders()
        model = cls(machine=machine)
        for p in procs:
            largest_tp = 0
            largest_padded = 0
            for n in sorted(blocks):
                dist = UniformBlocks(n)
                tp = predict_alltoallv(tp_name, machine, p, dist,
                                       seed=seed).elapsed
                vendor = predict_alltoallv(vendor_name, machine, p, dist,
                                           seed=seed).elapsed
                padded = predict_alltoallv(padded_name, machine, p, dist,
                                           seed=seed).elapsed
                if tp < vendor:
                    largest_tp = n
                if padded < tp and padded < vendor:
                    largest_padded = n
            model.two_phase_frontier.append(CrossoverPoint(p, largest_tp))
            model.padded_frontier.append(CrossoverPoint(p, largest_padded))
        return model

    @classmethod
    def from_measurements(
        cls, machine: MachineProfile,
        measurements: Dict[Tuple[int, int], Dict[str, float]],
    ) -> "PerformanceModel":
        """Build the model from external timings.

        ``measurements[(nprocs, max_block)]`` maps algorithm name →
        seconds; must include ``two_phase_bruck``, ``padded_bruck`` and
        ``vendor``.  Lets users fit the model to their own cluster's
        numbers, which is exactly the workflow the paper proposes for
        vendors.
        """
        model = cls(machine=machine)
        by_p: Dict[int, List[Tuple[int, Dict[str, float]]]] = {}
        for (p, n), times in measurements.items():
            by_p.setdefault(p, []).append((n, times))
        # Compare through the same registry-resolved names the missing-key
        # check uses — a registry rename must not silently split the two.
        tp_name, padded_name, vendor_name = _contenders()
        required = {tp_name, padded_name, vendor_name}
        for p in sorted(by_p):
            largest_tp = 0
            largest_padded = 0
            for n, times in sorted(by_p[p]):
                missing = required - set(times)
                if missing:
                    raise ValueError(
                        f"measurement ({p}, {n}) missing algorithms: "
                        f"{sorted(missing)}"
                    )
                if times[tp_name] < times[vendor_name]:
                    largest_tp = n
                if times[padded_name] < times[tp_name] \
                        and times[padded_name] < times[vendor_name]:
                    largest_padded = n
            model.two_phase_frontier.append(CrossoverPoint(p, largest_tp))
            model.padded_frontier.append(CrossoverPoint(p, largest_padded))
        return model

    # ------------------------------------------------------------------
    def _frontier_at(self, frontier: List[CrossoverPoint],
                     nprocs: int) -> float:
        """Log-log interpolate a frontier's N* at an arbitrary P."""
        if not frontier:
            raise ValueError("model has not been fitted")
        pts = sorted(frontier, key=lambda c: c.nprocs)
        if nprocs <= pts[0].nprocs:
            return float(pts[0].max_block)
        if nprocs >= pts[-1].nprocs:
            return float(pts[-1].max_block)
        for lo, hi in zip(pts, pts[1:]):
            if lo.nprocs <= nprocs <= hi.nprocs:
                if lo.max_block == 0 or hi.max_block == 0:
                    # Linear blend into a dead frontier.
                    f = (nprocs - lo.nprocs) / (hi.nprocs - lo.nprocs)
                    return (1 - f) * lo.max_block + f * hi.max_block
                f = (math.log2(nprocs) - math.log2(lo.nprocs)) / (
                    math.log2(hi.nprocs) - math.log2(lo.nprocs))
                return 2.0 ** ((1 - f) * math.log2(lo.max_block)
                               + f * math.log2(hi.max_block))
        raise AssertionError("unreachable")

    def two_phase_threshold(self, nprocs: int) -> float:
        """Largest N (interpolated) where two-phase Bruck beats vendor."""
        return self._frontier_at(self.two_phase_frontier, nprocs)

    def padded_threshold(self, nprocs: int) -> float:
        """Largest N (interpolated) where padded Bruck is the best choice."""
        return self._frontier_at(self.padded_frontier, nprocs)

    def recommend(self, nprocs: int, max_block: int) -> str:
        """Answer the paper's question: which algorithm for ``(P, N)``?

        Returns ``"padded_bruck"``, ``"two_phase_bruck"`` or ``"vendor"``.
        The theoretical Eq. (3) predicate breaks the padded/two-phase tie
        when the empirical padded frontier is silent.
        """
        if nprocs <= 0:
            raise ValueError(f"nprocs must be positive, got {nprocs}")
        if max_block < 0:
            raise ValueError(f"max_block must be non-negative, got {max_block}")
        if max_block > self.two_phase_threshold(nprocs):
            return "vendor"
        if max_block <= self.padded_threshold(nprocs):
            return "padded_bruck"
        # Eq. (3) as a tie-breaker for very small N outside the fitted grid.
        if max_block < 8 and crossover_block_size(nprocs, self.machine) \
                > max_block:
            return "padded_bruck"
        return "two_phase_bruck"

    def recommend_radix(self, nprocs: int,
                        max_block: int) -> Tuple[str, int]:
        """:meth:`recommend` plus the analytically best radix for it.

        Returns ``(algorithm, radix)``.  The frontier interpolation picks
        the algorithm exactly as :meth:`recommend` does; for a
        radix-capable winner the closed-form
        :func:`~repro.core.cost_model.best_radix` then picks the digit
        base, else radix 2.  This is also the auto-tuner's cold-start
        answer (:class:`repro.core.tuner.AutoTuner`).
        """
        from .cost_model import best_radix  # local import: avoid cycle

        algorithm = self.recommend(nprocs, max_block)
        if not get_algorithm(algorithm, kind="nonuniform").supports_radix:
            return algorithm, 2
        return algorithm, best_radix(nprocs, max_block, self.machine,
                                     algorithm=algorithm)

    def describe(self) -> str:
        """Human-readable frontier table (the Fig. 9 chart as text)."""
        lines = [f"Empirical performance model ({self.machine.name}):",
                 f"{'P':>8}  {'two-phase wins to N=':>22}  "
                 f"{'padded wins to N=':>18}"]
        for tp, pd in zip(self.two_phase_frontier, self.padded_frontier):
            lines.append(f"{tp.nprocs:>8}  {tp.max_block:>22}  "
                         f"{pd.max_block:>18}")
        return "\n".join(lines)

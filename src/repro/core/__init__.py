"""The paper's primary contribution: Bruck-family all-to-all algorithms.

* :mod:`repro.core.uniform` — every uniform variant of Fig. 2 plus
  zero-rotation Bruck (ours) and the spread-out baseline.
* :mod:`repro.core.nonuniform` — padded Bruck and two-phase Bruck
  (``MPI_Alltoallv`` signature), plus the spread-out / padded-alltoall
  baselines.
* :mod:`repro.core.cost_model` — the paper's Eqs. (1)-(3).
* :mod:`repro.core.selector` — the Fig. 9 empirical model / advisor.
* :mod:`repro.core.tuner` — the ledger-driven algorithm/radix auto-tuner.
"""

from .common import (
    block_moved_before,
    bruck_substeps,
    num_steps,
    radix_num_steps,
    rotation_index_array,
    send_block_distances,
    total_forwarded_blocks,
    total_send_blocks_per_step,
)
from .cost_model import (
    DEFAULT_RADICES,
    LinearCostParams,
    best_radix,
    crossover_block_size,
    padded_beats_two_phase,
    padded_bruck_time,
    radix_cost,
    spread_out_time,
    two_phase_bruck_time,
)
from .nonuniform import (
    alltoallv,
    padded_alltoall,
    padded_bruck,
    spread_out_v,
    two_phase_bruck,
)
from .registry import (
    Algorithm,
    get_algorithm,
    list_algorithms,
    radix_algorithms,
    register_algorithm,
)
from .selector import CrossoverPoint, PerformanceModel
from .tuner import AutoTuner, TunerDecision, block_band
from .uniform import (
    alltoall,
    basic_bruck,
    basic_bruck_dt,
    modified_bruck,
    modified_bruck_dt,
    spread_out,
    zero_copy_bruck_dt,
    zero_rotation_bruck,
)

__all__ = [
    "Algorithm",
    "get_algorithm",
    "list_algorithms",
    "register_algorithm",
    "num_steps",
    "send_block_distances",
    "block_moved_before",
    "rotation_index_array",
    "total_send_blocks_per_step",
    "alltoall",
    "basic_bruck",
    "basic_bruck_dt",
    "modified_bruck",
    "modified_bruck_dt",
    "zero_copy_bruck_dt",
    "zero_rotation_bruck",
    "spread_out",
    "alltoallv",
    "padded_bruck",
    "padded_alltoall",
    "two_phase_bruck",
    "spread_out_v",
    "LinearCostParams",
    "padded_bruck_time",
    "two_phase_bruck_time",
    "spread_out_time",
    "padded_beats_two_phase",
    "crossover_block_size",
    "radix_cost",
    "best_radix",
    "DEFAULT_RADICES",
    "bruck_substeps",
    "radix_num_steps",
    "total_forwarded_blocks",
    "radix_algorithms",
    "PerformanceModel",
    "CrossoverPoint",
    "AutoTuner",
    "TunerDecision",
    "block_band",
]


def __getattr__(name: str):
    # One-release compatibility stubs for the removed alias dicts.  The
    # warning is emitted *here* rather than by delegating to the
    # implementation packages' stubs: each delegation hop adds a stack
    # frame, which would make ``stacklevel=2`` point inside the library
    # instead of at the caller's attribute access.
    if name in ("UNIFORM_ALGORITHMS", "NONUNIFORM_ALGORITHMS"):
        import warnings

        kind = "uniform" if name == "UNIFORM_ALGORITHMS" else "nonuniform"
        warnings.warn(
            f"{name} is deprecated; use repro.core.registry."
            f"list_algorithms({kind!r}) / get_algorithm(name, {kind!r}) "
            "instead", DeprecationWarning, stacklevel=2)
        from .registry import deprecated_alias_dict

        return deprecated_alias_dict(kind)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")

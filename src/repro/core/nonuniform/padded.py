"""Padded Bruck — non-uniform all-to-all by reduction to the uniform case
(paper §3.1).

Three phases:

1. **Pad** — an ``MPI_Allreduce(max)`` finds the global maximum block size
   ``N`` over all P×P blocks; every rank copies its P blocks into a
   ``P × N`` uniform buffer (unused tail bytes are simply never read).
2. **Uniform exchange** — zero-rotation Bruck over the padded buffer (the
   paper builds both non-uniform algorithms on its zero-rotation variant).
3. **Scan** — each received N-sized block is trimmed to its true
   ``recvcounts`` size and copied to its ``rdispls`` position.

The exchange moves ``log2(P) * (P+1)/2 * N`` bytes per rank — roughly
*twice* the two-phase algorithm's volume when block sizes are uniformly
distributed in ``[0, N]`` (average ``N/2``) — but it needs only *one*
message per step instead of two.  Hence Eq. (3): padded wins only when the
extra bytes cost less than the saved per-step latency, i.e. for very small
``N`` and ``P``.

``padded_alltoall`` is the paper's control variant: identical pad and scan
phases, but the uniform exchange is the *vendor* alltoall (spread-out)
instead of Bruck — isolating how much of the win comes from Bruck itself.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ...simmpi.communicator import Communicator
from ...simmpi.datatype import gather_index
from ..common import as_byte_view, checked_counts_displs
from ..uniform.zero_rotation import zero_rotation_bruck

__all__ = ["padded_bruck", "padded_alltoall"]

PHASE_PAD = "padding"
PHASE_SCAN = "scan"


def _pad_exchange_scan(comm: Communicator, sendbuf: np.ndarray,
                       sendcounts: Sequence[int], sdispls: Sequence[int],
                       recvbuf: np.ndarray, recvcounts: Sequence[int],
                       rdispls: Sequence[int], *, use_vendor_alltoall: bool,
                       tag_base: int, radix: int = 2) -> None:
    p, rank = comm.size, comm.rank
    sview = as_byte_view(sendbuf, "sendbuf")
    rview = as_byte_view(recvbuf, "recvbuf")
    scounts, sdis = checked_counts_displs(sendcounts, sdispls, p,
                                          sview.nbytes, "send")
    rcounts, rdis = checked_counts_displs(recvcounts, rdispls, p,
                                          rview.nbytes, "recv")

    with comm.phase(PHASE_PAD):
        local_max = int(scounts.max()) if p else 0
        max_n = int(comm.allreduce(local_max, op="max"))
        if max_n == 0:
            return
        row_offs = np.arange(p, dtype=np.int64) * max_n
        # One committed-index gather replaces the per-block padding loop;
        # the per-block copies are charged in the same order.  Phantom mode
        # skips the writes (and the zero fill) but keeps the charges.
        if comm.payload_enabled:
            padded_send = np.zeros(p * max_n, dtype=np.uint8)
            nz = scounts > 0
            if nz.any():
                padded_send[gather_index(row_offs[nz], scounts[nz])] = \
                    sview[gather_index(sdis[nz], scounts[nz])]
        else:
            padded_send = np.empty(p * max_n, dtype=np.uint8)
        comm.charge_copies(scounts)
        padded_recv = np.empty(p * max_n, dtype=np.uint8)

    if use_vendor_alltoall:
        comm.alltoall(padded_send, padded_recv, max_n)
    else:
        zero_rotation_bruck(comm, padded_send, padded_recv, max_n,
                            tag_base=tag_base, radix=radix)

    with comm.phase(PHASE_SCAN):
        if comm.payload_enabled:
            nz = rcounts > 0
            if nz.any():
                rview[gather_index(rdis[nz], rcounts[nz])] = \
                    padded_recv[gather_index(row_offs[nz], rcounts[nz])]
        comm.charge_copies(rcounts)


def padded_bruck(comm: Communicator, sendbuf: np.ndarray,
                 sendcounts: Sequence[int], sdispls: Sequence[int],
                 recvbuf: np.ndarray, recvcounts: Sequence[int],
                 rdispls: Sequence[int], *, tag_base: int = 0,
                 radix: int = 2) -> None:
    """Non-uniform all-to-all via pad → zero-rotation Bruck → scan.

    ``radix`` is forwarded to the uniform zero-rotation exchange; the pad
    and scan phases are radix-independent.
    """
    _pad_exchange_scan(comm, sendbuf, sendcounts, sdispls, recvbuf,
                       recvcounts, rdispls, use_vendor_alltoall=False,
                       tag_base=tag_base, radix=radix)


def padded_alltoall(comm: Communicator, sendbuf: np.ndarray,
                    sendcounts: Sequence[int], sdispls: Sequence[int],
                    recvbuf: np.ndarray, recvcounts: Sequence[int],
                    rdispls: Sequence[int], *, tag_base: int = 0) -> None:
    """Control variant: pad → vendor (spread-out) alltoall → scan."""
    _pad_exchange_scan(comm, sendbuf, sendcounts, sdispls, recvbuf,
                       recvcounts, rdispls, use_vendor_alltoall=True,
                       tag_base=tag_base)

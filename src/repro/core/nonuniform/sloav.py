"""SLOAV — the prior log-time non-uniform all-to-all (Xu et al. [44]),
reimplemented from the paper's §6.1 description.

SLOAV pioneered the coupled metadata/data Bruck exchange that two-phase
Bruck refines.  The paper identifies four inefficiencies, all of which
this implementation reproduces faithfully so the improvement of two-phase
Bruck over SLOAV is measurable (``benchmarks/bench_sloav.py``):

1. **Metadata management** — SLOAV couples the block-size array and the
   data blocks into one combined buffer per step: an extra pack on the
   send side and an unpack on the receive side, plus a tiny header
   message carrying the combined buffer's size so the receiver can post
   an exact receive.  (Two-phase sends the size array *as* the first
   message — no pack/unpack.)
2. **Buffer management** — intermediate blocks park in a growable
   temporary buffer addressed through a pointer array; growth reallocates
   and moves everything stored so far.  (Two-phase pre-allocates one
   monolithic ``P × N`` buffer.)
3. **Rotation overhead** — SLOAV skips the *initial* rotation (it
   introduced the rotation index array) but keeps basic Bruck's
   orientation, so a physical **final rotation** remains.
4. **Scan overhead** — a final scan copies every block from the
   temporary/send buffers into the receive buffer.  (Two-phase deposits
   finished blocks at their final ``rdispls`` position on arrival.)

Correctness contract is identical to ``MPI_Alltoallv``.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from ...simmpi.communicator import Communicator
from ..common import (
    as_byte_view,
    checked_counts_displs,
    num_steps,
    send_block_distances,
)

__all__ = ["sloav_alltoallv"]

PHASE_SETUP = "setup"
PHASE_COMM = "communication"
PHASE_ROTATE_OUT = "final_rotation"
PHASE_SCAN = "scan"

_META_DTYPE = np.int32
_META_MAX = np.iinfo(_META_DTYPE).max
_INITIAL_TEMP_CAPACITY = 4096


class _GrowableTemp:
    """SLOAV's temporary block store: pointer array over a growable heap.

    Every capacity growth reallocates and moves the live bytes — the
    §6.1(2) overhead — charged to the owning rank's simulated clock.
    """

    def __init__(self, comm: Communicator, nslots: int) -> None:
        self._comm = comm
        self._blocks: Dict[int, np.ndarray] = {}   # the pointer array
        self._capacity = _INITIAL_TEMP_CAPACITY
        self._stored = 0

    def store(self, slot: int, data: np.ndarray) -> None:
        old = self._blocks.get(slot)
        self._stored += data.nbytes - (old.nbytes if old is not None else 0)
        while self._stored > self._capacity:
            # realloc: move everything currently held
            self._comm.charge_copy(self._stored - (data.nbytes if old is None
                                                   else 0))
            self._capacity *= 2
        self._blocks[slot] = data.copy()
        self._comm.charge_copy(data.nbytes)

    def load(self, slot: int) -> np.ndarray:
        return self._blocks[slot]

    def __contains__(self, slot: int) -> bool:
        return slot in self._blocks


def sloav_alltoallv(comm: Communicator, sendbuf: np.ndarray,
                    sendcounts: Sequence[int], sdispls: Sequence[int],
                    recvbuf: np.ndarray, recvcounts: Sequence[int],
                    rdispls: Sequence[int], *, tag_base: int = 0) -> None:
    """Non-uniform all-to-all via the SLOAV algorithm (basic-Bruck
    orientation, coupled combined-buffer exchange, final rotation + scan).
    """
    p, rank = comm.size, comm.rank
    raw_max = int(np.asarray(sendcounts, dtype=np.int64).max(initial=0))
    if raw_max > _META_MAX:
        raise ValueError(
            f"block sizes above {_META_MAX} bytes overflow SLOAV's 4-byte "
            f"size entries (got {raw_max})"
        )
    sview = as_byte_view(sendbuf, "sendbuf")
    rview = as_byte_view(recvbuf, "recvbuf")
    scounts, sdis = checked_counts_displs(sendcounts, sdispls, p,
                                          sview.nbytes, "send")
    rcounts, rdis = checked_counts_displs(recvcounts, rdispls, p,
                                          rview.nbytes, "recv")

    with comm.phase(PHASE_SETUP):
        # Rotation index array (SLOAV's contribution): in basic-Bruck
        # orientation, working slot j initially holds the caller's block
        # destined to (rank + j) % P.
        rot = (rank + np.arange(p, dtype=np.int64)) % p
        comm.charge_compute(p * 1.0e-9)
        temp = _GrowableTemp(comm, p)
        cur_counts = scounts.copy()   # size of the block at slot j, keyed
        # by the original destination index rot[j]

    with comm.phase(PHASE_COMM):
        header_out = np.empty(1, dtype=_META_DTYPE)
        for k in range(num_steps(p)):
            dist = send_block_distances(k, p)   # slots: basic => slot == i
            if not dist:
                continue
            m = len(dist)
            dst = (rank + (1 << k)) % p
            src_rank = (rank - (1 << k)) % p
            keys = [int(rot[j]) for j in dist]
            meta_out = np.asarray([cur_counts[b] for b in keys],
                                  dtype=_META_DTYPE)
            # Combined buffer: [size array | packed data blocks].
            data_total = int(meta_out.sum())
            combined = np.empty(4 * m + data_total, dtype=np.uint8)
            combined[:4 * m] = meta_out.view(np.uint8)
            comm.charge_copy(4 * m)             # §6.1(1): meta packed in
            pos = 4 * m
            for a, j in enumerate(dist):
                cnt = int(meta_out[a])
                if cnt:
                    if j in temp:
                        combined[pos:pos + cnt] = temp.load(j)[:cnt]
                    else:
                        off = int(sdis[keys[a]])
                        combined[pos:pos + cnt] = sview[off:off + cnt]
                    comm.charge_copy(cnt)
                pos += cnt
            # Header message: the combined buffer's size.  Both messages
            # are control plane — SLOAV couples the size array *into* the
            # data message (the §6.1(1) flaw), so the receiver must read
            # the combined buffer's contents to unpack it.  SLOAV therefore
            # moves real bytes even in phantom wire mode; its clocks match
            # trivially.
            header_out[0] = combined.nbytes
            header_in = np.empty(1, dtype=_META_DTYPE)
            comm.sendrecv(header_out, dst, tag_base + 2 * k,
                          header_in, src_rank, tag_base + 2 * k,
                          control=True)
            incoming = np.empty(int(header_in[0]), dtype=np.uint8)
            comm.sendrecv(combined, dst, tag_base + 2 * k + 1,
                          incoming, src_rank, tag_base + 2 * k + 1,
                          control=True)
            # Unpack: separate meta from data (§6.1(1) again), then park
            # every received block in the temp store — SLOAV defers final
            # placement to the scan.
            meta_in = incoming[:4 * m].copy().view(_META_DTYPE)
            comm.charge_copy(4 * m)
            pos = 4 * m
            for a, j in enumerate(dist):
                cnt = int(meta_in[a])
                temp.store(j, incoming[pos:pos + cnt])
                pos += cnt
                cur_counts[keys[a]] = cnt

    with comm.phase(PHASE_ROTATE_OUT):
        # Physical final rotation: slot j holds the block from source
        # (rank - j) % P; rotate the pointer array into source order.
        rotated: Dict[int, np.ndarray] = {}
        for j in range(1, p):
            src = (rank - j) % p
            if j in temp:
                block = temp.load(j)
                rotated[src] = block
                comm.charge_copy(block.nbytes)

    with comm.phase(PHASE_SCAN):
        # Final scan: copy every block from temp/send into the receive
        # buffer at its rdispls position.
        n_self = int(scounts[rank])
        if n_self:
            rview[rdis[rank]:rdis[rank] + n_self] = \
                sview[sdis[rank]:sdis[rank] + n_self]
            comm.charge_copy(n_self)
        for src in range(p):
            if src == rank:
                continue
            cnt = int(rcounts[src])
            if cnt != (rotated[src].nbytes if src in rotated else 0):
                raise ValueError(
                    f"rank {rank}: block from source {src} arrived with "
                    f"{rotated[src].nbytes if src in rotated else 0} bytes "
                    f"but recvcounts promises {cnt}"
                )
            if cnt:
                rview[rdis[src]:rdis[src] + cnt] = rotated[src]
                comm.charge_copy(cnt)

"""Two-phase Bruck — the paper's flagship non-uniform all-to-all
(§3.2, Algorithm 1, Figs. 3–5).

Extending Bruck to variable block sizes poses two problems: (a) a rank
does not know how many bytes it will receive at each of the ``log2 P``
steps, and (b) intermediate blocks can outgrow the slots of the send or
receive buffer.  Two-phase Bruck solves (a) with a **coupled metadata
exchange** — each step first sends the sizes of the blocks about to move
(one 4-byte integer each), so the partner can post an exact-size receive —
and (b) with a **monolithic working buffer** ``W`` of ``P × N`` bytes
(``N`` = global max block size, found with one allreduce), where slot ``j``
of ``W`` parks any in-transit block at working slot ``j``.

The communication structure is zero-rotation Bruck's: the rotation index
array ``I[j] = (2p - j) % P`` replaces the initial rotation; the reversed
send direction removes the final rotation; blocks received for the last
time are deposited *directly* at their ``rdispls`` position in the receive
buffer (no final scan).  A block's ``status`` flag says whether its current
bytes live in the caller's send buffer (never moved) or in ``W``; its
current size is tracked in a working copy of ``sendcounts`` keyed, like
``status``, by the original block index ``I[slot]`` — Algorithm 1's exact
bookkeeping.

Per step the algorithm pays **two** latencies (metadata + data) but moves
only the true bytes; versus padded Bruck's one latency but ``N``-padded
bytes — Eq. (1)–(3)'s trade.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ...simmpi.communicator import Communicator
from ..common import (
    as_byte_view,
    checked_counts_displs,
    num_steps,
    rotation_index_array,
    send_block_distances,
)

__all__ = ["two_phase_bruck"]

PHASE_SETUP = "setup"
PHASE_META = "metadata_exchange"
PHASE_DATA = "data_exchange"

_META_DTYPE = np.int32  # the paper's model charges 4 bytes per size entry
_META_MAX = np.iinfo(_META_DTYPE).max


def two_phase_bruck(comm: Communicator, sendbuf: np.ndarray,
                    sendcounts: Sequence[int], sdispls: Sequence[int],
                    recvbuf: np.ndarray, recvcounts: Sequence[int],
                    rdispls: Sequence[int], *, tag_base: int = 0) -> None:
    """Non-uniform all-to-all via coupled metadata/data Bruck exchange.

    Same contract as ``MPI_Alltoallv`` over ``MPI_BYTE``: counts and
    displacements in bytes, flat byte buffers.
    """
    p, rank = comm.size, comm.rank
    raw_max = int(np.asarray(sendcounts, dtype=np.int64).max(initial=0))
    if raw_max > _META_MAX:
        raise ValueError(
            f"block sizes above {_META_MAX} bytes overflow the 4-byte "
            f"metadata entries (got {raw_max})"
        )
    sview = as_byte_view(sendbuf, "sendbuf")
    rview = as_byte_view(recvbuf, "recvbuf")
    scounts, sdis = checked_counts_displs(sendcounts, sdispls, p,
                                          sview.nbytes, "send")
    rcounts, rdis = checked_counts_displs(recvcounts, rdispls, p,
                                          rview.nbytes, "recv")

    with comm.phase(PHASE_SETUP):
        # Algorithm 1 lines 1-5: global max block size, working buffer W,
        # rotation index array I.
        local_max = int(scounts.max()) if p else 0
        max_n = int(comm.allreduce(local_max, op="max"))
        rot = rotation_index_array(rank, p)          # I[j] = (2p - j) % P
        comm.charge_compute(p * 1.0e-9)
        if max_n == 0:
            return
        work = np.empty(p * max_n, dtype=np.uint8)   # monolithic buffer W
        # Working size of the block currently at slot j, keyed by the
        # original block index I[j] (Algorithm 1 keeps it in sendcounts).
        cur_counts = scounts.copy()
        # status[b] == True: the block keyed b has moved and lives in W.
        status = np.zeros(p, dtype=bool)

    # Self block: delivered locally, never enters the exchange.
    n_self = int(scounts[rank])
    if n_self:
        rview[rdis[rank]:rdis[rank] + n_self] = \
            sview[sdis[rank]:sdis[rank] + n_self]
        comm.charge_copy(n_self)

    for k in range(num_steps(p)):
        dist = send_block_distances(k, p)            # lines 8-10
        if not dist:
            continue
        m = len(dist)
        slots = [(i + rank) % p for i in dist]       # sd[] slot indices
        keys = [int(rot[j]) for j in slots]          # I[sd[i]]
        send_rank = (rank - (1 << k)) % p            # line 14
        recv_rank = (rank + (1 << k)) % p            # line 15

        with comm.phase(PHASE_META):
            # Lines 11-13, 16: exchange the sizes of the moving blocks.
            meta_out = np.asarray([cur_counts[b] for b in keys],
                                  dtype=_META_DTYPE)
            meta_in = np.empty(m, dtype=_META_DTYPE)
            comm.sendrecv(meta_out, send_rank, tag_base + 2 * k,
                          meta_in, recv_rank, tag_base + 2 * k)

        with comm.phase(PHASE_DATA):
            # Lines 17-24: gather the moving blocks into one message,
            # drawing from W (moved before) or the send buffer (fresh).
            out_total = int(meta_out.sum())
            stage = np.empty(out_total, dtype=np.uint8)
            pos = 0
            for a in range(m):
                cnt = int(meta_out[a])
                if cnt:
                    if status[keys[a]]:
                        off = slots[a] * max_n
                        stage[pos:pos + cnt] = work[off:off + cnt]
                    else:
                        off = int(sdis[keys[a]])
                        stage[pos:pos + cnt] = sview[off:off + cnt]
                    comm.charge_copy(cnt)
                pos += cnt
            sreq = comm.isend(stage, send_rank, tag_base + 2 * k + 1)
            in_total = int(meta_in.sum())
            incoming = np.empty(in_total, dtype=np.uint8)
            rreq = comm.irecv(incoming, recv_rank, tag_base + 2 * k + 1)
            sreq.wait()
            rreq.wait()
            # Lines 25-33: scatter; finished blocks (no set bit above k in
            # their distance) go straight to their final rdispls position,
            # in-transit blocks park in W at their slot.
            pos = 0
            for a in range(m):
                cnt = int(meta_in[a])
                finished = dist[a] < (1 << (k + 1))  # line 26
                if finished and cnt != int(rcounts[slots[a]]):
                    raise ValueError(
                        f"rank {rank}: block from source {slots[a]} arrived "
                        f"with {cnt} bytes but recvcounts promises "
                        f"{int(rcounts[slots[a]])} (mismatched counts "
                        f"between sender and receiver)"
                    )
                if cnt:
                    if finished:
                        # Final layout: the block at slot j comes from
                        # source j, so rdispls is indexed by the slot.
                        off = int(rdis[slots[a]])
                        rview[off:off + cnt] = incoming[pos:pos + cnt]
                    else:
                        off = slots[a] * max_n
                        work[off:off + cnt] = incoming[pos:pos + cnt]
                    comm.charge_copy(cnt)
                pos += cnt
                status[keys[a]] = True               # line 31
                cur_counts[keys[a]] = cnt            # line 32

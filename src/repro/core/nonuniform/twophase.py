"""Two-phase Bruck — the paper's flagship non-uniform all-to-all
(§3.2, Algorithm 1, Figs. 3–5).

Extending Bruck to variable block sizes poses two problems: (a) a rank
does not know how many bytes it will receive at each of the ``log2 P``
steps, and (b) intermediate blocks can outgrow the slots of the send or
receive buffer.  Two-phase Bruck solves (a) with a **coupled metadata
exchange** — each step first sends the sizes of the blocks about to move
(one 4-byte integer each), so the partner can post an exact-size receive —
and (b) with a **monolithic working buffer** ``W`` of ``P × N`` bytes
(``N`` = global max block size, found with one allreduce), where slot ``j``
of ``W`` parks any in-transit block at working slot ``j``.

The communication structure is zero-rotation Bruck's: the rotation index
array ``I[j] = (2p - j) % P`` replaces the initial rotation; the reversed
send direction removes the final rotation; blocks received for the last
time are deposited *directly* at their ``rdispls`` position in the receive
buffer (no final scan).  A block's ``status`` flag says whether its current
bytes live in the caller's send buffer (never moved) or in ``W``; its
current size is tracked in a working copy of ``sendcounts`` keyed, like
``status``, by the original block index ``I[slot]`` — Algorithm 1's exact
bookkeeping.

Per step the algorithm pays **two** latencies (metadata + data) but moves
only the true bytes; versus padded Bruck's one latency but ``N``-padded
bytes — Eq. (1)–(3)'s trade.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ...simmpi.communicator import Communicator
from ...simmpi.datatype import gather_index
from ..common import (
    as_byte_view,
    bruck_substeps,
    checked_counts_displs,
    rotation_index_array,
)

__all__ = ["two_phase_bruck"]

PHASE_SETUP = "setup"
PHASE_META = "metadata_exchange"
PHASE_DATA = "data_exchange"

_META_DTYPE = np.int32  # the paper's model charges 4 bytes per size entry
_META_MAX = np.iinfo(_META_DTYPE).max


def two_phase_bruck(comm: Communicator, sendbuf: np.ndarray,
                    sendcounts: Sequence[int], sdispls: Sequence[int],
                    recvbuf: np.ndarray, recvcounts: Sequence[int],
                    rdispls: Sequence[int], *, tag_base: int = 0,
                    radix: int = 2) -> None:
    """Non-uniform all-to-all via coupled metadata/data Bruck exchange.

    Same contract as ``MPI_Alltoallv`` over ``MPI_BYTE``: counts and
    displacements in bytes, flat byte buffers.  ``radix`` selects the
    base-``r`` digit schedule — each substep still pays the coupled
    metadata + data latency pair, so higher radix trades fewer rounds
    (``ceil(log_r P)``) for ``r - 1`` message pairs per round.
    """
    p, rank = comm.size, comm.rank
    raw_max = int(np.asarray(sendcounts, dtype=np.int64).max(initial=0))
    if raw_max > _META_MAX:
        raise ValueError(
            f"block sizes above {_META_MAX} bytes overflow the 4-byte "
            f"metadata entries (got {raw_max})"
        )
    sview = as_byte_view(sendbuf, "sendbuf")
    rview = as_byte_view(recvbuf, "recvbuf")
    scounts, sdis = checked_counts_displs(sendcounts, sdispls, p,
                                          sview.nbytes, "send")
    rcounts, rdis = checked_counts_displs(recvcounts, rdispls, p,
                                          rview.nbytes, "recv")

    with comm.phase(PHASE_SETUP):
        # Algorithm 1 lines 1-5: global max block size, working buffer W,
        # rotation index array I.
        local_max = int(scounts.max()) if p else 0
        max_n = int(comm.allreduce(local_max, op="max"))
        rot = rotation_index_array(rank, p)          # I[j] = (2p - j) % P
        comm.charge_compute(p * 1.0e-9)
        if max_n == 0:
            return
        work = np.empty(p * max_n, dtype=np.uint8)   # monolithic buffer W
        # Working size of the block currently at slot j, keyed by the
        # original block index I[j] (Algorithm 1 keeps it in sendcounts).
        cur_counts = scounts.copy()
        # status[b] == True: the block keyed b has moved and lives in W.
        status = np.zeros(p, dtype=bool)

    # Self block: delivered locally, never enters the exchange.
    n_self = int(scounts[rank])
    if n_self:
        if comm.payload_enabled:
            rview[rdis[rank]:rdis[rank] + n_self] = \
                sview[sdis[rank]:sdis[rank] + n_self]
        comm.charge_copy(n_self)

    for sub in bruck_substeps(p, radix):
        dist = sub.distances                         # lines 8-10
        m = len(dist)
        dist_arr = np.asarray(dist, dtype=np.int64)
        slots = (dist_arr + rank) % p                # sd[] slot indices
        keys = rot[slots]                            # I[sd[i]]
        send_rank = (rank - sub.jump) % p            # line 14
        recv_rank = (rank + sub.jump) % p            # line 15
        meta_tag = tag_base + 2 * sub.index
        data_tag = tag_base + 2 * sub.index + 1

        with comm.phase(PHASE_META):
            # Lines 11-13, 16: exchange the sizes of the moving blocks.
            # Control plane: the receiver reads these sizes to post its
            # exact-size data receive, so they carry real bytes even in
            # phantom wire mode.
            meta_out = cur_counts[keys].astype(_META_DTYPE)
            meta_in = np.empty(m, dtype=_META_DTYPE)
            comm.sendrecv(meta_out, send_rank, meta_tag,
                          meta_in, recv_rank, meta_tag,
                          control=True)

        with comm.phase(PHASE_DATA):
            # Lines 17-24: gather the moving blocks into one message,
            # drawing from W (moved before) or the send buffer (fresh).
            # The gather is two committed-index fancy-indexing calls (one
            # per source buffer) instead of a per-block Python loop; the
            # per-block copies are charged in the same order as before.
            counts_out = meta_out.astype(np.int64)
            out_total = int(counts_out.sum())
            stage = np.empty(out_total, dtype=np.uint8)
            if comm.payload_enabled and out_total:
                out_starts = np.cumsum(counts_out) - counts_out
                moved = status[keys]
                src_offs = np.where(moved, slots * max_n, sdis[keys])
                for grp, src in ((moved, work), (~moved, sview)):
                    if grp.any():
                        stage[gather_index(out_starts[grp], counts_out[grp])] = \
                            src[gather_index(src_offs[grp], counts_out[grp])]
            comm.charge_copies(counts_out)
            sreq = comm.isend(stage, send_rank, data_tag)
            counts_in = meta_in.astype(np.int64)
            in_total = int(counts_in.sum())
            incoming = np.empty(in_total, dtype=np.uint8)
            rreq = comm.irecv(incoming, recv_rank, data_tag)
            sreq.wait()
            rreq.wait()
            # Lines 25-33: scatter; finished blocks (no set bit above k in
            # their distance) go straight to their final rdispls position,
            # in-transit blocks park in W at their slot.
            finished = dist_arr < radix ** (sub.step + 1)  # line 26
            mismatch = finished & (counts_in != rcounts[slots])
            if mismatch.any():
                a = int(np.argmax(mismatch))
                raise ValueError(
                    f"rank {rank}: block from source {int(slots[a])} arrived "
                    f"with {int(counts_in[a])} bytes but recvcounts promises "
                    f"{int(rcounts[slots[a]])} (mismatched counts "
                    f"between sender and receiver)"
                )
            if comm.payload_enabled and in_total:
                in_starts = np.cumsum(counts_in) - counts_in
                # Final layout: the block at slot j comes from source j,
                # so rdispls is indexed by the slot.
                dst_offs = np.where(finished, rdis[slots], slots * max_n)
                for grp, dst in ((finished, rview), (~finished, work)):
                    if grp.any():
                        dst[gather_index(dst_offs[grp], counts_in[grp])] = \
                            incoming[gather_index(in_starts[grp], counts_in[grp])]
            comm.charge_copies(counts_in)
            status[keys] = True                      # line 31
            cur_counts[keys] = counts_in             # line 32

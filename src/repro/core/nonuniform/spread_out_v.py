"""Spread-out algorithm for non-uniform all-to-all (paper §4.1 baseline).

The direct generalization of :mod:`repro.core.uniform.spread_out` to
variable block sizes — nonblocking ``Isend``/``Irecv`` per peer.  This is
both the paper's explicit "Spread-out" comparison line and the structural
stand-in for vendor ``MPI_Alltoallv`` (which popular MPI implementations
build exclusively from spread-out variants; that gap is the paper's whole
motivation).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ...simmpi.communicator import Communicator
from ...simmpi.request import Request
from ..common import as_byte_view, checked_counts_displs

__all__ = ["spread_out_v"]


def spread_out_v(comm: Communicator, sendbuf: np.ndarray,
                 sendcounts: Sequence[int], sdispls: Sequence[int],
                 recvbuf: np.ndarray, recvcounts: Sequence[int],
                 rdispls: Sequence[int], *, tag_base: int = 0) -> None:
    """Non-uniform all-to-all via nonblocking pairwise exchange.

    Counts and displacements are in bytes over flat byte buffers, exactly
    like ``MPI_Alltoallv`` over ``MPI_BYTE``.
    """
    p, rank = comm.size, comm.rank
    sview = as_byte_view(sendbuf, "sendbuf")
    rview = as_byte_view(recvbuf, "recvbuf")
    scounts, sdis = checked_counts_displs(sendcounts, sdispls, p,
                                          sview.nbytes, "send")
    rcounts, rdis = checked_counts_displs(recvcounts, rdispls, p,
                                          rview.nbytes, "recv")

    n_self = int(scounts[rank])
    if n_self:
        if comm.payload_enabled:
            rview[rdis[rank]:rdis[rank] + n_self] = \
                sview[sdis[rank]:sdis[rank] + n_self]
        comm.charge_copy(n_self)
    reqs: List[Request] = []
    for off in range(1, p):
        src = (rank - off) % p
        cnt = int(rcounts[src])
        reqs.append(comm.irecv(rview[rdis[src]:rdis[src] + cnt], src,
                               tag=tag_base))
    for off in range(1, p):
        dst = (rank + off) % p
        cnt = int(scounts[dst])
        reqs.append(comm.isend(sview[sdis[dst]:sdis[dst] + cnt], dst,
                               tag=tag_base))
    comm.waitall(reqs)

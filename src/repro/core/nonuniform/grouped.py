"""Grouped (leader-based) non-uniform all-to-all — the §6 related work.

Jackson & Booth's *planned AlltoAllv* and Plummer & Refson's LPAR-custom
alltoallv (paper §6) reduce network congestion by restricting the
inter-node exchange to one **leader** rank per group: members funnel
their data to the leader (the intra-node ``MPI_Gatherv`` step), leaders
run the all-to-all among themselves over *aggregated* messages, and
results are scattered back (``MPI_Scatterv``).

The trade: ``P/g`` participants instead of ``P`` and ``g²``-times larger
leader messages (better per-byte efficiency on the eager-penalized
fabric), against two extra full-volume hops (member→leader and
leader→member).  The paper notes these schemes suit *fixed, repeated*
loads on shared-memory clusters; the bench
(``benchmarks/bench_grouped.py``) shows where that trade wins and loses
against two-phase Bruck under this simulator's cost model.

Implementation notes: group ``i`` is ranks ``[i*g, (i+1)*g)`` (the last
group may be smaller), the leader is the lowest rank.  Phase 2 sends, per
leader pair, a count header followed by the aggregated payload laid out
source-major then destination — the deterministic order both sides derive
independently.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ...simmpi.communicator import Communicator
from ..common import as_byte_view, checked_counts_displs

__all__ = ["grouped_alltoallv"]

PHASE_GATHER = "gather_to_leader"
PHASE_LEADERS = "leader_exchange"
PHASE_SCATTER = "scatter_from_leader"

_TAG_UP_COUNTS = 0
_TAG_UP_DATA = 1
_TAG_LL_COUNTS = 2
_TAG_LL_DATA = 3
_TAG_DOWN_DATA = 4


def _group_of(rank: int, group_size: int) -> int:
    return rank // group_size


def _leader_of(rank: int, group_size: int) -> int:
    return (rank // group_size) * group_size


def _members(group: int, group_size: int, nprocs: int) -> List[int]:
    lo = group * group_size
    return list(range(lo, min(lo + group_size, nprocs)))


def grouped_alltoallv(comm: Communicator, sendbuf: np.ndarray,
                      sendcounts: Sequence[int], sdispls: Sequence[int],
                      recvbuf: np.ndarray, recvcounts: Sequence[int],
                      rdispls: Sequence[int], *, group_size: int = 8,
                      tag_base: int = 0) -> None:
    """Non-uniform all-to-all through per-group leader ranks.

    ``group_size`` is the emulated "node" width (the paper's schemes group
    by shared-memory node); every rank must pass the same value.
    """
    p, rank = comm.size, comm.rank
    if group_size < 1:
        raise ValueError(f"group_size must be >= 1, got {group_size}")
    sview = as_byte_view(sendbuf, "sendbuf")
    rview = as_byte_view(recvbuf, "recvbuf")
    scounts, sdis = checked_counts_displs(sendcounts, sdispls, p,
                                          sview.nbytes, "send")
    rcounts, rdis = checked_counts_displs(recvcounts, rdispls, p,
                                          rview.nbytes, "recv")
    # The gather step forwards each member's buffer prefix wholesale, so
    # this scheme requires the canonical packed send layout (displs =
    # prefix sums) — the layout every BPRA-style producer uses anyway.
    canonical = np.zeros(p, dtype=np.int64)
    if p > 1:
        np.cumsum(scounts[:-1], out=canonical[1:])
    if not np.array_equal(sdis, canonical):
        raise ValueError(
            "grouped_alltoallv requires the canonical packed send layout "
            "(sdispls must be the prefix sums of sendcounts)")

    g = min(group_size, p)
    my_group = _group_of(rank, g)
    leader = _leader_of(rank, g)
    n_groups = (p + g - 1) // g
    is_leader = rank == leader
    my_members = _members(my_group, g, p)

    t = tag_base

    # ------------------------------------------------------------------
    # Phase 1: members funnel counts + data to their leader.
    # ------------------------------------------------------------------
    with comm.phase(PHASE_GATHER):
        if not is_leader:
            # The count vector is control plane (the leader reads it to
            # size buffers and route blocks); the data funnel is not.
            comm.send(scounts, leader, t + _TAG_UP_COUNTS, control=True)
            comm.send(sview[: int(scounts.sum())], leader, t + _TAG_UP_DATA)
        group_counts: Dict[int, np.ndarray] = {}
        group_data: Dict[int, np.ndarray] = {}
        group_displs: Dict[int, np.ndarray] = {}
        if is_leader:
            group_counts[rank] = scounts
            group_displs[rank] = sdis
            group_data[rank] = sview
            for member in my_members:
                if member == rank:
                    continue
                mcounts = np.empty(p, dtype=np.int64)
                comm.recv(mcounts, member, t + _TAG_UP_COUNTS)
                mbuf = np.empty(int(_extent(mcounts, member)), dtype=np.uint8)
                comm.recv(mbuf, member, t + _TAG_UP_DATA)
                group_counts[member] = mcounts
                group_displs[member] = None  # filled below
                group_data[member] = mbuf
            # Displacements for received member buffers: the member sent
            # its buffer prefix as-is, so offsets are the member's own
            # sdispls — which the leader cannot see.  The contract for
            # this scheme therefore requires the *canonical packed
            # layout* (displs = prefix sums), which ``checked`` verified
            # for our own buffer and members are trusted to use.
            for member in my_members:
                if member == rank or group_counts[member] is None:
                    continue
                c = group_counts[member]
                d = np.zeros(p, dtype=np.int64)
                if p > 1:
                    np.cumsum(c[:-1], out=d[1:])
                group_displs[member] = d

    # ------------------------------------------------------------------
    # Phase 2: leaders exchange aggregated blocks (counts then data).
    # ------------------------------------------------------------------
    with comm.phase(PHASE_LEADERS):
        incoming_by_pair: Dict[tuple, np.ndarray] = {}
        if is_leader:
            reqs = []
            # Post count headers + aggregated data to every other leader.
            out_counts: Dict[int, np.ndarray] = {}
            out_blobs: Dict[int, np.ndarray] = {}
            for og in range(n_groups):
                other_leader = og * g
                if og == my_group:
                    continue
                dsts = _members(og, g, p)
                cnts = np.asarray(
                    [group_counts[src][d] for src in my_members
                     for d in dsts], dtype=np.int64)
                blob = np.empty(int(cnts.sum()), dtype=np.uint8)
                pos = 0
                for src in my_members:
                    sd = group_displs[src]
                    buf = group_data[src]
                    for d in dsts:
                        c = int(group_counts[src][d])
                        if c:
                            if comm.payload_enabled:
                                off = int(sd[d])
                                blob[pos:pos + c] = buf[off:off + c]
                            comm.charge_copy(c)
                        pos += c
                out_counts[other_leader] = cnts
                out_blobs[other_leader] = blob
            for other_leader in out_counts:
                reqs.append(comm.isend(out_counts[other_leader],
                                       other_leader, t + _TAG_LL_COUNTS,
                                       control=True))
                reqs.append(comm.isend(out_blobs[other_leader],
                                       other_leader, t + _TAG_LL_DATA))
            # Receive from every other leader.
            for og in range(n_groups):
                other_leader = og * g
                if og == my_group:
                    continue
                srcs = _members(og, g, p)
                cnts = np.empty(len(srcs) * len(my_members), dtype=np.int64)
                comm.recv(cnts, other_leader, t + _TAG_LL_COUNTS)
                blob = np.empty(int(cnts.sum()), dtype=np.uint8)
                comm.recv(blob, other_leader, t + _TAG_LL_DATA)
                pos = 0
                idx = 0
                for src in srcs:
                    for d in my_members:
                        c = int(cnts[idx])
                        incoming_by_pair[(src, d)] = blob[pos:pos + c]
                        pos += c
                        idx += 1
            comm.waitall(reqs)

    # ------------------------------------------------------------------
    # Phase 3: leaders deliver, members receive and place.
    # ------------------------------------------------------------------
    with comm.phase(PHASE_SCATTER):
        if is_leader:
            for member in my_members:
                # Source-ascending concatenation of everything destined
                # to `member`.  Phantom mode skips the concatenation but
                # still sizes the blob (from the real count headers) and
                # charges the same per-block copies.
                parts = []
                total = 0
                for src in range(p):
                    if _group_of(src, g) == my_group:
                        c = int(group_counts[src][member])
                        if c:
                            if comm.payload_enabled:
                                off = int(group_displs[src][member])
                                parts.append(group_data[src][off:off + c])
                            comm.charge_copy(c)
                        total += c
                    else:
                        part = incoming_by_pair.get((src, member))
                        if part is not None:
                            if comm.payload_enabled:
                                parts.append(part)
                            total += part.nbytes
                if comm.payload_enabled:
                    blob = (np.concatenate(parts) if parts
                            else np.empty(0, dtype=np.uint8))
                else:
                    blob = np.empty(total, dtype=np.uint8)
                if member == rank:
                    _place(comm, rview, rcounts, rdis, blob, p)
                else:
                    comm.send(blob, member, t + _TAG_DOWN_DATA)
        else:
            blob = np.empty(int(rcounts.sum()), dtype=np.uint8)
            comm.recv(blob, leader, t + _TAG_DOWN_DATA)
            _place(comm, rview, rcounts, rdis, blob, p)


def _extent(counts: np.ndarray, member: int) -> int:
    """Bytes of a member's canonical packed send buffer."""
    return int(counts.sum())


def _place(comm: Communicator, rview: np.ndarray, rcounts: np.ndarray,
           rdis: np.ndarray, blob: np.ndarray, p: int) -> None:
    """Scatter a source-ascending blob into the receive buffer."""
    pos = 0
    for src in range(p):
        c = int(rcounts[src])
        if c:
            if comm.payload_enabled:
                rview[rdis[src]:rdis[src] + c] = blob[pos:pos + c]
            comm.charge_copy(c)
        pos += c

"""Locality-aware Bruck variants for the two-level hierarchical machine
model (see ``repro.simmpi.machine``).

Both algorithms elect the lowest rank of every node as its **leader**
(``machine.ppn`` consecutive ranks per node) and restrict the expensive
inter-node exchange to leaders:

1. **node gather** — members funnel their send data to the leader over
   the cheap intra-node tier;
2. **inter-node Bruck** — leaders run a Bruck exchange among themselves
   over *node-aggregated* super-blocks, paying the inter-node α/β and the
   per-link congestion only ``P/ppn`` wide;
3. **node scatter** — leaders deliver each member's received column over
   the intra-node tier.

``locality_padded_bruck`` aggregates ``ppn² · N``-padded super-blocks and
runs zero-rotation Bruck over nodes (one message per step);
``locality_two_phase_bruck`` keeps true sizes and runs the coupled
metadata/data exchange over nodes (two messages per step, no padding).

On the flat machine (``ppn <= 1``) both delegate verbatim to their flat
counterparts — same messages, same charges, same clocks — so every
existing flat benchmark and equivalence result is unchanged.

Like ``grouped_alltoallv``, the two-phase variant forwards each member's
buffer prefix wholesale and therefore requires the canonical packed send
layout (``sdispls`` = prefix sums of ``sendcounts``).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ...simmpi.communicator import Communicator
from ...simmpi.datatype import gather_index
from ..common import (
    as_byte_view,
    block_moved_before,
    checked_counts_displs,
    num_steps,
    rotation_index_array,
    send_block_distances,
)
from .padded import PHASE_PAD, PHASE_SCAN, padded_bruck
from .twophase import _META_DTYPE, _META_MAX, two_phase_bruck

__all__ = ["locality_padded_bruck", "locality_two_phase_bruck"]

PHASE_NODE_GATHER = "node_gather"
PHASE_INTER = "inter_bruck"
PHASE_NODE_SCATTER = "node_scatter"
PHASE_SETUP = "setup"
PHASE_META = "metadata_exchange"
PHASE_DATA = "data_exchange"


def _node_shape(comm: Communicator, p: int):
    """(ppn, node count, my node, my leader, my node's size)."""
    ppn = min(int(comm.machine.ppn), p)
    nn = (p + ppn - 1) // ppn
    g = comm.rank // ppn
    leader = g * ppn
    lsize = min(leader + ppn, p) - leader
    return ppn, nn, g, leader, lsize


def _node_size(h: int, ppn: int, p: int) -> int:
    return min((h + 1) * ppn, p) - h * ppn


def _place(comm: Communicator, rview: np.ndarray, rcounts: np.ndarray,
           rdis: np.ndarray, blob: np.ndarray, p: int) -> None:
    """Scatter a source-ascending blob into the receive buffer."""
    pos = 0
    for src in range(p):
        c = int(rcounts[src])
        if c:
            if comm.payload_enabled:
                rview[rdis[src]:rdis[src] + c] = blob[pos:pos + c]
            comm.charge_copy(c)
        pos += c


# ======================================================================
# padded variant
# ======================================================================

def locality_padded_bruck(comm: Communicator, sendbuf: np.ndarray,
                          sendcounts: Sequence[int], sdispls: Sequence[int],
                          recvbuf: np.ndarray, recvcounts: Sequence[int],
                          rdispls: Sequence[int], *,
                          tag_base: int = 0) -> None:
    """Node-aware padded Bruck: pad → gather → inter-node zero-rotation
    Bruck over ``ppn²·N`` super-blocks → scatter → scan.

    The super-block for destination node ``h`` is a ``ppn × ppn`` grid of
    ``N``-padded blocks — entry ``(j, i)`` is source member ``j``'s block
    for ``h``'s member ``i`` — so the inter-node exchange is uniform and
    reuses zero-rotation Bruck's slot/rotation machinery over nodes.
    """
    p, rank = comm.size, comm.rank
    ppn, nn, g, leader, lsize = _node_shape(comm, p)
    if ppn <= 1:
        return padded_bruck(comm, sendbuf, sendcounts, sdispls, recvbuf,
                            recvcounts, rdispls, tag_base=tag_base)
    sview = as_byte_view(sendbuf, "sendbuf")
    rview = as_byte_view(recvbuf, "recvbuf")
    scounts, sdis = checked_counts_displs(sendcounts, sdispls, p,
                                          sview.nbytes, "send")
    rcounts, rdis = checked_counts_displs(recvcounts, rdispls, p,
                                          rview.nbytes, "recv")
    is_leader = rank == leader
    K = num_steps(nn)
    t_up = tag_base
    t_step = tag_base + 1          # inter step k uses t_step + k
    t_down = tag_base + 1 + K

    # -- pad (identical to flat padded Bruck) ---------------------------
    with comm.phase(PHASE_PAD):
        local_max = int(scounts.max()) if p else 0
        max_n = int(comm.allreduce(local_max, op="max"))
        if max_n == 0:
            return
        row_offs = np.arange(p, dtype=np.int64) * max_n
        if comm.payload_enabled:
            padded = np.zeros(p * max_n, dtype=np.uint8)
            nz = scounts > 0
            if nz.any():
                padded[gather_index(row_offs[nz], scounts[nz])] = \
                    sview[gather_index(sdis[nz], scounts[nz])]
        else:
            padded = np.empty(p * max_n, dtype=np.uint8)
        comm.charge_copies(scounts)

    # -- members funnel their padded rows to the leader -----------------
    with comm.phase(PHASE_NODE_GATHER):
        if not is_leader:
            comm.send(padded, leader, t_up)
            rows = None
        else:
            rows = [padded]
            for j in range(1, lsize):
                mbuf = np.empty(p * max_n, dtype=np.uint8)
                comm.recv(mbuf, leader + j, t_up)
                rows.append(mbuf)

    # -- leaders: zero-rotation Bruck over node super-blocks ------------
    padded_recv = None
    if is_leader:
        super_n = ppn * ppn * max_n
        with comm.phase(PHASE_INTER):
            # Super-block layout: entry (j, i) at offset (j*ppn + i)*N.
            # A member row's blocks for node h are contiguous, so each
            # (h, j) pair is one hsize·N copy.
            node_send = np.empty((nn, super_n), dtype=np.uint8)
            for h in range(nn):
                hn = _node_size(h, ppn, p) * max_n
                src_off = h * ppn * max_n
                for j in range(lsize):
                    if comm.payload_enabled:
                        dst_off = j * ppn * max_n
                        node_send[h, dst_off:dst_off + hn] = \
                            rows[j][src_off:src_off + hn]
                    comm.charge_copy(hn)
            rot = rotation_index_array(g, nn)
            comm.charge_compute(nn * 1.0e-9)
            node_recv = np.empty((nn, super_n), dtype=np.uint8)
            if comm.payload_enabled:
                node_recv[g] = node_send[g]
            comm.charge_copy(super_n)
            staging = np.empty(((nn + 1) // 2) * super_n, dtype=np.uint8)
            for k in range(K):
                dist = send_block_distances(k, nn)
                if not dist:
                    continue
                m = len(dist)
                slots = (np.asarray(dist, dtype=np.int64) + g) % nn
                moved = np.asarray(
                    [block_moved_before(i, k) for i in dist], dtype=bool)
                dst = ((g - (1 << k)) % nn) * ppn
                src_rank = ((g + (1 << k)) % nn) * ppn
                stage = np.empty((m, super_n), dtype=np.uint8)
                if comm.payload_enabled:
                    if moved.any():
                        stage[moved] = node_recv[slots[moved]]
                    if (~moved).any():
                        stage[~moved] = node_send[rot[slots[~moved]]]
                comm.charge_copies(np.full(m, super_n, dtype=np.int64))
                sreq = comm.isend(stage.reshape(-1), dst, tag=t_step + k)
                rbuf = staging[: m * super_n]
                rreq = comm.irecv(rbuf, src_rank, tag=t_step + k)
                sreq.wait()
                rreq.wait()
                if comm.payload_enabled:
                    node_recv[slots] = rbuf.reshape(m, super_n)
                comm.charge_copies(np.full(m, super_n, dtype=np.int64))

        # -- leaders deliver per-member columns -------------------------
        with comm.phase(PHASE_NODE_SCATTER):
            for i in range(lsize):
                col = np.empty(p * max_n, dtype=np.uint8)
                if comm.payload_enabled:
                    for s in range(p):
                        h, j = divmod(s, ppn)
                        off = (j * ppn + i) * max_n
                        col[s * max_n:(s + 1) * max_n] = \
                            node_recv[h, off:off + max_n]
                comm.charge_copies(np.full(p, max_n, dtype=np.int64))
                if i == 0:
                    padded_recv = col
                else:
                    comm.send(col, leader + i, t_down)
    else:
        with comm.phase(PHASE_NODE_SCATTER):
            padded_recv = np.empty(p * max_n, dtype=np.uint8)
            comm.recv(padded_recv, leader, t_down)

    # -- scan (identical to flat padded Bruck) --------------------------
    with comm.phase(PHASE_SCAN):
        if comm.payload_enabled:
            nz = rcounts > 0
            if nz.any():
                rview[gather_index(rdis[nz], rcounts[nz])] = \
                    padded_recv[gather_index(row_offs[nz], rcounts[nz])]
        comm.charge_copies(rcounts)


# ======================================================================
# two-phase variant
# ======================================================================

def locality_two_phase_bruck(comm: Communicator, sendbuf: np.ndarray,
                             sendcounts: Sequence[int],
                             sdispls: Sequence[int],
                             recvbuf: np.ndarray,
                             recvcounts: Sequence[int],
                             rdispls: Sequence[int], *,
                             tag_base: int = 0) -> None:
    """Node-aware two-phase Bruck: gather true bytes → inter-node coupled
    metadata/data Bruck over packed super-blobs → scatter.

    The moving unit is a whole node-to-node super-blob; its metadata is
    the ``ppn × ppn`` inner size table (origin member × destination
    member, 4 bytes per entry) from which the receiver derives both the
    exact data-receive size and, at the end, every block's scatter
    offset.  Requires the canonical packed send layout.
    """
    p, rank = comm.size, comm.rank
    ppn, nn, g, leader, lsize = _node_shape(comm, p)
    if ppn <= 1:
        return two_phase_bruck(comm, sendbuf, sendcounts, sdispls, recvbuf,
                               recvcounts, rdispls, tag_base=tag_base)
    raw_max = int(np.asarray(sendcounts, dtype=np.int64).max(initial=0))
    if raw_max > _META_MAX:
        raise ValueError(
            f"block sizes above {_META_MAX} bytes overflow the 4-byte "
            f"metadata entries (got {raw_max})"
        )
    sview = as_byte_view(sendbuf, "sendbuf")
    rview = as_byte_view(recvbuf, "recvbuf")
    scounts, sdis = checked_counts_displs(sendcounts, sdispls, p,
                                          sview.nbytes, "send")
    rcounts, rdis = checked_counts_displs(recvcounts, rdispls, p,
                                          rview.nbytes, "recv")
    canonical = np.zeros(p, dtype=np.int64)
    if p > 1:
        np.cumsum(scounts[:-1], out=canonical[1:])
    if not np.array_equal(sdis, canonical):
        raise ValueError(
            "locality_two_phase_bruck requires the canonical packed send "
            "layout (sdispls must be the prefix sums of sendcounts)")

    is_leader = rank == leader
    K = num_steps(nn)
    t_up_c = tag_base
    t_up_d = tag_base + 1
    t_meta = tag_base + 2          # step k uses t_meta + 2k
    t_data = tag_base + 3          # step k uses t_data + 2k
    t_down = tag_base + 2 + 2 * K

    # -- members funnel counts + packed rows to the leader --------------
    with comm.phase(PHASE_NODE_GATHER):
        if not is_leader:
            comm.send(scounts, leader, t_up_c, control=True)
            comm.send(sview[: int(scounts.sum())], leader, t_up_d)
            gcounts = gdata = gdis = None
        else:
            gcounts = [scounts]
            gdata = [sview]
            gdis = [sdis]
            for j in range(1, lsize):
                mcounts = np.empty(p, dtype=np.int64)
                comm.recv(mcounts, leader + j, t_up_c)
                mbuf = np.empty(int(mcounts.sum()), dtype=np.uint8)
                comm.recv(mbuf, leader + j, t_up_d)
                d = np.zeros(p, dtype=np.int64)
                if p > 1:
                    np.cumsum(mcounts[:-1], out=d[1:])
                gcounts.append(mcounts)
                gdata.append(mbuf)
                gdis.append(d)

    fin_blob = {}
    fin_table = {}
    if is_leader:
        with comm.phase(PHASE_SETUP):
            rot = rotation_index_array(g, nn)
            comm.charge_compute(nn * 1.0e-9)
            # cur_table[h, j, i]: bytes from my member j to node h's
            # member i, for the super-blob currently keyed by node h
            # (Algorithm 1's working sendcounts, lifted to node level).
            cur_table = np.zeros((nn, ppn, ppn), dtype=np.int64)
            for j in range(lsize):
                c = gcounts[j]
                for h in range(nn):
                    hsz = _node_size(h, ppn, p)
                    cur_table[h, j, :hsz] = c[h * ppn:h * ppn + hsz]
            status = np.zeros(nn, dtype=bool)
            store = {}                     # slot -> parked in-transit blob

        for k in range(K):
            dist = send_block_distances(k, nn)
            if not dist:
                continue
            m = len(dist)
            dist_arr = np.asarray(dist, dtype=np.int64)
            slots = (dist_arr + g) % nn
            keys = rot[slots]
            send_rank = ((g - (1 << k)) % nn) * ppn
            recv_rank = ((g + (1 << k)) % nn) * ppn

            with comm.phase(PHASE_META):
                meta_out = cur_table[keys].astype(_META_DTYPE)
                meta_in = np.empty((m, ppn, ppn), dtype=_META_DTYPE)
                comm.sendrecv(meta_out.reshape(-1), send_rank,
                              t_meta + 2 * k, meta_in.reshape(-1),
                              recv_rank, t_meta + 2 * k, control=True)

            with comm.phase(PHASE_DATA):
                totals_out = cur_table[keys].sum(axis=(1, 2))
                out_total = int(totals_out.sum())
                stage = np.empty(out_total, dtype=np.uint8)
                pos = 0
                for a in range(m):
                    key = int(keys[a])
                    slot = int(slots[a])
                    if status[key]:
                        # Parked blob: forwarded as one unit.
                        blob = store.pop(slot)
                        tot = int(totals_out[a])
                        if comm.payload_enabled:
                            stage[pos:pos + tot] = blob
                        comm.charge_copy(tot)
                        pos += tot
                    else:
                        # Fresh: one contiguous segment per member (the
                        # canonical layout keeps a node's blocks adjacent).
                        hsz = _node_size(key, ppn, p)
                        for j in range(lsize):
                            seg = int(gcounts[j][key * ppn:
                                                 key * ppn + hsz].sum())
                            if comm.payload_enabled and seg:
                                off = int(gdis[j][key * ppn])
                                stage[pos:pos + seg] = \
                                    gdata[j][off:off + seg]
                            comm.charge_copy(seg)
                            pos += seg
                sreq = comm.isend(stage, send_rank, t_data + 2 * k)
                tables_in = meta_in.astype(np.int64)
                totals_in = tables_in.sum(axis=(1, 2))
                in_total = int(totals_in.sum())
                incoming = np.empty(in_total, dtype=np.uint8)
                rreq = comm.irecv(incoming, recv_rank, t_data + 2 * k)
                sreq.wait()
                rreq.wait()
                finished = dist_arr < (1 << (k + 1))
                pos = 0
                for a in range(m):
                    tot = int(totals_in[a])
                    slot = int(slots[a])
                    if comm.payload_enabled:
                        parked = incoming[pos:pos + tot].copy()
                    else:
                        parked = np.empty(tot, dtype=np.uint8)
                    comm.charge_copy(tot)
                    if finished[a]:
                        # Super-blob from origin node `slot`, destined to
                        # my node.  Validate the slice addressed to me.
                        hsz = _node_size(slot, ppn, p)
                        exp = rcounts[slot * ppn:slot * ppn + hsz]
                        got = tables_in[a][:hsz, 0]
                        if (got != exp).any():
                            b = int(np.argmax(got != exp))
                            raise ValueError(
                                f"rank {rank}: block from source "
                                f"{slot * ppn + b} arrived with "
                                f"{int(got[b])} bytes but recvcounts "
                                f"promises {int(exp[b])} (mismatched "
                                f"counts between sender and receiver)")
                        fin_blob[slot] = parked
                        fin_table[slot] = tables_in[a]
                    else:
                        store[slot] = parked
                    pos += tot
                status[keys] = True
                cur_table[keys] = tables_in

    # -- leaders deliver; members receive and place ---------------------
    with comm.phase(PHASE_NODE_SCATTER):
        if is_leader:
            for i in range(lsize):
                parts = []
                total = 0
                for s in range(p):
                    h, j = divmod(s, ppn)
                    if h == g:
                        c = int(gcounts[j][leader + i])
                        if c:
                            if comm.payload_enabled:
                                off = int(gdis[j][leader + i])
                                parts.append(gdata[j][off:off + c])
                            comm.charge_copy(c)
                        total += c
                    else:
                        tbl = fin_table[h]
                        c = int(tbl[j, i])
                        if c:
                            if comm.payload_enabled:
                                # Blob layout is (origin member, dest
                                # member) row-major, zero-size entries
                                # contributing nothing.
                                off = int(tbl.ravel()[:j * ppn + i].sum())
                                parts.append(fin_blob[h][off:off + c])
                            comm.charge_copy(c)
                        total += c
                if comm.payload_enabled:
                    blob = (np.concatenate(parts) if parts
                            else np.empty(0, dtype=np.uint8))
                else:
                    blob = np.empty(total, dtype=np.uint8)
                if i == 0:
                    _place(comm, rview, rcounts, rdis, blob, p)
                else:
                    comm.send(blob, leader + i, t_down)
        else:
            blob = np.empty(int(rcounts.sum()), dtype=np.uint8)
            comm.recv(blob, leader, t_down)
            _place(comm, rview, rcounts, rdis, blob, p)

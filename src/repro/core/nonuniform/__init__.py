"""Non-uniform all-to-all algorithms (paper Section 3).

All implementations share the ``MPI_Alltoallv`` signature::

    fn(comm, sendbuf, sendcounts, sdispls, recvbuf, recvcounts, rdispls,
       *, tag_base=0)

with byte counts/displacements over flat byte buffers.  Use
:func:`alltoallv` to dispatch by name; ``"vendor"`` is the stand-in for the
vendor-optimized ``MPI_Alltoallv`` the paper benchmarks against.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ...simmpi.communicator import Communicator
from ..registry import get_algorithm, register_algorithm
from .grouped import grouped_alltoallv
from .locality import locality_padded_bruck, locality_two_phase_bruck
from .padded import padded_alltoall, padded_bruck
from .sloav import sloav_alltoallv
from .spread_out_v import spread_out_v
from .twophase import two_phase_bruck

__all__ = [
    "padded_bruck",
    "padded_alltoall",
    "two_phase_bruck",
    "spread_out_v",
    "sloav_alltoallv",
    "grouped_alltoallv",
    "locality_padded_bruck",
    "locality_two_phase_bruck",
    "alltoallv",
]

AlltoallvFn = Callable[..., None]

for _name, _fn, _desc, _radix in (
    ("padded_bruck", padded_bruck,
     "pad blocks to the global max, run uniform Bruck, compact", True),
    ("padded_alltoall", padded_alltoall,
     "pad blocks to the global max, run the builtin alltoall, compact",
     False),
    ("two_phase_bruck", two_phase_bruck,
     "the paper's two-phase Bruck (metadata exchange + packed payloads)",
     True),
    ("spread_out", spread_out_v,
     "pairwise Isend/Irecv spread-out baseline (alltoallv)", False),
    ("sloav", sloav_alltoallv,
     "send-layout-optimized alltoallv variant", False),
    ("grouped", grouped_alltoallv,
     "group-wise staged alltoallv variant", False),
    ("locality_padded_bruck", locality_padded_bruck,
     "node-aware padded Bruck: intra-node gather, inter-node Bruck "
     "over ppn^2-aggregated super-blocks, intra-node scatter", False),
    ("locality_two_phase_bruck", locality_two_phase_bruck,
     "node-aware two-phase Bruck: true-size super-blobs with coupled "
     "metadata over the inter-node tier", False),
):
    register_algorithm(_name, "nonuniform", _fn, _desc,
                       supports_radix=_radix)

def __getattr__(name: str):
    # One-release compatibility stub for the removed alias dict; use
    # ``list_algorithms("nonuniform")`` / ``get_algorithm(name,
    # "nonuniform")``.
    if name == "NONUNIFORM_ALGORITHMS":
        import warnings

        warnings.warn(
            "NONUNIFORM_ALGORITHMS is deprecated; use "
            "repro.core.registry.list_algorithms('nonuniform') / "
            "get_algorithm(name, 'nonuniform') instead",
            DeprecationWarning, stacklevel=2)
        from ..registry import deprecated_alias_dict

        return deprecated_alias_dict("nonuniform")
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")


def alltoallv(comm: Communicator, sendbuf: np.ndarray,
              sendcounts: Sequence[int], sdispls: Sequence[int],
              recvbuf: np.ndarray, recvcounts: Sequence[int],
              rdispls: Sequence[int], *,
              algorithm: str = "two_phase_bruck", tag_base: int = 0,
              radix: int = 2) -> None:
    """Non-uniform all-to-all dispatching on ``algorithm`` name.

    Names resolve through :mod:`repro.core.registry`; ``"vendor"`` is the
    stand-in for the vendor-optimized ``MPI_Alltoallv``.  ``radix`` other
    than 2 requires a radix-capable algorithm
    (``Algorithm.supports_radix``).
    """
    algo = get_algorithm(algorithm, kind="nonuniform")
    if radix != 2:
        if not algo.supports_radix:
            raise ValueError(
                f"algorithm {algo.name!r} does not support radix "
                f"{radix}; radix-capable nonuniform algorithms accept "
                f"radix=")
        algo.fn(comm, sendbuf, sendcounts, sdispls, recvbuf, recvcounts,
                rdispls, tag_base=tag_base, radix=radix)
    else:
        algo.fn(comm, sendbuf, sendcounts, sdispls, recvbuf, recvcounts,
                rdispls, tag_base=tag_base)

"""Non-uniform all-to-all algorithms (paper Section 3).

All implementations share the ``MPI_Alltoallv`` signature::

    fn(comm, sendbuf, sendcounts, sdispls, recvbuf, recvcounts, rdispls,
       *, tag_base=0)

with byte counts/displacements over flat byte buffers.  Use
:func:`alltoallv` to dispatch by name; ``"vendor"`` is the stand-in for the
vendor-optimized ``MPI_Alltoallv`` the paper benchmarks against.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

import numpy as np

from ...simmpi.communicator import Communicator
from .grouped import grouped_alltoallv
from .padded import padded_alltoall, padded_bruck
from .sloav import sloav_alltoallv
from .spread_out_v import spread_out_v
from .twophase import two_phase_bruck

__all__ = [
    "padded_bruck",
    "padded_alltoall",
    "two_phase_bruck",
    "spread_out_v",
    "sloav_alltoallv",
    "grouped_alltoallv",
    "NONUNIFORM_ALGORITHMS",
    "alltoallv",
]

AlltoallvFn = Callable[..., None]

#: Registry of every non-uniform scheme in the paper's evaluation
#: (Fig. 6 compares exactly these plus the vendor library).
NONUNIFORM_ALGORITHMS: Dict[str, AlltoallvFn] = {
    "padded_bruck": padded_bruck,
    "padded_alltoall": padded_alltoall,
    "two_phase_bruck": two_phase_bruck,
    "spread_out": spread_out_v,
    "sloav": sloav_alltoallv,
    "grouped": grouped_alltoallv,
}


def alltoallv(comm: Communicator, sendbuf: np.ndarray,
              sendcounts: Sequence[int], sdispls: Sequence[int],
              recvbuf: np.ndarray, recvcounts: Sequence[int],
              rdispls: Sequence[int], *,
              algorithm: str = "two_phase_bruck", tag_base: int = 0) -> None:
    """Non-uniform all-to-all dispatching on ``algorithm`` name."""
    if algorithm == "vendor":
        comm.alltoallv(sendbuf, sendcounts, sdispls, recvbuf, recvcounts,
                       rdispls)
        return
    try:
        fn = NONUNIFORM_ALGORITHMS[algorithm]
    except KeyError:
        known = ", ".join(sorted(NONUNIFORM_ALGORITHMS) + ["vendor"])
        raise KeyError(
            f"unknown non-uniform algorithm {algorithm!r}; known: {known}"
        ) from None
    fn(comm, sendbuf, sendcounts, sdispls, recvbuf, recvcounts, rdispls,
       tag_base=tag_base)
